//! Disk-resident RWR — the paper's stated future work ("extending TPA into
//! a disk-based RWR method to handle huge, disk-resident graphs"),
//! implemented via the `Propagator` abstraction.
//!
//! The edge list lives on disk in destination-sorted order; every CPI
//! iteration is one sequential scan. In-memory state is `O(n)` (degree
//! array + two score vectors), independent of the edge count — the term
//! that reaches billions on the paper's large graphs.
//!
//! Run with: `cargo run --release --example out_of_core`

use tpa::offcore::DiskGraph;
use tpa::{exact_rwr, CpiConfig, SeedSet, TpaIndex, TpaParams};
use tpa_eval::format_bytes;

fn main() {
    let spec = tpa_datasets::spec("pokec-s").unwrap().scaled_down(2);
    let data = tpa_datasets::generate(&spec);
    let graph = &data.graph;

    let path = std::env::temp_dir().join("tpa-out-of-core-example.bin");
    let disk = DiskGraph::create(graph, &path).expect("write disk graph");
    println!(
        "graph: {} nodes, {} edges\n  in-memory CSR: {}\n  out-of-core:   {} resident (+ {} on disk)",
        graph.n(),
        graph.m(),
        format_bytes(graph.memory_bytes()),
        format_bytes(disk.memory_bytes()),
        format_bytes(std::fs::metadata(&path).map(|m| m.len() as usize).unwrap_or(0)),
    );

    // TPA preprocessing + online queries run unchanged on the disk backend.
    let params = TpaParams::new(spec.s, spec.t);
    let index = TpaIndex::preprocess_on(&disk, params);
    let seed = 17;
    let scores = index.query_on(&disk, &SeedSet::single(seed));

    // Same answer as the fully in-memory pipeline.
    let exact = exact_rwr(graph, seed, &CpiConfig::default());
    let err: f64 = scores.iter().zip(&exact).map(|(a, b)| (a - b).abs()).sum();
    let bound = tpa::bounds::total_bound(params.c, params.s);
    println!("query seed {seed}: L1 error {err:.4} (bound {bound:.4})");
    assert!(err <= bound);

    let top = tpa_eval::metrics::top_k(&scores, 5);
    println!("top-5: {:?}", top);

    let _ = std::fs::remove_file(&path);
}
