//! Disk-resident RWR — the paper's stated future work ("extending TPA into
//! a disk-based RWR method to handle huge, disk-resident graphs"),
//! implemented via the `Propagator` abstraction and served through the
//! same [`tpa::RwrService`] API as the in-memory backends.
//!
//! The edge list lives on disk in destination-sorted order; every CPI
//! iteration is one sequential scan. In-memory state is `O(n)` (degree
//! array + two score vectors), independent of the edge count — the term
//! that reaches billions on the paper's large graphs.
//!
//! Run with: `cargo run --release --example out_of_core`

use tpa::offcore::DiskGraph;
use tpa::{exact_rwr, CpiConfig, QueryRequest, ServiceBuilder, TpaParams};
use tpa_eval::format_bytes;

fn main() {
    let spec = tpa_datasets::spec("pokec-s").unwrap().scaled_down(2);
    let data = tpa_datasets::generate(&spec);
    let graph = &data.graph;

    let path = std::env::temp_dir().join("tpa-out-of-core-example.bin");
    let disk = DiskGraph::create(graph, &path).expect("write disk graph");
    println!(
        "graph: {} nodes, {} edges\n  in-memory CSR: {}\n  out-of-core:   {} resident (+ {} on disk)",
        graph.n(),
        graph.m(),
        format_bytes(graph.memory_bytes()),
        format_bytes(disk.memory_bytes()),
        format_bytes(std::fs::metadata(&path).map(|m| m.len() as usize).unwrap_or(0)),
    );

    // TPA preprocessing + online requests run unchanged on the disk
    // backend: the builder streams the preprocessing CPI from disk, and
    // every submitted request streams its family sweep the same way.
    let params = TpaParams::new(spec.s, spec.t);
    let service = ServiceBuilder::out_of_core(disk)
        .preprocess(params)
        .build()
        .expect("valid serving configuration");
    let seed = 17;
    let resp = service.submit(&QueryRequest::single(seed)).unwrap();
    assert_eq!(resp.backend, "out-of-core");
    let scores = resp.result.into_scores().pop().unwrap();

    // Cross-validate against the fully *in-memory* pipeline: the exact
    // reference deliberately never touches the disk backend, so a
    // streaming bug cannot cancel out of the comparison.
    let exact = exact_rwr(graph, seed, &CpiConfig::default());
    let err: f64 = scores.iter().zip(&exact).map(|(a, b)| (a - b).abs()).sum();
    let bound = tpa::bounds::total_bound(params.c, params.s);
    println!(
        "request seed {seed} (backend {}): L1 error {err:.4} (bound {bound:.4})",
        resp.backend
    );
    assert!(err <= bound);
    // The served exact request streams from disk yet matches the
    // in-memory ground truth to numerical noise.
    let served_exact = service
        .submit(&QueryRequest::single(seed).exact())
        .unwrap()
        .result
        .into_scores()
        .pop()
        .unwrap();
    let disk_err: f64 = served_exact.iter().zip(&exact).map(|(a, b)| (a - b).abs()).sum();
    assert!(disk_err < 1e-10, "disk exact diverged from in-memory exact: {disk_err}");

    let top = tpa_eval::metrics::top_k(&scores, 5);
    println!("top-5: {:?}", top);

    let _ = std::fs::remove_file(&path);
}
