//! Concurrent serving: N reader threads against one `Arc<RwrService>`
//! while a writer applies edge-update batches.
//!
//! This is the scenario the epoch-swapped snapshot design exists for:
//!
//! * **Readers** loop on [`tpa::RwrService::submit`], each response
//!   stamped with the epoch it was served at. They are never blocked by
//!   the writer (their only synchronized step is an `Arc` clone).
//! * **The writer** applies deterministic follow/unfollow batches via
//!   [`tpa::RwrService::apply_updates`]; each batch atomically
//!   publishes the next epoch.
//! * **Verification**: afterwards, every `(epoch, seed, scores)`
//!   observation collected by the readers is replayed against a
//!   single-threaded [`tpa::QueryEngine`] frozen at that epoch's graph.
//!   Every observation must be **bit-identical** to the frozen engine —
//!   a reader can never see a blend of two epochs.
//!
//! Run with: `cargo run --release --example concurrent_serving`

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use tpa::{IndexStalenessPolicy, QueryEngine, QueryRequest, ServiceBuilder, TpaIndex, TpaParams};
use tpa_graph::{DynamicGraph, EdgeUpdate, NodeId};

const READERS: usize = 4;
const BATCHES: usize = 12;

/// Deterministic update batch for a given round: a few inserts between
/// arithmetic neighbors plus one delete, all in range.
fn batch(round: usize, n: usize) -> Vec<EdgeUpdate> {
    let pick = |k: usize| ((round * 613 + k * 211 + 17) % n) as NodeId;
    vec![
        EdgeUpdate::Insert(pick(1), pick(2)),
        EdgeUpdate::Insert(pick(3), pick(4)),
        EdgeUpdate::Insert(pick(5), pick(1)),
        EdgeUpdate::Delete(pick(1), pick(2)),
    ]
}

fn main() {
    let spec = tpa_datasets::spec("slashdot-s").unwrap().scaled_down(8);
    let data = tpa_datasets::generate(&spec);
    let graph = (*data.graph).clone();
    let n = graph.n();
    let params = TpaParams::new(spec.s, spec.t);
    println!("graph: {} nodes, {} edges", n, graph.m());

    let service = Arc::new(
        ServiceBuilder::dynamic(DynamicGraph::new(graph.clone()))
            .preprocess(params)
            // Keep the same index across all epochs (no auto refresh) so
            // the per-epoch reference engines are easy to reconstruct.
            .staleness(IndexStalenessPolicy { threshold: f64::INFINITY, auto_refresh: false })
            .build()
            .expect("valid serving configuration"),
    );
    let index: Arc<TpaIndex> = Arc::new(service.snapshot().index().unwrap().clone());

    // Readers record (epoch, seed, scores) observations while the writer
    // publishes; `done` drains them once the update stream ends.
    let done = Arc::new(AtomicBool::new(false));
    let mut observations: Vec<(u64, NodeId, Vec<f64>)> = Vec::new();
    let mut served = [0usize; READERS];
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for r in 0..READERS {
            let service = Arc::clone(&service);
            let done = Arc::clone(&done);
            handles.push(scope.spawn(move || {
                let mut local: Vec<(u64, NodeId, Vec<f64>)> = Vec::new();
                let mut count = 0usize;
                while !done.load(Ordering::Acquire) {
                    let seed = ((r * 997 + count * 31) % n) as NodeId;
                    let resp = service.submit(&QueryRequest::single(seed)).unwrap();
                    let scores = resp.result.into_scores().pop().unwrap();
                    // Keep a sample (every 8th) for post-hoc verification.
                    if count.is_multiple_of(8) {
                        local.push((resp.epoch, seed, scores));
                    }
                    count += 1;
                }
                (local, count)
            }));
        }

        // The single writer: publish BATCHES epochs, pacing slightly so
        // readers observe several distinct epochs.
        for round in 0..BATCHES {
            let outcome = service.apply_updates(&batch(round, n)).unwrap();
            assert_eq!(outcome.epoch, round as u64 + 1);
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        done.store(true, Ordering::Release);
        for (r, h) in handles.into_iter().enumerate() {
            let (local, count) = h.join().expect("reader thread");
            served[r] = count;
            observations.extend(local);
        }
    });
    println!(
        "served {} requests across {READERS} reader threads while publishing {BATCHES} epochs \
         ({} sampled for verification)",
        served.iter().sum::<usize>(),
        observations.len()
    );

    // Rebuild every epoch's frozen graph by replaying the same batches,
    // and check each observation bitwise against a single-threaded
    // QueryEngine over that frozen state.
    let mut replay = DynamicGraph::new(graph);
    let mut frozen: Vec<tpa_graph::CsrGraph> = vec![replay.snapshot()];
    for round in 0..BATCHES {
        replay.apply(&batch(round, n));
        frozen.push(replay.snapshot());
    }
    let mut checked_epochs: Vec<u64> = observations.iter().map(|(e, _, _)| *e).collect();
    checked_epochs.sort_unstable();
    checked_epochs.dedup();
    let mut verified = 0usize;
    for &epoch in &checked_epochs {
        let engine =
            QueryEngine::sequential(&frozen[epoch as usize]).with_index(Arc::clone(&index));
        for (e, seed, scores) in observations.iter().filter(|(e, _, _)| *e == epoch) {
            let reference = engine.query(*seed);
            assert_eq!(
                scores, &reference,
                "epoch {e} seed {seed}: concurrent response diverged from the frozen engine"
            );
            verified += 1;
        }
    }
    println!(
        "verified {verified} observations across {} distinct epochs: every response bit-identical \
         to a frozen single-threaded QueryEngine",
        checked_epochs.len()
    );
    assert!(
        checked_epochs.len() > 1,
        "readers should observe multiple epochs (writer published {BATCHES})"
    );
}
