//! Link prediction with RWR scores (the paper cites Backstrom & Leskovec's
//! supervised random walks as a key application).
//!
//! Hold out a sample of edges, score candidate endpoints by RWR from the
//! source, and measure AUC: held-out true edges should outrank random
//! non-edges. TPA's approximation must preserve this ranking quality.
//!
//! Run with: `cargo run --release --example link_prediction`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tpa::{ServiceBuilder, TpaParams};
use tpa_graph::{GraphBuilder, NodeId};

fn main() {
    let spec = tpa_datasets::spec("livejournal-s").unwrap().scaled_down(8);
    let data = tpa_datasets::generate(&spec);
    let full = &data.graph;
    println!("graph: {} nodes, {} edges", full.n(), full.m());

    // Hold out 5% of edges (only from sources with several out-edges so the
    // residual graph stays connected enough to walk on).
    let mut rng = StdRng::seed_from_u64(99);
    let mut held_out: Vec<(NodeId, NodeId)> = Vec::new();
    let mut train: Vec<(NodeId, NodeId)> = Vec::new();
    for (u, v) in full.edges() {
        if full.out_degree(u) >= 4 && rng.gen::<f64>() < 0.05 {
            held_out.push((u, v));
        } else {
            train.push((u, v));
        }
    }
    let train_graph =
        GraphBuilder::with_capacity(full.n(), train.len()).extend_edges(train).build();
    println!("held out {} edges for evaluation", held_out.len());

    // Serve every candidate-scoring request from one indexed service
    // over the training graph.
    let service = ServiceBuilder::in_memory(train_graph.clone())
        .preprocess(TpaParams::new(spec.s, spec.t))
        .build()
        .expect("valid serving configuration");

    // AUC: P(score(true edge) > score(random non-edge)) over sampled pairs.
    let mut wins = 0.0f64;
    let mut total = 0.0f64;
    let sample: Vec<(NodeId, NodeId)> = held_out.into_iter().take(200).collect();
    for &(u, v_true) in &sample {
        let scores = service.query(u).unwrap();
        // Draw a non-neighbor as the negative example.
        let v_false = loop {
            let w = rng.gen_range(0..train_graph.n()) as NodeId;
            if w != u && !full.has_edge(u, w) {
                break w;
            }
        };
        let (st, sf) = (scores[v_true as usize], scores[v_false as usize]);
        if st > sf {
            wins += 1.0;
        } else if st == sf {
            wins += 0.5;
        }
        total += 1.0;
    }
    let auc = wins / total;
    println!("link-prediction AUC over {total} pairs: {auc:.3}");
    assert!(auc > 0.7, "RWR should rank held-out edges far above random pairs");
}
