//! Neighborhood-formation anomaly scoring (the paper cites Sun et al.,
//! "Neighborhood formation and anomaly detection in bipartite graphs").
//!
//! A normal node's in-neighbors belong to the same community and are
//! therefore mutually relevant under RWR. A spam-like node that farms
//! links from *random* communities has in-neighbors that are strangers to
//! each other. Scoring each node by the average RWR relevance between its
//! in-neighbors separates planted anomalies cleanly — and TPA makes the
//! many RWR queries this needs cheap.
//!
//! Run with: `cargo run --release --example anomaly_detection`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tpa::{QueryRequest, RwrService, ServiceBuilder, TpaParams};
use tpa_graph::{CsrGraph, GraphBuilder, NodeId};

const PLANTED: usize = 10;
const IN_EDGES_PER_ANOMALY: usize = 40;

fn main() {
    // Base community graph + PLANTED anomaly nodes that receive edges from
    // many random communities (like spam accounts farming follows).
    let spec = tpa_datasets::spec("slashdot-s").unwrap().scaled_down(4);
    let base = tpa_datasets::generate(&spec);
    let n0 = base.graph.n();
    let n = n0 + PLANTED;
    let mut rng = StdRng::seed_from_u64(7);

    let mut b = GraphBuilder::with_capacity(n, base.graph.m() + PLANTED * IN_EDGES_PER_ANOMALY);
    for (u, v) in base.graph.edges() {
        b.add_edge(u, v);
    }
    let mut anomalies = Vec::new();
    for a in 0..PLANTED {
        let v = (n0 + a) as NodeId;
        anomalies.push(v);
        for _ in 0..IN_EDGES_PER_ANOMALY {
            b.add_edge(rng.gen_range(0..n0) as NodeId, v);
        }
        // A couple of out-edges back so the node is not dangling.
        b.add_edge(v, rng.gen_range(0..n0) as NodeId);
        b.add_edge(v, rng.gen_range(0..n0) as NodeId);
    }
    let graph = b.build();
    println!("graph: {} nodes ({PLANTED} planted anomalies), {} edges", graph.n(), graph.m());

    // The many probe queries below all go through one indexed service.
    let service = ServiceBuilder::in_memory(graph.clone())
        .preprocess(TpaParams::new(spec.s, spec.t))
        .build()
        .expect("valid serving configuration");

    // Candidates: the anomalies plus normal nodes with comparable in-degree.
    let mut candidates: Vec<NodeId> =
        (0..n0 as NodeId).filter(|&v| graph.in_degree(v) >= 5).collect();
    // Deterministic subsample of normals to keep the demo fast.
    candidates.sort_by_key(|&v| v.wrapping_mul(2_654_435_761) % 9973);
    candidates.truncate(120);
    candidates.extend_from_slice(&anomalies);

    let coherence: Vec<(NodeId, f64)> =
        candidates.iter().map(|&v| (v, neighborhood_coherence(&graph, &service, v))).collect();

    // Rank ascending: the least coherent neighborhoods are the anomalies.
    let mut ranked = coherence.clone();
    ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    println!("\nleast coherent neighborhoods:");
    for (v, s) in ranked.iter().take(PLANTED + 3) {
        let marker = if anomalies.contains(v) { "  <-- planted" } else { "" };
        println!("  node {v:<6} coherence {s:.3e}{marker}");
    }

    let caught = ranked[..PLANTED + 3].iter().filter(|(v, _)| anomalies.contains(v)).count();
    println!("\nplanted anomalies among the {} least coherent: {caught}/{PLANTED}", PLANTED + 3);
    assert!(caught >= PLANTED / 2, "at least half of the planted anomalies should be caught");
}

/// Mean RWR relevance from a sample of `v`'s in-neighbors to the rest of
/// the in-neighborhood. The probe seeds go to the service as one batched
/// request (one fused family sweep instead of three).
fn neighborhood_coherence(graph: &CsrGraph, service: &RwrService, v: NodeId) -> f64 {
    let neigh = graph.in_neighbors(v);
    if neigh.len() < 2 {
        return f64::INFINITY; // trivially coherent; never flagged
    }
    let probes = &neigh[..neigh.len().min(3)];
    let lanes = service
        .submit(&QueryRequest::batch(probes.to_vec()))
        .expect("probe seeds are in range")
        .result
        .into_scores();
    let mut total = 0.0;
    for (&u, scores) in probes.iter().zip(&lanes) {
        let mass: f64 = neigh.iter().filter(|&&w| w != u).map(|&w| scores[w as usize]).sum();
        total += mass / (neigh.len() - 1) as f64;
    }
    total / probes.len() as f64
}
