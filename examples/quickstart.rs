//! Quickstart: build a graph, stand up an [`tpa::RwrService`] with a
//! preprocessed TPA index, answer RWR requests fast, and verify the
//! Theorem-2 error bound.
//!
//! Run with: `cargo run --release --example quickstart`

use tpa::bounds;
use tpa::{QueryRequest, ServiceBuilder, TpaParams};
use tpa_graph::gen::{lfr_lite, LfrConfig};

fn main() {
    // 1. A small social-network-like graph: power-law degrees + planted
    //    communities (the structure TPA exploits).
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let lfr = lfr_lite(
        LfrConfig { n: 2_000, m: 16_000, mu: 0.2, reciprocity: 0.6, ..Default::default() },
        &mut rng,
    );
    let graph = lfr.graph;
    println!("graph: {} nodes, {} edges", graph.n(), graph.m());

    // 2. One builder call configures everything: the backend, and the
    //    one-time preprocessing (Algorithm 2 — the seed-independent
    //    "stranger" part, estimated from PageRank's tail iterations).
    let params = TpaParams::new(5, 10); // S = 5, T = 10 (paper defaults)
    let service = ServiceBuilder::in_memory(graph.clone())
        .preprocess(params)
        .build()
        .expect("valid serving configuration");
    let index = service.snapshot().index().unwrap().clone();
    println!(
        "index: {} bytes ({} per node), preprocessing ran {} CPI iterations",
        index.index_bytes(),
        index.index_bytes() / graph.n(),
        index.stats().iterations,
    );

    // 3. Fast online requests (Algorithm 3): only S CPI iterations each,
    //    as the response metadata shows.
    let seed = 7;
    let resp = service.submit(&QueryRequest::single(seed).top_k(10)).unwrap();
    println!(
        "answered by backend {} at epoch {} in {} CPI iterations",
        resp.backend,
        resp.epoch,
        resp.iterations.unwrap()
    );

    // 4. Top-10 most relevant nodes w.r.t. the seed.
    let scores = service.query(seed).unwrap();
    println!("top-10 nodes for seed {seed}:");
    for (rank, &(v, score)) in resp.result.into_ranked()[0].iter().enumerate() {
        println!("  #{:<2} node {:<6} score {:.6}", rank + 1, v, score);
    }

    // 5. The approximation honors the paper's Theorem 2: L1 error ≤ 2(1−c)^S.
    //    Ground truth comes from the same service via an exact request.
    let exact = service
        .submit(&QueryRequest::single(seed).exact())
        .unwrap()
        .result
        .into_scores()
        .pop()
        .unwrap();
    let err: f64 = scores.iter().zip(&exact).map(|(a, b)| (a - b).abs()).sum();
    let bound = bounds::total_bound(params.c, params.s);
    println!("L1 error {err:.4} ≤ theoretical bound {bound:.4}: {}", err <= bound);
    assert!(err <= bound);
}
