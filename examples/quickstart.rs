//! Quickstart: build a graph, preprocess a TPA index once, answer RWR
//! queries for many seeds fast, and verify the Theorem-2 error bound.
//!
//! Run with: `cargo run --release --example quickstart`

use tpa::bounds;
use tpa::{exact_rwr, CpiConfig, TpaIndex, TpaParams, Transition};
use tpa_graph::gen::{lfr_lite, LfrConfig};

fn main() {
    // 1. A small social-network-like graph: power-law degrees + planted
    //    communities (the structure TPA exploits).
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let lfr = lfr_lite(
        LfrConfig { n: 2_000, m: 16_000, mu: 0.2, reciprocity: 0.6, ..Default::default() },
        &mut rng,
    );
    let graph = lfr.graph;
    println!("graph: {} nodes, {} edges", graph.n(), graph.m());

    // 2. One-time preprocessing (Algorithm 2): the seed-independent
    //    "stranger" part, estimated from PageRank's tail iterations.
    let params = TpaParams::new(5, 10); // S = 5, T = 10 (paper defaults)
    let index = TpaIndex::preprocess(&graph, params);
    println!(
        "index: {} bytes ({} per node), preprocessing ran {} CPI iterations",
        index.index_bytes(),
        index.index_bytes() / graph.n(),
        index.stats().iterations,
    );

    // 3. Fast online queries (Algorithm 3): only S CPI iterations each.
    let transition = Transition::new(&graph);
    let seed = 7;
    let scores = index.query(&transition, seed);

    // 4. Top-10 most relevant nodes w.r.t. the seed.
    let top = tpa_eval::metrics::top_k(&scores, 10);
    println!("top-10 nodes for seed {seed}:");
    for (rank, &v) in top.iter().enumerate() {
        println!("  #{:<2} node {:<6} score {:.6}", rank + 1, v, scores[v as usize]);
    }

    // 5. The approximation honors the paper's Theorem 2: L1 error ≤ 2(1−c)^S.
    let exact = exact_rwr(&graph, seed, &CpiConfig::default());
    let err: f64 = scores.iter().zip(&exact).map(|(a, b)| (a - b).abs()).sum();
    let bound = bounds::total_bound(params.c, params.s);
    println!("L1 error {err:.4} ≤ theoretical bound {bound:.4}: {}", err <= bound);
    assert!(err <= bound);
}
