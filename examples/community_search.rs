//! Local community search by seed expansion — one of the classic RWR
//! applications the paper cites (Whang et al., "seed set expansion").
//!
//! RWR scores from a seed concentrate inside the seed's community (the
//! same block-wise property behind TPA's neighbor approximation). Ranking
//! nodes by `score / degree` (a conductance-style sweep) and cutting at
//! the planted community size recovers the community with high precision.
//!
//! Run with: `cargo run --release --example community_search`

use tpa::{QueryRequest, ServiceBuilder, TpaParams};
use tpa_graph::NodeId;

fn main() {
    // LFR graph with known planted communities.
    let spec = tpa_datasets::spec("pokec-s").unwrap().scaled_down(4);
    let data = tpa_datasets::generate(&spec);
    let graph = &data.graph;
    let communities = data.communities.as_ref().expect("LFR datasets carry labels");
    println!("graph: {} nodes, {} edges", graph.n(), graph.m());

    // One service answers every expansion seed; the batched request
    // shares one family sweep across all five communities.
    let service = ServiceBuilder::in_memory((**graph).clone())
        .preprocess(TpaParams::new(spec.s, spec.t))
        .build()
        .expect("valid serving configuration");
    let seeds: Vec<NodeId> =
        [3u32, 500, 1500, 2500, 3500].iter().map(|&s| s % graph.n() as u32).collect();
    let all_scores =
        service.submit(&QueryRequest::batch(seeds.clone())).unwrap().result.into_scores();

    // Evaluate seed-expansion precision over several seeds.
    let mut precisions = Vec::new();
    for (&seed, scores) in seeds.iter().zip(&all_scores) {
        let target = communities[seed as usize];
        let members: Vec<NodeId> =
            (0..graph.n() as NodeId).filter(|&v| communities[v as usize] == target).collect();
        // Degree-normalized sweep order (standard local-clustering trick:
        // high score relative to degree ⇒ inside the cluster).
        let mut order: Vec<NodeId> = (0..graph.n() as NodeId).collect();
        order.sort_by(|&a, &b| {
            let sa = scores[a as usize] / graph.out_degree(a).max(1) as f64;
            let sb = scores[b as usize] / graph.out_degree(b).max(1) as f64;
            sb.partial_cmp(&sa).unwrap()
        });
        let cut = &order[..members.len()];
        let hits = cut.iter().filter(|&&v| communities[v as usize] == target).count();
        let precision = hits as f64 / members.len() as f64;
        println!(
            "seed {seed:<5} community {target:<3} size {:<4} precision {precision:.3}",
            members.len()
        );
        precisions.push(precision);
    }
    let avg = precisions.iter().sum::<f64>() / precisions.len() as f64;
    println!("\naverage precision: {avg:.3}");
    assert!(avg > 0.5, "seed expansion should beat random assignment by far");
}
