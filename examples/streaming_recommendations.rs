//! Streaming recommendations: "Who to Follow" on a graph that never
//! stops changing.
//!
//! The social graph mutates continuously — new follows arrive, old ones
//! are retracted. This example serves recommendations through the
//! concurrent [`tpa::RwrService`] while the graph evolves:
//!
//! 1. The same service answers indexed top-k requests before and after
//!    every update batch — each [`tpa::RwrService::apply_updates`] call
//!    atomically publishes a new snapshot **epoch**, so readers are
//!    never blocked and never see a half-applied batch.
//! 2. A [`tpa::ScoreCache`] over a mirror [`tpa::DynamicTransition`]
//!    maintains one power user's *exact* scores across batches by OSP
//!    offset propagation (the maintenance layer *below* the service),
//!    and we compare its cost and accuracy against recomputing from
//!    scratch each time.
//! 3. The service tracks accumulated operator drift and re-preprocesses
//!    the TPA index only when it goes stale.
//!
//! Run with: `cargo run --release --example streaming_recommendations`

use tpa::{
    CpiConfig, DynamicTransition, IndexStalenessPolicy, MaintenanceMode, QueryRequest, ScoreCache,
    ServiceBuilder, TpaParams,
};
use tpa_graph::{DynamicGraph, EdgeUpdate, NodeId};

fn main() {
    // A scaled-down Twitter-like graph (heavy-tailed follows).
    let spec = tpa_datasets::spec("twitter-s").unwrap().scaled_down(8);
    let data = tpa_datasets::generate(&spec);
    let graph = (*data.graph).clone();
    let n = graph.n();
    println!("social graph: {} users, {} follow edges", n, graph.m());

    // Dynamic service: overlay writer + TPA index + staleness tracking,
    // all configured in one builder.
    let service = ServiceBuilder::dynamic(DynamicGraph::new(graph.clone()))
        .preprocess(TpaParams::new(spec.s, spec.t))
        .staleness(IndexStalenessPolicy { threshold: 0.02, auto_refresh: true })
        .build()
        .expect("valid serving configuration");

    // The user we keep serving while the graph churns.
    let user: NodeId = 42 % n as NodeId;
    let before = service.top_k(user, 5).unwrap();
    println!("\ninitial recommendations for user {user} (epoch {}):", service.epoch());
    for &(v, s) in &before {
        println!("  @node{v:<8} score {s:.6}");
    }

    // Maintain the user's *exact* scores incrementally on a mirror
    // overlay (the service keeps its own writer-side overlay private;
    // the mirror sees the identical update stream, so its operator —
    // and therefore the OSP offsets — match the served graph exactly).
    let cfg = CpiConfig::default();
    let mut mirror = DynamicTransition::new(DynamicGraph::new(graph));
    let mut cache = ScoreCache::new(cfg, MaintenanceMode::Exact);
    cache.warm(&mirror, &[user]);

    // Synthetic follow stream: each round users follow "friends of
    // friends" and drop a stale follow — deterministic, no RNG needed.
    // The incremental-vs-rebuild comparison is about the *maintenance*
    // layer (overlay patch + OSP offset propagation), so only the
    // mirror's costs count toward it; the service's epoch publish (an
    // O(n+m) snapshot rebuild, sometimes plus an index re-preprocess) is
    // timed and reported separately.
    let mut incremental_total = 0.0f64;
    let mut rebuild_total = 0.0f64;
    let mut publish_total = 0.0f64;
    for round in 0u32..5 {
        let batch = follow_batch(&mirror, round, n);
        let (outcome, dt_publish) = tpa_eval::time(|| service.apply_updates(&batch).unwrap());
        publish_total += dt_publish.as_secs_f64();
        let (stats, dt_refresh) = tpa_eval::time(|| {
            let delta = mirror.apply(&batch);
            cache.refresh(&mirror, &delta)
        });
        incremental_total += dt_refresh.as_secs_f64();

        // The cost of the naive alternative: rebuild the CSR from the
        // merged view and recompute the user's scores from scratch.
        let (fresh, dt_rebuild) = tpa_eval::time(|| {
            let snapshot = mirror.graph().snapshot();
            tpa::exact_rwr(&snapshot, user, &cfg)
        });
        rebuild_total += dt_rebuild.as_secs_f64();

        let drift: f64 =
            cache.scores(user).unwrap().iter().zip(&fresh).map(|(a, b)| (a - b).abs()).sum();
        println!(
            "\nepoch {}: {}+{} edges changed, offset iters {}, \
             incremental {} vs rebuild+requery {} (epoch publish {}, exact-mode L1 drift \
             {drift:.2e}){}",
            outcome.epoch,
            outcome.report.delta.stats.inserted,
            outcome.report.delta.stats.deleted,
            stats.iterations,
            tpa_eval::format_secs(dt_refresh.as_secs_f64()),
            tpa_eval::format_secs(dt_rebuild.as_secs_f64()),
            tpa_eval::format_secs(dt_publish.as_secs_f64()),
            if outcome.report.index_refreshed { " — index auto-refreshed" } else { "" }
        );
    }

    // Recommendations after the churn, served by the same service (now
    // several epochs ahead of where it started).
    let after = service.top_k(user, 5).unwrap();
    println!("\nrecommendations for user {user} after the stream (epoch {}):", service.epoch());
    for &(v, s) in &after {
        println!("  @node{v:<8} score {s:.6}");
    }
    // The served exact scores and the maintained cache agree.
    let served_exact = service
        .submit(&QueryRequest::single(user).exact())
        .unwrap()
        .result
        .into_scores()
        .pop()
        .unwrap();
    let cache_drift: f64 =
        cache.scores(user).unwrap().iter().zip(&served_exact).map(|(a, b)| (a - b).abs()).sum();
    println!(
        "\ntotals: incremental maintenance {} vs rebuild-and-requery {} ({:.1}x); service \
         epoch publishes {}",
        tpa_eval::format_secs(incremental_total),
        tpa_eval::format_secs(rebuild_total),
        rebuild_total / incremental_total.max(1e-12),
        tpa_eval::format_secs(publish_total),
    );
    println!(
        "maintained cache vs served exact scores: L1 {cache_drift:.2e} · accumulated index \
         drift {:.4} (stale: {})",
        service.accumulated_drift(),
        service.index_stale()
    );
    assert!(cache_drift < 1e-6, "maintained cache must track the served graph");
}

/// Deterministic per-round batch: a handful of new follows between
/// second-hop neighbors of a rotating pivot, plus one unfollow.
fn follow_batch(t: &DynamicTransition, round: u32, n: usize) -> Vec<EdgeUpdate> {
    let g = t.graph();
    let mut batch = Vec::new();
    let pivot = ((round as usize * 7919 + 13) % n) as NodeId;
    let hops: Vec<NodeId> = g.out_neighbors(pivot).take(4).collect();
    for (i, &mid) in hops.iter().enumerate() {
        if let Some(far) = g.out_neighbors(mid).nth(i) {
            if !g.has_edge(pivot, far) && pivot != far {
                batch.push(EdgeUpdate::Insert(pivot, far));
            }
        }
    }
    // Retract the pivot's lexicographically first follow if it has >1.
    if g.out_degree(pivot) > 1 {
        if let Some(first) = g.out_neighbors(pivot).next() {
            batch.push(EdgeUpdate::Delete(pivot, first));
        }
    }
    batch
}
