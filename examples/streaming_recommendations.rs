//! Streaming recommendations: "Who to Follow" on a graph that never
//! stops changing.
//!
//! The social graph mutates continuously — new follows arrive, old ones
//! are retracted. This example serves recommendations through the
//! dynamic (delta-overlay) engine backend while the graph evolves:
//!
//! 1. The same `QueryEngine` answers indexed top-k plans before and
//!    after every update batch — no rebuild, no re-preprocess.
//! 2. A [`tpa::ScoreCache`] maintains one power user's *exact* scores
//!    across batches by OSP offset propagation, and we compare its cost
//!    and accuracy against recomputing from scratch each time.
//! 3. The engine tracks accumulated operator drift and re-preprocesses
//!    the TPA index only when it goes stale.
//!
//! Run with: `cargo run --release --example streaming_recommendations`

use tpa::{CpiConfig, IndexStalenessPolicy, MaintenanceMode, QueryEngine, ScoreCache, TpaParams};
use tpa_graph::{DynamicGraph, EdgeUpdate, NodeId};

fn main() {
    // A scaled-down Twitter-like graph (heavy-tailed follows).
    let spec = tpa_datasets::spec("twitter-s").unwrap().scaled_down(8);
    let data = tpa_datasets::generate(&spec);
    let graph = (*data.graph).clone();
    let n = graph.n();
    println!("social graph: {} users, {} follow edges", n, graph.m());

    // Dynamic engine: overlay backend + TPA index + staleness tracking.
    let mut engine = QueryEngine::dynamic(DynamicGraph::new(graph))
        .preprocess(TpaParams::new(spec.s, spec.t))
        .with_staleness_policy(IndexStalenessPolicy { threshold: 0.02, auto_refresh: true });

    // The user we keep serving while the graph churns.
    let user: NodeId = 42 % n as NodeId;
    let before = engine.top_k(user, 5);
    println!("\ninitial recommendations for user {user}:");
    for &(v, s) in &before {
        println!("  @node{v:<8} score {s:.6}");
    }

    // Maintain the user's *exact* scores incrementally.
    let cfg = CpiConfig::default();
    let mut cache = ScoreCache::new(cfg, MaintenanceMode::Exact);
    cache.warm(engine.dynamic_transition().unwrap(), &[user]);

    // Synthetic follow stream: each round users follow "friends of
    // friends" and drop a stale follow — deterministic, no RNG needed.
    let mut incremental_total = 0.0f64;
    let mut rebuild_total = 0.0f64;
    for round in 0u32..5 {
        let batch = follow_batch(engine.dynamic_transition().unwrap(), round, n);
        let (report, dt_apply) = tpa_eval::time(|| engine.apply_updates(&batch).unwrap());
        let t = engine.dynamic_transition().unwrap();
        let (stats, dt_refresh) = tpa_eval::time(|| cache.refresh(t, &report.delta));
        incremental_total += dt_apply.as_secs_f64() + dt_refresh.as_secs_f64();

        // The cost of the naive alternative: rebuild the CSR from the
        // merged view and recompute the user's scores from scratch.
        let (fresh, dt_rebuild) = tpa_eval::time(|| {
            let snapshot = t.graph().snapshot();
            tpa::exact_rwr(&snapshot, user, &cfg)
        });
        rebuild_total += dt_rebuild.as_secs_f64();

        let drift: f64 =
            cache.scores(user).unwrap().iter().zip(&fresh).map(|(a, b)| (a - b).abs()).sum();
        println!(
            "\nround {round}: {}+{} edges changed, offset iters {}, \
             incremental {} vs rebuild+requery {} (exact-mode L1 drift {drift:.2e}){}",
            report.delta.stats.inserted,
            report.delta.stats.deleted,
            stats.iterations,
            tpa_eval::format_secs(dt_apply.as_secs_f64() + dt_refresh.as_secs_f64()),
            tpa_eval::format_secs(dt_rebuild.as_secs_f64()),
            if report.index_refreshed { " — index auto-refreshed" } else { "" }
        );
    }

    // Recommendations after the churn, served by the same engine.
    let after = engine.top_k(user, 5);
    println!("\nrecommendations for user {user} after the stream:");
    for &(v, s) in &after {
        println!("  @node{v:<8} score {s:.6}");
    }
    println!(
        "\ntotals: incremental maintenance {} vs rebuild-and-requery {} ({:.1}x)",
        tpa_eval::format_secs(incremental_total),
        tpa_eval::format_secs(rebuild_total),
        rebuild_total / incremental_total.max(1e-12)
    );
    println!(
        "accumulated index drift {:.4} (stale: {})",
        engine.accumulated_drift(),
        engine.index_stale()
    );
}

/// Deterministic per-round batch: a handful of new follows between
/// second-hop neighbors of a rotating pivot, plus one unfollow.
fn follow_batch(t: &tpa::DynamicTransition, round: u32, n: usize) -> Vec<EdgeUpdate> {
    let g = t.graph();
    let mut batch = Vec::new();
    let pivot = ((round as usize * 7919 + 13) % n) as NodeId;
    let hops: Vec<NodeId> = g.out_neighbors(pivot).take(4).collect();
    for (i, &mid) in hops.iter().enumerate() {
        if let Some(far) = g.out_neighbors(mid).nth(i) {
            if !g.has_edge(pivot, far) && pivot != far {
                batch.push(EdgeUpdate::Insert(pivot, far));
            }
        }
    }
    // Retract the pivot's lexicographically first follow if it has >1.
    if g.out_degree(pivot) > 1 {
        if let Some(first) = g.out_neighbors(pivot).next() {
            batch.push(EdgeUpdate::Delete(pivot, first));
        }
    }
    batch
}
