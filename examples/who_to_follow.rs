//! "Who to Follow": Twitter-style follower recommendation (the paper's
//! motivating application, §IV-B.3 — "the top-500 ranked users in RWR will
//! be recommended").
//!
//! Builds the Twitter analog dataset and serves recommendations through
//! the [`tpa::QueryEngine`] layer: preprocess once, then answer
//! single-user plans, exact ground-truth plans, and whole batches of
//! users (lane tiles sharing edge passes per CPI iteration) from the
//! same engine.
//!
//! Run with: `cargo run --release --example who_to_follow`

use tpa::{QueryEngine, QueryPlan, TpaParams};
use tpa_eval::metrics::recall_at_k;
use tpa_graph::NodeId;

fn main() {
    // A scaled-down Twitter-like graph (heavy-tailed follows + communities).
    let spec = tpa_datasets::spec("twitter-s").unwrap().scaled_down(4);
    let data = tpa_datasets::generate(&spec);
    let graph = &data.graph;
    println!("social graph: {} users, {} follow edges", graph.n(), graph.m());

    // One engine serves every user: parallel backend (all cores), TPA
    // index preprocessed on it once.
    let engine = QueryEngine::parallel(graph, 0).preprocess(TpaParams::new(spec.s, spec.t));

    // Pick an active user (highest out-degree = follows the most accounts).
    let user = (0..graph.n() as NodeId).max_by_key(|&v| graph.out_degree(v)).unwrap();
    let follows: std::collections::HashSet<NodeId> =
        graph.out_neighbors(user).iter().copied().collect();
    println!("user {user} follows {} accounts", follows.len());

    // Top-500 plan (partial selection inside the engine), then filter to
    // accounts the user does not already follow.
    let ranked = engine.top_k(user, 500);
    println!("\nWho to follow (top 10 recommendations):");
    for &(v, score) in ranked.iter().filter(|&&(v, _)| v != user && !follows.contains(&v)).take(10)
    {
        println!("  @node{:<6} score {:.6} ({} followers)", v, score, graph.in_degree(v));
    }

    // Quality check against the exact ranking (the paper's Fig. 7 metric):
    // the same engine serves ground truth via an exact plan.
    let scores = engine.query(user);
    let exact = engine.execute(&QueryPlan::single(user).exact()).into_scores().pop().unwrap();
    for k in [100, 500] {
        println!("recall@{k}: {:.4}", recall_at_k(&exact, &scores, k));
    }

    // Serving path: answer a whole batch of users through the fused
    // block kernel, lane tiles sharing each edge sweep (bitwise
    // identical to per-user queries).
    let batch_users: Vec<NodeId> = (0..16).map(|i| (i * 97) % graph.n() as NodeId).collect();
    let (batch, dt) = tpa_eval::time(|| engine.query_batch(&batch_users));
    println!(
        "\nbatched {} users in {} ({} per user)",
        batch.len(),
        tpa_eval::format_secs(dt.as_secs_f64()),
        tpa_eval::format_secs(dt.as_secs_f64() / batch.len() as f64),
    );
    assert_eq!(batch[0], engine.query(batch_users[0]));
}
