//! "Who to Follow": Twitter-style follower recommendation (the paper's
//! motivating application, §IV-B.3 — "the top-500 ranked users in RWR will
//! be recommended").
//!
//! Builds the Twitter analog dataset and serves recommendations through
//! the [`tpa::RwrService`] layer: preprocess once inside
//! [`tpa::ServiceBuilder`], then answer single-user requests, exact
//! ground-truth requests, and whole batches of users (lane tiles sharing
//! edge passes per CPI iteration) from the same shared service.
//!
//! Run with: `cargo run --release --example who_to_follow`

use tpa::{QueryRequest, ServiceBuilder, TpaParams};
use tpa_eval::metrics::recall_at_k;
use tpa_graph::NodeId;

fn main() {
    // A scaled-down Twitter-like graph (heavy-tailed follows + communities).
    let spec = tpa_datasets::spec("twitter-s").unwrap().scaled_down(4);
    let data = tpa_datasets::generate(&spec);
    let graph = (*data.graph).clone();
    println!("social graph: {} users, {} follow edges", graph.n(), graph.m());

    // One service serves every user: parallel backend (all cores), TPA
    // index preprocessed on it once. `RwrService` is `Send + Sync` —
    // wrap it in an `Arc` and every request-handler thread can `submit`.
    let service = ServiceBuilder::in_memory(graph.clone())
        .threads(0)
        .preprocess(TpaParams::new(spec.s, spec.t))
        .build()
        .expect("valid serving configuration");

    // Pick an active user (highest out-degree = follows the most accounts).
    let user = (0..graph.n() as NodeId).max_by_key(|&v| graph.out_degree(v)).unwrap();
    let follows: std::collections::HashSet<NodeId> =
        graph.out_neighbors(user).iter().copied().collect();
    println!("user {user} follows {} accounts", follows.len());

    // Top-500 request (partial selection inside the snapshot), then
    // filter to accounts the user does not already follow.
    let resp = service.submit(&QueryRequest::single(user).top_k(500)).unwrap();
    println!(
        "served by backend {} at epoch {} ({} CPI iterations)",
        resp.backend,
        resp.epoch,
        resp.iterations.unwrap()
    );
    let ranked = resp.result.into_ranked().pop().unwrap();
    println!("\nWho to follow (top 10 recommendations):");
    for &(v, score) in ranked.iter().filter(|&&(v, _)| v != user && !follows.contains(&v)).take(10)
    {
        println!("  @node{:<6} score {:.6} ({} followers)", v, score, graph.in_degree(v));
    }

    // Quality check against the exact ranking (the paper's Fig. 7 metric):
    // the same service serves ground truth via an exact request.
    let scores = service.query(user).unwrap();
    let exact = service
        .submit(&QueryRequest::single(user).exact())
        .unwrap()
        .result
        .into_scores()
        .pop()
        .unwrap();
    for k in [100, 500] {
        println!("recall@{k}: {:.4}", recall_at_k(&exact, &scores, k));
    }

    // Serving path: answer a whole batch of users through the fused
    // block kernel, lane tiles sharing each edge sweep (bitwise
    // identical to per-user requests).
    let batch_users: Vec<NodeId> = (0..16).map(|i| (i * 97) % graph.n() as NodeId).collect();
    let (resp, dt) =
        tpa_eval::time(|| service.submit(&QueryRequest::batch(batch_users.clone())).unwrap());
    let batch = resp.result.into_scores();
    println!(
        "\nbatched {} users in {} ({} per user)",
        batch.len(),
        tpa_eval::format_secs(dt.as_secs_f64()),
        tpa_eval::format_secs(dt.as_secs_f64() / batch.len() as f64),
    );
    assert_eq!(batch[0], service.query(batch_users[0]).unwrap());
}
