//! "Who to Follow": Twitter-style follower recommendation (the paper's
//! motivating application, §IV-B.3 — "the top-500 ranked users in RWR will
//! be recommended").
//!
//! Builds the Twitter analog dataset, computes RWR from a user with TPA,
//! and recommends the top non-followed accounts. Also reports how well the
//! fast approximation agrees with the exact top-k (recall@k).
//!
//! Run with: `cargo run --release --example who_to_follow`

use tpa::{exact_rwr, CpiConfig, TpaIndex, TpaParams, Transition};
use tpa_eval::metrics::{recall_at_k, top_k};
use tpa_graph::NodeId;

fn main() {
    // A scaled-down Twitter-like graph (heavy-tailed follows + communities).
    let spec = tpa_datasets::spec("twitter-s").unwrap().scaled_down(4);
    let data = tpa_datasets::generate(&spec);
    let graph = &data.graph;
    println!("social graph: {} users, {} follow edges", graph.n(), graph.m());

    // Preprocess once; serve every user's recommendations from one index.
    let index = TpaIndex::preprocess(graph, TpaParams::new(spec.s, spec.t));
    let transition = Transition::new(graph);

    // Pick an active user (highest out-degree = follows the most accounts).
    let user = (0..graph.n() as NodeId)
        .max_by_key(|&v| graph.out_degree(v))
        .unwrap();
    let follows: std::collections::HashSet<NodeId> =
        graph.out_neighbors(user).iter().copied().collect();
    println!("user {user} follows {} accounts", follows.len());

    let scores = index.query(&transition, user);

    // Recommend the top-scoring accounts the user does not already follow.
    println!("\nWho to follow (top 10 recommendations):");
    let mut shown = 0;
    for v in top_k(&scores, 500) {
        if v != user && !follows.contains(&v) {
            println!(
                "  @node{:<6} score {:.6} ({} followers)",
                v,
                scores[v as usize],
                graph.in_degree(v)
            );
            shown += 1;
            if shown == 10 {
                break;
            }
        }
    }

    // Quality check against the exact ranking (the paper's Fig. 7 metric).
    let exact = exact_rwr(graph, user, &CpiConfig::default());
    for k in [100, 500] {
        println!("recall@{k}: {:.4}", recall_at_k(&exact, &scores, k));
    }

    // Serving-path bonus: answer a whole batch of users in one edge sweep
    // per CPI iteration (bitwise identical to per-user queries).
    let batch_users: Vec<NodeId> = (0..16).map(|i| (i * 97) % graph.n() as NodeId).collect();
    let (batch, dt) = tpa_eval::time(|| index.query_batch(&transition, &batch_users));
    println!(
        "\nbatched {} users in {} ({} per user)",
        batch.len(),
        tpa_eval::format_secs(dt.as_secs_f64()),
        tpa_eval::format_secs(dt.as_secs_f64() / batch.len() as f64),
    );
    assert_eq!(batch[0], index.query(&transition, batch_users[0]));
}
