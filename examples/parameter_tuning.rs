//! Choosing S and T for a new graph (paper §III-C, operationalized).
//!
//! `S` follows analytically from the accuracy target via Theorem 2;
//! `T` has no closed form — this example runs the built-in empirical sweep
//! (`tpa::params::tune_t`) on a small seed sample and shows the NA-up /
//! SA-down trade-off the paper's Fig. 9 plots.
//!
//! Run with: `cargo run --release --example parameter_tuning`

use tpa::params::{auto_params, tune_t};
use tpa::{bounds, CpiConfig, QueryRequest, ServiceBuilder};

fn main() {
    let spec = tpa_datasets::spec("pokec-s").unwrap().scaled_down(4);
    let data = tpa_datasets::generate(&spec);
    let graph = &data.graph;
    let cfg = CpiConfig::default();
    println!("graph: {} nodes, {} edges", graph.n(), graph.m());

    // 1. Pick S from the worst-case error budget.
    let target = 0.5;
    let s = bounds::min_s_for_error(cfg.c, target);
    println!("target L1 error {target} → S = {s} (bound {:.4})", bounds::total_bound(cfg.c, s));

    // 2. Sweep T on a 5-seed sample (one converged CPI per seed).
    let sample: Vec<u32> = (0..5).map(|i| (i * 613) % graph.n() as u32).collect();
    let sweep = tune_t(graph, s, &[s + 1, s + 3, s + 5, s + 8, s + 12], &sample, &cfg);
    println!("\n T | NA error | SA error | total");
    for c in &sweep.candidates {
        let marker = if c.t == sweep.best.t { "  <- best" } else { "" };
        println!(
            "{:>2} | {:.4}   | {:.4}   | {:.4}{marker}",
            c.t, c.neighbor_error, c.stranger_error, c.total_error
        );
    }

    // 3. Or do both in one call.
    let params = auto_params(graph, target, &cfg);
    println!("\nauto_params → S = {}, T = {}", params.s, params.t);

    // 4. Verify on a held-out seed: stand up a service with the tuned
    //    parameters and compare its indexed answer to its exact answer.
    let service = ServiceBuilder::in_memory((**graph).clone())
        .preprocess(params)
        .build()
        .expect("valid serving configuration");
    let holdout = 4099 % graph.n() as u32;
    let approx = service.query(holdout).unwrap();
    let exact = service
        .submit(&QueryRequest::single(holdout).exact())
        .unwrap()
        .result
        .into_scores()
        .pop()
        .unwrap();
    let err: f64 = approx.iter().zip(&exact).map(|(a, b)| (a - b).abs()).sum();
    println!("held-out seed {holdout}: L1 error {err:.4} (target {target})");
    assert!(err <= target);
}
