//! Integration tests for the persistence layers: graph snapshots, TPA
//! index save/load, and the out-of-core pipeline — the "preprocess once,
//! query anywhere" deployment story.

use tpa::offcore::DiskGraph;
use tpa::{CpiConfig, SeedSet, TpaIndex, TpaParams, Transition};
use tpa_eval::metrics;
use tpa_graph::io;

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("tpa-persist-{name}-{}", std::process::id()))
}

#[test]
fn full_persistence_pipeline() {
    // generate → snapshot to disk → reload → preprocess → save index →
    // reload index → query; every step must preserve the exact result.
    let spec = tpa_datasets::spec("slashdot-s").unwrap().scaled_down(10);
    let d = tpa_datasets::generate(&spec);

    let graph_path = tmp("graph");
    io::write_snapshot_file(&d.graph, &graph_path).unwrap();
    let reloaded = io::read_snapshot_file(&graph_path).unwrap();
    assert_eq!(*d.graph, reloaded);

    let params = TpaParams::new(spec.s, spec.t);
    let index = TpaIndex::preprocess(&reloaded, params);
    let index_path = tmp("index");
    index.save(std::fs::File::create(&index_path).unwrap()).unwrap();
    let loaded = TpaIndex::load(std::fs::File::open(&index_path).unwrap()).unwrap();

    let t = Transition::new(&reloaded);
    for seed in [0u32, 7, 100] {
        assert_eq!(index.query(&t, seed), loaded.query(&t, seed), "seed {seed}");
    }

    let _ = std::fs::remove_file(graph_path);
    let _ = std::fs::remove_file(index_path);
}

#[test]
fn offcore_pipeline_equals_in_memory() {
    let spec = tpa_datasets::spec("slashdot-s").unwrap().scaled_down(10);
    let d = tpa_datasets::generate(&spec);
    let disk_path = tmp("offcore");
    let disk = DiskGraph::create(&d.graph, &disk_path).unwrap();

    let params = TpaParams::new(spec.s, spec.t);
    let mem_index = TpaIndex::preprocess(&d.graph, params);
    let disk_index = TpaIndex::preprocess_on(&disk, params);
    assert_eq!(mem_index.stranger(), disk_index.stranger());

    let t = Transition::new(&d.graph);
    let seeds = SeedSet::single(13);
    let a = mem_index.query_seeds(&t, &seeds);
    let b = disk_index.query_on(&disk, &seeds);
    assert!(metrics::l1_error(&a, &b) < 1e-14);

    let _ = std::fs::remove_file(disk_path);
}

#[test]
fn index_survives_exactness_contract_after_roundtrip() {
    // The loaded index must still satisfy Theorem 2 against fresh ground
    // truth (guards against lossy serialization).
    let spec = tpa_datasets::spec("slashdot-s").unwrap().scaled_down(10);
    let d = tpa_datasets::generate(&spec);
    let params = TpaParams::new(4, 9);
    let index = TpaIndex::preprocess(&d.graph, params);
    let mut buf = Vec::new();
    index.save(&mut buf).unwrap();
    let loaded = TpaIndex::load(std::io::Cursor::new(buf)).unwrap();

    let t = Transition::new(&d.graph);
    let exact = tpa::exact_rwr(&d.graph, 21, &CpiConfig::default());
    let err = metrics::l1_error(&loaded.query(&t, 21), &exact);
    assert!(err <= tpa::bounds::total_bound(params.c, params.s) + 1e-9);
}

#[test]
fn edge_list_and_snapshot_agree() {
    let spec = tpa_datasets::spec("slashdot-s").unwrap().scaled_down(20);
    let d = tpa_datasets::generate(&spec);
    let mut text = Vec::new();
    io::write_edge_list(&d.graph, &mut text).unwrap();
    let mut bin = Vec::new();
    io::write_snapshot(&d.graph, &mut bin).unwrap();
    let from_text = io::read_edge_list(std::io::Cursor::new(text), Some(d.graph.n())).unwrap();
    let from_bin = io::read_snapshot(std::io::Cursor::new(bin)).unwrap();
    assert_eq!(from_text, from_bin);
}
