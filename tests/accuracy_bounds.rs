//! Cross-crate integration tests: the paper's theoretical guarantees hold
//! end-to-end on dataset-like graphs for every valid parameter setting.

use tpa::bounds;
use tpa::{exact_rwr, CpiConfig, SeedSet, TpaIndex, TpaParams, Transition};
use tpa_eval::metrics;

fn dataset(scale: usize) -> tpa_datasets::Dataset {
    let spec = tpa_datasets::spec("slashdot-s").unwrap().scaled_down(scale);
    tpa_datasets::generate(&spec)
}

#[test]
fn theorem2_holds_across_parameter_grid() {
    let d = dataset(8);
    let t = Transition::new(&d.graph);
    let exact = exact_rwr(&d.graph, 17, &CpiConfig::default());
    for s in [2usize, 4, 6] {
        for extra in [1usize, 5, 10] {
            let params = TpaParams::new(s, s + extra);
            let index = TpaIndex::preprocess(&d.graph, params);
            let approx = index.query(&t, 17);
            let err = metrics::l1_error(&approx, &exact);
            let bound = bounds::total_bound(params.c, s);
            assert!(err <= bound + 1e-9, "S={s} T={} err {err} bound {bound}", s + extra);
        }
    }
}

#[test]
fn lemma1_stranger_bound_holds() {
    let d = dataset(8);
    let t = Transition::new(&d.graph);
    let cfg = CpiConfig::default();
    for tt in [6usize, 10, 15] {
        let p_stranger = tpa::pagerank_window(&d.graph, &cfg, tt, None).scores;
        for seed in [0u32, 99, 400] {
            let dec = tpa::decompose(&t, &SeedSet::single(seed), &cfg, 5.min(tt - 1), tt);
            let err = metrics::l1_error(&dec.stranger, &p_stranger);
            let bound = bounds::stranger_bound(cfg.c, tt);
            assert!(err <= bound + 1e-9, "T={tt} seed={seed}: {err} > {bound}");
        }
    }
}

#[test]
fn lemma3_neighbor_bound_holds() {
    let d = dataset(8);
    let t = Transition::new(&d.graph);
    let cfg = CpiConfig::default();
    let (s, tt) = (4usize, 12usize);
    let params = TpaParams::new(s, tt);
    for seed in [3u32, 250] {
        let dec = tpa::decompose(&t, &SeedSet::single(seed), &cfg, s, tt);
        let approx: Vec<f64> = dec.family.iter().map(|&f| params.neighbor_scale() * f).collect();
        let err = metrics::l1_error(&dec.neighbor, &approx);
        let bound = bounds::neighbor_bound(cfg.c, s, tt);
        assert!(err <= bound + 1e-9, "seed {seed}: {err} > {bound}");
    }
}

#[test]
fn lemma2_part_masses_exact_on_datasets() {
    let d = dataset(10);
    let t = Transition::new(&d.graph);
    let cfg = CpiConfig::default();
    let (s, tt) = (5, 10);
    let dec = tpa::decompose(&t, &SeedSet::single(1), &cfg, s, tt);
    let df = 1.0 - cfg.c;
    let fam: f64 = dec.family.iter().sum();
    let nei: f64 = dec.neighbor.iter().sum();
    assert!((fam - (1.0 - df.powi(s as i32))).abs() < 1e-10);
    assert!((nei - (df.powi(s as i32) - df.powi(tt as i32))).abs() < 1e-10);
}

#[test]
fn preprocessing_is_seed_independent_and_reusable() {
    // One index must serve every seed with bounded error.
    let d = dataset(8);
    let t = Transition::new(&d.graph);
    let params = TpaParams::new(5, 10);
    let index = TpaIndex::preprocess(&d.graph, params);
    let bound = bounds::total_bound(params.c, params.s);
    for seed in [0u32, 1, 2, 100, 500, 1000] {
        let seed = seed % d.graph.n() as u32;
        let err = metrics::l1_error(
            &index.query(&t, seed),
            &exact_rwr(&d.graph, seed, &CpiConfig::default()),
        );
        assert!(err <= bound + 1e-9, "seed {seed}");
    }
}

#[test]
fn practical_error_beats_bound_on_block_structured_graphs() {
    // The paper's headline empirical claim (Table III): block-wise
    // structure pushes the real error well below the worst case.
    let d = dataset(4);
    let t = Transition::new(&d.graph);
    let params = TpaParams::new(5, 15);
    let index = TpaIndex::preprocess(&d.graph, params);
    let bound = bounds::total_bound(params.c, params.s);
    let mut errs = Vec::new();
    for seed in tpa_eval::seeds::sample_seeds(d.graph.n(), 10, 7) {
        errs.push(metrics::l1_error(
            &index.query(&t, seed),
            &exact_rwr(&d.graph, seed, &CpiConfig::default()),
        ));
    }
    let mean = errs.iter().sum::<f64>() / errs.len() as f64;
    assert!(mean < 0.8 * bound, "mean err {mean} vs bound {bound}");
}
