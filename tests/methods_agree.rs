//! Cross-method integration tests: every implemented RWR method — exact or
//! approximate — must agree on dataset-like graphs within its own accuracy
//! regime, and the exact methods must agree to solver tolerance.

use std::sync::Arc;
use tpa::baselines::{
    BePi, BePiConfig, BearApprox, BearConfig, Brppr, BrpprConfig, Fora, ForaConfig, ForaIndex,
    ForwardPush, HubPpr, HubPprConfig, MemoryBudget, MonteCarlo, MonteCarloConfig, NbLin,
    NbLinConfig, PowerIteration, RwrMethod, Tpa,
};
use tpa::{CpiConfig, TpaParams};
use tpa_eval::metrics;

fn dataset() -> tpa_datasets::Dataset {
    let spec = tpa_datasets::spec("slashdot-s").unwrap().scaled_down(10);
    tpa_datasets::generate(&spec)
}

fn exact(d: &tpa_datasets::Dataset, seed: u32) -> Vec<f64> {
    tpa::exact_rwr(&d.graph, seed, &CpiConfig { eps: 1e-12, ..Default::default() })
}

#[test]
fn exact_methods_agree_to_tolerance() {
    let d = dataset();
    let g = Arc::clone(&d.graph);
    let truth = exact(&d, 5);

    let power = PowerIteration::new(Arc::clone(&g), CpiConfig::default());
    let bepi =
        BePi::preprocess(Arc::clone(&g), BePiConfig::default(), MemoryBudget::unlimited()).unwrap();
    let bear_exact = BearApprox::preprocess(
        g,
        BearConfig { drop_tolerance: Some(0.0), ..Default::default() },
        MemoryBudget::unlimited(),
    )
    .unwrap();

    for m in [&power as &dyn RwrMethod, &bepi, &bear_exact] {
        let err = metrics::l1_error(&m.query(5), &truth);
        assert!(err < 1e-5, "{}: err {err}", m.name());
    }
}

#[test]
fn approximate_methods_within_their_regimes() {
    let d = dataset();
    let g = Arc::clone(&d.graph);
    let truth = exact(&d, 9);

    // (method, max acceptable L1 error on this graph)
    let tpa = Tpa::preprocess(
        Arc::clone(&g),
        TpaParams::new(d.spec.s, d.spec.t),
        MemoryBudget::unlimited(),
    )
    .unwrap();
    let fora = Fora::new(Arc::clone(&g), ForaConfig::default());
    let fora_idx =
        ForaIndex::preprocess(Arc::clone(&g), ForaConfig::default(), MemoryBudget::unlimited())
            .unwrap();
    let brppr = Brppr::new(Arc::clone(&g), BrpprConfig::default());
    let hub = HubPpr::preprocess(
        Arc::clone(&g),
        HubPprConfig { rmax_backward: 1e-4, walks: 30_000, ..Default::default() },
        MemoryBudget::unlimited(),
    )
    .unwrap();
    let nblin = NbLin::preprocess(
        Arc::clone(&g),
        NbLinConfig { rank: 128, ..Default::default() },
        MemoryBudget::unlimited(),
    )
    .unwrap();
    let mc =
        MonteCarlo::new(Arc::clone(&g), MonteCarloConfig { walks: 200_000, ..Default::default() });
    let push = ForwardPush::new(g, 0.15, 1e-7);

    let cases: Vec<(&dyn RwrMethod, f64)> = vec![
        (&tpa, tpa::bounds::total_bound(0.15, d.spec.s)),
        (&fora, 0.1),
        (&fora_idx, 0.1),
        (&brppr, 0.1),
        (&hub, 0.15),
        (&nblin, 0.9),
        (&mc, 0.1),
        (&push, 0.01),
    ];
    for (m, max_err) in cases {
        let err = metrics::l1_error(&m.query(9), &truth);
        assert!(err < max_err, "{}: err {err} > {max_err}", m.name());
    }
}

#[test]
fn all_methods_recover_the_top_10() {
    // The application-level contract (Fig. 7): whatever their L1 error,
    // every method must rank the clearly-relevant nodes on top.
    let d = dataset();
    let g = Arc::clone(&d.graph);
    let truth = exact(&d, 21);

    let tpa = Tpa::preprocess(
        Arc::clone(&g),
        TpaParams::new(d.spec.s, d.spec.t),
        MemoryBudget::unlimited(),
    )
    .unwrap();
    let fora = Fora::new(Arc::clone(&g), ForaConfig::default());
    let brppr = Brppr::new(Arc::clone(&g), BrpprConfig::default());
    let bepi =
        BePi::preprocess(Arc::clone(&g), BePiConfig::default(), MemoryBudget::unlimited()).unwrap();

    for m in [&tpa as &dyn RwrMethod, &fora, &brppr, &bepi] {
        let recall = metrics::recall_at_k(&truth, &m.query(21), 10);
        assert!(recall >= 0.8, "{}: top-10 recall {recall}", m.name());
    }
}

#[test]
fn index_sizes_ordered_as_in_fig1a() {
    // TPA's index must be the smallest of the preprocessing methods.
    let d = dataset();
    let g = Arc::clone(&d.graph);
    let tpa = Tpa::preprocess(
        Arc::clone(&g),
        TpaParams::new(d.spec.s, d.spec.t),
        MemoryBudget::unlimited(),
    )
    .unwrap();
    let fora_idx =
        ForaIndex::preprocess(Arc::clone(&g), ForaConfig::default(), MemoryBudget::unlimited())
            .unwrap();
    let nblin =
        NbLin::preprocess(Arc::clone(&g), NbLinConfig::default(), MemoryBudget::unlimited())
            .unwrap();
    assert!(tpa.index_bytes() < fora_idx.index_bytes(), "TPA vs FORA index");
    assert!(tpa.index_bytes() < nblin.index_bytes(), "TPA vs NB-LIN index");
}
