//! Integration tests for the propagation backends: sequential, parallel,
//! batched, weighted and out-of-core must all agree at dataset scale.

use tpa::offcore::DiskGraph;
use tpa::{cpi, CpiConfig, ParallelTransition, SeedSet, TpaIndex, TpaParams, Transition};
use tpa_eval::metrics;
use tpa_graph::unit_weights;

fn dataset() -> tpa_datasets::Dataset {
    let spec = tpa_datasets::spec("pokec-s").unwrap().scaled_down(10);
    tpa_datasets::generate(&spec)
}

#[test]
fn all_backends_agree_on_dataset() {
    let d = dataset();
    let g = &d.graph;
    let cfg = CpiConfig::default();
    let seeds = SeedSet::single(42);

    let sequential = cpi(&Transition::new(g), &seeds, &cfg, 0, None).scores;

    // Parallel: bitwise identical.
    let parallel = cpi(&ParallelTransition::new(g, 4), &seeds, &cfg, 0, None).scores;
    assert_eq!(sequential, parallel);

    // Weighted with unit weights: numerically identical.
    let wg = unit_weights(g);
    let weighted = cpi(&tpa::WeightedTransition::new(&wg), &seeds, &cfg, 0, None).scores;
    assert!(metrics::l1_error(&sequential, &weighted) < 1e-12);

    // Out-of-core: bitwise identical propagation order.
    let path = std::env::temp_dir().join(format!("tpa-backends-{}", std::process::id()));
    let disk = DiskGraph::create(g, &path).unwrap();
    let offcore = cpi(&disk, &seeds, &cfg, 0, None).scores;
    assert!(metrics::l1_error(&sequential, &offcore) < 1e-12);
    let _ = std::fs::remove_file(path);
}

#[test]
fn batched_tpa_serves_dataset_queries() {
    let d = dataset();
    let g = &d.graph;
    let t = Transition::new(g);
    let index = TpaIndex::preprocess(g, TpaParams::new(d.spec.s, d.spec.t));
    let seeds: Vec<u32> = (0..8).map(|i| (i * 131) % g.n() as u32).collect();
    let batch = index.query_batch(&t, &seeds);
    for (j, &s) in seeds.iter().enumerate() {
        assert_eq!(batch[j], index.query(&t, s), "seed {s}");
    }
}

#[test]
fn parallel_tpa_query_is_identical() {
    let d = dataset();
    let g = &d.graph;
    let index = TpaIndex::preprocess(g, TpaParams::new(d.spec.s, d.spec.t));
    let seq = index.query_seeds(&Transition::new(g), &SeedSet::single(7));
    let par = index.query_on(&ParallelTransition::new(g, 8), &SeedSet::single(7));
    assert_eq!(seq, par);
}
