//! # tpa — facade crate for the TPA reproduction workspace
//!
//! Re-exports the public API of the core algorithm crate
//! ([`tpa_core`]) and the substrate crates, so applications can depend on
//! a single crate:
//!
//! ```
//! use tpa::{TpaIndex, TpaParams, Transition};
//! use tpa_graph::gen::star_graph;
//!
//! let graph = star_graph(50);
//! let index = TpaIndex::preprocess(&graph, TpaParams::new(5, 10));
//! let scores = index.query(&Transition::new(&graph), 3);
//! assert_eq!(scores.len(), 50);
//! ```
//!
//! See the workspace README for the full architecture and DESIGN.md for
//! the paper-reproduction map.

#![warn(missing_docs)]

pub use tpa_core::*;

pub use tpa_baselines as baselines;
pub use tpa_datasets as datasets;
pub use tpa_eval as eval;
pub use tpa_graph as graph;
pub use tpa_linalg as linalg;
