//! Property-based tests for the linear-algebra substrate.

use proptest::prelude::*;
use tpa_linalg::{qr::qr, sym_eigen, vecops, DenseMatrix, Lu, SparseMatrix};

/// Strategy: a small well-conditioned (diagonally dominant) square matrix.
fn dom_matrix() -> impl Strategy<Value = DenseMatrix> {
    (2usize..8).prop_flat_map(|n| {
        proptest::collection::vec(-1.0f64..1.0, n * n).prop_map(move |mut data| {
            for i in 0..n {
                data[i * n + i] += n as f64 + 1.0;
            }
            DenseMatrix::from_flat(n, n, data)
        })
    })
}

/// Strategy: sparse matrix as triplets.
fn sparse_inputs() -> impl Strategy<Value = (usize, usize, Vec<(u32, u32, f64)>)> {
    (1usize..12, 1usize..12).prop_flat_map(|(r, c)| {
        let triplet = (0..r as u32, 0..c as u32, -10.0f64..10.0);
        (Just(r), Just(c), proptest::collection::vec(triplet, 0..40))
    })
}

proptest! {
    /// LU solve then multiply gives back the right-hand side.
    #[test]
    fn lu_solve_residual_small(a in dom_matrix(), seed in 0u64..100) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let n = a.nrows();
        let mut rng = StdRng::seed_from_u64(seed);
        let b: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() - 0.5).collect();
        let x = Lu::factor(&a).unwrap().solve(&b);
        let ax = a.matvec(&x);
        prop_assert!(vecops::l1_distance(&ax, &b) < 1e-8);
    }

    /// A·A⁻¹ = I for diagonally dominant matrices.
    #[test]
    fn lu_inverse_is_right_inverse(a in dom_matrix()) {
        let inv = Lu::factor(&a).unwrap().inverse();
        let err = a.matmul(&inv)
            .add_scaled(-1.0, &DenseMatrix::identity(a.nrows()))
            .max_abs();
        prop_assert!(err < 1e-8, "residual {err}");
    }

    /// QR reconstructs and Q is orthonormal, for random rectangular input.
    #[test]
    fn qr_invariants(rows in 2usize..10, extra in 0usize..5, seed in 0u64..100) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let cols = rows.saturating_sub(extra).max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..rows * cols).map(|_| rng.gen::<f64>() - 0.5).collect();
        let a = DenseMatrix::from_flat(rows, cols, data);
        let f = qr(&a);
        let rec_err = f.q.matmul(&f.r).add_scaled(-1.0, &a).max_abs();
        prop_assert!(rec_err < 1e-10, "reconstruction {rec_err}");
        let gram_err = f.q.transpose().matmul(&f.q)
            .add_scaled(-1.0, &DenseMatrix::identity(cols))
            .max_abs();
        prop_assert!(gram_err < 1e-10, "orthonormality {gram_err}");
    }

    /// Jacobi eigen residual ‖A·v − λ·v‖ is tiny for random symmetric input.
    #[test]
    fn eigen_residual_small(n in 2usize..8, seed in 0u64..100) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let x = rng.gen::<f64>() - 0.5;
                a.set(i, j, x);
                a.set(j, i, x);
            }
        }
        let e = sym_eigen(&a);
        for i in 0..n {
            let v = e.vectors.col(i);
            let av = a.matvec(&v);
            let mut lv = v.clone();
            vecops::scale(e.values[i], &mut lv);
            prop_assert!(vecops::l1_distance(&av, &lv) < 1e-8);
        }
    }

    /// Sparse matvec agrees with densified matvec.
    #[test]
    fn sparse_matvec_matches_dense((r, c, ts) in sparse_inputs(), seed in 0u64..50) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let m = SparseMatrix::from_triplets(r, c, ts);
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<f64> = (0..c).map(|_| rng.gen::<f64>() - 0.5).collect();
        let sparse_y = m.matvec(&x);
        let dense_y = m.to_dense().matvec(&x);
        prop_assert!(vecops::l1_distance(&sparse_y, &dense_y) < 1e-10);
    }

    /// Sparse transpose-matvec agrees with the transpose's matvec.
    #[test]
    fn sparse_matvec_t_consistent((r, c, ts) in sparse_inputs(), seed in 0u64..50) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let m = SparseMatrix::from_triplets(r, c, ts);
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<f64> = (0..r).map(|_| rng.gen::<f64>() - 0.5).collect();
        prop_assert!(vecops::l1_distance(&m.matvec_t(&x), &m.transpose().matvec(&x)) < 1e-10);
    }

    /// Sparse × sparse equals dense × dense.
    #[test]
    fn sparse_matmul_matches_dense(
        (r, k, ts1) in sparse_inputs(),
        extra in 1usize..10,
        seed in 0u64..50,
    ) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let a = SparseMatrix::from_triplets(r, k, ts1);
        let mut rng = StdRng::seed_from_u64(seed);
        let c2 = extra;
        let ts2: Vec<(u32, u32, f64)> = (0..30)
            .map(|_| (
                rng.gen_range(0..k as u32),
                rng.gen_range(0..c2 as u32),
                rng.gen::<f64>() - 0.5,
            ))
            .collect();
        let b = SparseMatrix::from_triplets(k, c2, ts2);
        let prod = a.matmul(&b).to_dense();
        let want = a.to_dense().matmul(&b.to_dense());
        prop_assert!(prod.add_scaled(-1.0, &want).max_abs() < 1e-10);
    }

    /// drop_tolerance never increases nnz and keeps large entries intact.
    #[test]
    fn drop_tolerance_monotone((r, c, ts) in sparse_inputs(), tol in 0.0f64..5.0) {
        let m = SparseMatrix::from_triplets(r, c, ts);
        let d = m.drop_tolerance(tol);
        prop_assert!(d.nnz() <= m.nnz());
        for row in 0..r {
            let (cols, vals) = m.row(row);
            for (col, v) in cols.iter().zip(vals) {
                if v.abs() >= tol {
                    prop_assert_eq!(d.get(row, *col as usize), *v);
                }
            }
        }
    }
}
