//! # tpa-linalg — linear-algebra substrate for the TPA reproduction
//!
//! From-scratch dense and sparse linear algebra sized for the needs of the
//! competitor RWR methods:
//!
//! * [`DenseMatrix`], [`Lu`], [`qr::qr`], [`sym_eigen`] — direct dense
//!   kernels (NB-LIN's Woodbury core, BEAR's Schur complement).
//! * [`randomized_svd`] — Halko-style truncated SVD over any [`LinOp`]
//!   (NB-LIN's low-rank decomposition).
//! * [`SparseMatrix`] — CSR with product/transpose/extract/drop-tolerance
//!   (BEAR and BePI block elimination).
//! * [`solvers`] — Richardson and BiCGSTAB iterative solvers (BePI's
//!   query-time Schur solve).
//! * [`PatternMatrix`] — bit-packed boolean matrix powers (the Fig. 3/4
//!   density experiments).

#![warn(missing_docs)]
// Dense/sparse kernels index rows and columns directly; iterator chains
// obscure the math without changing the codegen.
#![allow(clippy::needless_range_loop)]

mod dense;
mod eigen;
mod lu;
mod pattern;
pub mod qr;
pub mod solvers;
mod sparse;
mod svd;
pub mod vecops;

pub use dense::DenseMatrix;
pub use eigen::{sym_eigen, SymEigen};
pub use lu::{Lu, SingularMatrix};
pub use pattern::PatternMatrix;
pub use sparse::SparseMatrix;
pub use svd::{randomized_svd, Svd, SvdConfig};

/// Abstract linear operator `A : ℝⁿ → ℝᵐ` with access to both `A·x` and
/// `Aᵀ·x`. Lets the randomized SVD and the iterative solvers run against
/// sparse matrices, graph transition operators, or composed operators
/// without materializing anything.
pub trait LinOp {
    /// Output dimension `m`.
    fn nrows(&self) -> usize;
    /// Input dimension `n`.
    fn ncols(&self) -> usize;
    /// `y ← A·x` (`y` has length `m`).
    fn apply(&self, x: &[f64], y: &mut [f64]);
    /// `y ← Aᵀ·x` (`y` has length `n`).
    fn apply_t(&self, x: &[f64], y: &mut [f64]);
}
