//! Boolean (pattern-only) matrix powers over bitset rows.
//!
//! Fig. 3 and Fig. 4(a) of the paper track how the *sparsity pattern* of
//! `(Ãᵀ)^i` fills in as `i` grows. Storing one bit per potential entry makes
//! this affordable (`n²/8` bytes) even when the numeric matrix power would
//! not fit.

/// Dense boolean matrix with bit-packed rows.
#[derive(Clone, Debug, PartialEq)]
pub struct PatternMatrix {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl PatternMatrix {
    /// All-zeros pattern of order `n`.
    pub fn empty(n: usize) -> Self {
        let words_per_row = n.div_ceil(64);
        Self { n, words_per_row, bits: vec![0; n * words_per_row] }
    }

    /// Identity pattern.
    pub fn identity(n: usize) -> Self {
        let mut p = Self::empty(n);
        for i in 0..n {
            p.set(i, i);
        }
        p
    }

    /// Builds from row adjacency: `rows[r]` lists the set columns of row `r`.
    pub fn from_rows<'a>(n: usize, rows: impl Iterator<Item = (usize, &'a [u32])>) -> Self {
        let mut p = Self::empty(n);
        for (r, cols) in rows {
            for &c in cols {
                p.set(r, c as usize);
            }
        }
        p
    }

    /// Matrix order.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Sets bit `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize) {
        debug_assert!(r < self.n && c < self.n);
        self.bits[r * self.words_per_row + c / 64] |= 1u64 << (c % 64);
    }

    /// Tests bit `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        debug_assert!(r < self.n && c < self.n);
        self.bits[r * self.words_per_row + c / 64] & (1u64 << (c % 64)) != 0
    }

    /// Row `r` as a word slice.
    #[inline]
    fn row(&self, r: usize) -> &[u64] {
        &self.bits[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    /// Total number of set bits — `nnz` of the pattern (Fig. 4a's y-axis).
    pub fn count_nonzeros(&self) -> u64 {
        self.bits.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Set bits in row `r`.
    pub fn row_count(&self, r: usize) -> u32 {
        self.row(r).iter().map(|w| w.count_ones()).sum()
    }

    /// Pattern product `adjacency × self`: row `r` of the result is the
    /// union of `self`'s rows indexed by `adj_rows(r)`.
    ///
    /// With `self = pattern((Ãᵀ)^i)` and `adj_rows` the rows of `Ãᵀ`, the
    /// result is `pattern((Ãᵀ)^{i+1})`.
    pub fn premultiply_by_adjacency<'a>(
        &self,
        adj_rows: impl Fn(usize) -> &'a [u32],
    ) -> PatternMatrix {
        let mut out = PatternMatrix::empty(self.n);
        for r in 0..self.n {
            let dst_start = r * self.words_per_row;
            for &k in adj_rows(r) {
                let src = self.row(k as usize);
                let dst = &mut out.bits[dst_start..dst_start + self.words_per_row];
                for (d, s) in dst.iter_mut().zip(src) {
                    *d |= s;
                }
            }
        }
        out
    }

    /// Counts set bits inside each cell of a `g × g` grid coarsening of the
    /// matrix — the data behind the Fig. 3 heat maps.
    pub fn block_counts(&self, g: usize) -> Vec<Vec<u64>> {
        assert!(g >= 1);
        let mut grid = vec![vec![0u64; g]; g];
        let cell = |i: usize| (i * g / self.n).min(g - 1);
        for r in 0..self.n {
            let gr = cell(r);
            for (wi, &w) in self.row(r).iter().enumerate() {
                let mut word = w;
                while word != 0 {
                    let bit = word.trailing_zeros() as usize;
                    let c = wi * 64 + bit;
                    grid[gr][cell(c)] += 1;
                    word &= word - 1;
                }
            }
        }
        grid
    }

    /// Heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 3-cycle adjacency: 0→1→2→0 (rows of Ãᵀ are in-neighbors).
    fn cycle_in_rows() -> Vec<Vec<u32>> {
        vec![vec![2], vec![0], vec![1]]
    }

    #[test]
    fn set_get_roundtrip() {
        let mut p = PatternMatrix::empty(70);
        p.set(0, 0);
        p.set(69, 69);
        p.set(3, 65);
        assert!(p.get(0, 0) && p.get(69, 69) && p.get(3, 65));
        assert!(!p.get(1, 1));
        assert_eq!(p.count_nonzeros(), 3);
    }

    #[test]
    fn identity_has_n_nonzeros() {
        let p = PatternMatrix::identity(100);
        assert_eq!(p.count_nonzeros(), 100);
        assert!(p.get(42, 42));
    }

    #[test]
    fn cycle_power_permutes() {
        let rows = cycle_in_rows();
        // pattern(M^1) where M[r][c]=1 iff c in rows[r].
        let m1 = PatternMatrix::from_rows(3, rows.iter().enumerate().map(|(r, c)| (r, &c[..])));
        assert_eq!(m1.count_nonzeros(), 3);
        let m2 = m1.premultiply_by_adjacency(|r| &rows[r][..]);
        // M² of a 3-cycle is the other 3-cycle direction; still 3 nonzeros.
        assert_eq!(m2.count_nonzeros(), 3);
        let m3 = m2.premultiply_by_adjacency(|r| &rows[r][..]);
        // M³ = I.
        assert_eq!(m3, PatternMatrix::identity(3));
    }

    #[test]
    fn star_power_fills() {
        // Star: hub 0 ↔ leaves 1,2,3. In-rows (sources of in-edges):
        let rows: Vec<Vec<u32>> = vec![vec![1, 2, 3], vec![0], vec![0], vec![0]];
        let m1 = PatternMatrix::from_rows(4, rows.iter().enumerate().map(|(r, c)| (r, &c[..])));
        let m2 = m1.premultiply_by_adjacency(|r| &rows[r][..]);
        // Two hops: leaf→leaf via hub, hub→hub via any leaf.
        assert!(m2.get(1, 2) && m2.get(0, 0));
        assert!(m2.count_nonzeros() > m1.count_nonzeros());
    }

    #[test]
    fn block_counts_partition_all_bits() {
        let mut p = PatternMatrix::empty(10);
        for i in 0..10 {
            p.set(i, 9 - i);
        }
        let grid = p.block_counts(2);
        let total: u64 = grid.iter().flatten().sum();
        assert_eq!(total, p.count_nonzeros());
        // Anti-diagonal: bits fall in the off-diagonal blocks.
        assert_eq!(grid[0][0], 0);
        assert_eq!(grid[0][1], 5);
        assert_eq!(grid[1][0], 5);
    }

    #[test]
    fn row_count_sums_to_total() {
        let mut p = PatternMatrix::empty(65);
        p.set(0, 64);
        p.set(0, 0);
        p.set(64, 1);
        assert_eq!(p.row_count(0), 2);
        assert_eq!(p.row_count(64), 1);
        let sum: u64 = (0..65).map(|r| p.row_count(r) as u64).sum();
        assert_eq!(sum, p.count_nonzeros());
    }
}
