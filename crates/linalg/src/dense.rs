//! Row-major dense matrices. Sized for the *small* dense blocks that appear
//! inside NB-LIN (rank-t factors) and BEAR (Schur complements) — not for
//! whole-graph matrices.

use std::fmt;

/// Row-major dense matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DenseMatrix {}x{}", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            let row: Vec<String> = self.row(r).iter().take(8).map(|v| format!("{v:9.4}")).collect();
            writeln!(f, "  [{}{}]", row.join(", "), if self.cols > 8 { ", …" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        Ok(())
    }
}

impl DenseMatrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds from a row-major flat buffer. Panics if sizes disagree.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "flat buffer has wrong length");
        Self { rows, cols, data }
    }

    /// Builds from nested row slices (test convenience).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Extracts column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }

    /// `y = self · x` (matrix–vector).
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for r in 0..self.rows {
            y[r] = crate::vecops::dot(self.row(r), x);
        }
        y
    }

    /// `y = selfᵀ · x`.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "matvec_t dimension mismatch");
        let mut y = vec![0.0; self.cols];
        for r in 0..self.rows {
            let xr = x[r];
            if xr != 0.0 {
                crate::vecops::axpy(xr, self.row(r), &mut y);
            }
        }
        y
    }

    /// Matrix product `self · other` (ikj loop order for cache locality).
    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.get(i, k);
                if aik == 0.0 {
                    continue;
                }
                let brow = other.row(k);
                let orow = out.row_mut(i);
                crate::vecops::axpy(aik, brow, orow);
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> DenseMatrix {
        let mut t = DenseMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// `self + alpha·other` elementwise.
    pub fn add_scaled(&self, alpha: f64, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a + alpha * b).collect();
        Self { rows: self.rows, cols: self.cols, data }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, v| m.max(v.abs()))
    }

    /// Keeps the first `k` columns (used to trim oversampled SVD factors).
    pub fn take_cols(&self, k: usize) -> DenseMatrix {
        assert!(k <= self.cols);
        let mut out = DenseMatrix::zeros(self.rows, k);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[..k]);
        }
        out
    }

    /// Keeps the first `k` rows.
    pub fn take_rows(&self, k: usize) -> DenseMatrix {
        assert!(k <= self.rows);
        DenseMatrix::from_flat(k, self.cols, self.data[..k * self.cols].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matvec_is_identity() {
        let i3 = DenseMatrix::identity(3);
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(i3.matvec(&x), x);
    }

    #[test]
    fn matmul_known_product() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = DenseMatrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, DenseMatrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transpose_roundtrip() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn matvec_t_matches_transpose_matvec() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let x = vec![1.0, -1.0];
        assert_eq!(a.matvec_t(&x), a.transpose().matvec(&x));
    }

    #[test]
    fn add_scaled_and_norms() {
        let a = DenseMatrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        let b = DenseMatrix::zeros(2, 2);
        assert_eq!(b.add_scaled(1.0, &a), a);
        assert_eq!(a.frobenius_norm(), 5.0);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn take_cols_trims() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = a.take_cols(2);
        assert_eq!(t, DenseMatrix::from_rows(&[&[1.0, 2.0], &[4.0, 5.0]]));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_rejects_bad_dims() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        a.matmul(&b);
    }
}
