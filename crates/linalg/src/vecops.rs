//! Small dense-vector helpers shared by every solver and method crate.

/// Dot product `xᵀy`. Panics on length mismatch.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// `y ← y + alpha·x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x ← alpha·x`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// L1 norm `Σ|xᵢ|`.
#[inline]
pub fn norm1(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// L2 (Euclidean) norm.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Max (infinity) norm.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |m, v| m.max(v.abs()))
}

/// L1 distance `‖x − y‖₁` without allocating the difference.
#[inline]
pub fn l1_distance(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| (a - b).abs()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let x = [3.0, -4.0];
        assert_eq!(dot(&x, &x), 25.0);
        assert_eq!(norm2(&x), 5.0);
        assert_eq!(norm1(&x), 7.0);
        assert_eq!(norm_inf(&x), 4.0);
    }

    #[test]
    fn axpy_scale() {
        let mut y = vec![1.0, 2.0];
        axpy(2.0, &[10.0, 20.0], &mut y);
        assert_eq!(y, vec![21.0, 42.0]);
        scale(0.5, &mut y);
        assert_eq!(y, vec![10.5, 21.0]);
    }

    #[test]
    fn l1_distance_matches_manual() {
        assert_eq!(l1_distance(&[1.0, 2.0], &[0.0, 4.5]), 3.5);
    }

    #[test]
    #[should_panic]
    fn dot_rejects_mismatched_lengths() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
