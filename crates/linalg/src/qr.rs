//! Thin Householder QR — the orthonormalization step of the randomized SVD
//! range finder.

use crate::DenseMatrix;

/// Thin QR factorization `A = Q·R` of an `m × k` matrix with `m ≥ k`:
/// `Q` is `m × k` with orthonormal columns, `R` is `k × k` upper triangular.
#[derive(Clone, Debug)]
pub struct Qr {
    /// Orthonormal factor.
    pub q: DenseMatrix,
    /// Upper-triangular factor.
    pub r: DenseMatrix,
}

/// Computes the thin QR of `a` via Householder reflections.
pub fn qr(a: &DenseMatrix) -> Qr {
    let m = a.nrows();
    let k = a.ncols();
    assert!(m >= k, "thin QR requires nrows >= ncols");

    // Work on a copy; reflectors are accumulated in `vs`.
    let mut r_full = a.clone();
    let mut vs: Vec<Vec<f64>> = Vec::with_capacity(k);

    for j in 0..k {
        // Householder vector for column j below the diagonal.
        let mut v = vec![0.0; m - j];
        for i in j..m {
            v[i - j] = r_full.get(i, j);
        }
        let alpha = -v[0].signum() * crate::vecops::norm2(&v);
        if alpha.abs() < 1e-300 {
            // Column already zero below the diagonal; identity reflector.
            vs.push(vec![0.0; m - j]);
            continue;
        }
        v[0] -= alpha;
        let vnorm = crate::vecops::norm2(&v);
        if vnorm < 1e-300 {
            vs.push(vec![0.0; m - j]);
            continue;
        }
        for x in &mut v {
            *x /= vnorm;
        }
        // Apply H = I − 2vvᵀ to the trailing submatrix of R.
        for c in j..k {
            let mut proj = 0.0;
            for i in j..m {
                proj += v[i - j] * r_full.get(i, c);
            }
            proj *= 2.0;
            for i in j..m {
                let val = r_full.get(i, c) - proj * v[i - j];
                r_full.set(i, c, val);
            }
        }
        vs.push(v);
    }

    // R = leading k × k block of the transformed matrix.
    let mut r = DenseMatrix::zeros(k, k);
    for i in 0..k {
        for j in i..k {
            r.set(i, j, r_full.get(i, j));
        }
    }

    // Q = H₀·H₁·…·H_{k−1} applied to the first k columns of the identity.
    let mut q = DenseMatrix::zeros(m, k);
    for c in 0..k {
        q.set(c, c, 1.0);
    }
    for j in (0..k).rev() {
        let v = &vs[j];
        if v.iter().all(|&x| x == 0.0) {
            continue;
        }
        for c in 0..k {
            let mut proj = 0.0;
            for i in j..m {
                proj += v[i - j] * q.get(i, c);
            }
            proj *= 2.0;
            for i in j..m {
                let val = q.get(i, c) - proj * v[i - j];
                q.set(i, c, val);
            }
        }
    }

    Qr { q, r }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_matrix(m: usize, k: usize, seed: u64) -> DenseMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = DenseMatrix::zeros(m, k);
        for r in 0..m {
            for c in 0..k {
                a.set(r, c, rng.gen::<f64>() - 0.5);
            }
        }
        a
    }

    #[test]
    fn qr_reconstructs_input() {
        let a = random_matrix(12, 5, 1);
        let Qr { q, r } = qr(&a);
        let err = q.matmul(&r).add_scaled(-1.0, &a).max_abs();
        assert!(err < 1e-12, "reconstruction error {err}");
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let a = random_matrix(20, 7, 2);
        let Qr { q, .. } = qr(&a);
        let gram = q.transpose().matmul(&q);
        let err = gram.add_scaled(-1.0, &DenseMatrix::identity(7)).max_abs();
        assert!(err < 1e-12, "orthonormality error {err}");
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = random_matrix(10, 6, 3);
        let Qr { r, .. } = qr(&a);
        for i in 0..6 {
            for j in 0..i {
                assert!(r.get(i, j).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn square_orthogonal_input() {
        let a = DenseMatrix::identity(4);
        let Qr { q, r } = qr(&a);
        let err = q.matmul(&r).add_scaled(-1.0, &a).max_abs();
        assert!(err < 1e-13);
    }

    #[test]
    fn rank_deficient_column_does_not_panic() {
        // Third column is a multiple of the first.
        let a = DenseMatrix::from_rows(&[
            &[1.0, 0.0, 2.0],
            &[1.0, 1.0, 2.0],
            &[1.0, 2.0, 2.0],
            &[1.0, 3.0, 2.0],
        ]);
        let Qr { q, r } = qr(&a);
        let err = q.matmul(&r).add_scaled(-1.0, &a).max_abs();
        assert!(err < 1e-12);
    }
}
