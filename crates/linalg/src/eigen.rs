//! Cyclic Jacobi eigen-decomposition for small symmetric matrices — used to
//! turn the randomized range-finder's small Gram matrix into singular
//! values/vectors.

use crate::DenseMatrix;

/// Eigen-decomposition `A = V·diag(λ)·Vᵀ` of a symmetric matrix, sorted by
/// descending eigenvalue.
#[derive(Clone, Debug)]
pub struct SymEigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Column `i` of `vectors` is the eigenvector for `values[i]`.
    pub vectors: DenseMatrix,
}

/// Jacobi eigenvalue iteration. `a` must be symmetric (checked to 1e-9
/// relative tolerance). Converges quadratically; the sweep limit is a
/// safety net, not a tuning knob.
pub fn sym_eigen(a: &DenseMatrix) -> SymEigen {
    let n = a.nrows();
    assert_eq!(n, a.ncols(), "eigen needs a square matrix");
    let scale = a.max_abs().max(1e-300);
    for i in 0..n {
        for j in 0..i {
            assert!(
                (a.get(i, j) - a.get(j, i)).abs() <= 1e-9 * scale,
                "matrix is not symmetric at ({i},{j})"
            );
        }
    }

    let mut m = a.clone();
    let mut v = DenseMatrix::identity(n);
    let tol = 1e-14 * scale;

    for _sweep in 0..100 {
        // Off-diagonal Frobenius mass.
        let mut off = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                off += m.get(i, j) * m.get(i, j);
            }
        }
        if off.sqrt() <= tol {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m.get(p, q);
                if apq.abs() <= tol * 1e-2 {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the rotation on both sides: M ← JᵀMJ, V ← VJ.
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }

    // Sort eigenpairs by descending eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m.get(i, i)).collect();
    order.sort_by(|&i, &j| diag[j].partial_cmp(&diag[i]).unwrap());
    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let mut vectors = DenseMatrix::zeros(n, n);
    for (new_c, &old_c) in order.iter().enumerate() {
        for r in 0..n {
            vectors.set(r, new_c, v.get(r, old_c));
        }
    }
    SymEigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = DenseMatrix::from_rows(&[&[3.0, 0.0], &[0.0, 1.0]]);
        let e = sym_eigen(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = sym_eigen(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
        // Eigenvector for λ=3 is (1,1)/√2 up to sign.
        let v0 = e.vectors.col(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!((v0[0] - v0[1]).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_holds() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(4);
        let n = 12;
        let mut a = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let x = rng.gen::<f64>() - 0.5;
                a.set(i, j, x);
                a.set(j, i, x);
            }
        }
        let e = sym_eigen(&a);
        // A·v_i = λ_i·v_i for all i.
        for i in 0..n {
            let vi = e.vectors.col(i);
            let av = a.matvec(&vi);
            for k in 0..n {
                assert!(
                    (av[k] - e.values[i] * vi[k]).abs() < 1e-9,
                    "eigenpair {i} residual at {k}"
                );
            }
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = DenseMatrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 0.2], &[0.5, 0.2, 1.0]]);
        let e = sym_eigen(&a);
        let gram = e.vectors.transpose().matmul(&e.vectors);
        let err = gram.add_scaled(-1.0, &DenseMatrix::identity(3)).max_abs();
        assert!(err < 1e-10);
    }

    #[test]
    fn values_sorted_descending() {
        let a = DenseMatrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 5.0, 0.0], &[0.0, 0.0, 3.0]]);
        let e = sym_eigen(&a);
        assert!(e.values.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    #[should_panic(expected = "not symmetric")]
    fn rejects_asymmetric_input() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]);
        sym_eigen(&a);
    }
}
