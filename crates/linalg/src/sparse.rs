//! CSR sparse matrices with the operations the block-elimination methods
//! (BEAR, BePI) and the density experiments (Fig. 3/4) need.

use crate::DenseMatrix;

/// Sparse matrix in compressed sparse row format with `f64` values.
#[derive(Clone, Debug, PartialEq)]
pub struct SparseMatrix {
    nrows: usize,
    ncols: usize,
    offsets: Vec<usize>,
    cols: Vec<u32>,
    vals: Vec<f64>,
}

impl SparseMatrix {
    /// Builds from unsorted `(row, col, value)` triplets. Duplicate
    /// coordinates are summed; explicit zeros are kept (call
    /// [`Self::drop_tolerance`] to prune).
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        triplets: impl IntoIterator<Item = (u32, u32, f64)>,
    ) -> Self {
        let mut ts: Vec<(u32, u32, f64)> = triplets.into_iter().collect();
        for &(r, c, _) in &ts {
            assert!((r as usize) < nrows && (c as usize) < ncols, "triplet out of range");
        }
        ts.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut offsets = vec![0usize; nrows + 1];
        let mut cols: Vec<u32> = Vec::with_capacity(ts.len());
        let mut vals: Vec<f64> = Vec::with_capacity(ts.len());
        let mut last: Option<(u32, u32)> = None;
        for (r, c, v) in ts {
            if last == Some((r, c)) {
                *vals.last_mut().unwrap() += v;
            } else {
                offsets[r as usize + 1] += 1;
                cols.push(c);
                vals.push(v);
                last = Some((r, c));
            }
        }
        // offsets currently hold per-row counts at index r+1; prefix-sum.
        for i in 0..nrows {
            offsets[i + 1] += offsets[i];
        }
        Self { nrows, ncols, offsets, cols, vals }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        Self {
            nrows: n,
            ncols: n,
            offsets: (0..=n).collect(),
            cols: (0..n as u32).collect(),
            vals: vec![1.0; n],
        }
    }

    /// Empty (all-zero) matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Self { nrows, ncols, offsets: vec![0; nrows + 1], cols: Vec::new(), vals: Vec::new() }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// `(columns, values)` of row `r`.
    pub fn row(&self, r: usize) -> (&[u32], &[f64]) {
        let (s, e) = (self.offsets[r], self.offsets[r + 1]);
        (&self.cols[s..e], &self.vals[s..e])
    }

    /// Entry `(r, c)` or 0.0 (binary search within the row).
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let (cols, vals) = self.row(r);
        match cols.binary_search(&(c as u32)) {
            Ok(i) => vals[i],
            Err(_) => 0.0,
        }
    }

    /// Heap footprint in bytes — the "preprocessed data size" unit of
    /// Fig. 1(a).
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.cols.len() * std::mem::size_of::<u32>()
            + self.vals.len() * std::mem::size_of::<f64>()
    }

    /// `y = A·x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "matvec dimension mismatch");
        let mut y = vec![0.0; self.nrows];
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            let mut acc = 0.0;
            for (c, v) in cols.iter().zip(vals) {
                acc += v * x[*c as usize];
            }
            y[r] = acc;
        }
        y
    }

    /// `y = Aᵀ·x` without materializing the transpose.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.nrows, "matvec_t dimension mismatch");
        let mut y = vec![0.0; self.ncols];
        for r in 0..self.nrows {
            let xr = x[r];
            if xr == 0.0 {
                continue;
            }
            let (cols, vals) = self.row(r);
            for (c, v) in cols.iter().zip(vals) {
                y[*c as usize] += v * xr;
            }
        }
        y
    }

    /// Explicit transpose.
    pub fn transpose(&self) -> SparseMatrix {
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.cols {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.ncols {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cols = vec![0u32; self.nnz()];
        let mut vals = vec![0.0; self.nnz()];
        let mut cursor = counts;
        for r in 0..self.nrows {
            let (rc, rv) = self.row(r);
            for (c, v) in rc.iter().zip(rv) {
                let pos = cursor[*c as usize];
                cols[pos] = r as u32;
                vals[pos] = *v;
                cursor[*c as usize] += 1;
            }
        }
        SparseMatrix { nrows: self.ncols, ncols: self.nrows, offsets, cols, vals }
    }

    /// Sparse × sparse product using a dense accumulator per row
    /// (Gustavson's algorithm). A separate marker array tracks touched
    /// columns — guarding on `acc == 0.0` would emit duplicate entries
    /// whenever a contribution is exactly zero or a partial sum cancels.
    pub fn matmul(&self, other: &SparseMatrix) -> SparseMatrix {
        assert_eq!(self.ncols, other.nrows, "matmul dimension mismatch");
        let mut offsets = vec![0usize; self.nrows + 1];
        let mut cols: Vec<u32> = Vec::new();
        let mut vals: Vec<f64> = Vec::new();
        let mut acc = vec![0.0f64; other.ncols];
        let mut seen = vec![false; other.ncols];
        let mut touched: Vec<u32> = Vec::new();
        for r in 0..self.nrows {
            let (rc, rv) = self.row(r);
            for (k, v) in rc.iter().zip(rv) {
                let (kc, kv) = other.row(*k as usize);
                for (c, w) in kc.iter().zip(kv) {
                    let ci = *c as usize;
                    if !seen[ci] {
                        seen[ci] = true;
                        touched.push(*c);
                    }
                    acc[ci] += v * w;
                }
            }
            touched.sort_unstable();
            for &c in &touched {
                cols.push(c);
                vals.push(acc[c as usize]);
                acc[c as usize] = 0.0;
                seen[c as usize] = false;
            }
            offsets[r + 1] = cols.len();
            touched.clear();
        }
        SparseMatrix { nrows: self.nrows, ncols: other.ncols, offsets, cols, vals }
    }

    /// Sparse × dense product (`self · d`).
    pub fn matmul_dense(&self, d: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.ncols, d.nrows(), "matmul_dense dimension mismatch");
        let mut out = DenseMatrix::zeros(self.nrows, d.ncols());
        for r in 0..self.nrows {
            let (rc, rv) = self.row(r);
            let orow = out.row_mut(r);
            for (c, v) in rc.iter().zip(rv) {
                crate::vecops::axpy(*v, d.row(*c as usize), orow);
            }
        }
        out
    }

    /// Copy with every entry `|v| < tol` removed — BEAR-APPROX's drop
    /// operation (its accuracy/space tradeoff knob).
    pub fn drop_tolerance(&self, tol: f64) -> SparseMatrix {
        let mut offsets = vec![0usize; self.nrows + 1];
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for r in 0..self.nrows {
            let (rc, rv) = self.row(r);
            for (c, v) in rc.iter().zip(rv) {
                if v.abs() >= tol {
                    cols.push(*c);
                    vals.push(*v);
                }
            }
            offsets[r + 1] = cols.len();
        }
        SparseMatrix { nrows: self.nrows, ncols: self.ncols, offsets, cols, vals }
    }

    /// `I − alpha·self` (must be square) — builds the RWR system matrix
    /// `H = I − (1−c)·Ãᵀ`.
    pub fn identity_minus_scaled(&self, alpha: f64) -> SparseMatrix {
        assert_eq!(self.nrows, self.ncols, "needs a square matrix");
        let mut triplets: Vec<(u32, u32, f64)> = Vec::with_capacity(self.nnz() + self.nrows);
        for r in 0..self.nrows {
            let (rc, rv) = self.row(r);
            for (c, v) in rc.iter().zip(rv) {
                triplets.push((r as u32, *c, -alpha * v));
            }
            triplets.push((r as u32, r as u32, 1.0));
        }
        SparseMatrix::from_triplets(self.nrows, self.ncols, triplets)
    }

    /// Extracts the submatrix with the given rows (in order) and a column
    /// remap: `col_map[c] = Some(new_index)` keeps column `c`.
    /// This is the partitioning primitive for BEAR/BePI block elimination.
    pub fn extract(&self, rows: &[u32], col_map: &[Option<u32>], new_ncols: usize) -> SparseMatrix {
        assert_eq!(col_map.len(), self.ncols);
        let mut offsets = vec![0usize; rows.len() + 1];
        let mut cols: Vec<u32> = Vec::new();
        let mut vals: Vec<f64> = Vec::new();
        let mut scratch: Vec<(u32, f64)> = Vec::new();
        for (new_r, &r) in rows.iter().enumerate() {
            let (rc, rv) = self.row(r as usize);
            scratch.clear();
            for (c, v) in rc.iter().zip(rv) {
                if let Some(nc) = col_map[*c as usize] {
                    scratch.push((nc, *v));
                }
            }
            scratch.sort_unstable_by_key(|&(c, _)| c);
            for &(c, v) in &scratch {
                cols.push(c);
                vals.push(v);
            }
            offsets[new_r + 1] = cols.len();
        }
        SparseMatrix { nrows: rows.len(), ncols: new_ncols, offsets, cols, vals }
    }

    /// Densifies (small matrices only; guards against blowup).
    pub fn to_dense(&self) -> DenseMatrix {
        assert!(
            self.nrows * self.ncols <= 64_000_000,
            "refusing to densify a {}x{} matrix",
            self.nrows,
            self.ncols
        );
        let mut d = DenseMatrix::zeros(self.nrows, self.ncols);
        for r in 0..self.nrows {
            let (rc, rv) = self.row(r);
            for (c, v) in rc.iter().zip(rv) {
                d.set(r, *c as usize, *v);
            }
        }
        d
    }

    /// Builds from a dense matrix, keeping entries with `|v| > 0`.
    pub fn from_dense(d: &DenseMatrix, tol: f64) -> SparseMatrix {
        let mut triplets = Vec::new();
        for r in 0..d.nrows() {
            for c in 0..d.ncols() {
                let v = d.get(r, c);
                if v.abs() > tol {
                    triplets.push((r as u32, c as u32, v));
                }
            }
        }
        SparseMatrix::from_triplets(d.nrows(), d.ncols(), triplets)
    }
}

impl crate::LinOp for SparseMatrix {
    fn nrows(&self) -> usize {
        self.nrows
    }
    fn ncols(&self) -> usize {
        self.ncols
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        y.copy_from_slice(&self.matvec(x));
    }
    fn apply_t(&self, x: &[f64], y: &mut [f64]) {
        y.copy_from_slice(&self.matvec_t(x));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SparseMatrix {
        // [1 0 2]
        // [0 3 0]
        SparseMatrix::from_triplets(2, 3, [(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)])
    }

    #[test]
    fn triplets_sorted_and_merged() {
        let m = SparseMatrix::from_triplets(2, 2, [(0, 1, 1.0), (0, 0, 2.0), (0, 1, 4.0)]);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 1), 5.0);
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn matvec_known() {
        let m = sample();
        assert_eq!(m.matvec(&[1.0, 1.0, 1.0]), vec![3.0, 3.0]);
    }

    #[test]
    fn matvec_t_matches_transpose() {
        let m = sample();
        let x = vec![2.0, -1.0];
        assert_eq!(m.matvec_t(&x), m.transpose().matvec(&x));
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_against_dense() {
        let a = sample(); // 2x3
        let b =
            SparseMatrix::from_triplets(3, 2, [(0, 0, 1.0), (1, 0, 2.0), (1, 1, 1.0), (2, 1, 3.0)]);
        let c = a.matmul(&b);
        let dense = a.to_dense().matmul(&b.to_dense());
        assert_eq!(c.to_dense(), dense);
    }

    #[test]
    fn matmul_handles_explicit_zeros_and_cancellation() {
        // Regression: explicit 0.0 entries and exact cancellation must not
        // produce duplicate column entries in the product.
        let a = SparseMatrix::from_triplets(1, 2, [(0, 0, 1.0), (0, 1, -1.0)]);
        // b has rows [1, 0-explicit; 1, 2] so column 0 of a·b cancels.
        let b =
            SparseMatrix::from_triplets(2, 2, [(0, 0, 1.0), (0, 1, 0.0), (1, 0, 1.0), (1, 1, 2.0)]);
        let p = a.matmul(&b);
        let (cols, _) = p.row(0);
        let mut sorted = cols.to_vec();
        sorted.dedup();
        assert_eq!(sorted.len(), cols.len(), "duplicate columns: {cols:?}");
        assert_eq!(p.get(0, 0), 0.0);
        assert_eq!(p.get(0, 1), -2.0);
    }

    #[test]
    fn identity_behaves() {
        let i = SparseMatrix::identity(3);
        assert_eq!(i.matvec(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
        assert_eq!(i.nnz(), 3);
    }

    #[test]
    fn drop_tolerance_prunes() {
        let m = SparseMatrix::from_triplets(1, 3, [(0, 0, 0.5), (0, 1, 1e-8), (0, 2, -0.7)]);
        let p = m.drop_tolerance(1e-4);
        assert_eq!(p.nnz(), 2);
        assert_eq!(p.get(0, 1), 0.0);
        assert_eq!(p.get(0, 2), -0.7);
    }

    #[test]
    fn identity_minus_scaled_builds_system_matrix() {
        let a = SparseMatrix::from_triplets(2, 2, [(0, 1, 1.0), (1, 0, 1.0)]);
        let h = a.identity_minus_scaled(0.85);
        assert_eq!(h.get(0, 0), 1.0);
        assert_eq!(h.get(0, 1), -0.85);
        assert_eq!(h.get(1, 0), -0.85);
        assert_eq!(h.get(1, 1), 1.0);
    }

    #[test]
    fn extract_submatrix() {
        // 3x3 with a full diagonal plus (0,2).
        let m =
            SparseMatrix::from_triplets(3, 3, [(0, 0, 1.0), (1, 1, 2.0), (2, 2, 3.0), (0, 2, 4.0)]);
        // Take rows [2, 0], keep columns {0→1, 2→0}.
        let col_map = vec![Some(1), None, Some(0)];
        let s = m.extract(&[2, 0], &col_map, 2);
        assert_eq!(s.nrows(), 2);
        assert_eq!(s.ncols(), 2);
        assert_eq!(s.get(0, 0), 3.0); // old (2,2)
        assert_eq!(s.get(1, 1), 1.0); // old (0,0)
        assert_eq!(s.get(1, 0), 4.0); // old (0,2)
    }

    #[test]
    fn dense_roundtrip() {
        let m = sample();
        assert_eq!(SparseMatrix::from_dense(&m.to_dense(), 0.0), m);
    }

    #[test]
    fn memory_counts_all_arrays() {
        let m = sample();
        assert_eq!(
            m.memory_bytes(),
            3 * 8 + 3 * 4 + 3 * 8 // offsets(3 usize) + cols(3 u32) + vals(3 f64)
        );
    }
}
