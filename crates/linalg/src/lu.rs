//! LU decomposition with partial pivoting — the direct solver behind
//! NB-LIN's Woodbury core and BEAR's block inversions.

use crate::DenseMatrix;

/// Packed LU factors of a square matrix (`P·A = L·U`).
#[derive(Clone, Debug)]
pub struct Lu {
    /// Combined L (unit lower, below diagonal) and U (upper) factors.
    lu: DenseMatrix,
    /// Row permutation: `perm[i]` = original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (for determinants).
    sign: f64,
}

/// Error for singular systems.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SingularMatrix;

impl std::fmt::Display for SingularMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is singular to working precision")
    }
}

impl std::error::Error for SingularMatrix {}

impl Lu {
    /// Factors `a` (must be square). Returns [`SingularMatrix`] if a pivot
    /// underflows `1e-13 · max|a|`.
    pub fn factor(a: &DenseMatrix) -> Result<Self, SingularMatrix> {
        assert_eq!(a.nrows(), a.ncols(), "LU needs a square matrix");
        let n = a.nrows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        let tiny = 1e-13 * a.max_abs().max(1e-300);

        for k in 0..n {
            // Partial pivot: the largest |entry| in column k at/below row k.
            let mut p = k;
            let mut best = lu.get(k, k).abs();
            for r in k + 1..n {
                let v = lu.get(r, k).abs();
                if v > best {
                    best = v;
                    p = r;
                }
            }
            if best <= tiny {
                return Err(SingularMatrix);
            }
            if p != k {
                perm.swap(p, k);
                sign = -sign;
                for c in 0..n {
                    let t = lu.get(k, c);
                    lu.set(k, c, lu.get(p, c));
                    lu.set(p, c, t);
                }
            }
            let pivot = lu.get(k, k);
            for r in k + 1..n {
                let factor = lu.get(r, k) / pivot;
                lu.set(r, k, factor);
                if factor != 0.0 {
                    for c in k + 1..n {
                        let v = lu.get(r, c) - factor * lu.get(k, c);
                        lu.set(r, c, v);
                    }
                }
            }
        }
        Ok(Self { lu, perm, sign })
    }

    /// Order of the factored matrix.
    pub fn n(&self) -> usize {
        self.lu.nrows()
    }

    /// Solves `A·x = b` for one right-hand side.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.n();
        assert_eq!(b.len(), n);
        // Apply permutation, then forward- and back-substitution.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for r in 1..n {
            let mut acc = x[r];
            for c in 0..r {
                acc -= self.lu.get(r, c) * x[c];
            }
            x[r] = acc;
        }
        for r in (0..n).rev() {
            let mut acc = x[r];
            for c in r + 1..n {
                acc -= self.lu.get(r, c) * x[c];
            }
            x[r] = acc / self.lu.get(r, r);
        }
        x
    }

    /// Solves for every column of `b`, returning the solution matrix.
    pub fn solve_matrix(&self, b: &DenseMatrix) -> DenseMatrix {
        assert_eq!(b.nrows(), self.n());
        let mut out = DenseMatrix::zeros(b.nrows(), b.ncols());
        for c in 0..b.ncols() {
            let col = b.col(c);
            let x = self.solve(&col);
            for (r, v) in x.into_iter().enumerate() {
                out.set(r, c, v);
            }
        }
        out
    }

    /// Explicit inverse `A⁻¹` (use sparingly; prefer [`Lu::solve`]).
    pub fn inverse(&self) -> DenseMatrix {
        self.solve_matrix(&DenseMatrix::identity(self.n()))
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.n() {
            d *= self.lu.get(i, i);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn solves_known_system() {
        // [2 1; 1 3] x = [3; 5] → x = [4/5, 7/5]
        let a = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let lu = Lu::factor(&a).unwrap();
        assert_close(&lu.solve(&[3.0, 5.0]), &[0.8, 1.4], 1e-12);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = DenseMatrix::from_rows(&[&[4.0, -2.0, 1.0], &[-2.0, 4.0, -2.0], &[1.0, -2.0, 4.0]]);
        let inv = Lu::factor(&a).unwrap().inverse();
        let prod = a.matmul(&inv);
        let err = prod.add_scaled(-1.0, &DenseMatrix::identity(3)).max_abs();
        assert!(err < 1e-12, "residual {err}");
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = Lu::factor(&a).unwrap();
        assert_close(&lu.solve(&[2.0, 3.0]), &[3.0, 2.0], 1e-14);
    }

    #[test]
    fn det_matches_closed_form() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let lu = Lu::factor(&a).unwrap();
        assert!((lu.det() + 2.0).abs() < 1e-12);
    }

    #[test]
    fn det_sign_flips_with_pivot() {
        let a = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert!((Lu::factor(&a).unwrap().det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_detected() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(Lu::factor(&a).unwrap_err(), SingularMatrix);
    }

    #[test]
    fn random_system_residual_small() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let n = 40;
        let mut a = DenseMatrix::zeros(n, n);
        for r in 0..n {
            for c in 0..n {
                a.set(r, c, rng.gen::<f64>() - 0.5);
            }
            // Diagonal dominance keeps the system well-conditioned.
            a.set(r, r, a.get(r, r) + n as f64);
        }
        let b: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let x = Lu::factor(&a).unwrap().solve(&b);
        let r = a.matvec(&x);
        assert_close(&r, &b, 1e-9);
    }
}
