//! Iterative linear solvers for the block-elimination methods.
//!
//! BePI solves its Schur-complement system `(I − M)·x = b` iteratively at
//! query time; the natural fit is Richardson iteration because the RWR
//! iteration matrix has spectral radius `(1−c) < 1`. BiCGSTAB is provided
//! as a general-purpose fallback for systems without that guarantee.

use crate::{vecops, LinOp};

/// Outcome of an iterative solve.
#[derive(Clone, Debug)]
pub struct SolveResult {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Iterations actually run.
    pub iterations: usize,
    /// Final residual norm (L1 for Richardson, L2 for BiCGSTAB).
    pub residual: f64,
    /// Whether the tolerance was reached before the iteration cap.
    pub converged: bool,
}

/// Solves `(I − M)·x = b` by the fixed-point iteration
/// `x_{k+1} = b + M·x_k`, which converges whenever `ρ(M) < 1`.
///
/// For RWR, `M = (1−c)·Ãᵀ` restricted to a block, so `ρ(M) ≤ 1−c`.
pub fn richardson(m: &dyn LinOp, b: &[f64], tol: f64, max_iters: usize) -> SolveResult {
    assert_eq!(m.nrows(), m.ncols(), "Richardson needs a square operator");
    assert_eq!(b.len(), m.nrows());
    let n = b.len();
    let mut x = b.to_vec();
    let mut mx = vec![0.0; n];
    let mut iterations = 0;
    let mut residual = f64::INFINITY;
    while iterations < max_iters {
        m.apply(&x, &mut mx);
        // next = b + M x
        let mut delta = 0.0;
        for i in 0..n {
            let next = b[i] + mx[i];
            delta += (next - x[i]).abs();
            x[i] = next;
        }
        iterations += 1;
        residual = delta;
        if delta < tol {
            return SolveResult { x, iterations, residual, converged: true };
        }
    }
    SolveResult { x, iterations, residual, converged: false }
}

/// BiCGSTAB for a general square system `A·x = b` (van der Vorst 1992).
/// Unpreconditioned; adequate for the well-conditioned RWR systems here.
pub fn bicgstab(a: &dyn LinOp, b: &[f64], tol: f64, max_iters: usize) -> SolveResult {
    assert_eq!(a.nrows(), a.ncols(), "BiCGSTAB needs a square operator");
    assert_eq!(b.len(), a.nrows());
    let n = b.len();
    let bnorm = vecops::norm2(b).max(1e-300);

    let mut x = vec![0.0; n];
    let mut r = b.to_vec(); // r = b − A·0
    let r_hat = r.clone();
    let mut rho = 1.0f64;
    let mut alpha = 1.0f64;
    let mut omega = 1.0f64;
    let mut v = vec![0.0; n];
    let mut p = vec![0.0; n];
    let mut s = vec![0.0; n];
    let mut t = vec![0.0; n];

    for k in 0..max_iters {
        let rho_new = vecops::dot(&r_hat, &r);
        if rho_new.abs() < 1e-300 {
            return SolveResult {
                x,
                iterations: k,
                residual: vecops::norm2(&r),
                converged: vecops::norm2(&r) <= tol * bnorm,
            };
        }
        let beta = (rho_new / rho) * (alpha / omega);
        rho = rho_new;
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        a.apply(&p, &mut v);
        let denom = vecops::dot(&r_hat, &v);
        if denom.abs() < 1e-300 {
            break;
        }
        alpha = rho / denom;
        for i in 0..n {
            s[i] = r[i] - alpha * v[i];
        }
        if vecops::norm2(&s) <= tol * bnorm {
            vecops::axpy(alpha, &p, &mut x);
            return SolveResult {
                x,
                iterations: k + 1,
                residual: vecops::norm2(&s),
                converged: true,
            };
        }
        a.apply(&s, &mut t);
        let tt = vecops::dot(&t, &t);
        omega = if tt > 1e-300 { vecops::dot(&t, &s) / tt } else { 0.0 };
        for i in 0..n {
            x[i] += alpha * p[i] + omega * s[i];
            r[i] = s[i] - omega * t[i];
        }
        let res = vecops::norm2(&r);
        if res <= tol * bnorm {
            return SolveResult { x, iterations: k + 1, residual: res, converged: true };
        }
        if omega.abs() < 1e-300 {
            break;
        }
    }
    let res = vecops::norm2(&r);
    SolveResult { x, iterations: max_iters, residual: res, converged: res <= tol * bnorm }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SparseMatrix;

    #[test]
    fn richardson_solves_contraction_system() {
        // M = 0.5 * P for a permutation P: ρ(M) = 0.5.
        let m = SparseMatrix::from_triplets(3, 3, [(0, 1, 0.5), (1, 2, 0.5), (2, 0, 0.5)]);
        let b = vec![1.0, 0.0, 0.0];
        let res = richardson(&m, &b, 1e-12, 1000);
        assert!(res.converged);
        // Verify (I − M) x = b.
        let mx = m.matvec(&res.x);
        for i in 0..3 {
            assert!((res.x[i] - mx[i] - b[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn richardson_reports_nonconvergence() {
        // ρ(M) = 1 → no convergence.
        let m = SparseMatrix::identity(2);
        let res = richardson(&m, &[1.0, 1.0], 1e-12, 50);
        assert!(!res.converged);
        assert_eq!(res.iterations, 50);
    }

    #[test]
    fn bicgstab_solves_spd_system() {
        // Diagonally dominant symmetric system.
        let a = SparseMatrix::from_triplets(
            3,
            3,
            [
                (0, 0, 4.0),
                (0, 1, -1.0),
                (1, 0, -1.0),
                (1, 1, 4.0),
                (1, 2, -1.0),
                (2, 1, -1.0),
                (2, 2, 4.0),
            ],
        );
        let b = vec![1.0, 2.0, 3.0];
        let res = bicgstab(&a, &b, 1e-12, 100);
        assert!(res.converged, "residual {}", res.residual);
        let ax = a.matvec(&res.x);
        for i in 0..3 {
            assert!((ax[i] - b[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn bicgstab_solves_nonsymmetric_system() {
        let a = SparseMatrix::from_triplets(2, 2, [(0, 0, 2.0), (0, 1, 1.0), (1, 1, 3.0)]);
        let b = vec![5.0, 6.0];
        let res = bicgstab(&a, &b, 1e-12, 100);
        assert!(res.converged);
        assert!((res.x[1] - 2.0).abs() < 1e-8);
        assert!((res.x[0] - 1.5).abs() < 1e-8);
    }

    #[test]
    fn richardson_matches_bicgstab_on_rwr_like_system() {
        // M = 0.85 · column-stochastic matrix.
        let half = 0.85 / 2.0;
        let m = SparseMatrix::from_triplets(
            3,
            3,
            [(0, 1, half), (0, 2, half), (1, 0, half), (1, 2, half), (2, 0, half), (2, 1, half)],
        );
        let b = vec![0.15, 0.0, 0.0];
        let rich = richardson(&m, &b, 1e-13, 10_000);
        // Build I − M explicitly for BiCGSTAB.
        let h = m.identity_minus_scaled(1.0);
        let bi = bicgstab(&h, &b, 1e-13, 1000);
        assert!(rich.converged && bi.converged);
        for i in 0..3 {
            assert!((rich.x[i] - bi.x[i]).abs() < 1e-8);
        }
    }
}
