//! Randomized truncated SVD (Halko–Martinsson–Tropp) of an arbitrary linear
//! operator — the low-rank engine behind the NB-LIN baseline.
//!
//! NB-LIN approximates the transition matrix `Ãᵀ ≈ U·Σ·Vᵀ` with a small rank
//! `t`, then inverts the RWR system through the Woodbury identity. The paper
//! notes NB-LIN's preprocessing (this decomposition) is both slow and
//! memory-hungry; we reproduce that cost profile honestly.

use crate::{qr::qr, sym_eigen, DenseMatrix, LinOp};
use rand::Rng;

/// Truncated SVD `A ≈ U·diag(s)·Vᵀ`.
#[derive(Clone, Debug)]
pub struct Svd {
    /// Left singular vectors, `m × rank`.
    pub u: DenseMatrix,
    /// Singular values, descending, length `rank`.
    pub s: Vec<f64>,
    /// Right singular vectors transposed, `rank × n`.
    pub vt: DenseMatrix,
}

impl Svd {
    /// Reconstruction `U·diag(s)·Vᵀ` (tests / error measurement only).
    pub fn reconstruct(&self) -> DenseMatrix {
        let mut us = self.u.clone();
        for r in 0..us.nrows() {
            let row = us.row_mut(r);
            for (c, x) in row.iter_mut().enumerate() {
                *x *= self.s[c];
            }
        }
        us.matmul(&self.vt)
    }

    /// Heap bytes of the stored factors (NB-LIN index size).
    pub fn memory_bytes(&self) -> usize {
        self.u.memory_bytes() + self.vt.memory_bytes() + self.s.len() * 8
    }
}

/// Configuration for [`randomized_svd`].
#[derive(Clone, Copy, Debug)]
pub struct SvdConfig {
    /// Target rank `t`.
    pub rank: usize,
    /// Extra random probe columns beyond `rank` (improves accuracy; trimmed
    /// from the output).
    pub oversample: usize,
    /// Power-iteration passes `(A·Aᵀ)^q` applied to the probe block;
    /// sharpens the spectrum separation for slowly decaying spectra.
    pub power_iters: usize,
}

impl Default for SvdConfig {
    fn default() -> Self {
        Self { rank: 16, oversample: 8, power_iters: 2 }
    }
}

/// Computes a rank-`cfg.rank` approximate SVD of `op` using gaussian
/// sketching. Deterministic given `rng`.
pub fn randomized_svd<R: Rng + ?Sized>(op: &dyn LinOp, cfg: SvdConfig, rng: &mut R) -> Svd {
    let m = op.nrows();
    let n = op.ncols();
    let l = (cfg.rank + cfg.oversample).min(n).min(m);
    assert!(l >= 1, "rank + oversample must be >= 1");

    // Probe block Ω (n × l) with standard normal entries; Y = A·Ω (m × l).
    let mut y = DenseMatrix::zeros(m, l);
    {
        let mut omega_col = vec![0.0f64; n];
        let mut y_col = vec![0.0f64; m];
        for c in 0..l {
            for w in omega_col.iter_mut() {
                *w = gaussian(rng);
            }
            op.apply(&omega_col, &mut y_col);
            for r in 0..m {
                y.set(r, c, y_col[r]);
            }
        }
    }

    // Power iterations with re-orthonormalization for numerical stability:
    // Y ← A·(Aᵀ·Q(Y)).
    for _ in 0..cfg.power_iters {
        let q = qr(&y).q;
        let mut z = DenseMatrix::zeros(n, l);
        let mut qcol = vec![0.0f64; m];
        let mut zcol = vec![0.0f64; n];
        for c in 0..l {
            for r in 0..m {
                qcol[r] = q.get(r, c);
            }
            op.apply_t(&qcol, &mut zcol);
            for r in 0..n {
                z.set(r, c, zcol[r]);
            }
        }
        let qz = qr(&z).q;
        let mut zcol2 = vec![0.0f64; n];
        let mut ycol = vec![0.0f64; m];
        for c in 0..l {
            for r in 0..n {
                zcol2[r] = qz.get(r, c);
            }
            op.apply(&zcol2, &mut ycol);
            for r in 0..m {
                y.set(r, c, ycol[r]);
            }
        }
    }

    let q = qr(&y).q; // m × l, orthonormal range basis

    // B = Qᵀ·A computed as rows: Bᵀ = Aᵀ·Q, so B is l × n.
    let mut b = DenseMatrix::zeros(l, n);
    {
        let mut qcol = vec![0.0f64; m];
        let mut brow = vec![0.0f64; n];
        for c in 0..l {
            for r in 0..m {
                qcol[r] = q.get(r, c);
            }
            op.apply_t(&qcol, &mut brow);
            b.row_mut(c).copy_from_slice(&brow);
        }
    }

    // Small SVD of B via the Gram matrix B·Bᵀ (l × l, symmetric PSD):
    // B·Bᵀ = W·Λ·Wᵀ  →  σᵢ = √λᵢ,  U_B = W,  Vᵀ = Σ⁻¹·Wᵀ·B.
    let gram = b.matmul(&b.transpose());
    let eig = sym_eigen(&gram);

    let rank = cfg.rank.min(l);
    let mut s = Vec::with_capacity(rank);
    let mut w = DenseMatrix::zeros(l, rank);
    for i in 0..rank {
        let sigma = eig.values[i].max(0.0).sqrt();
        s.push(sigma);
        for r in 0..l {
            w.set(r, i, eig.vectors.get(r, i));
        }
    }

    // U = Q·W (m × rank).
    let u = q.matmul(&w);

    // Vᵀ = Σ⁻¹·Wᵀ·B (rank × n); zero rows where σ ≈ 0.
    let wt_b = w.transpose().matmul(&b);
    let mut vt = wt_b;
    for i in 0..rank {
        let inv = if s[i] > 1e-12 { 1.0 / s[i] } else { 0.0 };
        for c in 0..n {
            let v = vt.get(i, c) * inv;
            vt.set(i, c, v);
        }
    }

    Svd { u, s, vt }
}

/// Standard normal sample via Box–Muller.
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SparseMatrix;
    use rand::{rngs::StdRng, SeedableRng};

    /// Exactly rank-2 matrix: outer product of two pairs of vectors.
    fn rank2_matrix(n: usize) -> SparseMatrix {
        let mut triplets = Vec::new();
        for r in 0..n {
            for c in 0..n {
                let v = (r as f64 + 1.0) * (c as f64 + 1.0) / (n * n) as f64
                    + ((r % 3) as f64) * ((c % 5) as f64) / 10.0;
                if v != 0.0 {
                    triplets.push((r as u32, c as u32, v));
                }
            }
        }
        SparseMatrix::from_triplets(n, n, triplets)
    }

    #[test]
    fn recovers_low_rank_matrix_exactly() {
        let a = rank2_matrix(30);
        let mut rng = StdRng::seed_from_u64(5);
        let svd =
            randomized_svd(&a, SvdConfig { rank: 4, oversample: 6, power_iters: 2 }, &mut rng);
        let err = svd.reconstruct().add_scaled(-1.0, &a.to_dense()).frobenius_norm();
        assert!(err < 1e-8, "reconstruction error {err}");
    }

    #[test]
    fn singular_values_descending_nonnegative() {
        let a = rank2_matrix(25);
        let mut rng = StdRng::seed_from_u64(6);
        let svd = randomized_svd(&a, SvdConfig::default(), &mut rng);
        assert!(svd.s.windows(2).all(|w| w[0] >= w[1] - 1e-12));
        assert!(svd.s.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn u_columns_orthonormal() {
        let a = rank2_matrix(20);
        let mut rng = StdRng::seed_from_u64(7);
        let svd =
            randomized_svd(&a, SvdConfig { rank: 5, oversample: 5, power_iters: 1 }, &mut rng);
        let gram = svd.u.transpose().matmul(&svd.u);
        let err = gram.add_scaled(-1.0, &DenseMatrix::identity(5)).max_abs();
        assert!(err < 1e-8, "orthonormality error {err}");
    }

    #[test]
    fn truncation_error_bounded_by_spectrum() {
        // Diagonal matrix with known singular values 10, 9, ..., 1.
        let n = 10;
        let a =
            SparseMatrix::from_triplets(n, n, (0..n).map(|i| (i as u32, i as u32, (n - i) as f64)));
        let mut rng = StdRng::seed_from_u64(8);
        let svd =
            randomized_svd(&a, SvdConfig { rank: 3, oversample: 7, power_iters: 3 }, &mut rng);
        for (i, &sv) in svd.s.iter().enumerate() {
            let want = (n - i) as f64;
            assert!((sv - want).abs() < 1e-6, "σ{i} = {sv}, want {want}");
        }
    }

    #[test]
    fn memory_accounting() {
        let a = rank2_matrix(15);
        let mut rng = StdRng::seed_from_u64(9);
        let svd =
            randomized_svd(&a, SvdConfig { rank: 3, oversample: 2, power_iters: 0 }, &mut rng);
        // U: 15x3, Vᵀ: 3x15, s: 3 values.
        assert_eq!(svd.memory_bytes(), (45 + 45 + 3) * 8);
    }
}
