//! Property-based tests for the weighted-graph and algorithm modules.

use proptest::prelude::*;
use tpa_graph::{algo, unit_weights, CsrGraph, GraphBuilder, NodeId, WeightedGraphBuilder};

fn graph_inputs() -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId)>)> {
    (2usize..40).prop_flat_map(|n| {
        let edge = (0..n as NodeId, 0..n as NodeId);
        (Just(n), proptest::collection::vec(edge, 1..150))
    })
}

fn weighted_inputs() -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId, f64)>)> {
    (2usize..30).prop_flat_map(|n| {
        let edge = (0..n as NodeId, 0..n as NodeId, 0.01f64..100.0);
        (Just(n), proptest::collection::vec(edge, 1..100))
    })
}

proptest! {
    /// Weighted builder: validation passes, weight sums are consistent,
    /// and duplicate edges merge additively.
    #[test]
    fn weighted_builder_invariants((n, edges) in weighted_inputs()) {
        let g = WeightedGraphBuilder::new(n).extend_edges(edges.clone()).build();
        prop_assert!(g.validate().is_ok());
        // Every node's weight sum equals the sum over its (merged) edges,
        // which equals the sum of all input weights for that source (plus
        // possibly a unit self-loop for dangling nodes).
        for u in 0..n as NodeId {
            let input_sum: f64 =
                edges.iter().filter(|&&(s, _, _)| s == u).map(|&(_, _, w)| w).sum();
            let got = g.out_weight_sum(u);
            if input_sum > 0.0 {
                prop_assert!((got - input_sum).abs() < 1e-9 * input_sum.max(1.0));
            } else {
                prop_assert_eq!(got, 1.0); // dangling self-loop
            }
        }
    }

    /// unit_weights preserves topology exactly.
    #[test]
    fn unit_weights_topology((n, edges) in graph_inputs()) {
        let g = GraphBuilder::with_capacity(n, edges.len()).extend_edges(edges).build();
        let w = unit_weights(&g);
        prop_assert_eq!(w.topology(), &g);
        for u in 0..n as NodeId {
            prop_assert!((w.out_weight_sum(u) - g.out_degree(u) as f64).abs() < 1e-12);
        }
    }

    /// WCC count is between 1 and n, labels are stable under edge
    /// reachability (endpoint nodes of any edge share a component).
    #[test]
    fn wcc_labels_consistent((n, edges) in graph_inputs()) {
        let g = GraphBuilder::with_capacity(n, edges.len())
            .extend_edges(edges)
            .build();
        let (comp, count) = algo::weakly_connected_components(&g);
        prop_assert!(count >= 1 && count <= n);
        for (u, v) in g.edges() {
            prop_assert_eq!(comp[u as usize], comp[v as usize]);
        }
        // Component ids are dense 0..count.
        let max = comp.iter().max().copied().unwrap_or(0);
        prop_assert_eq!(max as usize + 1, count);
    }

    /// SCC refines WCC: nodes in one SCC are in one WCC, and the SCC
    /// count is at least the WCC count.
    #[test]
    fn scc_refines_wcc((n, edges) in graph_inputs()) {
        let g = GraphBuilder::with_capacity(n, edges.len())
            .extend_edges(edges)
            .build();
        let (wcc, wcc_count) = algo::weakly_connected_components(&g);
        let (scc, scc_count) = algo::strongly_connected_components(&g);
        prop_assert!(scc_count >= wcc_count);
        // Two nodes in the same SCC must share a WCC.
        for u in 0..n {
            for v in u + 1..n {
                if scc[u] == scc[v] {
                    prop_assert_eq!(wcc[u], wcc[v]);
                }
            }
        }
    }

    /// Mutual reachability implies same SCC (checked via BFS both ways).
    #[test]
    fn scc_matches_mutual_reachability((n, edges) in graph_inputs()) {
        let g = GraphBuilder::with_capacity(n, edges.len())
            .extend_edges(edges)
            .build();
        let (scc, _) = algo::strongly_connected_components(&g);
        // Sample a few pairs to keep it cheap.
        for u in (0..n as NodeId).step_by(3) {
            let du = algo::bfs_distances(&g, u);
            for v in (0..n as NodeId).step_by(4) {
                let dv = algo::bfs_distances(&g, v);
                let mutual = du[v as usize] != u32::MAX && dv[u as usize] != u32::MAX;
                prop_assert_eq!(
                    mutual,
                    scc[u as usize] == scc[v as usize],
                    "nodes {} and {}",
                    u,
                    v
                );
            }
        }
    }

    /// Reciprocity is in [0, 1] and symmetrized graphs hit exactly 1.
    #[test]
    fn reciprocity_bounds((n, edges) in graph_inputs()) {
        let g = GraphBuilder::with_capacity(n, edges.len())
            .extend_edges(edges.clone())
            .build();
        let r = algo::reciprocity(&g);
        prop_assert!((0.0..=1.0).contains(&r));
        let sym = GraphBuilder::with_capacity(n, edges.len() * 2)
            .extend_edges(edges)
            .symmetrize()
            .build();
        if sym.edges().any(|(u, v)| u != v) {
            prop_assert!((algo::reciprocity(&sym) - 1.0).abs() < 1e-12);
        }
    }

    /// Degree histogram partitions n and matches avg degree.
    #[test]
    fn histogram_consistency((n, edges) in graph_inputs()) {
        let g = GraphBuilder::with_capacity(n, edges.len()).extend_edges(edges).build();
        let h = algo::degree_histogram(&g);
        prop_assert_eq!(h.iter().sum::<usize>(), n);
        let total_deg: usize = h.iter().enumerate().map(|(d, &c)| d * c).sum();
        prop_assert_eq!(total_deg, g.m());
    }
}

#[test]
fn bfs_distance_triangle_inequality_on_star() {
    let g: CsrGraph = tpa_graph::gen::star_graph(20);
    let d = algo::bfs_distances(&g, 5);
    assert_eq!(d[5], 0);
    assert_eq!(d[0], 1); // leaf → hub
    assert!(d.iter().all(|&x| x <= 2)); // anywhere within 2 hops
}
