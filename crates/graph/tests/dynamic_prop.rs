//! Property tests for the delta-overlay [`DynamicGraph`]: an arbitrary
//! interleaving of inserts, deletes, and compactions must leave the merged
//! view identical — structurally, per-neighbor, per-degree — to a CSR
//! rebuilt from scratch out of the surviving edge set.

use proptest::prelude::*;
use std::collections::BTreeSet;
use tpa_graph::{DanglingPolicy, DynamicGraph, EdgeUpdate, GraphBuilder, NodeId};

/// One step of an update script: an edge mutation or an explicit compact.
#[derive(Clone, Copy, Debug)]
enum Step {
    Update(EdgeUpdate),
    Compact,
}

/// Strategy: a node count, a base edge list, and an update script mixing
/// inserts, deletes, and compactions.
fn script() -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId)>, Vec<Step>)> {
    (2usize..40).prop_flat_map(|n| {
        let edge = (0..n as NodeId, 0..n as NodeId);
        let step = (0u8..8, 0..n as NodeId, 0..n as NodeId).prop_map(|(k, u, v)| match k {
            0..=3 => Step::Update(EdgeUpdate::Insert(u, v)),
            4..=6 => Step::Update(EdgeUpdate::Delete(u, v)),
            _ => Step::Compact,
        });
        (Just(n), proptest::collection::vec(edge, 0..120), proptest::collection::vec(step, 0..150))
    })
}

/// Reference model: the surviving edge set as a plain BTreeSet.
fn run_model(
    n: usize,
    base: &[(NodeId, NodeId)],
    steps: &[Step],
) -> (DynamicGraph, BTreeSet<(NodeId, NodeId)>) {
    let g = GraphBuilder::with_capacity(n, base.len())
        .dangling_policy(DanglingPolicy::Keep)
        .extend_edges(base.iter().copied())
        .build();
    let mut model: BTreeSet<(NodeId, NodeId)> = base.iter().copied().collect();
    let mut dynamic = DynamicGraph::new(g);
    for step in steps {
        match *step {
            Step::Update(up) => {
                let changed = dynamic.apply_one(up);
                let model_changed = match up {
                    EdgeUpdate::Insert(u, v) => model.insert((u, v)),
                    EdgeUpdate::Delete(u, v) => model.remove(&(u, v)),
                };
                assert_eq!(changed, model_changed, "apply_one disagreed with model on {up:?}");
            }
            Step::Compact => dynamic.compact(),
        }
    }
    (dynamic, model)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The merged view after any script equals a CSR built from scratch
    /// out of the surviving edges: same snapshot, same neighbor sequences,
    /// same degrees, same edge count.
    #[test]
    fn merged_view_equals_rebuild((n, base, steps) in script()) {
        let (dynamic, model) = run_model(n, &base, &steps);
        let rebuilt = GraphBuilder::with_capacity(n, model.len())
            .dangling_policy(DanglingPolicy::Keep)
            .extend_edges(model.iter().copied())
            .build();

        prop_assert_eq!(dynamic.m(), model.len());
        prop_assert_eq!(dynamic.snapshot(), rebuilt.clone());
        for u in 0..n as NodeId {
            let merged_out: Vec<NodeId> = dynamic.out_neighbors(u).collect();
            prop_assert_eq!(merged_out, rebuilt.out_neighbors(u).to_vec(), "out {}", u);
            let merged_in: Vec<NodeId> = dynamic.in_neighbors(u).collect();
            prop_assert_eq!(merged_in, rebuilt.in_neighbors(u).to_vec(), "in {}", u);
            prop_assert_eq!(dynamic.out_degree(u), rebuilt.out_degree(u));
            prop_assert_eq!(dynamic.in_degree(u), rebuilt.in_degree(u));
        }
        for &(u, v) in &model {
            prop_assert!(dynamic.has_edge(u, v));
        }
    }

    /// Compaction is transparent: compacting at the end changes nothing
    /// about the merged view, and the fresh base validates.
    #[test]
    fn compaction_is_transparent((n, base, steps) in script()) {
        let (mut dynamic, _) = run_model(n, &base, &steps);
        let before = dynamic.snapshot();
        let m = dynamic.m();
        dynamic.compact();
        prop_assert!(!dynamic.is_dirty());
        prop_assert_eq!(dynamic.m(), m);
        prop_assert_eq!(dynamic.base().clone(), before);
        prop_assert!(dynamic.base().validate().is_ok());
    }
}
