//! Property tests for the reordering layer: `Permutation` algebra and
//! `CsrGraph::permuted` graph isomorphism, over arbitrary graphs and all
//! strategies.

use proptest::prelude::*;
use tpa_graph::{
    reorder, CsrGraph, DanglingPolicy, GraphBuilder, NodeId, Permutation, ReorderStrategy,
};

/// Strategy: a node count and an arbitrary in-range edge list.
fn graph_inputs() -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId)>)> {
    (2usize..50).prop_flat_map(|n| {
        let edge = (0..n as NodeId, 0..n as NodeId);
        (Just(n), proptest::collection::vec(edge, 0..160))
    })
}

fn build(n: usize, edges: Vec<(NodeId, NodeId)>) -> CsrGraph {
    GraphBuilder::with_capacity(n, edges.len())
        .dangling_policy(DanglingPolicy::Keep)
        .extend_edges(edges)
        .build()
}

const STRATEGIES: [ReorderStrategy; 3] =
    [ReorderStrategy::DegreeDescending, ReorderStrategy::Rcm, ReorderStrategy::HubCluster];

proptest! {
    /// `apply ∘ invert = id`, in both directions and on value vectors.
    #[test]
    fn permutation_roundtrip((n, edges) in graph_inputs(), pick in 0usize..3) {
        let g = build(n, edges);
        let p = reorder(&g, STRATEGIES[pick]);
        let inv = p.invert();
        for v in 0..n as NodeId {
            prop_assert_eq!(inv.new_of(p.new_of(v)), v);
            prop_assert_eq!(p.new_of(inv.new_of(v)), v);
            prop_assert_eq!(p.old_of(p.new_of(v)), v);
        }
        let values: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
        prop_assert_eq!(p.unpermute_values(&p.permute_values(&values)), values.clone());
        prop_assert_eq!(inv.permute_values(&values), p.unpermute_values(&values));
    }

    /// Every strategy yields a bijection on every graph.
    #[test]
    fn strategies_are_bijections((n, edges) in graph_inputs()) {
        let g = build(n, edges);
        for s in STRATEGIES {
            let p = reorder(&g, s);
            prop_assert_eq!(p.len(), n, "{}", s.name());
            let mut seen = vec![false; n];
            for new in 0..n as NodeId {
                let old = p.old_of(new) as usize;
                prop_assert!(!seen[old], "{}: old id {} repeated", s.name(), old);
                seen[old] = true;
            }
        }
    }

    /// The permuted graph is a valid CSR and exactly isomorphic: edge
    /// `(u, v)` exists iff `(new(u), new(v))` exists, and degrees map.
    #[test]
    fn permuted_graph_is_isomorphic((n, edges) in graph_inputs(), pick in 0usize..3) {
        let g = build(n, edges.clone());
        let p = reorder(&g, STRATEGIES[pick]);
        let pg = g.permuted(&p);
        prop_assert!(pg.validate().is_ok());
        prop_assert_eq!(pg.n(), g.n());
        prop_assert_eq!(pg.m(), g.m());
        let mut mapped: Vec<(NodeId, NodeId)> =
            g.edges().map(|(u, v)| (p.new_of(u), p.new_of(v))).collect();
        mapped.sort_unstable();
        let mut relabeled: Vec<(NodeId, NodeId)> = pg.edges().collect();
        relabeled.sort_unstable();
        prop_assert_eq!(mapped, relabeled);
        for v in 0..n as NodeId {
            prop_assert_eq!(pg.out_degree(p.new_of(v)), g.out_degree(v));
            prop_assert_eq!(pg.in_degree(p.new_of(v)), g.in_degree(v));
        }
    }

    /// Permuting with the identity is a no-op.
    #[test]
    fn identity_permutation_is_noop((n, edges) in graph_inputs()) {
        let g = build(n, edges);
        let id = Permutation::identity(n);
        prop_assert!(id.is_identity());
        prop_assert_eq!(g.permuted(&id), g);
    }
}
