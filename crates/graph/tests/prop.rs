//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use tpa_graph::{gen, io, CsrGraph, DanglingPolicy, GraphBuilder, NodeId};

/// Strategy: a node count and an arbitrary in-range edge list.
fn graph_inputs() -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId)>)> {
    (2usize..60).prop_flat_map(|n| {
        let edge = (0..n as NodeId, 0..n as NodeId);
        (Just(n), proptest::collection::vec(edge, 0..200))
    })
}

proptest! {
    /// Every built graph satisfies all CSR/CSC structural invariants.
    #[test]
    fn built_graphs_validate((n, edges) in graph_inputs()) {
        let g = GraphBuilder::with_capacity(n, edges.len())
            .extend_edges(edges)
            .build();
        prop_assert!(g.validate().is_ok());
    }

    /// With the default policy no node is dangling and mass conservation
    /// `Σ out_degree = m` holds.
    #[test]
    fn default_policy_eliminates_dangling((n, edges) in graph_inputs()) {
        let g = GraphBuilder::with_capacity(n, edges.len())
            .extend_edges(edges)
            .build();
        prop_assert!(g.dangling_nodes().is_empty());
        let total: usize = (0..n as NodeId).map(|u| g.out_degree(u)).sum();
        prop_assert_eq!(total, g.m());
    }

    /// Dedup keeps exactly the distinct input edges (plus dangling patches).
    #[test]
    fn dedup_matches_set_semantics((n, edges) in graph_inputs()) {
        let g = GraphBuilder::with_capacity(n, edges.len())
            .dangling_policy(DanglingPolicy::Keep)
            .extend_edges(edges.clone())
            .build();
        let mut distinct: Vec<_> = edges;
        distinct.sort_unstable();
        distinct.dedup();
        let mut got: Vec<_> = g.edges().collect();
        got.sort_unstable();
        prop_assert_eq!(got, distinct);
    }

    /// In-degree of each node equals the number of edges pointing at it.
    #[test]
    fn degrees_are_consistent((n, edges) in graph_inputs()) {
        let g = GraphBuilder::with_capacity(n, edges.len())
            .dangling_policy(DanglingPolicy::Keep)
            .extend_edges(edges)
            .build();
        for v in 0..n as NodeId {
            let by_scan = g.edges().filter(|&(_, t)| t == v).count();
            prop_assert_eq!(by_scan, g.in_degree(v));
        }
    }

    /// Edge-list text roundtrip is the identity on built graphs.
    #[test]
    fn edge_list_roundtrip((n, edges) in graph_inputs()) {
        let g = GraphBuilder::with_capacity(n, edges.len())
            .extend_edges(edges)
            .build();
        let mut buf = Vec::new();
        io::write_edge_list(&g, &mut buf).unwrap();
        let g2 = io::read_edge_list(std::io::Cursor::new(buf), Some(n)).unwrap();
        prop_assert_eq!(g, g2);
    }

    /// Binary snapshot roundtrip is the identity.
    #[test]
    fn snapshot_roundtrip((n, edges) in graph_inputs()) {
        let g = GraphBuilder::with_capacity(n, edges.len())
            .extend_edges(edges)
            .build();
        let mut buf = Vec::new();
        io::write_snapshot(&g, &mut buf).unwrap();
        let g2 = io::read_snapshot(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(g, g2);
    }

    /// Corrupting any single header byte of a snapshot never panics — it
    /// either fails cleanly or (for payload bytes) still validates.
    #[test]
    fn snapshot_corruption_is_handled(
        (n, edges) in graph_inputs(),
        idx in 0usize..24,
        delta in 1u8..255,
    ) {
        let g = GraphBuilder::with_capacity(n, edges.len())
            .extend_edges(edges)
            .build();
        let mut buf = Vec::new();
        io::write_snapshot(&g, &mut buf).unwrap();
        let i = idx % buf.len();
        buf[i] = buf[i].wrapping_add(delta);
        let _ = io::read_snapshot(std::io::Cursor::new(buf)); // must not panic
    }

    /// The ER generator respects n, produces ≥ m edges (dangling patches),
    /// and never emits out-of-range ids.
    #[test]
    fn er_generator_invariants(n in 5usize..80, seed in 0u64..1000) {
        use rand::SeedableRng;
        let m = n; // sparse
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = gen::erdos_renyi_gnm(n, m, &mut rng);
        prop_assert_eq!(g.n(), n);
        prop_assert!(g.m() >= m);
        prop_assert!(g.validate().is_ok());
    }

    /// Configuration-model rewiring preserves both degree sequences exactly.
    #[test]
    fn rewire_preserves_degrees(n in 10usize..50, seed in 0u64..500) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = gen::erdos_renyi_gnm(n, 3 * n, &mut rng);
        let r = gen::configuration_model(&g, &mut rng);
        for u in 0..n as NodeId {
            prop_assert_eq!(g.out_degree(u), r.out_degree(u));
            prop_assert_eq!(g.in_degree(u), r.in_degree(u));
        }
    }
}

#[test]
fn from_edges_equals_builder_default() {
    let edges = [(0, 1), (1, 2), (2, 0), (0, 2)];
    let a = CsrGraph::from_edges(3, &edges);
    let b = GraphBuilder::new(3).extend_edges(edges).build();
    assert_eq!(a, b);
}
