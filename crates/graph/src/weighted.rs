//! Edge-weighted directed graphs.
//!
//! RWR generalizes directly to weighted graphs: the walker leaves node `u`
//! along edge `(u, v)` with probability `w(u,v) / Σ_x w(u,x)`, i.e. the
//! transition matrix is the *weight*-row-normalized adjacency. All of
//! TPA's math only needs column-stochasticity of `Ãᵀ`, which weighted
//! normalization preserves, so every bound carries over unchanged.

use crate::{CsrGraph, NodeId};

/// An immutable directed graph with positive edge weights, stored in CSR
/// (out-edges) and CSC (in-edges) form like [`CsrGraph`].
#[derive(Clone, Debug, PartialEq)]
pub struct WeightedCsrGraph {
    /// Topology (used for traversal and degree queries).
    topology: CsrGraph,
    /// Weight of each out-edge, aligned with `topology.out_targets()`.
    out_weights: Vec<f64>,
    /// Weight of each in-edge, aligned with `topology.in_sources()`.
    in_weights: Vec<f64>,
    /// Total outgoing weight per node (the normalization denominator).
    out_weight_sums: Vec<f64>,
}

impl WeightedCsrGraph {
    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.topology.n()
    }

    /// Number of edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.topology.m()
    }

    /// The unweighted topology.
    #[inline]
    pub fn topology(&self) -> &CsrGraph {
        &self.topology
    }

    /// Out-neighbors of `u` with their edge weights.
    pub fn out_edges(&self, u: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        let (s, e) = self.out_range(u);
        self.topology.out_neighbors(u).iter().copied().zip(self.out_weights[s..e].iter().copied())
    }

    /// In-neighbors of `v` with their edge weights.
    pub fn in_edges(&self, v: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        let (s, e) = self.in_range(v);
        self.topology.in_neighbors(v).iter().copied().zip(self.in_weights[s..e].iter().copied())
    }

    fn out_range(&self, u: NodeId) -> (usize, usize) {
        let offs = self.topology.out_offsets();
        (offs[u as usize], offs[u as usize + 1])
    }

    fn in_range(&self, v: NodeId) -> (usize, usize) {
        let offs = self.topology.in_offsets();
        (offs[v as usize], offs[v as usize + 1])
    }

    /// Total outgoing weight of `u` (0.0 for dangling nodes).
    #[inline]
    pub fn out_weight_sum(&self, u: NodeId) -> f64 {
        self.out_weight_sums[u as usize]
    }

    /// Per-node `1 / Σ w(u,·)` for the propagation kernel (0.0 if
    /// dangling).
    pub fn inv_out_weight_sums(&self) -> Vec<f64> {
        self.out_weight_sums.iter().map(|&s| if s > 0.0 { 1.0 / s } else { 0.0 }).collect()
    }

    /// Heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.topology.memory_bytes()
            + (self.out_weights.len() + self.in_weights.len() + self.out_weight_sums.len()) * 8
    }

    /// Checks the weighted invariants on top of the CSR ones: positive
    /// weights and matching weight multisets between the two orientations.
    pub fn validate(&self) -> Result<(), String> {
        self.topology.validate()?;
        if self.out_weights.len() != self.m() || self.in_weights.len() != self.m() {
            return Err("weight arrays have wrong length".into());
        }
        if self.out_weights.iter().chain(&self.in_weights).any(|&w| w <= 0.0 || !w.is_finite()) {
            return Err("weights must be positive and finite".into());
        }
        // Forward and transpose orientations must carry identical weights.
        let mut fwd: Vec<(NodeId, NodeId, u64)> = Vec::with_capacity(self.m());
        for u in 0..self.n() as NodeId {
            for (v, w) in self.out_edges(u) {
                fwd.push((u, v, w.to_bits()));
            }
        }
        let mut bwd: Vec<(NodeId, NodeId, u64)> = Vec::with_capacity(self.m());
        for v in 0..self.n() as NodeId {
            for (u, w) in self.in_edges(v) {
                bwd.push((u, v, w.to_bits()));
            }
        }
        fwd.sort_unstable();
        bwd.sort_unstable();
        if fwd != bwd {
            return Err("orientations disagree on weights".into());
        }
        // Weight sums are consistent.
        for u in 0..self.n() as NodeId {
            let s: f64 = self.out_edges(u).map(|(_, w)| w).sum();
            if (s - self.out_weight_sums[u as usize]).abs() > 1e-9 * s.max(1.0) {
                return Err(format!("stale weight sum at node {u}"));
            }
        }
        Ok(())
    }
}

/// Builder for [`WeightedCsrGraph`]. Duplicate edges have their weights
/// summed; dangling nodes get a unit-weight self-loop (same policy as the
/// unweighted default builder).
#[derive(Clone, Debug, Default)]
pub struct WeightedGraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId, f64)>,
}

impl WeightedGraphBuilder {
    /// Builder for `n` nodes.
    pub fn new(n: usize) -> Self {
        assert!(n <= NodeId::MAX as usize);
        Self { n, edges: Vec::new() }
    }

    /// Adds a directed edge with a positive finite weight.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: f64) -> &mut Self {
        assert!((u as usize) < self.n && (v as usize) < self.n, "edge out of range");
        assert!(w > 0.0 && w.is_finite(), "weight must be positive and finite");
        self.edges.push((u, v, w));
        self
    }

    /// Chainable bulk insertion.
    pub fn extend_edges(mut self, it: impl IntoIterator<Item = (NodeId, NodeId, f64)>) -> Self {
        for (u, v, w) in it {
            self.add_edge(u, v, w);
        }
        self
    }

    /// Finalizes the graph.
    pub fn build(self) -> WeightedCsrGraph {
        let Self { n, mut edges } = self;
        // Merge duplicates by weight summation.
        edges.sort_unstable_by_key(|&(u, v, _)| (u, v));
        edges.dedup_by(|next, prev| {
            if prev.0 == next.0 && prev.1 == next.1 {
                prev.2 += next.2;
                true
            } else {
                false
            }
        });
        // Unit self-loops for dangling nodes.
        let mut has_out = vec![false; n];
        for &(u, _, _) in &edges {
            has_out[u as usize] = true;
        }
        for (u, &has) in has_out.iter().enumerate() {
            if !has {
                edges.push((u as NodeId, u as NodeId, 1.0));
            }
        }
        edges.sort_unstable_by_key(|&(u, v, _)| (u, v));

        let topology = crate::GraphBuilder::with_capacity(n, edges.len())
            .dangling_policy(crate::DanglingPolicy::Keep)
            .extend_edges(edges.iter().map(|&(u, v, _)| (u, v)))
            .build();

        // Out-weights align with the (sorted) CSR layout because the edge
        // list above is already in (u, v) order with distinct pairs.
        let out_weights: Vec<f64> = edges.iter().map(|&(_, _, w)| w).collect();
        let mut out_weight_sums = vec![0.0f64; n];
        for &(u, _, w) in &edges {
            out_weight_sums[u as usize] += w;
        }

        // In-weights: sort by (v, u) and emit in CSC order.
        let mut by_target = edges;
        by_target.sort_unstable_by_key(|&(u, v, _)| (v, u));
        let in_weights: Vec<f64> = by_target.iter().map(|&(_, _, w)| w).collect();

        let g = WeightedCsrGraph { topology, out_weights, in_weights, out_weight_sums };
        debug_assert!(g.validate().is_ok(), "{:?}", g.validate());
        g
    }
}

/// Wraps an unweighted graph as a weighted one with unit weights (the two
/// propagation kernels then agree exactly).
pub fn unit_weights(graph: &CsrGraph) -> WeightedCsrGraph {
    let mut b = WeightedGraphBuilder::new(graph.n());
    for (u, v) in graph.edges() {
        b.add_edge(u, v, 1.0);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WeightedCsrGraph {
        WeightedGraphBuilder::new(3)
            .extend_edges([(0, 1, 2.0), (0, 2, 6.0), (1, 0, 1.0), (2, 0, 1.0)])
            .build()
    }

    #[test]
    fn weights_and_sums() {
        let g = sample();
        assert_eq!(g.out_weight_sum(0), 8.0);
        let edges: Vec<_> = g.out_edges(0).collect();
        assert_eq!(edges, vec![(1, 2.0), (2, 6.0)]);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn duplicate_edges_merge_weights() {
        let g = WeightedGraphBuilder::new(2)
            .extend_edges([(0, 1, 1.5), (0, 1, 2.5), (1, 0, 1.0)])
            .build();
        assert_eq!(g.m(), 2);
        assert_eq!(g.out_edges(0).next(), Some((1, 4.0)));
    }

    #[test]
    fn dangling_gets_unit_self_loop() {
        let g = WeightedGraphBuilder::new(2).extend_edges([(0, 1, 3.0)]).build();
        assert_eq!(g.out_edges(1).next(), Some((1, 1.0)));
        assert_eq!(g.out_weight_sum(1), 1.0);
    }

    #[test]
    fn in_edges_mirror_out_edges() {
        let g = sample();
        let ins: Vec<_> = g.in_edges(0).collect();
        assert_eq!(ins, vec![(1, 1.0), (2, 1.0)]);
        let ins2: Vec<_> = g.in_edges(2).collect();
        assert_eq!(ins2, vec![(0, 6.0)]);
    }

    #[test]
    fn unit_weights_match_topology() {
        let base = crate::CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let w = unit_weights(&base);
        assert_eq!(w.topology(), &base);
        assert!(w.out_edges(0).all(|(_, wt)| wt == 1.0));
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn rejects_zero_weight() {
        WeightedGraphBuilder::new(2).add_edge(0, 1, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn rejects_nan_weight() {
        WeightedGraphBuilder::new(2).add_edge(0, 1, f64::NAN);
    }

    #[test]
    fn inv_sums_zero_free() {
        let g = sample();
        let inv = g.inv_out_weight_sums();
        assert_eq!(inv.len(), 3);
        assert!((inv[0] - 0.125).abs() < 1e-15);
    }

    #[test]
    fn memory_accounting() {
        let g = sample();
        assert!(g.memory_bytes() > g.topology().memory_bytes());
    }
}
