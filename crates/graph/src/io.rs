//! Graph serialization: SNAP/KONECT-style edge lists and a compact binary
//! snapshot format used to cache generated datasets between runs.

use crate::{CsrGraph, DanglingPolicy, GraphBuilder, NodeId};
use bytes::{Buf, BufMut};
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors from graph I/O.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed textual edge list (line number, message).
    Parse(usize, String),
    /// Malformed binary snapshot.
    Corrupt(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse(line, msg) => write!(f, "parse error at line {line}: {msg}"),
            IoError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Magic prefix of the binary snapshot format.
const MAGIC: &[u8; 8] = b"TPAGRAF1";

/// Reads a whitespace-separated edge list. Lines starting with `#` or `%`
/// (SNAP and KONECT comment conventions) and blank lines are skipped. Node
/// ids may be sparse; they are kept verbatim, and `n` becomes
/// `max_id + 1` unless `n_hint` supplies a larger node count.
pub fn read_edge_list<R: BufRead>(reader: R, n_hint: Option<usize>) -> Result<CsrGraph, IoError> {
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut max_id: usize = 0;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let parse = |tok: Option<&str>, lineno: usize| -> Result<NodeId, IoError> {
            tok.ok_or_else(|| IoError::Parse(lineno + 1, "missing field".into()))?
                .parse::<NodeId>()
                .map_err(|e| IoError::Parse(lineno + 1, e.to_string()))
        };
        let u = parse(it.next(), lineno)?;
        let v = parse(it.next(), lineno)?;
        // Extra columns (weights, timestamps) are ignored, as in KONECT.
        max_id = max_id.max(u as usize).max(v as usize);
        edges.push((u, v));
    }
    let n = n_hint.unwrap_or(0).max(if edges.is_empty() { 0 } else { max_id + 1 });
    Ok(GraphBuilder::with_capacity(n, edges.len()).extend_edges(edges).build())
}

/// Reads an edge list from a file path.
pub fn read_edge_list_file(
    path: impl AsRef<Path>,
    n_hint: Option<usize>,
) -> Result<CsrGraph, IoError> {
    read_edge_list(BufReader::new(File::open(path)?), n_hint)
}

/// Writes the graph as a `u v` edge list with a summary comment header.
pub fn write_edge_list<W: Write>(g: &CsrGraph, writer: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# directed edge list: {} nodes, {} edges", g.n(), g.m())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Writes an edge list to a file path.
pub fn write_edge_list_file(g: &CsrGraph, path: impl AsRef<Path>) -> Result<(), IoError> {
    write_edge_list(g, File::create(path)?)
}

/// Serializes the CSR arrays into the compact binary snapshot format:
/// magic, `n`, `m` (LE u64), then the four arrays (offsets as u64, ids as
/// u32). Loading a snapshot skips all edge-list parsing and re-sorting.
pub fn write_snapshot<W: Write>(g: &CsrGraph, mut writer: W) -> Result<(), IoError> {
    let mut buf: Vec<u8> = Vec::with_capacity(16 + g.n() * 16 + g.m() * 8);
    buf.put_slice(MAGIC);
    buf.put_u64_le(g.n() as u64);
    buf.put_u64_le(g.m() as u64);
    for &off in g.out_offsets() {
        buf.put_u64_le(off as u64);
    }
    for &t in g.out_targets() {
        buf.put_u32_le(t);
    }
    for &off in g.in_offsets() {
        buf.put_u64_le(off as u64);
    }
    for &s in g.in_sources() {
        buf.put_u32_le(s);
    }
    writer.write_all(&buf)?;
    writer.flush()?;
    Ok(())
}

/// Writes a binary snapshot to a file path.
pub fn write_snapshot_file(g: &CsrGraph, path: impl AsRef<Path>) -> Result<(), IoError> {
    write_snapshot(g, BufWriter::new(File::create(path)?))
}

/// Deserializes a binary snapshot produced by [`write_snapshot`]. The
/// resulting graph is validated before being returned.
pub fn read_snapshot<R: Read>(mut reader: R) -> Result<CsrGraph, IoError> {
    let mut raw = Vec::new();
    reader.read_to_end(&mut raw)?;
    let mut buf: &[u8] = &raw;
    if buf.remaining() < 24 {
        return Err(IoError::Corrupt("truncated header".into()));
    }
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(IoError::Corrupt("bad magic".into()));
    }
    let n = buf.get_u64_le() as usize;
    let m = buf.get_u64_le() as usize;
    // Checked arithmetic: a corrupted header must produce an error, not an
    // integer-overflow panic.
    let need = n
        .checked_add(1)
        .and_then(|x| x.checked_mul(8))
        .and_then(|x| x.checked_add(m.checked_mul(4)?))
        .and_then(|x| x.checked_mul(2))
        .ok_or_else(|| IoError::Corrupt("header sizes overflow".into()))?;
    if buf.remaining() != need {
        return Err(IoError::Corrupt(format!(
            "payload size {} != expected {}",
            buf.remaining(),
            need
        )));
    }
    let read_offsets =
        |buf: &mut &[u8]| -> Vec<usize> { (0..=n).map(|_| buf.get_u64_le() as usize).collect() };
    let out_offsets = read_offsets(&mut buf);
    let out_targets: Vec<NodeId> = (0..m).map(|_| buf.get_u32_le()).collect();
    let in_offsets = read_offsets(&mut buf);
    let in_sources: Vec<NodeId> = (0..m).map(|_| buf.get_u32_le()).collect();
    let g = CsrGraph::from_raw_parts(out_offsets, out_targets, in_offsets, in_sources);
    g.validate().map_err(IoError::Corrupt)?;
    Ok(g)
}

/// Reads a binary snapshot from a file path.
pub fn read_snapshot_file(path: impl AsRef<Path>) -> Result<CsrGraph, IoError> {
    read_snapshot(BufReader::new(File::open(path)?))
}

/// Reads a weighted edge list (`src dst weight` per line; same comment
/// conventions as [`read_edge_list`]). A missing third column defaults to
/// weight 1.0 so unweighted files load transparently.
pub fn read_weighted_edge_list<R: BufRead>(
    reader: R,
    n_hint: Option<usize>,
) -> Result<crate::WeightedCsrGraph, IoError> {
    let mut edges: Vec<(NodeId, NodeId, f64)> = Vec::new();
    let mut max_id: usize = 0;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let parse_id = |tok: Option<&str>| -> Result<NodeId, IoError> {
            tok.ok_or_else(|| IoError::Parse(lineno + 1, "missing field".into()))?
                .parse::<NodeId>()
                .map_err(|e| IoError::Parse(lineno + 1, e.to_string()))
        };
        let u = parse_id(it.next())?;
        let v = parse_id(it.next())?;
        let w = match it.next() {
            None => 1.0,
            Some(raw) => {
                raw.parse::<f64>().map_err(|e| IoError::Parse(lineno + 1, e.to_string()))?
            }
        };
        if w <= 0.0 || !w.is_finite() {
            return Err(IoError::Parse(lineno + 1, format!("invalid weight {w}")));
        }
        max_id = max_id.max(u as usize).max(v as usize);
        edges.push((u, v, w));
    }
    let n = n_hint.unwrap_or(0).max(if edges.is_empty() { 0 } else { max_id + 1 });
    Ok(crate::WeightedGraphBuilder::new(n).extend_edges(edges).build())
}

/// Writes a weighted graph as `src dst weight` lines.
pub fn write_weighted_edge_list<W: Write>(
    g: &crate::WeightedCsrGraph,
    writer: W,
) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# weighted directed edge list: {} nodes, {} edges", g.n(), g.m())?;
    for u in 0..g.n() as NodeId {
        for (v, wt) in g.out_edges(u) {
            writeln!(w, "{u} {v} {wt}")?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Convenience: parse an edge list keeping dangling nodes untouched
/// (the leaky representation some experiments need).
pub fn read_edge_list_keep_dangling<R: BufRead>(
    reader: R,
    n_hint: Option<usize>,
) -> Result<CsrGraph, IoError> {
    let g = read_edge_list(reader, n_hint)?;
    // Rebuild without the self-loop patches: keep only edges whose source
    // had an original out-edge. Simplest correct approach: re-parse is not
    // possible here, so instead strip self-loops on nodes of out-degree 1.
    let edges: Vec<(NodeId, NodeId)> =
        g.edges().filter(|&(u, v)| !(u == v && g.out_degree(u) == 1)).collect();
    Ok(GraphBuilder::with_capacity(g.n(), edges.len())
        .dangling_policy(DanglingPolicy::Keep)
        .extend_edges(edges)
        .build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample() -> CsrGraph {
        CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 3)])
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(Cursor::new(buf), Some(5)).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn edge_list_skips_comments_and_blanks() {
        let text = "# comment\n% konect comment\n\n0 1\n1 2 999\n";
        let g = read_edge_list(Cursor::new(text), None).unwrap();
        assert_eq!(g.n(), 3);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2)); // third column ignored
    }

    #[test]
    fn edge_list_reports_parse_error_with_line() {
        let text = "0 1\nnot numbers\n";
        let err = read_edge_list(Cursor::new(text), None).unwrap_err();
        match err {
            IoError::Parse(line, _) => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn n_hint_extends_node_range() {
        let g = read_edge_list(Cursor::new("0 1\n"), Some(10)).unwrap();
        assert_eq!(g.n(), 10);
    }

    #[test]
    fn snapshot_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_snapshot(&g, &mut buf).unwrap();
        let g2 = read_snapshot(Cursor::new(buf)).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn snapshot_rejects_bad_magic() {
        let mut buf = Vec::new();
        write_snapshot(&sample(), &mut buf).unwrap();
        buf[0] = b'X';
        assert!(matches!(read_snapshot(Cursor::new(buf)), Err(IoError::Corrupt(_))));
    }

    #[test]
    fn snapshot_rejects_truncation() {
        let mut buf = Vec::new();
        write_snapshot(&sample(), &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(read_snapshot(Cursor::new(buf)), Err(IoError::Corrupt(_))));
    }

    #[test]
    fn keep_dangling_variant() {
        let text = "0 1\n0 2\n";
        let g = read_edge_list_keep_dangling(Cursor::new(text), None).unwrap();
        assert_eq!(g.dangling_nodes(), vec![1, 2]);
    }

    #[test]
    fn weighted_edge_list_roundtrip() {
        let g = crate::WeightedGraphBuilder::new(3)
            .extend_edges([(0, 1, 2.5), (1, 2, 0.5), (2, 0, 1.0)])
            .build();
        let mut buf = Vec::new();
        write_weighted_edge_list(&g, &mut buf).unwrap();
        let g2 = read_weighted_edge_list(Cursor::new(buf), Some(3)).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn weighted_reader_defaults_missing_weight_to_one() {
        let text = "0 1\n1 0 3.5\n";
        let g = read_weighted_edge_list(Cursor::new(text), None).unwrap();
        assert_eq!(g.out_edges(0).next(), Some((1, 1.0)));
        assert_eq!(g.out_edges(1).next(), Some((0, 3.5)));
    }

    #[test]
    fn weighted_reader_rejects_bad_weight() {
        for text in ["0 1 -2.0\n", "0 1 nan\n", "0 1 0\n"] {
            let err = read_weighted_edge_list(Cursor::new(text), None);
            assert!(err.is_err(), "{text:?} should fail");
        }
    }
}
