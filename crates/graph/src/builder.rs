//! Incremental construction of [`CsrGraph`] from unsorted edge streams.

use crate::{CsrGraph, NodeId};

/// What to do with nodes that end up with zero out-degree.
///
/// The TPA/CPI math (paper §II) requires `Ãᵀ` to be column-stochastic, which
/// holds only when every node has at least one out-edge. Real edge lists and
/// random generators routinely violate this.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DanglingPolicy {
    /// Add a self-loop to every dangling node (default). Keeps the walk
    /// probability mass conserved, matching the paper's assumptions.
    #[default]
    SelfLoop,
    /// Leave dangling nodes alone; probability mass "leaks" at them, so CPI
    /// sums converge to less than 1. Useful for studying the leak itself.
    Keep,
}

/// Builder collecting edges before the one-shot CSR construction.
///
/// Construction sorts the staged edge list once per orientation
/// (`O(m log m)`); deduplication is a linear pass over the sorted list.
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
    dedup: bool,
    keep_self_loops: bool,
    dangling: DanglingPolicy,
}

impl GraphBuilder {
    /// Builder for a graph with exactly `n` nodes (`0..n`).
    pub fn new(n: usize) -> Self {
        Self::with_capacity(n, 0)
    }

    /// Builder preallocating space for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        assert!(n <= NodeId::MAX as usize, "node count exceeds u32 id space");
        Self {
            n,
            edges: Vec::with_capacity(m),
            dedup: true,
            keep_self_loops: true,
            dangling: DanglingPolicy::default(),
        }
    }

    /// Disable duplicate-edge removal (parallel edges are kept).
    pub fn allow_parallel_edges(mut self) -> Self {
        self.dedup = false;
        self
    }

    /// Remove self-loops present in the input during [`Self::build`].
    /// (Self-loops added by [`DanglingPolicy::SelfLoop`] are unaffected:
    /// they are inserted after filtering.)
    pub fn drop_self_loops(mut self) -> Self {
        self.keep_self_loops = false;
        self
    }

    /// Set the dangling-node policy (default: [`DanglingPolicy::SelfLoop`]).
    pub fn dangling_policy(mut self, p: DanglingPolicy) -> Self {
        self.dangling = p;
        self
    }

    /// Add one directed edge. Panics if an endpoint is out of range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u},{v}) out of range for n={}",
            self.n
        );
        self.edges.push((u, v));
        self
    }

    /// Add every edge from an iterator (chainable by-value form).
    pub fn extend_edges(mut self, it: impl IntoIterator<Item = (NodeId, NodeId)>) -> Self {
        for (u, v) in it {
            self.add_edge(u, v);
        }
        self
    }

    /// Add the reverse of every edge added so far, making the graph
    /// symmetric (an undirected graph in directed representation).
    pub fn symmetrize(mut self) -> Self {
        let rev: Vec<(NodeId, NodeId)> = self.edges.iter().map(|&(u, v)| (v, u)).collect();
        self.edges.extend(rev);
        self
    }

    /// Number of edges currently staged (before dedup).
    pub fn staged_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalize into an immutable [`CsrGraph`].
    pub fn build(self) -> CsrGraph {
        let Self { n, mut edges, dedup, keep_self_loops, dangling } = self;

        if !keep_self_loops {
            edges.retain(|&(u, v)| u != v);
        }

        if dedup {
            edges.sort_unstable();
            edges.dedup();
        }

        if dangling == DanglingPolicy::SelfLoop {
            let mut has_out = vec![false; n];
            for &(u, _) in &edges {
                has_out[u as usize] = true;
            }
            for (u, &has) in has_out.iter().enumerate() {
                if !has {
                    edges.push((u as NodeId, u as NodeId));
                }
            }
        }

        let (out_offsets, out_targets) = bucket(n, &edges, false);
        let (in_offsets, in_sources) = bucket(n, &edges, true);
        CsrGraph::from_raw_parts(out_offsets, out_targets, in_offsets, in_sources)
    }
}

/// Counting-sort `edges` into CSR `(offsets, data)`. With `transpose` the
/// edges are keyed by target and the sources are stored. Data within each
/// node's range is sorted ascending.
fn bucket(n: usize, edges: &[(NodeId, NodeId)], transpose: bool) -> (Vec<usize>, Vec<NodeId>) {
    let key = |&(u, v): &(NodeId, NodeId)| if transpose { (v, u) } else { (u, v) };
    let mut counts = vec![0usize; n + 1];
    for e in edges {
        counts[key(e).0 as usize + 1] += 1;
    }
    for i in 0..n {
        counts[i + 1] += counts[i];
    }
    let offsets = counts.clone();
    let mut data = vec![0 as NodeId; edges.len()];
    let mut cursor = counts;
    for e in edges {
        let (k, v) = key(e);
        data[cursor[k as usize]] = v;
        cursor[k as usize] += 1;
    }
    for u in 0..n {
        data[offsets[u]..offsets[u + 1]].sort_unstable();
    }
    (offsets, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_sorted_adjacency() {
        let g = GraphBuilder::new(3)
            .dangling_policy(DanglingPolicy::Keep)
            .extend_edges([(2, 1), (0, 2), (0, 1), (2, 0)])
            .build();
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.out_neighbors(2), &[0, 1]);
        assert_eq!(g.in_neighbors(1), &[0, 2]);
    }

    #[test]
    fn dedup_removes_parallel_edges() {
        let g = GraphBuilder::new(2).extend_edges([(0, 1), (0, 1), (0, 1), (1, 0)]).build();
        assert_eq!(g.m(), 2);
        assert_eq!(g.out_neighbors(0), &[1]);
    }

    #[test]
    fn parallel_edges_kept_when_allowed() {
        let g = GraphBuilder::new(2)
            .allow_parallel_edges()
            .dangling_policy(DanglingPolicy::Keep)
            .extend_edges([(0, 1), (0, 1)])
            .build();
        assert_eq!(g.m(), 2);
        assert_eq!(g.out_neighbors(0), &[1, 1]);
    }

    #[test]
    fn self_loop_patching_for_dangling() {
        let g = GraphBuilder::new(3).extend_edges([(0, 1), (0, 2)]).build();
        // 1 and 2 were dangling; each gets a self-loop.
        assert_eq!(g.dangling_nodes(), Vec::<NodeId>::new());
        assert!(g.has_edge(1, 1));
        assert!(g.has_edge(2, 2));
        assert_eq!(g.m(), 4);
    }

    #[test]
    fn keep_policy_leaves_dangling() {
        let g = GraphBuilder::new(3)
            .dangling_policy(DanglingPolicy::Keep)
            .extend_edges([(0, 1), (0, 2)])
            .build();
        assert_eq!(g.dangling_nodes(), vec![1, 2]);
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn drop_self_loops_filters_input_only() {
        let g = GraphBuilder::new(2)
            .drop_self_loops()
            .dangling_policy(DanglingPolicy::Keep)
            .extend_edges([(0, 0), (0, 1)])
            .build();
        assert!(!g.has_edge(0, 0));
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn symmetrize_doubles_edges() {
        let g = GraphBuilder::new(3).extend_edges([(0, 1), (1, 2)]).symmetrize().build();
        assert!(g.has_edge(1, 0));
        assert!(g.has_edge(2, 1));
        assert_eq!(g.m(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_edge() {
        GraphBuilder::new(2).extend_edges([(0, 2)]).build();
    }

    #[test]
    fn build_is_deterministic() {
        let edges = [(0, 1), (2, 0), (1, 2), (2, 1)];
        let a = GraphBuilder::new(3).extend_edges(edges).build();
        let b = GraphBuilder::new(3).extend_edges(edges).build();
        assert_eq!(a, b);
    }

    #[test]
    fn self_loop_patch_after_self_loop_filter() {
        // Node 1's only edge is a self-loop which gets filtered; the
        // dangling policy must then re-add one.
        let g = GraphBuilder::new(2).drop_self_loops().extend_edges([(0, 1), (1, 1)]).build();
        assert!(g.has_edge(1, 1));
        assert_eq!(g.dangling_nodes(), Vec::<NodeId>::new());
    }
}
