//! Classic graph algorithms used for dataset characterization (the
//! extended Table II) and by the block-elimination baselines.

use crate::{CsrGraph, NodeId};
use std::collections::VecDeque;

/// BFS hop distances from `source`, treating the graph as directed.
/// Unreachable nodes get `u32::MAX`.
pub fn bfs_distances(g: &CsrGraph, source: NodeId) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.n()];
    let mut q = VecDeque::from([source]);
    dist[source as usize] = 0;
    while let Some(u) = q.pop_front() {
        let d = dist[u as usize] + 1;
        for &v in g.out_neighbors(u) {
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = d;
                q.push_back(v);
            }
        }
    }
    dist
}

/// Weakly connected components (edge direction ignored): returns
/// `(component_id per node, component count)`.
pub fn weakly_connected_components(g: &CsrGraph) -> (Vec<u32>, usize) {
    let n = g.n();
    let mut comp = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut queue = VecDeque::new();
    for start in 0..n as NodeId {
        if comp[start as usize] != u32::MAX {
            continue;
        }
        comp[start as usize] = count;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in g.out_neighbors(u).iter().chain(g.in_neighbors(u)) {
                if comp[v as usize] == u32::MAX {
                    comp[v as usize] = count;
                    queue.push_back(v);
                }
            }
        }
        count += 1;
    }
    (comp, count as usize)
}

/// Strongly connected components via Tarjan's algorithm (iterative, so
/// deep graphs don't blow the stack). Returns `(scc_id per node, count)`;
/// ids are in reverse topological order of the condensation.
pub fn strongly_connected_components(g: &CsrGraph) -> (Vec<u32>, usize) {
    let n = g.n();
    const UNSET: u32 = u32::MAX;
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut scc = vec![UNSET; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut next_index = 0u32;
    let mut scc_count = 0u32;

    // Explicit DFS state machine: (node, next-child cursor).
    let mut call: Vec<(NodeId, usize)> = Vec::new();
    for root in 0..n as NodeId {
        if index[root as usize] != UNSET {
            continue;
        }
        call.push((root, 0));
        while let Some(&mut (v, ref mut cursor)) = call.last_mut() {
            if *cursor == 0 {
                index[v as usize] = next_index;
                lowlink[v as usize] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v as usize] = true;
            }
            let neighbors = g.out_neighbors(v);
            if *cursor < neighbors.len() {
                let w = neighbors[*cursor];
                *cursor += 1;
                if index[w as usize] == UNSET {
                    call.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                // v is finished.
                if lowlink[v as usize] == index[v as usize] {
                    loop {
                        let w = stack.pop().unwrap();
                        on_stack[w as usize] = false;
                        scc[w as usize] = scc_count;
                        if w == v {
                            break;
                        }
                    }
                    scc_count += 1;
                }
                call.pop();
                if let Some(&mut (parent, _)) = call.last_mut() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
                }
            }
        }
    }
    (scc, scc_count as usize)
}

/// Fraction of (non-self-loop) edges whose reverse edge also exists.
pub fn reciprocity(g: &CsrGraph) -> f64 {
    let mut mutual = 0usize;
    let mut total = 0usize;
    for (u, v) in g.edges() {
        if u == v {
            continue;
        }
        total += 1;
        if g.has_edge(v, u) {
            mutual += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        mutual as f64 / total as f64
    }
}

/// Out-degree histogram: `hist[d]` = number of nodes with out-degree `d`
/// (trailing zeros trimmed).
pub fn degree_histogram(g: &CsrGraph) -> Vec<usize> {
    let mut hist = Vec::new();
    for v in 0..g.n() as NodeId {
        let d = g.out_degree(v);
        if d >= hist.len() {
            hist.resize(d + 1, 0);
        }
        hist[d] += 1;
    }
    hist
}

/// Power-law exponent estimate for the out-degree distribution via the
/// Hill / maximum-likelihood estimator `1 + n̂/Σ ln(dᵢ/(dmin−½))` over
/// degrees ≥ `dmin`.
pub fn power_law_exponent(g: &CsrGraph, dmin: usize) -> Option<f64> {
    assert!(dmin >= 1);
    let mut count = 0usize;
    let mut log_sum = 0.0f64;
    for v in 0..g.n() as NodeId {
        let d = g.out_degree(v);
        if d >= dmin {
            count += 1;
            log_sum += (d as f64 / (dmin as f64 - 0.5)).ln();
        }
    }
    if count < 10 || log_sum <= 0.0 {
        None
    } else {
        Some(1.0 + count as f64 / log_sum)
    }
}

/// K-core decomposition (undirected view): `core[v]` is the largest `k`
/// such that `v` belongs to a subgraph where every node has degree ≥ k.
/// Peeling algorithm, `O(n + m)` with bucketed degrees. High-core nodes
/// are the "hubs" block-elimination methods peel off first.
pub fn k_core(g: &CsrGraph) -> Vec<u32> {
    let n = g.n();
    // Undirected degree (distinct neighbors in either direction).
    let mut degree: Vec<usize> = (0..n as NodeId)
        .map(|v| {
            let mut ns: Vec<NodeId> =
                g.out_neighbors(v).iter().chain(g.in_neighbors(v)).copied().collect();
            ns.sort_unstable();
            ns.dedup();
            ns.retain(|&x| x != v);
            ns.len()
        })
        .collect();
    let max_deg = degree.iter().max().copied().unwrap_or(0);

    // Bucket queue over degrees.
    let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); max_deg + 1];
    for v in 0..n {
        buckets[degree[v]].push(v as NodeId);
    }
    let mut core = vec![0u32; n];
    let mut removed = vec![false; n];
    let mut current_k = 0usize;
    let mut processed = 0usize;
    let mut cursor = 0usize; // lowest possibly non-empty bucket
    while processed < n {
        // Find the next node with minimal remaining degree.
        while cursor <= max_deg && buckets[cursor].is_empty() {
            cursor += 1;
        }
        if cursor > max_deg {
            break;
        }
        let v = buckets[cursor].pop().unwrap();
        if removed[v as usize] || degree[v as usize] != cursor {
            continue; // stale entry
        }
        current_k = current_k.max(cursor);
        core[v as usize] = current_k as u32;
        removed[v as usize] = true;
        processed += 1;
        // Decrement neighbors.
        let mut ns: Vec<NodeId> =
            g.out_neighbors(v).iter().chain(g.in_neighbors(v)).copied().collect();
        ns.sort_unstable();
        ns.dedup();
        for w in ns {
            if w == v || removed[w as usize] {
                continue;
            }
            let d = degree[w as usize];
            if d > 0 {
                degree[w as usize] = d - 1;
                buckets[d - 1].push(w);
                if d - 1 < cursor {
                    cursor = d - 1;
                }
            }
        }
    }
    core
}

/// Estimated average local clustering coefficient over a node sample
/// (treating edges as undirected). Exact when `sample >= n`.
pub fn clustering_coefficient(g: &CsrGraph, sample: usize, rng_seed: u64) -> f64 {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let n = g.n();
    if n == 0 {
        return 0.0;
    }
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let nodes: Vec<NodeId> = if sample >= n {
        (0..n as NodeId).collect()
    } else {
        (0..sample).map(|_| rng.gen_range(0..n) as NodeId).collect()
    };
    let neighbors = |v: NodeId| -> Vec<NodeId> {
        let mut ns: Vec<NodeId> =
            g.out_neighbors(v).iter().chain(g.in_neighbors(v)).copied().collect();
        ns.sort_unstable();
        ns.dedup();
        ns.retain(|&x| x != v);
        ns
    };
    let mut total = 0.0;
    let mut counted = 0usize;
    for v in nodes {
        let ns = neighbors(v);
        if ns.len() < 2 {
            continue;
        }
        let mut links = 0usize;
        for (i, &a) in ns.iter().enumerate() {
            for &b in &ns[i + 1..] {
                if g.has_edge(a, b) || g.has_edge(b, a) {
                    links += 1;
                }
            }
        }
        total += 2.0 * links as f64 / (ns.len() * (ns.len() - 1)) as f64;
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{complete_graph, cycle_graph, path_graph, star_graph};
    use crate::GraphBuilder;

    #[test]
    fn bfs_on_path() {
        let g = path_graph(5);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        let d1 = bfs_distances(&g, 2);
        assert_eq!(d1[0], u32::MAX); // directed: can't go back
        assert_eq!(d1[4], 2);
    }

    #[test]
    fn wcc_counts_islands() {
        // Two disconnected cycles.
        let g = GraphBuilder::new(6)
            .extend_edges([(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
            .build();
        let (comp, count) = weakly_connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[3], comp[5]);
        assert_ne!(comp[0], comp[3]);
    }

    #[test]
    fn scc_on_cycle_is_single() {
        let g = cycle_graph(6);
        let (_, count) = strongly_connected_components(&g);
        assert_eq!(count, 1);
    }

    #[test]
    fn scc_on_dag_is_per_node() {
        let g = GraphBuilder::new(4)
            .dangling_policy(crate::DanglingPolicy::Keep)
            .extend_edges([(0, 1), (1, 2), (2, 3), (0, 2)])
            .build();
        let (_, count) = strongly_connected_components(&g);
        assert_eq!(count, 4);
    }

    #[test]
    fn scc_mixed() {
        // Cycle {0,1,2} feeding into a 2-cycle {3,4}.
        let g = GraphBuilder::new(5)
            .extend_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 3)])
            .build();
        let (scc, count) = strongly_connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(scc[0], scc[1]);
        assert_eq!(scc[0], scc[2]);
        assert_eq!(scc[3], scc[4]);
        assert_ne!(scc[0], scc[3]);
    }

    #[test]
    fn reciprocity_extremes() {
        let sym = star_graph(5); // all edges mutual
        assert!((reciprocity(&sym) - 1.0).abs() < 1e-12);
        let path = GraphBuilder::new(3)
            .dangling_policy(crate::DanglingPolicy::Keep)
            .extend_edges([(0, 1), (1, 2)])
            .build();
        assert_eq!(reciprocity(&path), 0.0);
    }

    #[test]
    fn degree_histogram_sums_to_n() {
        let g = star_graph(10);
        let h = degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), 10);
        assert_eq!(h[9], 1); // the hub
        assert_eq!(h[1], 9); // the leaves
    }

    #[test]
    fn power_law_estimator_on_uniform_graph_is_large() {
        // A complete graph has no heavy tail: exponent estimate is huge
        // (all degrees equal → log-sum tiny) or None.
        let g = complete_graph(20);
        if let Some(gamma) = power_law_exponent(&g, 2) {
            assert!(gamma > 1.0);
        }
    }

    #[test]
    fn k_core_of_complete_graph() {
        let g = complete_graph(6);
        let core = k_core(&g);
        assert!(core.iter().all(|&c| c == 5), "{core:?}");
    }

    #[test]
    fn k_core_of_star_is_one() {
        let g = star_graph(8);
        let core = k_core(&g);
        assert!(core.iter().all(|&c| c == 1), "{core:?}");
    }

    #[test]
    fn k_core_peels_pendant_chain() {
        // Triangle {0,1,2} with a pendant path 2-3-4.
        let g = GraphBuilder::new(5)
            .extend_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)])
            .symmetrize()
            .build();
        let core = k_core(&g);
        assert_eq!(core[0], 2);
        assert_eq!(core[1], 2);
        assert_eq!(core[2], 2);
        assert_eq!(core[3], 1);
        assert_eq!(core[4], 1);
    }

    #[test]
    fn k_core_monotone_under_edge_addition() {
        let sparse =
            GraphBuilder::new(4).extend_edges([(0, 1), (1, 2), (2, 3)]).symmetrize().build();
        let dense = complete_graph(4);
        let cs = k_core(&sparse);
        let cd = k_core(&dense);
        for v in 0..4 {
            assert!(cd[v] >= cs[v]);
        }
    }

    #[test]
    fn clustering_complete_graph_is_one() {
        let g = complete_graph(8);
        let c = clustering_coefficient(&g, 100, 1);
        assert!((c - 1.0).abs() < 1e-12, "c = {c}");
    }

    #[test]
    fn clustering_cycle_is_zero() {
        let g = cycle_graph(10);
        let c = clustering_coefficient(&g, 100, 1);
        assert!(c.abs() < 1e-12);
    }
}
