//! Community-structured generators: stochastic block model and an LFR-style
//! planted-partition model with power-law degrees ("LFR-lite").
//!
//! These provide the *block-wise structure* that the paper's neighbor
//! approximation exploits (§III-B, Fig. 5, Fig. 6): nodes inside a community
//! are densely inter-connected, so scores propagated from a seed keep
//! circulating inside the seed's community for the early iterations.

use super::{power_law_weights, AliasTable};
use crate::{CsrGraph, GraphBuilder, NodeId};
use rand::Rng;
use std::collections::HashSet;

/// Stochastic block model with explicit block sizes.
///
/// Every ordered intra-block pair becomes an edge with probability `p_in`,
/// every inter-block pair with probability `p_out`. Edge counts per block
/// pair are drawn from a Poisson approximation of the Binomial, then that
/// many distinct pairs are sampled — accurate for the sparse graphs used
/// here and `O(m)` instead of `O(n²)`.
pub fn sbm<R: Rng + ?Sized>(block_sizes: &[usize], p_in: f64, p_out: f64, rng: &mut R) -> CsrGraph {
    assert!(!block_sizes.is_empty());
    assert!((0.0..=1.0).contains(&p_in) && (0.0..=1.0).contains(&p_out));
    let n: usize = block_sizes.iter().sum();
    let starts: Vec<usize> = block_sizes
        .iter()
        .scan(0usize, |acc, &s| {
            let start = *acc;
            *acc += s;
            Some(start)
        })
        .collect();

    let mut seen: HashSet<u64> = HashSet::new();
    let mut builder = GraphBuilder::new(n);
    for (bi, &si) in block_sizes.iter().enumerate() {
        for (bj, &sj) in block_sizes.iter().enumerate() {
            let p = if bi == bj { p_in } else { p_out };
            if p == 0.0 {
                continue;
            }
            let pairs = if bi == bj { si * si.saturating_sub(1) } else { si * sj };
            let target = poisson_approx_binomial(pairs as u64, p, rng);
            let mut placed = 0u64;
            let mut tries = 0u64;
            let budget = 30 * target + 1000;
            while placed < target && tries < budget {
                tries += 1;
                let u = (starts[bi] + rng.gen_range(0..si)) as NodeId;
                let v = (starts[bj] + rng.gen_range(0..sj)) as NodeId;
                if u == v {
                    continue;
                }
                let key = (u as u64) << 32 | v as u64;
                if seen.insert(key) {
                    builder.add_edge(u, v);
                    placed += 1;
                }
            }
        }
    }
    builder.build()
}

/// Sample from Binomial(n, p) via the Poisson limit (sparse regime) with a
/// normal approximation for large means. Exact enough for graph generation.
fn poisson_approx_binomial<R: Rng + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
    let lambda = n as f64 * p;
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        // Knuth's algorithm.
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut prod = 1.0f64;
        loop {
            prod *= rng.gen::<f64>();
            if prod <= l {
                return k.min(n);
            }
            k += 1;
        }
    }
    // Normal approximation with continuity, clamped to [0, n].
    let std = lambda.sqrt();
    let z: f64 = {
        // Box–Muller.
        let u1: f64 = rng.gen::<f64>().max(1e-12);
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    };
    let x = (lambda + std * z).round();
    x.clamp(0.0, n as f64) as u64
}

/// Configuration for [`lfr_lite`].
#[derive(Clone, Copy, Debug)]
pub struct LfrConfig {
    /// Number of nodes.
    pub n: usize,
    /// Number of distinct directed edges to place.
    pub m: usize,
    /// Mixing parameter μ: fraction of edges whose target is chosen globally
    /// instead of within the source's community. μ=0 → perfectly separated
    /// blocks, μ=1 → no community structure (pure Chung–Lu).
    pub mu: f64,
    /// Degree power-law exponent γ (weights ∝ rank^(−1/(γ−1))).
    pub degree_exponent: f64,
    /// Community-size power-law exponent.
    pub community_exponent: f64,
    /// Smallest allowed community.
    pub min_community: usize,
    /// Largest allowed community.
    pub max_community: usize,
    /// Probability that an edge is accompanied by its reverse edge.
    /// Social networks are highly reciprocal (LiveJournal ≈ 0.7,
    /// Twitter ≈ 0.2); reciprocity produces the 2-step walk returns that
    /// block-wise structure relies on.
    pub reciprocity: f64,
}

impl Default for LfrConfig {
    fn default() -> Self {
        Self {
            n: 1000,
            m: 8000,
            mu: 0.2,
            degree_exponent: 2.5,
            community_exponent: 2.0,
            min_community: 20,
            max_community: 200,
            reciprocity: 0.0,
        }
    }
}

/// An LFR-lite graph together with its planted community assignment.
#[derive(Clone, Debug)]
pub struct LfrGraph {
    /// The generated graph.
    pub graph: CsrGraph,
    /// `communities[v]` = planted community index of node `v`.
    pub communities: Vec<u32>,
    /// Number of planted communities.
    pub num_communities: usize,
}

/// LFR-style benchmark graph: power-law degrees, power-law community sizes,
/// and a mixing parameter μ controlling inter-community edges.
///
/// Simplifications vs. full LFR (hence "lite"): degree/community-size
/// sequences are rank-based rather than sampled, and edges are drawn with a
/// Chung–Lu two-endpoint scheme rather than stub matching. Both heavy tails
/// and tunable block-wise structure — the two graph properties the paper's
/// approximations exploit — are preserved.
pub fn lfr_lite<R: Rng + ?Sized>(cfg: LfrConfig, rng: &mut R) -> LfrGraph {
    assert!(cfg.n >= 2 && cfg.m >= 1);
    assert!((0.0..=1.0).contains(&cfg.mu), "mu must be in [0,1]");
    assert!(cfg.min_community >= 2 && cfg.min_community <= cfg.max_community);

    // 1. Community sizes: power-law ranks clipped to [min, max], drawn until
    //    they cover n nodes.
    let mut sizes: Vec<usize> = Vec::new();
    let mut covered = 0usize;
    let alpha = 1.0 / (cfg.community_exponent - 1.0);
    let mut rank = 1usize;
    while covered < cfg.n {
        let raw = cfg.max_community as f64 * (rank as f64).powf(-alpha);
        let size = (raw as usize).clamp(cfg.min_community, cfg.max_community);
        let size = size.min(cfg.n - covered).max(1);
        sizes.push(size);
        covered += size;
        rank += 1;
    }
    let num_communities = sizes.len();

    // 2. Assign nodes to communities in shuffled order so community id does
    //    not correlate with node id.
    let mut order: Vec<NodeId> = (0..cfg.n as NodeId).collect();
    shuffle(&mut order, rng);
    let mut communities = vec![0u32; cfg.n];
    let mut members: Vec<Vec<NodeId>> = Vec::with_capacity(num_communities);
    {
        let mut cursor = 0usize;
        for (ci, &size) in sizes.iter().enumerate() {
            let slice = &order[cursor..cursor + size];
            for &v in slice {
                communities[v as usize] = ci as u32;
            }
            members.push(slice.to_vec());
            cursor += size;
        }
    }

    // 3. Heavy-tailed node weights, shuffled onto ids.
    let mut weights = power_law_weights(cfg.n, cfg.degree_exponent);
    shuffle(&mut weights, rng);

    // 4. Alias tables: one global, one per community.
    let global = AliasTable::new(&weights);
    let per_comm: Vec<AliasTable> = members
        .iter()
        .map(|ms| AliasTable::new(&ms.iter().map(|&v| weights[v as usize]).collect::<Vec<_>>()))
        .collect();

    // 5. Draw edges.
    let mut seen: HashSet<u64> = HashSet::with_capacity(cfg.m * 2);
    let mut builder = GraphBuilder::with_capacity(cfg.n, cfg.m);
    let mut stall = 0usize;
    let max_stall = 80 * cfg.m + 10_000;
    while seen.len() < cfg.m && stall < max_stall {
        let u = global.sample(rng) as NodeId;
        let cu = communities[u as usize] as usize;
        let v = if rng.gen::<f64>() < cfg.mu {
            global.sample(rng) as NodeId
        } else {
            members[cu][per_comm[cu].sample(rng)]
        };
        if u == v {
            stall += 1;
            continue;
        }
        let key = (u as u64) << 32 | v as u64;
        if seen.insert(key) {
            builder.add_edge(u, v);
            stall = 0;
            if cfg.reciprocity > 0.0 && seen.len() < cfg.m && rng.gen::<f64>() < cfg.reciprocity {
                let rkey = (v as u64) << 32 | u as u64;
                if seen.insert(rkey) {
                    builder.add_edge(v, u);
                }
            }
        } else {
            stall += 1;
        }
    }

    LfrGraph { graph: builder.build(), communities, num_communities }
}

/// Fisher–Yates shuffle (avoids depending on `rand::seq` trait imports at
/// call sites).
fn shuffle<T, R: Rng + ?Sized>(xs: &mut [T], rng: &mut R) {
    for i in (1..xs.len()).rev() {
        let j = rng.gen_range(0..=i);
        xs.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sbm_intra_block_density_dominates() {
        let mut rng = StdRng::seed_from_u64(21);
        let g = sbm(&[100, 100, 100], 0.08, 0.002, &mut rng);
        assert!(g.validate().is_ok());
        let block = |v: NodeId| (v as usize) / 100;
        let (mut intra, mut inter) = (0usize, 0usize);
        for (u, v) in g.edges() {
            if u == v {
                continue; // dangling patches
            }
            if block(u) == block(v) {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > 4 * inter, "intra {intra} inter {inter}");
    }

    #[test]
    fn sbm_zero_out_probability_gives_disconnected_blocks() {
        let mut rng = StdRng::seed_from_u64(22);
        let g = sbm(&[50, 50], 0.1, 0.0, &mut rng);
        for (u, v) in g.edges() {
            assert_eq!((u as usize) / 50, (v as usize) / 50);
        }
    }

    #[test]
    fn lfr_covers_all_nodes_with_communities() {
        let mut rng = StdRng::seed_from_u64(23);
        let out = lfr_lite(LfrConfig { n: 500, m: 3000, ..Default::default() }, &mut rng);
        assert_eq!(out.communities.len(), 500);
        assert!(out.num_communities >= 3);
        assert!(out.communities.iter().all(|&c| (c as usize) < out.num_communities));
        assert!(out.graph.validate().is_ok());
    }

    #[test]
    fn lfr_low_mu_concentrates_edges_within_communities() {
        let mut rng = StdRng::seed_from_u64(24);
        let cfg = LfrConfig { n: 800, m: 6000, mu: 0.1, ..Default::default() };
        let out = lfr_lite(cfg, &mut rng);
        let mut intra = 0usize;
        let mut total = 0usize;
        for (u, v) in out.graph.edges() {
            if u == v {
                continue;
            }
            total += 1;
            if out.communities[u as usize] == out.communities[v as usize] {
                intra += 1;
            }
        }
        let frac = intra as f64 / total as f64;
        assert!(frac > 0.75, "intra-community fraction {frac}");
    }

    #[test]
    fn lfr_high_mu_mixes_edges() {
        let mut rng = StdRng::seed_from_u64(25);
        let cfg = LfrConfig { n: 800, m: 6000, mu: 1.0, ..Default::default() };
        let out = lfr_lite(cfg, &mut rng);
        let mut intra = 0usize;
        let mut total = 0usize;
        for (u, v) in out.graph.edges() {
            if u == v {
                continue;
            }
            total += 1;
            if out.communities[u as usize] == out.communities[v as usize] {
                intra += 1;
            }
        }
        let frac = intra as f64 / total as f64;
        assert!(frac < 0.5, "intra-community fraction {frac} too high for mu=1");
    }

    #[test]
    fn reciprocity_creates_mutual_edges() {
        let mut rng = StdRng::seed_from_u64(26);
        let cfg = LfrConfig { n: 400, m: 3000, reciprocity: 0.9, ..Default::default() };
        let out = lfr_lite(cfg, &mut rng);
        let g = &out.graph;
        let mut mutual = 0usize;
        let mut total = 0usize;
        for (u, v) in g.edges() {
            if u == v {
                continue;
            }
            total += 1;
            if g.has_edge(v, u) {
                mutual += 1;
            }
        }
        let frac = mutual as f64 / total as f64;
        assert!(frac > 0.6, "mutual fraction {frac}");
    }

    #[test]
    fn zero_reciprocity_mostly_one_way() {
        let mut rng = StdRng::seed_from_u64(27);
        let cfg = LfrConfig { n: 400, m: 3000, reciprocity: 0.0, ..Default::default() };
        let out = lfr_lite(cfg, &mut rng);
        let g = &out.graph;
        let mutual = g.edges().filter(|&(u, v)| u != v && g.has_edge(v, u)).count();
        assert!((mutual as f64) < 0.2 * g.m() as f64, "mutual {mutual} of {}", g.m());
    }

    #[test]
    fn lfr_deterministic() {
        let cfg = LfrConfig { n: 300, m: 1500, ..Default::default() };
        let a = lfr_lite(cfg, &mut StdRng::seed_from_u64(7));
        let b = lfr_lite(cfg, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.communities, b.communities);
    }

    #[test]
    fn poisson_binomial_sane_bounds() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..50 {
            let x = poisson_approx_binomial(1000, 0.01, &mut rng);
            assert!(x <= 1000);
        }
        assert_eq!(poisson_approx_binomial(100, 0.0, &mut rng), 0);
    }
}
