//! R-MAT (recursive matrix) generator — Chakrabarti, Zhan & Faloutsos 2004.
//!
//! Produces graphs with heavy-tailed degrees and self-similar
//! community-within-community structure; used for the hyperlink-network
//! analogs (Google, WikiLink) in `tpa-datasets`.

use crate::{CsrGraph, GraphBuilder, NodeId};
use rand::Rng;
use std::collections::HashSet;

/// Quadrant probabilities for the recursive edge placement.
#[derive(Clone, Copy, Debug)]
pub struct RmatConfig {
    /// Probability of recursing into the top-left quadrant (both endpoints
    /// in the lower half of the id range).
    pub a: f64,
    /// Top-right quadrant.
    pub b: f64,
    /// Bottom-left quadrant.
    pub c: f64,
    /// Noise added to the quadrant probabilities at each level to avoid
    /// exactly self-similar staircases (0 disables).
    pub noise: f64,
}

impl Default for RmatConfig {
    /// The classic (a,b,c,d) = (0.57, 0.19, 0.19, 0.05) parameters used in
    /// the Graph500 benchmark and typical web-graph fits.
    fn default() -> Self {
        Self { a: 0.57, b: 0.19, c: 0.19, noise: 0.1 }
    }
}

impl RmatConfig {
    /// Implied probability of the bottom-right quadrant.
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

/// Generates an R-MAT graph with `n` nodes and `m` distinct directed edges.
///
/// Edges are placed in a `2^k × 2^k` virtual adjacency matrix
/// (`k = ceil(log2 n)`); placements landing outside `n × n` or duplicating
/// an existing edge are rejected and resampled, so the output has exactly
/// `m` distinct edges before dangling patching.
pub fn rmat<R: Rng + ?Sized>(n: usize, m: usize, cfg: RmatConfig, rng: &mut R) -> CsrGraph {
    assert!(n >= 2, "need at least two nodes");
    let total = cfg.a + cfg.b + cfg.c;
    assert!(
        total < 1.0 + 1e-9 && cfg.a > 0.0 && cfg.b >= 0.0 && cfg.c >= 0.0 && cfg.d() >= 0.0,
        "invalid R-MAT quadrant probabilities"
    );
    let k = usize::BITS - (n - 1).leading_zeros(); // ceil(log2 n)
    let side = 1usize << k;
    debug_assert!(side >= n);

    let mut seen: HashSet<u64> = HashSet::with_capacity(m * 2);
    let mut builder = GraphBuilder::with_capacity(n, m);
    let mut rejected = 0usize;
    let max_rejected = 200 * m + 100_000;
    while seen.len() < m && rejected < max_rejected {
        let (u, v) = place_edge(k, side, cfg, rng);
        if u >= n || v >= n || u == v {
            rejected += 1;
            continue;
        }
        let key = (u as u64) << 32 | v as u64;
        if seen.insert(key) {
            builder.add_edge(u as NodeId, v as NodeId);
        } else {
            rejected += 1;
        }
    }
    builder.build()
}

/// One recursive quadrant descent, returning a (row, col) cell.
fn place_edge<R: Rng + ?Sized>(
    k: u32,
    side: usize,
    cfg: RmatConfig,
    rng: &mut R,
) -> (usize, usize) {
    let mut u = 0usize;
    let mut v = 0usize;
    let mut half = side >> 1;
    for _ in 0..k {
        // Per-level multiplicative noise, renormalized.
        let jitter = |p: f64, rng: &mut R| {
            if cfg.noise > 0.0 {
                p * (1.0 - cfg.noise / 2.0 + cfg.noise * rng.gen::<f64>())
            } else {
                p
            }
        };
        let a = jitter(cfg.a, rng);
        let b = jitter(cfg.b, rng);
        let c = jitter(cfg.c, rng);
        let d = jitter(cfg.d(), rng);
        let sum = a + b + c + d;
        let r = rng.gen::<f64>() * sum;
        if r < a {
            // top-left: no change
        } else if r < a + b {
            v += half;
        } else if r < a + b + c {
            u += half;
        } else {
            u += half;
            v += half;
        }
        half >>= 1;
    }
    (u, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generates_requested_size() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = rmat(1000, 6000, RmatConfig::default(), &mut rng);
        assert_eq!(g.n(), 1000);
        assert!(g.m() >= 6000); // + dangling self-loops
        assert!(g.validate().is_ok());
    }

    #[test]
    fn non_power_of_two_node_count() {
        let mut rng = StdRng::seed_from_u64(12);
        let g = rmat(777, 3000, RmatConfig::default(), &mut rng);
        assert_eq!(g.n(), 777);
        assert!(g.edges().all(|(u, v)| (u as usize) < 777 && (v as usize) < 777));
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let mut rng = StdRng::seed_from_u64(13);
        let g = rmat(2048, 16_000, RmatConfig::default(), &mut rng);
        let mut degs: Vec<usize> = (0..g.n() as NodeId).map(|u| g.out_degree(u)).collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        let top1pct: usize = degs[..20].iter().sum();
        // With a=0.57, the hottest 1% of nodes should hold a large edge share.
        assert!(
            top1pct as f64 > 0.08 * g.m() as f64,
            "top-1% degree share too small: {top1pct} of {}",
            g.m()
        );
    }

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = RmatConfig::default();
        let a = rmat(512, 2000, cfg, &mut StdRng::seed_from_u64(5));
        let b = rmat(512, 2000, cfg, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "invalid R-MAT")]
    fn rejects_bad_probabilities() {
        rmat(
            16,
            10,
            RmatConfig { a: 0.9, b: 0.3, c: 0.3, noise: 0.0 },
            &mut StdRng::seed_from_u64(0),
        );
    }
}
