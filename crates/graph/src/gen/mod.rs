//! Random and structured graph generators.
//!
//! Every generator is deterministic given an RNG seed. They back the
//! synthetic analogs of the paper's Table II datasets (`tpa-datasets`) and
//! the random-graph controls of Fig. 6.

mod alias;
mod classic;
mod communities;
mod random;
mod rewire;
mod rmat;
mod structured;

pub use alias::AliasTable;
pub use classic::{barabasi_albert, watts_strogatz};
pub use communities::{lfr_lite, sbm, LfrConfig, LfrGraph};
pub use random::{chung_lu, erdos_renyi_gnm, power_law_weights};
pub use rewire::{configuration_model, er_control};
pub use rmat::{rmat, RmatConfig};
pub use structured::{complete_graph, cycle_graph, grid_graph, path_graph, star_graph};
