//! Small deterministic graphs with known closed-form RWR behaviour, used
//! throughout the test suites.

use crate::{CsrGraph, DanglingPolicy, GraphBuilder, NodeId};

/// Directed path `0 → 1 → … → n−1` (last node gets a self-loop patch).
pub fn path_graph(n: usize) -> CsrGraph {
    GraphBuilder::new(n)
        .extend_edges((0..n.saturating_sub(1)).map(|i| (i as NodeId, i as NodeId + 1)))
        .build()
}

/// Directed cycle `0 → 1 → … → n−1 → 0`.
pub fn cycle_graph(n: usize) -> CsrGraph {
    assert!(n >= 1);
    GraphBuilder::new(n)
        .extend_edges((0..n).map(|i| (i as NodeId, ((i + 1) % n) as NodeId)))
        .build()
}

/// Star: hub 0 with bidirectional edges to every leaf `1..n`.
pub fn star_graph(n: usize) -> CsrGraph {
    assert!(n >= 2);
    GraphBuilder::new(n)
        .extend_edges((1..n).flat_map(|i| [(0, i as NodeId), (i as NodeId, 0)]))
        .build()
}

/// Complete directed graph on `n` nodes (no self-loops).
pub fn complete_graph(n: usize) -> CsrGraph {
    assert!(n >= 2);
    GraphBuilder::new(n)
        .dangling_policy(DanglingPolicy::Keep)
        .extend_edges((0..n).flat_map(move |u| {
            (0..n).filter(move |&v| v != u).map(move |v| (u as NodeId, v as NodeId))
        }))
        .build()
}

/// 4-connected grid of `rows × cols` nodes with bidirectional edges; node
/// `(r, c)` has id `r * cols + c`.
pub fn grid_graph(rows: usize, cols: usize) -> CsrGraph {
    assert!(rows >= 1 && cols >= 1);
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1));
                b.add_edge(id(r, c + 1), id(r, c));
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c));
                b.add_edge(id(r + 1, c), id(r, c));
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_shape() {
        let g = path_graph(4);
        assert_eq!(g.n(), 4);
        assert!(g.has_edge(0, 1) && g.has_edge(2, 3));
        assert!(g.has_edge(3, 3)); // dangling patch
    }

    #[test]
    fn cycle_shape() {
        let g = cycle_graph(5);
        assert_eq!(g.m(), 5);
        assert!(g.has_edge(4, 0));
        assert!(g.dangling_nodes().is_empty());
    }

    #[test]
    fn star_shape() {
        let g = star_graph(5);
        assert_eq!(g.out_degree(0), 4);
        assert_eq!(g.in_degree(0), 4);
        assert_eq!(g.out_degree(3), 1);
    }

    #[test]
    fn complete_shape() {
        let g = complete_graph(4);
        assert_eq!(g.m(), 12);
        assert!(!g.has_edge(2, 2));
    }

    #[test]
    fn grid_shape() {
        let g = grid_graph(3, 3);
        assert_eq!(g.n(), 9);
        // corner has degree 2, center degree 4
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(4), 4);
        assert!(g.validate().is_ok());
    }
}
