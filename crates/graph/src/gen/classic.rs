//! Classic random-graph models used by the ablation benches:
//! Barabási–Albert preferential attachment (heavy tail, no planted
//! communities) and Watts–Strogatz small world (high clustering, flat
//! degrees). Together with ER and LFR-lite they span the structure axes —
//! degree skew × clustering × community — that TPA's two approximations
//! depend on.

use crate::{CsrGraph, GraphBuilder, NodeId};
use rand::Rng;

/// Barabási–Albert preferential attachment: starts from a small complete
/// core and attaches each new node to `m_per_node` existing nodes chosen
/// proportionally to their current degree. Edges are inserted in both
/// directions (the classic model is undirected).
pub fn barabasi_albert<R: Rng + ?Sized>(n: usize, m_per_node: usize, rng: &mut R) -> CsrGraph {
    assert!(m_per_node >= 1);
    assert!(n > m_per_node + 1, "need n > m_per_node + 1");
    let core = m_per_node + 1;
    let mut builder = GraphBuilder::with_capacity(n, 2 * n * m_per_node);
    // Repeated-endpoint list: sampling uniformly from it is degree-biased.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * n * m_per_node);
    for u in 0..core {
        for v in 0..core {
            if u != v {
                builder.add_edge(u as NodeId, v as NodeId);
            }
        }
        for _ in 0..core - 1 {
            endpoints.push(u as NodeId);
        }
    }
    for v in core..n {
        let v = v as NodeId;
        let mut chosen: Vec<NodeId> = Vec::with_capacity(m_per_node);
        let mut guard = 0;
        while chosen.len() < m_per_node && guard < 100 * m_per_node {
            guard += 1;
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != v && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            builder.add_edge(v, t);
            builder.add_edge(t, v);
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    builder.build()
}

/// Watts–Strogatz small world: a ring lattice where each node connects to
/// `k/2` neighbors on each side, with every edge rewired to a random
/// target with probability `beta`. Bidirectional edges.
pub fn watts_strogatz<R: Rng + ?Sized>(n: usize, k: usize, beta: f64, rng: &mut R) -> CsrGraph {
    assert!(k >= 2 && k.is_multiple_of(2), "k must be even and >= 2");
    assert!(n > k, "need n > k");
    assert!((0.0..=1.0).contains(&beta));
    let mut builder = GraphBuilder::with_capacity(n, n * k);
    for u in 0..n {
        for hop in 1..=k / 2 {
            let mut v = (u + hop) % n;
            if rng.gen::<f64>() < beta {
                // Rewire to a uniform non-self target.
                loop {
                    let cand = rng.gen_range(0..n);
                    if cand != u {
                        v = cand;
                        break;
                    }
                }
            }
            builder.add_edge(u as NodeId, v as NodeId);
            builder.add_edge(v as NodeId, u as NodeId);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ba_has_heavy_tail() {
        let mut rng = StdRng::seed_from_u64(91);
        let g = barabasi_albert(2000, 3, &mut rng);
        assert!(g.validate().is_ok());
        let mut degs: Vec<usize> = (0..g.n() as NodeId).map(|v| g.out_degree(v)).collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        // Hub-to-median ratio should be large under preferential attachment.
        assert!(degs[0] > 8 * degs[g.n() / 2], "max {} median {}", degs[0], degs[g.n() / 2]);
    }

    #[test]
    fn ba_is_connected() {
        let mut rng = StdRng::seed_from_u64(92);
        let g = barabasi_albert(500, 2, &mut rng);
        let (_, wcc) = algo::weakly_connected_components(&g);
        assert_eq!(wcc, 1);
    }

    #[test]
    fn ws_zero_beta_is_regular_lattice() {
        let mut rng = StdRng::seed_from_u64(93);
        let g = watts_strogatz(100, 4, 0.0, &mut rng);
        for v in 0..100u32 {
            assert_eq!(g.out_degree(v), 4, "node {v}");
        }
        // Ring lattices have high clustering.
        assert!(algo::clustering_coefficient(&g, 200, 1) > 0.3);
    }

    #[test]
    fn ws_rewiring_shrinks_diameter() {
        let mut rng = StdRng::seed_from_u64(94);
        let lattice = watts_strogatz(400, 4, 0.0, &mut rng);
        let small_world = watts_strogatz(400, 4, 0.2, &mut rng);
        let ecc = |g: &CsrGraph| {
            let d = algo::bfs_distances(g, 0);
            d.iter().filter(|&&x| x != u32::MAX).max().copied().unwrap_or(0)
        };
        assert!(
            ecc(&small_world) < ecc(&lattice),
            "rewiring should create shortcuts: {} vs {}",
            ecc(&small_world),
            ecc(&lattice)
        );
    }

    #[test]
    fn generators_deterministic() {
        let a = barabasi_albert(200, 2, &mut StdRng::seed_from_u64(5));
        let b = barabasi_albert(200, 2, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
        let c = watts_strogatz(100, 4, 0.3, &mut StdRng::seed_from_u64(5));
        let d = watts_strogatz(100, 4, 0.3, &mut StdRng::seed_from_u64(5));
        assert_eq!(c, d);
    }
}
