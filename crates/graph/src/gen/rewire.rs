//! Null-model controls for real graphs.
//!
//! Fig. 6 of the paper compares `‖Ā^S f − f‖₁` on a real graph against a
//! "random graph with the same numbers of nodes and edges" — our
//! [`er_control`]. The [`configuration_model`] additionally preserves the
//! degree sequences, a stricter control used in the ablation benches.

use super::erdos_renyi_gnm;
use crate::{CsrGraph, GraphBuilder, NodeId};
use rand::Rng;

/// The paper's Fig. 6 control: an Erdős–Rényi graph with the same `n` and
/// `m` as the input (edge placement fully random → no block structure).
pub fn er_control<R: Rng + ?Sized>(g: &CsrGraph, rng: &mut R) -> CsrGraph {
    erdos_renyi_gnm(g.n(), g.m().min(g.n() * (g.n() - 1)), rng)
}

/// Directed configuration model: preserves every node's in- and out-degree
/// while randomizing which out-stub connects to which in-stub. Destroys
/// community structure but keeps the degree distribution (and hence the
/// PageRank profile) roughly intact.
pub fn configuration_model<R: Rng + ?Sized>(g: &CsrGraph, rng: &mut R) -> CsrGraph {
    let n = g.n();
    let mut out_stubs: Vec<NodeId> = Vec::with_capacity(g.m());
    let mut in_stubs: Vec<NodeId> = Vec::with_capacity(g.m());
    for (u, v) in g.edges() {
        out_stubs.push(u);
        in_stubs.push(v);
    }
    // Shuffle the in-stub side; the pairing then induces a random matching.
    for i in (1..in_stubs.len()).rev() {
        let j = rng.gen_range(0..=i);
        in_stubs.swap(i, j);
    }
    GraphBuilder::with_capacity(n, out_stubs.len())
        .allow_parallel_edges()
        .extend_edges(out_stubs.into_iter().zip(in_stubs))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{lfr_lite, LfrConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn er_control_matches_size() {
        let mut rng = StdRng::seed_from_u64(31);
        let real = lfr_lite(LfrConfig { n: 400, m: 2400, ..Default::default() }, &mut rng).graph;
        let ctrl = er_control(&real, &mut rng);
        assert_eq!(ctrl.n(), real.n());
        // within dangling-patch slack
        let diff = ctrl.m().abs_diff(real.m());
        assert!(diff < real.n() / 5, "edge count drifted by {diff}");
    }

    #[test]
    fn configuration_model_preserves_degrees() {
        let mut rng = StdRng::seed_from_u64(32);
        let real = lfr_lite(LfrConfig { n: 300, m: 1800, ..Default::default() }, &mut rng).graph;
        let ctrl = configuration_model(&real, &mut rng);
        assert_eq!(ctrl.n(), real.n());
        assert_eq!(ctrl.m(), real.m());
        for u in 0..real.n() as NodeId {
            assert_eq!(ctrl.out_degree(u), real.out_degree(u), "out degree of {u}");
            assert_eq!(ctrl.in_degree(u), real.in_degree(u), "in degree of {u}");
        }
    }

    #[test]
    fn configuration_model_actually_rewires() {
        let mut rng = StdRng::seed_from_u64(33);
        let real = lfr_lite(LfrConfig { n: 300, m: 1800, ..Default::default() }, &mut rng).graph;
        let ctrl = configuration_model(&real, &mut rng);
        assert_ne!(real, ctrl);
    }
}
