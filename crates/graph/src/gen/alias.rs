//! Walker's alias method for O(1) sampling from a discrete distribution.
//!
//! Used by the Chung–Lu and LFR-lite generators, which draw millions of edge
//! endpoints from heavy-tailed weight vectors.

use rand::Rng;

/// Preprocessed discrete distribution supporting O(1) sampling.
#[derive(Clone, Debug)]
pub struct AliasTable {
    /// Acceptance probability of each slot.
    prob: Vec<f64>,
    /// Fallback index of each slot.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table from non-negative weights (not necessarily
    /// normalized). Panics if `weights` is empty, contains a negative or
    /// non-finite value, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        assert!(
            weights.iter().all(|&w| w.is_finite() && w >= 0.0),
            "weights must be finite and non-negative"
        );
        let n = weights.len();
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");

        // Scale weights so the average is 1, then split into "small" and
        // "large" worklists (Vose's stable variant).
        let scale = n as f64 / total;
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }

        let mut prob = vec![1.0f64; n];
        let mut alias = vec![0u32; n];
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            scaled[l as usize] -= 1.0 - scaled[s as usize];
            if scaled[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Remaining entries (numerical residue) keep prob = 1.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
            alias[i as usize] = i;
        }
        Self { prob, alias }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True if the table has no categories (never constructible; kept for
    /// API completeness).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one index distributed proportionally to the input weights.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_weights_sample_all_categories() {
        let t = AliasTable::new(&[1.0, 1.0, 1.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[t.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn zero_weight_category_never_sampled() {
        let t = AliasTable::new(&[1.0, 0.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            assert_ne!(t.sample(&mut rng), 1);
        }
    }

    #[test]
    fn empirical_frequencies_match_weights() {
        let weights = [1.0, 2.0, 4.0, 8.0];
        let t = AliasTable::new(&weights);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 4];
        let trials = 150_000;
        for _ in 0..trials {
            counts[t.sample(&mut rng)] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expected = w / total;
            let observed = counts[i] as f64 / trials as f64;
            assert!(
                (observed - expected).abs() < 0.01,
                "category {i}: observed {observed}, expected {expected}"
            );
        }
    }

    #[test]
    fn single_category() {
        let t = AliasTable::new(&[3.5]);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(t.sample(&mut rng), 0);
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn rejects_empty() {
        AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "all be zero")]
    fn rejects_all_zero() {
        AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative() {
        AliasTable::new(&[1.0, -1.0]);
    }
}
