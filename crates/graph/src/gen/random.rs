//! Unstructured random graph models: Erdős–Rényi and Chung–Lu.

use super::AliasTable;
use crate::{CsrGraph, GraphBuilder, NodeId};
use rand::Rng;
use std::collections::HashSet;

/// Directed Erdős–Rényi `G(n, m)`: exactly `m` distinct directed edges
/// (self-loops excluded) chosen uniformly at random.
///
/// This is the paper's "random graph" control in Fig. 6: same node and edge
/// counts as a real graph but no block-wise structure.
///
/// Panics if `m` exceeds the number of possible edges `n·(n−1)`.
pub fn erdos_renyi_gnm<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> CsrGraph {
    assert!(n >= 1, "need at least one node");
    let max_m = n * (n.saturating_sub(1));
    assert!(m <= max_m, "m = {m} exceeds max directed edges {max_m}");

    let mut seen: HashSet<u64> = HashSet::with_capacity(m * 2);
    let mut builder = GraphBuilder::with_capacity(n, m);
    while seen.len() < m {
        let u = rng.gen_range(0..n) as NodeId;
        let v = rng.gen_range(0..n) as NodeId;
        if u == v {
            continue;
        }
        let key = (u as u64) << 32 | v as u64;
        if seen.insert(key) {
            builder.add_edge(u, v);
        }
    }
    builder.build()
}

/// Rank-based discrete power-law weights: `w_i ∝ (i+1)^(−1/(γ−1))` for ranks
/// `i = 0..n`, scaled so the mean weight is 1. The assignment of weight to
/// node id is the caller's business (shuffle for random placement).
///
/// γ is the exponent of the implied degree distribution `P(d) ∝ d^(−γ)`;
/// social networks typically have γ ∈ [2, 3].
pub fn power_law_weights(n: usize, gamma: f64) -> Vec<f64> {
    assert!(n > 0);
    assert!(gamma > 1.0, "power-law exponent must exceed 1");
    let alpha = 1.0 / (gamma - 1.0);
    let mut w: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-alpha)).collect();
    let mean: f64 = w.iter().sum::<f64>() / n as f64;
    for x in &mut w {
        *x /= mean;
    }
    w
}

/// Directed Chung–Lu graph: samples `m` distinct edges with source chosen
/// proportionally to `out_weights` and target proportionally to
/// `in_weights`. Produces heavy-tailed in/out degree sequences matching the
/// weights in expectation.
///
/// Sampling retries collisions and self-loops, so extremely dense requests
/// (`m` close to `n²`) will stall; intended for sparse graphs.
pub fn chung_lu<R: Rng + ?Sized>(
    out_weights: &[f64],
    in_weights: &[f64],
    m: usize,
    rng: &mut R,
) -> CsrGraph {
    assert_eq!(out_weights.len(), in_weights.len(), "weight vectors must have equal length");
    let n = out_weights.len();
    assert!(n >= 2, "need at least two nodes");
    let src = AliasTable::new(out_weights);
    let dst = AliasTable::new(in_weights);

    let mut seen: HashSet<u64> = HashSet::with_capacity(m * 2);
    let mut builder = GraphBuilder::with_capacity(n, m);
    let mut stall = 0usize;
    // A heavy-tailed weight vector concentrates collisions on the head; cap
    // the retry budget so adversarial inputs terminate (slightly under `m`
    // edges is acceptable for a random model).
    let max_stall = 50 * m + 10_000;
    while seen.len() < m && stall < max_stall {
        let u = src.sample(rng) as NodeId;
        let v = dst.sample(rng) as NodeId;
        if u == v {
            stall += 1;
            continue;
        }
        let key = (u as u64) << 32 | v as u64;
        if seen.insert(key) {
            builder.add_edge(u, v);
            stall = 0;
        } else {
            stall += 1;
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn er_has_exact_edge_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = erdos_renyi_gnm(100, 500, &mut rng);
        assert_eq!(g.n(), 100);
        // Self-loop patching may add edges for dangling nodes.
        assert!(g.m() >= 500);
        assert!(g.m() <= 600);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn er_no_self_loops_in_core_edges() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = erdos_renyi_gnm(50, 200, &mut rng);
        // Any self-loop present must be a dangling patch, i.e. out-degree 1.
        for (u, v) in g.edges() {
            if u == v {
                assert_eq!(g.out_degree(u), 1);
            }
        }
    }

    #[test]
    fn er_deterministic_for_same_seed() {
        let a = erdos_renyi_gnm(80, 300, &mut StdRng::seed_from_u64(9));
        let b = erdos_renyi_gnm(80, 300, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "exceeds max")]
    fn er_rejects_impossible_density() {
        erdos_renyi_gnm(3, 100, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    fn power_law_weights_are_decreasing_mean_one() {
        let w = power_law_weights(1000, 2.5);
        assert!(w.windows(2).all(|p| p[0] >= p[1]));
        let mean = w.iter().sum::<f64>() / w.len() as f64;
        assert!((mean - 1.0).abs() < 1e-9);
    }

    #[test]
    fn chung_lu_head_nodes_get_higher_degree() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = power_law_weights(500, 2.2);
        let g = chung_lu(&w, &w, 4000, &mut rng);
        assert!(g.validate().is_ok());
        // Node 0 has the largest weight; its total degree should dominate the
        // median node's.
        let head = g.out_degree(0) + g.in_degree(0);
        let mid = g.out_degree(250) + g.in_degree(250);
        assert!(head > 3 * mid, "head {head} vs mid {mid}");
    }

    #[test]
    fn chung_lu_edge_count_close_to_target() {
        let mut rng = StdRng::seed_from_u64(4);
        let w = power_law_weights(300, 2.5);
        let g = chung_lu(&w, &w, 2000, &mut rng);
        assert!(g.m() >= 1900, "got {}", g.m());
    }
}
