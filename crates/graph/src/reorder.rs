//! Cache-locality graph reordering.
//!
//! RWR propagation is a gather over in-edges: destination `v` reads
//! `x[u]` for every in-neighbor `u`. On power-law graphs with arbitrary
//! node labels those reads are near-random, so the kernel is bound by
//! cache misses, not arithmetic. Relabeling nodes so that frequently and
//! jointly accessed entries of `x` sit close together turns many of those
//! misses into hits — the same lever the lane-tiled batching already
//! pulls one layer up, applied to the gather itself.
//!
//! This module provides the [`Permutation`] type (a relabeling `old ↔
//! new`) and three lightweight orderings:
//!
//! * [`ReorderStrategy::DegreeDescending`] — hot rows first. `x[u]` is
//!   read once per *out*-edge of `u`, so sorting by out-degree packs the
//!   most-read entries into the first cache lines/strips.
//! * [`ReorderStrategy::Rcm`] — reverse Cuthill–McKee over the
//!   undirected view: BFS from low-degree roots with degree-ascending
//!   tie-breaks, order reversed. Produces a banded adjacency, so each
//!   destination's in-neighbors cluster in a narrow id range.
//! * [`ReorderStrategy::HubCluster`] — the top-√n hubs first (they are
//!   everyone's neighbors), then a multi-source BFS seeded from the hubs
//!   in hub order, so each hub's community is laid out contiguously.
//!
//! Reordering never changes results beyond floating-point association:
//! the relabeled graph is isomorphic, and [`crate::CsrGraph::permuted`]
//! keeps per-node adjacency sorted so kernels behave identically.

use crate::{CsrGraph, NodeId};
use std::collections::VecDeque;

/// A bijective relabeling of the node ids `0..n`, stored in both
/// directions so lookups are `O(1)` either way.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Permutation {
    /// `new_to_old[new] = old`.
    new_to_old: Vec<NodeId>,
    /// `old_to_new[old] = new` (inverse of `new_to_old`).
    old_to_new: Vec<NodeId>,
}

impl Permutation {
    /// The identity relabeling on `n` nodes.
    pub fn identity(n: usize) -> Self {
        let ids: Vec<NodeId> = (0..n as NodeId).collect();
        Self { new_to_old: ids.clone(), old_to_new: ids }
    }

    /// Builds a permutation from its `new → old` table, validating that
    /// it is a bijection on `0..len`.
    pub fn try_from_new_to_old(new_to_old: Vec<NodeId>) -> Result<Self, String> {
        let n = new_to_old.len();
        let mut old_to_new = vec![NodeId::MAX; n];
        for (new, &old) in new_to_old.iter().enumerate() {
            let slot = old_to_new
                .get_mut(old as usize)
                .ok_or_else(|| format!("permutation entry {old} out of range (n = {n})"))?;
            if *slot != NodeId::MAX {
                return Err(format!("permutation maps two new ids to old id {old}"));
            }
            *slot = new as NodeId;
        }
        Ok(Self { new_to_old, old_to_new })
    }

    /// [`Permutation::try_from_new_to_old`], panicking on invalid input.
    pub fn from_new_to_old(new_to_old: Vec<NodeId>) -> Self {
        Self::try_from_new_to_old(new_to_old).expect("invalid permutation")
    }

    /// Number of nodes the permutation relabels.
    #[inline]
    pub fn len(&self) -> usize {
        self.new_to_old.len()
    }

    /// True for the zero-node permutation.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.new_to_old.is_empty()
    }

    /// The new id of old node `old`.
    #[inline]
    pub fn new_of(&self, old: NodeId) -> NodeId {
        self.old_to_new[old as usize]
    }

    /// The old id of new node `new`.
    #[inline]
    pub fn old_of(&self, new: NodeId) -> NodeId {
        self.new_to_old[new as usize]
    }

    /// The `new → old` table (what gets serialized).
    #[inline]
    pub fn new_to_old(&self) -> &[NodeId] {
        &self.new_to_old
    }

    /// The inverse relabeling (`apply ∘ invert = id`).
    pub fn invert(&self) -> Permutation {
        Permutation { new_to_old: self.old_to_new.clone(), old_to_new: self.new_to_old.clone() }
    }

    /// True if the permutation leaves every id in place.
    pub fn is_identity(&self) -> bool {
        self.new_to_old.iter().enumerate().all(|(i, &v)| i as NodeId == v)
    }

    /// Reindexes a per-node value vector from old-id order into new-id
    /// order (`out[new] = values[old_of(new)]`).
    pub fn permute_values<T: Copy>(&self, values: &[T]) -> Vec<T> {
        assert_eq!(values.len(), self.len(), "value vector length mismatch");
        self.new_to_old.iter().map(|&old| values[old as usize]).collect()
    }

    /// Reindexes a per-node value vector from new-id order back into
    /// old-id order (`out[old] = values[new_of(old)]`); inverse of
    /// [`Permutation::permute_values`].
    pub fn unpermute_values<T: Copy>(&self, values: &[T]) -> Vec<T> {
        assert_eq!(values.len(), self.len(), "value vector length mismatch");
        self.old_to_new.iter().map(|&new| values[new as usize]).collect()
    }
}

/// Which ordering to relabel a graph with (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReorderStrategy {
    /// Out-degree descending (hot `x` entries first), ties by old id.
    DegreeDescending,
    /// Reverse Cuthill–McKee over the undirected view (banded adjacency).
    Rcm,
    /// Top hubs first, then hub-seeded multi-source BFS clusters.
    HubCluster,
    /// SlashBurn (Kang & Faloutsos, ICDM'11) hub-spoke order: rounds of
    /// hub removal shatter the graph; hubs pack the front in removal
    /// order (the hottest `x` entries), each spoke component lies
    /// contiguous at the tail.
    SlashBurn,
}

impl ReorderStrategy {
    /// Stable lowercase name (CLI flag value / bench label).
    pub fn name(&self) -> &'static str {
        match self {
            ReorderStrategy::DegreeDescending => "degree",
            ReorderStrategy::Rcm => "rcm",
            ReorderStrategy::HubCluster => "hub",
            ReorderStrategy::SlashBurn => "slashburn",
        }
    }

    /// Parses a [`ReorderStrategy::name`] string.
    pub fn parse(s: &str) -> Option<ReorderStrategy> {
        match s {
            "degree" => Some(ReorderStrategy::DegreeDescending),
            "rcm" => Some(ReorderStrategy::Rcm),
            "hub" => Some(ReorderStrategy::HubCluster),
            "slashburn" => Some(ReorderStrategy::SlashBurn),
            _ => None,
        }
    }

    /// Every strategy, in [`ReorderStrategy::name`] order (CLI help,
    /// benches, exhaustive tests).
    pub const ALL: [ReorderStrategy; 4] = [
        ReorderStrategy::DegreeDescending,
        ReorderStrategy::Rcm,
        ReorderStrategy::HubCluster,
        ReorderStrategy::SlashBurn,
    ];
}

/// Computes the relabeling for `strategy` on `g`. Deterministic: equal
/// graphs always yield equal permutations.
pub fn reorder(g: &CsrGraph, strategy: ReorderStrategy) -> Permutation {
    let order = match strategy {
        ReorderStrategy::DegreeDescending => degree_descending_order(g),
        ReorderStrategy::Rcm => rcm_order(g),
        ReorderStrategy::HubCluster => hub_cluster_order(g),
        ReorderStrategy::SlashBurn => slashburn_order(g),
    };
    debug_assert_eq!(order.len(), g.n());
    Permutation::from_new_to_old(order)
}

/// Old ids sorted by out-degree descending, ties by ascending old id.
fn degree_descending_order(g: &CsrGraph) -> Vec<NodeId> {
    let mut order: Vec<NodeId> = (0..g.n() as NodeId).collect();
    order.sort_unstable_by_key(|&u| (std::cmp::Reverse(g.out_degree(u)), u));
    order
}

/// Undirected degree used by the BFS orderings (out + in, counting a
/// mutual edge twice — a cheap proxy that needs no dedup pass).
#[inline]
fn undirected_degree(g: &CsrGraph, v: NodeId) -> usize {
    g.out_degree(v) + g.in_degree(v)
}

/// Distinct undirected neighbors of `v`, collected into `buf`.
fn undirected_neighbors(g: &CsrGraph, v: NodeId, buf: &mut Vec<NodeId>) {
    buf.clear();
    buf.extend_from_slice(g.out_neighbors(v));
    buf.extend_from_slice(g.in_neighbors(v));
    buf.sort_unstable();
    buf.dedup();
}

/// Reverse Cuthill–McKee: BFS each component from its minimum-degree
/// node, visiting neighbors in ascending-degree order, then reverse.
fn rcm_order(g: &CsrGraph) -> Vec<NodeId> {
    let n = g.n();
    let mut roots: Vec<NodeId> = (0..n as NodeId).collect();
    roots.sort_unstable_by_key(|&v| (undirected_degree(g, v), v));

    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut queue = VecDeque::new();
    let mut nbrs = Vec::new();
    for root in roots {
        if visited[root as usize] {
            continue;
        }
        visited[root as usize] = true;
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            undirected_neighbors(g, v, &mut nbrs);
            nbrs.sort_by_key(|&w| (undirected_degree(g, w), w));
            for &w in &nbrs {
                if !visited[w as usize] {
                    visited[w as usize] = true;
                    queue.push_back(w);
                }
            }
        }
    }
    order.reverse();
    order
}

/// Hub clustering: the top `⌈√n⌉` nodes by out-degree come first (every
/// strip of `x` a gather touches starts with them), then a multi-source
/// BFS seeded from the hubs in hub order lays each hub's community out
/// contiguously. Unreached nodes keep their relative old order at the
/// tail.
fn hub_cluster_order(g: &CsrGraph) -> Vec<NodeId> {
    let n = g.n();
    if n == 0 {
        return Vec::new();
    }
    let hub_count = (n as f64).sqrt().ceil() as usize;
    let by_degree = degree_descending_order(g);
    let hubs = &by_degree[..hub_count.min(n)];

    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut queue = VecDeque::new();
    for &h in hubs {
        visited[h as usize] = true;
        order.push(h);
        queue.push_back(h);
    }
    let mut nbrs = Vec::new();
    while let Some(v) = queue.pop_front() {
        undirected_neighbors(g, v, &mut nbrs);
        for &w in &nbrs {
            if !visited[w as usize] {
                visited[w as usize] = true;
                order.push(w);
                queue.push_back(w);
            }
        }
    }
    for v in 0..n as NodeId {
        if !visited[v as usize] {
            order.push(v);
        }
    }
    order
}

/// Fraction of the currently-alive nodes promoted to hubs per SlashBurn
/// round (the paper's `k`; 2% keeps the hub set compact while still
/// shattering power-law graphs in a few rounds).
const SLASHBURN_HUB_FRACTION: f64 = 0.02;
/// Components at most this large become spoke blocks; larger ones stay
/// alive for further hub removal.
const SLASHBURN_MAX_BLOCK: usize = 256;
/// Round cap; whatever giant component survives it joins the hub prefix
/// (keeps the ordering total unconditionally).
const SLASHBURN_MAX_ROUNDS: usize = 60;

/// SlashBurn hub-spoke ordering: repeatedly promote the top-degree alive
/// nodes to hubs, peel off the small connected components (spokes) the
/// removal disconnects, and repeat on the remaining giant component.
/// Hubs take the lowest new ids in removal order — they appear in nearly
/// every destination's in-row, so their `x` entries pack into the first
/// cache lines — and each spoke component is laid out contiguously at
/// the tail, where its intra-component locality survives relabeling.
/// Degrees are ranked on the full undirected graph (not the shrinking
/// alive subgraph): one ranking per round, same simplification as the
/// block-elimination baseline this mirrors.
fn slashburn_order(g: &CsrGraph) -> Vec<NodeId> {
    let n = g.n();
    let mut alive = vec![true; n];
    let mut alive_count = n;
    let mut hubs: Vec<NodeId> = Vec::new();
    let mut spokes: Vec<NodeId> = Vec::new();
    let mut visited = vec![false; n];
    let mut nbrs = Vec::new();

    for _round in 0..SLASHBURN_MAX_ROUNDS {
        if alive_count == 0 {
            break;
        }
        // 1. Promote the k highest-degree alive nodes to hubs.
        let k = ((alive_count as f64 * SLASHBURN_HUB_FRACTION).ceil() as usize).max(1);
        let mut candidates: Vec<NodeId> = (0..n as NodeId).filter(|&v| alive[v as usize]).collect();
        candidates.sort_unstable_by_key(|&v| (std::cmp::Reverse(undirected_degree(g, v)), v));
        for &h in candidates.iter().take(k) {
            alive[h as usize] = false;
            hubs.push(h);
        }
        alive_count -= k.min(alive_count);

        // 2. Small connected components of what remains become spokes;
        //    a surviving giant stays alive for the next round.
        let mut giant_exists = false;
        visited.iter_mut().for_each(|v| *v = false);
        for start in 0..n as NodeId {
            if !alive[start as usize] || visited[start as usize] {
                continue;
            }
            let mut comp = vec![start];
            let mut queue = VecDeque::from([start]);
            visited[start as usize] = true;
            while let Some(v) = queue.pop_front() {
                undirected_neighbors(g, v, &mut nbrs);
                for &w in &nbrs {
                    if alive[w as usize] && !visited[w as usize] {
                        visited[w as usize] = true;
                        comp.push(w);
                        queue.push_back(w);
                    }
                }
            }
            if comp.len() <= SLASHBURN_MAX_BLOCK {
                for &v in &comp {
                    alive[v as usize] = false;
                }
                alive_count -= comp.len();
                spokes.extend_from_slice(&comp);
            } else {
                giant_exists = true;
            }
        }
        if !giant_exists {
            break;
        }
    }
    // Round cap hit: the surviving giant joins the hub prefix.
    for v in 0..n as NodeId {
        if alive[v as usize] {
            hubs.push(v);
        }
    }
    hubs.extend_from_slice(&spokes);
    hubs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{cycle_graph, star_graph};
    use crate::GraphBuilder;

    fn sample_graph() -> CsrGraph {
        // Hub 0 plus a pendant chain, directed both ways.
        GraphBuilder::new(6)
            .extend_edges([(0, 1), (0, 2), (0, 3), (1, 0), (2, 0), (3, 4), (4, 5), (5, 3)])
            .build()
    }

    #[test]
    fn identity_roundtrip() {
        let p = Permutation::identity(5);
        assert!(p.is_identity());
        assert_eq!(p.len(), 5);
        for v in 0..5 {
            assert_eq!(p.new_of(v), v);
            assert_eq!(p.old_of(v), v);
        }
    }

    #[test]
    fn invert_composes_to_identity() {
        let p = Permutation::from_new_to_old(vec![2, 0, 3, 1]);
        let inv = p.invert();
        for old in 0..4 {
            assert_eq!(inv.new_of(p.new_of(old)), old);
            assert_eq!(p.old_of(inv.old_of(old)), old);
        }
        let vals = [10.0, 11.0, 12.0, 13.0];
        assert_eq!(p.unpermute_values(&p.permute_values(&vals)), vals);
    }

    #[test]
    fn rejects_non_bijections() {
        assert!(Permutation::try_from_new_to_old(vec![0, 0, 1]).is_err());
        assert!(Permutation::try_from_new_to_old(vec![0, 5]).is_err());
        assert!(Permutation::try_from_new_to_old(vec![]).is_ok());
    }

    #[test]
    fn degree_order_puts_hot_nodes_first() {
        let g = star_graph(9); // hub 0 has the top degree
        let p = reorder(&g, ReorderStrategy::DegreeDescending);
        assert_eq!(p.old_of(0), 0);
        // Leaves keep ascending old-id order after the hub (stable ties).
        let tail: Vec<NodeId> = (1..9).map(|new| p.old_of(new)).collect();
        assert_eq!(tail, (1..9).collect::<Vec<_>>());
    }

    #[test]
    fn all_strategies_yield_valid_permutations() {
        for g in [sample_graph(), cycle_graph(12), star_graph(7)] {
            for s in ReorderStrategy::ALL {
                let p = reorder(&g, s);
                assert_eq!(p.len(), g.n(), "{}", s.name());
                // Bijection: every old id appears exactly once.
                let mut seen = vec![false; g.n()];
                for new in 0..g.n() as NodeId {
                    let old = p.old_of(new) as usize;
                    assert!(!seen[old], "{}: old id {old} repeated", s.name());
                    seen[old] = true;
                }
            }
        }
    }

    #[test]
    fn strategy_names_roundtrip() {
        for s in ReorderStrategy::ALL {
            assert_eq!(ReorderStrategy::parse(s.name()), Some(s));
        }
        assert_eq!(ReorderStrategy::parse("frog"), None);
    }

    #[test]
    fn slashburn_puts_the_star_hub_first_and_leaves_last() {
        let g = star_graph(50);
        let p = reorder(&g, ReorderStrategy::SlashBurn);
        // The center is the first hub; removing it shatters the star into
        // singleton spokes, which all land behind it.
        assert_eq!(p.old_of(0), 0);
        let tail: Vec<NodeId> = (1..50).map(|new| p.old_of(new)).collect();
        let mut sorted = tail.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (1..50).collect::<Vec<_>>());
    }

    #[test]
    fn slashburn_is_deterministic() {
        let g = sample_graph();
        let a = reorder(&g, ReorderStrategy::SlashBurn);
        let b = reorder(&g, ReorderStrategy::SlashBurn);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_graph_reorders() {
        let g = CsrGraph::from_edges(0, &[]);
        for s in ReorderStrategy::ALL {
            assert!(reorder(&g, s).is_empty());
        }
    }
}
