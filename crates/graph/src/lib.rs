//! # tpa-graph — graph substrate for the TPA reproduction
//!
//! Storage, construction, random generation and serialization of the
//! directed graphs on which Random Walk with Restart runs.
//!
//! * [`CsrGraph`] — immutable CSR + CSC adjacency (the `O(n + m)` structure
//!   of the paper's Theorem 4).
//! * [`GraphBuilder`] — edge-list staging with dedup / self-loop /
//!   dangling-node policies.
//! * [`DynamicGraph`] — delta-overlay mutability: insert/delete patches
//!   over a CSR snapshot with a merged neighbor view and threshold-
//!   triggered compaction (the substrate of the dynamic-RWR subsystem).
//! * [`gen`] — deterministic generators: Erdős–Rényi, Chung–Lu, R-MAT,
//!   SBM, LFR-lite (power-law degrees + planted communities), plus
//!   null-model rewiring controls for Fig. 6.
//! * [`io`] — SNAP/KONECT edge-list parsing and a binary snapshot codec.
//! * [`reorder`] — cache-locality relabeling: [`Permutation`] plus
//!   degree-descending / RCM / hub-cluster orderings consumed by the
//!   propagation engine ([`CsrGraph::permuted`] applies one).
//!
//! ```
//! use tpa_graph::{CsrGraph, GraphBuilder};
//!
//! let g = GraphBuilder::new(3).extend_edges([(0, 1), (1, 2), (2, 0)]).build();
//! assert_eq!(g.n(), 3);
//! assert_eq!(g.out_neighbors(0), &[1]);
//! assert_eq!(g.in_neighbors(0), &[2]);
//! ```

#![warn(missing_docs)]

/// Dense node identifier (`0..n`). `u32` halves the memory of the edge
/// arrays relative to `usize` on 64-bit platforms — the dominant storage
/// term for billion-edge graphs.
pub type NodeId = u32;

pub mod algo;
mod builder;
mod csr;
pub mod dynamic;
pub mod gen;
pub mod io;
pub mod reorder;
pub mod weighted;

pub use builder::{DanglingPolicy, GraphBuilder};
pub use csr::CsrGraph;
pub use dynamic::{ApplyStats, DynamicGraph, EdgeUpdate, MergedNeighbors};
pub use reorder::{reorder, Permutation, ReorderStrategy};
pub use weighted::{unit_weights, WeightedCsrGraph, WeightedGraphBuilder};
