//! Delta-overlay dynamic graphs.
//!
//! [`CsrGraph`] is immutable by design — the propagation kernels depend on
//! its packed, sorted adjacency. Real serving graphs (social follows,
//! transactions) mutate continuously, and rebuilding the CSR per edge is
//! `O(n + m)`. [`DynamicGraph`] bridges the two: it overlays per-node
//! insert/delete patches on an immutable base snapshot, exposes a *merged
//! view* whose neighbor iteration is indistinguishable (same nodes, same
//! ascending order) from a CSR rebuilt from scratch, and compacts the
//! patches back into a fresh base once they grow past a threshold.
//!
//! Semantics of the merged view:
//!
//! * Edges are a **set**: inserting an existing edge or deleting a missing
//!   one is a no-op (reported in [`ApplyStats`]).
//! * Node count is fixed at construction; self-loops are permitted.
//! * No dangling patching — deleting a node's last out-edge leaves it
//!   dangling, exactly like building the merged edge list with
//!   [`crate::DanglingPolicy::Keep`]. ([`DynamicGraph::compact`] preserves
//!   this, so compaction never changes the edge set.)

use crate::{CsrGraph, DanglingPolicy, GraphBuilder, NodeId};
use std::collections::HashMap;
use std::sync::Arc;

/// One edge mutation in an update stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeUpdate {
    /// Add the directed edge `(u, v)`; a no-op if it already exists.
    Insert(NodeId, NodeId),
    /// Remove the directed edge `(u, v)`; a no-op if it does not exist.
    Delete(NodeId, NodeId),
}

impl EdgeUpdate {
    /// The edge's source node.
    #[inline]
    pub fn source(&self) -> NodeId {
        match *self {
            EdgeUpdate::Insert(u, _) | EdgeUpdate::Delete(u, _) => u,
        }
    }

    /// The edge's target node.
    #[inline]
    pub fn target(&self) -> NodeId {
        match *self {
            EdgeUpdate::Insert(_, v) | EdgeUpdate::Delete(_, v) => v,
        }
    }
}

/// What an [`DynamicGraph::apply`] batch actually did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ApplyStats {
    /// Edges newly present after the batch.
    pub inserted: usize,
    /// Edges removed by the batch.
    pub deleted: usize,
    /// Updates that changed nothing (duplicate insert / missing delete).
    pub noops: usize,
    /// True if the batch pushed the overlay past its compaction threshold
    /// and the patches were folded into a fresh base snapshot.
    pub compacted: bool,
}

/// Per-node adjacency patch: edges added to and removed from the base
/// snapshot's neighbor list. Both vectors are kept sorted ascending; `ins`
/// is disjoint from the base list, `del` is a subset of it.
#[derive(Clone, Debug, Default)]
struct Patch {
    ins: Vec<NodeId>,
    del: Vec<NodeId>,
}

impl Patch {
    fn is_empty(&self) -> bool {
        self.ins.is_empty() && self.del.is_empty()
    }
}

/// A mutable graph: an immutable [`CsrGraph`] base plus insert/delete
/// overlay patches in both orientations. See the module docs.
#[derive(Clone, Debug)]
pub struct DynamicGraph {
    /// Shared immutable base: cloning the overlay (e.g. to hand a
    /// background compactor its own copy) costs `O(patches)`, not
    /// `O(n + m)`, and copy-on-write snapshots can alias the base.
    base: Arc<CsrGraph>,
    /// Out-adjacency patches, keyed by source.
    out_patch: HashMap<NodeId, Patch>,
    /// In-adjacency patches, keyed by target (mirror of `out_patch`).
    in_patch: HashMap<NodeId, Patch>,
    /// Current merged edge count.
    m: usize,
    /// Total patch entries (inserts + deletes) across all out-patches.
    delta_edges: usize,
    /// Compact when `delta_edges > threshold · base.m()`; `None` disables
    /// automatic compaction.
    compact_threshold: Option<f64>,
}

/// Default automatic compaction threshold: fold the overlay into a fresh
/// CSR once the patches reach 2% of the base edge count.
///
/// The trade: a compaction costs roughly one edge-list sort
/// (`O(m log m)` — empirically under ten propagation passes), while
/// every patched destination pays a merge premium on *every* subsequent
/// neighbor scan. RWR propagation sweeps the whole graph ~100 times per
/// converged query, so even a few percent of patched adjacency quickly
/// costs more than folding it in. Workloads that only mutate (no
/// propagation between batches) can raise the threshold or disable it.
pub const DEFAULT_COMPACT_THRESHOLD: f64 = 0.02;

impl DynamicGraph {
    /// Wraps a base snapshot with empty patches and the
    /// [`DEFAULT_COMPACT_THRESHOLD`].
    pub fn new(base: CsrGraph) -> Self {
        Self::shared(Arc::new(base))
    }

    /// [`DynamicGraph::new`] over an already-shared base — the overlay
    /// aliases it instead of owning a private copy, so rebasing a live
    /// service onto a background-compacted snapshot is `O(patches)`.
    pub fn shared(base: Arc<CsrGraph>) -> Self {
        let m = base.m();
        Self {
            base,
            out_patch: HashMap::new(),
            in_patch: HashMap::new(),
            m,
            delta_edges: 0,
            compact_threshold: Some(DEFAULT_COMPACT_THRESHOLD),
        }
    }

    /// Sets the automatic compaction threshold as a fraction of the base
    /// edge count; `None` disables automatic compaction (explicit
    /// [`DynamicGraph::compact`] still works).
    pub fn with_compact_threshold(mut self, threshold: Option<f64>) -> Self {
        if let Some(t) = threshold {
            assert!(t > 0.0, "compaction threshold must be positive");
        }
        self.compact_threshold = threshold;
        self
    }

    /// The automatic compaction threshold currently in force (`None` =
    /// disabled); see [`DynamicGraph::with_compact_threshold`].
    pub fn compact_threshold(&self) -> Option<f64> {
        self.compact_threshold
    }

    /// Number of nodes (fixed at construction).
    #[inline]
    pub fn n(&self) -> usize {
        self.base.n()
    }

    /// Number of edges in the merged view.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// The immutable base snapshot the patches overlay.
    pub fn base(&self) -> &CsrGraph {
        &self.base
    }

    /// The shared handle to the base snapshot (clone to alias it, e.g.
    /// into a copy-on-write snapshot that must outlive this overlay).
    pub fn base_arc(&self) -> &Arc<CsrGraph> {
        &self.base
    }

    /// Total pending patch entries (inserts + deletes). Zero right after
    /// construction or [`DynamicGraph::compact`].
    pub fn delta_edges(&self) -> usize {
        self.delta_edges
    }

    /// True if any patch is pending (the merged view differs from
    /// [`DynamicGraph::base`] — or did, until edits cancelled out).
    pub fn is_dirty(&self) -> bool {
        self.delta_edges > 0
    }

    /// Out-degree of `u` in the merged view.
    pub fn out_degree(&self, u: NodeId) -> usize {
        let base = self.base.out_degree(u);
        match self.out_patch.get(&u) {
            Some(p) => base + p.ins.len() - p.del.len(),
            None => base,
        }
    }

    /// In-degree of `v` in the merged view.
    pub fn in_degree(&self, v: NodeId) -> usize {
        let base = self.base.in_degree(v);
        match self.in_patch.get(&v) {
            Some(p) => base + p.ins.len() - p.del.len(),
            None => base,
        }
    }

    /// Merged out-neighbors of `u`, ascending — the same sequence a CSR
    /// rebuilt from the merged edge set would yield.
    pub fn out_neighbors(&self, u: NodeId) -> MergedNeighbors<'_> {
        MergedNeighbors::new(self.base.out_neighbors(u), self.out_patch.get(&u))
    }

    /// Merged in-neighbors of `v`, ascending.
    pub fn in_neighbors(&self, v: NodeId) -> MergedNeighbors<'_> {
        MergedNeighbors::new(self.base.in_neighbors(v), self.in_patch.get(&v))
    }

    /// True if `v`'s in-adjacency currently carries a patch. Propagation
    /// kernels use this to route unpatched destinations straight to the
    /// base CSR slices (the overwhelming majority between compactions).
    #[inline]
    pub fn has_in_patch(&self, v: NodeId) -> bool {
        self.in_patch.contains_key(&v)
    }

    /// True if `u`'s out-adjacency currently carries a patch.
    #[inline]
    pub fn has_out_patch(&self, u: NodeId) -> bool {
        self.out_patch.contains_key(&u)
    }

    /// True if the merged view contains the directed edge `(u, v)`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if let Some(p) = self.out_patch.get(&u) {
            if p.ins.binary_search(&v).is_ok() {
                return true;
            }
            if p.del.binary_search(&v).is_ok() {
                return false;
            }
        }
        self.base.has_edge(u, v)
    }

    /// Applies one update. Returns `true` if it changed the edge set.
    pub fn apply_one(&mut self, update: EdgeUpdate) -> bool {
        let (u, v) = (update.source(), update.target());
        let n = self.n();
        assert!(
            (u as usize) < n && (v as usize) < n,
            "update touches edge ({u},{v}) out of range for n={n}"
        );
        match update {
            EdgeUpdate::Insert(..) => {
                if self.has_edge(u, v) {
                    false
                } else {
                    self.patch_insert(u, v);
                    self.m += 1;
                    true
                }
            }
            EdgeUpdate::Delete(..) => {
                if !self.has_edge(u, v) {
                    false
                } else {
                    self.patch_delete(u, v);
                    self.m -= 1;
                    true
                }
            }
        }
    }

    /// Applies a batch of updates in order, then compacts if the overlay
    /// crossed the threshold. Returns what actually changed.
    pub fn apply(&mut self, updates: &[EdgeUpdate]) -> ApplyStats {
        let mut stats = ApplyStats::default();
        for &up in updates {
            match (self.apply_one(up), up) {
                (true, EdgeUpdate::Insert(..)) => stats.inserted += 1,
                (true, EdgeUpdate::Delete(..)) => stats.deleted += 1,
                (false, _) => stats.noops += 1,
            }
        }
        if let Some(threshold) = self.compact_threshold {
            if self.delta_edges as f64 > threshold * self.base.m().max(1) as f64 {
                self.compact();
                stats.compacted = true;
            }
        }
        stats
    }

    /// Materializes the merged view as a fresh [`CsrGraph`]. Dangling
    /// nodes are kept as-is (see the module docs), so the snapshot's edge
    /// set is exactly the merged view's.
    pub fn snapshot(&self) -> CsrGraph {
        let mut builder =
            GraphBuilder::with_capacity(self.n(), self.m).dangling_policy(DanglingPolicy::Keep);
        for u in 0..self.n() as NodeId {
            for v in self.out_neighbors(u) {
                builder.add_edge(u, v);
            }
        }
        builder.build()
    }

    /// Folds the patches into a fresh base snapshot (the merged view is
    /// unchanged — neighbor iteration yields the identical sequence before
    /// and after). Idempotent; cheap when clean.
    pub fn compact(&mut self) {
        if !self.is_dirty() {
            self.out_patch.clear();
            self.in_patch.clear();
            return;
        }
        self.base = Arc::new(self.snapshot());
        self.out_patch.clear();
        self.in_patch.clear();
        self.delta_edges = 0;
        debug_assert_eq!(self.base.m(), self.m);
    }

    /// Records the insert `(u, v)` in both orientations. Caller has
    /// established the edge is absent from the merged view.
    fn patch_insert(&mut self, u: NodeId, v: NodeId) {
        self.delta_edges =
            apply_to_patch(self.out_patch.entry(u).or_default(), v, self.delta_edges, true);
        apply_to_patch(self.in_patch.entry(v).or_default(), u, 0, true);
        self.prune(u, v);
    }

    /// Records the delete `(u, v)` in both orientations. Caller has
    /// established the edge is present in the merged view.
    fn patch_delete(&mut self, u: NodeId, v: NodeId) {
        self.delta_edges =
            apply_to_patch(self.out_patch.entry(u).or_default(), v, self.delta_edges, false);
        apply_to_patch(self.in_patch.entry(v).or_default(), u, 0, false);
        self.prune(u, v);
    }

    /// Drops patch entries that cancelled back to empty, so `is_dirty`
    /// reflects real divergence from the base.
    fn prune(&mut self, u: NodeId, v: NodeId) {
        if self.out_patch.get(&u).is_some_and(Patch::is_empty) {
            self.out_patch.remove(&u);
        }
        if self.in_patch.get(&v).is_some_and(Patch::is_empty) {
            self.in_patch.remove(&v);
        }
    }
}

/// Applies an insert (`insert = true`) or delete of `x` to one patch,
/// returning the updated `delta_edges` counter. An insert first tries to
/// cancel a pending delete (re-inserting a base edge) before staging a new
/// entry, and symmetrically for deletes.
fn apply_to_patch(patch: &mut Patch, x: NodeId, delta: usize, insert: bool) -> usize {
    let (cancel_from, stage_into) =
        if insert { (&mut patch.del, &mut patch.ins) } else { (&mut patch.ins, &mut patch.del) };
    if let Ok(pos) = cancel_from.binary_search(&x) {
        cancel_from.remove(pos);
        delta.saturating_sub(1)
    } else {
        let pos = stage_into.binary_search(&x).unwrap_err();
        stage_into.insert(pos, x);
        delta + 1
    }
}

/// Ascending merge of a base neighbor slice (minus its deletes) with the
/// staged inserts — the merged view's neighbor iterator.
pub struct MergedNeighbors<'a> {
    base: &'a [NodeId],
    ins: &'a [NodeId],
    del: &'a [NodeId],
    bi: usize,
    ii: usize,
    di: usize,
}

static EMPTY: [NodeId; 0] = [];

impl<'a> MergedNeighbors<'a> {
    fn new(base: &'a [NodeId], patch: Option<&'a Patch>) -> Self {
        let (ins, del): (&[NodeId], &[NodeId]) = match patch {
            Some(p) => (&p.ins, &p.del),
            None => (&EMPTY, &EMPTY),
        };
        Self { base, ins, del, bi: 0, ii: 0, di: 0 }
    }

    /// Next surviving base neighbor, skipping deleted entries.
    fn peek_base(&mut self) -> Option<NodeId> {
        while self.bi < self.base.len() {
            let b = self.base[self.bi];
            // `del` and `base` are both ascending; advance the delete
            // cursor past entries below `b`, then check for a match.
            while self.di < self.del.len() && self.del[self.di] < b {
                self.di += 1;
            }
            if self.di < self.del.len() && self.del[self.di] == b {
                self.bi += 1;
                self.di += 1;
                continue;
            }
            return Some(b);
        }
        None
    }
}

impl Iterator for MergedNeighbors<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let ins = (self.ii < self.ins.len()).then(|| self.ins[self.ii]);
        match (self.peek_base(), ins) {
            (Some(b), Some(i)) if i < b => {
                self.ii += 1;
                Some(i)
            }
            (Some(b), _) => {
                self.bi += 1;
                Some(b)
            }
            (None, Some(i)) => {
                self.ii += 1;
                Some(i)
            }
            (None, None) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use EdgeUpdate::{Delete, Insert};

    fn diamond() -> CsrGraph {
        CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 0)])
    }

    fn out(g: &DynamicGraph, u: NodeId) -> Vec<NodeId> {
        g.out_neighbors(u).collect()
    }

    fn ins(g: &DynamicGraph, v: NodeId) -> Vec<NodeId> {
        g.in_neighbors(v).collect()
    }

    #[test]
    fn clean_overlay_matches_base() {
        let g = DynamicGraph::new(diamond());
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 5);
        assert!(!g.is_dirty());
        assert_eq!(out(&g, 0), vec![1, 2]);
        assert_eq!(ins(&g, 3), vec![1, 2]);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(3), 2);
    }

    #[test]
    fn insert_merges_in_ascending_order() {
        let mut g = DynamicGraph::new(diamond());
        let stats = g.apply(&[Insert(0, 3), Insert(0, 0)]);
        assert_eq!(stats.inserted, 2);
        assert_eq!(out(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(ins(&g, 3), vec![0, 1, 2]);
        assert_eq!(g.m(), 7);
        assert_eq!(g.out_degree(0), 4);
        assert!(g.has_edge(0, 3));
    }

    #[test]
    fn delete_hides_base_edges() {
        let mut g = DynamicGraph::new(diamond());
        let stats = g.apply(&[Delete(0, 1)]);
        assert_eq!(stats.deleted, 1);
        assert_eq!(out(&g, 0), vec![2]);
        assert_eq!(ins(&g, 1), Vec::<NodeId>::new());
        assert!(!g.has_edge(0, 1));
        assert_eq!(g.m(), 4);
        assert_eq!(g.in_degree(1), 0);
    }

    #[test]
    fn duplicate_insert_and_missing_delete_are_noops() {
        let mut g = DynamicGraph::new(diamond());
        let stats = g.apply(&[Insert(0, 1), Delete(1, 0), Insert(0, 3), Insert(0, 3)]);
        assert_eq!(stats.inserted, 1);
        assert_eq!(stats.noops, 3);
        assert_eq!(g.m(), 6);
    }

    #[test]
    fn insert_then_delete_cancels() {
        let mut g = DynamicGraph::new(diamond());
        g.apply(&[Insert(1, 2), Delete(1, 2)]);
        assert!(!g.is_dirty());
        assert_eq!(g.m(), 5);
        assert_eq!(out(&g, 1), vec![3]);
    }

    #[test]
    fn delete_then_reinsert_cancels() {
        let mut g = DynamicGraph::new(diamond());
        g.apply(&[Delete(0, 2), Insert(0, 2)]);
        assert!(!g.is_dirty());
        assert_eq!(out(&g, 0), vec![1, 2]);
    }

    #[test]
    fn deleting_last_out_edge_leaves_dangling() {
        let mut g = DynamicGraph::new(diamond());
        g.apply(&[Delete(3, 0)]);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(out(&g, 3), Vec::<NodeId>::new());
        // Snapshot preserves the dangling node (no self-loop patching).
        let snap = g.snapshot();
        assert_eq!(snap.out_degree(3), 0);
        assert_eq!(snap.m(), 4);
    }

    #[test]
    fn snapshot_equals_rebuilt_from_scratch() {
        let mut g = DynamicGraph::new(diamond());
        g.apply(&[Insert(0, 3), Delete(2, 3), Insert(3, 2)]);
        let want = GraphBuilder::new(4)
            .dangling_policy(DanglingPolicy::Keep)
            .extend_edges([(0, 1), (0, 2), (0, 3), (1, 3), (3, 0), (3, 2)])
            .build();
        assert_eq!(g.snapshot(), want);
    }

    #[test]
    fn compact_preserves_merged_view() {
        let mut g = DynamicGraph::new(diamond());
        g.apply(&[Insert(0, 3), Delete(1, 3), Insert(2, 0)]);
        let before: Vec<Vec<NodeId>> = (0..4).map(|u| out(&g, u)).collect();
        let m = g.m();
        g.compact();
        assert!(!g.is_dirty());
        assert_eq!(g.m(), m);
        assert_eq!(g.base().m(), m);
        let after: Vec<Vec<NodeId>> = (0..4).map(|u| out(&g, u)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn threshold_triggers_automatic_compaction() {
        // Base has 5 edges; threshold 0.4 ⇒ compact when delta > 2.
        let mut g = DynamicGraph::new(diamond()).with_compact_threshold(Some(0.4));
        let stats = g.apply(&[Insert(1, 0), Insert(2, 1)]);
        assert!(!stats.compacted);
        assert!(g.is_dirty());
        let stats = g.apply(&[Insert(3, 2)]);
        assert!(stats.compacted);
        assert!(!g.is_dirty());
        assert_eq!(g.base().m(), 8);
    }

    #[test]
    fn disabled_threshold_never_compacts() {
        let mut g = DynamicGraph::new(diamond()).with_compact_threshold(None);
        let ups: Vec<EdgeUpdate> = (0..4).flat_map(|u| (0..4).map(move |v| Insert(u, v))).collect();
        let stats = g.apply(&ups);
        assert!(!stats.compacted);
        assert!(g.is_dirty());
        assert_eq!(g.m(), 16);
    }

    #[test]
    fn in_orientation_mirrors_out() {
        let mut g = DynamicGraph::new(diamond());
        g.apply(&[Insert(1, 0), Delete(0, 1), Insert(2, 0)]);
        for v in 0..4u32 {
            let via_in: Vec<NodeId> = ins(&g, v);
            let via_out: Vec<NodeId> = (0..4u32).filter(|&u| g.has_edge(u, v)).collect();
            assert_eq!(via_in, via_out, "node {v}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_update() {
        DynamicGraph::new(diamond()).apply_one(Insert(0, 9));
    }
}
