//! Compressed sparse row (CSR) graph storage.
//!
//! [`CsrGraph`] stores a directed graph in both orientations: out-edges in
//! CSR order and in-edges in CSC order (the transpose). RWR propagation
//! `y ← (1−c)·Ãᵀx` is a *gather* over in-edges, so the transpose is the hot
//! structure; the forward orientation serves push-style methods (Forward
//! Push, FORA, Monte Carlo walks).

use crate::NodeId;

/// An immutable directed graph in compressed sparse row form.
///
/// Node identifiers are dense `u32` values in `0..n`. Parallel edges are
/// permitted (the builder deduplicates by default); self-loops are permitted.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrGraph {
    /// `out_offsets[u]..out_offsets[u+1]` indexes `out_targets` — length `n+1`.
    out_offsets: Vec<usize>,
    /// Flattened out-neighbor lists, sorted within each node's range.
    out_targets: Vec<NodeId>,
    /// `in_offsets[v]..in_offsets[v+1]` indexes `in_sources` — length `n+1`.
    in_offsets: Vec<usize>,
    /// Flattened in-neighbor lists, sorted within each node's range.
    in_sources: Vec<NodeId>,
}

impl CsrGraph {
    /// Builds a graph directly from raw CSR arrays.
    ///
    /// Callers normally go through [`crate::GraphBuilder`]; this constructor
    /// is for deserialization and tests. Panics if the arrays are not a valid
    /// CSR/CSC pair (checked via [`CsrGraph::validate`] in debug builds).
    pub fn from_raw_parts(
        out_offsets: Vec<usize>,
        out_targets: Vec<NodeId>,
        in_offsets: Vec<usize>,
        in_sources: Vec<NodeId>,
    ) -> Self {
        let g = Self { out_offsets, out_targets, in_offsets, in_sources };
        debug_assert!(g.validate().is_ok(), "invalid CSR arrays: {:?}", g.validate());
        g
    }

    /// Constructs the graph from an edge list. Convenience wrapper used by
    /// generators; equivalent to pushing every pair into a builder with
    /// default options.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        crate::GraphBuilder::with_capacity(n, edges.len())
            .extend_edges(edges.iter().copied())
            .build()
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// Number of directed edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.out_targets.len()
    }

    /// Out-neighbors of `u`, sorted ascending.
    #[inline]
    pub fn out_neighbors(&self, u: NodeId) -> &[NodeId] {
        let u = u as usize;
        &self.out_targets[self.out_offsets[u]..self.out_offsets[u + 1]]
    }

    /// In-neighbors of `v` (sources of edges into `v`), sorted ascending.
    #[inline]
    pub fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.in_sources[self.in_offsets[v]..self.in_offsets[v + 1]]
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> usize {
        let u = u as usize;
        self.out_offsets[u + 1] - self.out_offsets[u]
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        self.in_offsets[v + 1] - self.in_offsets[v]
    }

    /// Raw out-offset array (length `n+1`).
    #[inline]
    pub fn out_offsets(&self) -> &[usize] {
        &self.out_offsets
    }

    /// Raw out-target array (length `m`).
    #[inline]
    pub fn out_targets(&self) -> &[NodeId] {
        &self.out_targets
    }

    /// Raw in-offset array (length `n+1`).
    #[inline]
    pub fn in_offsets(&self) -> &[usize] {
        &self.in_offsets
    }

    /// Raw in-source array (length `m`).
    #[inline]
    pub fn in_sources(&self) -> &[NodeId] {
        &self.in_sources
    }

    /// Iterator over all directed edges in CSR order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.n() as NodeId)
            .flat_map(move |u| self.out_neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// True if the graph contains the directed edge `(u, v)`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.out_neighbors(u).binary_search(&v).is_ok()
    }

    /// Nodes with zero out-degree ("dangling" nodes). The RWR transition
    /// matrix is column-stochastic only when this list is empty.
    pub fn dangling_nodes(&self) -> Vec<NodeId> {
        (0..self.n() as NodeId).filter(|&u| self.out_degree(u) == 0).collect()
    }

    /// `1 / out_degree(u)` per node, with `0.0` for dangling nodes.
    /// Precomputed once by propagation kernels.
    pub fn inv_out_degrees(&self) -> Vec<f64> {
        (0..self.n() as NodeId)
            .map(|u| {
                let d = self.out_degree(u);
                if d == 0 {
                    0.0
                } else {
                    1.0 / d as f64
                }
            })
            .collect()
    }

    /// Heap footprint in bytes of the CSR arrays (the `O(n+m)` storage term
    /// in the paper's Theorem 4).
    pub fn memory_bytes(&self) -> usize {
        self.out_offsets.len() * std::mem::size_of::<usize>()
            + self.in_offsets.len() * std::mem::size_of::<usize>()
            + self.out_targets.len() * std::mem::size_of::<NodeId>()
            + self.in_sources.len() * std::mem::size_of::<NodeId>()
    }

    /// Average out-degree `m / n`.
    pub fn avg_degree(&self) -> f64 {
        if self.n() == 0 {
            0.0
        } else {
            self.m() as f64 / self.n() as f64
        }
    }

    /// Relabels the graph with `perm`: new node `v'` is old node
    /// `perm.old_of(v')`, and every adjacency list is re-sorted so the
    /// result is a fully valid CSR/CSC pair — kernels cannot tell a
    /// permuted graph from a freshly built one. `O(n + m log d)`.
    ///
    /// The relabeled graph is isomorphic to `self`, so RWR scores on it
    /// equal the original scores up to the same relabeling (and up to
    /// floating-point association: gathers visit in-neighbors in the
    /// *new* ascending order).
    pub fn permuted(&self, perm: &crate::reorder::Permutation) -> CsrGraph {
        let n = self.n();
        assert_eq!(perm.len(), n, "permutation is for {} nodes, graph has {n}", perm.len());
        let relabel = |old_offsets: &[usize], old_data: &[NodeId]| {
            let mut offsets = Vec::with_capacity(n + 1);
            offsets.push(0usize);
            let mut data = Vec::with_capacity(self.m());
            for new_u in 0..n as NodeId {
                let old_u = perm.old_of(new_u) as usize;
                let row = &old_data[old_offsets[old_u]..old_offsets[old_u + 1]];
                let start = data.len();
                data.extend(row.iter().map(|&v| perm.new_of(v)));
                data[start..].sort_unstable();
                offsets.push(data.len());
            }
            (offsets, data)
        };
        let (out_offsets, out_targets) = relabel(&self.out_offsets, &self.out_targets);
        let (in_offsets, in_sources) = relabel(&self.in_offsets, &self.in_sources);
        CsrGraph::from_raw_parts(out_offsets, out_targets, in_offsets, in_sources)
    }

    /// Checks every structural invariant: offset monotonicity, bounds of
    /// neighbor ids, per-node sortedness, and the CSR/CSC mirror property
    /// (each orientation must contain exactly the same multiset of edges).
    pub fn validate(&self) -> Result<(), String> {
        let n = self.n();
        if self.in_offsets.len() != n + 1 {
            return Err(format!("in_offsets length {} != n+1 = {}", self.in_offsets.len(), n + 1));
        }
        for (name, offsets, data) in [
            ("out", &self.out_offsets, &self.out_targets),
            ("in", &self.in_offsets, &self.in_sources),
        ] {
            if offsets[0] != 0 {
                return Err(format!("{name}_offsets[0] != 0"));
            }
            if *offsets.last().unwrap() != data.len() {
                return Err(format!("{name}_offsets last != data len"));
            }
            if offsets.windows(2).any(|w| w[0] > w[1]) {
                return Err(format!("{name}_offsets not monotonic"));
            }
            if data.iter().any(|&x| (x as usize) >= n) {
                return Err(format!("{name} data contains out-of-range node id"));
            }
            for u in 0..n {
                let seg = &data[offsets[u]..offsets[u + 1]];
                if seg.windows(2).any(|w| w[0] > w[1]) {
                    return Err(format!("{name} neighbors of {u} not sorted"));
                }
            }
        }
        if self.out_targets.len() != self.in_sources.len() {
            return Err("edge count mismatch between CSR and CSC".into());
        }
        // Mirror property: count edges (u,v) in both orientations.
        let mut fwd: Vec<(NodeId, NodeId)> = self.edges().collect();
        let mut bwd: Vec<(NodeId, NodeId)> = (0..n as NodeId)
            .flat_map(|v| self.in_neighbors(v).iter().map(move |&u| (u, v)))
            .collect();
        fwd.sort_unstable();
        bwd.sort_unstable();
        if fwd != bwd {
            return Err("CSR and CSC orientations disagree".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> CsrGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3, 3 -> 0
        CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 0)])
    }

    #[test]
    fn basic_counts() {
        let g = diamond();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 5);
        assert_eq!(g.avg_degree(), 1.25);
    }

    #[test]
    fn neighbors_and_degrees() {
        let g = diamond();
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.out_neighbors(3), &[0]);
        assert_eq!(g.in_neighbors(3), &[1, 2]);
        assert_eq!(g.in_neighbors(0), &[3]);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.in_degree(1), 1);
    }

    #[test]
    fn has_edge_lookup() {
        let g = diamond();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(3, 0));
        assert!(!g.has_edge(1, 0));
        assert!(!g.has_edge(3, 3));
    }

    #[test]
    fn edges_iterator_roundtrip() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3), (2, 3), (3, 0)]);
    }

    #[test]
    fn dangling_detection() {
        let g = crate::GraphBuilder::new(3)
            .dangling_policy(crate::DanglingPolicy::Keep)
            .extend_edges([(0, 1), (0, 2)])
            .build();
        assert_eq!(g.dangling_nodes(), vec![1, 2]);
        let inv = g.inv_out_degrees();
        assert_eq!(inv, vec![0.5, 0.0, 0.0]);
    }

    #[test]
    fn validate_accepts_good_graph() {
        assert!(diamond().validate().is_ok());
    }

    #[test]
    fn validate_rejects_mismatched_orientations() {
        let g = CsrGraph {
            out_offsets: vec![0, 1, 1],
            out_targets: vec![1],
            in_offsets: vec![0, 1, 1],
            in_sources: vec![1], // should be edge (0,1) mirrored: in_neighbors(1) = [0]
        };
        assert!(g.validate().is_err());
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, &[]);
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn single_node_no_edges() {
        let g = crate::GraphBuilder::new(1).dangling_policy(crate::DanglingPolicy::Keep).build();
        assert_eq!(g.n(), 1);
        assert_eq!(g.out_degree(0), 0);
        assert_eq!(g.dangling_nodes(), vec![0]);
    }

    #[test]
    fn from_edges_patches_dangling_by_default() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (0, 2)]);
        assert!(g.dangling_nodes().is_empty());
        assert!(g.has_edge(1, 1) && g.has_edge(2, 2));
    }

    #[test]
    fn memory_accounting_scales_with_m() {
        let small = CsrGraph::from_edges(4, &[(0, 1), (1, 0), (2, 3), (3, 2)]);
        let big = CsrGraph::from_edges(
            4,
            &[(0, 1), (1, 0), (2, 3), (3, 2), (0, 2), (2, 0), (1, 3), (3, 1)],
        );
        assert!(big.memory_bytes() > small.memory_bytes());
    }
}
