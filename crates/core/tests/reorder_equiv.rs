//! Property tests for the locality layer's serving invariants:
//!
//! 1. **Permutation invariance** — a query through a reordered engine,
//!    unmapped back to caller ids, equals the un-reordered engine's
//!    answer (up to floating-point association: the relabeled gather
//!    sums in-neighbors in a different order), across the sequential,
//!    parallel, and dynamic backends.
//! 2. **Reordered backends agree bitwise** — all three backends serve
//!    the *same* permuted graph, so their answers must be identical to
//!    the last bit, exactly as they are un-reordered.
//! 3. **Tiling is invisible** — forced strip-mining of any width is
//!    bit-identical to the flat kernel on every backend (the strip
//!    kernels replay the flat kernel's floating-point chain exactly).

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use tpa_core::{ParallelTransition, Propagator, QueryEngine, TilePolicy, TpaParams, Transition};
use tpa_graph::gen::erdos_renyi_gnm;
use tpa_graph::{CsrGraph, DynamicGraph, NodeId, ReorderStrategy};

fn random_graph(n: usize, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = (4 * n).min(n * (n - 1) / 2);
    erdos_renyi_gnm(n, m, &mut rng)
}

const STRATEGIES: [ReorderStrategy; 4] = ReorderStrategy::ALL;

fn l1(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// CPI converges to `eps = 1e-9`; relabeled summation can shift the last
/// iteration across the stopping boundary, so answers agree to ~`eps`
/// in L1, far below any serving-visible difference.
const TOL: f64 = 1e-7;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Invariant 1: exact queries unmap to the un-reordered answer on
    /// every backend.
    #[test]
    fn reordered_query_unmaps_to_plain_answer(
        n in 8usize..60,
        gseed in 0u64..500,
        seed_frac in 0.0f64..1.0,
        pick in 0usize..4,
    ) {
        let g = random_graph(n, gseed);
        let seed = ((n as f64 * seed_frac) as usize).min(n - 1) as NodeId;
        let strategy = STRATEGIES[pick];
        let plain = QueryEngine::sequential(&g).query(seed);
        let engines = [
            QueryEngine::sequential(&g).with_reordering(strategy),
            QueryEngine::parallel(&g, 3).with_reordering(strategy),
            QueryEngine::dynamic(DynamicGraph::new(g.clone())).with_reordering(strategy),
        ];
        for engine in &engines {
            let unmapped = engine.query(seed);
            let err = l1(&plain, &unmapped);
            prop_assert!(
                err < TOL,
                "{} / {}: unmapped scores drifted {} (> {})",
                strategy.name(),
                engine.backend().name(),
                err,
                TOL
            );
        }
    }

    /// Invariant 1, indexed path: TPA-approximate answers unmap too
    /// (same params, so the same approximation on the relabeled graph).
    #[test]
    fn reordered_indexed_query_unmaps_to_plain_answer(
        n in 20usize..60,
        gseed in 0u64..300,
        pick in 0usize..4,
    ) {
        let g = random_graph(n, gseed);
        let params = TpaParams::new(4, 9);
        let strategy = STRATEGIES[pick];
        let plain = QueryEngine::sequential(&g).preprocess(params);
        let reordered =
            QueryEngine::sequential(&g).with_reordering(strategy).preprocess(params);
        let seed = (n / 2) as NodeId;
        let err = l1(&plain.query(seed), &reordered.query(seed));
        prop_assert!(err < TOL, "{}: indexed drift {}", strategy.name(), err);
    }

    /// Invariant 2: sequential, parallel, and dynamic backends over the
    /// same permuted graph answer bitwise identically, single and
    /// batched.
    #[test]
    fn reordered_backends_bitwise_agree(
        n in 8usize..60,
        gseed in 0u64..500,
        threads in 2usize..6,
        pick in 0usize..4,
    ) {
        let g = random_graph(n, gseed);
        let strategy = STRATEGIES[pick];
        let seeds: Vec<NodeId> = vec![0, (n / 3) as NodeId, (n - 1) as NodeId];
        let seq = QueryEngine::sequential(&g).with_reordering(strategy);
        let par = QueryEngine::parallel(&g, threads).with_reordering(strategy);
        let dynamic =
            QueryEngine::dynamic(DynamicGraph::new(g.clone())).with_reordering(strategy);
        let reference = seq.query_batch(&seeds);
        prop_assert_eq!(&par.query_batch(&seeds), &reference);
        prop_assert_eq!(&dynamic.query_batch(&seeds), &reference);
        for &s in &seeds {
            prop_assert_eq!(&seq.query(s), &reference[seeds.iter().position(|&x| x == s).unwrap()]);
        }
    }

    /// Invariant 3: any strip width is bitwise invisible, scalar and
    /// block, sequential and parallel.
    #[test]
    fn strip_width_is_bitwise_invisible(
        n in 8usize..60,
        gseed in 0u64..500,
        width in 1usize..200,
        threads in 2usize..5,
    ) {
        let g = random_graph(n, gseed);
        let x: Vec<f64> = (0..n).map(|i| ((i * 31) % 17) as f64 / 17.0).collect();
        let mut y_flat = vec![0.0; n];
        let mut y_strip = vec![0.0; n];
        Transition::new(&g)
            .with_tile_policy(TilePolicy::Flat)
            .propagate_into(0.85, &x, &mut y_flat);
        Transition::new(&g)
            .with_tile_policy(TilePolicy::Strip(width))
            .propagate_into(0.85, &x, &mut y_strip);
        prop_assert_eq!(&y_flat, &y_strip);

        let par_flat = ParallelTransition::new(&g, threads).with_tile_policy(TilePolicy::Flat);
        let par_strip =
            ParallelTransition::new(&g, threads).with_tile_policy(TilePolicy::Strip(width));
        let mut xb = tpa_core::batch::ScoreBlock::zeros(n, 4);
        for (i, e) in xb.data_mut().iter_mut().enumerate() {
            *e = ((i * 7) % 23) as f64 / 23.0;
        }
        let mut yb_flat = tpa_core::batch::ScoreBlock::zeros(n, 4);
        let mut yb_strip = tpa_core::batch::ScoreBlock::zeros(n, 4);
        par_flat.propagate_block_into(0.85, &xb, &mut yb_flat);
        par_strip.propagate_block_into(0.85, &xb, &mut yb_strip);
        prop_assert_eq!(yb_flat.data(), yb_strip.data());
    }

    /// Reordered dynamic engines accept old-id updates and keep
    /// tracking the un-reordered engine across update batches.
    #[test]
    fn reordered_dynamic_updates_track_plain_engine(
        n in 12usize..50,
        gseed in 0u64..300,
        u in 0u32..12,
        v in 0u32..12,
        pick in 0usize..4,
    ) {
        use tpa_graph::EdgeUpdate;
        let g = random_graph(n, gseed);
        let ups = [
            EdgeUpdate::Insert(u % n as u32, v % n as u32),
            EdgeUpdate::Insert(v % n as u32, u % n as u32),
            EdgeUpdate::Delete(u % n as u32, (u + 1) % n as u32),
        ];
        let mut plain = QueryEngine::dynamic(DynamicGraph::new(g.clone()));
        let mut reordered = QueryEngine::dynamic(DynamicGraph::new(g.clone()))
            .with_reordering(STRATEGIES[pick]);
        let a = plain.apply_updates(&ups).unwrap();
        let b = reordered.apply_updates(&ups).unwrap();
        prop_assert_eq!(a.delta.stats, b.delta.stats);
        let seed = (n / 2) as NodeId;
        let err = l1(&plain.query(seed), &reordered.query(seed));
        prop_assert!(err < TOL, "post-update drift {}", err);
    }
}
