//! Property tests for the dynamic subsystem: after an arbitrary
//! interleaving of inserts, deletes, and compactions,
//!
//! * exact-mode scores served through the overlay are **bit-identical**
//!   to a `CsrGraph` rebuilt from scratch, across the sequential and
//!   parallel backends;
//! * incrementally maintained cached scores (OSP offset propagation)
//!   match a from-scratch recomputation to the exact-mode tolerance, and
//!   stay within the stated bound in approximate mode.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use tpa_core::{
    cpi, CpiConfig, DynamicTransition, MaintenanceMode, ParallelTransition, QueryEngine, QueryPlan,
    ScoreCache, SeedSet, Transition,
};
use tpa_graph::gen::erdos_renyi_gnm;
use tpa_graph::{CsrGraph, DanglingPolicy, DynamicGraph, EdgeUpdate, GraphBuilder, NodeId};

fn random_graph(n: usize, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = (4 * n).min(n * (n - 1) / 2);
    erdos_renyi_gnm(n, m, &mut rng)
}

/// Derives an update script from fraction triples: (kind, u, v).
fn script(n: usize, raw: &[(u8, f64, f64)]) -> Vec<EdgeUpdate> {
    let node = |f: f64| ((n as f64 * f) as usize).min(n - 1) as NodeId;
    raw.iter()
        .map(|&(k, fu, fv)| {
            if k % 2 == 0 {
                EdgeUpdate::Insert(node(fu), node(fv))
            } else {
                EdgeUpdate::Delete(node(fu), node(fv))
            }
        })
        .collect()
}

/// The merged view rebuilt from scratch with overlay semantics
/// (no dangling patching).
fn rebuild(g: &DynamicGraph) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(g.n(), g.m()).dangling_policy(DanglingPolicy::Keep);
    for u in 0..g.n() as NodeId {
        for v in g.out_neighbors(u) {
            b.add_edge(u, v);
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Exact-mode queries through the dynamic overlay are bit-identical
    /// to a from-scratch rebuild, on both the sequential and the parallel
    /// backend, with and without a mid-script compaction.
    #[test]
    fn overlay_scores_bitwise_equal_rebuild(
        n in 8usize..60,
        gseed in 0u64..300,
        raw in proptest::collection::vec((0u8..4, 0.0f64..1.0, 0.0f64..1.0), 1..40),
        compact_at in 0usize..40,
        seed_frac in 0.0f64..1.0,
        threads in 2usize..5,
    ) {
        let base = random_graph(n, gseed);
        let updates = script(n, &raw);
        let mut dynamic = DynamicGraph::new(base).with_compact_threshold(None);
        for (i, &up) in updates.iter().enumerate() {
            dynamic.apply_one(up);
            if i == compact_at {
                dynamic.compact();
            }
        }
        let rebuilt = rebuild(&dynamic);
        let seed = ((n as f64 * seed_frac) as usize).min(n - 1) as NodeId;
        let cfg = CpiConfig::default();

        let overlay = cpi(
            &DynamicTransition::new(dynamic.clone()),
            &SeedSet::single(seed), &cfg, 0, None,
        ).scores;
        let sequential = cpi(&Transition::new(&rebuilt), &SeedSet::single(seed), &cfg, 0, None)
            .scores;
        let parallel = cpi(
            &ParallelTransition::new(&rebuilt, threads),
            &SeedSet::single(seed), &cfg, 0, None,
        ).scores;
        prop_assert_eq!(&overlay, &sequential);
        prop_assert_eq!(&overlay, &parallel);

        // The engine's exact plan path agrees too.
        let engine = QueryEngine::dynamic(dynamic);
        let via_engine = engine
            .execute(&QueryPlan::single(seed).exact())
            .expect("in-range seed")
            .into_scores()
            .pop()
            .unwrap();
        prop_assert_eq!(&via_engine, &sequential);
    }

    /// Incremental maintenance: exact-mode refreshes track a from-scratch
    /// recomputation; approximate-mode refreshes stay within the
    /// `2·tolerance/c` bound per batch.
    #[test]
    fn incremental_refresh_matches_rebuild(
        n in 8usize..50,
        gseed in 0u64..300,
        raw in proptest::collection::vec((0u8..4, 0.0f64..1.0, 0.0f64..1.0), 1..25),
        batch_split in 1usize..25,
        seed_frac in 0.0f64..1.0,
    ) {
        let base = random_graph(n, gseed);
        let updates = script(n, &raw);
        let seed = ((n as f64 * seed_frac) as usize).min(n - 1) as NodeId;
        let cfg = CpiConfig::default();
        let tolerance = 1e-4;

        let mut t = DynamicTransition::new(DynamicGraph::new(base));
        let mut exact = ScoreCache::new(cfg, MaintenanceMode::Exact);
        let mut approx = ScoreCache::new(cfg, MaintenanceMode::Approximate { tolerance });
        exact.warm(&t, &[seed]);
        approx.warm(&t, &[seed]);

        // Apply the script as two batches (refresh after each), exercising
        // multi-batch maintenance.
        let split = batch_split.min(updates.len());
        let mut batches = 0usize;
        for chunk in [&updates[..split], &updates[split..]] {
            if chunk.is_empty() {
                continue;
            }
            let delta = t.apply(chunk);
            exact.refresh(&t, &delta);
            approx.refresh(&t, &delta);
            batches += 1;
        }

        let fresh = cpi(
            &Transition::new(&rebuild(t.graph())),
            &SeedSet::single(seed), &cfg, 0, None,
        ).scores;
        let l1 = |a: &[f64]| -> f64 {
            a.iter().zip(&fresh).map(|(x, y)| (x - y).abs()).sum()
        };
        prop_assert!(l1(&exact.scores(seed).unwrap()) < 1e-7, "exact drift");
        let bound = batches as f64 * 2.0 * tolerance / cfg.c;
        prop_assert!(
            l1(&approx.scores(seed).unwrap()) <= bound,
            "approximate drift above bound",
        );
    }
}
