//! Property tests for the copy-on-write publish path: a service that
//! publishes `O(batch)` patch snapshots must be observationally — in
//! fact bitwise — identical to rebuilding the graph from scratch at
//! every epoch, regardless of how updates are batched, where
//! compactions (inline or background) land, how many worker threads
//! propagate, and whether the service is reordered. The background base
//! swap must be invisible to readers holding old snapshots *and* to all
//! future epochs.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use tpa_core::{
    cpi, CpiConfig, EngineBackend, IndexStalenessPolicy, MaintenanceMode, QueryRequest, SeedSet,
    ServiceBuilder, TpaError, TpaIndex, TpaParams, Transition,
};
use tpa_graph::gen::erdos_renyi_gnm;
use tpa_graph::{
    CsrGraph, DanglingPolicy, DynamicGraph, EdgeUpdate, GraphBuilder, NodeId, ReorderStrategy,
};

fn random_graph(n: usize, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = (4 * n).min(n * (n - 1) / 2);
    erdos_renyi_gnm(n, m, &mut rng)
}

/// Derives an update script from fraction triples: (kind, u, v).
fn script(n: usize, raw: &[(u8, f64, f64)]) -> Vec<EdgeUpdate> {
    let node = |f: f64| ((n as f64 * f) as usize).min(n - 1) as NodeId;
    raw.iter()
        .map(|&(k, fu, fv)| {
            if k % 2 == 0 {
                EdgeUpdate::Insert(node(fu), node(fv))
            } else {
                EdgeUpdate::Delete(node(fu), node(fv))
            }
        })
        .collect()
}

/// The merged view rebuilt from scratch with overlay semantics
/// (no dangling patching).
fn rebuild(g: &DynamicGraph) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(g.n(), g.m()).dangling_policy(DanglingPolicy::Keep);
    for u in 0..g.n() as NodeId {
        for v in g.out_neighbors(u) {
            b.add_edge(u, v);
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every CoW-published epoch answers bitwise identically to a CPI
    /// run over a CSR rebuilt from scratch at that same state — the
    /// patch snapshot is a view, not an approximation.
    #[test]
    fn cow_published_epochs_bitwise_equal_rebuild(
        n in 8usize..60,
        gseed in 0u64..300,
        raw in proptest::collection::vec((0u8..4, 0.0f64..1.0, 0.0f64..1.0), 1..30),
        split in 0usize..30,
        compact_after in 0usize..3,
        threads in 1usize..5,
        seed_frac in 0.0f64..1.0,
    ) {
        let base = random_graph(n, gseed);
        let updates = script(n, &raw);
        let split = split.min(updates.len());
        let seed = ((n as f64 * seed_frac) as usize).min(n - 1) as NodeId;
        let cfg = CpiConfig::default();

        let service = ServiceBuilder::dynamic(
            DynamicGraph::new(base.clone()).with_compact_threshold(None),
        )
        .threads(threads)
        .build()
        .expect("dynamic service");
        prop_assert_eq!(service.snapshot().backend().name(), "patched");
        let mut mirror = DynamicGraph::new(base).with_compact_threshold(None);

        let chunks = [&updates[..split], &updates[split..]];
        for (i, chunk) in chunks.iter().enumerate() {
            if !chunk.is_empty() {
                service.apply_updates(chunk).expect("apply");
                for &up in chunk.iter() {
                    mirror.apply_one(up);
                }
            }
            if compact_after == i + 1 {
                service.compact().expect("compact");
            }
            let fresh = cpi(
                &Transition::new(&rebuild(&mirror)),
                &SeedSet::single(seed), &cfg, 0, None,
            ).scores;
            let via_service = service.query(seed).expect("in-range seed");
            prop_assert_eq!(&via_service, &fresh, "epoch {}", service.epoch());
        }
    }

    /// Update batching, inline compaction placement, worker-thread
    /// count, and graph reordering are all bitwise invisible: two
    /// services replaying the same script under different combinations
    /// publish identical answers.
    #[test]
    fn batching_compaction_threads_and_reordering_are_bitwise_invisible(
        n in 8usize..50,
        gseed in 0u64..300,
        raw in proptest::collection::vec((0u8..4, 0.0f64..1.0, 0.0f64..1.0), 1..24),
        split_a in 0usize..24,
        split_b in 0usize..24,
        threads_b in 2usize..5,
        strategy_idx in 0usize..=ReorderStrategy::ALL.len(),
        seed_frac in 0.0f64..1.0,
    ) {
        let base = random_graph(n, gseed);
        let updates = script(n, &raw);
        let seed = ((n as f64 * seed_frac) as usize).min(n - 1) as NodeId;
        let build = |threads: usize| {
            let mut b = ServiceBuilder::dynamic(
                DynamicGraph::new(base.clone()).with_compact_threshold(None),
            )
            .threads(threads);
            if strategy_idx > 0 {
                b = b.reordering(ReorderStrategy::ALL[strategy_idx - 1]);
            }
            b.build().expect("dynamic service")
        };

        // A: sequential, one split, never compacts.
        let a = build(1);
        let sa = split_a.min(updates.len());
        for chunk in [&updates[..sa], &updates[sa..]] {
            if !chunk.is_empty() {
                a.apply_updates(chunk).expect("apply");
            }
        }
        // B: parallel, different split, inline compaction between.
        let b = build(threads_b);
        let sb = split_b.min(updates.len());
        if sb > 0 {
            b.apply_updates(&updates[..sb]).expect("apply");
        }
        b.compact().expect("compact");
        if sb < updates.len() {
            b.apply_updates(&updates[sb..]).expect("apply");
        }

        prop_assert_eq!(a.query(seed).expect("query"), b.query(seed).expect("query"));
        // k is clamped to n: admission rejects k > n outright.
        let k = 10.min(n);
        prop_assert_eq!(a.top_k(seed, k).expect("rank"), b.top_k(seed, k).expect("rank"));
    }
}

#[test]
fn background_base_swap_is_invisible_to_readers() {
    let g = random_graph(200, 7);
    // A microscopic trigger: any effective batch spawns the rebuild.
    let with_bg =
        ServiceBuilder::dynamic(DynamicGraph::new(g.clone()).with_compact_threshold(Some(1e-9)))
            .build()
            .unwrap();
    let plain =
        ServiceBuilder::dynamic(DynamicGraph::new(g).with_compact_threshold(None)).build().unwrap();

    let batch1 =
        [EdgeUpdate::Insert(3, 150), EdgeUpdate::Insert(150, 3), EdgeUpdate::Delete(3, 150)];
    let batch2 = [EdgeUpdate::Insert(7, 42), EdgeUpdate::Delete(150, 3)];

    with_bg.apply_updates(&batch1).unwrap();
    plain.apply_updates(&batch1).unwrap();
    assert!(with_bg.compaction_pending(), "tiny trigger must spawn a background rebuild");

    // A reader holds the pre-swap snapshot across the splice.
    let held = with_bg.snapshot();
    let before = held.run(&QueryRequest::single(3)).unwrap().result.into_scores();
    assert!(with_bg.flush_compaction(), "the rebuild must install");
    let after = held.run(&QueryRequest::single(3)).unwrap().result.into_scores();
    assert_eq!(before, after, "held snapshot changed across the base swap");

    // Epochs published after the swap are bitwise identical to a
    // service that never compacted.
    with_bg.apply_updates(&batch2).unwrap();
    plain.apply_updates(&batch2).unwrap();
    assert_eq!(with_bg.query(3).unwrap(), plain.query(3).unwrap());
    assert_eq!(with_bg.query(150).unwrap(), plain.query(150).unwrap());

    // The swapped-in base absorbed batch1: the newest patch snapshot
    // carries only batch2's delta.
    match with_bg.snapshot().backend() {
        EngineBackend::Patched(t) => {
            assert!(t.delta_edges() <= batch2.len(), "delta {} not reset", t.delta_edges())
        }
        other => panic!("dynamic service must publish patched snapshots, got {}", other.name()),
    }
}

#[test]
fn score_cache_serves_hot_seeds_across_epochs() {
    let g = random_graph(300, 11);
    let service =
        ServiceBuilder::dynamic(DynamicGraph::new(g.clone()).with_compact_threshold(None))
            .score_cache([5, 17], MaintenanceMode::Exact)
            .build()
            .unwrap();
    let cold =
        ServiceBuilder::dynamic(DynamicGraph::new(g).with_compact_threshold(None)).build().unwrap();
    assert_eq!(service.snapshot().score_cache().unwrap().len(), 2);

    // Epoch 0: a hot seed hits, and the lane is bitwise the cold answer
    // (both sides ran the same exact CPI).
    let hot = service.submit(&QueryRequest::single(5)).unwrap();
    assert!(hot.cached);
    assert!(hot.iterations.is_none(), "a cache hit runs no CPI");
    let fresh = cold.submit(&QueryRequest::single(5)).unwrap();
    assert!(!fresh.cached);
    assert_eq!(hot.result.into_scores(), fresh.result.into_scores());

    // Misses: uncached seed, eps override, multi-seed batch.
    assert!(!service.submit(&QueryRequest::single(9)).unwrap().cached);
    assert!(!service.submit(&QueryRequest::single(5).with_epsilon(1e-6)).unwrap().cached);
    assert!(!service.submit(&QueryRequest::batch(vec![5, 17])).unwrap().cached);

    // Across epochs: the frontier-routed offset refresh keeps lanes
    // tracking a cold recomputation (exact maintenance ⇒ CPI-tolerance
    // agreement, not bitwise).
    let ups = [
        EdgeUpdate::Insert(5, 200),
        EdgeUpdate::Insert(200, 5),
        EdgeUpdate::Delete(5, 200),
        EdgeUpdate::Insert(17, 3),
    ];
    service.apply_updates(&ups).unwrap();
    cold.apply_updates(&ups).unwrap();
    for seed in [5, 17] {
        let hot = service.submit(&QueryRequest::single(seed)).unwrap();
        assert!(hot.cached, "seed {seed} must stay hot across the epoch");
        let a = hot.result.into_scores().pop().unwrap();
        let b = cold.query(seed).unwrap();
        let l1: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(l1 < 1e-7, "seed {seed} lane drifted {l1} from cold recomputation");
    }
}

#[test]
fn score_cache_builder_rejects_bad_configs() {
    let g = random_graph(50, 3);
    let err = ServiceBuilder::dynamic(DynamicGraph::new(g.clone()))
        .score_cache([0], MaintenanceMode::Approximate { tolerance: 0.0 })
        .build()
        .unwrap_err();
    assert!(matches!(err, TpaError::InvalidConfig(_)), "{err}");
    let err = ServiceBuilder::dynamic(DynamicGraph::new(g))
        .score_cache([9999], MaintenanceMode::Exact)
        .build()
        .unwrap_err();
    assert!(matches!(err, TpaError::SeedOutOfRange { seed: 9999, .. }), "{err}");
}

#[test]
fn service_patch_index_publishes_a_repaired_epoch() {
    let g = random_graph(300, 5);
    let params = TpaParams::new(5, 10);
    let service =
        ServiceBuilder::dynamic(DynamicGraph::new(g.clone()).with_compact_threshold(None))
            .preprocess(params)
            .staleness(IndexStalenessPolicy { threshold: 1e-12, auto_refresh: false })
            .build()
            .unwrap();

    // Nothing accumulated yet: a no-op that republishes nothing.
    assert_eq!(service.patch_index().unwrap(), service.epoch());

    let ups = [EdgeUpdate::Insert(0, 299), EdgeUpdate::Insert(299, 42), EdgeUpdate::Delete(0, 299)];
    let out = service.apply_updates(&ups).unwrap();
    assert!(out.report.index_stale);
    let stale: Vec<f64> = service.snapshot().index().unwrap().stranger().to_vec();

    let epoch = service.patch_index().unwrap();
    assert_eq!(epoch, out.epoch + 1, "a patch publishes a fresh epoch");
    assert!(!service.index_stale());

    // The patched stranger tracks a from-scratch re-preprocess far more
    // closely than the stale vector it replaced.
    let mut mirror = DynamicGraph::new(g).with_compact_threshold(None);
    for &up in &ups {
        mirror.apply_one(up);
    }
    let fresh = TpaIndex::preprocess(&rebuild(&mirror), params);
    let l1 = |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum() };
    let patched_err = l1(service.snapshot().index().unwrap().stranger(), fresh.stranger());
    let stale_err = l1(&stale, fresh.stranger());
    assert!(
        patched_err < 1e-2 && patched_err < 0.5 * stale_err,
        "patched drifted {patched_err} (stale was {stale_err})"
    );

    // Static services reject patching with a typed error.
    let st = ServiceBuilder::in_memory(random_graph(50, 1)).preprocess(params).build().unwrap();
    let err = st.patch_index().unwrap_err();
    assert!(matches!(err, TpaError::BackendMismatch { operation: "index patching", .. }), "{err}");
}
