//! Observability integration: the metrics a service reports must match
//! ground truth exactly, under concurrency, across the whole epoch
//! lifecycle, and on the failure paths.
//!
//! The acceptance bar from the observability PR: with metrics enabled,
//! a racing-readers stress run must report request counts *exactly*
//! equal to the test's own tally, cache hits consistent with
//! [`QueryResponse::cached`], and at least one full epoch lifecycle
//! (publish + compaction) event sequence.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tpa_core::{EpochEvent, MaintenanceMode, QueryRequest, ServiceBuilder, TpaError, TpaParams};
use tpa_graph::gen::{lfr_lite, LfrConfig};
use tpa_graph::{CsrGraph, DynamicGraph, EdgeUpdate, NodeId};
use tpa_obs::MetricsRegistry;

fn test_graph(seed: u64, n: usize, m: usize) -> CsrGraph {
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    lfr_lite(LfrConfig { n, m, ..Default::default() }, &mut rng).graph
}

/// Small deterministic update batch, varied by `round`.
fn update_batch(round: usize, n: usize) -> Vec<EdgeUpdate> {
    let a = ((round * 37) % n) as NodeId;
    let b = ((round * 61 + 13) % n) as NodeId;
    if a == b {
        vec![EdgeUpdate::Insert(a, (b + 1) % n as NodeId)]
    } else {
        vec![EdgeUpdate::Insert(a, b), EdgeUpdate::Insert(b, a), EdgeUpdate::Delete(a, b)]
    }
}

/// Readers race a writer; afterwards the metrics snapshot must agree
/// with the test's own tally to the last request, and the event ring
/// must contain a full publish + compaction lifecycle.
#[test]
fn stress_metrics_tally_matches_ground_truth() {
    const READERS: usize = 4;
    const REQUESTS: usize = 60;
    const ROUNDS: usize = 30;

    let n = 300;
    let g = test_graph(11, n, 2400);
    let registry = Arc::new(MetricsRegistry::new());
    // Microscopic compaction trigger: every effective batch spawns the
    // background rebuild, so the run exercises the whole lifecycle.
    let service = Arc::new(
        ServiceBuilder::dynamic(DynamicGraph::new(g).with_compact_threshold(Some(1e-9)))
            .preprocess(TpaParams::new(4, 9))
            .score_cache(vec![0, 1], MaintenanceMode::Exact)
            .metrics(Arc::clone(&registry))
            .build()
            .unwrap(),
    );

    let ok_tally = Arc::new(AtomicU64::new(0));
    let err_tally = Arc::new(AtomicU64::new(0));
    let cached_tally = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for r in 0..READERS {
            let service = Arc::clone(&service);
            let ok_tally = Arc::clone(&ok_tally);
            let err_tally = Arc::clone(&err_tally);
            let cached_tally = Arc::clone(&cached_tally);
            s.spawn(move || {
                for i in 0..REQUESTS {
                    let req = match i % 4 {
                        0 => QueryRequest::single(((r * 53 + i) % n) as NodeId),
                        // Cached seeds: an indexed snapshot only serves
                        // cache hits to explicit exact requests.
                        1 => QueryRequest::single((i % 2) as NodeId).exact(),
                        2 => QueryRequest::batch(vec![1 as NodeId, 2, 3]).top_k(5),
                        // Admission rejection: seed out of range.
                        _ => QueryRequest::single((n + i) as NodeId),
                    };
                    match service.submit(&req) {
                        Ok(resp) => {
                            ok_tally.fetch_add(1, Ordering::Relaxed);
                            if resp.cached {
                                cached_tally.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(e) => {
                            assert!(matches!(e, TpaError::SeedOutOfRange { .. }), "{e}");
                            err_tally.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
        // The writer publishes epochs (and re-triggers compaction)
        // while the readers run.
        let service = Arc::clone(&service);
        s.spawn(move || {
            for round in 0..ROUNDS {
                service.apply_updates(&update_batch(round, n)).unwrap();
            }
        });
    });
    // Settle the last background rebuild so the lifecycle is complete.
    service.flush_compaction();

    let snap = service.metrics_snapshot().expect("metrics attached");
    let ok = ok_tally.load(Ordering::Relaxed);
    let errs = err_tally.load(Ordering::Relaxed);
    let cached = cached_tally.load(Ordering::Relaxed);
    assert_eq!(ok + errs, (READERS * REQUESTS) as u64, "test tally is complete");
    assert_eq!(snap.requests.total, ok, "admitted-request count drifted from ground truth");
    assert_eq!(snap.requests.errors_total, errs, "error count drifted from ground truth");
    assert_eq!(
        snap.requests.errors,
        vec![("seed_out_of_range", errs)],
        "all failures were admission rejections"
    );
    assert_eq!(snap.requests.cache_hits, cached, "cache hits disagree with QueryResponse::cached");
    assert_eq!(
        snap.requests.cache_hits + snap.requests.cache_misses,
        ok,
        "every admitted request either hit or missed the score cache"
    );
    assert!(cached > 0, "the cached-seed requests must actually hit");

    // Latency accounting: every admitted request left one sample in
    // each span histogram and one in exactly one (kind, backend) cell.
    assert_eq!(snap.requests.run.count, ok, "one kernel span per admitted request");
    assert_eq!(snap.requests.pin.count, ok + errs, "one pin span per submit, rejected or not");
    let cells: u64 = snap.requests.latency.iter().map(|(_, _, l)| l.count).sum();
    assert_eq!(cells, ok, "per-kind/backend cells partition the requests");

    // Writer lifecycle: every batch published, and the event ring holds
    // a full publish → compaction-started → compaction-installed arc.
    assert_eq!(snap.writer.publishes, ROUNDS as u64);
    assert_eq!(snap.writer.batch_updates.count, ROUNDS as u64);
    assert_eq!(snap.writer.publish_latency.count, ROUNDS as u64);
    assert!(snap.writer.epoch >= ROUNDS as u64, "epoch advanced past every publish");
    assert!(snap.writer.compactions_started >= 1, "tiny trigger must spawn compaction");
    assert!(snap.writer.compactions_installed >= 1, "flushed compaction must install");
    assert_eq!(snap.writer.compactions_failed, 0);
    let ev = &snap.writer.recent_events;
    assert!(ev.iter().any(|e| matches!(e, EpochEvent::Published { .. })));
    assert!(ev.iter().any(|e| matches!(e, EpochEvent::CompactionStarted { .. })));
    assert!(ev.iter().any(|e| matches!(e, EpochEvent::CompactionInstalled { .. })));
    let started = ev.iter().position(|e| matches!(e, EpochEvent::CompactionStarted { .. }));
    let installed = ev.iter().rposition(|e| matches!(e, EpochEvent::CompactionInstalled { .. }));
    assert!(started.unwrap() < installed.unwrap(), "lifecycle events out of order");

    // The exporter sees the same world: the dump parses and carries the
    // families the CI smoke step requires.
    let dump = tpa_obs::parse_prometheus(&registry.render_prometheus()).expect("dump parses");
    for family in ["tpa_requests_total", "tpa_request_latency_seconds", "tpa_epoch_publishes_total"]
    {
        assert!(dump.has_family(family), "missing {family}");
    }
}

/// A panicking background rebuild is surfaced, not swallowed: the
/// failure is counted, the reason preserved, the pending flag cleared,
/// and the service keeps serving and can compact again later.
#[test]
fn compaction_panic_is_surfaced_and_recoverable() {
    let n = 200;
    let g = test_graph(13, n, 1600);
    let registry = Arc::new(MetricsRegistry::new());
    let service = ServiceBuilder::dynamic(DynamicGraph::new(g).with_compact_threshold(Some(1e-9)))
        .metrics(Arc::clone(&registry))
        .build()
        .unwrap();

    service.debug_fail_next_compaction();
    service.apply_updates(&[EdgeUpdate::Insert(1, 2), EdgeUpdate::Insert(2, 1)]).unwrap();
    // Reap the failed job: pending must come back false, not wedge.
    while service.compaction_pending() {
        std::thread::yield_now();
    }

    assert_eq!(service.compaction_failures(), 1);
    let reason = service.last_compaction_failure().expect("failure recorded");
    assert!(reason.contains("injected"), "panic payload lost: {reason}");
    let snap = service.metrics_snapshot().unwrap();
    assert_eq!(snap.writer.compactions_failed, 1);
    assert!(snap.writer.recent_events.iter().any(
        |e| matches!(e, EpochEvent::CompactionFailed { reason } if reason.contains("injected"))
    ));

    // The overlay is untouched and the service still answers.
    service.query(1).unwrap();
    // A later batch re-triggers once the retry backoff (10ms after one
    // failure) expires; the retry must succeed and install.
    std::thread::sleep(std::time::Duration::from_millis(15));
    service.apply_updates(&[EdgeUpdate::Insert(3, 4), EdgeUpdate::Insert(4, 3)]).unwrap();
    assert!(service.flush_compaction(), "recovery compaction must install");
    assert_eq!(service.compaction_failures(), 1, "no new failures");
    assert_eq!(service.compaction_retries(), 1, "the recovery spawn counts as a retry");
    let snap = service.metrics_snapshot().unwrap();
    assert!(snap.writer.compactions_installed >= 1);
    assert_eq!(snap.writer.compaction_retries, 1);
}

/// `elapsed` is measured inside `Snapshot::run` and is consistent with
/// the recorded latency histograms.
#[test]
fn response_elapsed_is_populated() {
    let g = test_graph(17, 200, 1600);
    let registry = Arc::new(MetricsRegistry::new());
    let service = ServiceBuilder::in_memory(g)
        .preprocess(TpaParams::new(4, 9))
        .metrics(Arc::clone(&registry))
        .build()
        .unwrap();
    let resp = service.submit(&QueryRequest::single(5)).unwrap();
    assert!(resp.elapsed.as_nanos() > 0, "elapsed must be measured");
    let snap = service.metrics_snapshot().unwrap();
    assert_eq!(snap.requests.total, 1);
    assert!(
        snap.requests.latency.iter().any(|(kind, _, l)| *kind == "single" && l.count == 1),
        "single-request latency cell recorded: {:?}",
        snap.requests.latency
    );
    // The histogram's upper-estimate p-max brackets the observed time.
    let cell = &snap.requests.latency[0].2;
    assert!(cell.max_secs >= resp.elapsed.as_secs_f64() * 0.5);
}
