//! Property-based tests for CPI / TPA invariants.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use tpa_core::{
    bounds, cpi, decompose, exact_rwr, CpiConfig, SeedSet, TpaIndex, TpaParams, Transition,
};
use tpa_graph::gen::erdos_renyi_gnm;
use tpa_graph::{CsrGraph, NodeId};

fn l1(a: &[f64]) -> f64 {
    a.iter().map(|v| v.abs()).sum()
}

fn l1_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

fn random_graph(n: usize, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = (4 * n).min(n * (n - 1) / 2);
    erdos_renyi_gnm(n, m, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Exact RWR always sums to 1 (no dangling leak under default policy).
    #[test]
    fn rwr_mass_conservation(n in 5usize..60, gseed in 0u64..500, seed_frac in 0.0f64..1.0) {
        let g = random_graph(n, gseed);
        let seed = ((n as f64 * seed_frac) as usize).min(n - 1) as NodeId;
        let r = exact_rwr(&g, seed, &CpiConfig::default());
        prop_assert!((l1(&r) - 1.0).abs() < 1e-6);
        prop_assert!(r.iter().all(|&v| v >= 0.0));
    }

    /// The steady-state equation r = (1−c)Ãᵀr + cq holds for any c.
    #[test]
    fn steady_state_for_any_c(n in 5usize..40, gseed in 0u64..200, c in 0.05f64..0.9) {
        let g = random_graph(n, gseed);
        let cfg = CpiConfig { c, eps: 1e-12, max_iters: 5000 };
        let r = exact_rwr(&g, 0, &cfg);
        let t = Transition::new(&g);
        let mut rhs = vec![0.0; n];
        t.propagate_into(1.0 - c, &r, &mut rhs);
        rhs[0] += c;
        prop_assert!(l1_dist(&r, &rhs) < 1e-8);
    }

    /// TPA error never exceeds the Theorem-2 bound, for any valid
    /// (c, S, T) — the bound is parametric in the restart probability too.
    #[test]
    fn tpa_respects_theorem2(
        n in 10usize..50,
        gseed in 0u64..200,
        s in 1usize..6,
        t_extra in 1usize..8,
        seed_frac in 0.0f64..1.0,
        c in 0.05f64..0.6,
    ) {
        let g = random_graph(n, gseed);
        let params = TpaParams { c, eps: 1e-10, s, t: s + t_extra };
        let index = TpaIndex::preprocess(&g, params);
        let tr = Transition::new(&g);
        let seed = ((n as f64 * seed_frac) as usize).min(n - 1) as NodeId;
        let approx = index.query(&tr, seed);
        let exact = exact_rwr(&g, seed, &params.cpi_config());
        let err = l1_dist(&approx, &exact);
        prop_assert!(
            err <= bounds::total_bound(params.c, s) + 1e-9,
            "err {} bound {}",
            err,
            bounds::total_bound(params.c, s)
        );
    }

    /// Part-wise decomposition reassembles to the exact vector and each
    /// part's mass matches Lemma 2.
    #[test]
    fn decomposition_is_partition(
        n in 5usize..40,
        gseed in 0u64..200,
        s in 1usize..5,
        t_extra in 1usize..6,
    ) {
        let g = random_graph(n, gseed);
        let tr = Transition::new(&g);
        let cfg = CpiConfig::default();
        let t = s + t_extra;
        let d = decompose(&tr, &SeedSet::single(0), &cfg, s, t);
        let exact = exact_rwr(&g, 0, &cfg);
        prop_assert!(l1_dist(&d.total(), &exact) < 1e-8);
        let df = 1.0 - cfg.c;
        prop_assert!((l1(&d.family) - (1.0 - df.powi(s as i32))).abs() < 1e-9);
        prop_assert!(
            (l1(&d.neighbor) - (df.powi(s as i32) - df.powi(t as i32))).abs() < 1e-9
        );
    }

    /// CPI windows compose: [0,k] + [k+1,∞) = full.
    #[test]
    fn cpi_windows_compose(n in 5usize..40, gseed in 0u64..200, k in 0usize..12) {
        let g = random_graph(n, gseed);
        let tr = Transition::new(&g);
        let cfg = CpiConfig::default();
        let seeds = SeedSet::single((n / 2) as NodeId);
        let head = cpi(&tr, &seeds, &cfg, 0, Some(k)).scores;
        let tail = cpi(&tr, &seeds, &cfg, k + 1, None).scores;
        let full = cpi(&tr, &seeds, &cfg, 0, None).scores;
        let merged: Vec<f64> = head.iter().zip(&tail).map(|(a, b)| a + b).collect();
        prop_assert!(l1_dist(&full, &merged) < 1e-8);
    }

    /// PageRank is the average of all single-seed RWR vectors (linearity).
    #[test]
    fn pagerank_is_average_rwr(n in 3usize..12, gseed in 0u64..100) {
        let g = random_graph(n, gseed);
        let cfg = CpiConfig { eps: 1e-12, ..Default::default() };
        let pr = tpa_core::pagerank(&g, &cfg);
        let mut avg = vec![0.0; n];
        for s in 0..n as NodeId {
            let r = exact_rwr(&g, s, &cfg);
            for (a, b) in avg.iter_mut().zip(&r) {
                *a += b / n as f64;
            }
        }
        prop_assert!(l1_dist(&pr, &avg) < 1e-7);
    }
}
