//! Error-path and concurrency tests for the `RwrService` serving layer.
//!
//! The stress test is the load-bearing one: N reader threads race a
//! writer that publishes epochs, and every response must be **bitwise
//! identical** to a single-threaded `QueryEngine` frozen at that
//! response's epoch — readers may see an older epoch or a newer one,
//! but never a blend of two. CI additionally runs this file under
//! `--release` (more interleavings per second, and the kernels the
//! threads race through are the optimized ones).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use tpa_core::{
    IndexStalenessPolicy, QueryEngine, QueryRequest, QueryResult, ServiceBuilder, TpaError,
    TpaIndex, TpaParams,
};
use tpa_graph::gen::{lfr_lite, LfrConfig};
use tpa_graph::{CsrGraph, DynamicGraph, EdgeUpdate, NodeId};

fn test_graph(seed: u64, n: usize, m: usize) -> CsrGraph {
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    lfr_lite(LfrConfig { n, m, ..Default::default() }, &mut rng).graph
}

#[test]
fn empty_batch_yields_empty_response() {
    let g = test_graph(3, 200, 1600);
    let service = ServiceBuilder::in_memory(g).preprocess(TpaParams::new(4, 9)).build().unwrap();
    let resp = service.submit(&QueryRequest::batch(Vec::<NodeId>::new())).unwrap();
    assert!(matches!(resp.result, QueryResult::Scores(ref s) if s.is_empty()), "{resp:?}");
    assert_eq!(resp.iterations, None);
    let resp = service.submit(&QueryRequest::batch(Vec::<NodeId>::new()).top_k(5)).unwrap();
    assert!(matches!(resp.result, QueryResult::Ranked(ref r) if r.is_empty()), "{resp:?}");
}

#[test]
fn invalid_seed_is_an_admission_error() {
    let g = test_graph(5, 200, 1600);
    let n = g.n();
    let service = ServiceBuilder::in_memory(g).build().unwrap();
    let err = service.submit(&QueryRequest::single(n as NodeId)).unwrap_err();
    assert!(
        matches!(err, TpaError::SeedOutOfRange { seed, n: got } if seed as usize == n && got == n),
        "{err}"
    );
    // Mid-batch bad seeds are caught before any kernel runs too.
    let err = service.submit(&QueryRequest::batch(vec![0, 1, 1_000_000])).unwrap_err();
    assert!(matches!(err, TpaError::SeedOutOfRange { seed: 1_000_000, .. }), "{err}");
    // The error is a real std::error::Error with a stable message.
    let rendered = err.to_string();
    assert!(rendered.contains("out of range"), "{rendered}");
    let _: &dyn std::error::Error = &err;
}

#[test]
fn mismatched_index_dimension_is_an_error_not_a_panic() {
    let g = test_graph(7, 200, 1600);
    let other = test_graph(8, 150, 1200);
    let index = TpaIndex::preprocess(&other, TpaParams::new(4, 9));
    let err = ServiceBuilder::in_memory(g).index(index).build().unwrap_err();
    match err {
        TpaError::DimensionMismatch { backend, index } => {
            assert_eq!(backend, 200);
            assert_eq!(index, 150);
        }
        other => panic!("expected DimensionMismatch, got {other}"),
    }
}

#[test]
fn updates_on_immutable_services_are_backend_mismatches() {
    let g = test_graph(9, 200, 1600);
    let service = ServiceBuilder::in_memory(g).build().unwrap();
    for err in [
        service.apply_updates(&[EdgeUpdate::Insert(0, 1)]).unwrap_err(),
        service.compact().unwrap_err(),
        service.refresh_index().unwrap_err(),
    ] {
        assert!(matches!(err, TpaError::BackendMismatch { backend: "sequential", .. }), "{err}");
    }
}

/// Deterministic update batch for a stress round; includes no-ops and a
/// delete so the overlay exercises all paths.
fn stress_batch(round: usize, n: usize) -> Vec<EdgeUpdate> {
    let pick = |k: usize| ((round * 613 + k * 211 + 17) % n) as NodeId;
    vec![
        EdgeUpdate::Insert(pick(1), pick(2)),
        EdgeUpdate::Insert(pick(3), pick(4)),
        EdgeUpdate::Insert(pick(5), pick(6)),
        EdgeUpdate::Delete(pick(3), pick(4)),
    ]
}

/// Queries racing a publishing writer always see a bitwise-consistent
/// epoch: scores match a frozen pre- or post-update engine, never a
/// blend.
#[test]
fn racing_readers_see_bitwise_consistent_epochs() {
    const READERS: usize = 3;
    const BATCHES: usize = 8;
    let g = test_graph(11, 300, 2400);
    let n = g.n();
    let params = TpaParams::new(4, 9);
    let service = Arc::new(
        ServiceBuilder::dynamic(DynamicGraph::new(g.clone()))
            .preprocess(params)
            // Keep one index across all epochs so frozen references are
            // reconstructable from (index, graph-at-epoch) alone.
            .staleness(IndexStalenessPolicy { threshold: f64::INFINITY, auto_refresh: false })
            .build()
            .unwrap(),
    );
    let index = Arc::new(service.snapshot().index().unwrap().clone());

    // Readers sample (epoch, seed, scores) while the writer publishes.
    let done = Arc::new(AtomicBool::new(false));
    let mut observations: Vec<(u64, NodeId, Vec<f64>)> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for r in 0..READERS {
            let service = Arc::clone(&service);
            let done = Arc::clone(&done);
            handles.push(scope.spawn(move || {
                let mut local = Vec::new();
                let mut q = 0usize;
                // Keep polling until the writer finishes, then once more
                // so the final epoch is observed too.
                loop {
                    let finished = done.load(Ordering::Acquire);
                    let seed = ((r * 997 + q * 31) % n) as NodeId;
                    let resp = service.submit(&QueryRequest::single(seed)).unwrap();
                    local.push((resp.epoch, seed, resp.result.into_scores().pop().unwrap()));
                    q += 1;
                    if finished {
                        break;
                    }
                }
                local
            }));
        }
        for round in 0..BATCHES {
            let outcome = service.apply_updates(&stress_batch(round, n)).unwrap();
            assert_eq!(outcome.epoch, round as u64 + 1);
            std::thread::yield_now();
        }
        done.store(true, Ordering::Release);
        for h in handles {
            observations.extend(h.join().expect("reader thread"));
        }
    });
    assert!(!observations.is_empty());

    // Frozen per-epoch references: replay the same batches on a mirror.
    let mut replay = DynamicGraph::new(g);
    let mut frozen = vec![replay.snapshot()];
    for round in 0..BATCHES {
        replay.apply(&stress_batch(round, n));
        frozen.push(replay.snapshot());
    }
    for (epoch, seed, scores) in &observations {
        let engine =
            QueryEngine::sequential(&frozen[*epoch as usize]).with_index(Arc::clone(&index));
        assert_eq!(
            scores,
            &engine.query(*seed),
            "epoch {epoch} seed {seed}: concurrent response is not the frozen engine's answer"
        );
    }
}

/// A snapshot pinned before a publish keeps serving its own epoch, and
/// several requests against it are mutually consistent.
#[test]
fn pinned_snapshots_are_immutable_views() {
    let g = test_graph(13, 250, 2000);
    let service = ServiceBuilder::dynamic(DynamicGraph::new(g))
        .preprocess(TpaParams::new(4, 9))
        .build()
        .unwrap();
    let pinned = service.snapshot();
    let before = pinned.run(&QueryRequest::single(7)).unwrap().result.into_scores();
    service.apply_updates(&[EdgeUpdate::Insert(7, 100), EdgeUpdate::Insert(100, 7)]).unwrap();
    // The pinned view is frozen; the service has moved on.
    let again = pinned.run(&QueryRequest::single(7)).unwrap();
    assert_eq!(again.epoch, 0);
    assert_eq!(again.result.into_scores(), before);
    let fresh = service.submit(&QueryRequest::single(7)).unwrap();
    assert_eq!(fresh.epoch, 1);
    assert_ne!(fresh.result.into_scores(), before);
}

/// Auto-refresh under a racing reader load: published epochs always pair
/// the index with the graph it was preprocessed on.
#[test]
fn auto_refreshed_index_publishes_atomically() {
    let g = test_graph(17, 250, 2000);
    let params = TpaParams::new(4, 9);
    let service = Arc::new(
        ServiceBuilder::dynamic(DynamicGraph::new(g.clone()))
            .preprocess(params)
            .staleness(IndexStalenessPolicy { threshold: 1e-12, auto_refresh: true })
            .build()
            .unwrap(),
    );
    let outcome = service.apply_updates(&[EdgeUpdate::Insert(0, 249)]).unwrap();
    assert!(outcome.report.index_refreshed);
    assert_eq!(service.accumulated_drift(), 0.0);
    // The published epoch answers exactly like a fresh single-threaded
    // preprocess over the same evolved graph.
    let mut replay = DynamicGraph::new(g);
    replay.apply(&[EdgeUpdate::Insert(0, 249)]);
    let snap = replay.snapshot();
    let fresh = QueryEngine::sequential(&snap).preprocess(params);
    assert_eq!(service.query(42).unwrap(), fresh.query(42));
}

/// Cancellation safety under admission pressure: racing readers fire a
/// mix of plain, pre-cancelled, and expired-deadline requests through a
/// tiny rejecting gate while a writer publishes epochs. Afterwards:
/// the client-side tally of every outcome class matches the metrics
/// registry **exactly**, aborted/shed requests left no observable state
/// (the service still answers bitwise like a quiet replay), pinned
/// snapshots drop cleanly (a `Weak` to the pre-stress epoch dies), and
/// the gate drains to zero.
#[test]
fn aborted_requests_leave_no_state_and_metrics_tally_exactly() {
    use std::sync::atomic::AtomicU64;
    use std::sync::Barrier;
    use tpa_core::{AdmissionConfig, CancelToken, FaultPlan, ShedPolicy};

    const READERS: usize = 6;
    const REQUESTS: usize = 24;
    const ROUNDS: usize = 12;
    let n = 250;
    let g = test_graph(29, n, 2000);
    let registry = Arc::new(tpa_obs::MetricsRegistry::new());
    let service = Arc::new(
        ServiceBuilder::dynamic(DynamicGraph::new(g.clone()).with_compact_threshold(Some(1e-9)))
            .preprocess(TpaParams::new(4, 9))
            .metrics(Arc::clone(&registry))
            // Two slots, no queue: simultaneous submits beyond two are
            // rejected with `Overloaded`, never silently queued.
            .admission(AdmissionConfig::new(2).with_shed(ShedPolicy::Reject))
            // Every admitted request holds its slot for 10ms before the
            // kernel's first guard check, so the barrier-synced racers
            // below reliably find the gate full — no wall-clock luck.
            .fault_plan(FaultPlan::seeded(31).slow_kernels(1, std::time::Duration::from_millis(10)))
            .build()
            .unwrap(),
    );

    // Pin the pre-stress epoch; its Weak must die once released.
    let pinned = service.snapshot();
    let weak = Arc::downgrade(&pinned);

    let ok = Arc::new(AtomicU64::new(0));
    let shed = Arc::new(AtomicU64::new(0));
    let deadlined = Arc::new(AtomicU64::new(0));
    let cancelled = Arc::new(AtomicU64::new(0));
    // All readers submit in lockstep each iteration so the two-slot gate
    // is genuinely oversubscribed (6 submits race for 2 slots).
    let barrier = Arc::new(Barrier::new(READERS));
    std::thread::scope(|s| {
        for r in 0..READERS {
            let service = Arc::clone(&service);
            let barrier = Arc::clone(&barrier);
            let ok = Arc::clone(&ok);
            let shed = Arc::clone(&shed);
            let deadlined = Arc::clone(&deadlined);
            let cancelled = Arc::clone(&cancelled);
            s.spawn(move || {
                for i in 0..REQUESTS {
                    let seed = ((r * 53 + i * 7) % n) as NodeId;
                    // Offset by reader id so every class collides with
                    // every other class at the barrier.
                    let req = match (i + r) % 4 {
                        0 => QueryRequest::single(seed),
                        1 => {
                            let token = CancelToken::new();
                            token.cancel();
                            QueryRequest::single(seed).with_cancel(token)
                        }
                        2 => QueryRequest::single(seed)
                            .with_deadline(std::time::Duration::from_nanos(1)),
                        _ => QueryRequest::batch(vec![seed, (seed + 1) % n as NodeId]).top_k(4),
                    };
                    barrier.wait();
                    match service.submit(&req) {
                        Ok(resp) => {
                            assert!(resp.elapsed.as_nanos() > 0);
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(TpaError::Overloaded { .. }) => {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(TpaError::DeadlineExceeded { .. }) => {
                            deadlined.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(TpaError::Cancelled) => {
                            cancelled.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("inadmissible error under stress: {e}"),
                    }
                }
            });
        }
        // A writer publishes epochs under the readers' feet the whole
        // time; none of its batches may fail.
        let service = Arc::clone(&service);
        s.spawn(move || {
            for round in 0..ROUNDS {
                service.apply_updates(&stress_batch(round, n)).unwrap();
                std::thread::yield_now();
            }
        });
    });
    service.flush_compaction();

    // Exact accounting: the registry agrees with the client tally to
    // the last request, for every outcome class.
    let (ok, shed) = (ok.load(Ordering::Relaxed), shed.load(Ordering::Relaxed));
    let deadlined = deadlined.load(Ordering::Relaxed);
    let cancelled = cancelled.load(Ordering::Relaxed);
    assert_eq!(ok + shed + deadlined + cancelled, (READERS * REQUESTS) as u64);
    assert!(shed > 0, "6 racing submits against 2 slots must shed");
    assert!(deadlined > 0 && cancelled > 0, "abort classes must fire");
    let snap = service.metrics_snapshot().unwrap();
    assert_eq!(snap.requests.total, ok, "completed-request count drifted");
    assert_eq!(snap.requests.errors_total, shed + deadlined + cancelled);
    assert_eq!(snap.admission.shed_total, shed, "shed tally drifted");
    assert_eq!(snap.admission.deadline_exceeded, deadlined, "deadline tally drifted");
    assert_eq!(snap.admission.cancelled, cancelled, "cancel tally drifted");

    // The gate drained: nothing in flight, nothing queued, and every
    // aborted request released its slot.
    assert_eq!(snap.admission.inflight, 0, "gate leaked an in-flight slot");
    assert_eq!(snap.admission.queue_depth, 0, "gate leaked a queued waiter");

    // No observable state from aborted requests: the stressed service
    // answers bitwise like a quiet replay of the same update script.
    let quiet = ServiceBuilder::dynamic(DynamicGraph::new(g).with_compact_threshold(Some(1e-9)))
        .preprocess(TpaParams::new(4, 9))
        .build()
        .unwrap();
    for round in 0..ROUNDS {
        quiet.apply_updates(&stress_batch(round, n)).unwrap();
    }
    quiet.flush_compaction();
    assert_eq!(service.epoch(), quiet.epoch());
    for seed in [0 as NodeId, 17, 101, 249] {
        assert_eq!(
            service.submit(&QueryRequest::single(seed)).unwrap().result,
            quiet.submit(&QueryRequest::single(seed)).unwrap().result,
            "stressed service diverged at seed {seed}"
        );
    }

    // Pinned snapshots drop cleanly: the pre-stress epoch has been
    // superseded, so releasing our pin must free the last reference.
    drop(pinned);
    assert!(weak.upgrade().is_none(), "pre-stress snapshot leaked a reference");
}
