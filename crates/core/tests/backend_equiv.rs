//! Property tests: every propagation backend must produce **bit-identical**
//! scores for the same seeds — the invariant the `QueryEngine` relies on
//! to swap backends freely under a serving workload.
//!
//! Covered backends: sequential [`Transition`], [`ParallelTransition`]
//! (several worker counts), batched [`ScoreBlock`] lanes via `cpi_batch`,
//! and the out-of-core [`DiskGraph`].

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use tpa_core::batch::cpi_batch;
use tpa_core::offcore::DiskGraph;
use tpa_core::{
    cpi, CpiConfig, ParallelTransition, QueryEngine, SeedSet, TpaIndex, TpaParams, Transition,
};
use tpa_graph::gen::erdos_renyi_gnm;
use tpa_graph::{CsrGraph, NodeId};

fn random_graph(n: usize, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = (4 * n).min(n * (n - 1) / 2);
    erdos_renyi_gnm(n, m, &mut rng)
}

/// Distinct in-range seed nodes derived from a fraction vector.
fn seeds_from_fracs(n: usize, fracs: &[f64]) -> Vec<NodeId> {
    let mut seeds: Vec<NodeId> =
        fracs.iter().map(|f| ((n as f64 * f) as usize).min(n - 1) as NodeId).collect();
    seeds.sort_unstable();
    seeds.dedup();
    seeds
}

fn unique_tmp(tag: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("tpa-backend-equiv-{}-{tag}", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Full-convergence CPI is bit-identical across sequential, parallel
    /// (1/2/3/8 workers), and batched-lane execution.
    #[test]
    fn cpi_bitwise_identical_across_in_memory_backends(
        n in 5usize..80,
        gseed in 0u64..500,
        seed_frac in 0.0f64..1.0,
    ) {
        let g = random_graph(n, gseed);
        let cfg = CpiConfig::default();
        let seed = ((n as f64 * seed_frac) as usize).min(n - 1) as NodeId;
        let reference = cpi(&Transition::new(&g), &SeedSet::single(seed), &cfg, 0, None).scores;
        for threads in [1usize, 2, 3, 8] {
            let par = ParallelTransition::new(&g, threads);
            let scores = cpi(&par, &SeedSet::single(seed), &cfg, 0, None).scores;
            prop_assert_eq!(&scores, &reference, "threads = {}", threads);
        }
    }

    /// Batched lanes equal the corresponding single-seed runs, on both the
    /// sequential and the parallel fused block kernels.
    #[test]
    fn batched_lanes_bitwise_equal_singles(
        n in 8usize..80,
        gseed in 0u64..500,
        f1 in 0.0f64..1.0,
        f2 in 0.0f64..1.0,
        f3 in 0.0f64..1.0,
        window in 3usize..12,
        threads in 2usize..6,
    ) {
        let g = random_graph(n, gseed);
        let cfg = CpiConfig::default();
        let seeds = seeds_from_fracs(n, &[f1, f2, f3]);
        let singles: Vec<Vec<f64>> = seeds
            .iter()
            .map(|&s| cpi(&Transition::new(&g), &SeedSet::single(s), &cfg, 0, Some(window)).scores)
            .collect();
        let seq_block = cpi_batch(&Transition::new(&g), &seeds, &cfg, 0, Some(window));
        let par_block =
            cpi_batch(&ParallelTransition::new(&g, threads), &seeds, &cfg, 0, Some(window));
        for (j, single) in singles.iter().enumerate() {
            prop_assert_eq!(&seq_block.lane(j), single, "sequential lane {}", j);
            prop_assert_eq!(&par_block.lane(j), single, "parallel lane {}", j);
        }
    }

    /// The out-of-core backend streams edges in the same gather order as
    /// the in-memory kernels, so even disk execution is bit-identical.
    #[test]
    fn disk_backend_bitwise_identical(
        n in 5usize..60,
        gseed in 0u64..300,
        seed_frac in 0.0f64..1.0,
    ) {
        let g = random_graph(n, gseed);
        let cfg = CpiConfig::default();
        let seed = ((n as f64 * seed_frac) as usize).min(n - 1) as NodeId;
        let path = unique_tmp(gseed ^ (n as u64) << 32);
        let disk = DiskGraph::create(&g, &path).unwrap();
        let mem = cpi(&Transition::new(&g), &SeedSet::single(seed), &cfg, 0, None).scores;
        let offcore = cpi(&disk, &SeedSet::single(seed), &cfg, 0, None).scores;
        let block = cpi_batch(&disk, &[seed, seed], &cfg, 0, None);
        let _ = std::fs::remove_file(&path);
        prop_assert_eq!(&offcore, &mem);
        prop_assert_eq!(&block.lane(0), &mem);
        prop_assert_eq!(&block.lane(1), &mem);
    }

    /// End to end: indexed engine queries are bit-identical across all
    /// three backends, batched or not.
    #[test]
    fn engine_serves_identical_answers_on_every_backend(
        n in 10usize..60,
        gseed in 0u64..300,
        f1 in 0.0f64..1.0,
        f2 in 0.0f64..1.0,
    ) {
        let g = random_graph(n, gseed);
        let index = std::sync::Arc::new(TpaIndex::preprocess(&g, TpaParams::new(4, 9)));
        let seeds = seeds_from_fracs(n, &[f1, f2]);
        let path = unique_tmp(0x0ff0 ^ gseed ^ (n as u64) << 24);
        let disk = DiskGraph::create(&g, &path).unwrap();

        let reference = QueryEngine::sequential(&g).with_index(index.clone());
        let singles: Vec<Vec<f64>> = seeds.iter().map(|&s| reference.query(s)).collect();
        for engine in [
            QueryEngine::parallel(&g, 3).with_index(index.clone()),
            QueryEngine::out_of_core(disk).with_index(index.clone()),
        ] {
            let batch = engine.query_batch(&seeds);
            prop_assert_eq!(&batch, &singles, "backend {}", engine.backend().name());
        }
        let _ = std::fs::remove_file(&path);
    }
}
