//! Deterministic chaos test for the resilience layer.
//!
//! Two replays of the same update/query script run side by side: a
//! *quiet* service and a *faulted* one armed with a seeded [`FaultPlan`]
//! (slow kernels, injected publish failures, poisoned background
//! compactions, reader stalls). The property under test: **every
//! response from the faulted run is either bit-identical to the quiet
//! run or an explicit typed error/degradation — never a silently wrong
//! answer.** Publish failures are injected before any overlay mutation,
//! so a retried batch is bitwise equivalent to one that never failed;
//! the test retries them and requires the two services to stay in
//! epoch lockstep throughout. CI runs this file in `--release`.

use std::time::Duration;
use tpa_core::{
    DegradationLevel, FaultPlan, QueryRequest, QueryResponse, RwrService, ServiceBuilder, TpaError,
    TpaParams,
};
use tpa_graph::gen::{lfr_lite, LfrConfig};
use tpa_graph::{CsrGraph, DynamicGraph, EdgeUpdate, NodeId};

fn test_graph(seed: u64, n: usize, m: usize) -> CsrGraph {
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    lfr_lite(LfrConfig { n, m, ..Default::default() }, &mut rng).graph
}

const ROUNDS: usize = 6;

/// The deterministic update batch for one round of the script.
fn round_updates(round: usize, n: usize) -> Vec<EdgeUpdate> {
    let n = n as NodeId;
    let r = round as NodeId;
    vec![
        EdgeUpdate::Insert((r * 13 + 1) % n, (r * 29 + 7) % n),
        EdgeUpdate::Insert((r * 17 + 3) % n, (r * 31 + 5) % n),
        EdgeUpdate::Delete((r * 13 + 1) % n, (r * 29 + 7) % n),
        EdgeUpdate::Insert((r * 7 + 11) % n, (r * 23 + 2) % n),
    ]
}

/// The deterministic query mix for one round: a scalar, a batch, an
/// ε-override, and a bounded top-k — every kernel family the service
/// dispatches to.
fn round_queries(round: usize, n: usize) -> Vec<QueryRequest> {
    let n = n as NodeId;
    let r = round as NodeId;
    vec![
        QueryRequest::single((r * 37 + 5) % n),
        QueryRequest::batch(vec![(r * 3) % n, (r * 5 + 1) % n, (r * 11 + 2) % n]).top_k(4),
        QueryRequest::single((r * 41 + 9) % n).with_epsilon(1e-6),
        QueryRequest::single((r * 43 + 4) % n).top_k(5).with_exact_bounds(),
    ]
}

/// One recorded outcome of the script, shorn of timing.
#[derive(Debug)]
enum Outcome {
    Ok { resp: QueryResponse },
    Err(TpaError),
}

/// Applies one round's updates, retrying injected publish failures
/// (they fire before any overlay mutation, so a retry is clean).
/// Returns how many injections were absorbed.
fn apply_with_retry(service: &RwrService, ups: &[EdgeUpdate]) -> u64 {
    let mut injected = 0;
    loop {
        match service.apply_updates(ups) {
            Ok(_) => return injected,
            Err(TpaError::Io(e)) => {
                assert!(e.to_string().contains("injected"), "unexpected io error: {e}");
                injected += 1;
            }
            Err(e) => panic!("unexpected publish error: {e}"),
        }
    }
}

/// Runs the full script on `service`; `stall` (the faulted run's plan)
/// injects deterministic reader stalls between submissions, exactly as
/// a chaos harness would around a real reader.
fn run_script(service: &RwrService, stall: Option<&FaultPlan>) -> (Vec<Outcome>, u64) {
    let n = service.n();
    let mut outcomes = Vec::new();
    let mut injected = 0;
    for round in 0..ROUNDS {
        injected += apply_with_retry(service, &round_updates(round, n));
        for req in round_queries(round, n) {
            if let Some(d) = stall.and_then(|f| f.reader_stall()) {
                std::thread::sleep(d);
            }
            match service.submit(&req) {
                Ok(resp) => outcomes.push(Outcome::Ok { resp }),
                Err(e) => outcomes.push(Outcome::Err(e)),
            }
        }
    }
    (outcomes, injected)
}

fn build(g: CsrGraph, fault: Option<FaultPlan>) -> RwrService {
    let mut b = ServiceBuilder::dynamic(DynamicGraph::new(g).with_compact_threshold(Some(0.005)))
        .preprocess(TpaParams::new(4, 9));
    if let Some(plan) = fault {
        b = b.fault_plan(plan);
    }
    b.build().unwrap()
}

/// The core property, swept over fault-plan seeds: faulted responses
/// are bit-identical to the quiet run or explicitly typed — and the
/// plan actually fired (a chaos test that injects nothing proves
/// nothing).
#[test]
fn faulted_run_is_bit_identical_or_explicit() {
    let g = test_graph(11, 250, 2000);
    let quiet = build(g.clone(), None);
    let (quiet_outcomes, quiet_injected) = run_script(&quiet, None);
    assert_eq!(quiet_injected, 0, "the quiet run must see no injections");

    let mut total_injected = 0;
    for plan_seed in [1u64, 42, 777] {
        let plan = FaultPlan::seeded(plan_seed)
            .slow_kernels(5, Duration::from_micros(200))
            .publish_failures(3)
            .compaction_panics(2)
            .reader_stalls(4, Duration::from_micros(100));
        let faulted = build(g.clone(), Some(plan));
        let stall_plan =
            FaultPlan::seeded(plan_seed ^ 0x5eed).reader_stalls(3, Duration::from_micros(150));
        let (outcomes, injected) = run_script(&faulted, Some(&stall_plan));
        total_injected += injected;

        // Publishes stayed in lockstep: same epochs, same graph.
        assert_eq!(faulted.epoch(), quiet.epoch(), "plan {plan_seed}: epochs diverged");
        assert_eq!(outcomes.len(), quiet_outcomes.len());
        for (i, (q, f)) in quiet_outcomes.iter().zip(&outcomes).enumerate() {
            let Outcome::Ok { resp: quiet_resp } = q else {
                panic!("quiet run failed at step {i}: {q:?}");
            };
            match f {
                Outcome::Ok { resp } => {
                    // No gate, no deadline: nothing may degrade, and an
                    // undegraded answer must be bitwise the quiet one.
                    assert_eq!(
                        resp.degradation,
                        DegradationLevel::None,
                        "plan {plan_seed}, step {i}: unexpected degradation"
                    );
                    assert_eq!(
                        resp.result, quiet_resp.result,
                        "plan {plan_seed}, step {i}: faulted answer diverged"
                    );
                    assert_eq!(resp.epoch, quiet_resp.epoch);
                }
                Outcome::Err(e) => {
                    // The only admissible failures are the explicit
                    // typed ones a caller can reason about.
                    assert!(
                        matches!(
                            e,
                            TpaError::DeadlineExceeded { .. }
                                | TpaError::Cancelled
                                | TpaError::Overloaded { .. }
                        ),
                        "plan {plan_seed}, step {i}: inadmissible error {e}"
                    );
                }
            }
        }
        // The faulted service recovers fully: reap any background work
        // and answer once more, still bit-identical.
        faulted.flush_compaction();
        let check = QueryRequest::single(17).top_k(5);
        assert_eq!(
            faulted.submit(&check).unwrap().result,
            quiet.submit(&check).unwrap().result,
            "plan {plan_seed}: post-recovery answer diverged"
        );
    }
    assert!(total_injected > 0, "no publish failure ever fired — the chaos plan is inert");
}

/// Deadline-carrying requests under injected slow kernels: each either
/// completes bit-identically or fails with the typed deadline error —
/// and an expired deadline never burns a full sweep (satellite: no
/// post-expiry completion).
#[test]
fn deadlines_under_slow_kernels_fail_typed_never_wrong() {
    let g = test_graph(19, 250, 2000);
    let quiet = build(g.clone(), None);
    let faulted = build(
        g,
        // Every query sleeps 30ms before the first guard check — far
        // past the 5ms budget below, so every faulted request must trip.
        Some(FaultPlan::seeded(7).slow_kernels(1, Duration::from_millis(30))),
    );
    let budget = Duration::from_millis(5);
    for seed in [3u32, 99, 200] {
        let req = QueryRequest::single(seed).top_k(4).with_deadline(budget);
        let quiet_resp = quiet.submit(&req).expect("quiet run is far under budget");
        let started = std::time::Instant::now();
        match faulted.submit(&req) {
            Err(TpaError::DeadlineExceeded { budget: b, elapsed }) => {
                assert_eq!(b, budget);
                assert!(elapsed >= budget);
                // The expired request aborted at the guard instead of
                // completing its sweep: it returns promptly after the
                // injected stall, nowhere near a full quiet-run sweep
                // past the deadline.
                assert!(
                    started.elapsed() < Duration::from_millis(300),
                    "expired request kept sweeping for {:?}",
                    started.elapsed()
                );
            }
            Ok(resp) => {
                // Tolerated only if somehow under budget — then it must
                // be the exact quiet answer.
                assert_eq!(resp.result, quiet_resp.result);
            }
            Err(e) => panic!("inadmissible error under deadline: {e}"),
        }
    }
}

/// The fault plan is deterministic: the same seed replays the same
/// injections (same retry count, same outcomes), a different seed
/// draws a different schedule.
#[test]
fn fault_schedule_replays_deterministically() {
    let g = test_graph(23, 200, 1600);
    let runs: Vec<(Vec<bool>, u64)> = [5u64, 5, 6]
        .iter()
        .map(|&s| {
            let plan = FaultPlan::seeded(s).publish_failures(2);
            let service = build(g.clone(), Some(plan));
            let (outcomes, injected) = run_script(&service, None);
            (outcomes.iter().map(|o| matches!(o, Outcome::Ok { .. })).collect(), injected)
        })
        .collect();
    assert_eq!(runs[0], runs[1], "same seed must replay identically");
    assert_ne!(
        runs[0].1, runs[2].1,
        "different seeds should draw different publish-failure schedules"
    );
}
