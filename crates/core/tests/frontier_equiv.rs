//! Property tests for the sparse-frontier layer's core invariant:
//! **every [`FrontierPolicy`] is bitwise identical to the dense flat
//! kernel, on every backend, for arbitrary graphs and seeds** — the
//! direction decision may only ever change latency, never a bit of
//! output. Covered surfaces:
//!
//! 1. `cpi_policy` across sequential / parallel / dynamic backends ×
//!    {Dense, Sparse, Auto} × single- and multi-seed sets × full and
//!    windowed (family-style) runs.
//! 2. Dynamic backends *after* update batches (dirty overlays), where
//!    the sparse path walks the merged out-view and materialized
//!    in-rows.
//! 3. Reordered engines (`with_reordering` × `with_frontier`): the
//!    permuted gather must stay bitwise stable under every policy.
//! 4. Tile policies × frontier policies: strip-mining and frontier
//!    scheduling compose without touching results.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use tpa_core::{
    cpi_policy, CpiConfig, FrontierPolicy, ParallelTransition, QueryEngine, SeedSet, TilePolicy,
    Transition,
};
use tpa_graph::gen::erdos_renyi_gnm;
use tpa_graph::{CsrGraph, DynamicGraph, EdgeUpdate, NodeId, ReorderStrategy};

fn random_graph(n: usize, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = (4 * n).min(n * (n - 1) / 2);
    erdos_renyi_gnm(n, m, &mut rng)
}

const POLICIES: [FrontierPolicy; 3] =
    [FrontierPolicy::Dense, FrontierPolicy::Sparse, FrontierPolicy::Auto];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Invariant 1: every policy × backend × window reproduces the
    /// dense sequential result bit for bit.
    #[test]
    fn policies_bitwise_identical_across_backends(
        n in 8usize..60,
        gseed in 0u64..500,
        seed_frac in 0.0f64..1.0,
        threads in 2usize..6,
        window in 0usize..2,
    ) {
        let g = random_graph(n, gseed);
        let seed = ((n as f64 * seed_frac) as usize).min(n - 1) as NodeId;
        let cfg = CpiConfig::default();
        let seeds = SeedSet::single(seed);
        let end = if window == 0 { None } else { Some(4) };
        let seq = Transition::new(&g);
        let reference = cpi_policy(&seq, &seeds, &cfg, 0, end, FrontierPolicy::Dense);
        let par = ParallelTransition::new(&g, threads);
        let dyn_t = tpa_core::DynamicTransition::new(DynamicGraph::new(g.clone()));
        for policy in POLICIES {
            for (name, run) in [
                ("seq", cpi_policy(&seq, &seeds, &cfg, 0, end, policy)),
                ("par", cpi_policy(&par, &seeds, &cfg, 0, end, policy)),
                ("dyn", cpi_policy(&dyn_t, &seeds, &cfg, 0, end, policy)),
            ] {
                prop_assert_eq!(&run.scores, &reference.scores,
                    "{} diverged under {}", name, policy.name());
                prop_assert_eq!(run.last_iteration, reference.last_iteration);
                prop_assert_eq!(run.final_residual.to_bits(), reference.final_residual.to_bits(),
                    "{} residual drifted under {}", name, policy.name());
                prop_assert_eq!(run.converged, reference.converged);
            }
        }
    }

    /// Invariant 1, multi-seed: arbitrary (possibly duplicated) seed
    /// sets take the sparse path through their deduplicated support.
    #[test]
    fn multi_seed_sets_agree_bitwise(
        n in 8usize..50,
        gseed in 0u64..300,
        s1 in 0u32..50,
        s2 in 0u32..50,
        s3 in 0u32..50,
    ) {
        let g = random_graph(n, gseed);
        let pick = |s: u32| s % n as u32;
        // Duplicates on purpose: support() must deduplicate.
        let seeds = SeedSet::set(vec![pick(s1), pick(s2), pick(s3), pick(s1)]);
        let cfg = CpiConfig::default();
        let t = Transition::new(&g);
        let dense = cpi_policy(&t, &seeds, &cfg, 0, None, FrontierPolicy::Dense);
        for policy in [FrontierPolicy::Sparse, FrontierPolicy::Auto] {
            let run = cpi_policy(&t, &seeds, &cfg, 0, None, policy);
            prop_assert_eq!(&run.scores, &dense.scores, "policy {}", policy.name());
        }
    }

    /// Invariant 2: post-update overlays (dirty merged rows) stay
    /// bitwise stable under every policy, sequential and threaded.
    #[test]
    fn dirty_dynamic_overlays_agree_bitwise(
        n in 12usize..50,
        gseed in 0u64..300,
        u in 0u32..50,
        v in 0u32..50,
        threads in 2usize..5,
    ) {
        let g = random_graph(n, gseed);
        let m = n as u32;
        let ups = [
            EdgeUpdate::Insert(u % m, v % m),
            EdgeUpdate::Insert(v % m, (u + 1) % m),
            EdgeUpdate::Delete(u % m, (v + 1) % m),
        ];
        let mut seq = tpa_core::DynamicTransition::new(
            DynamicGraph::new(g.clone()).with_compact_threshold(None),
        );
        seq.apply(&ups);
        let mut par = tpa_core::DynamicTransition::new(
            DynamicGraph::new(g.clone()).with_compact_threshold(None),
        )
        .with_threads(threads);
        par.apply(&ups);
        let cfg = CpiConfig::default();
        let seeds = SeedSet::single((u % m).min(n as u32 - 1));
        let dense = cpi_policy(&seq, &seeds, &cfg, 0, None, FrontierPolicy::Dense);
        for policy in POLICIES {
            prop_assert_eq!(
                &cpi_policy(&seq, &seeds, &cfg, 0, None, policy).scores,
                &dense.scores,
                "seq overlay, policy {}", policy.name()
            );
            prop_assert_eq!(
                &cpi_policy(&par, &seeds, &cfg, 0, None, policy).scores,
                &dense.scores,
                "par overlay, policy {}", policy.name()
            );
        }
    }

    /// Invariant 3: reordering and frontier scheduling compose — on the
    /// permuted graph every policy still matches that engine's dense
    /// answer bit for bit (including SlashBurn, the newest ordering).
    #[test]
    fn reordered_engines_agree_bitwise_under_every_policy(
        n in 8usize..50,
        gseed in 0u64..300,
        pick in 0usize..4,
        seed_frac in 0.0f64..1.0,
    ) {
        let g = random_graph(n, gseed);
        let strategy = ReorderStrategy::ALL[pick];
        let seed = ((n as f64 * seed_frac) as usize).min(n - 1) as NodeId;
        let dense = QueryEngine::sequential(&g)
            .with_reordering(strategy)
            .with_frontier(FrontierPolicy::Dense)
            .query(seed);
        for policy in [FrontierPolicy::Sparse, FrontierPolicy::Auto] {
            let seq = QueryEngine::sequential(&g)
                .with_reordering(strategy)
                .with_frontier(policy)
                .query(seed);
            prop_assert_eq!(&seq, &dense, "seq {} {}", strategy.name(), policy.name());
            let par = QueryEngine::parallel(&g, 3)
                .with_reordering(strategy)
                .with_frontier(policy)
                .query(seed);
            prop_assert_eq!(&par, &dense, "par {} {}", strategy.name(), policy.name());
            let dynamic = QueryEngine::dynamic(DynamicGraph::new(g.clone()))
                .with_reordering(strategy)
                .with_frontier(policy)
                .query(seed);
            prop_assert_eq!(&dynamic, &dense, "dyn {} {}", strategy.name(), policy.name());
        }
    }

    /// Invariant 4: tile × frontier policies compose bitwise.
    #[test]
    fn tiling_and_frontier_compose_bitwise(
        n in 8usize..50,
        gseed in 0u64..300,
        width in 1usize..120,
    ) {
        let g = random_graph(n, gseed);
        let cfg = CpiConfig::default();
        let seeds = SeedSet::single((n / 2) as NodeId);
        let flat = Transition::new(&g).with_tile_policy(TilePolicy::Flat);
        let reference = cpi_policy(&flat, &seeds, &cfg, 0, None, FrontierPolicy::Dense);
        let strip = Transition::new(&g).with_tile_policy(TilePolicy::Strip(width));
        for policy in POLICIES {
            prop_assert_eq!(
                &cpi_policy(&strip, &seeds, &cfg, 0, None, policy).scores,
                &reference.scores,
                "strip({}) under {}", width, policy.name()
            );
        }
    }
}
