//! Property tests for the bounded exact top-k path's core contract:
//! **an `exact_bounds` request returns exactly the same top-k set, in
//! exactly the same order (including id tie-breaks), as the dense
//! partial-selection path** — on every backend, under every frontier
//! policy, every tile width, every reordering, indexed or exact, and on
//! dirty dynamic overlays and patched epochs. The bounds may only ever
//! save work, never move a result.
//!
//! Scores are compared only where the contract pins them: a proof that
//! fires early reports lower-bound scores (within the residual tail of
//! the converged values), so set-and-order equality is the invariant;
//! lanes that fall through to the dense finish are additionally
//! bitwise.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use tpa_core::offcore::DiskGraph;
use tpa_core::{
    FrontierPolicy, QueryRequest, QueryResult, RwrService, ServiceBuilder, TilePolicy, TpaError,
    TpaParams,
};
use tpa_graph::gen::{erdos_renyi_gnm, star_graph};
use tpa_graph::{CsrGraph, DynamicGraph, EdgeUpdate, NodeId, ReorderStrategy};

fn random_graph(n: usize, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = (4 * n).min(n * (n - 1) / 2);
    erdos_renyi_gnm(n, m, &mut rng)
}

/// The three k regimes the issue pins: a single winner, a mid cut, and
/// the full ranking.
fn pick_k(n: usize, which: usize) -> usize {
    match which {
        0 => 1,
        1 => 20.min(n),
        _ => n,
    }
}

fn ids(cut: &[(NodeId, f64)]) -> Vec<NodeId> {
    cut.iter().map(|&(id, _)| id).collect()
}

/// Runs `seed`'s top-k twice on `service` — densely and with bounds —
/// and asserts the set-and-order contract plus guarantee sanity.
fn assert_bounded_matches(service: &RwrService, seed: NodeId, k: usize, ctx: &str) {
    let dense = service.submit(&QueryRequest::single(seed).top_k(k)).expect("dense");
    let bounded =
        service.submit(&QueryRequest::single(seed).top_k(k).with_exact_bounds()).expect("bounded");
    let g = bounded.topk.expect("exact_bounds responses carry a guarantee");
    assert!(g.proven_exact, "{ctx}: guarantee not proven");
    assert!(!g.fallback_dense, "{ctx}: unexpected dense fallback");
    let dense_cut = dense.result.into_ranked().pop().unwrap();
    let bounded_cut = bounded.result.into_ranked().pop().unwrap();
    assert_eq!(
        ids(&bounded_cut),
        ids(&dense_cut),
        "{ctx} k={k} seed={seed}: set or tie order diverged"
    );
}

const POLICIES: [FrontierPolicy; 3] =
    [FrontierPolicy::Dense, FrontierPolicy::Sparse, FrontierPolicy::Auto];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sequential, parallel, and dynamic services all hold the contract
    /// for every k regime, exact and indexed.
    #[test]
    fn bounded_cut_matches_dense_across_backends(
        n in 8usize..60,
        gseed in 0u64..500,
        seed_frac in 0.0f64..1.0,
        threads in 2usize..5,
        which_k in 0usize..3,
        indexed in 0usize..2,
    ) {
        let g = random_graph(n, gseed);
        let seed = ((n as f64 * seed_frac) as usize).min(n - 1) as NodeId;
        let k = pick_k(n, which_k);
        let with_index = |b: ServiceBuilder| {
            if indexed == 1 { b.preprocess(TpaParams::new(4, 9)) } else { b }
        };
        for (name, service) in [
            ("seq", with_index(ServiceBuilder::in_memory(g.clone())).build().unwrap()),
            ("par", with_index(ServiceBuilder::in_memory(g.clone()).threads(threads))
                .build().unwrap()),
            ("dyn", with_index(ServiceBuilder::dynamic(DynamicGraph::new(g.clone())))
                .build().unwrap()),
        ] {
            assert_bounded_matches(&service, seed, k, name);
        }
    }

    /// Frontier policies and tile widths may reschedule the sweep the
    /// bounds ride, never move a result.
    #[test]
    fn frontier_policies_and_tiles_hold_the_contract(
        n in 8usize..50,
        gseed in 0u64..300,
        seed_frac in 0.0f64..1.0,
        width in 1usize..120,
        which_k in 0usize..3,
    ) {
        let g = random_graph(n, gseed);
        let seed = ((n as f64 * seed_frac) as usize).min(n - 1) as NodeId;
        let k = pick_k(n, which_k);
        for policy in POLICIES {
            let service = ServiceBuilder::in_memory(g.clone())
                .frontier(policy)
                .tile_policy(TilePolicy::Strip(width))
                .build()
                .unwrap();
            assert_bounded_matches(&service, seed, k, policy.name());
        }
    }

    /// Reordered services answer in caller id space; the bounded path
    /// must map its proven candidates through the same permutation.
    #[test]
    fn reordered_services_hold_the_contract(
        n in 8usize..50,
        gseed in 0u64..300,
        pick in 0usize..4,
        seed_frac in 0.0f64..1.0,
        which_k in 0usize..3,
    ) {
        let g = random_graph(n, gseed);
        let strategy = ReorderStrategy::ALL[pick];
        let seed = ((n as f64 * seed_frac) as usize).min(n - 1) as NodeId;
        let k = pick_k(n, which_k);
        let plain = ServiceBuilder::in_memory(g.clone()).build().unwrap();
        let reordered = ServiceBuilder::in_memory(g).reordering(strategy).build().unwrap();
        assert_bounded_matches(&reordered, seed, k, strategy.name());
        // And the reordered bounded cut equals the unreordered dense cut
        // outright: permutation is invisible end to end.
        let a = plain.submit(&QueryRequest::single(seed).top_k(k)).unwrap();
        let b = reordered
            .submit(&QueryRequest::single(seed).top_k(k).with_exact_bounds())
            .unwrap();
        prop_assert_eq!(
            ids(&b.result.into_ranked().pop().unwrap()),
            ids(&a.result.into_ranked().pop().unwrap())
        );
    }

    /// Dirty overlays and patched epochs: after update batches the
    /// dynamic service serves a [`tpa_core::PatchedTransition`]; the
    /// bounded sweep rides it natively.
    #[test]
    fn dirty_overlays_and_patched_epochs_hold_the_contract(
        n in 12usize..50,
        gseed in 0u64..300,
        u in 0u32..50,
        v in 0u32..50,
        which_k in 0usize..3,
    ) {
        let g = random_graph(n, gseed);
        let m = n as u32;
        let service = ServiceBuilder::dynamic(
            DynamicGraph::new(g).with_compact_threshold(None),
        )
        .build()
        .unwrap();
        service
            .apply_updates(&[
                EdgeUpdate::Insert(u % m, v % m),
                EdgeUpdate::Insert(v % m, (u + 1) % m),
                EdgeUpdate::Delete(u % m, (v + 1) % m),
            ])
            .expect("apply");
        prop_assert!(service.epoch() > 0, "updates must publish a patched epoch");
        let seed = (u % m).min(m - 1);
        assert_bounded_matches(&service, seed, pick_k(n, which_k), "patched");
    }

    /// Batched requests run one bounded sweep per lane and aggregate
    /// the guarantee; every lane must match its dense counterpart.
    #[test]
    fn batched_bounded_requests_hold_the_contract(
        n in 8usize..50,
        gseed in 0u64..300,
        f1 in 0.0f64..1.0,
        f2 in 0.0f64..1.0,
        f3 in 0.0f64..1.0,
        which_k in 0usize..3,
    ) {
        let g = random_graph(n, gseed);
        let pick = |f: f64| ((n as f64 * f) as usize).min(n - 1) as NodeId;
        let seeds = vec![pick(f1), pick(f2), pick(f3)];
        let k = pick_k(n, which_k);
        let service = ServiceBuilder::in_memory(g).build().unwrap();
        let dense = service.submit(&QueryRequest::batch(seeds.clone()).top_k(k)).unwrap();
        let bounded = service
            .submit(&QueryRequest::batch(seeds).top_k(k).with_exact_bounds())
            .unwrap();
        let guar = bounded.topk.expect("guarantee present");
        prop_assert!(guar.proven_exact && !guar.fallback_dense);
        let dense_cuts = dense.result.into_ranked();
        let bounded_cuts = bounded.result.into_ranked();
        prop_assert_eq!(bounded_cuts.len(), dense_cuts.len());
        for (b, d) in bounded_cuts.iter().zip(&dense_cuts) {
            prop_assert_eq!(ids(b), ids(d));
        }
    }
}

/// Exact score ties (structural symmetry) can never be proven separated
/// — the sweep must run to its natural end and fall into the dense
/// finish, whose id tie-break is the caller-visible contract.
#[test]
fn exact_ties_fall_through_to_the_dense_tie_break() {
    // Star: seeding the center ties all 9 spokes at the same score, so
    // any k cutting through the spokes has an unprovable boundary.
    let service = ServiceBuilder::in_memory(star_graph(10)).build().unwrap();
    for k in [2usize, 5, 9] {
        let dense = service.submit(&QueryRequest::single(0).top_k(k)).unwrap();
        let bounded =
            service.submit(&QueryRequest::single(0).top_k(k).with_exact_bounds()).unwrap();
        let g = bounded.topk.unwrap();
        assert!(g.proven_exact, "converged dense finish is exact");
        assert!(!g.early_terminated, "a tied boundary must not fake a proof (k={k})");
        assert_eq!(
            bounded.result.into_ranked().pop().unwrap(),
            dense.result.into_ranked().pop().unwrap(),
            "dense fall-through is bitwise, k={k}"
        );
    }
}

/// On a well-separated graph the proof actually fires early and the
/// guarantee reports the saved work.
#[test]
fn separated_scores_terminate_early() {
    let mut rng = StdRng::seed_from_u64(7);
    let g = erdos_renyi_gnm(500, 2500, &mut rng);
    let service = ServiceBuilder::in_memory(g).build().unwrap();
    let dense = service.submit(&QueryRequest::single(3).top_k(5)).unwrap();
    let bounded = service.submit(&QueryRequest::single(3).top_k(5).with_exact_bounds()).unwrap();
    let g = bounded.topk.unwrap();
    assert!(g.proven_exact && !g.fallback_dense);
    assert!(g.early_terminated, "top-5 of a 500-node ER graph should separate early: {g:?}");
    assert!(g.iterations_saved > 0);
    assert!(g.pruned_nodes >= 495, "a fired proof prunes everyone outside the cut: {g:?}");
    assert!(
        bounded.iterations < dense.iterations,
        "bounded sweep must stop before the dense one ({:?} vs {:?})",
        bounded.iterations,
        dense.iterations
    );
    assert_eq!(
        ids(&bounded.result.into_ranked().pop().unwrap()),
        ids(&dense.result.into_ranked().pop().unwrap())
    );
}

/// The out-of-core backend can't carry bounds through its disk stream:
/// the request still succeeds, densely, and says so in the guarantee.
#[test]
fn out_of_core_falls_back_densely() {
    let g = random_graph(40, 11);
    let path = std::env::temp_dir().join("tpa-topk-equiv-offcore.bin");
    let disk = DiskGraph::create(&g, &path).unwrap();
    let service = ServiceBuilder::out_of_core(disk).build().unwrap();
    let dense = service.submit(&QueryRequest::single(3).top_k(5)).unwrap();
    let bounded = service.submit(&QueryRequest::single(3).top_k(5).with_exact_bounds()).unwrap();
    let _ = std::fs::remove_file(&path);
    let g = bounded.topk.unwrap();
    assert!(g.fallback_dense, "out-of-core must report the dense fallback");
    assert!(g.proven_exact, "the dense cut is still exact");
    assert!(!g.early_terminated);
    assert_eq!(
        bounded.result.into_ranked().pop().unwrap(),
        dense.result.into_ranked().pop().unwrap(),
        "fallback is bitwise dense"
    );
}

/// Admission: k is validated on every ranked request, and exact bounds
/// without a top-k cut are meaningless.
#[test]
fn admission_validates_k_and_bounds() {
    let service = ServiceBuilder::in_memory(random_graph(20, 3)).build().unwrap();
    let err = service.submit(&QueryRequest::single(0).top_k(0)).unwrap_err();
    assert!(matches!(err, TpaError::InvalidConfig(_)), "{err:?}");
    let err = service.submit(&QueryRequest::single(0).top_k(21)).unwrap_err();
    assert!(matches!(err, TpaError::InvalidConfig(_)), "{err:?}");
    let err = service.submit(&QueryRequest::single(0).with_exact_bounds()).unwrap_err();
    assert!(matches!(err, TpaError::InvalidConfig(_)), "{err:?}");
    // Full-graph k is fine, and an empty bounded batch is trivially
    // proven.
    assert!(service.submit(&QueryRequest::single(0).top_k(20)).is_ok());
    let resp = service
        .submit(&QueryRequest::batch(Vec::<NodeId>::new()).top_k(5).with_exact_bounds())
        .unwrap();
    assert!(matches!(resp.result, QueryResult::Ranked(ref r) if r.is_empty()));
    assert!(resp.topk.unwrap().proven_exact);
}
