//! Multi-threaded propagation backend.
//!
//! The gather kernel is embarrassingly parallel over *destination* nodes:
//! each thread owns a contiguous slice of `y` and reads shared `x`, so the
//! result is bit-identical to the sequential kernel (no atomics, no
//! reduction reordering). Thread ranges are balanced by in-edge count, not
//! node count, because power-law graphs concentrate edges on few nodes.

use crate::batch::ScoreBlock;
use crate::Propagator;
use tpa_graph::{CsrGraph, NodeId};

/// Parallel version of [`crate::Transition`].
pub struct ParallelTransition<'g> {
    graph: &'g CsrGraph,
    inv_out_deg: Vec<f64>,
    /// Destination ranges, one per worker, balanced by in-edge count.
    ranges: Vec<(u32, u32)>,
}

impl<'g> ParallelTransition<'g> {
    /// Binds the operator with `threads` workers. The worker count is
    /// clamped to `[1, n]` — a range per worker is only useful while
    /// there are nodes to hand out — and every range is non-empty by
    /// construction: edge-balanced splits are nudged so each worker owns
    /// at least one node, and an edgeless graph falls back to plain
    /// node-count balancing.
    pub fn new(graph: &'g CsrGraph, threads: usize) -> Self {
        let n = graph.n();
        let m = graph.m();
        let threads = threads.clamp(1, n.max(1));
        let in_offsets = graph.in_offsets();
        let mut ranges = Vec::with_capacity(threads);
        let mut start = 0usize;
        for w in 0..threads {
            let end = if w + 1 == threads {
                n
            } else if m == 0 {
                // No edges to balance: split nodes evenly.
                n * (w + 1) / threads
            } else {
                // First node boundary at or past this worker's edge share,
                // clamped so this range and every later one stay non-empty.
                let target = (m * (w + 1)).div_ceil(threads);
                let mut end = start;
                while end < n && in_offsets[end + 1] <= target {
                    end += 1;
                }
                end.max(start + 1).min(n - (threads - w - 1))
            };
            ranges.push((start as u32, end as u32));
            start = end;
        }
        Self { graph, inv_out_deg: graph.inv_out_degrees(), ranges }
    }

    /// Default worker count: available parallelism.
    pub fn with_default_threads(graph: &'g CsrGraph) -> Self {
        let threads = std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1);
        Self::new(graph, threads)
    }

    /// Number of worker ranges.
    pub fn threads(&self) -> usize {
        self.ranges.len()
    }
}

impl Propagator for ParallelTransition<'_> {
    fn n(&self) -> usize {
        self.graph.n()
    }

    fn propagate_into(&self, coeff: f64, x: &[f64], y: &mut [f64]) {
        let n = self.graph.n();
        assert_eq!(x.len(), n);
        assert_eq!(y.len(), n);
        if self.ranges.len() == 1 {
            // Sequential fast path.
            gather_range(self.graph, &self.inv_out_deg, coeff, x, y, 0, n as u32);
            return;
        }
        // Split y into per-worker disjoint slices matching `ranges`.
        let mut slices: Vec<&mut [f64]> = Vec::with_capacity(self.ranges.len());
        let mut rest = y;
        let mut cursor = 0u32;
        for &(start, end) in &self.ranges {
            debug_assert_eq!(start, cursor);
            let (head, tail) = rest.split_at_mut((end - start) as usize);
            slices.push(head);
            rest = tail;
            cursor = end;
        }
        std::thread::scope(|scope| {
            for (slice, &(start, end)) in slices.into_iter().zip(&self.ranges) {
                let graph = self.graph;
                let inv = &self.inv_out_deg;
                scope.spawn(move || {
                    gather_range_into(graph, inv, coeff, x, slice, start, end);
                });
            }
        });
    }

    /// Fused parallel block kernel: each worker owns a contiguous band of
    /// destination *rows* (`lanes` floats per node), so the split is the
    /// same disjoint-write scheme as the scalar path — bit-identical to
    /// the sequential block kernel, no atomics.
    fn propagate_block_into(&self, coeff: f64, x: &ScoreBlock, y: &mut ScoreBlock) {
        let n = self.graph.n();
        assert_eq!(x.n(), n, "input block height mismatch");
        assert_eq!(y.n(), n, "output block height mismatch");
        assert_eq!(x.lanes(), y.lanes(), "lane count mismatch");
        let lanes = x.lanes();
        if self.ranges.len() == 1 {
            crate::batch::block_gather(self.graph, &self.inv_out_deg, coeff, x, y);
            return;
        }
        let mut slices: Vec<&mut [f64]> = Vec::with_capacity(self.ranges.len());
        let mut rest = y.data_mut();
        for &(start, end) in &self.ranges {
            let (head, tail) = rest.split_at_mut((end - start) as usize * lanes);
            slices.push(head);
            rest = tail;
        }
        std::thread::scope(|scope| {
            for (slice, &(start, end)) in slices.into_iter().zip(&self.ranges) {
                let graph = self.graph;
                let inv = &self.inv_out_deg;
                scope.spawn(move || {
                    crate::batch::block_gather_range(graph, inv, coeff, x, slice, start, end);
                });
            }
        });
    }
}

/// Gather into `y[start..end]` where `y` is the full-length buffer.
fn gather_range(
    graph: &CsrGraph,
    inv: &[f64],
    coeff: f64,
    x: &[f64],
    y: &mut [f64],
    start: u32,
    end: u32,
) {
    for v in start..end {
        let mut acc = 0.0;
        for &u in graph.in_neighbors(v) {
            acc += x[u as usize] * inv[u as usize];
        }
        y[v as usize] = coeff * acc;
    }
}

/// Gather into a slice that *starts* at node `start` (offset-local writes).
fn gather_range_into(
    graph: &CsrGraph,
    inv: &[f64],
    coeff: f64,
    x: &[f64],
    y_local: &mut [f64],
    start: u32,
    end: u32,
) {
    for v in start..end {
        let mut acc = 0.0;
        for &u in graph.in_neighbors(v as NodeId) {
            acc += x[u as usize] * inv[u as usize];
        }
        y_local[(v - start) as usize] = coeff * acc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cpi, CpiConfig, SeedSet, Transition};
    use tpa_graph::gen::{lfr_lite, LfrConfig};

    fn test_graph() -> CsrGraph {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(83);
        lfr_lite(LfrConfig { n: 500, m: 4000, ..Default::default() }, &mut rng).graph
    }

    #[test]
    fn matches_sequential_bitwise() {
        let g = test_graph();
        let seq = Transition::new(&g);
        for threads in [1usize, 2, 3, 8] {
            let par = ParallelTransition::new(&g, threads);
            let x: Vec<f64> = (0..g.n()).map(|i| (i % 13) as f64 / 13.0).collect();
            let mut y_seq = vec![0.0; g.n()];
            let mut y_par = vec![0.0; g.n()];
            seq.propagate_into(0.85, &x, &mut y_seq);
            par.propagate_into(0.85, &x, &mut y_par);
            assert_eq!(y_seq, y_par, "threads = {threads}");
        }
    }

    #[test]
    fn cpi_identical_through_parallel_backend() {
        let g = test_graph();
        let seq = Transition::new(&g);
        let par = ParallelTransition::new(&g, 4);
        let cfg = CpiConfig::default();
        let a = cpi(&seq, &SeedSet::single(3), &cfg, 0, None).scores;
        let b = cpi(&par, &SeedSet::single(3), &cfg, 0, None).scores;
        assert_eq!(a, b);
    }

    #[test]
    fn ranges_cover_all_nodes_disjointly() {
        let g = test_graph();
        for threads in [1usize, 2, 5, 16, 1000] {
            let par = ParallelTransition::new(&g, threads);
            let mut covered = 0u32;
            for &(start, end) in &par.ranges {
                assert_eq!(start, covered);
                covered = end;
            }
            assert_eq!(covered as usize, g.n());
        }
    }

    #[test]
    fn more_threads_than_nodes_is_fine() {
        let g = tpa_graph::gen::cycle_graph(3);
        let par = ParallelTransition::new(&g, 64);
        let x = vec![1.0 / 3.0; 3];
        let mut y = vec![0.0; 3];
        par.propagate_into(1.0, &x, &mut y);
        let total: f64 = y.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}
