//! Multi-threaded propagation backend.
//!
//! The gather kernel is embarrassingly parallel over *destination* nodes:
//! each thread owns a contiguous slice of `y` and reads shared `x`, so the
//! result is bit-identical to the sequential kernel (no atomics, no
//! reduction reordering). Thread ranges are balanced by in-edge count, not
//! node count, because power-law graphs concentrate edges on few nodes.
//! Within its range each worker runs the same flat-or-strip-mined kernels
//! as the sequential backend (see [`crate::tiling`]), so cache blocking
//! and parallelism compose.

use crate::batch::ScoreBlock;
use crate::frontier::{self, FrontierScratch, FrontierStep, FrontierWork};
use crate::tiling::{self, TilePolicy};
use crate::transition::{dense_frontier_fallback, GraphHandle};
use crate::Propagator;
use std::sync::Arc;
use tpa_graph::{CsrGraph, NodeId};

/// Parallel version of [`crate::Transition`].
pub struct ParallelTransition<'g> {
    graph: GraphHandle<'g>,
    inv_out_deg: Vec<f64>,
    /// Destination ranges, one per worker, balanced by in-edge count.
    ranges: Vec<(u32, u32)>,
    tile: TilePolicy,
    /// Memoized sampled `Auto` tile decisions (the graph is immutable
    /// for this backend's lifetime).
    strips: tiling::StripCache,
}

impl std::fmt::Debug for ParallelTransition<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelTransition")
            .field("threads", &self.ranges.len())
            .finish_non_exhaustive()
    }
}

impl<'g> ParallelTransition<'g> {
    /// Binds the operator with `threads` workers. The worker count is
    /// clamped to `[1, n]` — a range per worker is only useful while
    /// there are nodes to hand out — and every range is non-empty by
    /// construction (see [`crate::tiling`]'s range balancing).
    pub fn new(graph: &'g CsrGraph, threads: usize) -> Self {
        Self::from_handle(GraphHandle::Borrowed(graph), threads)
    }

    /// Binds the operator to a shared-ownership graph (used by reordered
    /// engines, which own the permuted graph they serve).
    pub fn shared(graph: Arc<CsrGraph>, threads: usize) -> ParallelTransition<'static> {
        ParallelTransition::from_handle(GraphHandle::Shared(graph), threads)
    }

    fn from_handle(graph: GraphHandle<'_>, threads: usize) -> ParallelTransition<'_> {
        let g = graph.get();
        let ranges = tiling::balance_ranges(g.in_offsets(), threads);
        let inv_out_deg = g.inv_out_degrees();
        ParallelTransition {
            graph,
            inv_out_deg,
            ranges,
            tile: TilePolicy::Auto,
            strips: tiling::StripCache::new(),
        }
    }

    /// Default worker count: available parallelism.
    pub fn with_default_threads(graph: &'g CsrGraph) -> Self {
        let threads = std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1);
        Self::new(graph, threads)
    }

    /// Overrides the cache-blocking policy (default: the
    /// [`TilePolicy::Auto`] cost model). Any policy stays bit-identical.
    pub fn with_tile_policy(mut self, tile: TilePolicy) -> Self {
        self.tile = tile;
        self
    }

    /// The underlying graph.
    #[inline]
    pub fn graph(&self) -> &CsrGraph {
        self.graph.get()
    }

    /// Number of worker ranges.
    pub fn threads(&self) -> usize {
        self.ranges.len()
    }

    #[cfg(test)]
    pub(crate) fn ranges(&self) -> &[(u32, u32)] {
        &self.ranges
    }
}

impl Propagator for ParallelTransition<'_> {
    fn n(&self) -> usize {
        self.graph.get().n()
    }

    fn propagate_into(&self, coeff: f64, x: &[f64], y: &mut [f64]) {
        let g = self.graph.get();
        let n = g.n();
        assert_eq!(x.len(), n);
        assert_eq!(y.len(), n);
        let strip = self.strips.resolve(self.tile, g, n, g.m(), 1);
        if self.ranges.len() == 1 {
            // Sequential fast path.
            tiling::gather_range(g, &self.inv_out_deg, coeff, x, y, 0..n as NodeId, strip);
            return;
        }
        let inv = &self.inv_out_deg;
        tiling::par_ranges(&self.ranges, 1, y, |slice, start, end| {
            tiling::gather_range(g, inv, coeff, x, slice, start..end, strip);
        });
    }

    /// Fused-residual step with the `O(n)` fold parallelized: each
    /// worker propagates its block-aligned band and folds its own
    /// per-`NORM_BLOCK` partials over the just-written (cache-warm)
    /// slice; the calling thread folds the partials ascending. That
    /// two-level chain is the blocked-canonical association every
    /// backend's residual uses, so the result is bitwise identical to
    /// the sequential backends and every backend makes the same
    /// convergence decision. Graphs too small for block-aligned ranges
    /// propagate and pay one sequential blocked scan instead.
    fn propagate_into_norm(&self, coeff: f64, x: &[f64], y: &mut [f64]) -> f64 {
        let g = self.graph.get();
        let n = g.n();
        assert_eq!(x.len(), n);
        assert_eq!(y.len(), n);
        let strip = self.strips.resolve(self.tile, g, n, g.m(), 1);
        if self.ranges.len() == 1 {
            return tiling::gather_range(g, &self.inv_out_deg, coeff, x, y, 0..n as NodeId, strip);
        }
        let inv = &self.inv_out_deg;
        if tiling::ranges_block_aligned(&self.ranges) {
            return tiling::par_ranges_norm(&self.ranges, y, |slice, start, end| {
                tiling::gather_range(g, inv, coeff, x, slice, start..end, strip);
            });
        }
        self.propagate_into(coeff, x, y);
        tiling::blocked_norm(y)
    }

    fn frontier_work(&self, active: &[NodeId]) -> Option<FrontierWork> {
        let g = self.graph.get();
        Some(FrontierWork {
            frontier_edges: frontier::frontier_out_edges(g, active),
            total_edges: g.m(),
        })
    }

    /// Sparse-frontier step with the reachable set split over the same
    /// destination ranges as the dense kernels: each worker gathers the
    /// reachable nodes inside its band (disjoint writes), and the
    /// residual/next-frontier fold runs ascending on the calling thread
    /// — bit-identical to the sequential backend's step.
    fn propagate_frontier(
        &self,
        coeff: f64,
        x: &[f64],
        y: &mut [f64],
        active: &[NodeId],
        scratch: &mut FrontierScratch,
    ) -> FrontierStep {
        let g = self.graph.get();
        let n = g.n();
        assert_eq!(x.len(), n);
        assert_eq!(y.len(), n);
        match frontier::sparse_step_ranged(
            g,
            g,
            &self.inv_out_deg,
            coeff,
            x,
            y,
            active,
            g.m(),
            &self.ranges,
            scratch,
        ) {
            Some(step) => step,
            None => dense_frontier_fallback(self, coeff, x, y, scratch),
        }
    }

    /// Fused parallel block kernel: each worker owns a contiguous band of
    /// destination *rows* (`lanes` floats per node), so the split is the
    /// same disjoint-write scheme as the scalar path — bit-identical to
    /// the sequential block kernel, no atomics.
    fn propagate_block_into(&self, coeff: f64, x: &ScoreBlock, y: &mut ScoreBlock) {
        let g = self.graph.get();
        let n = g.n();
        assert_eq!(x.n(), n, "input block height mismatch");
        assert_eq!(y.n(), n, "output block height mismatch");
        assert_eq!(x.lanes(), y.lanes(), "lane count mismatch");
        let lanes = x.lanes();
        let strip = self.strips.resolve(self.tile, g, n, g.m(), lanes);
        if self.ranges.len() == 1 {
            tiling::block_gather_range(
                g,
                &self.inv_out_deg,
                coeff,
                x,
                y.data_mut(),
                0..n as NodeId,
                strip,
            );
            return;
        }
        let inv = &self.inv_out_deg;
        tiling::par_ranges(&self.ranges, lanes, y.data_mut(), |slice, start, end| {
            tiling::block_gather_range(g, inv, coeff, x, slice, start..end, strip)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cpi, CpiConfig, SeedSet, Transition};
    use tpa_graph::gen::{lfr_lite, LfrConfig};

    fn test_graph() -> CsrGraph {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(83);
        lfr_lite(LfrConfig { n: 500, m: 4000, ..Default::default() }, &mut rng).graph
    }

    #[test]
    fn matches_sequential_bitwise() {
        let g = test_graph();
        let seq = Transition::new(&g);
        for threads in [1usize, 2, 3, 8] {
            let par = ParallelTransition::new(&g, threads);
            let x: Vec<f64> = (0..g.n()).map(|i| (i % 13) as f64 / 13.0).collect();
            let mut y_seq = vec![0.0; g.n()];
            let mut y_par = vec![0.0; g.n()];
            seq.propagate_into(0.85, &x, &mut y_seq);
            par.propagate_into(0.85, &x, &mut y_par);
            assert_eq!(y_seq, y_par, "threads = {threads}");
        }
    }

    #[test]
    fn strip_mining_is_bitwise_invisible_across_threads() {
        let g = test_graph();
        let flat = ParallelTransition::new(&g, 3).with_tile_policy(TilePolicy::Flat);
        let strip = ParallelTransition::new(&g, 3).with_tile_policy(TilePolicy::Strip(37));
        let x: Vec<f64> = (0..g.n()).map(|i| (i % 7) as f64 / 7.0).collect();
        let mut y_flat = vec![0.0; g.n()];
        let mut y_strip = vec![0.0; g.n()];
        flat.propagate_into(0.85, &x, &mut y_flat);
        strip.propagate_into(0.85, &x, &mut y_strip);
        assert_eq!(y_flat, y_strip);
    }

    #[test]
    fn cpi_identical_through_parallel_backend() {
        let g = test_graph();
        let seq = Transition::new(&g);
        let par = ParallelTransition::new(&g, 4);
        let cfg = CpiConfig::default();
        let a = cpi(&seq, &SeedSet::single(3), &cfg, 0, None).scores;
        let b = cpi(&par, &SeedSet::single(3), &cfg, 0, None).scores;
        assert_eq!(a, b);
    }

    #[test]
    fn ranges_cover_all_nodes_disjointly() {
        let g = test_graph();
        for threads in [1usize, 2, 5, 16, 1000] {
            let par = ParallelTransition::new(&g, threads);
            let mut covered = 0u32;
            for &(start, end) in par.ranges() {
                assert_eq!(start, covered);
                covered = end;
            }
            assert_eq!(covered as usize, g.n());
        }
    }

    #[test]
    fn large_reachable_sets_split_across_workers_bitwise() {
        // A 3000-way fan-out from one seed pushes the reachable set past
        // the parallel sparse path's spawn threshold, exercising the
        // range-partitioned gather (small property graphs never do).
        use crate::frontier::FrontierScratch;
        let n = 9001usize;
        // Fan-out 0 → 1..=3000 (the reachable set, in-degree 1 each),
        // plus dense unreachable filler among 3001..9000 so the
        // reachable in-edge count (3000) stays under the m/8 gather
        // guard.
        // The builder's default SelfLoop dangling policy gives every fan
        // target a second in-edge, so the reachable in-edge count is
        // 2 × 3000; nine filler edges per chain node keep that under the
        // m/8 gather budget.
        let mut edges: Vec<(u32, u32)> = (1..=3000u32).map(|v| (0, v)).collect();
        for v in 3001..9000u32 {
            for k in 1..=9u32 {
                edges.push((v, 3001 + (v - 3001 + k * 997) % 6000));
            }
        }
        let g = CsrGraph::from_edges(n, &edges);
        let x = {
            let mut x = vec![0.0; n];
            x[0] = 1.0;
            x
        };
        let seq = Transition::new(&g);
        let mut dense = vec![0.0; n];
        seq.propagate_into(0.85, &x, &mut dense);
        for threads in [2usize, 4] {
            let par = ParallelTransition::new(&g, threads);
            let mut y = vec![0.0; n];
            let mut scratch = FrontierScratch::new(n);
            let step = par.propagate_frontier(0.85, &x, &mut y, &[0], &mut scratch);
            assert!(!step.went_dense, "fan-out frontier must stay sparse");
            assert_eq!(y, dense, "threads = {threads}");
            assert_eq!(scratch.next_active().len(), 3000);
        }
    }

    #[test]
    fn parallel_residual_fold_matches_sequential_bitwise() {
        // n spans several NORM_BLOCKs, so the parallel backend really
        // folds per-worker partials — and must still return the exact
        // bits of the sequential fused fold (and of a full CPI run's
        // convergence decisions).
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(97);
        let g = lfr_lite(LfrConfig { n: 10_000, m: 60_000, ..Default::default() }, &mut rng).graph;
        let seq = Transition::new(&g);
        let x: Vec<f64> = (0..g.n()).map(|i| (i % 17) as f64 / 17.0).collect();
        let mut y_seq = vec![0.0; g.n()];
        let norm_seq = seq.propagate_into_norm(0.85, &x, &mut y_seq);
        for threads in [2usize, 3] {
            let par = ParallelTransition::new(&g, threads);
            assert!(par.ranges().len() > 1, "threads = {threads}");
            let mut y_par = vec![0.0; g.n()];
            let norm_par = par.propagate_into_norm(0.85, &x, &mut y_par);
            assert_eq!(y_seq, y_par, "threads = {threads}");
            assert_eq!(norm_seq.to_bits(), norm_par.to_bits(), "threads = {threads}");
            let a = cpi(&seq, &SeedSet::single(5), &CpiConfig::default(), 0, None);
            let b = cpi(&par, &SeedSet::single(5), &CpiConfig::default(), 0, None);
            assert_eq!(a.scores, b.scores);
            assert_eq!(a.last_iteration, b.last_iteration);
            assert_eq!(a.final_residual.to_bits(), b.final_residual.to_bits());
        }
    }

    #[test]
    fn more_threads_than_nodes_is_fine() {
        let g = tpa_graph::gen::cycle_graph(3);
        let par = ParallelTransition::new(&g, 64);
        let x = vec![1.0 / 3.0; 3];
        let mut y = vec![0.0; 3];
        par.propagate_into(1.0, &x, &mut y);
        let total: f64 = y.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}
