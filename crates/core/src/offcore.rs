//! Out-of-core (disk-based) RWR — the extension the paper's conclusion
//! names as future work: *"extending TPA into a disk-based RWR method to
//! handle huge, disk-resident graphs."*
//!
//! The CPI kernel only needs one sequential sweep over the edges per
//! iteration, plus two `O(n)` score vectors. [`DiskGraph`] therefore keeps
//! nothing but the out-degree array in memory and streams
//! destination-sorted edge records from disk on every propagation. Any CPI
//! consumer ([`crate::cpi`], [`crate::TpaIndex`] via
//! [`crate::TpaIndex::preprocess_on`]) runs unchanged on top of it through the
//! [`Propagator`] trait.

use crate::batch::ScoreBlock;
use crate::Propagator;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use tpa_graph::{CsrGraph, NodeId};

/// Magic prefix of the on-disk edge-stream format.
const MAGIC: &[u8; 8] = b"TPADISK1";
/// Edges per read chunk (64 Ki edges × 8 B = 512 KiB buffers).
const CHUNK_EDGES: usize = 64 * 1024;

/// A graph resident on disk: `O(n)` memory (degree array), edges streamed
/// per propagation pass.
pub struct DiskGraph {
    path: PathBuf,
    n: usize,
    m: usize,
    inv_out_deg: Vec<f64>,
}

impl std::fmt::Debug for DiskGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskGraph")
            .field("path", &self.path)
            .field("n", &self.n)
            .field("m", &self.m)
            .finish_non_exhaustive()
    }
}

impl DiskGraph {
    /// Converts an in-memory graph into the streaming format. Edges are
    /// written sorted by destination (gather order).
    pub fn create(graph: &CsrGraph, path: impl AsRef<Path>) -> io::Result<DiskGraph> {
        let path = path.as_ref().to_path_buf();
        let mut w = BufWriter::new(File::create(&path)?);
        w.write_all(MAGIC)?;
        w.write_all(&(graph.n() as u64).to_le_bytes())?;
        w.write_all(&(graph.m() as u64).to_le_bytes())?;
        for v in 0..graph.n() as NodeId {
            w.write_all(&(graph.out_degree(v) as u32).to_le_bytes())?;
        }
        // Destination-major order: iterate the transpose.
        for v in 0..graph.n() as NodeId {
            for &u in graph.in_neighbors(v) {
                w.write_all(&u.to_le_bytes())?;
                w.write_all(&v.to_le_bytes())?;
            }
        }
        w.flush()?;
        drop(w);
        Self::open(path)
    }

    /// Opens an existing disk graph, loading only the degree array.
    pub fn open(path: impl AsRef<Path>) -> io::Result<DiskGraph> {
        let path = path.as_ref().to_path_buf();
        let mut r = BufReader::new(File::open(&path)?);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad disk-graph magic"));
        }
        let mut u64buf = [0u8; 8];
        r.read_exact(&mut u64buf)?;
        let n = u64::from_le_bytes(u64buf) as usize;
        r.read_exact(&mut u64buf)?;
        let m = u64::from_le_bytes(u64buf) as usize;
        let mut inv_out_deg = Vec::with_capacity(n);
        let mut u32buf = [0u8; 4];
        for _ in 0..n {
            r.read_exact(&mut u32buf)?;
            let d = u32::from_le_bytes(u32buf);
            inv_out_deg.push(if d == 0 { 0.0 } else { 1.0 / d as f64 });
        }
        Ok(DiskGraph { path, n, m, inv_out_deg })
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges (on disk).
    pub fn m(&self) -> usize {
        self.m
    }

    /// In-memory footprint: the degree array only.
    pub fn memory_bytes(&self) -> usize {
        self.inv_out_deg.len() * 8
    }

    /// One streaming propagation pass; I/O errors are returned.
    pub fn try_propagate_into(&self, coeff: f64, x: &[f64], y: &mut [f64]) -> io::Result<()> {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        y.iter_mut().for_each(|v| *v = 0.0);
        self.stream_edges(|u, v| y[v] += x[u] * self.inv_out_deg[u])?;
        for v in y.iter_mut() {
            *v *= coeff;
        }
        Ok(())
    }

    /// One streaming *batched* propagation pass: a single sequential sweep
    /// over the edge file updates every lane of the block, amortizing the
    /// disk pass over the whole batch. Accumulation order per lane matches
    /// the in-memory kernels (edges are stored destination-major in
    /// in-neighbor order), so results are bit-identical.
    pub fn try_propagate_block_into(
        &self,
        coeff: f64,
        x: &ScoreBlock,
        y: &mut ScoreBlock,
    ) -> io::Result<()> {
        assert_eq!(x.n(), self.n, "input block height mismatch");
        assert_eq!(y.n(), self.n, "output block height mismatch");
        assert_eq!(x.lanes(), y.lanes(), "lane count mismatch");
        let lanes = x.lanes();
        let xd = x.data();
        let yd = y.data_mut();
        yd.iter_mut().for_each(|v| *v = 0.0);
        self.stream_edges(|u, v| {
            let w = self.inv_out_deg[u];
            if w == 0.0 {
                return;
            }
            let xrow = &xd[u * lanes..(u + 1) * lanes];
            let yrow = &mut yd[v * lanes..(v + 1) * lanes];
            for (yj, xj) in yrow.iter_mut().zip(xrow) {
                *yj += xj * w;
            }
        })?;
        for v in yd.iter_mut() {
            *v *= coeff;
        }
        Ok(())
    }

    /// Streams every `(source, destination)` edge record to `visit` in
    /// on-disk (destination-major) order.
    fn stream_edges(&self, mut visit: impl FnMut(usize, usize)) -> io::Result<()> {
        let mut r = BufReader::with_capacity(1 << 20, File::open(&self.path)?);
        // Skip header + degree array.
        let header = 8 + 8 + 8 + 4 * self.n as u64;
        io::copy(&mut (&mut r).take(header), &mut io::sink())?;

        let mut buf = vec![0u8; CHUNK_EDGES * 8];
        let mut remaining = self.m;
        while remaining > 0 {
            let take = remaining.min(CHUNK_EDGES);
            let bytes = take * 8;
            r.read_exact(&mut buf[..bytes])?;
            for rec in buf[..bytes].chunks_exact(8) {
                let u = u32::from_le_bytes(rec[0..4].try_into().unwrap()) as usize;
                let v = u32::from_le_bytes(rec[4..8].try_into().unwrap()) as usize;
                visit(u, v);
            }
            remaining -= take;
        }
        Ok(())
    }
}

impl Propagator for DiskGraph {
    fn n(&self) -> usize {
        self.n
    }

    /// Streaming propagation. I/O failure mid-pass is unrecoverable for the
    /// caller (the score vectors are torn), so it panics; use
    /// [`DiskGraph::try_propagate_into`] to handle errors explicitly.
    fn propagate_into(&self, coeff: f64, x: &[f64], y: &mut [f64]) {
        self.try_propagate_into(coeff, x, y).expect("disk graph I/O failed mid-propagation");
    }

    /// Streaming block propagation: one disk pass serves every lane. Same
    /// panic policy as [`Propagator::propagate_into`]; use
    /// [`DiskGraph::try_propagate_block_into`] to handle I/O errors.
    fn propagate_block_into(&self, coeff: f64, x: &ScoreBlock, y: &mut ScoreBlock) {
        self.try_propagate_block_into(coeff, x, y).expect("disk graph I/O failed mid-propagation");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cpi, exact_rwr, CpiConfig, SeedSet, TpaIndex, TpaParams, Transition};
    use tpa_graph::gen::{lfr_lite, LfrConfig};

    fn l1_dist(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("tpa-offcore-{name}-{}", std::process::id()))
    }

    fn test_graph() -> CsrGraph {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(53);
        lfr_lite(LfrConfig { n: 300, m: 2400, ..Default::default() }, &mut rng).graph
    }

    #[test]
    fn propagation_matches_in_memory() {
        let g = test_graph();
        let path = tmp("prop");
        let disk = DiskGraph::create(&g, &path).unwrap();
        let t = Transition::new(&g);
        let x: Vec<f64> = (0..g.n()).map(|i| (i % 7) as f64 / g.n() as f64).collect();
        let mut y_mem = vec![0.0; g.n()];
        let mut y_disk = vec![0.0; g.n()];
        t.propagate_into(0.85, &x, &mut y_mem);
        disk.try_propagate_into(0.85, &x, &mut y_disk).unwrap();
        assert!(l1_dist(&y_mem, &y_disk) < 1e-12);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn cpi_runs_out_of_core() {
        let g = test_graph();
        let path = tmp("cpi");
        let disk = DiskGraph::create(&g, &path).unwrap();
        let cfg = CpiConfig::default();
        let on_disk = cpi(&disk, &SeedSet::single(11), &cfg, 0, None).scores;
        let in_mem = exact_rwr(&g, 11, &cfg);
        assert!(l1_dist(&on_disk, &in_mem) < 1e-12);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn tpa_preprocess_and_query_out_of_core() {
        let g = test_graph();
        let path = tmp("tpa");
        let disk = DiskGraph::create(&g, &path).unwrap();
        let params = TpaParams::new(5, 10);
        let on_disk = TpaIndex::preprocess_on(&disk, params);
        let in_mem = TpaIndex::preprocess(&g, params);
        assert!(l1_dist(on_disk.stranger(), in_mem.stranger()) < 1e-12);
        let q_disk = on_disk.query_on(&disk, &SeedSet::single(3));
        let t = Transition::new(&g);
        let q_mem = in_mem.query(&t, 3);
        assert!(l1_dist(&q_disk, &q_mem) < 1e-12);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn memory_footprint_is_o_n() {
        let g = test_graph();
        let path = tmp("mem");
        let disk = DiskGraph::create(&g, &path).unwrap();
        assert_eq!(disk.memory_bytes(), g.n() * 8);
        assert_eq!(disk.n(), g.n());
        assert_eq!(disk.m(), g.m());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn open_rejects_garbage() {
        let path = tmp("garbage");
        std::fs::write(&path, b"not a disk graph").unwrap();
        assert!(DiskGraph::open(&path).is_err());
        let _ = std::fs::remove_file(path);
    }
}
