//! TPA: the two-phase approximation itself (paper §III, Algorithms 2 & 3).

use crate::dynamic::{propagate_offset_policy, MaintenanceMode, RefreshStats};
use crate::{cpi, cpi_policy, CpiConfig, FrontierPolicy, SeedSet, TpaError, Transition};
use tpa_graph::{CsrGraph, NodeId, Permutation};

/// One node's [`TpaIndex::finish_family`] fold:
/// `family + (scale·family + stranger_v)`, in exactly that association.
/// Every path that turns a family score into a final TPA score — the
/// dense finish loop and the bounded top-k checker — must go through
/// this helper so their floating-point results stay bitwise identical.
/// The chain is monotone nondecreasing in `family` (each rounded op is),
/// which is what makes it usable on score lower/upper bounds.
#[inline]
pub(crate) fn finish_one(scale: f64, family: f64, stranger_v: f64) -> f64 {
    family + (scale * family + stranger_v)
}

/// TPA parameters: restart probability, tolerance, and the two split
/// points of the CPI iteration series.
#[derive(Clone, Copy, Debug)]
pub struct TpaParams {
    /// Restart probability `c`.
    pub c: f64,
    /// Convergence tolerance ε for the preprocessing CPI run.
    pub eps: f64,
    /// `S`: first iteration of the *neighbor* part. The family part
    /// `x(0)…x(S−1)` is the only exactly computed piece at query time, so
    /// `S` is the accuracy/online-speed knob (Theorem 2: error ≤ 2(1−c)^S).
    pub s: usize,
    /// `T`: first iteration of the *stranger* part, approximated by
    /// PageRank. Must satisfy `S < T` (paper §III-C discusses tuning).
    pub t: usize,
}

impl TpaParams {
    /// Parameters with the paper's defaults (`c = 0.15`, `ε = 1e-9`).
    pub fn new(s: usize, t: usize) -> Self {
        Self { c: 0.15, eps: 1e-9, s, t }
    }

    /// Panics if the parameters are out of range.
    pub fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("{e}");
        }
    }

    /// Fallible version of [`TpaParams::validate`], for admission paths
    /// ([`crate::ServiceBuilder`]) that must report rather than panic.
    pub fn check(&self) -> Result<(), TpaError> {
        let bad = |msg: String| Err(TpaError::InvalidConfig(msg));
        if !(self.c > 0.0 && self.c < 1.0) {
            return bad(format!("c must be in (0,1), got {}", self.c));
        }
        // NaN must fail too, so test "positive" directly.
        if self.eps.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return bad(format!("eps must be positive, got {}", self.eps));
        }
        if self.s < 1 {
            return bad("S must be at least 1".into());
        }
        if self.t <= self.s {
            return bad(format!("T ({}) must exceed S ({})", self.t, self.s));
        }
        Ok(())
    }

    /// The neighbor rescaling factor
    /// `‖r_neighbor‖₁ / ‖r_family‖₁ = ((1−c)^S − (1−c)^T) / (1 − (1−c)^S)`
    /// (from Lemma 2).
    pub fn neighbor_scale(&self) -> f64 {
        let d = 1.0 - self.c;
        (d.powi(self.s as i32) - d.powi(self.t as i32)) / (1.0 - d.powi(self.s as i32))
    }

    /// CPI config used by both phases.
    pub fn cpi_config(&self) -> CpiConfig {
        CpiConfig { c: self.c, eps: self.eps, max_iters: 1000 }
    }
}

/// Statistics from the preprocessing phase.
#[derive(Clone, Copy, Debug)]
pub struct PreprocessStats {
    /// Iterations the PageRank CPI ran (from `T` to convergence).
    pub iterations: usize,
    /// Final `‖x(i)‖₁` when the run stopped.
    pub final_residual: f64,
}

/// The preprocessed TPA index: just the stranger vector (`O(n)` doubles —
/// the paper's headline memory advantage in Fig. 1(a)) plus parameters.
#[derive(Clone, Debug)]
pub struct TpaIndex {
    params: TpaParams,
    stranger: Vec<f64>,
    stats: PreprocessStats,
    /// Set when the index was preprocessed on a reordered (relabeled)
    /// graph: the stranger vector is in *new*-id order and queries must
    /// run on the equally-permuted graph. [`crate::QueryEngine`] applies
    /// the permutation transparently; [`TpaIndex::save`] persists it so
    /// saved indexes round-trip.
    perm: Option<Permutation>,
}

impl TpaIndex {
    /// **Algorithm 2** (preprocessing phase): computes
    /// `r̃_stranger = p_stranger = Σ_{i≥T} x'(i)` with the uniform PageRank
    /// seed. Runs once per graph; independent of any future seed node.
    pub fn preprocess(graph: &CsrGraph, params: TpaParams) -> Self {
        Self::preprocess_on(&Transition::new(graph), params)
    }

    /// [`TpaIndex::preprocess`] over any propagation backend — e.g. the
    /// out-of-core [`crate::offcore::DiskGraph`].
    pub fn preprocess_on<P: crate::Propagator + ?Sized>(backend: &P, params: TpaParams) -> Self {
        params.validate();
        let run = cpi(backend, &SeedSet::Uniform, &params.cpi_config(), params.t, None);
        Self {
            params,
            stranger: run.scores,
            stats: PreprocessStats {
                iterations: run.last_iteration,
                final_residual: run.final_residual,
            },
            perm: None,
        }
    }

    /// Records the node relabeling the index was preprocessed under (see
    /// the `perm` field docs). Panics on a size mismatch.
    pub fn with_permutation(mut self, perm: Permutation) -> Self {
        assert_eq!(
            perm.len(),
            self.stranger.len(),
            "permutation relabels {} nodes but the index covers {}",
            perm.len(),
            self.stranger.len()
        );
        self.perm = Some(perm);
        self
    }

    /// The relabeling the index was preprocessed under, if any.
    pub fn permutation(&self) -> Option<&Permutation> {
        self.perm.as_ref()
    }

    /// **Algorithm 3** (online phase): computes the family part exactly
    /// (`S` CPI iterations, `O(mS)`), rescales it into the neighbor
    /// estimate, and adds the precomputed stranger vector.
    pub fn query(&self, transition: &Transition<'_>, seed: NodeId) -> Vec<f64> {
        self.query_seeds(transition, &SeedSet::single(seed))
    }

    /// [`TpaIndex::query`] generalized to arbitrary seed sets.
    pub fn query_seeds(&self, transition: &Transition<'_>, seeds: &SeedSet) -> Vec<f64> {
        self.query_on(transition, seeds)
    }

    /// Online phase over any propagation backend (e.g. the out-of-core
    /// [`crate::offcore::DiskGraph`]). The family sweep runs under
    /// [`FrontierPolicy::Auto`] — sparse while the seed's neighborhood
    /// is small, bitwise identical to dense; use
    /// [`TpaIndex::query_policy_on`] to force a direction.
    pub fn query_on<P: crate::Propagator + ?Sized>(
        &self,
        backend: &P,
        seeds: &SeedSet,
    ) -> Vec<f64> {
        self.query_policy_on(backend, seeds, FrontierPolicy::Auto)
    }

    /// [`TpaIndex::query_on`] with an explicit [`FrontierPolicy`] for
    /// the family sweep (any policy is bitwise invisible).
    pub fn query_policy_on<P: crate::Propagator + ?Sized>(
        &self,
        backend: &P,
        seeds: &SeedSet,
        policy: FrontierPolicy,
    ) -> Vec<f64> {
        self.query_traced_policy_on(backend, seeds, policy).0
    }

    /// [`TpaIndex::query_policy_on`] that also reports the family
    /// sweep's CPI accounting `(iterations, final residual)` — the
    /// metadata a [`crate::QueryResponse`] carries. The scores are
    /// bitwise identical to the untraced entry point (it delegates
    /// here).
    pub fn query_traced_policy_on<P: crate::Propagator + ?Sized>(
        &self,
        backend: &P,
        seeds: &SeedSet,
        policy: FrontierPolicy,
    ) -> (Vec<f64>, usize, f64) {
        self.check_backend(backend).unwrap_or_else(|e| panic!("{e}"));
        let run = cpi_policy(
            backend,
            seeds,
            &self.params.cpi_config(),
            0,
            Some(self.params.s - 1),
            policy,
        );
        (self.finish_family(run.scores), run.last_iteration, run.final_residual)
    }

    /// [`TpaIndex::query_traced_policy_on`] with an admission guard
    /// riding the family sweep. A tripped guard stops the sweep at the
    /// next iteration boundary and skips the `O(n)` family finish; the
    /// caller detects the trip via the guard and discards the partial
    /// result. Idle guards are bitwise invisible.
    pub(crate) fn query_traced_guarded_on<P: crate::Propagator + ?Sized>(
        &self,
        backend: &P,
        seeds: &SeedSet,
        policy: FrontierPolicy,
        guard: &crate::admission::SweepGuard,
    ) -> (Vec<f64>, usize, f64) {
        self.check_backend(backend).unwrap_or_else(|e| panic!("{e}"));
        let run = crate::cpi::cpi_guarded_policy(
            backend,
            seeds,
            &self.params.cpi_config(),
            0,
            Some(self.params.s - 1),
            policy,
            guard,
        );
        if guard.abort_error().is_some() {
            return (run.scores, run.last_iteration, run.final_residual);
        }
        (self.finish_family(run.scores), run.last_iteration, run.final_residual)
    }

    /// Folds the neighbor rescale and the precomputed stranger part into
    /// an exactly-computed family vector:
    /// `r = family + scale·family + stranger` per node, in that
    /// association (every query path shares this loop so results stay
    /// bitwise identical across entry points).
    pub fn finish_family(&self, mut family: Vec<f64>) -> Vec<f64> {
        let scale = self.params.neighbor_scale();
        for (ri, &si) in family.iter_mut().zip(&self.stranger) {
            *ri = finish_one(scale, *ri, si);
        }
        family
    }

    /// Verifies this index was preprocessed for a graph of `backend`'s
    /// size. The query paths call this at admission and panic with its
    /// message (legacy contract); fallible callers
    /// ([`crate::ServiceBuilder`]) surface the [`TpaError`] instead.
    pub fn check_backend<P: crate::Propagator + ?Sized>(
        &self,
        backend: &P,
    ) -> Result<(), TpaError> {
        self.check_backend_n(backend.n())
    }

    /// [`TpaIndex::check_backend`] against a raw node count.
    pub fn check_backend_n(&self, n: usize) -> Result<(), TpaError> {
        crate::error::check_dimension(n, self.stranger.len())
    }

    /// Online phase exposing the individual parts (used by the error
    /// decomposition experiments).
    pub fn query_parts(&self, transition: &Transition<'_>, seeds: &SeedSet) -> TpaParts {
        self.query_parts_on(transition, seeds)
    }

    /// [`TpaIndex::query_parts`] over any propagation backend.
    pub fn query_parts_on<P: crate::Propagator + ?Sized>(
        &self,
        backend: &P,
        seeds: &SeedSet,
    ) -> TpaParts {
        self.query_parts_policy_on(backend, seeds, FrontierPolicy::Auto)
    }

    /// [`TpaIndex::query_parts_on`] with an explicit [`FrontierPolicy`]
    /// for the family sweep.
    pub fn query_parts_policy_on<P: crate::Propagator + ?Sized>(
        &self,
        backend: &P,
        seeds: &SeedSet,
        policy: FrontierPolicy,
    ) -> TpaParts {
        // Guard before any kernel touches the vectors: a mismatched index
        // would otherwise fail as an opaque out-of-bounds access (or,
        // worse, silently truncate) deep inside a propagation kernel.
        self.check_backend(backend).unwrap_or_else(|e| panic!("{e}"));
        let family = cpi_policy(
            backend,
            seeds,
            &self.params.cpi_config(),
            0,
            Some(self.params.s - 1),
            policy,
        )
        .scores;
        TpaParts { family }
    }

    /// The approximate neighbor part implied by a family vector.
    pub fn scale_neighbor(&self, family: &[f64]) -> Vec<f64> {
        let scale = self.params.neighbor_scale();
        family.iter().map(|&f| scale * f).collect()
    }

    /// The precomputed stranger vector `r̃_stranger`.
    pub fn stranger(&self) -> &[f64] {
        &self.stranger
    }

    /// Patches the stranger tail for a batch of edge updates by offset
    /// propagation instead of full re-preprocessing.
    ///
    /// The stranger vector is a CPI tail from the uniform seed, so it
    /// satisfies the fixed point `p_T = x(T) + (1−c)Ãᵀp_T`. When the
    /// operator drifts to `Ã'`, the correction solves the same
    /// recurrence from the offset seed `b = (1−c)(Ã' − Ã)ᵀp_T` — built
    /// by [`crate::DynamicTransition::offset_seed_for`] from the
    /// accumulated first-occurrence old columns — and is propagated here
    /// through the *updated* operator via
    /// [`propagate_offset_policy`], frontier-routed
    /// ([`FrontierPolicy::Auto`] keeps the sweep on the sparse kernel
    /// while the correction's support is small). Cost scales with the
    /// drift's reach, not `O(n + m)` CPI from scratch.
    ///
    /// Approximation: the shift of the window term `x'(T) − x(T)` is
    /// dropped (it is the same `O((1−c)^T)`-mass tail the stranger
    /// approximation already truncates), so the patched vector tracks a
    /// re-preprocessed one within the mode's tolerance plus that tail —
    /// bounded, but not bitwise. Run a full
    /// [`TpaIndex::preprocess_on`] to re-anchor when exactness matters.
    ///
    /// Returns the patched index (parameters and permutation carried
    /// over) and the propagation accounting.
    pub fn patch_stranger_on<P: crate::Propagator + ?Sized>(
        &self,
        backend: &P,
        offset: Vec<f64>,
        mode: MaintenanceMode,
        policy: FrontierPolicy,
    ) -> (TpaIndex, RefreshStats) {
        self.check_backend(backend).unwrap_or_else(|e| panic!("{e}"));
        let mut stranger = self.stranger.clone();
        let stats = propagate_offset_policy(
            backend,
            offset,
            &self.params.cpi_config(),
            mode,
            policy,
            &mut stranger,
        );
        let patched =
            TpaIndex { params: self.params, stranger, stats: self.stats, perm: self.perm.clone() };
        (patched, stats)
    }

    /// Parameters the index was built with.
    pub fn params(&self) -> &TpaParams {
        &self.params
    }

    /// Preprocessing statistics.
    pub fn stats(&self) -> &PreprocessStats {
        &self.stats
    }

    /// Size of the preprocessed data in bytes — one `f64` per node
    /// (Theorem 4's `O(n)` term; the graph itself is accounted separately).
    pub fn index_bytes(&self) -> usize {
        self.stranger.len() * std::mem::size_of::<f64>()
    }

    /// Values (`f64`s) per I/O chunk when (de)serializing the stranger
    /// vector: 8192 × 8 B = 64 KiB buffers, so a billion-node index is a
    /// few hundred thousand syscalls instead of one per value.
    const IO_CHUNK: usize = 8192;

    /// Serializes the index (magic, params, stats, stranger vector, and
    /// — since format 2 — the optional reordering permutation; all
    /// little-endian). Preprocess once, ship the index, query anywhere.
    pub fn save(&self, mut w: impl std::io::Write) -> std::io::Result<()> {
        w.write_all(b"TPAINDX2")?;
        w.write_all(&self.params.c.to_le_bytes())?;
        w.write_all(&self.params.eps.to_le_bytes())?;
        w.write_all(&(self.params.s as u64).to_le_bytes())?;
        w.write_all(&(self.params.t as u64).to_le_bytes())?;
        w.write_all(&(self.stats.iterations as u64).to_le_bytes())?;
        w.write_all(&self.stats.final_residual.to_le_bytes())?;
        w.write_all(&(self.stranger.len() as u64).to_le_bytes())?;
        // Chunked conversion so each write hands the sink a large slice
        // instead of 8 bytes at a time.
        let mut buf = Vec::with_capacity(Self::IO_CHUNK * 8);
        for chunk in self.stranger.chunks(Self::IO_CHUNK) {
            buf.clear();
            for &v in chunk {
                buf.extend_from_slice(&v.to_le_bytes());
            }
            w.write_all(&buf)?;
        }
        // Permutation trailer: length 0 = no reordering.
        let table = self.perm.as_ref().map(|p| p.new_to_old()).unwrap_or(&[]);
        w.write_all(&(table.len() as u64).to_le_bytes())?;
        for chunk in table.chunks(Self::IO_CHUNK) {
            buf.clear();
            for &v in chunk {
                buf.extend_from_slice(&v.to_le_bytes());
            }
            w.write_all(&buf)?;
        }
        w.flush()
    }

    /// Deserializes an index produced by [`TpaIndex::save`]. Format 1
    /// files (pre-reordering) load with no permutation.
    pub fn load(mut r: impl std::io::Read) -> std::io::Result<Self> {
        use std::io::{Error, ErrorKind};
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        let version = match &magic {
            b"TPAINDX1" => 1,
            b"TPAINDX2" => 2,
            _ => return Err(Error::new(ErrorKind::InvalidData, "bad TPA index magic")),
        };
        let mut f = [0u8; 8];
        let mut read_f64 = |r: &mut dyn std::io::Read| -> std::io::Result<f64> {
            r.read_exact(&mut f)?;
            Ok(f64::from_le_bytes(f))
        };
        let c = read_f64(&mut r)?;
        let eps = read_f64(&mut r)?;
        let mut u = [0u8; 8];
        let mut read_u64 = |r: &mut dyn std::io::Read| -> std::io::Result<u64> {
            r.read_exact(&mut u)?;
            Ok(u64::from_le_bytes(u))
        };
        let s = read_u64(&mut r)? as usize;
        let t = read_u64(&mut r)? as usize;
        let iterations = read_u64(&mut r)? as usize;
        let mut f2 = [0u8; 8];
        r.read_exact(&mut f2)?;
        let final_residual = f64::from_le_bytes(f2);
        let mut u2 = [0u8; 8];
        r.read_exact(&mut u2)?;
        let n = u64::from_le_bytes(u2) as usize;
        if n > (1usize << 40) {
            return Err(Error::new(ErrorKind::InvalidData, "implausible index length"));
        }
        let mut stranger = Vec::with_capacity(n);
        let mut buf = vec![0u8; Self::IO_CHUNK * 8];
        let mut remaining = n;
        while remaining > 0 {
            let take = remaining.min(Self::IO_CHUNK);
            r.read_exact(&mut buf[..take * 8])?;
            for rec in buf[..take * 8].chunks_exact(8) {
                let v = f64::from_le_bytes(rec.try_into().unwrap());
                if !v.is_finite() || v < 0.0 {
                    return Err(Error::new(ErrorKind::InvalidData, "corrupt stranger entry"));
                }
                stranger.push(v);
            }
            remaining -= take;
        }
        let perm = if version >= 2 {
            r.read_exact(&mut u2)?;
            let plen = u64::from_le_bytes(u2) as usize;
            if plen != 0 && plen != n {
                return Err(Error::new(ErrorKind::InvalidData, "permutation length mismatch"));
            }
            if plen == 0 {
                None
            } else {
                let mut table = Vec::with_capacity(plen);
                let mut remaining = plen;
                while remaining > 0 {
                    let take = remaining.min(Self::IO_CHUNK * 2);
                    r.read_exact(&mut buf[..take * 4])?;
                    for rec in buf[..take * 4].chunks_exact(4) {
                        table.push(u32::from_le_bytes(rec.try_into().unwrap()));
                    }
                    remaining -= take;
                }
                let p = tpa_graph::Permutation::try_from_new_to_old(table)
                    .map_err(|e| Error::new(ErrorKind::InvalidData, e))?;
                Some(p)
            }
        } else {
            None
        };
        let params = TpaParams { c, eps, s, t };
        params.validate();
        Ok(Self { params, stranger, stats: PreprocessStats { iterations, final_residual }, perm })
    }
}

/// The exactly-computed pieces of a TPA query.
#[derive(Clone, Debug)]
pub struct TpaParts {
    /// `r_family`: the exact sum of iterations `0..S−1`.
    pub family: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact_rwr;
    use tpa_graph::gen::{lfr_lite, LfrConfig};
    use tpa_graph::CsrGraph;

    fn l1_dist(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
    }

    fn test_graph() -> CsrGraph {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        lfr_lite(LfrConfig { n: 400, m: 3200, mu: 0.15, ..Default::default() }, &mut rng).graph
    }

    #[test]
    fn neighbor_scale_closed_form() {
        let p = TpaParams::new(5, 10);
        let d: f64 = 0.85;
        let want = (d.powi(5) - d.powi(10)) / (1.0 - d.powi(5));
        assert!((p.neighbor_scale() - want).abs() < 1e-15);
    }

    #[test]
    fn error_within_theorem2_bound() {
        let g = test_graph();
        let params = TpaParams::new(5, 10);
        let index = TpaIndex::preprocess(&g, params);
        let t = Transition::new(&g);
        let bound = crate::bounds::total_bound(params.c, params.s);
        for seed in [0u32, 13, 200, 399] {
            let approx = index.query(&t, seed);
            let exact = exact_rwr(&g, seed, &params.cpi_config());
            let err = l1_dist(&approx, &exact);
            assert!(err <= bound + 1e-9, "seed {seed}: error {err} > bound {bound}");
        }
    }

    #[test]
    fn real_graph_error_well_below_bound() {
        // The paper's Table III: block-wise structure pushes the practical
        // error far below 2(1−c)^S.
        let g = test_graph();
        let params = TpaParams::new(5, 10);
        let index = TpaIndex::preprocess(&g, params);
        let t = Transition::new(&g);
        let bound = crate::bounds::total_bound(params.c, params.s);
        let approx = index.query(&t, 42);
        let exact = exact_rwr(&g, 42, &params.cpi_config());
        let err = l1_dist(&approx, &exact);
        assert!(err < 0.6 * bound, "error {err} not well below bound {bound}");
    }

    #[test]
    fn query_mass_approximately_one() {
        let g = test_graph();
        let index = TpaIndex::preprocess(&g, TpaParams::new(5, 10));
        let t = Transition::new(&g);
        let r = index.query(&t, 7);
        let total: f64 = r.iter().sum();
        // family + scaled neighbor give exactly 1 − (1−c)^T of the mass;
        // stranger adds the tail, so the total is ≈ 1.
        assert!((total - 1.0).abs() < 0.05, "total {total}");
    }

    #[test]
    fn index_bytes_is_n_doubles() {
        let g = test_graph();
        let index = TpaIndex::preprocess(&g, TpaParams::new(4, 8));
        assert_eq!(index.index_bytes(), g.n() * 8);
    }

    #[test]
    fn stranger_vector_independent_of_seed() {
        // Querying different seeds must reuse the identical stranger part.
        let g = test_graph();
        let index = TpaIndex::preprocess(&g, TpaParams::new(5, 10));
        let before = index.stranger().to_vec();
        let t = Transition::new(&g);
        let _ = index.query(&t, 3);
        let _ = index.query(&t, 300);
        assert_eq!(index.stranger(), &before[..]);
    }

    #[test]
    fn larger_s_reduces_error() {
        let g = test_graph();
        let t = Transition::new(&g);
        let exact = exact_rwr(&g, 11, &CpiConfig::default());
        let mut prev_err = f64::INFINITY;
        for s in [2usize, 4, 6] {
            let index = TpaIndex::preprocess(&g, TpaParams::new(s, 12));
            let err = l1_dist(&index.query(&t, 11), &exact);
            assert!(err < prev_err, "error did not shrink at S={s}: {err} vs {prev_err}");
            prev_err = err;
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let g = test_graph();
        let index = TpaIndex::preprocess(&g, TpaParams::new(5, 10));
        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        let loaded = TpaIndex::load(std::io::Cursor::new(&buf)).unwrap();
        assert_eq!(loaded.stranger(), index.stranger());
        assert_eq!(loaded.params().s, 5);
        assert_eq!(loaded.params().t, 10);
        // Queries from the loaded index are identical.
        let t = Transition::new(&g);
        assert_eq!(index.query(&t, 3), loaded.query(&t, 3));
    }

    #[test]
    fn load_rejects_bad_magic() {
        let err = TpaIndex::load(std::io::Cursor::new(b"NOTANIDX........")).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn load_rejects_truncation() {
        let g = test_graph();
        let index = TpaIndex::preprocess(&g, TpaParams::new(5, 10));
        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        buf.truncate(buf.len() - 4);
        assert!(TpaIndex::load(std::io::Cursor::new(&buf)).is_err());
    }

    #[test]
    #[should_panic(expected = "must exceed S")]
    fn rejects_t_not_greater_than_s() {
        TpaParams::new(5, 5).validate();
    }

    #[test]
    #[should_panic(expected = "different graph")]
    fn rejects_mismatched_graph() {
        let g1 = test_graph();
        let index = TpaIndex::preprocess(&g1, TpaParams::new(5, 10));
        let g2 = tpa_graph::gen::cycle_graph(10);
        let t2 = Transition::new(&g2);
        index.query(&t2, 0);
    }
}
