//! The crate-wide error type for the serving surface.
//!
//! Before the `RwrService` redesign, failures on the public paths were a
//! mix of `Result<_, String>` (updates on immutable backends), panics
//! deep inside kernels (out-of-range seeds indexing a score vector), and
//! `assert!`s with ad-hoc messages (index/graph dimension mismatches).
//! None of that composes for a caller holding a serving queue: a typed
//! error can be matched on, logged, and mapped to a transport status.
//!
//! [`TpaError`] is that type. Request admission ([`crate::Snapshot::run`],
//! [`crate::RwrService::submit`], [`crate::QueryEngine::execute`]) and
//! the mutation paths ([`crate::RwrService::apply_updates`],
//! [`crate::QueryEngine::apply_updates`]) return it; the legacy
//! infallible conveniences (`QueryEngine::query`, …) panic with its
//! [`std::fmt::Display`] rendering, so every failure reads the same no
//! matter which entry point raised it.

use std::time::Duration;
use tpa_graph::NodeId;

/// Everything that can go wrong on the public serving paths.
///
/// Marked `#[non_exhaustive]`: new failure classes (e.g. admission
/// control, timeouts) can be added without breaking downstream matches.
#[derive(Debug)]
#[non_exhaustive]
pub enum TpaError {
    /// A request named a seed node that does not exist in the served
    /// graph. Caught at admission — before any kernel touches a score
    /// vector — instead of panicking on an out-of-bounds index inside
    /// the propagation loops.
    SeedOutOfRange {
        /// The offending seed id.
        seed: NodeId,
        /// Number of nodes in the served graph.
        n: usize,
    },
    /// A [`crate::TpaIndex`] was paired with a graph of a different
    /// size: its stranger vector has one entry per node of the graph it
    /// was preprocessed on.
    DimensionMismatch {
        /// Nodes in the graph/backend being served.
        backend: usize,
        /// Entries in the index's stranger vector.
        index: usize,
    },
    /// An operation was requested that the active backend cannot
    /// perform (e.g. edge updates against an immutable in-memory or
    /// out-of-core backend, or reordering an out-of-core graph in
    /// place).
    BackendMismatch {
        /// The operation that was refused.
        operation: &'static str,
        /// Name of the backend that refused it (see
        /// [`crate::EngineBackend::name`]).
        backend: &'static str,
    },
    /// A parameter failed validation (non-positive tolerance, restart
    /// probability outside `(0,1)`, `T ≤ S`, zero lane tile, …).
    InvalidConfig(String),
    /// An I/O failure while loading or persisting a graph or index.
    Io(std::io::Error),
    /// The admission gate refused the request: every in-flight slot
    /// was busy and the bounded wait queue was full (or the shed
    /// ladder reached [`crate::DegradationLevel::Rejected`]). Rejection
    /// is immediate — under sustained oversubscription callers fail in
    /// microseconds instead of queueing without bound.
    Overloaded {
        /// Requests running when this one was refused.
        inflight: usize,
        /// Requests already waiting in the bounded queue.
        queued: usize,
    },
    /// The request's deadline ([`crate::QueryRequest::with_deadline`])
    /// expired — in the admission queue or at a CPI iteration boundary
    /// mid-sweep. The sweep stops cooperatively; no request consumes a
    /// full sweep after its deadline passes.
    DeadlineExceeded {
        /// The deadline the request carried.
        budget: Duration,
        /// Wall time actually spent (queueing + kernel) before abort.
        elapsed: Duration,
    },
    /// The request's [`crate::CancelToken`] fired; the sweep stopped
    /// at the next iteration boundary.
    Cancelled,
    /// An internal invariant broke (e.g. a validated request reached a
    /// kernel without the field admission guaranteed). Serving paths
    /// return this instead of panicking so one bad request can never
    /// take the process down; seeing it is a bug worth reporting.
    Internal(&'static str),
}

impl TpaError {
    /// Stable snake_case variant name — the label value the metrics
    /// layer counts errors under (`tpa_request_errors_total{variant=…}`).
    pub fn variant_name(&self) -> &'static str {
        match self {
            TpaError::SeedOutOfRange { .. } => "seed_out_of_range",
            TpaError::DimensionMismatch { .. } => "dimension_mismatch",
            TpaError::BackendMismatch { .. } => "backend_mismatch",
            TpaError::InvalidConfig(_) => "invalid_config",
            TpaError::Io(_) => "io",
            TpaError::Overloaded { .. } => "overloaded",
            TpaError::DeadlineExceeded { .. } => "deadline_exceeded",
            TpaError::Cancelled => "cancelled",
            TpaError::Internal(_) => "internal",
        }
    }
}

impl std::fmt::Display for TpaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TpaError::SeedOutOfRange { seed, n } => {
                write!(f, "seed {seed} out of range (n = {n})")
            }
            TpaError::DimensionMismatch { backend, index } => write!(
                f,
                "dimension mismatch: backend has {backend} nodes but the index stranger vector \
                 has {index} entries — the index was preprocessed for a different graph"
            ),
            TpaError::BackendMismatch { operation, backend } => {
                write!(f, "backend {backend} does not support {operation}")
            }
            TpaError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            TpaError::Io(e) => write!(f, "I/O error: {e}"),
            TpaError::Overloaded { inflight, queued } => write!(
                f,
                "service overloaded: {inflight} requests in flight, {queued} queued — retry with \
                 backoff or raise --max-inflight"
            ),
            TpaError::DeadlineExceeded { budget, elapsed } => {
                write!(f, "deadline of {budget:?} exceeded after {elapsed:?}")
            }
            TpaError::Cancelled => write!(f, "request cancelled by its caller"),
            TpaError::Internal(what) => {
                write!(f, "internal invariant violated: {what} (this is a bug — please report it)")
            }
        }
    }
}

impl std::error::Error for TpaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TpaError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TpaError {
    fn from(e: std::io::Error) -> Self {
        TpaError::Io(e)
    }
}

/// Admission check shared by every query path: each seed must name a
/// node of the served graph.
pub(crate) fn check_seeds(seeds: &[NodeId], n: usize) -> Result<(), TpaError> {
    match seeds.iter().find(|&&s| s as usize >= n) {
        Some(&seed) => Err(TpaError::SeedOutOfRange { seed, n }),
        None => Ok(()),
    }
}

/// Dimension check shared by the index guards in `tpa.rs` / `batch.rs`
/// and the service/builder admission paths.
pub(crate) fn check_dimension(backend_n: usize, index_n: usize) -> Result<(), TpaError> {
    if backend_n == index_n {
        Ok(())
    } else {
        Err(TpaError::DimensionMismatch { backend: backend_n, index: index_n })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        let e = TpaError::SeedOutOfRange { seed: 9, n: 4 };
        assert_eq!(e.to_string(), "seed 9 out of range (n = 4)");
        let e = TpaError::DimensionMismatch { backend: 10, index: 7 };
        assert!(e.to_string().contains("10 nodes"), "{e}");
        assert!(e.to_string().contains("different graph"), "{e}");
        let e = TpaError::BackendMismatch { operation: "edge updates", backend: "sequential" };
        assert_eq!(e.to_string(), "backend sequential does not support edge updates");
        let e = TpaError::InvalidConfig("lane tile must be at least 1".into());
        assert!(e.to_string().starts_with("invalid configuration"));
        let e = TpaError::Overloaded { inflight: 8, queued: 4 };
        assert!(e.to_string().contains("8 requests in flight"), "{e}");
        assert!(e.to_string().contains("4 queued"), "{e}");
        let e = TpaError::DeadlineExceeded {
            budget: Duration::from_millis(5),
            elapsed: Duration::from_millis(7),
        };
        assert!(e.to_string().contains("5ms"), "{e}");
        assert_eq!(TpaError::Cancelled.to_string(), "request cancelled by its caller");
    }

    #[test]
    fn admission_variants_have_stable_metric_labels() {
        assert_eq!(TpaError::Overloaded { inflight: 1, queued: 0 }.variant_name(), "overloaded");
        let e = TpaError::DeadlineExceeded { budget: Duration::ZERO, elapsed: Duration::ZERO };
        assert_eq!(e.variant_name(), "deadline_exceeded");
        assert_eq!(TpaError::Cancelled.variant_name(), "cancelled");
    }

    #[test]
    fn io_errors_chain_as_source() {
        use std::error::Error;
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = TpaError::from(io);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn check_helpers() {
        assert!(check_seeds(&[0, 3], 4).is_ok());
        assert!(matches!(check_seeds(&[0, 4], 4), Err(TpaError::SeedOutOfRange { seed: 4, n: 4 })));
        assert!(check_dimension(5, 5).is_ok());
        assert!(matches!(
            check_dimension(5, 6),
            Err(TpaError::DimensionMismatch { backend: 5, index: 6 })
        ));
    }
}
