//! Admission control, load shedding, and fault injection for the
//! serving layer.
//!
//! [`crate::RwrService::submit`] used to admit unbounded concurrent
//! work: a hub-seed stampede ran every request to completion however
//! long the caller was willing to wait, and there was no way to bound
//! in-flight kernels, abandon a sweep whose caller gave up, or serve a
//! cheaper answer under pressure. This module is that missing layer:
//!
//! * [`AdmissionConfig`] / [`AdmissionGate`] — a max-in-flight gate
//!   with a bounded wait queue. A request that finds all slots busy
//!   waits (up to its deadline) in a bounded queue; an overflowing
//!   queue rejects with [`TpaError::Overloaded`] *immediately*, so
//!   under sustained oversubscription callers fail in microseconds
//!   instead of timing out one by one.
//! * [`CancelToken`] / [`SweepGuard`] — per-request deadlines
//!   ([`crate::QueryRequest::with_deadline`]) and cooperative
//!   cancellation ([`crate::QueryRequest::with_cancel`]). The guard
//!   rides the CPI sweep through the same early-stop probe the bounded
//!   top-k checker uses: it is consulted at every iteration boundary,
//!   so no request consumes a full sweep after its caller gave up —
//!   the sweep stops and the request returns
//!   [`TpaError::DeadlineExceeded`] / [`TpaError::Cancelled`].
//! * [`ShedPolicy`] / [`DegradationLevel`] — graceful degradation: a
//!   ladder keyed off live queue depth and the kernel-run p99 from the
//!   service's [`crate::ServiceMetrics`]. Under rising pressure the
//!   service prefers [`crate::SnapshotCache`] hits, then loosens the
//!   exact-mode ε, then drops the bounded top-k tie-order proof to the
//!   cheaper set path, and only then rejects. Every applied downgrade
//!   is stamped on [`crate::QueryResponse::degradation`] — a degraded
//!   answer is never silent. PowerWalk's online/offline split
//!   motivates serving a cheaper answer *now* over queueing, and the
//!   dynamic-RWR tolerance guarantees are what make a looser-ε
//!   response a principled (bounded-error) downgrade rather than a
//!   wrong one.
//! * [`FaultPlan`] — a deterministic, seeded fault-injection harness:
//!   slow kernels, publish failures, compaction panics, and reader
//!   stalls, all decided by a counter-keyed hash of the plan's seed so
//!   a chaos run is exactly reproducible. The chaos suite
//!   (`tests/chaos.rs`) drives a faulted service against a quiet twin
//!   and asserts every response is bit-identical or carries an
//!   explicit degradation/error — never a silently wrong answer.

use crate::error::TpaError;
use crate::metrics::ServiceMetrics;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How far the shed ladder downgraded a request, stamped on every
/// [`crate::QueryResponse`] so no degradation is silent. Levels are
/// ordered: each rung implies the ones before it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DegradationLevel {
    /// Served at full fidelity.
    #[default]
    None,
    /// Cache-eligibility was widened: a pinned seed is served from the
    /// snapshot score cache even on paths that would normally run a
    /// kernel (e.g. the indexed path). The lane is an exact-CPI score
    /// vector maintained within the cache's tolerance.
    PreferCache,
    /// The exact-mode convergence tolerance was loosened to the shed
    /// ε — fewer iterations, with the residual bound still explicit.
    LoosenedEpsilon,
    /// The bounded top-k tie-order proof was dropped: the request ran
    /// the cheaper dense selection path instead (same set semantics,
    /// no early-termination proof riding the sweep).
    DroppedProof,
    /// The request was rejected with [`TpaError::Overloaded`].
    Rejected,
}

/// Label values for the per-level shed counters and the CLI readout,
/// in [`DegradationLevel`] order.
pub const DEGRADATION_LEVELS: [&str; 5] =
    ["none", "prefer_cache", "loosened_epsilon", "dropped_proof", "rejected"];

impl DegradationLevel {
    /// Stable snake_case name (metrics label value, CLI metadata).
    pub fn as_str(self) -> &'static str {
        DEGRADATION_LEVELS[self.index()]
    }

    /// Position on the ladder (0 = no degradation).
    pub fn index(self) -> usize {
        match self {
            DegradationLevel::None => 0,
            DegradationLevel::PreferCache => 1,
            DegradationLevel::LoosenedEpsilon => 2,
            DegradationLevel::DroppedProof => 3,
            DegradationLevel::Rejected => 4,
        }
    }

    /// Maps a pressure score (max of queue-fullness and p99-overrun
    /// fractions) onto the ladder: the rungs engage at 25% steps and
    /// full pressure rejects.
    pub fn from_pressure(pressure: f64) -> Self {
        if pressure >= 1.0 {
            DegradationLevel::Rejected
        } else if pressure >= 0.75 {
            DegradationLevel::DroppedProof
        } else if pressure >= 0.5 {
            DegradationLevel::LoosenedEpsilon
        } else if pressure >= 0.25 {
            DegradationLevel::PreferCache
        } else {
            DegradationLevel::None
        }
    }
}

impl std::fmt::Display for DegradationLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Tuning for [`ShedPolicy::Degrade`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShedConfig {
    /// Kernel-run p99 budget: the live p99 (from the service metrics)
    /// over this target contributes to the pressure score. Zero
    /// disables the latency signal (queue depth still sheds).
    pub p99_target: Duration,
    /// The ε exact-mode requests are loosened to at
    /// [`DegradationLevel::LoosenedEpsilon`] (never *tightened*: a
    /// request already looser than this keeps its own ε).
    pub shed_epsilon: f64,
}

impl Default for ShedConfig {
    fn default() -> Self {
        ShedConfig { p99_target: Duration::from_millis(50), shed_epsilon: 1e-5 }
    }
}

/// What the service does when the gate is under pressure.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum ShedPolicy {
    /// Never degrade: wait in the bounded queue, reject only on
    /// overflow.
    #[default]
    Off,
    /// Fail fast: never queue — a request that finds every in-flight
    /// slot busy is rejected immediately with
    /// [`TpaError::Overloaded`].
    Reject,
    /// The degradation ladder: prefer cache hits, loosen ε, drop the
    /// tie-order proof, then reject, keyed off live queue depth and
    /// kernel p99 (see [`DegradationLevel`]).
    Degrade(ShedConfig),
}

impl ShedPolicy {
    /// Parses the CLI spelling (`off` / `reject` / `degrade`).
    pub fn parse(s: &str) -> Result<Self, TpaError> {
        match s {
            "off" => Ok(ShedPolicy::Off),
            "reject" => Ok(ShedPolicy::Reject),
            "degrade" => Ok(ShedPolicy::Degrade(ShedConfig::default())),
            other => Err(TpaError::InvalidConfig(format!(
                "unknown shed policy '{other}' (expected off, reject, or degrade)"
            ))),
        }
    }
}

/// Admission-control knobs for [`crate::ServiceBuilder::admission`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdmissionConfig {
    /// Requests allowed to run concurrently. Must be ≥ 1.
    pub max_inflight: usize,
    /// Requests allowed to wait for a slot; an arrival past this is
    /// rejected immediately ([`ShedPolicy::Reject`] forces 0).
    pub max_queue: usize,
    /// What to do under pressure.
    pub shed: ShedPolicy,
}

impl AdmissionConfig {
    /// Gate with `max_inflight` slots, a same-sized wait queue, and no
    /// shedding.
    pub fn new(max_inflight: usize) -> Self {
        AdmissionConfig { max_inflight, max_queue: max_inflight, shed: ShedPolicy::Off }
    }

    /// Sets the bounded wait-queue length.
    pub fn with_queue(mut self, max_queue: usize) -> Self {
        self.max_queue = max_queue;
        self
    }

    /// Sets the shed policy.
    pub fn with_shed(mut self, shed: ShedPolicy) -> Self {
        self.shed = shed;
        self
    }

    /// Validates the configuration (builder admission).
    pub fn check(&self) -> Result<(), TpaError> {
        if self.max_inflight == 0 {
            return Err(TpaError::InvalidConfig(
                "admission max_inflight must be at least 1".into(),
            ));
        }
        if let ShedPolicy::Degrade(cfg) = &self.shed {
            if !(cfg.shed_epsilon.is_finite() && cfg.shed_epsilon > 0.0) {
                return Err(TpaError::InvalidConfig(format!(
                    "shed epsilon must be positive and finite, got {}",
                    cfg.shed_epsilon
                )));
            }
        }
        Ok(())
    }
}

/// A cooperative cancellation handle: clone it into a
/// [`crate::QueryRequest`] ([`crate::QueryRequest::with_cancel`]) and
/// call [`CancelToken::cancel`] from any thread. The running sweep
/// observes it at the next iteration boundary and the request returns
/// [`TpaError::Cancelled`].
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; takes effect at the next
    /// CPI iteration boundary of any sweep carrying this token.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release); // ord: Release pairs with the Acquire in is_cancelled — writes before cancel() are visible to the observer
    }

    /// True once [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire) // ord: Acquire pairs with the Release in cancel(); see above
    }
}

/// Guard state: which abort condition tripped first.
const TRIP_NONE: u8 = 0;
const TRIP_DEADLINE: u8 = 1;
const TRIP_CANCELLED: u8 = 2;

/// Rides a request through its kernels the way
/// [`crate::cpi::SweepProbe`] rides the sweep: [`SweepGuard::probe`]
/// is consulted at every CPI iteration boundary (and at lane-tile
/// boundaries on batched paths) and trips once the deadline passes or
/// the cancel token fires. An idle guard (no deadline, no token) costs
/// two `Option` loads per check.
pub(crate) struct SweepGuard {
    started: Instant,
    deadline_at: Option<Instant>,
    budget: Option<Duration>,
    cancel: Option<CancelToken>,
    tripped: AtomicU8,
}

impl SweepGuard {
    pub(crate) fn new(
        started: Instant,
        deadline_at: Option<Instant>,
        budget: Option<Duration>,
        cancel: Option<CancelToken>,
    ) -> Self {
        SweepGuard { started, deadline_at, budget, cancel, tripped: AtomicU8::new(TRIP_NONE) }
    }

    /// The early-stop probe: true once the request should abort.
    /// Sticky — after the first trip every later probe is true without
    /// re-reading the clock.
    pub(crate) fn probe(&self) -> bool {
        // ord: sticky one-way flag; only the trip reason is transferred, and abort_error re-reads it on the same thread
        if self.tripped.load(Ordering::Relaxed) != TRIP_NONE {
            return true;
        }
        if let Some(tok) = &self.cancel {
            if tok.is_cancelled() {
                self.tripped.store(TRIP_CANCELLED, Ordering::Relaxed); // ord: single-threaded guard — probe and abort_error run on the request's own thread, no cross-thread edge needed
                return true;
            }
        }
        if let Some(at) = self.deadline_at {
            if Instant::now() >= at {
                self.tripped.store(TRIP_DEADLINE, Ordering::Relaxed); // ord: single-threaded guard — probe and abort_error run on the request's own thread, no cross-thread edge needed
                return true;
            }
        }
        false
    }

    /// The typed error for a tripped guard, `None` while live.
    pub(crate) fn abort_error(&self) -> Option<TpaError> {
        // ord: reads a flag this same thread stored in probe(); program order suffices
        match self.tripped.load(Ordering::Relaxed) {
            TRIP_DEADLINE => Some(TpaError::DeadlineExceeded {
                budget: self.budget.unwrap_or_default(),
                elapsed: self.started.elapsed(),
            }),
            TRIP_CANCELLED => Some(TpaError::Cancelled),
            _ => None,
        }
    }

    /// Probes and converts a trip into its error — the pre-kernel and
    /// tile-boundary check.
    pub(crate) fn check(&self) -> Result<(), TpaError> {
        if self.probe() {
            // probe() returning true means a trip reason was stored, so
            // abort_error() is Some; the Cancelled fallback keeps this
            // path panic-free even if that invariant ever broke.
            Err(self.abort_error().unwrap_or(TpaError::Cancelled))
        } else {
            Ok(())
        }
    }
}

struct GateState {
    inflight: usize,
    queued: usize,
}

/// The max-in-flight gate with its bounded wait queue. One per
/// service; acquisition happens in [`crate::RwrService::submit`]
/// before the snapshot is pinned.
pub(crate) struct AdmissionGate {
    cfg: AdmissionConfig,
    state: Mutex<GateState>,
    cv: Condvar,
    metrics: Option<Arc<ServiceMetrics>>,
}

impl AdmissionGate {
    pub(crate) fn new(cfg: AdmissionConfig, metrics: Option<Arc<ServiceMetrics>>) -> Self {
        AdmissionGate {
            cfg,
            state: Mutex::new(GateState { inflight: 0, queued: 0 }),
            cv: Condvar::new(),
            metrics,
        }
    }

    pub(crate) fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    fn publish_depth(&self, s: &GateState) {
        if let Some(m) = &self.metrics {
            m.record_gate_depth(s.inflight as u64, s.queued as u64);
        }
    }

    /// Acquires an in-flight slot, waiting in the bounded queue up to
    /// `deadline_at`. Fails fast with [`TpaError::Overloaded`] when
    /// the queue is full (always, under [`ShedPolicy::Reject`], when
    /// any queueing would be needed), and with
    /// [`TpaError::DeadlineExceeded`] when the deadline passes while
    /// queued.
    pub(crate) fn acquire(
        &self,
        started: Instant,
        deadline_at: Option<Instant>,
        budget: Option<Duration>,
    ) -> Result<AdmissionPermit<'_>, TpaError> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if s.inflight < self.cfg.max_inflight {
            s.inflight += 1;
            self.publish_depth(&s);
            return Ok(AdmissionPermit { gate: self });
        }
        let max_queue = match self.cfg.shed {
            ShedPolicy::Reject => 0,
            _ => self.cfg.max_queue,
        };
        if s.queued >= max_queue {
            return Err(TpaError::Overloaded { inflight: s.inflight, queued: s.queued });
        }
        s.queued += 1;
        self.publish_depth(&s);
        loop {
            if s.inflight < self.cfg.max_inflight {
                s.queued -= 1;
                s.inflight += 1;
                self.publish_depth(&s);
                return Ok(AdmissionPermit { gate: self });
            }
            match deadline_at {
                None => s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner()),
                Some(at) => {
                    let now = Instant::now();
                    if now >= at {
                        s.queued -= 1;
                        self.publish_depth(&s);
                        return Err(TpaError::DeadlineExceeded {
                            budget: budget.unwrap_or_default(),
                            elapsed: started.elapsed(),
                        });
                    }
                    s = self.cv.wait_timeout(s, at - now).unwrap_or_else(|e| e.into_inner()).0;
                }
            }
        }
    }

    /// The current rung of the shed ladder: the max of queue fullness
    /// and kernel-p99 overrun, mapped through
    /// [`DegradationLevel::from_pressure`]. `None`-policy gates never
    /// degrade (the gate still bounds and rejects).
    pub(crate) fn degradation(&self) -> DegradationLevel {
        let ShedPolicy::Degrade(shed) = &self.cfg.shed else {
            return DegradationLevel::None;
        };
        let queued = {
            let s = self.state.lock().unwrap_or_else(|e| e.into_inner());
            s.queued
        };
        let queue_frac = queued as f64 / self.cfg.max_queue.max(1) as f64;
        let p99_frac = match (&self.metrics, shed.p99_target) {
            (Some(m), target) if target > Duration::ZERO => {
                m.live_run_p99_secs() / target.as_secs_f64()
            }
            _ => 0.0,
        };
        DegradationLevel::from_pressure(queue_frac.max(p99_frac))
    }

    /// Current `(inflight, queued)` occupancy — for error payloads.
    pub(crate) fn pressure(&self) -> (usize, usize) {
        let s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        (s.inflight, s.queued)
    }
}

/// RAII in-flight slot: dropping it frees the slot and wakes one
/// queued waiter.
pub(crate) struct AdmissionPermit<'a> {
    gate: &'a AdmissionGate,
}

impl std::fmt::Debug for AdmissionPermit<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionPermit").finish_non_exhaustive()
    }
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        let mut s = self.gate.state.lock().unwrap_or_else(|e| e.into_inner());
        s.inflight -= 1;
        self.gate.publish_depth(&s);
        drop(s);
        self.gate.cv.notify_one();
    }
}

/// SplitMix64 — the fault plan's decision hash. Deterministic and
/// well-mixed, so "every Nth on average, seed-dependent which" fault
/// patterns reproduce exactly across runs.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Deterministic, seeded fault injection for chaos testing
/// ([`crate::ServiceBuilder::fault_plan`]). Each fault family draws
/// from its own counter stream keyed by the plan's seed, so two runs
/// of the same workload against the same plan inject the identical
/// fault sequence. Faults only slow, fail, or panic components that
/// already have a recovery path — they can never corrupt a published
/// answer, which is exactly what the chaos suite asserts.
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    slow_every: u64,
    slow_for: Duration,
    publish_fail_every: u64,
    compaction_panic_every: u64,
    reader_stall_every: u64,
    reader_stall_for: Duration,
    queries: AtomicU64,
    publishes: AtomicU64,
    compactions: AtomicU64,
    reads: AtomicU64,
}

impl FaultPlan {
    /// An empty plan (injects nothing) with the given decision seed.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan { seed, ..Default::default() }
    }

    /// Inject a `by`-long sleep into roughly one in `every` kernel
    /// runs (0 disables).
    pub fn slow_kernels(mut self, every: u64, by: Duration) -> Self {
        self.slow_every = every;
        self.slow_for = by;
        self
    }

    /// Fail roughly one in `every` [`crate::RwrService::apply_updates`]
    /// calls *before* any state is mutated (0 disables). The overlay
    /// is untouched; the caller retries.
    pub fn publish_failures(mut self, every: u64) -> Self {
        self.publish_fail_every = every;
        self
    }

    /// Panic roughly one in `every` background compaction threads
    /// (0 disables). Exercises the retry/backoff recovery path.
    pub fn compaction_panics(mut self, every: u64) -> Self {
        self.compaction_panic_every = every;
        self
    }

    /// Tell the chaos harness to stall roughly one in `every` readers
    /// for `by` while they hold a pinned snapshot (0 disables). The
    /// service itself never sleeps for this — the harness calls
    /// [`FaultPlan::reader_stall`] and sleeps on the reader thread, so
    /// the fault models a slow consumer, not a slow server.
    pub fn reader_stalls(mut self, every: u64, by: Duration) -> Self {
        self.reader_stall_every = every;
        self.reader_stall_for = by;
        self
    }

    fn hit(&self, stream: u64, k: u64, every: u64) -> bool {
        every != 0
            && splitmix64(self.seed ^ stream.wrapping_mul(0xa076_1d64_78bd_642f) ^ k)
                .is_multiple_of(every)
    }

    /// Kernel-side draw: `Some(duration)` when this run should sleep.
    pub(crate) fn slow_kernel(&self) -> Option<Duration> {
        let k = self.queries.fetch_add(1, Ordering::Relaxed); // ord: deterministic draw counter; the splitmix hash, not ordering, decides fault placement
        self.hit(1, k, self.slow_every).then_some(self.slow_for)
    }

    /// Publish-side draw: true when this `apply_updates` should fail.
    pub(crate) fn publish_failure(&self) -> bool {
        let k = self.publishes.fetch_add(1, Ordering::Relaxed); // ord: deterministic draw counter; the splitmix hash, not ordering, decides fault placement
        self.hit(2, k, self.publish_fail_every)
    }

    /// Compaction-side draw: true when this spawned rebuild should
    /// panic.
    pub(crate) fn poison_compaction(&self) -> bool {
        let k = self.compactions.fetch_add(1, Ordering::Relaxed); // ord: deterministic draw counter; the splitmix hash, not ordering, decides fault placement
        self.hit(3, k, self.compaction_panic_every)
    }

    /// Harness-side draw: `Some(duration)` when this reader should
    /// stall while holding its pinned snapshot.
    pub fn reader_stall(&self) -> Option<Duration> {
        let k = self.reads.fetch_add(1, Ordering::Relaxed); // ord: deterministic draw counter; the splitmix hash, not ordering, decides fault placement
        self.hit(4, k, self.reader_stall_every).then_some(self.reader_stall_for)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn ladder_is_monotone_in_pressure() {
        let mut last = DegradationLevel::None;
        for i in 0..=40 {
            let level = DegradationLevel::from_pressure(i as f64 / 32.0);
            assert!(level >= last, "ladder regressed at pressure {}", i as f64 / 32.0);
            last = level;
        }
        assert_eq!(DegradationLevel::from_pressure(0.0), DegradationLevel::None);
        assert_eq!(DegradationLevel::from_pressure(0.3), DegradationLevel::PreferCache);
        assert_eq!(DegradationLevel::from_pressure(0.6), DegradationLevel::LoosenedEpsilon);
        assert_eq!(DegradationLevel::from_pressure(0.8), DegradationLevel::DroppedProof);
        assert_eq!(DegradationLevel::from_pressure(1.5), DegradationLevel::Rejected);
        for (i, name) in DEGRADATION_LEVELS.iter().enumerate() {
            assert!(!name.is_empty(), "level {i}");
        }
    }

    #[test]
    fn gate_bounds_inflight_and_rejects_overflow() {
        let gate = AdmissionGate::new(AdmissionConfig::new(2).with_queue(1), None);
        let now = Instant::now();
        let a = gate.acquire(now, None, None).unwrap();
        let _b = gate.acquire(now, None, None).unwrap();
        // Slots full: a deadline-carrying waiter times out in queue...
        let deadline = Some(Instant::now() + Duration::from_millis(10));
        let err = gate.acquire(now, deadline, Some(Duration::from_millis(10))).unwrap_err();
        assert!(matches!(err, TpaError::DeadlineExceeded { .. }), "{err}");
        // ...and with the queue already holding a waiter, the next
        // arrival is rejected immediately.
        let waiter = std::thread::spawn({
            let deadline = Some(Instant::now() + Duration::from_secs(5));
            move || deadline
        });
        waiter.join().unwrap();
        std::thread::scope(|scope| {
            let queued = scope.spawn(|| {
                gate.acquire(Instant::now(), Some(Instant::now() + Duration::from_secs(5)), None)
            });
            // Give the queued waiter time to enter the queue.
            while gate.state.lock().unwrap().queued == 0 {
                std::thread::yield_now();
            }
            let err = gate.acquire(Instant::now(), None, None).unwrap_err();
            assert!(matches!(err, TpaError::Overloaded { .. }), "{err}");
            // Freeing a slot admits the queued waiter.
            drop(a);
            let permit = queued.join().unwrap().unwrap();
            drop(permit);
        });
    }

    #[test]
    fn reject_policy_never_queues() {
        let gate = AdmissionGate::new(
            AdmissionConfig::new(1).with_queue(8).with_shed(ShedPolicy::Reject),
            None,
        );
        let _a = gate.acquire(Instant::now(), None, None).unwrap();
        let err = gate
            .acquire(Instant::now(), Some(Instant::now() + Duration::from_secs(5)), None)
            .unwrap_err();
        assert!(matches!(err, TpaError::Overloaded { .. }), "{err}");
    }

    #[test]
    fn permits_release_under_contention() {
        let gate = Arc::new(AdmissionGate::new(AdmissionConfig::new(2).with_queue(64), None));
        let served = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let gate = Arc::clone(&gate);
                let served = Arc::clone(&served);
                scope.spawn(move || {
                    for _ in 0..50 {
                        let permit = gate.acquire(Instant::now(), None, None).unwrap();
                        let s = gate.state.lock().unwrap();
                        assert!(s.inflight <= 2, "gate admitted {} concurrent", s.inflight);
                        drop(s);
                        served.fetch_add(1, Ordering::Relaxed);
                        drop(permit);
                    }
                });
            }
        });
        assert_eq!(served.load(Ordering::Relaxed), 400);
        let s = gate.state.lock().unwrap();
        assert_eq!((s.inflight, s.queued), (0, 0), "gate must drain to empty");
    }

    #[test]
    fn cancel_token_trips_the_guard() {
        let token = CancelToken::new();
        let guard = SweepGuard::new(Instant::now(), None, None, Some(token.clone()));
        assert!(guard.check().is_ok());
        token.cancel();
        assert!(guard.probe());
        assert!(matches!(guard.abort_error(), Some(TpaError::Cancelled)));
        // Sticky: probes keep reporting the trip.
        assert!(guard.probe());
    }

    #[test]
    fn deadline_trips_the_guard() {
        let start = Instant::now();
        let budget = Duration::from_millis(5);
        let guard = SweepGuard::new(start, Some(start + budget), Some(budget), None);
        while !guard.probe() {
            std::thread::sleep(Duration::from_millis(1));
        }
        match guard.abort_error() {
            Some(TpaError::DeadlineExceeded { budget: b, elapsed }) => {
                assert_eq!(b, budget);
                assert!(elapsed >= budget);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn fault_plan_is_deterministic_and_seed_dependent() {
        let draws = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::seeded(seed).publish_failures(3);
            (0..64).map(|_| plan.publish_failure()).collect()
        };
        assert_eq!(draws(7), draws(7), "same seed, same fault sequence");
        assert_ne!(draws(7), draws(8), "different seeds, different sequences");
        let hits = draws(7).iter().filter(|&&b| b).count();
        assert!(hits > 4 && hits < 44, "one-in-3 plan drew {hits}/64 faults");
        // Empty plans never inject.
        let quiet = FaultPlan::seeded(9);
        assert!(quiet.slow_kernel().is_none());
        assert!(!quiet.publish_failure());
        assert!(!quiet.poison_compaction());
        assert!(quiet.reader_stall().is_none());
    }
}
