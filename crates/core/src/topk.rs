//! Bounded exact top-k: K-dash-style early termination riding the CPI
//! sweep (ROADMAP direction 2; shape from Fujiwara et al., "Fast and
//! Exact Top-k Search for Random Walk with Restart", adapted to TPA's
//! cumulative iteration).
//!
//! CPI accumulates only nonnegative interim mass, so every node's
//! running window sum is a monotone *lower bound* on its converged
//! score — bitwise (correctly-rounded addition of nonnegative terms
//! never decreases). The matching *upper bound* adds what the sweep can
//! still deliver to `v`, term by lookahead term:
//!
//! * one step out, `x(i+1)[v] = (1−c)·Σ_{u∈in(v)} x(i)[u]/d_u` is at
//!   most `(1−c)·min(‖x(i)‖∞·w₁(v), ‖x(i)‖₁·ĉ₁(v))` with
//!   `w₁ = Ãᵀ𝟙` the raw in-mass and `ĉ₁ = min(w₁, 1)` its
//!   substochastic clamp;
//! * two steps out the same argument applies to `Ãᵀx`, giving
//!   `(1−c)²·min(‖x‖∞·(Ãᵀw₁)(v), ‖x‖₁·ĉ₂(v))`;
//! * every deeper step contracts in L1, so step `t` is bounded by
//!   `(1−c)ᵗ·‖x‖₁·ĉ_t(v)` with the *chained caps*
//!   `ĉ_{t+1} = min(Ãᵀĉ_t, ĉ_t)` — each extra hop multiplies a
//!   typical node's share by the mean inverse degree of its
//!   in-neighborhood, which is what makes the bound bite tens of
//!   iterations before the residual itself is small.
//!
//! The geometric remainder past the last precomputed level falls back
//! to the deepest cap ([`crate::bounds::remaining_mass_bound`] shape,
//! or the truncated window sum inside a TPA family window).
//!
//! After each accumulated iteration a checker ranks the current lower
//! bounds and keeps a *contender band*: any node whose upper bound
//! falls strictly below the k-th lower bound is excluded **forever** —
//! upper bounds certify the converged score, and the k-th lower bound
//! only grows — so the band collapses monotonically and the per-
//! iteration check cost collapses with it. The sweep stops as soon as
//! the band is empty, unreached nodes are covered (O(1) via the cap
//! maxima), and every adjacent pair inside the top k separates
//! strictly. Strict separation means the converged ranking cannot
//! differ — including tie order, because ties are impossible across a
//! strict gap — so the answer equals the dense partial-selection
//! path's set and order exactly. If the sweep instead reaches its
//! natural end (ε-convergence or the family-window end) without a
//! proof, the caller finishes through the ordinary dense path and the
//! result is bitwise identical to it, ties and all.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

use crate::cpi::{cpi_sweep_policy, SweepProbe};
use crate::frontier::{FrontierPolicy, SupportUnion};
use crate::tpa::finish_one;
use crate::{CpiConfig, CpiResult, Propagator, SeedSet};
use tpa_graph::NodeId;

/// Relative inflation applied to the geometric-tail term of every upper
/// bound. Covers the floating-point rounding of the residual fold, the
/// cap vectors, and the tail arithmetic itself (all ≪ 1e-12 relative).
const TAIL_SLACK: f64 = 1.0 + 1e-9;

/// Relative inflation applied to the accumulated-score term of every
/// upper bound: the converged accumulation performs a few hundred
/// rounded additions, so its value can exceed `lower + true tail` by a
/// few hundred ulps of the score. 1e-12 dominates that with ~40×
/// margin while costing nothing against real score gaps.
const UB_REL_SLACK: f64 = 1e-12;

/// Number of chained cap levels in [`TopkCaps`]: lookahead steps beyond
/// the last level fall back to the deepest cap.
const CAP_LEVELS: usize = 4;

/// Band size above which failed checks back off to every
/// [`FAR_CADENCE`]-th iteration: while most of the graph is still in
/// contention the check scans rival a propagation in cost, and the
/// k-th lower bound moves too slowly for per-iteration checks to pay.
/// Once the band collapses below this, checks are near-free and run
/// every iteration so the proof fires the moment it can.
const CADENCE_BAND: usize = 4096;

/// Check stride while the band is larger than [`CADENCE_BAND`]. Safe
/// at any value: a proof needs an empty band, and the stride drops to
/// 1 on the first check that sees the band below [`CADENCE_BAND`], so
/// firing is delayed only if the band collapse itself lands mid-stride
/// — a handful of iterations out of the ~30 the backoff saves.
const FAR_CADENCE: usize = 8;

/// What the bounded top-k path established about its answer, carried in
/// [`crate::QueryResponse::topk`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TopKGuarantee {
    /// The returned set *and order* are provably identical to the dense
    /// partial-selection path's. Always `true` today: the bounded path
    /// either proves stability from its bounds or finishes through the
    /// dense path itself. The field exists so future budget-capped
    /// variants can report an unproven answer honestly.
    pub proven_exact: bool,
    /// The bound proof fired before the sweep's natural end (ε-
    /// convergence, or the family-window end on the indexed path).
    pub early_terminated: bool,
    /// Iterations the proof saved against the sweep's natural horizon
    /// (`CpiConfig::iterations_to_converge`, or the family-window end).
    pub iterations_saved: usize,
    /// Nodes the last bound check excluded from contention without
    /// finishing their exact score.
    pub pruned_nodes: usize,
    /// The request was answered by the dense path because bounds can't
    /// ride the sweep on its backend (out-of-core).
    pub fallback_dense: bool,
}

/// Per-node tail-share caps for the bounded upper bounds, computed once
/// per published snapshot (lazily, [`chained_caps`]).
pub(crate) struct TopkCaps {
    /// Raw one-hop in-mass `w₁ = Ãᵀ𝟙` (unclamped — pairs with the
    /// live ∞-norm, which a single step cannot amplify past it).
    w1: Vec<f64>,
    /// Raw two-hop in-mass `Ãᵀw₁` (unclamped, ∞-norm pairing).
    w2: Vec<f64>,
    /// Chained substochastic caps: `caps[0] = min(w₁, 1)`,
    /// `caps[t] = min(Ãᵀcaps[t−1], caps[t−1])`. Monotone in `t`.
    caps: [Vec<f64>; CAP_LEVELS],
    /// Component maxima of `w1`/`w2`, for the O(1) unreached bound.
    w1_max: f64,
    w2_max: f64,
    /// Component maxima of each cap level.
    cap_max: [f64; CAP_LEVELS],
}

/// How to map a family-window score to a final TPA score — the bounded
/// indexed path's view of [`crate::TpaIndex::finish_family`].
pub(crate) struct IndexedFinish<'a> {
    /// `TpaParams::neighbor_scale()`.
    pub scale: f64,
    /// The precomputed stranger vector (backend id space).
    pub stranger: &'a [f64],
    /// Last family iteration, `S − 1`.
    pub window_end: usize,
}

/// Inputs of a bounded run beyond the ordinary CPI arguments.
pub(crate) struct BoundedSpec<'a> {
    /// Number of results wanted (validated `1 ≤ k ≤ n` at admission).
    pub k: usize,
    /// Per-node tail-share caps of the snapshot's graph.
    pub caps: &'a TopkCaps,
    /// `Some` for the indexed (TPA) path, `None` for exact CPI.
    pub indexed: Option<IndexedFinish<'a>>,
}

/// What [`bounded_top_k`] did.
pub(crate) struct BoundedRun {
    /// The underlying sweep's accounting (scores are family scores on
    /// the indexed path).
    pub run: CpiResult,
    /// `Some(ranked)` when the proof fired: the exact top-k ids in
    /// exact converged order, scored by their bound-time lower bounds
    /// (equal to the dense values when the proof fired at the family-
    /// window end or at ε-convergence). `None`: the caller must finish
    /// through the dense path.
    pub proven: Option<Vec<(NodeId, f64)>>,
    /// Nodes the last bound check excluded (`n − k` when proven).
    pub pruned: usize,
    /// Iterations saved against the natural horizon (0 unless proven).
    pub iterations_saved: usize,
}

/// A top-k contender: compares by lower bound, ties toward the smaller
/// id — the same preference [`crate::top_k_scored`]'s tie-break has, so
/// "greater" always means "ranked ahead".
#[derive(Clone, Copy, Debug, PartialEq)]
struct Cand {
    lb: f64,
    id: NodeId,
}

impl Eq for Cand {}

impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Cand {
    fn cmp(&self, other: &Self) -> Ordering {
        self.lb.total_cmp(&other.lb).then_with(|| other.id.cmp(&self.id))
    }
}

/// Per-check tail coefficients: `tail(v) = min(a1·w₁(v), b1·ĉ₁(v)) +
/// min(a2·w₂(v), b2·ĉ₂(v)) + g3·ĉ₃(v) + g4·ĉ₄(v)`, truncated to the
/// remaining horizon. All terms carry the residual's geometric decay;
/// the `a` terms carry the live iterate's ∞-norm instead of its mass —
/// much tighter once the sweep has spread the residual out.
struct TailEval<'a> {
    caps: &'a TopkCaps,
    a1: f64,
    b1: f64,
    a2: f64,
    b2: f64,
    g3: f64,
    g4: f64,
    /// O(1) bound for any node the sweep never touched (computed from
    /// the cap maxima).
    unreached: f64,
}

impl<'a> TailEval<'a> {
    /// `remaining = None` means an unbounded horizon (exact path: the
    /// bound must bracket the converged limit); `Some(r)` truncates the
    /// series to `r` further iterations (the family-window case,
    /// level-by-level what [`crate::bounds::windowed_mass_bound`] is
    /// globally).
    fn new(caps: &'a TopkCaps, c: f64, res: f64, xmax: f64, remaining: Option<usize>) -> Self {
        let d = 1.0 - c;
        let r = remaining.unwrap_or(usize::MAX);
        let (mut a1, mut b1, mut a2, mut b2, mut g3, mut g4) = (0.0, 0.0, 0.0, 0.0, 0.0, 0.0);
        if r >= 1 {
            a1 = d * xmax;
            b1 = d * res;
        }
        if r >= 2 {
            a2 = d * d * xmax;
            b2 = d * d * res;
        }
        if r >= 3 {
            g3 = d * d * d * res;
        }
        if r >= 4 {
            let whole = d * d * d * d / c;
            g4 = res
                * match remaining {
                    None => whole,
                    // Σ_{t=4}^{r} dᵗ = (d⁴ − d^{r+1})/c.
                    Some(r) => whole - d.powi(r as i32 + 1) / c,
                };
        }
        let unreached = f64::min(a1 * caps.w1_max, b1 * caps.cap_max[0])
            + f64::min(a2 * caps.w2_max, b2 * caps.cap_max[1])
            + g3 * caps.cap_max[2]
            + g4 * caps.cap_max[3];
        Self { caps, a1, b1, a2, b2, g3, g4, unreached }
    }

    #[inline]
    fn tail(&self, v: usize) -> f64 {
        let c = self.caps;
        f64::min(self.a1 * c.w1[v], self.b1 * c.caps[0][v])
            + f64::min(self.a2 * c.w2[v], self.b2 * c.caps[1][v])
            + self.g3 * c.caps[2][v]
            + self.g4 * c.caps[3][v]
    }
}

/// Per-sweep bound-check state, reused across iterations.
///
/// `alive` is the contender band: every node that might still displace
/// the current top k. Exclusion is permanent — a node leaves the band
/// only when its upper bound (a certificate on its converged score)
/// drops strictly below the k-th lower bound, which never decreases —
/// so the band, and with it the per-check cost, shrinks monotonically.
struct Checker<'a> {
    spec: &'a BoundedSpec<'a>,
    c: f64,
    n: usize,
    /// Union of every support seen — the only nodes with nonzero
    /// accumulated score while the sweep stays sparse.
    union: SupportUnion,
    /// Prefix of `union.nodes()` already folded into the band.
    consumed: usize,
    /// True once supports are no longer tracked (dense mode) or the
    /// finish involves the everywhere-nonzero stranger vector.
    full_scan: bool,
    /// The band has been seeded with the never-reached ids (done once,
    /// when `full_scan` first latches).
    full_seeded: bool,
    alive: Vec<NodeId>,
    in_top: Vec<bool>,
    top: Vec<Cand>,
    evicted: Vec<NodeId>,
    heap: BinaryHeap<Reverse<Cand>>,
    /// Permanently excluded node count (monotone).
    excluded: usize,
    /// First iteration the next check is allowed to run at.
    next_check: usize,
    trace: bool,
    checks: u64,
    pruned: usize,
    proven: Option<Vec<(NodeId, f64)>>,
}

impl<'a> Checker<'a> {
    fn new(n: usize, c: f64, spec: &'a BoundedSpec<'a>) -> Self {
        Self {
            spec,
            c,
            n,
            union: SupportUnion::new(n),
            consumed: 0,
            full_scan: spec.indexed.is_some(),
            full_seeded: false,
            alive: Vec::new(),
            in_top: vec![false; n],
            top: Vec::with_capacity(spec.k),
            evicted: Vec::new(),
            heap: BinaryHeap::with_capacity(spec.k + 1),
            excluded: 0,
            next_check: 0,
            trace: std::env::var_os("TPA_TOPK_TRACE").is_some(),
            checks: 0,
            pruned: 0,
            proven: None,
        }
    }

    /// One bound check against the probe's scores; `true` stops the
    /// sweep (the proof fired and `self.proven` holds the answer).
    fn observe(&mut self, probe: SweepProbe<'_>) -> bool {
        // The union must fold in every iteration's support, even on
        // iterations the cadence skips — it is what makes the O(1)
        // unreached bound sound.
        match probe.support {
            Some(s) if !self.full_scan => self.union.merge(s),
            _ => self.full_scan = true,
        }
        let k = self.spec.k;
        if !self.full_scan && self.union.len() < k {
            return false;
        }
        if probe.i < self.next_check {
            return false;
        }
        self.checks += 1;
        // ∞-norm of the live iterate (exact over its support).
        let xmax = match probe.support {
            Some(s) => s.iter().fold(0.0f64, |m, &v| m.max(probe.iterate[v as usize])),
            None => probe.iterate.iter().fold(0.0f64, |m, &x| m.max(x)),
        };
        let remaining = self.spec.indexed.as_ref().map(|ix| ix.window_end - probe.i);
        let te = TailEval::new(self.spec.caps, self.c, probe.residual, xmax, remaining);

        // Grow the contender band: new union nodes, and — once the
        // sweep goes dense — every node never reached while sparse.
        // (Nodes excluded earlier were in the union already; their
        // certificates stand.)
        if self.full_scan && !self.full_seeded {
            self.full_seeded = true;
            for v in 0..self.n as NodeId {
                if !self.union.contains(v) && !self.in_top[v as usize] {
                    self.alive.push(v);
                }
            }
        }
        while self.consumed < self.union.len() {
            let v = self.union.nodes()[self.consumed];
            self.consumed += 1;
            if !self.in_top[v as usize] {
                self.alive.push(v);
            }
        }

        let scores = probe.scores;
        let Self { spec, n, union, full_scan, in_top, alive, top, evicted, heap, excluded, .. } =
            self;
        let (n, full_scan) = (*n, *full_scan);
        let lb_of = |v: NodeId| match &spec.indexed {
            Some(ix) => finish_one(ix.scale, scores[v as usize], ix.stranger[v as usize]),
            None => scores[v as usize],
        };
        let ub_of = |v: NodeId| {
            let f = scores[v as usize];
            let fam_ub = f + (f * UB_REL_SLACK + te.tail(v as usize) * TAIL_SLACK);
            match &spec.indexed {
                Some(ix) => finish_one(ix.scale, fam_ub, ix.stranger[v as usize]),
                None => fam_ub,
            }
        };

        // Pass 1: the k largest lower bounds over band ∪ top (small
        // min-heap; band members promoted here leave the band below).
        heap.clear();
        let push = |cand: Cand, heap: &mut BinaryHeap<Reverse<Cand>>| {
            if heap.len() < k {
                heap.push(Reverse(cand));
            } else if heap.peek().is_some_and(|min| cand > min.0) {
                heap.pop();
                heap.push(Reverse(cand));
            }
        };
        for &v in alive.iter() {
            push(Cand { lb: lb_of(v), id: v }, heap);
        }
        for cand in top.iter() {
            push(Cand { lb: lb_of(cand.id), id: cand.id }, heap);
        }
        // Band ∪ top holds ≥ k nodes by the union-size gate above, but
        // an empty heap simply means "no proof yet" — never a panic.
        let Some(kth) = heap.peek().map(|r| r.0) else { return false };
        evicted.clear();
        for cand in top.iter() {
            evicted.push(cand.id);
            in_top[cand.id as usize] = false;
        }
        top.clear();
        for &Reverse(cand) in heap.iter() {
            top.push(cand);
        }
        top.sort_unstable_by(|a, b| b.cmp(a));
        for cand in top.iter() {
            in_top[cand.id as usize] = true;
        }
        for &v in evicted.iter() {
            if !in_top[v as usize] {
                alive.push(v);
            }
        }

        // A wide band only starts shedding once residual-scaled tails
        // dip below the k-th lower bound: bulk nodes carry f ≈ 0 and
        // ub ≈ tail ≤ res·(chain sum) with cap ≤ 1 per level, so while
        // `res ≥ kth.lb` the expensive bound scan is provably (to
        // within the chain constant) fruitless. Spend O(band) on the
        // heap refresh only and skip passes 2–3 until then.
        let shallow = alive.len() > CADENCE_BAND && probe.residual >= kth.lb;
        let mut ok = false;
        if shallow {
            // Nodes promoted in pass 1 must still leave the band, or
            // the next heap refresh would double-count them (and a
            // duplicated top entry can never pass the pair check).
            alive.retain(|&v| !in_top[v as usize]);
        } else {
            // Pass 2: permanent band pruning. Promoted nodes just move
            // to the top; a node whose upper bound sits strictly below
            // the k-th lower bound can never re-enter (its bound
            // certifies the converged score, and the k-th lower bound
            // only grows).
            alive.retain(|&v| {
                if in_top[v as usize] {
                    return false;
                }
                if ub_of(v) >= kth.lb {
                    true
                } else {
                    *excluded += 1;
                    false
                }
            });
            let band_ok = alive.is_empty();

            // Unreached nodes (score exactly 0) are covered in O(1) by
            // the cap maxima while the sweep stays sparse.
            let unreached = if full_scan { 0 } else { n - union.len() };
            let unreached_ok = unreached == 0 || te.unreached * TAIL_SLACK < kth.lb;

            // Pass 3: strict separation of every adjacent pair inside
            // the top k — this is what pins the *order* (and rules out
            // ties).
            ok = band_ok && unreached_ok;
            if ok {
                for w in top.windows(2) {
                    if ub_of(w[1].id) >= w[0].lb {
                        ok = false;
                        break;
                    }
                }
            }
            self.pruned = *excluded + if unreached_ok { unreached } else { 0 };
        }
        // Back off while the band is wide (checks cost ~a propagation
        // and can't succeed yet); re-arm per-iteration checks once it
        // collapses.
        self.next_check = probe.i + if !ok && alive.len() > CADENCE_BAND { FAR_CADENCE } else { 1 };
        if self.trace && (probe.i.is_multiple_of(5) || ok) {
            let worst_band =
                alive.iter().map(|&v| ub_of(v) - kth.lb).fold(f64::NEG_INFINITY, f64::max);
            let worst_pair =
                top.windows(2).map(|w| ub_of(w[1].id) - w[0].lb).fold(f64::NEG_INFINITY, f64::max);
            eprintln!(
                "[trace] i={} band={} kth_lb={:.3e} res={:.3e} xmax={:.3e} \
                 worst_band_margin={:.3e} worst_pair_margin={:.3e} shallow={} ok={}",
                probe.i,
                alive.len(),
                kth.lb,
                probe.residual,
                xmax,
                worst_band,
                worst_pair,
                shallow,
                ok
            );
        }
        if ok {
            self.proven = Some(top.iter().map(|cand| (cand.id, cand.lb)).collect());
        }
        ok
    }
}

/// Runs the bounded top-k sweep: an ordinary CPI sweep (same kernels,
/// same policy scheduling, bitwise-identical interim state) with the
/// bound checker riding the early-stop probe. See the module docs for
/// the proof the checker requires before it stops the sweep.
pub(crate) fn bounded_top_k<P: Propagator + ?Sized>(
    backend: &P,
    seeds: &SeedSet,
    cfg: &CpiConfig,
    policy: FrontierPolicy,
    spec: &BoundedSpec<'_>,
    guard: Option<&crate::admission::SweepGuard>,
) -> BoundedRun {
    let n = backend.n();
    debug_assert!(spec.k >= 1 && spec.k <= n, "admission validates k");
    let (end, horizon) = match &spec.indexed {
        Some(ix) => (Some(ix.window_end), ix.window_end.min(cfg.max_iters)),
        None => (None, cfg.iterations_to_converge().min(cfg.max_iters)),
    };
    let mut checker = Checker::new(n, cfg.c, spec);
    let run = cpi_sweep_policy(
        backend,
        seeds,
        cfg,
        0,
        end,
        policy,
        |_, _| {},
        // The admission guard shares the checker's probe: a tripped
        // deadline/cancel stops the sweep before the next bound check.
        |probe| guard.is_some_and(|g| g.probe()) || checker.observe(probe),
    );
    // A sweep that hit ε-convergence holds fully converged scores: on
    // the exact path the dense finish is then free *and* bitwise equal
    // to the baseline (proven or not), so prefer it. The indexed proof
    // stays authoritative — at ε or at the window end the family scores
    // are the dense path's own, and keeping the proof skips the O(n)
    // finish + select.
    let proven = match (&spec.indexed, run.converged) {
        (None, true) => None,
        _ => checker.proven.take(),
    };
    let early_terminated = proven.is_some() && run.last_iteration < horizon && !run.converged;
    let iterations_saved = if early_terminated { horizon - run.last_iteration } else { 0 };
    let pruned = if proven.is_some() { n - spec.k } else { checker.pruned };
    if crate::profiling::profiling_enabled() {
        crate::profiling::record_topk_run(checker.checks, early_terminated, pruned as u64);
    }
    BoundedRun { run, proven, pruned, iterations_saved }
}

/// Builds the per-node tail-share caps backend-agnostically with
/// `CAP_LEVELS + 1` propagations of all-ones / cap vectors:
/// `(Ãᵀy)[v] = Σ_{u∈in(v)} y_u/outdeg(u)`. O(m) each, done lazily once
/// per published snapshot.
pub(crate) fn chained_caps<P: Propagator + ?Sized>(backend: &P) -> TopkCaps {
    let n = backend.n();
    let propagate = |input: &[f64]| {
        let mut out = vec![0.0f64; n];
        backend.propagate_into(1.0, input, &mut out);
        out
    };
    let vec_max = |v: &[f64]| v.iter().fold(0.0f64, |m, &x| m.max(x));

    let w1 = propagate(&vec![1.0f64; n]);
    let w2 = propagate(&w1);
    let c1: Vec<f64> = w1.iter().map(|&w| w.min(1.0)).collect();
    let mut caps = [c1, Vec::new(), Vec::new(), Vec::new()];
    for t in 1..CAP_LEVELS {
        let mut next = propagate(&caps[t - 1]);
        for (a, b) in next.iter_mut().zip(&caps[t - 1]) {
            *a = a.min(*b);
        }
        caps[t] = next;
    }
    let cap_max = [vec_max(&caps[0]), vec_max(&caps[1]), vec_max(&caps[2]), vec_max(&caps[3])];
    TopkCaps { w1_max: vec_max(&w1), w2_max: vec_max(&w2), w1, w2, caps, cap_max }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cpi_policy, top_k_scored, Transition};
    use tpa_graph::gen::{cycle_graph, star_graph};
    use tpa_graph::CsrGraph;

    fn exact_spec(caps: &TopkCaps, k: usize) -> BoundedSpec<'_> {
        BoundedSpec { k, caps, indexed: None }
    }

    #[test]
    fn caps_are_in_weight_shares() {
        // star_graph: center 0 with spokes both ways. Every spoke has
        // exactly one in-neighbor (the center, out-degree n−1); the
        // center receives 1/1 from each spoke — raw in-mass 4, clamped
        // to 1.
        let g = star_graph(5);
        let t = Transition::new(&g);
        let caps = chained_caps(&t);
        assert!((caps.w1[0] - 4.0).abs() < 1e-15);
        assert_eq!(caps.cap_max[0], 1.0);
        assert!((caps.caps[0][0] - 1.0).abs() < 1e-15);
        for &c in &caps.caps[0][1..] {
            assert!((c - 0.25).abs() < 1e-15, "spoke cap {c}");
        }
        // The chain is monotone level to level.
        for v in 0..5 {
            for t in 1..CAP_LEVELS {
                assert!(caps.caps[t][v] <= caps.caps[t - 1][v] + 1e-15, "level {t} node {v}");
            }
        }
    }

    #[test]
    fn proven_run_matches_dense_order() {
        // A graph with clearly separated scores: the bounded run must
        // terminate early and agree with the dense selection exactly.
        let g = CsrGraph::from_edges(
            6,
            &[(0, 1), (1, 0), (0, 2), (2, 0), (1, 2), (3, 4), (4, 3), (2, 3), (4, 5)],
        );
        let t = Transition::new(&g);
        let cfg = CpiConfig::default();
        let caps = chained_caps(&t);
        let spec = exact_spec(&caps, 3);
        let seeds = SeedSet::single(0);
        let out = bounded_top_k(&t, &seeds, &cfg, FrontierPolicy::Auto, &spec, None);
        let dense = cpi_policy(&t, &seeds, &cfg, 0, None, FrontierPolicy::Auto);
        let want = top_k_scored(&dense.scores, 3);
        match out.proven {
            Some(ranked) => {
                let got: Vec<_> = ranked.iter().map(|&(v, _)| v).collect();
                let expect: Vec<_> = want.iter().map(|&(v, _)| v).collect();
                assert_eq!(got, expect);
                // Lower-bound scores never exceed the converged scores.
                for (&(v, lb), &(_, s)) in ranked.iter().zip(&want) {
                    assert!(lb <= s, "lb {lb} > score {s} for {v}");
                }
                assert!(out.iterations_saved > 0 || out.run.converged);
            }
            None => {
                // Unproven runs hold the converged scores: dense finish.
                assert!(out.run.converged);
                assert_eq!(top_k_scored(&out.run.scores, 3), want);
            }
        }
    }

    #[test]
    fn tied_scores_never_fake_a_proof() {
        // Perfect symmetry: every node of a cycle scores identically
        // except for distance effects; with k = n all adjacent pairs at
        // equal score can never strictly separate, so the run must fall
        // through to the converged dense finish.
        let g = cycle_graph(4);
        let t = Transition::new(&g);
        let cfg = CpiConfig::default();
        let caps = chained_caps(&t);
        let spec = exact_spec(&caps, 4);
        let out = bounded_top_k(&t, &SeedSet::Uniform, &cfg, FrontierPolicy::Auto, &spec, None);
        assert!(out.proven.is_none(), "equal scores cannot strictly separate");
        assert!(out.run.converged);
    }
}
