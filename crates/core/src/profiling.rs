//! Kernel-layer profiling counters, behind a near-zero-cost disabled
//! path.
//!
//! The serving layer's per-request metrics ([`crate::ServiceMetrics`])
//! answer *how long* a query took; the counters here answer *what the
//! kernels did* while it ran — CPI iterations, the per-iteration
//! [`crate::FrontierPolicy::Auto`] direction decisions, sparse vs dense
//! edge work, sparse-kernel mid-gather bails, OSP offset propagations,
//! and [`crate::TilePolicy::Auto`] strip-vs-flat resolutions.
//!
//! Counters are process-wide relaxed atomics, flushed **once per kernel
//! run** from locally accumulated values — never inside the iteration
//! loop. While profiling is disabled (the default) the entire cost on a
//! kernel run is one relaxed `AtomicBool` load and a predictable
//! branch; attaching metrics to a service or engine
//! ([`crate::ServiceBuilder::metrics`],
//! [`crate::QueryEngine::with_metrics`]) enables it.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

static CPI_RUNS: AtomicU64 = AtomicU64::new(0);
static CPI_ITERATIONS: AtomicU64 = AtomicU64::new(0);
static SPARSE_ITERATIONS: AtomicU64 = AtomicU64::new(0);
static DENSE_ITERATIONS: AtomicU64 = AtomicU64::new(0);
static AUTO_DENSE_SWITCHES: AtomicU64 = AtomicU64::new(0);
static GATHER_BAILS: AtomicU64 = AtomicU64::new(0);
static SPARSE_EDGE_WORK: AtomicU64 = AtomicU64::new(0);
static DENSE_EDGE_WORK: AtomicU64 = AtomicU64::new(0);
static OFFSET_RUNS: AtomicU64 = AtomicU64::new(0);
static OFFSET_ITERATIONS: AtomicU64 = AtomicU64::new(0);
static STRIP_RESOLUTIONS: AtomicU64 = AtomicU64::new(0);
static FLAT_RESOLUTIONS: AtomicU64 = AtomicU64::new(0);
static TOPK_RUNS: AtomicU64 = AtomicU64::new(0);
static TOPK_BOUND_CHECKS: AtomicU64 = AtomicU64::new(0);
static TOPK_EARLY_TERMINATIONS: AtomicU64 = AtomicU64::new(0);
static TOPK_PRUNED_NODES: AtomicU64 = AtomicU64::new(0);

/// True when kernel profiling is collecting (process-wide).
#[inline(always)]
pub fn profiling_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed) // ord: advisory enable flag; a stale read only delays toggling by one kernel run
}

/// Turns kernel profiling on or off (process-wide). Enabled
/// automatically when a service or engine attaches a metrics registry.
pub fn set_profiling_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed); // ord: advisory enable flag; no data is published under it
}

/// Zeroes every profiling counter (benchmarks isolating one phase).
pub fn reset_profiling() {
    for c in [
        &CPI_RUNS,
        &CPI_ITERATIONS,
        &SPARSE_ITERATIONS,
        &DENSE_ITERATIONS,
        &AUTO_DENSE_SWITCHES,
        &GATHER_BAILS,
        &SPARSE_EDGE_WORK,
        &DENSE_EDGE_WORK,
        &OFFSET_RUNS,
        &OFFSET_ITERATIONS,
        &STRIP_RESOLUTIONS,
        &FLAT_RESOLUTIONS,
        &TOPK_RUNS,
        &TOPK_BOUND_CHECKS,
        &TOPK_EARLY_TERMINATIONS,
        &TOPK_PRUNED_NODES,
    ] {
        c.store(0, Ordering::Relaxed); // ord: benchmark-only reset of independent counters; nothing synchronizes with it
    }
}

/// Locally accumulated tallies of one CPI (or offset) sweep, flushed to
/// the process counters in a single call at the end of the run.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct RunTally {
    pub iterations: u64,
    pub sparse_iterations: u64,
    pub dense_iterations: u64,
    /// 1 when the Auto policy latched dense mid-run (frontier outgrew
    /// its divisor or the cumulative sparse budget ran out).
    pub auto_dense_switches: u64,
    /// Sparse kernels that bailed to dense mid-gather.
    pub gather_bails: u64,
    pub sparse_edge_work: u64,
    pub dense_edge_work: u64,
}

pub(crate) fn record_cpi_run(t: RunTally) {
    CPI_RUNS.fetch_add(1, Ordering::Relaxed); // ord: monotonic tally increment; no other memory is published with it
    flush_tally(&t);
    CPI_ITERATIONS.fetch_add(t.iterations, Ordering::Relaxed); // ord: monotonic tally increment; no other memory is published with it
}

pub(crate) fn record_offset_run(t: RunTally) {
    OFFSET_RUNS.fetch_add(1, Ordering::Relaxed); // ord: monotonic tally increment; no other memory is published with it
    flush_tally(&t);
    OFFSET_ITERATIONS.fetch_add(t.iterations, Ordering::Relaxed); // ord: monotonic tally increment; no other memory is published with it
}

fn flush_tally(t: &RunTally) {
    SPARSE_ITERATIONS.fetch_add(t.sparse_iterations, Ordering::Relaxed); // ord: monotonic tally increment; no other memory is published with it
    DENSE_ITERATIONS.fetch_add(t.dense_iterations, Ordering::Relaxed); // ord: monotonic tally increment; no other memory is published with it
    AUTO_DENSE_SWITCHES.fetch_add(t.auto_dense_switches, Ordering::Relaxed); // ord: monotonic tally increment; no other memory is published with it
    GATHER_BAILS.fetch_add(t.gather_bails, Ordering::Relaxed); // ord: monotonic tally increment; no other memory is published with it
    SPARSE_EDGE_WORK.fetch_add(t.sparse_edge_work, Ordering::Relaxed); // ord: monotonic tally increment; no other memory is published with it
    DENSE_EDGE_WORK.fetch_add(t.dense_edge_work, Ordering::Relaxed); // ord: monotonic tally increment; no other memory is published with it
}

/// One bounded top-k sweep ([`crate::topk`]), flushed once per run like
/// the CPI tallies: how many bound checks it ran, whether the proof
/// terminated the sweep early, and how many nodes the last check
/// pruned from contention.
pub(crate) fn record_topk_run(bound_checks: u64, early_terminated: bool, pruned_nodes: u64) {
    TOPK_RUNS.fetch_add(1, Ordering::Relaxed); // ord: monotonic tally increment; no other memory is published with it
    TOPK_BOUND_CHECKS.fetch_add(bound_checks, Ordering::Relaxed); // ord: monotonic tally increment; no other memory is published with it
    if early_terminated {
        TOPK_EARLY_TERMINATIONS.fetch_add(1, Ordering::Relaxed); // ord: monotonic tally increment; no other memory is published with it
    }
    TOPK_PRUNED_NODES.fetch_add(pruned_nodes, Ordering::Relaxed); // ord: monotonic tally increment; no other memory is published with it
}

/// One [`crate::TilePolicy::Auto`] resolution (fresh, not memoized).
pub(crate) fn record_tile_resolution(strip: bool) {
    if strip {
        STRIP_RESOLUTIONS.fetch_add(1, Ordering::Relaxed); // ord: monotonic tally increment; no other memory is published with it
    } else {
        FLAT_RESOLUTIONS.fetch_add(1, Ordering::Relaxed); // ord: monotonic tally increment; no other memory is published with it
    }
}

/// A point-in-time reading of the kernel profiling counters
/// (process-wide totals since the last [`reset_profiling`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelProfile {
    /// CPI sweeps completed (query paths, preprocessing, cache builds).
    pub cpi_runs: u64,
    /// Total CPI iterations across those sweeps.
    pub cpi_iterations: u64,
    /// Iterations routed through the sparse frontier kernel.
    pub sparse_iterations: u64,
    /// Iterations routed through the dense kernels.
    pub dense_iterations: u64,
    /// Runs where [`crate::FrontierPolicy::Auto`] latched from sparse
    /// onto dense (frontier outgrew `m / DENSE_SWITCH_DIVISOR` or the
    /// cumulative sparse budget ran out).
    pub auto_dense_switches: u64,
    /// Sparse kernels that bailed to the dense path mid-gather.
    pub gather_bails: u64,
    /// Edges traversed by sparse-frontier iterations.
    pub sparse_edge_work: u64,
    /// Edges traversed by dense iterations (where the backend exposes
    /// its edge count; unknown backends contribute 0).
    pub dense_edge_work: u64,
    /// OSP offset propagations (score-cache refreshes, index patches).
    pub offset_runs: u64,
    /// Total iterations across offset propagations.
    pub offset_iterations: u64,
    /// [`crate::TilePolicy::Auto`] resolutions that picked strip-mining.
    pub strip_resolutions: u64,
    /// [`crate::TilePolicy::Auto`] resolutions that picked the flat kernel.
    pub flat_resolutions: u64,
    /// Bounded top-k sweeps run (exact-bounds requests that reached a
    /// kernel; dense fallbacks never start a bounded sweep).
    pub topk_runs: u64,
    /// Per-iteration bound checks those sweeps performed.
    pub topk_bound_checks: u64,
    /// Bounded sweeps whose separation proof fired before the natural
    /// end of the iteration (early terminations).
    pub topk_early_terminations: u64,
    /// Nodes excluded from contention by the last bound check of each
    /// sweep, summed across sweeps.
    pub topk_pruned_nodes: u64,
}

impl KernelProfile {
    /// Fraction of profiled edge work done by sparse iterations
    /// (0 when nothing was profiled).
    pub fn sparse_work_ratio(&self) -> f64 {
        let total = self.sparse_edge_work + self.dense_edge_work;
        if total == 0 {
            0.0
        } else {
            self.sparse_edge_work as f64 / total as f64
        }
    }
}

/// Reads the current kernel profile (all zeros while profiling never
/// ran).
pub fn kernel_profile() -> KernelProfile {
    KernelProfile {
        cpi_runs: CPI_RUNS.load(Ordering::Relaxed), // ord: statistical snapshot; counters are independent, cross-counter skew is fine
        cpi_iterations: CPI_ITERATIONS.load(Ordering::Relaxed), // ord: statistical snapshot; counters are independent, cross-counter skew is fine
        sparse_iterations: SPARSE_ITERATIONS.load(Ordering::Relaxed), // ord: statistical snapshot; counters are independent, cross-counter skew is fine
        dense_iterations: DENSE_ITERATIONS.load(Ordering::Relaxed), // ord: statistical snapshot; counters are independent, cross-counter skew is fine
        auto_dense_switches: AUTO_DENSE_SWITCHES.load(Ordering::Relaxed), // ord: statistical snapshot; counters are independent, cross-counter skew is fine
        gather_bails: GATHER_BAILS.load(Ordering::Relaxed), // ord: statistical snapshot; counters are independent, cross-counter skew is fine
        sparse_edge_work: SPARSE_EDGE_WORK.load(Ordering::Relaxed), // ord: statistical snapshot; counters are independent, cross-counter skew is fine
        dense_edge_work: DENSE_EDGE_WORK.load(Ordering::Relaxed), // ord: statistical snapshot; counters are independent, cross-counter skew is fine
        offset_runs: OFFSET_RUNS.load(Ordering::Relaxed), // ord: statistical snapshot; counters are independent, cross-counter skew is fine
        offset_iterations: OFFSET_ITERATIONS.load(Ordering::Relaxed), // ord: statistical snapshot; counters are independent, cross-counter skew is fine
        strip_resolutions: STRIP_RESOLUTIONS.load(Ordering::Relaxed), // ord: statistical snapshot; counters are independent, cross-counter skew is fine
        flat_resolutions: FLAT_RESOLUTIONS.load(Ordering::Relaxed), // ord: statistical snapshot; counters are independent, cross-counter skew is fine
        topk_runs: TOPK_RUNS.load(Ordering::Relaxed), // ord: statistical snapshot; counters are independent, cross-counter skew is fine
        topk_bound_checks: TOPK_BOUND_CHECKS.load(Ordering::Relaxed), // ord: statistical snapshot; counters are independent, cross-counter skew is fine
        topk_early_terminations: TOPK_EARLY_TERMINATIONS.load(Ordering::Relaxed), // ord: statistical snapshot; counters are independent, cross-counter skew is fine
        topk_pruned_nodes: TOPK_PRUNED_NODES.load(Ordering::Relaxed), // ord: statistical snapshot; counters are independent, cross-counter skew is fine
    }
}
