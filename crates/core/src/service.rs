//! The concurrent serving layer: [`RwrService`] over epoch-swapped
//! [`Snapshot`]s.
//!
//! [`crate::QueryEngine`] is a *single-owner* server: it borrows its
//! graph, needs `&mut self` to apply updates, and therefore forces any
//! concurrent deployment to wrap it in external locking that serializes
//! every reader behind the writer. TPA's whole point is cheap online
//! queries over a preprocessed index (Yoon et al., ICDE 2018), and the
//! dynamic-RWR line (Yoon et al., *"Fast and Accurate Random Walk with
//! Restart on Dynamic Graphs with Guarantees"*) assumes queries and
//! updates interleave continuously — so the serving surface has to let
//! them.
//!
//! The design here is the classic epoch swap:
//!
//! * A [`Snapshot`] is an **immutable** bundle of everything a query
//!   needs — propagation backend, optional [`TpaIndex`], reordering
//!   permutation, CPI / frontier / lane-tile configuration — stamped
//!   with an epoch number. All of its query methods take `&self`, and
//!   `Snapshot<'static>` (the owned form the service publishes) is
//!   `Send + Sync`.
//! * [`RwrService`] keeps the current snapshot behind an
//!   `RwLock<Arc<Snapshot>>`. A reader's only synchronized step is
//!   cloning that `Arc` (a refcount bump under a read lock held for
//!   nanoseconds); the query itself runs lock-free on the pinned
//!   snapshot, so any number of threads query concurrently and are
//!   never serialized behind the writer.
//! * A single writer (serialized by an internal mutex) owns the mutable
//!   delta-overlay graph. [`RwrService::apply_updates`] applies an
//!   [`EdgeUpdate`] batch to the overlay and atomically publishes the
//!   next epoch by swapping the `Arc`. In-flight queries keep reading
//!   the epoch they pinned; the next `submit` sees the new one. Every
//!   epoch is **bitwise consistent**: a query on epoch `e` returns
//!   exactly what a single-threaded [`crate::QueryEngine`] would return
//!   on the equivalent frozen graph — never a blend of two epochs.
//! * Publishing is **copy-on-write**, not a rebuild: the new epoch's
//!   backend is a [`crate::PatchedTransition`] — the immutable base CSR
//!   shared via `Arc` plus the merged-overlay delta (per-row `Arc`s
//!   shared across epochs) — so a publish costs `O(batch)` map clones
//!   plus two flat per-node `memcpy`s, never an `O(n + m)` CSR rebuild
//!   or edge traversal. Folding the delta back into a fresh base is
//!   demoted to a *background* thread: past the compaction trigger the
//!   writer clones the overlay graph (cheap — the base is shared),
//!   rebuilds off-thread, and splices the fresh base back in under the
//!   writer lock without ever blocking a publish or changing a single
//!   published bit (the merged view is identical by construction).
//! * Hot seeds can be pinned in a service-side score cache
//!   ([`ServiceBuilder::score_cache`]): each publish refreshes the
//!   cached lanes by OSP offset propagation routed through the
//!   sparse-frontier kernel — cost scales with the update's reach —
//!   and cache hits answer single-seed requests with no kernel run at
//!   all ([`QueryResponse::cached`]).
//!
//! Requests and responses are typed ([`QueryRequest`] /
//! [`QueryResponse`]), failures are a real error type
//! ([`crate::TpaError`]), and construction goes through one
//! [`ServiceBuilder`] instead of the engine's scattered `with_*` calls.
//!
//! ```
//! use std::sync::Arc;
//! use tpa_core::{QueryRequest, ServiceBuilder, TpaParams};
//! use tpa_graph::gen::star_graph;
//! use tpa_graph::{DynamicGraph, EdgeUpdate};
//!
//! let service = Arc::new(
//!     ServiceBuilder::dynamic(DynamicGraph::new(star_graph(100)))
//!         .preprocess(TpaParams::new(5, 10))
//!         .build()
//!         .unwrap(),
//! );
//! // Readers (any number of threads): pin a snapshot implicitly.
//! let resp = service.submit(&QueryRequest::single(42).top_k(5)).unwrap();
//! assert_eq!(resp.epoch, 0);
//! // The writer publishes the next epoch; readers are never blocked.
//! let outcome = service.apply_updates(&[EdgeUpdate::Insert(42, 7)]).unwrap();
//! assert_eq!(outcome.epoch, 1);
//! ```

use crate::admission::{
    AdmissionConfig, AdmissionGate, CancelToken, DegradationLevel, FaultPlan, ShedPolicy,
    SweepGuard,
};
use crate::batch::cpi_batch_guarded;
use crate::cpi::cpi_guarded_policy;
use crate::dynamic::{propagate_offset_policy, DynamicTransition, MaintenanceMode, SourceDelta};
use crate::engine::{top_k_scored, EngineBackend, IndexStalenessPolicy, UpdateReport};
use crate::error::check_seeds;
use crate::metrics::{MetricsSnapshot, ServiceMetrics};
use crate::offcore::DiskGraph;
use crate::{
    cpi_policy, CpiConfig, FrontierPolicy, ParallelTransition, Propagator, SeedSet, TilePolicy,
    TpaError, TpaIndex, TpaParams, Transition,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};
use tpa_graph::{
    reorder, CsrGraph, DynamicGraph, EdgeUpdate, NodeId, Permutation, ReorderStrategy,
};
use tpa_obs::MetricsRegistry;

/// How a request computes scores.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Use the [`TpaIndex`] if the snapshot has one, exact CPI otherwise.
    Auto,
    /// Full-convergence CPI (ground truth), even when an index is loaded.
    Exact,
}

/// A typed query: which seeds, how to execute, what to return.
///
/// Built fluently: [`QueryRequest::single`] / [`QueryRequest::batch`],
/// then [`top_k`](QueryRequest::top_k), [`exact`](QueryRequest::exact),
/// [`with_frontier`](QueryRequest::with_frontier) and
/// [`with_epsilon`](QueryRequest::with_epsilon) overrides. Submitted to
/// [`RwrService::submit`], [`Snapshot::run`], or (as the compatibility
/// alias `QueryPlan`) [`crate::QueryEngine::execute`].
#[derive(Clone, Debug)]
pub struct QueryRequest {
    seeds: Vec<NodeId>,
    k: Option<usize>,
    mode: ExecMode,
    frontier: Option<FrontierPolicy>,
    eps: Option<f64>,
    exact_bounds: bool,
    deadline: Option<Duration>,
    cancel: Option<CancelToken>,
}

impl QueryRequest {
    /// Request for one seed.
    pub fn single(seed: NodeId) -> Self {
        Self::batch(vec![seed])
    }

    /// Request for a batch of seeds (one lane per seed, shared edge
    /// passes). An empty batch is legal and yields an empty response
    /// (serving queues legitimately drain to zero).
    pub fn batch(seeds: impl Into<Vec<NodeId>>) -> Self {
        QueryRequest {
            seeds: seeds.into(),
            k: None,
            mode: ExecMode::Auto,
            frontier: None,
            eps: None,
            exact_bounds: false,
            deadline: None,
            cancel: None,
        }
    }

    /// Return only the `k` best-scoring nodes per seed (partial
    /// selection, no full sort).
    pub fn top_k(mut self, k: usize) -> Self {
        self.k = Some(k);
        self
    }

    /// Force exact CPI even if the snapshot holds an index.
    pub fn exact(mut self) -> Self {
        self.mode = ExecMode::Exact;
        self
    }

    /// Overrides the snapshot's [`FrontierPolicy`] for this request.
    /// Applies to the scalar (single-seed) path; batched lanes always
    /// run the dense fused block kernels. Bitwise invisible either way.
    pub fn with_frontier(mut self, policy: FrontierPolicy) -> Self {
        self.frontier = Some(policy);
        self
    }

    /// Per-request convergence tolerance for **exact** execution (a
    /// latency/accuracy knob individual callers can turn without
    /// touching the shared configuration). Indexed execution ignores it:
    /// the family sweep is window-capped at `S − 1` iterations, whose
    /// residual `c(1−c)^i` never falls below any practical ε first.
    /// Must be positive, checked at admission.
    pub fn with_epsilon(mut self, eps: f64) -> Self {
        self.eps = Some(eps);
        self
    }

    /// The requested seeds.
    pub fn seeds(&self) -> &[NodeId] {
        &self.seeds
    }

    /// The requested execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// The per-request frontier override, if any.
    pub fn frontier(&self) -> Option<FrontierPolicy> {
        self.frontier
    }

    /// The requested top-k cut, if any.
    pub fn k(&self) -> Option<usize> {
        self.k
    }

    /// The per-request exact-mode tolerance override, if any.
    pub fn epsilon(&self) -> Option<f64> {
        self.eps
    }

    /// Serve the top-k request through the bounded exact path: per-node
    /// lower/upper score bounds ride the CPI sweep and terminate it as
    /// soon as the top-k set *and order* are provably stable, with the
    /// proof reported as [`QueryResponse::topk`]. The returned set and
    /// order always equal the dense path's exactly; early-terminated
    /// exact-mode scores are the proof-time lower bounds (within the
    /// residual tail of the converged values). Requires
    /// [`top_k`](QueryRequest::top_k) — rejected at admission otherwise.
    /// Bypasses the snapshot score cache (the bounded sweep is the
    /// point); falls back to the dense path (counted in the guarantee
    /// and the metrics) only on the out-of-core backend.
    pub fn with_exact_bounds(mut self) -> Self {
        self.exact_bounds = true;
        self
    }

    /// True when the request asked for the bounded exact top-k path.
    pub fn exact_bounds(&self) -> bool {
        self.exact_bounds
    }

    /// Per-request deadline: the wall-clock budget covering admission
    /// queueing *and* kernel execution. Once it expires the request
    /// fails with [`TpaError::DeadlineExceeded`] — in the queue
    /// immediately, mid-sweep at the next CPI iteration boundary — so
    /// no request consumes a full sweep after its caller gave up. Must
    /// be nonzero, checked at admission.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches a cooperative cancellation token: call
    /// [`CancelToken::cancel`] from any thread and the running sweep
    /// stops at the next iteration boundary with
    /// [`TpaError::Cancelled`].
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The per-request deadline, if any.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// The attached cancellation token, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// Graph-independent admission checks, shared by
    /// [`RwrService::submit`] (before the gate, so a malformed request
    /// never queues) and [`Snapshot::run`]: the per-request ε must be
    /// positive and finite, the deadline nonzero.
    pub(crate) fn validate_limits(&self) -> Result<(), TpaError> {
        if let Some(eps) = self.eps {
            if !(eps.is_finite() && eps > 0.0) {
                return Err(TpaError::InvalidConfig(format!(
                    "per-request epsilon must be positive and finite, got {eps}"
                )));
            }
        }
        if self.deadline == Some(Duration::ZERO) {
            return Err(TpaError::InvalidConfig("deadline must be a nonzero duration".into()));
        }
        Ok(())
    }
}

/// What a request produced: one entry per seed, in request order.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryResult {
    /// Full score vectors (no `top_k` requested).
    Scores(Vec<Vec<f64>>),
    /// `(node, score)` rankings, best first (`top_k` requested).
    Ranked(Vec<Vec<(NodeId, f64)>>),
}

impl QueryResult {
    /// Unwraps full score vectors; panics if the request asked for top-k.
    pub fn into_scores(self) -> Vec<Vec<f64>> {
        match self {
            QueryResult::Scores(s) => s,
            // lint:allow(panic-freedom, "documented caller-contract panic: the variant is fixed by the request shape the caller built")
            QueryResult::Ranked(_) => panic!("request returned rankings, not score vectors"),
        }
    }

    /// Unwraps rankings; panics if the request asked for full scores.
    pub fn into_ranked(self) -> Vec<Vec<(NodeId, f64)>> {
        match self {
            QueryResult::Ranked(r) => r,
            // lint:allow(panic-freedom, "documented caller-contract panic: the variant is fixed by the request shape the caller built")
            QueryResult::Scores(_) => panic!("request returned score vectors, not rankings"),
        }
    }
}

/// Scores/rankings plus serving metadata: which backend answered, at
/// which snapshot epoch, and — on scalar paths — how much CPI work the
/// answer took.
#[derive(Clone, Debug)]
pub struct QueryResponse {
    /// The scores or rankings, one entry per requested seed.
    pub result: QueryResult,
    /// Name of the propagation backend that served the request (see
    /// [`EngineBackend::name`]).
    pub backend: &'static str,
    /// Epoch of the snapshot that served the request. Two responses
    /// with the same epoch were computed on the identical frozen graph.
    pub epoch: u64,
    /// True when the answer came through the TPA index (approximate
    /// online phase); false for exact CPI.
    pub indexed: bool,
    /// CPI iterations run, for single-seed requests (batched lanes
    /// share iterations across seeds and report `None`).
    pub iterations: Option<usize>,
    /// `‖x(i)‖₁` when the sweep stopped, for single-seed requests.
    pub residual: Option<f64>,
    /// True when the answer came straight from the snapshot's score
    /// cache — no kernel ran. Cached lanes are maintained across epochs
    /// by offset propagation, so they track a cold exact query within
    /// the cache's [`MaintenanceMode`] tolerance (not bitwise).
    pub cached: bool,
    /// The bounded top-k guarantee, present iff the request asked for
    /// [`QueryRequest::with_exact_bounds`]: whether the answer is
    /// provably the dense path's, whether the proof terminated the
    /// sweep early, iterations saved, nodes pruned, and whether the
    /// request fell back to the dense path. Batched requests aggregate
    /// across lanes (sums for the counts, any-lane for the flags).
    pub topk: Option<crate::TopKGuarantee>,
    /// Wall-clock time [`Snapshot::run`] spent on this request —
    /// admission through result assembly — measured inside the call so
    /// callers get per-request timing without wrapping it themselves.
    pub elapsed: Duration,
    /// How far the shed ladder downgraded this request (see
    /// [`DegradationLevel`]). [`DegradationLevel::None`] — the vast
    /// majority — means full fidelity; anything else was applied by
    /// [`RwrService::submit`] under load and is never silent.
    pub degradation: DegradationLevel,
}

/// Hot-seed score lanes folded into a published [`Snapshot`]: the
/// service-side successor of the single-owner [`crate::ScoreCache`].
///
/// Lanes hold exact-CPI score vectors in backend (relabeled) space, one
/// per pinned seed. At every [`RwrService::apply_updates`] publish the
/// writer refreshes each lane by OSP offset propagation — the offset
/// seed is built from the batch's old columns
/// ([`crate::DynamicTransition::offset_seed_for`]) and swept through
/// [`propagate_offset_policy`] under [`FrontierPolicy::Auto`], so the
/// refresh cost scales with the update's reach, not with `n + m`. A
/// cache hit ([`Snapshot::run`] on a single pinned seed at an
/// exact-serving path) returns the lane with no kernel run.
pub struct SnapshotCache {
    /// Pinned seeds, in backend (relabeled) space.
    seeds: Vec<NodeId>,
    /// One score lane per seed, same order. `Arc` per lane: an
    /// update-free publish shares lanes instead of copying them.
    lanes: Vec<Arc<Vec<f64>>>,
    /// How lanes are maintained across epochs (exact offset
    /// convergence, or tolerance-bounded with mass dropping).
    mode: MaintenanceMode,
}

impl std::fmt::Debug for SnapshotCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotCache").field("seeds", &self.seeds.len()).finish_non_exhaustive()
    }
}

impl SnapshotCache {
    /// The lane for `seed` (backend space), if pinned.
    fn lookup(&self, seed: NodeId) -> Option<&Arc<Vec<f64>>> {
        let i = self.seeds.iter().position(|&s| s == seed)?;
        Some(&self.lanes[i])
    }

    /// Number of pinned seeds.
    pub fn len(&self) -> usize {
        self.seeds.len()
    }

    /// True when no seeds are pinned.
    pub fn is_empty(&self) -> bool {
        self.seeds.is_empty()
    }

    /// The maintenance mode lanes are refreshed under.
    pub fn mode(&self) -> MaintenanceMode {
        self.mode
    }
}

/// An immutable, consistently-queryable view of the served graph: the
/// propagation backend, the optional [`TpaIndex`], the reordering
/// permutation, and the execution configuration, stamped with an epoch.
///
/// All query entry points take `&self`; `Snapshot<'static>` (the owned
/// form [`RwrService`] publishes) is `Send + Sync`, so any number of
/// threads can run [`Snapshot::run`] concurrently on one snapshot.
/// [`crate::QueryEngine`] is a thin shim over a single-owner `Snapshot`.
pub struct Snapshot<'g> {
    pub(crate) backend: EngineBackend<'g>,
    pub(crate) index: Option<Arc<TpaIndex>>,
    pub(crate) exact_cfg: CpiConfig,
    pub(crate) lane_tile: usize,
    pub(crate) frontier: FrontierPolicy,
    /// Set when the snapshot serves a relabeled graph: seeds are mapped
    /// on the way in and scores/rankings unmapped on the way out, so
    /// callers never see the new ids.
    pub(crate) perm: Option<Arc<Permutation>>,
    /// Hot-seed score lanes, refreshed at each publish (see
    /// [`SnapshotCache`]). `None` unless the builder pinned seeds.
    pub(crate) cache: Option<Arc<SnapshotCache>>,
    /// Request-path instruments, shared with the owning service (see
    /// [`crate::ServiceMetrics`]). `None` (the default) keeps the query
    /// path at two `Instant` reads and a handful of `Option` branches.
    pub(crate) metrics: Option<Arc<ServiceMetrics>>,
    pub(crate) epoch: u64,
    /// The deterministic fault plan the owning service injects from
    /// ([`ServiceBuilder::fault_plan`]): carried by every published
    /// snapshot so slow-kernel draws hit the read path. `None` (the
    /// default) costs one `Option` branch per request.
    pub(crate) fault: Option<Arc<FaultPlan>>,
    /// Per-node remaining-mass caps for the bounded top-k checker
    /// (`min((Ãᵀ𝟙)[v], 1)`, plus their max), computed lazily on the
    /// first exact-bounds request so epoch publishes stay O(batch).
    /// Each published snapshot gets a fresh cell — the caps describe
    /// that epoch's operator.
    pub(crate) topk_caps: std::sync::OnceLock<Arc<crate::topk::TopkCaps>>,
}

impl<'g> Snapshot<'g> {
    /// Snapshot over an explicit backend with default configuration and
    /// epoch 0.
    pub(crate) fn new(backend: EngineBackend<'g>) -> Self {
        Snapshot {
            backend,
            index: None,
            exact_cfg: CpiConfig::default(),
            lane_tile: crate::engine::DEFAULT_LANE_TILE,
            frontier: FrontierPolicy::Auto,
            perm: None,
            cache: None,
            metrics: None,
            epoch: 0,
            fault: None,
            topk_caps: std::sync::OnceLock::new(),
        }
    }

    /// Number of nodes served.
    pub fn n(&self) -> usize {
        self.backend.n()
    }

    /// The epoch this snapshot was published at (0 for the initial
    /// build and for single-owner engines).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The propagation backend.
    pub fn backend(&self) -> &EngineBackend<'g> {
        &self.backend
    }

    /// The attached index, if any.
    pub fn index(&self) -> Option<&TpaIndex> {
        self.index.as_deref()
    }

    /// The relabeling this snapshot serves under, if reordered.
    pub fn permutation(&self) -> Option<&Permutation> {
        self.perm.as_deref()
    }

    /// The snapshot-level frontier policy (a request can override it).
    pub fn frontier(&self) -> FrontierPolicy {
        self.frontier
    }

    /// The hot-seed score cache carried by this snapshot, if any.
    pub fn score_cache(&self) -> Option<&SnapshotCache> {
        self.cache.as_deref()
    }

    /// The cached lane answering `req`, if the request is a single
    /// pinned seed on an exact-serving path (no per-request epsilon; an
    /// indexed snapshot only caches explicit [`ExecMode::Exact`]
    /// requests — the index path computes different, TPA-approximate
    /// scores).
    ///
    /// At [`DegradationLevel::PreferCache`] and above the eligibility
    /// widens: a pinned single seed is served from its exact lane even
    /// on the indexed path or under an ε override — the cheaper answer
    /// the shed ladder prefers, labeled on the response rather than
    /// silent.
    fn cached_lane(
        &self,
        req: &QueryRequest,
        seeds: &[NodeId],
        level: DegradationLevel,
    ) -> Option<Vec<f64>> {
        let cache = self.cache.as_ref()?;
        if level < DegradationLevel::PreferCache
            && (req.eps.is_some() || (req.mode == ExecMode::Auto && self.index.is_some()))
        {
            return None;
        }
        let [seed] = seeds[..] else { return None };
        Some(cache.lookup(seed)?.as_ref().clone())
    }

    /// Executes a request against this (frozen) snapshot. Single-seed
    /// requests take the scalar path; larger batches run lane tiles
    /// through the backend's fused block kernel, bit-identical to
    /// per-seed execution.
    ///
    /// Admission errors — out-of-range seeds
    /// ([`TpaError::SeedOutOfRange`]), a non-positive per-request
    /// epsilon ([`TpaError::InvalidConfig`]) — are returned before any
    /// kernel runs; an empty batch yields an empty response.
    ///
    /// When the snapshot carries metrics ([`ServiceBuilder::metrics`])
    /// each call records the admission and kernel-run spans, the
    /// per-(kind × backend) latency, cache hit/miss, and — on failure —
    /// the error variant. [`QueryResponse::elapsed`] is measured here
    /// regardless.
    pub fn run(&self, req: &QueryRequest) -> Result<QueryResponse, TpaError> {
        self.run_shed(req, DegradationLevel::None, None)
    }

    /// [`Snapshot::run`] with the shed ladder's verdict and the
    /// service-computed deadline instant. [`RwrService::submit`] enters
    /// here so queue time counts against the deadline; direct
    /// [`Snapshot::run`] calls compute their own instant from the
    /// request's budget.
    pub(crate) fn run_shed(
        &self,
        req: &QueryRequest,
        level: DegradationLevel,
        deadline_at: Option<Instant>,
    ) -> Result<QueryResponse, TpaError> {
        let started = Instant::now();
        match self.run_timed(req, started, level, deadline_at) {
            Ok(resp) => Ok(resp),
            Err(e) => {
                if let Some(m) = &self.metrics {
                    m.record_error(&e);
                }
                Err(e)
            }
        }
    }

    /// [`Snapshot::run_shed`] after shaping the request per the shed
    /// ladder rung: at [`DegradationLevel::LoosenedEpsilon`] and above
    /// the per-request ε is floored at the policy's `shed_epsilon`, and
    /// at [`DegradationLevel::DroppedProof`] the exact-bounds tie-order
    /// proof is dropped to the cheaper dense cut. Shaping is explicit —
    /// the response carries `level`, so no downgrade is ever silent.
    pub(crate) fn run_shaped(
        &self,
        req: &QueryRequest,
        level: DegradationLevel,
        deadline_at: Option<Instant>,
        shed: &ShedPolicy,
    ) -> Result<QueryResponse, TpaError> {
        if level < DegradationLevel::LoosenedEpsilon {
            return self.run_shed(req, level, deadline_at);
        }
        let mut shaped = req.clone();
        if let ShedPolicy::Degrade(cfg) = shed {
            let floor = cfg.shed_epsilon;
            shaped.eps = Some(shaped.eps.map_or(floor, |e| e.max(floor)));
        }
        if level >= DegradationLevel::DroppedProof {
            shaped.exact_bounds = false;
        }
        self.run_shed(&shaped, level, deadline_at)
    }

    fn run_timed(
        &self,
        req: &QueryRequest,
        started: Instant,
        level: DegradationLevel,
        deadline_at: Option<Instant>,
    ) -> Result<QueryResponse, TpaError> {
        let n = self.backend.n();
        req.validate_limits()?;
        check_seeds(&req.seeds, n)?;
        if let Some(k) = req.k {
            if k == 0 {
                return Err(TpaError::InvalidConfig("top-k requests need k ≥ 1 (got 0)".into()));
            }
            if k > n {
                return Err(TpaError::InvalidConfig(format!(
                    "top-k cut k = {k} exceeds the graph's {n} nodes"
                )));
            }
        }
        if req.exact_bounds && req.k.is_none() {
            return Err(TpaError::InvalidConfig("exact_bounds requires a top_k request".into()));
        }
        // A per-request epsilon forms the exact-mode config here, so the
        // shared CpiConfig validation covers it (NaN and ≤ 0 both fail).
        let exact_cfg = match req.eps {
            Some(eps) => {
                let cfg = CpiConfig { eps, ..self.exact_cfg };
                cfg.check()?;
                cfg
            }
            None => self.exact_cfg,
        };
        if let Some(m) = &self.metrics {
            m.record_admission(started.elapsed());
        }
        // The guard rides every kernel below at iteration boundaries.
        // A submit-provided instant already includes queue time; direct
        // Snapshot::run callers start the clock here.
        let deadline_at = deadline_at.or_else(|| req.deadline.map(|d| started + d));
        let guard = SweepGuard::new(started, deadline_at, req.deadline, req.cancel.clone());
        let mut resp = QueryResponse {
            result: QueryResult::Scores(Vec::new()),
            backend: self.backend.name(),
            epoch: self.epoch,
            indexed: false,
            iterations: None,
            residual: None,
            cached: false,
            topk: None,
            elapsed: Duration::ZERO,
            degradation: level,
        };
        if req.seeds.is_empty() {
            if req.k.is_some() {
                resp.result = QueryResult::Ranked(Vec::new());
            }
            if req.exact_bounds {
                resp.topk = Some(crate::TopKGuarantee { proven_exact: true, ..Default::default() });
            }
            return Ok(self.finish(resp, req, started, Duration::ZERO));
        }
        // Reordered snapshots run in new-id space: map seeds in here,
        // map scores back out below (before top-k, so ranking ties keep
        // breaking on the caller-visible old ids).
        let mapped: Vec<NodeId>;
        let seeds: &[NodeId] = match &self.perm {
            None => &req.seeds,
            Some(p) => {
                mapped = req.seeds.iter().map(|&s| p.new_of(s)).collect();
                &mapped
            }
        };
        let policy = req.frontier.unwrap_or(self.frontier);
        // Fault injection (chaos harness only): a drawn slow-kernel
        // fault sleeps here, before the pre-kernel guard check — a
        // deadline-carrying request stalled by the fault fails with the
        // explicit typed error instead of a silently late answer.
        if let Some(f) = &self.fault {
            if let Some(stall) = f.slow_kernel() {
                std::thread::sleep(stall);
            }
        }
        guard.check()?;
        // Bounded exact top-k: native on in-memory backends, bypassing
        // the snapshot cache (the bounded sweep is the point of the
        // request). Out-of-core lanes fall through to the dense path and
        // get stamped as a fallback below.
        if req.exact_bounds && !matches!(self.backend, EngineBackend::OutOfCore(_)) {
            return self.run_bounded(req, seeds, policy, &exact_cfg, resp, started, &guard);
        }
        let run_started = Instant::now();
        let mut scores = if let Some(lane) = self.cached_lane(req, seeds, level) {
            resp.cached = true;
            vec![lane]
        } else {
            match (req.mode, &self.index) {
                (ExecMode::Auto, Some(index)) => {
                    resp.indexed = true;
                    if let [seed] = seeds[..] {
                        let (scores, iters, residual) = index.query_traced_guarded_on(
                            &self.backend,
                            &SeedSet::single(seed),
                            policy,
                            &guard,
                        );
                        guard.check()?;
                        resp.iterations = Some(iters);
                        resp.residual = Some(residual);
                        vec![scores]
                    } else {
                        self.tiled(seeds, &guard, |tile| index.query_batch_on(&self.backend, tile))?
                    }
                }
                _ => {
                    if let [seed] = seeds[..] {
                        let run = cpi_guarded_policy(
                            &self.backend,
                            &SeedSet::single(seed),
                            &exact_cfg,
                            0,
                            None,
                            policy,
                            &guard,
                        );
                        guard.check()?;
                        resp.iterations = Some(run.last_iteration);
                        resp.residual = Some(run.final_residual);
                        vec![run.scores]
                    } else {
                        self.tiled(seeds, &guard, |tile| {
                            cpi_batch_guarded(&self.backend, tile, &exact_cfg, 0, None, || {
                                guard.probe()
                            })
                            .into_lanes()
                        })?
                    }
                }
            }
        };
        let run_elapsed = run_started.elapsed();
        if let Some(p) = &self.perm {
            for s in scores.iter_mut() {
                *s = p.unpermute_values(s);
            }
        }
        resp.result = match req.k {
            None => QueryResult::Scores(scores),
            Some(k) => QueryResult::Ranked(scores.iter().map(|s| top_k_scored(s, k)).collect()),
        };
        if req.exact_bounds {
            // Only the out-of-core backend reaches here with
            // exact_bounds set: the dense cut is exact, but no bounded
            // sweep ran.
            resp.topk = Some(crate::TopKGuarantee {
                proven_exact: !resp.cached,
                early_terminated: false,
                iterations_saved: 0,
                pruned_nodes: 0,
                fallback_dense: true,
            });
        }
        Ok(self.finish(resp, req, started, run_elapsed))
    }

    /// The bounded exact top-k path: per-lane CPI sweeps carrying live
    /// lower/upper score bounds, terminated as soon as the top-k set and
    /// order are provably stable (see [`crate::topk`]). Lanes whose
    /// proof fires before natural convergence return the proven
    /// candidates directly; lanes that reach the natural end finish
    /// densely — bitwise identical to the unbounded path.
    #[allow(clippy::too_many_arguments)]
    fn run_bounded(
        &self,
        req: &QueryRequest,
        seeds: &[NodeId],
        policy: FrontierPolicy,
        exact_cfg: &CpiConfig,
        mut resp: QueryResponse,
        started: Instant,
        guard: &SweepGuard,
    ) -> Result<QueryResponse, TpaError> {
        use crate::topk::{bounded_top_k, BoundedSpec, IndexedFinish};
        let k = req.k.ok_or(TpaError::Internal("exact_bounds request admitted without k"))?;
        let run_started = Instant::now();
        // Per-node tail-share caps, computed once per epoch on first
        // use (a handful of dense propagations) and shared by every
        // bounded request.
        let caps = self
            .topk_caps
            .get_or_init(|| Arc::new(crate::topk::chained_caps(&self.backend)))
            .clone();
        let index = match req.mode {
            ExecMode::Auto => self.index.as_deref(),
            ExecMode::Exact => None,
        };
        let mut agg = crate::TopKGuarantee {
            proven_exact: true,
            early_terminated: false,
            iterations_saved: 0,
            pruned_nodes: 0,
            fallback_dense: false,
        };
        let single = seeds.len() == 1;
        let mut ranked_out = Vec::with_capacity(seeds.len());
        for &seed in seeds {
            let spec = BoundedSpec {
                k,
                caps: &caps,
                indexed: index.map(|ix| IndexedFinish {
                    scale: ix.params().neighbor_scale(),
                    stranger: ix.stranger(),
                    window_end: ix.params().s - 1,
                }),
            };
            let cfg = match index {
                Some(ix) => ix.params().cpi_config(),
                None => *exact_cfg,
            };
            let out = bounded_top_k(
                &self.backend,
                &SeedSet::single(seed),
                &cfg,
                policy,
                &spec,
                Some(guard),
            );
            guard.check()?;
            if single {
                resp.iterations = Some(out.run.last_iteration);
                resp.residual = Some(out.run.final_residual);
            }
            agg.proven_exact &= out.proven.is_some() || out.run.converged || index.is_some();
            agg.early_terminated |= out.iterations_saved > 0;
            agg.iterations_saved += out.iterations_saved;
            agg.pruned_nodes += out.pruned;
            match out.proven {
                Some(mut cut) => {
                    if let Some(p) = &self.perm {
                        for (id, _) in cut.iter_mut() {
                            *id = p.old_of(*id);
                        }
                    }
                    ranked_out.push(cut);
                }
                None => {
                    let mut scores = out.run.scores;
                    if let Some(ix) = index {
                        scores = ix.finish_family(scores);
                    }
                    if let Some(p) = &self.perm {
                        scores = p.unpermute_values(&scores);
                    }
                    ranked_out.push(top_k_scored(&scores, k));
                }
            }
        }
        resp.indexed = index.is_some();
        resp.topk = Some(agg);
        resp.result = QueryResult::Ranked(ranked_out);
        Ok(self.finish(resp, req, started, run_started.elapsed()))
    }

    /// Stamps [`QueryResponse::elapsed`] and records the request into
    /// the attached metrics, if any.
    fn finish(
        &self,
        mut resp: QueryResponse,
        req: &QueryRequest,
        started: Instant,
        run: Duration,
    ) -> QueryResponse {
        resp.elapsed = started.elapsed();
        if let Some(m) = &self.metrics {
            m.record_degradation(resp.degradation);
            if let Some(g) = &resp.topk {
                m.record_topk(g);
            }
            m.record_request(
                crate::metrics::kind_index(req.seeds.len(), req.k.is_some()),
                resp.backend,
                resp.cached,
                self.cache.is_some(),
                resp.elapsed,
                run,
            );
        }
        resp
    }

    /// Runs `serve` over consecutive lane tiles of the batch, keeping
    /// the score blocks cache-sized.
    fn tiled(
        &self,
        seeds: &[NodeId],
        guard: &SweepGuard,
        mut serve: impl FnMut(&[NodeId]) -> Vec<Vec<f64>>,
    ) -> Result<Vec<Vec<f64>>, TpaError> {
        let mut out = Vec::with_capacity(seeds.len());
        for tile in seeds.chunks(self.lane_tile) {
            guard.check()?;
            out.extend(serve(tile));
        }
        guard.check()?;
        Ok(out)
    }
}

impl std::fmt::Debug for Snapshot<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("backend", &self.backend.name())
            .field("n", &self.backend.n())
            .field("epoch", &self.epoch)
            .field("indexed", &self.index.is_some())
            .field("reordered", &self.perm.is_some())
            .finish_non_exhaustive()
    }
}

/// The gate-side half of an admitted submission, shared by
/// [`RwrService::submit`] and the engine shim: validate limits, start
/// the deadline clock (queue wait counts), sample the shed ladder —
/// [`DegradationLevel::Rejected`] fails *before* taking a slot — then
/// acquire an execution permit. Gate-side failures are recorded into
/// `metrics` here (they never reach [`Snapshot::run`], whose own error
/// path records run failures).
pub(crate) fn admit<'g>(
    gate: &'g crate::admission::AdmissionGate,
    metrics: Option<&ServiceMetrics>,
    req: &QueryRequest,
    started: Instant,
) -> Result<(crate::admission::AdmissionPermit<'g>, DegradationLevel, Option<Instant>), TpaError> {
    let record = |e: TpaError| {
        if let Some(m) = metrics {
            m.record_error(&e);
        }
        e
    };
    // Validate before queueing — malformed requests should fail fast,
    // not occupy a queue slot first.
    req.validate_limits().map_err(record)?;
    let deadline_at = req.deadline.map(|d| started + d);
    // Sample the shed ladder *before* acquiring: a rejected request
    // must not consume (or even briefly hold) an execution slot.
    let level = gate.degradation();
    if level == DegradationLevel::Rejected {
        let (inflight, queued) = gate.pressure();
        return Err(record(TpaError::Overloaded { inflight, queued }));
    }
    let permit = gate.acquire(started, deadline_at, req.deadline).map_err(record)?;
    Ok((permit, level, deadline_at))
}

/// Relabels caller-space updates into backend (new-id) space. Shared by
/// the service writer and the engine shim.
pub(crate) fn map_updates(
    perm: &Option<Arc<Permutation>>,
    updates: &[EdgeUpdate],
) -> Option<Vec<EdgeUpdate>> {
    perm.as_ref().map(|p| {
        updates
            .iter()
            .map(|up| match *up {
                EdgeUpdate::Insert(u, v) => EdgeUpdate::Insert(p.new_of(u), p.new_of(v)),
                EdgeUpdate::Delete(u, v) => EdgeUpdate::Delete(p.new_of(u), p.new_of(v)),
            })
            .collect()
    })
}

/// What one [`RwrService::apply_updates`] call did, and which epoch it
/// published.
#[derive(Clone, Debug)]
pub struct UpdateOutcome {
    /// The structural delta and index-staleness accounting (same shape
    /// the single-owner engine reports).
    pub report: UpdateReport,
    /// The epoch the batch was published at; responses carrying this
    /// epoch (or later) see the updated graph.
    pub epoch: u64,
}

/// A background base rebuild in flight: a spawned thread folding a
/// clone of the overlay graph into a fresh CSR, plus the (backend-space)
/// updates the writer has applied since the clone was taken. When the
/// thread finishes, the writer splices the fresh base in with
/// [`DynamicTransition::rebase`] — replaying `log` onto it reproduces
/// the current merged view exactly (edge updates are set-semantic), so
/// nothing reader-visible changes.
struct CompactionJob {
    /// The rebuild thread. Panics are caught inside the closure so the
    /// join never sees an `Err`: the thread returns the fresh base and
    /// its own fold duration, or the panic message.
    // lint:allow(stringly-error, "the Err arm carries a rendered panic payload (inherently a string); internal thread plumbing that never crosses the public API")
    handle: std::thread::JoinHandle<Result<(CsrGraph, Duration), String>>,
    /// Set by the thread before returning `Err` — lets
    /// [`RwrService::compaction_pending`] observe an aborted rebuild
    /// without blocking on a join.
    failed: Arc<AtomicBool>,
    log: Vec<EdgeUpdate>,
}

/// Best-effort extraction of a panic payload's message.
fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Writer-side state: the mutable delta overlay plus everything needed
/// to build the next snapshot. Serialized by [`RwrService`]'s mutex —
/// one writer at a time, readers unaffected.
struct WriterState {
    /// `Some` when the service was built over a [`DynamicGraph`];
    /// `None` for immutable (in-memory / out-of-core) services, which
    /// refuse updates with [`TpaError::BackendMismatch`].
    /// The overlay's own auto-compaction is disabled (threshold `None`):
    /// the service compacts in the background instead, so the write
    /// path never pays an inline `O(n + m)` fold.
    overlay: Option<DynamicTransition>,
    /// Relative overlay-size trigger for *background* compaction (the
    /// source graph's [`tpa_graph::DynamicGraph::compact_threshold`]):
    /// once `delta_edges > trigger · base.m()`, the writer spawns a
    /// rebuild thread. `None` disables background compaction.
    compact_trigger: Option<f64>,
    /// The in-flight background rebuild, if any.
    compaction: Option<CompactionJob>,
    staleness: IndexStalenessPolicy,
    accumulated_drift: f64,
    /// First-occurrence old out-columns of every source changed since
    /// the index was last (re)built or patched — the telescoped operator
    /// delta [`RwrService::patch_index`] builds its offset seed from.
    /// Only fed while an index is attached; cleared on refresh/patch.
    index_deltas: HashMap<NodeId, SourceDelta>,
    /// Background rebuilds that panicked since the service was built.
    /// The overlay is untouched by a failed rebuild — a later batch
    /// re-triggers — but the failure no longer vanishes: it is counted
    /// here, surfaced through [`RwrService::compaction_failures`], and
    /// recorded as a `compaction_failed` metrics event.
    compaction_failures: u64,
    /// Panic message of the most recent failed rebuild.
    last_compaction_failure: Option<String>,
    /// Test hook: poisons the next spawned rebuild so the failure path
    /// is exercisable (see [`RwrService::debug_fail_next_compaction`]).
    fail_next_compaction: bool,
    /// Consecutive failed rebuilds since the last successful install —
    /// drives the exponential retry backoff below. Reset on success.
    compaction_attempts: u32,
    /// No rebuild is spawned before this instant: capped exponential
    /// backoff (`10ms · 2^(attempts−1)`, capped at 5s) after a failure,
    /// so a persistently-poisoned fold can't spin a thread per batch.
    compaction_backoff_until: Option<Instant>,
    /// Rebuilds re-spawned after an earlier failure (the writer kept
    /// publishing epochs in between — failures never stop the service).
    compaction_retries: u64,
}

/// First retry delay after a failed background rebuild.
const COMPACTION_BACKOFF_BASE: Duration = Duration::from_millis(10);
/// Ceiling for the exponential rebuild backoff.
const COMPACTION_BACKOFF_CAP: Duration = Duration::from_secs(5);

impl WriterState {
    /// Splices a *finished* background rebuild into the overlay
    /// (non-blocking: a still-running job is left alone). Reader-visible
    /// scores are unchanged — the rebased overlay has the identical
    /// merged view, only its base/patch split differs.
    fn install_finished_compaction(&mut self, metrics: Option<&ServiceMetrics>) {
        if self.compaction.as_ref().is_some_and(|job| job.handle.is_finished()) {
            self.install_compaction(metrics);
        }
    }

    /// Joins the pending rebuild (blocking) and splices it in. Returns
    /// false when there was no job or the rebuild thread panicked (the
    /// overlay is untouched either way; a failed job is reaped —
    /// counted and recorded — and a later batch re-triggers).
    fn install_compaction(&mut self, metrics: Option<&ServiceMetrics>) -> bool {
        let Some(job) = self.compaction.take() else {
            return false;
        };
        match job.handle.join() {
            Ok(Ok((base, took))) => {
                let Some(overlay) = self.overlay.as_mut() else {
                    return false;
                };
                overlay.rebase(Arc::new(base), &job.log);
                self.compaction_attempts = 0;
                self.compaction_backoff_until = None;
                if let Some(m) = metrics {
                    m.record_compaction_installed(took);
                }
                true
            }
            Ok(Err(reason)) => {
                self.note_compaction_failure(reason, metrics);
                false
            }
            // `join` itself can only fail on a panic that escaped the
            // catch (e.g. a panicking payload drop); treat it the same.
            Err(payload) => {
                let reason = panic_reason(payload.as_ref());
                self.note_compaction_failure(reason, metrics);
                false
            }
        }
    }

    fn note_compaction_failure(&mut self, reason: String, metrics: Option<&ServiceMetrics>) {
        self.compaction_failures += 1;
        self.compaction_attempts = self.compaction_attempts.saturating_add(1);
        let delay = COMPACTION_BACKOFF_BASE
            .saturating_mul(1u32 << (self.compaction_attempts - 1).min(16))
            .min(COMPACTION_BACKOFF_CAP);
        self.compaction_backoff_until = Some(Instant::now() + delay);
        if let Some(m) = metrics {
            m.record_compaction_failed(&reason);
        }
        self.last_compaction_failure = Some(reason);
    }

    /// Spawns a background rebuild when the overlay has outgrown its
    /// trigger and none is already running. The spawned thread folds a
    /// clone of the graph (cheap: the base CSR is shared by `Arc`) into
    /// a fresh CSR; publishes continue meanwhile. Panics inside the
    /// fold are caught and reported instead of silently dropped.
    ///
    /// A rebuild whose predecessor failed waits out the capped
    /// exponential backoff first, then counts as a *retry* — the writer
    /// never stops publishing epochs while retrying.
    fn maybe_spawn_compaction(
        &mut self,
        metrics: Option<&ServiceMetrics>,
        fault: Option<&FaultPlan>,
    ) {
        if self.compaction.is_some() {
            return;
        }
        if self.compaction_backoff_until.is_some_and(|until| Instant::now() < until) {
            return;
        }
        let (Some(trigger), Some(overlay)) = (self.compact_trigger, self.overlay.as_ref()) else {
            return;
        };
        let g = overlay.graph();
        let delta_edges = g.delta_edges() as u64;
        if (delta_edges as f64) > trigger * g.base_arc().m() as f64 {
            let clone = g.clone();
            let poison = std::mem::take(&mut self.fail_next_compaction)
                || fault.is_some_and(|f| f.poison_compaction());
            if self.compaction_attempts > 0 {
                self.compaction_retries += 1;
                if let Some(m) = metrics {
                    m.record_compaction_retry();
                }
            }
            let failed = Arc::new(AtomicBool::new(false));
            let flag = Arc::clone(&failed);
            let handle = std::thread::spawn(move || {
                let t = Instant::now();
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    assert!(!poison, "injected compaction failure");
                    clone.snapshot()
                }));
                match result {
                    Ok(base) => Ok((base, t.elapsed())),
                    Err(payload) => {
                        flag.store(true, Ordering::Release); // ord: Release pairs with the Acquire in compaction_pending — the reaper must see the failure flag no later than the thread's exit
                        Err(panic_reason(payload.as_ref()))
                    }
                }
            });
            self.compaction = Some(CompactionJob { handle, failed, log: Vec::new() });
            if let Some(m) = metrics {
                m.record_compaction_started(delta_edges);
            }
        }
    }
}

/// A concurrent, owned RWR serving handle: `Send + Sync`, shared across
/// threads as `Arc<RwrService>`. Readers call [`RwrService::submit`]
/// with `&self` and are never serialized behind the writer; a single
/// writer evolves the graph through [`RwrService::apply_updates`],
/// which publishes a new [`Snapshot`] epoch atomically. See the module
/// docs for the epoch-swap design.
pub struct RwrService {
    /// The published snapshot. Readers hold the read lock only long
    /// enough to clone the `Arc`; the writer holds the write lock only
    /// long enough to swap it.
    current: RwLock<Arc<Snapshot<'static>>>,
    writer: Mutex<WriterState>,
    /// Shared with every published snapshot; `None` unless the builder
    /// attached a registry ([`ServiceBuilder::metrics`]).
    metrics: Option<Arc<ServiceMetrics>>,
    /// The admission gate, when [`ServiceBuilder::admission`] configured
    /// one. `None` keeps [`RwrService::submit`] unconditional — the
    /// pre-admission behaviour, bit for bit.
    admission: Option<AdmissionGate>,
    /// Deterministic fault plan for chaos testing; shared with every
    /// published snapshot (see [`FaultPlan`]). `None` in production.
    fault: Option<Arc<FaultPlan>>,
}

impl std::fmt::Debug for RwrService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RwrService").field("snapshot", &self.snapshot()).finish_non_exhaustive()
    }
}

impl RwrService {
    /// Pins the current snapshot: an `Arc` the caller can query any
    /// number of times, all on the same frozen epoch, regardless of
    /// concurrent publishes.
    pub fn snapshot(&self) -> Arc<Snapshot<'static>> {
        // Lock poisoning only happens if a publisher panicked; the Arc
        // itself is always a fully-published snapshot, so recover.
        Arc::clone(&self.current.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Executes a request on the current snapshot — through the
    /// admission gate when one is configured.
    ///
    /// Without a gate this is equivalent to `self.snapshot().run(req)`
    /// (pin the snapshot explicitly instead when several requests must
    /// observe the same epoch). With a gate, the request first clears
    /// admission: at most `max_inflight` requests execute concurrently,
    /// excess submissions wait in a bounded queue (time spent queued
    /// counts against the request's deadline), and overflow is rejected
    /// with [`TpaError::Overloaded`]. Under [`ShedPolicy::Degrade`] the
    /// shed ladder may additionally shape the request — the applied
    /// [`DegradationLevel`] is stamped on the response, never silent.
    pub fn submit(&self, req: &QueryRequest) -> Result<QueryResponse, TpaError> {
        let started = Instant::now();
        let Some(gate) = &self.admission else {
            let snap = self.snapshot();
            if let Some(m) = &snap.metrics {
                m.record_pin(started.elapsed());
            }
            return snap.run(req);
        };
        let (permit, level, deadline_at) = admit(gate, self.metrics.as_deref(), req, started)?;
        let snap = self.snapshot();
        if let Some(m) = &snap.metrics {
            m.record_pin(started.elapsed());
        }
        let result = snap.run_shaped(req, level, deadline_at, &gate.config().shed);
        drop(permit);
        result
    }

    /// Full scores for one seed (index path when available).
    pub fn query(&self, seed: NodeId) -> Result<Vec<f64>, TpaError> {
        let resp = self.submit(&QueryRequest::single(seed))?;
        resp.result
            .into_scores()
            .pop()
            .ok_or(TpaError::Internal("single request yielded no score vector"))
    }

    /// Best `k` nodes for one seed, best first.
    pub fn top_k(&self, seed: NodeId, k: usize) -> Result<Vec<(NodeId, f64)>, TpaError> {
        let resp = self.submit(&QueryRequest::single(seed).top_k(k))?;
        resp.result
            .into_ranked()
            .pop()
            .ok_or(TpaError::Internal("single request yielded no ranking"))
    }

    /// Number of nodes served.
    pub fn n(&self) -> usize {
        self.snapshot().n()
    }

    /// The currently-published epoch.
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch
    }

    /// Accumulated relative operator drift since the index was last
    /// (re)built (see [`IndexStalenessPolicy`]).
    pub fn accumulated_drift(&self) -> f64 {
        self.writer_state().accumulated_drift
    }

    /// True when the served index has drifted past the staleness
    /// threshold without being refreshed.
    pub fn index_stale(&self) -> bool {
        let snap = self.snapshot();
        let w = self.writer_state();
        snap.index.is_some() && w.accumulated_drift > w.staleness.threshold
    }

    fn writer_state(&self) -> std::sync::MutexGuard<'_, WriterState> {
        self.writer.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Applies an edge-update batch to the dynamic overlay and
    /// atomically publishes the next snapshot epoch. Queries already in
    /// flight finish on the epoch they pinned; later submissions see
    /// the new graph. Tracks index staleness exactly like
    /// [`crate::QueryEngine::apply_updates`] (auto-refresh
    /// re-preprocesses before publishing).
    ///
    /// The publish is copy-on-write: the new epoch's backend is a
    /// [`crate::PatchedTransition`] sharing the base CSR and the
    /// merged-overlay rows with the writer, so the cost is `O(batch)`
    /// map clones plus two flat per-node copies — no CSR rebuild, no
    /// edge traversal, flat in `m`. Once the overlay outgrows its
    /// compaction trigger a *background* thread folds it into a fresh
    /// base, spliced in here (non-blocking) when ready; published
    /// scores are bitwise unaffected.
    ///
    /// Returns [`TpaError::BackendMismatch`] when the service was built
    /// over an immutable (non-dynamic) graph. Concurrent writers are
    /// serialized on an internal mutex — batches never interleave.
    pub fn apply_updates(&self, updates: &[EdgeUpdate]) -> Result<UpdateOutcome, TpaError> {
        let publish_started = Instant::now();
        let mut w = self.writer_state();
        let prev = self.snapshot();
        w.install_finished_compaction(self.metrics.as_deref());
        let WriterState { overlay, compaction, index_deltas, .. } = &mut *w;
        let overlay = overlay.as_mut().ok_or(TpaError::BackendMismatch {
            operation: "edge updates",
            backend: prev.backend.name(),
        })?;
        // Fault injection (chaos harness): a drawn publish fault fails
        // the batch *before* any overlay mutation, so the retry path is
        // exercisable and a retried batch is bitwise equivalent to one
        // that never failed.
        if let Some(f) = &self.fault {
            if f.publish_failure() {
                let e =
                    TpaError::Io(std::io::Error::other("injected publish failure (fault plan)"));
                if let Some(m) = &self.metrics {
                    m.record_error(&e);
                }
                return Err(e);
            }
        }
        // Callers speak old ids; a reordered service stores new ones.
        let mapped = map_updates(&prev.perm, updates);
        let updates = mapped.as_deref().unwrap_or(updates);
        let delta = overlay.apply(updates);
        // A rebuild in flight misses this batch; log it for the replay.
        if let Some(job) = compaction.as_mut() {
            job.log.extend_from_slice(updates);
        }
        if prev.index.is_some() {
            // First occurrence wins: each node's entry keeps the column
            // as it was when the index was last (re)built, so the
            // accumulated deltas telescope across batches.
            for sd in &delta.sources {
                index_deltas.entry(sd.node).or_insert_with(|| sd.clone());
            }
        }
        let n = overlay.n();
        let mut report = UpdateReport {
            delta,
            accumulated_drift: 0.0,
            index_stale: false,
            index_refreshed: false,
        };
        let backend = EngineBackend::Patched(overlay.publish_patched());
        let cache = refresh_cache(
            prev.cache.as_ref(),
            overlay,
            &backend,
            &report.delta.sources,
            &prev.exact_cfg,
        );
        let overlay_edges = overlay.graph().delta_edges() as u64;
        let base_m = overlay.graph().base_arc().m();
        let mut index = prev.index.clone();
        if let Some(old) = &index {
            w.accumulated_drift += report.delta.column_delta_mass / n.max(1) as f64;
            if w.accumulated_drift > w.staleness.threshold {
                if w.staleness.auto_refresh {
                    let mut fresh = TpaIndex::preprocess_on(&backend, *old.params());
                    if let Some(p) = &prev.perm {
                        fresh = fresh.with_permutation(p.as_ref().clone());
                    }
                    index = Some(Arc::new(fresh));
                    w.accumulated_drift = 0.0;
                    w.index_deltas.clear();
                    report.index_refreshed = true;
                } else {
                    report.index_stale = true;
                }
            }
            report.accumulated_drift = w.accumulated_drift;
        }
        w.maybe_spawn_compaction(self.metrics.as_deref(), self.fault.as_deref());
        // The writer mutex serializes publishes, so the pinned snapshot's
        // epoch is the latest one and the successor is race-free.
        let epoch = prev.epoch + 1;
        let trigger_edges = w.compact_trigger.map(|t| t * base_m as f64);
        self.publish(&prev, backend, index, cache, epoch);
        if let Some(m) = &self.metrics {
            m.record_publish(
                epoch,
                updates.len(),
                publish_started.elapsed(),
                overlay_edges,
                trigger_edges,
            );
        }
        Ok(UpdateOutcome { report, epoch })
    }

    /// Folds the writer-side overlay into a fresh base snapshot. The
    /// merged view — and therefore every published score — is
    /// unchanged, so no new epoch is published; only the writer's
    /// per-update merge costs drop back to clean-CSR levels.
    pub fn compact(&self) -> Result<(), TpaError> {
        let mut w = self.writer_state();
        let backend_name = self.snapshot().backend.name();
        let overlay = w.overlay.as_mut().ok_or(TpaError::BackendMismatch {
            operation: "overlay compaction",
            backend: backend_name,
        })?;
        overlay.compact();
        Ok(())
    }

    /// Re-runs TPA preprocessing on the current graph state, publishing
    /// a new epoch with the refreshed index and resetting the drift
    /// accumulator. No-op (returning the current epoch) when no index
    /// is attached; [`TpaError::BackendMismatch`] on immutable services
    /// (their index can never drift).
    pub fn refresh_index(&self) -> Result<u64, TpaError> {
        let mut w = self.writer_state();
        let prev = self.snapshot();
        let overlay = w.overlay.as_ref().ok_or(TpaError::BackendMismatch {
            operation: "index refresh",
            backend: prev.backend.name(),
        })?;
        let Some(old) = &prev.index else {
            return Ok(prev.epoch);
        };
        let backend = EngineBackend::Patched(overlay.publish_patched());
        let mut fresh = TpaIndex::preprocess_on(&backend, *old.params());
        if let Some(p) = &prev.perm {
            fresh = fresh.with_permutation(p.as_ref().clone());
        }
        w.accumulated_drift = 0.0;
        w.index_deltas.clear();
        let epoch = prev.epoch + 1;
        // The graph did not change, so the cache lanes are carried over.
        self.publish(&prev, backend, Some(Arc::new(fresh)), prev.cache.clone(), epoch);
        if let Some(m) = &self.metrics {
            m.record_epoch(epoch);
            m.record_index_rebuilt(epoch, false);
        }
        Ok(epoch)
    }

    /// Patches the served index's stranger tail for the operator drift
    /// accumulated since it was last (re)built, publishing a new epoch —
    /// the cheap alternative to [`RwrService::refresh_index`]. The
    /// offset seed is built from the telescoped first-occurrence old
    /// columns and propagated through the updated operator by the
    /// frontier-routed offset kernel, so the cost scales with the
    /// drift's reach instead of a full `O(n + m)` re-preprocess; the
    /// patched stranger tracks a re-preprocessed one within the CPI
    /// tolerance plus the already-truncated `O((1−c)^T)` window-shift
    /// tail (see [`TpaIndex::patch_stranger_on`]). Resets the drift
    /// accumulator.
    ///
    /// No-op (returning the current epoch) when no index is attached or
    /// nothing changed since the last (re)build/patch;
    /// [`TpaError::BackendMismatch`] on immutable services.
    pub fn patch_index(&self) -> Result<u64, TpaError> {
        let mut w = self.writer_state();
        let prev = self.snapshot();
        let overlay = w.overlay.as_ref().ok_or(TpaError::BackendMismatch {
            operation: "index patching",
            backend: prev.backend.name(),
        })?;
        let Some(old) = &prev.index else {
            return Ok(prev.epoch);
        };
        if w.index_deltas.is_empty() {
            return Ok(prev.epoch);
        }
        let deltas: Vec<SourceDelta> = w.index_deltas.values().cloned().collect();
        let offset = overlay.offset_seed_for(&deltas, old.params().c, old.stranger());
        let backend = EngineBackend::Patched(overlay.publish_patched());
        let (fresh, _stats) =
            old.patch_stranger_on(&backend, offset, MaintenanceMode::Exact, prev.frontier);
        w.index_deltas.clear();
        w.accumulated_drift = 0.0;
        let epoch = prev.epoch + 1;
        self.publish(&prev, backend, Some(Arc::new(fresh)), prev.cache.clone(), epoch);
        if let Some(m) = &self.metrics {
            m.record_epoch(epoch);
            m.record_index_rebuilt(epoch, true);
        }
        Ok(epoch)
    }

    /// Joins any in-flight background compaction and splices the fresh
    /// base into the overlay (blocking). Returns true when a rebuild
    /// was installed. Published scores never change — this only resets
    /// the overlay's base/patch split — so no epoch is published; it
    /// exists for deterministic shutdown and tests.
    pub fn flush_compaction(&self) -> bool {
        self.writer_state().install_compaction(self.metrics.as_deref())
    }

    /// True while a background base rebuild is in flight. A rebuild
    /// whose thread already *failed* is reaped here — counted, recorded,
    /// and reported as no-longer-pending — so a panicked compaction is
    /// never mistaken for one that is still running.
    pub fn compaction_pending(&self) -> bool {
        let mut w = self.writer_state();
        // ord: Acquire pairs with the Release store in the compaction thread's panic handler
        if w.compaction.as_ref().is_some_and(|job| job.failed.load(Ordering::Acquire)) {
            w.install_compaction(self.metrics.as_deref());
        }
        w.compaction.is_some()
    }

    /// Number of background base rebuilds that panicked since the
    /// service was built. The overlay is never corrupted by a failed
    /// rebuild (the fresh base is only spliced in on success), but the
    /// failure is counted here instead of vanishing with the thread.
    pub fn compaction_failures(&self) -> u64 {
        self.writer_state().compaction_failures
    }

    /// Panic message of the most recent failed background rebuild.
    pub fn last_compaction_failure(&self) -> Option<String> {
        self.writer_state().last_compaction_failure.clone()
    }

    /// Number of background rebuilds re-spawned after an earlier
    /// failure (each waited out the capped exponential backoff first).
    pub fn compaction_retries(&self) -> u64 {
        self.writer_state().compaction_retries
    }

    /// Test hook: makes the *next* spawned background rebuild panic, so
    /// the failure-surfacing path is exercisable deterministically.
    #[doc(hidden)]
    pub fn debug_fail_next_compaction(&self) {
        self.writer_state().fail_next_compaction = true;
    }

    /// Typed readout of every instrument the service records, or `None`
    /// when the builder attached no registry (see
    /// [`ServiceBuilder::metrics`]).
    pub fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        self.metrics.as_ref().map(|m| m.snapshot())
    }

    /// The metrics registry this service records into, if any — hand it
    /// to [`tpa_obs::MetricsRegistry::render_prometheus`] /
    /// [`tpa_obs::MetricsRegistry::render_json`] for export.
    pub fn metrics_registry(&self) -> Option<&Arc<MetricsRegistry>> {
        self.metrics.as_ref().map(|m| m.registry())
    }

    /// Swaps in the next snapshot, inheriting the previous epoch's
    /// execution configuration.
    fn publish(
        &self,
        prev: &Snapshot<'static>,
        backend: EngineBackend<'static>,
        index: Option<Arc<TpaIndex>>,
        cache: Option<Arc<SnapshotCache>>,
        epoch: u64,
    ) {
        let snap = Snapshot {
            backend,
            index,
            exact_cfg: prev.exact_cfg,
            lane_tile: prev.lane_tile,
            frontier: prev.frontier,
            perm: prev.perm.clone(),
            cache,
            metrics: self.metrics.clone(),
            epoch,
            topk_caps: std::sync::OnceLock::new(),
            fault: self.fault.clone(),
        };
        *self.current.write().unwrap_or_else(|e| e.into_inner()) = Arc::new(snap);
    }
}

/// Refreshes the hot-seed lanes for the epoch being published: each
/// lane is corrected by OSP offset propagation — seed from the batch's
/// old columns, swept through the *updated* operator under
/// [`FrontierPolicy::Auto`] so the work scales with the update's reach.
/// A batch that changed no columns shares the previous cache wholesale
/// (pure `Arc` bump).
fn refresh_cache(
    prev: Option<&Arc<SnapshotCache>>,
    overlay: &DynamicTransition,
    backend: &EngineBackend<'static>,
    sources: &[SourceDelta],
    cfg: &CpiConfig,
) -> Option<Arc<SnapshotCache>> {
    let cache = prev?;
    if sources.is_empty() {
        return Some(Arc::clone(cache));
    }
    let lanes = cache
        .lanes
        .iter()
        .map(|lane| {
            let mut scores = lane.as_ref().clone();
            let offset = overlay.offset_seed_for(sources, cfg.c, &scores);
            propagate_offset_policy(
                backend,
                offset,
                cfg,
                cache.mode,
                FrontierPolicy::Auto,
                &mut scores,
            );
            Arc::new(scores)
        })
        .collect();
    Some(Arc::new(SnapshotCache { seeds: cache.seeds.clone(), lanes, mode: cache.mode }))
}

/// The graph a [`ServiceBuilder`] starts from.
enum GraphSource {
    /// Immutable in-memory CSR (updates refused).
    InMemory(CsrGraph),
    /// Mutable delta-overlay graph (updates publish new epochs).
    Dynamic(DynamicGraph),
    /// Immutable disk-resident graph, `O(n)` memory (updates refused).
    Disk(DiskGraph),
}

/// How the builder obtains the [`TpaIndex`].
enum IndexSpec {
    /// Serve exact CPI only.
    None,
    /// Run TPA preprocessing on the built backend.
    Preprocess(TpaParams),
    /// Attach an existing (e.g. loaded) index.
    Attach(TpaIndex),
}

/// One place for every serving knob that used to be a scattered
/// `QueryEngine::with_*` call: graph source, worker threads, tile and
/// frontier policies, lane tile, CPI config, reordering, index, and
/// staleness policy. `build()` validates the combination and returns a
/// ready [`RwrService`] — or a [`TpaError`] explaining what's wrong,
/// instead of a panic halfway through construction.
pub struct ServiceBuilder {
    source: GraphSource,
    threads: usize,
    tile: TilePolicy,
    frontier: FrontierPolicy,
    lane_tile: usize,
    exact_cfg: CpiConfig,
    reorder: Option<ReorderStrategy>,
    index: IndexSpec,
    staleness: IndexStalenessPolicy,
    cache: Option<(Vec<NodeId>, MaintenanceMode)>,
    metrics: Option<Arc<MetricsRegistry>>,
    admission: Option<AdmissionConfig>,
    fault: Option<FaultPlan>,
}

impl std::fmt::Debug for ServiceBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceBuilder").field("threads", &self.threads).finish_non_exhaustive()
    }
}

impl ServiceBuilder {
    fn from_source(source: GraphSource) -> Self {
        ServiceBuilder {
            source,
            threads: 1,
            tile: TilePolicy::Auto,
            frontier: FrontierPolicy::Auto,
            lane_tile: crate::engine::DEFAULT_LANE_TILE,
            exact_cfg: CpiConfig::default(),
            reorder: None,
            index: IndexSpec::None,
            staleness: IndexStalenessPolicy::default(),
            cache: None,
            metrics: None,
            admission: None,
            fault: None,
        }
    }

    /// Service over an immutable in-memory graph (updates refused with
    /// [`TpaError::BackendMismatch`]).
    pub fn in_memory(graph: CsrGraph) -> Self {
        Self::from_source(GraphSource::InMemory(graph))
    }

    /// Service over a mutable delta-overlay graph:
    /// [`RwrService::apply_updates`] evolves it and publishes epochs.
    pub fn dynamic(graph: DynamicGraph) -> Self {
        Self::from_source(GraphSource::Dynamic(graph))
    }

    /// Service streaming a disk-resident graph (`O(n)` memory; updates
    /// and reordering refused).
    pub fn out_of_core(disk: DiskGraph) -> Self {
        Self::from_source(GraphSource::Disk(disk))
    }

    /// Worker threads for the propagation backend: `1` (default) is
    /// sequential, `0` means "use available parallelism", `N > 1` that
    /// many destination-range workers. Ignored by the out-of-core
    /// backend (a single sequential disk stream).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Cache-blocking policy for the in-memory kernels (bitwise
    /// invisible; see [`TilePolicy`]).
    pub fn tile_policy(mut self, tile: TilePolicy) -> Self {
        self.tile = tile;
        self
    }

    /// Default [`FrontierPolicy`] for scalar requests (a request-level
    /// [`QueryRequest::with_frontier`] overrides it).
    pub fn frontier(mut self, policy: FrontierPolicy) -> Self {
        self.frontier = policy;
        self
    }

    /// Lane-tile width for batched requests (see
    /// [`crate::QueryEngine::with_lane_tile`]). Must be at least 1.
    pub fn lane_tile(mut self, tile: usize) -> Self {
        self.lane_tile = tile;
        self
    }

    /// Config used for exact (non-indexed) execution.
    pub fn cpi_config(mut self, cfg: CpiConfig) -> Self {
        self.exact_cfg = cfg;
        self
    }

    /// Relabels the served graph for cache locality (see
    /// [`tpa_graph::reorder`]); transparent to callers — seeds map in,
    /// scores and update endpoints map through. Refused for out-of-core
    /// sources and when the attached index already stores an ordering.
    pub fn reordering(mut self, strategy: ReorderStrategy) -> Self {
        self.reorder = Some(strategy);
        self
    }

    /// Runs TPA preprocessing on the built backend and serves through
    /// the resulting index.
    pub fn preprocess(mut self, params: TpaParams) -> Self {
        self.index = IndexSpec::Preprocess(params);
        self
    }

    /// Attaches an existing index (e.g. loaded with
    /// [`TpaIndex::load`]). An index preprocessed on a reordered graph
    /// carries its permutation; the built service adopts it.
    pub fn index(mut self, index: TpaIndex) -> Self {
        self.index = IndexSpec::Attach(index);
        self
    }

    /// Staleness policy for the index under update streams (see
    /// [`IndexStalenessPolicy`]).
    pub fn staleness(mut self, policy: IndexStalenessPolicy) -> Self {
        self.staleness = policy;
        self
    }

    /// Pins hot seeds (caller id space) in a service-side score cache:
    /// their exact-CPI lanes are computed once at build, refreshed at
    /// every publish by frontier-routed offset propagation under
    /// `mode`, and served straight from the snapshot on a cache hit
    /// (see [`SnapshotCache`] and [`QueryResponse::cached`]). On
    /// immutable sources the lanes simply never need refreshing.
    pub fn score_cache(mut self, seeds: impl Into<Vec<NodeId>>, mode: MaintenanceMode) -> Self {
        self.cache = Some((seeds.into(), mode));
        self
    }

    /// Attaches a metrics registry: the built service registers its
    /// instruments there and records every request, publish, and
    /// compaction event (see [`crate::ServiceMetrics`] and the
    /// `tpa-obs` crate). Also enables the kernel profiling counters
    /// ([`crate::kernel_profile`]). Without this call the service
    /// records nothing and the query path stays metrics-free.
    pub fn metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Puts an admission gate in front of [`RwrService::submit`]: at
    /// most [`AdmissionConfig::max_inflight`] requests execute
    /// concurrently, excess waits in a bounded queue, overflow is
    /// rejected with [`TpaError::Overloaded`], and — under
    /// [`ShedPolicy::Degrade`] — the shed ladder trades precision for
    /// goodput as pressure rises (see [`DegradationLevel`]). Without
    /// this call `submit` admits unconditionally, exactly as before.
    pub fn admission(mut self, cfg: AdmissionConfig) -> Self {
        self.admission = Some(cfg);
        self
    }

    /// Arms a deterministic fault plan for chaos testing: seeded slow
    /// kernels, injected publish failures, and poisoned background
    /// compactions (see [`FaultPlan`]). Test-only — never configure in
    /// production.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Validates the configuration and constructs the service.
    pub fn build(self) -> Result<RwrService, TpaError> {
        self.exact_cfg.check()?;
        if self.lane_tile < 1 {
            return Err(TpaError::InvalidConfig("lane tile must be at least 1".into()));
        }
        if let IndexSpec::Preprocess(params) = &self.index {
            params.check()?;
        }
        self.staleness.check()?;
        if let Some(adm) = &self.admission {
            adm.check()?;
        }
        let metrics = self.metrics.as_ref().map(|r| ServiceMetrics::new(Arc::clone(r)));
        let sequential = self.threads == 1;
        let threads = match self.threads {
            0 => std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1),
            t => t,
        };

        // Out-of-core: no relabeling (the edge file is laid out once),
        // single sequential stream.
        if let GraphSource::Disk(disk) = self.source {
            if self.reorder.is_some() {
                return Err(TpaError::BackendMismatch {
                    operation: "reordering",
                    backend: "out-of-core",
                });
            }
            let backend = EngineBackend::OutOfCore(disk);
            let index = match self.index {
                IndexSpec::None => None,
                IndexSpec::Preprocess(params) => {
                    Some(Arc::new(TpaIndex::preprocess_on(&backend, params)))
                }
                IndexSpec::Attach(idx) => {
                    idx.check_backend(&backend)?;
                    if idx.permutation().is_some() {
                        return Err(TpaError::BackendMismatch {
                            operation: "a reordered index",
                            backend: "out-of-core",
                        });
                    }
                    Some(Arc::new(idx))
                }
            };
            let cache = build_cache(self.cache, &backend, &None, &self.exact_cfg, self.frontier)?;
            return Ok(Self::assemble(
                backend,
                index,
                cache,
                None,
                None,
                None,
                self.frontier,
                self.lane_tile,
                self.exact_cfg,
                self.staleness,
                metrics,
                self.admission,
                self.fault,
            ));
        }

        // Resolve the permutation before any backend exists: either the
        // builder's reordering strategy, or the ordering stored in an
        // attached index.
        let stored_perm = match &self.index {
            IndexSpec::Attach(idx) => idx.permutation().cloned(),
            _ => None,
        };
        if self.reorder.is_some() && stored_perm.is_some() {
            return Err(TpaError::InvalidConfig(
                "the attached index already stores an ordering; drop .reordering(..) and let the \
                 index restore it"
                    .into(),
            ));
        }
        if self.reorder.is_some() && matches!(self.index, IndexSpec::Attach(_)) {
            return Err(TpaError::InvalidConfig(
                "cannot reorder under an index preprocessed without one; preprocess through a \
                 reordered builder instead"
                    .into(),
            ));
        }

        match self.source {
            GraphSource::InMemory(g) => {
                if let IndexSpec::Attach(idx) = &self.index {
                    idx.check_backend_n(g.n())?;
                }
                let perm = match (&self.reorder, stored_perm) {
                    (Some(strategy), _) => Some(Arc::new(reorder(&g, *strategy))),
                    (None, Some(p)) => Some(Arc::new(p)),
                    (None, None) => None,
                };
                if let Some(p) = &perm {
                    if p.len() != g.n() {
                        return Err(TpaError::InvalidConfig(format!(
                            "permutation relabels {} nodes but the graph has {}",
                            p.len(),
                            g.n()
                        )));
                    }
                }
                let served = match &perm {
                    Some(p) => Arc::new(g.permuted(p)),
                    None => Arc::new(g),
                };
                let backend = if sequential {
                    EngineBackend::Sequential(
                        Transition::shared(served).with_tile_policy(self.tile),
                    )
                } else {
                    EngineBackend::Parallel(
                        ParallelTransition::shared(served, threads).with_tile_policy(self.tile),
                    )
                };
                let index = resolve_index(self.index, &backend, &perm)?;
                let cache =
                    build_cache(self.cache, &backend, &perm, &self.exact_cfg, self.frontier)?;
                Ok(Self::assemble(
                    backend,
                    index,
                    cache,
                    perm,
                    None,
                    None,
                    self.frontier,
                    self.lane_tile,
                    self.exact_cfg,
                    self.staleness,
                    metrics,
                    self.admission,
                    self.fault,
                ))
            }
            GraphSource::Dynamic(dg) => {
                if let IndexSpec::Attach(idx) = &self.index {
                    idx.check_backend_n(dg.n())?;
                }
                let threshold = dg.compact_threshold();
                let (dg, perm) = match (&self.reorder, stored_perm) {
                    (Some(strategy), _) => {
                        let snap = dg.snapshot();
                        let p = reorder(&snap, *strategy);
                        let relabeled =
                            DynamicGraph::new(snap.permuted(&p)).with_compact_threshold(threshold);
                        (relabeled, Some(Arc::new(p)))
                    }
                    (None, Some(p)) => {
                        let snap = dg.snapshot();
                        if p.len() != snap.n() {
                            return Err(TpaError::InvalidConfig(format!(
                                "permutation relabels {} nodes but the graph has {}",
                                p.len(),
                                snap.n()
                            )));
                        }
                        let relabeled =
                            DynamicGraph::new(snap.permuted(&p)).with_compact_threshold(threshold);
                        (relabeled, Some(Arc::new(p)))
                    }
                    (None, None) => (dg, None),
                };
                // The overlay never self-compacts inline: the graph's
                // threshold becomes the *background* compaction trigger,
                // keeping every inline `O(n + m)` fold off the write path.
                let overlay = DynamicTransition::new(dg.with_compact_threshold(None))
                    .with_threads(threads)
                    .with_tile_policy(self.tile);
                // Epoch 0 publishes copy-on-write too — no CSR rebuild
                // anywhere on the dynamic serving path.
                let backend = EngineBackend::Patched(overlay.publish_patched());
                let index = resolve_index(self.index, &backend, &perm)?;
                let cache =
                    build_cache(self.cache, &backend, &perm, &self.exact_cfg, self.frontier)?;
                Ok(Self::assemble(
                    backend,
                    index,
                    cache,
                    perm,
                    Some(overlay),
                    threshold,
                    self.frontier,
                    self.lane_tile,
                    self.exact_cfg,
                    self.staleness,
                    metrics,
                    self.admission,
                    self.fault,
                ))
            }
            // lint:allow(panic-freedom, "build-time only: the Disk arm returned earlier in this function, so this match sees Csr/Dynamic sources only")
            GraphSource::Disk(_) => unreachable!("handled above"),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        backend: EngineBackend<'static>,
        index: Option<Arc<TpaIndex>>,
        cache: Option<Arc<SnapshotCache>>,
        perm: Option<Arc<Permutation>>,
        overlay: Option<DynamicTransition>,
        compact_trigger: Option<f64>,
        frontier: FrontierPolicy,
        lane_tile: usize,
        exact_cfg: CpiConfig,
        staleness: IndexStalenessPolicy,
        metrics: Option<Arc<ServiceMetrics>>,
        admission: Option<AdmissionConfig>,
        fault: Option<FaultPlan>,
    ) -> RwrService {
        if let Some(m) = &metrics {
            m.record_epoch(0);
        }
        let fault = fault.map(Arc::new);
        let gate = admission.map(|cfg| AdmissionGate::new(cfg, metrics.clone()));
        let snap = Snapshot {
            backend,
            index,
            exact_cfg,
            lane_tile,
            frontier,
            perm,
            cache,
            metrics: metrics.clone(),
            epoch: 0,
            topk_caps: std::sync::OnceLock::new(),
            fault: fault.clone(),
        };
        RwrService {
            current: RwLock::new(Arc::new(snap)),
            writer: Mutex::new(WriterState {
                overlay,
                compact_trigger,
                compaction: None,
                staleness,
                accumulated_drift: 0.0,
                index_deltas: HashMap::new(),
                compaction_failures: 0,
                last_compaction_failure: None,
                fail_next_compaction: false,
                compaction_attempts: 0,
                compaction_backoff_until: None,
                compaction_retries: 0,
            }),
            metrics,
            admission: gate,
            fault,
        }
    }
}

/// Builds the initial [`SnapshotCache`] from the builder's pinned
/// seeds: validates them, maps into backend space under `perm`, and
/// computes each lane by cold exact CPI on the built backend.
fn build_cache(
    spec: Option<(Vec<NodeId>, MaintenanceMode)>,
    backend: &EngineBackend<'static>,
    perm: &Option<Arc<Permutation>>,
    cfg: &CpiConfig,
    policy: FrontierPolicy,
) -> Result<Option<Arc<SnapshotCache>>, TpaError> {
    let Some((seeds, mode)) = spec else {
        return Ok(None);
    };
    if let MaintenanceMode::Approximate { tolerance } = mode {
        // NaN must fail too, so test "positive" directly.
        if tolerance.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(TpaError::InvalidConfig(format!(
                "cache maintenance tolerance must be positive, got {tolerance}"
            )));
        }
    }
    check_seeds(&seeds, backend.n())?;
    let seeds: Vec<NodeId> = match perm {
        Some(p) => seeds.iter().map(|&s| p.new_of(s)).collect(),
        None => seeds,
    };
    let lanes = seeds
        .iter()
        .map(|&s| Arc::new(cpi_policy(backend, &SeedSet::single(s), cfg, 0, None, policy).scores))
        .collect();
    Ok(Some(Arc::new(SnapshotCache { seeds, lanes, mode })))
}

/// Finishes the builder's index spec against the built backend:
/// preprocess on it, or attach after a dimension check.
fn resolve_index(
    spec: IndexSpec,
    backend: &EngineBackend<'static>,
    perm: &Option<Arc<Permutation>>,
) -> Result<Option<Arc<TpaIndex>>, TpaError> {
    match spec {
        IndexSpec::None => Ok(None),
        IndexSpec::Preprocess(params) => {
            let mut idx = TpaIndex::preprocess_on(backend, params);
            if let Some(p) = perm {
                idx = idx.with_permutation(p.as_ref().clone());
            }
            Ok(Some(Arc::new(idx)))
        }
        IndexSpec::Attach(idx) => {
            idx.check_backend(backend)?;
            Ok(Some(Arc::new(idx)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ShedConfig;
    use tpa_graph::gen::{lfr_lite, LfrConfig};

    fn test_graph() -> CsrGraph {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(71);
        lfr_lite(LfrConfig { n: 300, m: 2400, ..Default::default() }, &mut rng).graph
    }

    #[test]
    fn service_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RwrService>();
        assert_send_sync::<Arc<Snapshot<'static>>>();
        assert_send_sync::<QueryRequest>();
        assert_send_sync::<QueryResponse>();
    }

    #[test]
    fn static_service_answers_like_the_engine() {
        let g = test_graph();
        let params = TpaParams::new(5, 10);
        let engine = crate::QueryEngine::sequential(&g).preprocess(params);
        let service = ServiceBuilder::in_memory(g.clone()).preprocess(params).build().unwrap();
        let resp = service.submit(&QueryRequest::single(13)).unwrap();
        assert_eq!(resp.backend, "sequential");
        assert_eq!(resp.epoch, 0);
        assert!(resp.indexed);
        assert!(resp.iterations.is_some());
        assert_eq!(resp.result.into_scores().pop().unwrap(), engine.query(13));
        // Batch and top-k paths too.
        assert_eq!(
            service
                .submit(&QueryRequest::batch(vec![1, 5, 9]).top_k(4))
                .unwrap()
                .result
                .into_ranked(),
            engine.top_k_batch(&[1, 5, 9], 4)
        );
    }

    #[test]
    fn dynamic_service_publishes_epochs() {
        let g = test_graph();
        let service = ServiceBuilder::dynamic(DynamicGraph::new(g.clone()))
            .preprocess(TpaParams::new(4, 9))
            .build()
            .unwrap();
        let before = service.query(13).unwrap();
        assert_eq!(service.epoch(), 0);
        let outcome = service
            .apply_updates(&[EdgeUpdate::Insert(13, 200), EdgeUpdate::Insert(200, 13)])
            .unwrap();
        assert_eq!(outcome.epoch, 1);
        assert_eq!(outcome.report.delta.stats.inserted, 2);
        assert_eq!(service.epoch(), 1);
        let after = service.query(13).unwrap();
        assert_ne!(before, after, "the published epoch must see the new edges");
        // A pinned snapshot keeps answering on its own epoch.
        let pinned = service.snapshot();
        service.apply_updates(&[EdgeUpdate::Delete(13, 200)]).unwrap();
        assert_eq!(pinned.epoch(), 1);
        assert_eq!(pinned.run(&QueryRequest::single(13)).unwrap().result.into_scores()[0], after);
        assert_eq!(service.epoch(), 2);
    }

    #[test]
    fn static_service_refuses_updates() {
        let g = test_graph();
        let service = ServiceBuilder::in_memory(g).build().unwrap();
        let err = service.apply_updates(&[EdgeUpdate::Insert(0, 1)]).unwrap_err();
        assert!(
            matches!(err, TpaError::BackendMismatch { operation: "edge updates", .. }),
            "{err}"
        );
        assert!(service.compact().is_err());
        assert!(service.refresh_index().is_err());
    }

    #[test]
    fn per_request_overrides() {
        let g = test_graph();
        let service = ServiceBuilder::in_memory(g.clone()).build().unwrap();
        // Frontier overrides are bitwise invisible.
        let dense =
            service.submit(&QueryRequest::single(7).with_frontier(FrontierPolicy::Dense)).unwrap();
        let sparse =
            service.submit(&QueryRequest::single(7).with_frontier(FrontierPolicy::Sparse)).unwrap();
        assert_eq!(dense.result, sparse.result);
        // A looser per-request epsilon stops earlier.
        let tight = service.submit(&QueryRequest::single(7)).unwrap();
        let loose = service.submit(&QueryRequest::single(7).with_epsilon(1e-3)).unwrap();
        assert!(loose.iterations.unwrap() < tight.iterations.unwrap());
        // Non-positive epsilon is an admission error.
        let err = service.submit(&QueryRequest::single(7).with_epsilon(0.0)).unwrap_err();
        assert!(matches!(err, TpaError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn reordered_service_is_transparent() {
        let g = test_graph();
        let plain = ServiceBuilder::in_memory(g.clone()).build().unwrap();
        let reordered = ServiceBuilder::in_memory(g.clone())
            .reordering(ReorderStrategy::DegreeDescending)
            .build()
            .unwrap();
        let a = plain.query(13).unwrap();
        let b = reordered.query(13).unwrap();
        let l1: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(l1 < 1e-8, "unmapped scores drifted {l1}");
        // Dynamic + reordered: old-id updates are accepted and answers
        // keep tracking an un-reordered service.
        let plain_dyn = ServiceBuilder::dynamic(DynamicGraph::new(g.clone())).build().unwrap();
        let reordered_dyn = ServiceBuilder::dynamic(DynamicGraph::new(g))
            .reordering(ReorderStrategy::HubCluster)
            .build()
            .unwrap();
        let ups = [EdgeUpdate::Insert(7, 40), EdgeUpdate::Delete(7, 40), EdgeUpdate::Insert(3, 9)];
        let x = plain_dyn.apply_updates(&ups).unwrap();
        let y = reordered_dyn.apply_updates(&ups).unwrap();
        assert_eq!(x.report.delta.stats, y.report.delta.stats);
        let a = plain_dyn.query(7).unwrap();
        let b = reordered_dyn.query(7).unwrap();
        let l1: f64 = a.iter().zip(&b).map(|(p, q)| (p - q).abs()).sum();
        assert!(l1 < 1e-8, "post-update scores drifted {l1}");
    }

    #[test]
    fn builder_rejects_bad_configs() {
        let g = test_graph();
        let err = ServiceBuilder::in_memory(g.clone()).lane_tile(0).build().unwrap_err();
        assert!(matches!(err, TpaError::InvalidConfig(_)), "{err}");
        let err = ServiceBuilder::in_memory(g.clone())
            .cpi_config(CpiConfig { eps: -1.0, ..CpiConfig::default() })
            .build()
            .unwrap_err();
        assert!(matches!(err, TpaError::InvalidConfig(_)), "{err}");
        let err = ServiceBuilder::in_memory(g.clone())
            .preprocess(TpaParams::new(5, 5))
            .build()
            .unwrap_err();
        assert!(matches!(err, TpaError::InvalidConfig(_)), "{err}");
        // Foreign index: dimension mismatch surfaces as an Err, not a panic.
        let other = tpa_graph::gen::cycle_graph(7);
        let index = TpaIndex::preprocess(&other, TpaParams::new(3, 6));
        let err = ServiceBuilder::in_memory(g).index(index).build().unwrap_err();
        assert!(matches!(err, TpaError::DimensionMismatch { .. }), "{err}");
    }

    #[test]
    fn admission_gate_bounds_and_recovers() {
        let g = test_graph();
        let service = Arc::new(
            ServiceBuilder::in_memory(g)
                .admission(AdmissionConfig::new(2).with_queue(1))
                .build()
                .unwrap(),
        );
        // Sequential requests all pass: the gate only bounds concurrency.
        for seed in 0..8 {
            assert!(
                service.submit(&QueryRequest::single(seed)).unwrap().degradation
                    == DegradationLevel::None
            );
        }
        // Hammer it from many threads: every outcome is either a full
        // answer or an explicit typed rejection — never a panic, never
        // a silent drop — and the gate drains back to empty.
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let svc = Arc::clone(&service);
            handles.push(std::thread::spawn(move || {
                let mut ok = 0usize;
                let mut shed = 0usize;
                for i in 0..20 {
                    match svc.submit(&QueryRequest::single(((t * 20 + i) % 300) as NodeId)) {
                        Ok(_) => ok += 1,
                        Err(TpaError::Overloaded { .. }) => shed += 1,
                        Err(e) => panic!("unexpected error under load: {e}"),
                    }
                }
                (ok, shed)
            }));
        }
        let (mut ok, mut shed) = (0, 0);
        for h in handles {
            let (o, s) = h.join().unwrap();
            ok += o;
            shed += s;
        }
        assert_eq!(ok + shed, 160);
        assert!(ok > 0, "some requests must get through");
        // Fully drained: a fresh submit admits immediately.
        service.submit(&QueryRequest::single(0)).unwrap();
    }

    #[test]
    fn deadline_and_cancellation_fail_fast_and_typed() {
        let g = test_graph();
        let service = ServiceBuilder::in_memory(g).build().unwrap();
        // A zero deadline is rejected at validation.
        let err =
            service.submit(&QueryRequest::single(3).with_deadline(Duration::ZERO)).unwrap_err();
        assert!(matches!(err, TpaError::InvalidConfig(_)), "{err}");
        // A pre-cancelled request never runs a sweep.
        let token = CancelToken::new();
        token.cancel();
        let err = service.submit(&QueryRequest::single(3).with_cancel(token)).unwrap_err();
        assert!(matches!(err, TpaError::Cancelled), "{err}");
        // An already-expired deadline fails with the typed error and
        // reports the elapsed time past its budget.
        let tiny = Duration::from_nanos(1);
        let err = service.submit(&QueryRequest::single(3).with_deadline(tiny)).unwrap_err();
        match err {
            TpaError::DeadlineExceeded { budget, elapsed } => {
                assert_eq!(budget, tiny);
                assert!(elapsed >= budget);
            }
            other => panic!("expected DeadlineExceeded, got {other}"),
        }
        // A generous deadline passes untouched and answers exactly.
        let quiet = service.submit(&QueryRequest::single(3)).unwrap();
        let bounded = service
            .submit(&QueryRequest::single(3).with_deadline(Duration::from_secs(60)))
            .unwrap();
        assert_eq!(quiet.result, bounded.result);
        assert_eq!(bounded.degradation, DegradationLevel::None);
    }

    #[test]
    fn degrade_policy_sheds_explicitly_under_pressure() {
        let g = test_graph();
        // A p99 target of zero-ish with a pre-filled run histogram would
        // need traffic; instead drive pressure through the queue: one
        // slot, tiny queue, and a degrade policy whose epsilon floor is
        // loose enough to observe.
        let service = ServiceBuilder::in_memory(g)
            .admission(AdmissionConfig::new(1).with_queue(4).with_shed(ShedPolicy::Degrade(
                ShedConfig { p99_target: Duration::from_secs(3600), shed_epsilon: 1e-3 },
            )))
            .build()
            .unwrap();
        // Unloaded: no degradation, full-precision answer.
        let resp = service.submit(&QueryRequest::single(5)).unwrap();
        assert_eq!(resp.degradation, DegradationLevel::None);
        // The shaped-request path itself: run_shed with a ladder rung
        // loosens epsilon and stamps the level.
        let snap = service.snapshot();
        let quiet = snap.run(&QueryRequest::single(5)).unwrap();
        let shed = snap
            .run_shed(
                &QueryRequest::single(5).with_epsilon(1e-3),
                DegradationLevel::LoosenedEpsilon,
                None,
            )
            .unwrap();
        assert_eq!(shed.degradation, DegradationLevel::LoosenedEpsilon);
        assert!(shed.iterations.unwrap() < quiet.iterations.unwrap());
    }

    #[test]
    fn builder_rejects_bad_admission_configs() {
        let g = test_graph();
        let err = ServiceBuilder::in_memory(g.clone())
            .admission(AdmissionConfig::new(0))
            .build()
            .unwrap_err();
        assert!(matches!(err, TpaError::InvalidConfig(_)), "{err}");
        let err = ServiceBuilder::in_memory(g)
            .admission(AdmissionConfig::new(4).with_shed(ShedPolicy::Degrade(ShedConfig {
                p99_target: Duration::from_millis(50),
                shed_epsilon: f64::NAN,
            })))
            .build()
            .unwrap_err();
        assert!(matches!(err, TpaError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn compaction_failure_backs_off_then_retries() {
        let g = test_graph();
        let service =
            ServiceBuilder::dynamic(DynamicGraph::new(g).with_compact_threshold(Some(0.001)))
                .build()
                .unwrap();
        service.debug_fail_next_compaction();
        let ups: Vec<EdgeUpdate> =
            (0..40).map(|i| EdgeUpdate::Insert(i % 300, (i * 7 + 1) % 300)).collect();
        service.apply_updates(&ups).unwrap();
        // Reap the poisoned rebuild.
        while service.compaction_pending() {
            std::thread::sleep(Duration::from_millis(2));
            service.flush_compaction();
        }
        assert_eq!(service.compaction_failures(), 1);
        assert_eq!(service.compaction_retries(), 0);
        // Immediately re-triggering is suppressed by the backoff…
        service.apply_updates(&[EdgeUpdate::Insert(1, 2)]).unwrap();
        assert!(!service.compaction_pending());
        // …but once it expires the writer retries, and the retry heals.
        std::thread::sleep(Duration::from_millis(15));
        service.apply_updates(&[EdgeUpdate::Insert(2, 3)]).unwrap();
        assert!(service.flush_compaction(), "the retried rebuild must install");
        assert_eq!(service.compaction_retries(), 1);
        assert_eq!(service.compaction_failures(), 1);
        // The service kept publishing throughout.
        assert_eq!(service.epoch(), 3);
    }

    #[test]
    fn index_roundtrips_through_the_builder() {
        let g = test_graph();
        let params = TpaParams::new(5, 10);
        // Preprocess through a reordered builder, save, rebuild a fresh
        // service from the loaded index: the stored permutation restores
        // the ordering and answers are identical.
        let first = ServiceBuilder::in_memory(g.clone())
            .reordering(ReorderStrategy::Rcm)
            .preprocess(params)
            .build()
            .unwrap();
        let mut buf = Vec::new();
        first.snapshot().index().unwrap().save(&mut buf).unwrap();
        let loaded = TpaIndex::load(std::io::Cursor::new(&buf)).unwrap();
        let second = ServiceBuilder::in_memory(g).index(loaded).build().unwrap();
        assert!(second.snapshot().permutation().is_some());
        assert_eq!(first.query(42).unwrap(), second.query(42).unwrap());
        assert_eq!(first.top_k(42, 7).unwrap(), second.top_k(42, 7).unwrap());
    }
}
