//! Direction-optimizing sparse-frontier propagation.
//!
//! A single-seed CPI run starts with `x(0)` supported on one node; after
//! `i` iterations the interim vector is nonzero only on the seed's
//! `i`-hop out-neighborhood. The dense gather kernels still sweep every
//! destination row each iteration, so on a billion-scale power-law graph
//! the first few iterations waste almost all of their memory traffic on
//! rows that gather exactly `0.0`. This module tracks the **active
//! frontier** — the support of `x(i)` — and propagates only where mass
//! can actually arrive:
//!
//! 1. **Discover** the reachable destination set `R = ∪_{u∈F} out(u)`
//!    from the CSR out-rows of the frontier `F` (a marked-visited list,
//!    cleared in `O(|R|)`).
//! 2. **Gather** each reachable destination's *full* CSC in-row,
//!    skipping sources outside the frontier. Skipped terms are exactly
//!    `0.0` adds (`x[u] == 0.0` ⇒ `x[u]·w = +0.0`, and `acc + 0.0`
//!    leaves a non-negative accumulator bit-for-bit unchanged), so the
//!    per-destination floating-point chain is **identical** to the
//!    dense and strip-mined kernels — the same guarantee discipline the
//!    tiling layer follows, which is what lets [`FrontierPolicy`] be
//!    bitwise invisible on every backend.
//! 3. **Fold** the convergence residual `‖x(i+1)‖₁` and the next
//!    frontier over `R` in ascending order during the same pass, so the
//!    sparse path never touches the other `n − |R|` entries at all.
//!
//! Direction switching (after Beamer's push/pull BFS): sparse propagation
//! wins while the frontier is small and loses once it saturates — power-
//! law graphs reach most of the graph within a few hops. The
//! [`FrontierPolicy::Auto`] heuristic therefore runs sparse while the
//! frontier's out-edge count stays under `m / `[`DENSE_SWITCH_DIVISOR`]
//! and the cumulative sparse edge work stays under
//! [`SPARSE_CUMULATIVE_BUDGET`]` · m`, and latches to the dense kernels
//! for the remainder of the run (frontiers only grow under propagation,
//! so the switch is one-way). A second guard lives inside the kernel:
//! reachable hubs drag their whole in-row into the gather, so if the
//! discovered gather cost exceeds `m / `[`GATHER_BAIL_DIVISOR`] the step
//! bails to the dense kernel before paying it.

use crate::tiling::InAdjacency;
use tpa_graph::{CsrGraph, DynamicGraph, NodeId};

/// How CPI schedules its per-iteration propagation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FrontierPolicy {
    /// Beamer-style direction optimization: sparse while the frontier is
    /// small, latching to dense once it saturates (the default).
    #[default]
    Auto,
    /// Always the dense kernels (the pre-frontier behavior).
    Dense,
    /// Always the sparse-frontier kernel, however large the frontier
    /// grows (diagnostics / benchmarking; `Auto` is faster in general).
    Sparse,
}

impl FrontierPolicy {
    /// Stable lowercase name (CLI flag value / bench label).
    pub fn name(&self) -> &'static str {
        match self {
            FrontierPolicy::Auto => "auto",
            FrontierPolicy::Dense => "dense",
            FrontierPolicy::Sparse => "sparse",
        }
    }

    /// Parses a [`FrontierPolicy::name`] string.
    pub fn parse(s: &str) -> Option<FrontierPolicy> {
        match s {
            "auto" => Some(FrontierPolicy::Auto),
            "dense" => Some(FrontierPolicy::Dense),
            "sparse" => Some(FrontierPolicy::Sparse),
            _ => None,
        }
    }
}

/// `Auto` switches to dense when the frontier's out-edges exceed
/// `m / DENSE_SWITCH_DIVISOR`: past that point the sparse step's
/// discovery + gather + bookkeeping costs rival a full dense sweep.
pub const DENSE_SWITCH_DIVISOR: usize = 8;

/// `Auto` also latches dense once *cumulative* sparse edge work crosses
/// this fraction of `m`: a full sweep's worth of sparse work means the
/// frontier has effectively saturated and the per-step overheads are
/// pure loss from here on.
pub const SPARSE_CUMULATIVE_BUDGET: f64 = 1.0;

/// A sparse step bails to the dense kernel when the reachable set's
/// in-edge count exceeds `m / GATHER_BAIL_DIVISOR` — reachable hubs drag
/// their entire in-row into the masked gather, which the cheap out-edge
/// predictor cannot see. The masked gather costs roughly twice the dense
/// kernel per edge (per-term branch, no streaming writes), so capping it
/// at an eighth of a sweep bounds a hub seed's one wasted sparse attempt
/// at a few percent before `Auto` latches dense (measured: divisor 2
/// left hub seeds ~10% over forced dense).
pub const GATHER_BAIL_DIVISOR: usize = 8;

/// Frontier cost probe: what a sparse step would have to touch.
/// Returned by [`crate::Propagator::frontier_work`]; `None` from a
/// backend means it has no sparse path and `Auto` should stay dense.
#[derive(Clone, Copy, Debug)]
pub struct FrontierWork {
    /// Σ out-degree over the active frontier (edges a discovery pass
    /// scans; an upper bound on the reachable-set size).
    pub frontier_edges: usize,
    /// Total edge count `m` (the dense sweep's work).
    pub total_edges: usize,
}

impl FrontierWork {
    /// True when [`FrontierPolicy::Auto`] should keep this step sparse.
    pub fn prefers_sparse(&self) -> bool {
        self.frontier_edges < self.total_edges / DENSE_SWITCH_DIVISOR
    }
}

/// What one [`crate::Propagator::propagate_frontier`] call did.
#[derive(Clone, Copy, Debug)]
pub struct FrontierStep {
    /// `‖y‖₁` in the blocked-canonical association — bitwise equal to a
    /// dense `propagate_into_norm` of the same step (skipped entries are
    /// exact zeros).
    pub residual: f64,
    /// Edges actually scanned (discovery + gather); 0 when the step ran
    /// the dense kernel.
    pub edge_work: usize,
    /// True if the step fell back to the dense kernel (no sparse path,
    /// or the gather-cost guard fired). `Auto` latches dense on it.
    pub went_dense: bool,
}

/// Reusable workspace for sparse-frontier steps: the visited bitmap and
/// reachable list for discovery, plus the next-frontier output. One
/// allocation per CPI run, `O(n)` bytes.
pub struct FrontierScratch {
    mark: Vec<bool>,
    reachable: Vec<NodeId>,
    next_active: Vec<NodeId>,
}

impl std::fmt::Debug for FrontierScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrontierScratch").field("n", &self.mark.len()).finish_non_exhaustive()
    }
}

impl FrontierScratch {
    /// Workspace for an `n`-node graph.
    pub fn new(n: usize) -> Self {
        Self { mark: vec![false; n], reachable: Vec::new(), next_active: Vec::new() }
    }

    /// The frontier the last step produced: ascending nodes with
    /// `y != 0.0`.
    pub fn next_active(&self) -> &[NodeId] {
        &self.next_active
    }

    /// Mutable access for callers that rotate the frontier buffers
    /// between iterations (see [`crate::cpi`]).
    pub fn next_active_mut(&mut self) -> &mut Vec<NodeId> {
        &mut self.next_active
    }
}

/// Monotone union of per-iteration supports. The sweep's `active` list
/// is the support of the *current* interim vector only — on DAG-ish
/// graphs the frontier moves on and earlier nodes drop out — so
/// observers that need "every node with a nonzero accumulated score"
/// (the bounded top-k checker) fold each iteration's support into this
/// set. `O(n)` bytes, `O(|support|)` per merge, membership list kept
/// unordered.
pub(crate) struct SupportUnion {
    mark: Vec<bool>,
    nodes: Vec<NodeId>,
}

impl SupportUnion {
    /// Empty union over an `n`-node graph.
    pub fn new(n: usize) -> Self {
        Self { mark: vec![false; n], nodes: Vec::new() }
    }

    /// Folds one iteration's support in.
    pub fn merge(&mut self, support: &[NodeId]) {
        for &v in support {
            let m = &mut self.mark[v as usize];
            if !*m {
                *m = true;
                self.nodes.push(v);
            }
        }
    }

    /// Every node seen in any merged support, in merge order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of distinct nodes seen so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether `v` has appeared in any merged support.
    pub fn contains(&self, v: NodeId) -> bool {
        self.mark[v as usize]
    }
}

/// Out-adjacency access for frontier discovery, mirroring
/// [`InAdjacency`] on the gather side: implemented by [`CsrGraph`]
/// (plain CSR rows) and [`DynamicGraph`] (merged overlay view) so all
/// backends share one discovery pass.
pub(crate) trait OutAdjacency {
    /// Out-degree of `u` (the discovery-cost predictor).
    fn out_deg(&self, u: NodeId) -> usize;
    /// Visits every out-neighbor of `u`.
    fn for_each_out<F: FnMut(NodeId)>(&self, u: NodeId, f: F);
}

impl OutAdjacency for CsrGraph {
    #[inline]
    fn out_deg(&self, u: NodeId) -> usize {
        self.out_degree(u)
    }
    #[inline]
    fn for_each_out<F: FnMut(NodeId)>(&self, u: NodeId, mut f: F) {
        for &v in self.out_neighbors(u) {
            f(v);
        }
    }
}

impl OutAdjacency for DynamicGraph {
    #[inline]
    fn out_deg(&self, u: NodeId) -> usize {
        self.out_degree(u)
    }
    #[inline]
    fn for_each_out<F: FnMut(NodeId)>(&self, u: NodeId, mut f: F) {
        for v in self.out_neighbors(u) {
            f(v);
        }
    }
}

/// Σ out-degree over the frontier — the cheap `O(|F|)` work predictor
/// behind [`crate::Propagator::frontier_work`].
pub(crate) fn frontier_out_edges<O: OutAdjacency + ?Sized>(out: &O, active: &[NodeId]) -> usize {
    active.iter().map(|&u| out.out_deg(u)).sum()
}

/// Discovery: fills `scratch.reachable` with the ascending reachable set
/// `∪_{u∈active} out(u)` and returns the edges scanned. Marks stay set
/// for the caller (cleared by [`clear_marks`]).
fn discover<O: OutAdjacency + ?Sized>(
    out: &O,
    active: &[NodeId],
    scratch: &mut FrontierScratch,
) -> usize {
    scratch.reachable.clear();
    let mark = &mut scratch.mark;
    let reachable = &mut scratch.reachable;
    let mut scanned = 0usize;
    for &u in active {
        out.for_each_out(u, |v| {
            scanned += 1;
            let m = &mut mark[v as usize];
            if !*m {
                *m = true;
                reachable.push(v);
            }
        });
    }
    reachable.sort_unstable();
    scanned
}

fn clear_marks(scratch: &mut FrontierScratch) {
    for &v in &scratch.reachable {
        scratch.mark[v as usize] = false;
    }
}

/// One destination's masked gather: the full in-row in ascending order,
/// folded left exactly like the dense kernels, with zero-valued sources
/// skipped (each skip elides an exact `+ 0.0`).
#[inline]
fn masked_row_gather(row: &[NodeId], x: &[f64], inv: &[f64]) -> f64 {
    let mut acc = 0.0f64;
    for &u in row {
        let xu = x[u as usize];
        if xu != 0.0 {
            acc += xu * inv[u as usize];
        }
    }
    acc
}

/// Writes `y[v] = coeff · gather(v)` for every `v` in
/// `reachable[lo..hi]`, into the range-local slice `y_local`
/// (`y_local[0]` is node `range_start`). Shared by the sequential and
/// per-worker parallel sparse paths.
pub(crate) fn gather_reachable_into<A: InAdjacency + ?Sized>(
    adj: &A,
    inv: &[f64],
    coeff: f64,
    x: &[f64],
    y_local: &mut [f64],
    reachable: &[NodeId],
    range_start: NodeId,
) {
    for &v in reachable {
        let acc = masked_row_gather(adj.in_row(v), x, inv);
        y_local[(v - range_start) as usize] = coeff * acc;
    }
}

/// Post-gather fold over the ascending reachable set: accumulates
/// `‖y‖₁` and collects the next frontier (`y != 0.0`). Entries are
/// grouped by their `NORM_BLOCK`, matching the blocked-canonical
/// association of the dense kernels' fused residual (see
/// [`crate::tiling`]): blocks without reachable entries contribute an
/// exact `+0.0` partial (elided), and within a block the skipped terms
/// are exact zeros — so the residual is bitwise equal to a dense
/// `propagate_into_norm` of the same step.
pub(crate) fn fold_reachable(
    y: &[f64],
    reachable: &[NodeId],
    next_active: &mut Vec<NodeId>,
) -> f64 {
    next_active.clear();
    let mut residual = 0.0f64;
    let mut i = 0usize;
    while i < reachable.len() {
        let block = reachable[i] as usize / crate::tiling::NORM_BLOCK;
        let mut part = 0.0f64;
        while i < reachable.len() && reachable[i] as usize / crate::tiling::NORM_BLOCK == block {
            let v = reachable[i];
            let yv = y[v as usize];
            if yv != 0.0 {
                part += yv.abs();
                next_active.push(v);
            }
            i += 1;
        }
        residual += part;
    }
    residual
}

/// The sequential sparse-frontier step shared by [`crate::Transition`]
/// and the single-range dynamic backend. Returns `None` — leaving `y`
/// untouched — when the reachable set's gather cost busts
/// [`GATHER_BAIL_DIVISOR`]; the caller then runs its dense kernel.
///
/// Contract (same for every implementor of
/// [`crate::Propagator::propagate_frontier`]): `active` is ascending and
/// covers the support of `x`, every entry of `y` is `0.0` on entry, and
/// `inv` is non-negative.
// A kernel entry point mirrors the full propagation state; bundling the
// slices into a struct would only rename the argument list.
#[allow(clippy::too_many_arguments)]
pub(crate) fn sparse_step<O, A>(
    out: &O,
    adj: &A,
    inv: &[f64],
    coeff: f64,
    x: &[f64],
    y: &mut [f64],
    active: &[NodeId],
    total_edges: usize,
    scratch: &mut FrontierScratch,
) -> Option<FrontierStep>
where
    O: OutAdjacency + ?Sized,
    A: InAdjacency + ?Sized,
{
    let scanned = discover(out, active, scratch);
    let gather_cost: usize = scratch.reachable.iter().map(|&v| adj.in_row(v).len()).sum();
    clear_marks(scratch);
    if gather_cost > total_edges / GATHER_BAIL_DIVISOR {
        return None;
    }
    gather_reachable_into(adj, inv, coeff, x, y, &scratch.reachable, 0);
    let residual = fold_reachable(y, &scratch.reachable, &mut scratch.next_active);
    Some(FrontierStep { residual, edge_work: scanned + gather_cost, went_dense: false })
}

/// The parallel variant: reachable destinations are split by the
/// backend's destination ranges (each worker gathers the reachable
/// nodes inside its band — disjoint writes, shared reads), then one
/// ascending fold on the calling thread produces the residual and next
/// frontier, so the result — residual included — is bit-identical to
/// the sequential step.
#[allow(clippy::too_many_arguments)]
pub(crate) fn sparse_step_ranged<O, A>(
    out: &O,
    adj: &A,
    inv: &[f64],
    coeff: f64,
    x: &[f64],
    y: &mut [f64],
    active: &[NodeId],
    total_edges: usize,
    ranges: &[(u32, u32)],
    scratch: &mut FrontierScratch,
) -> Option<FrontierStep>
where
    O: OutAdjacency + ?Sized,
    A: InAdjacency + Sync + ?Sized,
{
    let scanned = discover(out, active, scratch);
    let gather_cost: usize = scratch.reachable.iter().map(|&v| adj.in_row(v).len()).sum();
    clear_marks(scratch);
    if gather_cost > total_edges / GATHER_BAIL_DIVISOR {
        return None;
    }
    let reachable = &scratch.reachable;
    // Below this many reachable rows the spawn cost outweighs the split;
    // the single-threaded path is bit-identical either way.
    const PAR_MIN_REACHABLE: usize = 2048;
    if ranges.len() == 1 || reachable.len() < PAR_MIN_REACHABLE {
        gather_reachable_into(adj, inv, coeff, x, y, reachable, 0);
    } else {
        crate::tiling::par_ranges(ranges, 1, y, |slice, start, end| {
            let lo = reachable.partition_point(|&v| v < start);
            let hi = reachable.partition_point(|&v| v < end);
            gather_reachable_into(adj, inv, coeff, x, slice, &reachable[lo..hi], start);
        });
    }
    let residual = fold_reachable(y, reachable, &mut scratch.next_active);
    Some(FrontierStep { residual, edge_work: scanned + gather_cost, went_dense: false })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiling::gather_flat;
    use tpa_graph::gen::{lfr_lite, LfrConfig};

    fn test_graph() -> CsrGraph {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(23);
        lfr_lite(LfrConfig { n: 300, m: 2700, ..Default::default() }, &mut rng).graph
    }

    /// A graph whose small frontiers stay far under the gather-bail
    /// budget: three 10-way fans plus a long filler chain that inflates
    /// `m` without being reachable from the fan roots.
    fn fan_graph() -> CsrGraph {
        let n = 1200usize;
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for (root, base) in [(0u32, 10u32), (1, 100), (2, 200)] {
            for k in 0..10 {
                edges.push((root, base + k));
            }
        }
        edges.extend((400..1199u32).map(|v| (v, v + 1)));
        CsrGraph::from_edges(n, &edges)
    }

    #[test]
    fn policy_names_roundtrip() {
        for p in [FrontierPolicy::Auto, FrontierPolicy::Dense, FrontierPolicy::Sparse] {
            assert_eq!(FrontierPolicy::parse(p.name()), Some(p));
        }
        assert_eq!(FrontierPolicy::parse("frog"), None);
        assert_eq!(FrontierPolicy::default(), FrontierPolicy::Auto);
    }

    #[test]
    fn sparse_step_matches_dense_bitwise() {
        let g = fan_graph();
        let inv = g.inv_out_degrees();
        let n = g.n();
        // A sparse input supported on the three fan roots.
        let active: Vec<NodeId> = vec![0, 1, 2];
        let mut x = vec![0.0f64; n];
        for (k, &u) in active.iter().enumerate() {
            x[u as usize] = 0.05 * (k + 1) as f64;
        }
        let mut dense = vec![0.0f64; n];
        let dense_res = gather_flat(&g, &inv, 0.85, &x, &mut dense, 0..n as NodeId);
        let mut sparse = vec![0.0f64; n];
        let mut scratch = FrontierScratch::new(n);
        let step =
            sparse_step(&g, &g, &inv, 0.85, &x, &mut sparse, &active, g.m(), &mut scratch).unwrap();
        assert_eq!(sparse, dense);
        assert_eq!(step.residual.to_bits(), dense_res.to_bits());
        assert!(step.edge_work > 0 && !step.went_dense);
        // The reported frontier is exactly the support of the output.
        let support: Vec<NodeId> = (0..n as NodeId).filter(|&v| dense[v as usize] != 0.0).collect();
        assert_eq!(scratch.next_active(), &support[..]);
    }

    #[test]
    fn gather_bail_guard_fires_on_saturated_frontiers() {
        let g = fan_graph();
        let inv = g.inv_out_degrees();
        let n = g.n();
        let active: Vec<NodeId> = (0..n as NodeId).collect();
        let x = vec![1.0 / n as f64; n];
        let mut y = vec![0.0f64; n];
        let mut scratch = FrontierScratch::new(n);
        // With the whole graph active the reachable in-edge count is m,
        // which busts m / GATHER_BAIL_DIVISOR.
        assert!(sparse_step(&g, &g, &inv, 0.85, &x, &mut y, &active, g.m(), &mut scratch).is_none());
        assert!(y.iter().all(|&v| v == 0.0), "bail must leave y untouched");
        // Marks were cleared by the bail: a subsequent small-frontier
        // step through the same scratch still works (a fan root's
        // 10-edge neighborhood is well under the budget).
        let mut x2 = vec![0.0f64; n];
        x2[0] = 1.0;
        assert!(sparse_step(&g, &g, &inv, 0.85, &x2, &mut y, &[0], g.m(), &mut scratch).is_some());
    }

    #[test]
    fn empty_frontier_propagates_to_nothing() {
        let g = test_graph();
        let inv = g.inv_out_degrees();
        let n = g.n();
        let x = vec![0.0f64; n];
        let mut y = vec![0.0f64; n];
        let mut scratch = FrontierScratch::new(n);
        let step = sparse_step(&g, &g, &inv, 0.85, &x, &mut y, &[], g.m(), &mut scratch).unwrap();
        assert_eq!(step.residual, 0.0);
        assert!(scratch.next_active().is_empty());
    }

    #[test]
    fn switch_heuristic_prefers_sparse_only_for_small_frontiers() {
        let small = FrontierWork { frontier_edges: 10, total_edges: 1000 };
        assert!(small.prefers_sparse());
        let big = FrontierWork { frontier_edges: 400, total_edges: 1000 };
        assert!(!big.prefers_sparse());
    }
}
