//! Parameter selection for TPA (operationalizing §III-C).
//!
//! `S` trades online time against the Theorem-2 bound, so it can be chosen
//! analytically ([`crate::bounds::min_s_for_error`]). `T` has no closed
//! form: small `T` inflates the stranger error, large `T` inflates the
//! neighbor error, and the optimum depends on the graph's block structure.
//! [`tune_t`] measures the real total error on a small seed sample — the
//! procedure the paper's authors imply when they "set T … to gain the best
//! performance" per dataset (Table II).

use crate::{decompose, CpiConfig, SeedSet, TpaParams, Transition};
use tpa_graph::{CsrGraph, NodeId};

/// Error profile of one candidate `T`.
#[derive(Clone, Copy, Debug)]
pub struct TCandidate {
    /// The candidate value of `T`.
    pub t: usize,
    /// Mean L1 error of the neighbor approximation over the sample.
    pub neighbor_error: f64,
    /// Mean L1 error of the stranger approximation over the sample.
    pub stranger_error: f64,
    /// Mean total TPA error over the sample.
    pub total_error: f64,
}

/// Result of a `T` sweep.
#[derive(Clone, Debug)]
pub struct TSweep {
    /// One entry per candidate, in input order.
    pub candidates: Vec<TCandidate>,
    /// The candidate with the smallest total error.
    pub best: TCandidate,
}

/// Measures the exact NA/SA/total errors for every candidate `T` on a
/// sample of seed nodes and returns the sweep (Fig. 9 as a library call).
///
/// Cost: one converged CPI per sample seed plus one PageRank run —
/// independent of the number of candidates (cumulative-sum snapshots).
pub fn tune_t(
    graph: &CsrGraph,
    s: usize,
    candidates: &[usize],
    sample_seeds: &[NodeId],
    cfg: &CpiConfig,
) -> TSweep {
    assert!(!candidates.is_empty(), "need at least one candidate T");
    assert!(!sample_seeds.is_empty(), "need at least one sample seed");
    assert!(candidates.iter().all(|&t| t > s), "every candidate T must exceed S");

    let transition = Transition::new(graph);
    let decay = 1.0 - cfg.c;

    // PageRank decomposition, shared across candidates: stranger part per T.
    let max_t = *candidates.iter().max().unwrap();
    let pr = decompose(&transition, &SeedSet::Uniform, cfg, s, max_t);
    // p_cum_to[t] for each candidate: Σ_{i<t} x'(i). Recover from the
    // decomposition pieces by re-running cheaply per candidate instead:
    // use windowed runs (PageRank is cheap relative to per-seed work).
    let p_stranger_per_candidate: Vec<Vec<f64>> =
        candidates.iter().map(|&t| crate::pagerank_window(graph, cfg, t, None).scores).collect();
    drop(pr);

    let mut na = vec![0.0f64; candidates.len()];
    let mut sa = vec![0.0f64; candidates.len()];
    let mut total = vec![0.0f64; candidates.len()];

    for &seed in sample_seeds {
        // Cumulative snapshots at S and at each candidate T in one pass.
        let n = graph.n();
        let mut cum = vec![0.0f64; n];
        let mut at_s = vec![0.0f64; n];
        let mut at_t: Vec<Vec<f64>> = vec![Vec::new(); candidates.len()];
        crate::cpi_trace(&transition, &SeedSet::single(seed), cfg, 0, None, |i, x| {
            if i == s {
                at_s = cum.clone();
            }
            for (ci, &t) in candidates.iter().enumerate() {
                if i == t {
                    at_t[ci] = cum.clone();
                }
            }
            for (c, v) in cum.iter_mut().zip(x) {
                *c += v;
            }
        });
        for slot in at_t.iter_mut() {
            if slot.is_empty() {
                *slot = cum.clone();
            }
        }

        for (ci, &t) in candidates.iter().enumerate() {
            let scale =
                (decay.powi(s as i32) - decay.powi(t as i32)) / (1.0 - decay.powi(s as i32));
            let p_stranger = &p_stranger_per_candidate[ci];
            let mut na_err = 0.0;
            let mut sa_err = 0.0;
            let mut tot_err = 0.0;
            for v in 0..n {
                let family = at_s[v];
                let neighbor = at_t[ci][v] - family;
                let stranger = cum[v] - at_t[ci][v];
                na_err += (neighbor - scale * family).abs();
                sa_err += (stranger - p_stranger[v]).abs();
                let tpa = family + scale * family + p_stranger[v];
                tot_err += (cum[v] - tpa).abs();
            }
            na[ci] += na_err;
            sa[ci] += sa_err;
            total[ci] += tot_err;
        }
    }

    let k = sample_seeds.len() as f64;
    let entries: Vec<TCandidate> = candidates
        .iter()
        .enumerate()
        .map(|(ci, &t)| TCandidate {
            t,
            neighbor_error: na[ci] / k,
            stranger_error: sa[ci] / k,
            total_error: total[ci] / k,
        })
        .collect();
    let best =
        *entries.iter().min_by(|a, b| a.total_error.partial_cmp(&b.total_error).unwrap()).unwrap();
    TSweep { candidates: entries, best }
}

/// Fully-automatic parameter choice: `S` from the error target via
/// Theorem 2, `T` from a default candidate sweep over a small seed sample.
pub fn auto_params(graph: &CsrGraph, target_error: f64, cfg: &CpiConfig) -> TpaParams {
    let s = crate::bounds::min_s_for_error(cfg.c, target_error);
    let candidates: Vec<usize> = [s + 1, s + 2, s + 3, s + 5, s + 8, s + 12, s + 16].to_vec();
    let n = graph.n() as NodeId;
    let sample: Vec<NodeId> = (0..5).map(|i| (i * 7919) % n).collect();
    let sweep = tune_t(graph, s, &candidates, &sample, cfg);
    TpaParams { c: cfg.c, eps: cfg.eps, s, t: sweep.best.t }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpa_graph::gen::{lfr_lite, LfrConfig};

    fn test_graph() -> CsrGraph {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(71);
        lfr_lite(
            LfrConfig { n: 400, m: 3200, mu: 0.2, reciprocity: 0.6, ..Default::default() },
            &mut rng,
        )
        .graph
    }

    #[test]
    fn sweep_reports_monotone_component_errors() {
        let g = test_graph();
        let cfg = CpiConfig::default();
        let sweep = tune_t(&g, 5, &[6, 10, 15, 20], &[1, 50, 200], &cfg);
        // NA error grows with T, SA error shrinks with T (§III-C).
        let na: Vec<f64> = sweep.candidates.iter().map(|c| c.neighbor_error).collect();
        let sa: Vec<f64> = sweep.candidates.iter().map(|c| c.stranger_error).collect();
        assert!(na.windows(2).all(|w| w[0] <= w[1] + 1e-9), "NA not increasing: {na:?}");
        assert!(sa.windows(2).all(|w| w[0] >= w[1] - 1e-9), "SA not decreasing: {sa:?}");
    }

    #[test]
    fn best_candidate_minimizes_total() {
        let g = test_graph();
        let sweep = tune_t(&g, 5, &[6, 10, 15], &[3, 77], &CpiConfig::default());
        for c in &sweep.candidates {
            assert!(sweep.best.total_error <= c.total_error + 1e-12);
        }
    }

    #[test]
    fn sweep_errors_match_direct_decomposition() {
        // Cross-check the snapshot bookkeeping against `decompose`.
        let g = test_graph();
        let cfg = CpiConfig::default();
        let (s, t) = (5usize, 10usize);
        let sweep = tune_t(&g, s, &[t], &[9], &cfg);
        let tr = Transition::new(&g);
        let dec = decompose(&tr, &SeedSet::single(9), &cfg, s, t);
        let scale = TpaParams::new(s, t).neighbor_scale();
        let approx: Vec<f64> = dec.family.iter().map(|&f| scale * f).collect();
        let na_direct: f64 = dec.neighbor.iter().zip(&approx).map(|(a, b)| (a - b).abs()).sum();
        assert!((sweep.candidates[0].neighbor_error - na_direct).abs() < 1e-9);
    }

    #[test]
    fn auto_params_respects_error_target() {
        let g = test_graph();
        let cfg = CpiConfig::default();
        let params = auto_params(&g, 0.5, &cfg);
        assert!(crate::bounds::total_bound(cfg.c, params.s) <= 0.5 + 1e-12);
        assert!(params.t > params.s);
        // The tuned parameters actually deliver the target on this graph.
        let index = crate::TpaIndex::preprocess(&g, params);
        let t = Transition::new(&g);
        let exact = crate::exact_rwr(&g, 42, &cfg);
        let err: f64 = index.query(&t, 42).iter().zip(&exact).map(|(a, b)| (a - b).abs()).sum();
        assert!(err <= 0.5 + 1e-9, "err {err}");
    }

    #[test]
    #[should_panic(expected = "exceed S")]
    fn rejects_candidate_not_above_s() {
        let g = test_graph();
        tune_t(&g, 5, &[5], &[0], &CpiConfig::default());
    }
}
