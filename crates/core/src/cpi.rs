//! Cumulative Power Iteration (CPI) — Algorithm 1 of the paper.
//!
//! CPI interprets RWR as score propagation: `x(0) = c·q`, then
//! `x(i) = (1−c)·Ãᵀ·x(i−1)`, and the RWR vector is the cumulative sum
//! `r = Σᵢ x(i)`. The `start`/`end` iteration window is what TPA uses to
//! split the sum into family / neighbor / stranger parts.

use crate::{Propagator, SeedSet};

/// Shared CPI parameters.
#[derive(Clone, Copy, Debug)]
pub struct CpiConfig {
    /// Restart probability `c` (the paper uses 0.15 throughout).
    pub c: f64,
    /// Convergence tolerance ε: iteration stops once `‖x(i)‖₁ < ε`.
    pub eps: f64,
    /// Safety cap on iterations (the geometric decay normally stops the
    /// loop long before).
    pub max_iters: usize,
}

impl Default for CpiConfig {
    fn default() -> Self {
        Self { c: 0.15, eps: 1e-9, max_iters: 1000 }
    }
}

impl CpiConfig {
    /// Config with a custom restart probability.
    pub fn with_c(c: f64) -> Self {
        Self { c, ..Self::default() }
    }

    /// Validates parameter ranges.
    pub fn validate(&self) {
        assert!(self.c > 0.0 && self.c < 1.0, "restart probability must be in (0,1)");
        assert!(self.eps > 0.0, "tolerance must be positive");
        assert!(self.max_iters >= 1);
    }

    /// Number of iterations CPI needs to converge:
    /// `log_{1−c}(ε/c)` (paper, Lemma 4).
    pub fn iterations_to_converge(&self) -> usize {
        ((self.eps / self.c).ln() / (1.0 - self.c).ln()).ceil().max(1.0) as usize
    }
}

/// Result of a CPI run.
#[derive(Clone, Debug)]
pub struct CpiResult {
    /// Accumulated score vector (the sum of `x(i)` over the window).
    pub scores: Vec<f64>,
    /// Index of the last iteration whose interim vector was computed.
    pub last_iteration: usize,
    /// `‖x(last)‖₁` at exit.
    pub final_residual: f64,
    /// True if the ε-criterion (not the window end or iteration cap)
    /// terminated the run.
    pub converged: bool,
}

/// Runs CPI accumulating `x(i)` for `start ≤ i ≤ end` (`end = None` ⇒ run
/// to convergence). This is Algorithm 1 with `siter = start`,
/// `titer = end`.
///
/// Iteration 0 is the seed vector `x(0) = c·q` itself; it is accumulated
/// when `start == 0`, matching the series `r = Σ_{i≥0} x(i)`.
pub fn cpi<P: Propagator + ?Sized>(
    transition: &P,
    seeds: &SeedSet,
    cfg: &CpiConfig,
    start: usize,
    end: Option<usize>,
) -> CpiResult {
    cpi_trace(transition, seeds, cfg, start, end, |_, _| {})
}

/// [`cpi`] with a per-iteration callback receiving `(i, x(i))` for every
/// interim vector computed — the hook the decomposition experiments
/// (Table III, Fig. 9) use to capture the family/neighbor/stranger split.
pub fn cpi_trace<P: Propagator + ?Sized>(
    transition: &P,
    seeds: &SeedSet,
    cfg: &CpiConfig,
    start: usize,
    end: Option<usize>,
    mut on_iteration: impl FnMut(usize, &[f64]),
) -> CpiResult {
    cfg.validate();
    if let Some(e) = end {
        assert!(start <= e, "empty CPI window: start {start} > end {e}");
    }
    let n = transition.n();
    let mut x = vec![0.0f64; n];
    seeds.fill_seed_vector(cfg.c, &mut x);
    let mut next = vec![0.0f64; n];
    let mut scores = vec![0.0f64; n];

    on_iteration(0, &x);
    if start == 0 {
        add_assign(&mut scores, &x);
    }

    let mut i = 0usize;
    let mut residual = l1(&x);
    let mut converged = residual < cfg.eps;
    let hard_end = end.unwrap_or(usize::MAX);

    while !converged && i < hard_end && i < cfg.max_iters {
        i += 1;
        transition.propagate_into(1.0 - cfg.c, &x, &mut next);
        std::mem::swap(&mut x, &mut next);
        on_iteration(i, &x);
        if i >= start {
            add_assign(&mut scores, &x);
        }
        residual = l1(&x);
        if residual < cfg.eps {
            converged = true;
        }
    }

    CpiResult { scores, last_iteration: i, final_residual: residual, converged }
}

#[inline]
fn add_assign(acc: &mut [f64], x: &[f64]) {
    for (a, b) in acc.iter_mut().zip(x) {
        *a += b;
    }
}

#[inline]
fn l1(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Transition;
    use tpa_graph::gen::{complete_graph, cycle_graph};
    use tpa_graph::CsrGraph;

    fn l1_dist(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
    }

    #[test]
    fn full_window_sums_to_one() {
        // Mass conservation: Σ r = Σᵢ c(1−c)ⁱ = 1 at convergence.
        let g = cycle_graph(10);
        let t = Transition::new(&g);
        let r = cpi(&t, &SeedSet::single(0), &CpiConfig::default(), 0, None);
        assert!(r.converged);
        let total: f64 = r.scores.iter().sum();
        assert!((total - 1.0).abs() < 1e-7, "total {total}");
    }

    #[test]
    fn satisfies_steady_state_equation() {
        // Theorem 1: r = (1−c)·Ãᵀ·r + c·q.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 0), (0, 2)]);
        let t = Transition::new(&g);
        let cfg = CpiConfig { eps: 1e-12, ..Default::default() };
        let r = cpi(&t, &SeedSet::single(0), &cfg, 0, None);
        let mut rhs = vec![0.0; 4];
        t.propagate_into(1.0 - cfg.c, &r.scores, &mut rhs);
        rhs[0] += cfg.c;
        assert!(l1_dist(&r.scores, &rhs) < 1e-9);
    }

    #[test]
    fn window_split_equals_full_run() {
        // family(0..=s−1) + rest(s..) must equal the full sum.
        let g = complete_graph(8);
        let t = Transition::new(&g);
        let cfg = CpiConfig::default();
        let seeds = SeedSet::single(3);
        let full = cpi(&t, &seeds, &cfg, 0, None);
        let s = 4;
        let family = cpi(&t, &seeds, &cfg, 0, Some(s - 1));
        let rest = cpi(&t, &seeds, &cfg, s, None);
        let merged: Vec<f64> = family.scores.iter().zip(&rest.scores).map(|(a, b)| a + b).collect();
        assert!(l1_dist(&full.scores, &merged) < 1e-9);
    }

    #[test]
    fn family_mass_matches_lemma2() {
        // ‖r_family‖₁ = 1 − (1−c)^S (Lemma 2) on a dangling-free graph.
        let g = cycle_graph(6);
        let t = Transition::new(&g);
        let cfg = CpiConfig::default();
        for s in [1usize, 3, 5] {
            let fam = cpi(&t, &SeedSet::single(2), &cfg, 0, Some(s - 1));
            let want = 1.0 - (1.0 - cfg.c).powi(s as i32);
            let got: f64 = fam.scores.iter().sum();
            assert!((got - want).abs() < 1e-12, "S={s}: {got} vs {want}");
        }
    }

    #[test]
    fn interim_norm_is_geometric() {
        // ‖x(i)‖₁ = c(1−c)ⁱ exactly (column-stochastic case).
        let g = cycle_graph(5);
        let t = Transition::new(&g);
        let cfg = CpiConfig::default();
        let mut norms = Vec::new();
        cpi_trace(&t, &SeedSet::single(0), &cfg, 0, Some(10), |_, x| {
            norms.push(x.iter().sum::<f64>());
        });
        for (i, &norm) in norms.iter().enumerate() {
            let want = cfg.c * (1.0 - cfg.c).powi(i as i32);
            assert!((norm - want).abs() < 1e-12, "i={i}");
        }
    }

    #[test]
    fn callback_sees_every_iteration() {
        let g = cycle_graph(4);
        let t = Transition::new(&g);
        let mut seen = Vec::new();
        cpi_trace(&t, &SeedSet::single(0), &CpiConfig::default(), 0, Some(5), |i, _| seen.push(i));
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn multi_seed_splits_initial_mass() {
        let g = cycle_graph(4);
        let t = Transition::new(&g);
        let cfg = CpiConfig::default();
        let r = cpi(&t, &SeedSet::set(vec![0, 2]), &cfg, 0, Some(0));
        assert_eq!(r.scores[0], cfg.c / 2.0);
        assert_eq!(r.scores[2], cfg.c / 2.0);
        assert_eq!(r.scores[1], 0.0);
    }

    #[test]
    fn uniform_seed_is_pagerank_start() {
        let g = cycle_graph(4);
        let t = Transition::new(&g);
        let cfg = CpiConfig::default();
        let r = cpi(&t, &SeedSet::Uniform, &cfg, 0, Some(0));
        for &v in &r.scores {
            assert!((v - cfg.c / 4.0).abs() < 1e-15);
        }
    }

    #[test]
    fn iterations_to_converge_formula() {
        let cfg = CpiConfig::default();
        let predicted = cfg.iterations_to_converge();
        let g = cycle_graph(7);
        let t = Transition::new(&g);
        let r = cpi(&t, &SeedSet::single(0), &cfg, 0, None);
        // Within ±2 iterations of the closed form.
        assert!(
            (r.last_iteration as i64 - predicted as i64).abs() <= 2,
            "ran {} predicted {predicted}",
            r.last_iteration
        );
    }

    #[test]
    #[should_panic(expected = "empty CPI window")]
    fn rejects_inverted_window() {
        let g = cycle_graph(3);
        let t = Transition::new(&g);
        cpi(&t, &SeedSet::single(0), &CpiConfig::default(), 5, Some(2));
    }
}
