//! Cumulative Power Iteration (CPI) — Algorithm 1 of the paper.
//!
//! CPI interprets RWR as score propagation: `x(0) = c·q`, then
//! `x(i) = (1−c)·Ãᵀ·x(i−1)`, and the RWR vector is the cumulative sum
//! `r = Σᵢ x(i)`. The `start`/`end` iteration window is what TPA uses to
//! split the sum into family / neighbor / stranger parts.

use crate::frontier::{FrontierPolicy, FrontierScratch, SPARSE_CUMULATIVE_BUDGET};
use crate::{Propagator, SeedSet};
use tpa_graph::NodeId;

/// Shared CPI parameters.
#[derive(Clone, Copy, Debug)]
pub struct CpiConfig {
    /// Restart probability `c` (the paper uses 0.15 throughout).
    pub c: f64,
    /// Convergence tolerance ε: iteration stops once `‖x(i)‖₁ < ε`.
    pub eps: f64,
    /// Safety cap on iterations (the geometric decay normally stops the
    /// loop long before).
    pub max_iters: usize,
}

impl Default for CpiConfig {
    fn default() -> Self {
        Self { c: 0.15, eps: 1e-9, max_iters: 1000 }
    }
}

impl CpiConfig {
    /// Config with a custom restart probability.
    pub fn with_c(c: f64) -> Self {
        Self { c, ..Self::default() }
    }

    /// Validates parameter ranges.
    pub fn validate(&self) {
        if let Err(e) = self.check() {
            // lint:allow(panic-freedom, "documented panicking wrapper over the fallible check(); admission paths call check() directly")
            panic!("{e}");
        }
    }

    /// Fallible version of [`CpiConfig::validate`] for admission paths
    /// that must report a [`crate::TpaError`] instead of panicking.
    pub fn check(&self) -> Result<(), crate::TpaError> {
        let bad = |msg: String| Err(crate::TpaError::InvalidConfig(msg));
        if !(self.c > 0.0 && self.c < 1.0) {
            return bad(format!("restart probability must be in (0,1), got {}", self.c));
        }
        // NaN must fail too, so test "positive" directly.
        if self.eps.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return bad(format!("tolerance must be positive, got {}", self.eps));
        }
        if self.max_iters < 1 {
            return bad("max_iters must be at least 1".into());
        }
        Ok(())
    }

    /// Number of iterations CPI needs to converge:
    /// `log_{1−c}(ε/c)` (paper, Lemma 4).
    pub fn iterations_to_converge(&self) -> usize {
        ((self.eps / self.c).ln() / (1.0 - self.c).ln()).ceil().max(1.0) as usize
    }
}

/// Result of a CPI run.
#[derive(Clone, Debug)]
pub struct CpiResult {
    /// Accumulated score vector (the sum of `x(i)` over the window).
    pub scores: Vec<f64>,
    /// Index of the last iteration whose interim vector was computed.
    pub last_iteration: usize,
    /// `‖x(last)‖₁` at exit.
    pub final_residual: f64,
    /// True if the ε-criterion (not the window end or iteration cap)
    /// terminated the run.
    pub converged: bool,
}

/// Runs CPI accumulating `x(i)` for `start ≤ i ≤ end` (`end = None` ⇒ run
/// to convergence). This is Algorithm 1 with `siter = start`,
/// `titer = end`.
///
/// Iteration 0 is the seed vector `x(0) = c·q` itself; it is accumulated
/// when `start == 0`, matching the series `r = Σ_{i≥0} x(i)`.
///
/// Propagation is scheduled by [`FrontierPolicy::Auto`]: iterations whose
/// interim vector is supported on a small frontier run the backend's
/// sparse kernel, and the run latches onto the dense kernels once the
/// frontier saturates. Any policy is bitwise invisible — use
/// [`cpi_policy`] to force one.
pub fn cpi<P: Propagator + ?Sized>(
    transition: &P,
    seeds: &SeedSet,
    cfg: &CpiConfig,
    start: usize,
    end: Option<usize>,
) -> CpiResult {
    cpi_trace(transition, seeds, cfg, start, end, |_, _| {})
}

/// [`cpi`] with an explicit [`FrontierPolicy`] (forced dense, forced
/// sparse, or the default direction-optimizing `Auto`). All policies
/// produce bitwise-identical results on every backend; only the memory
/// traffic differs.
pub fn cpi_policy<P: Propagator + ?Sized>(
    transition: &P,
    seeds: &SeedSet,
    cfg: &CpiConfig,
    start: usize,
    end: Option<usize>,
    policy: FrontierPolicy,
) -> CpiResult {
    cpi_trace_policy(transition, seeds, cfg, start, end, policy, |_, _| {})
}

/// [`cpi`] with a per-iteration callback receiving `(i, x(i))` for every
/// interim vector computed — the hook the decomposition experiments
/// (Table III, Fig. 9) use to capture the family/neighbor/stranger split.
pub fn cpi_trace<P: Propagator + ?Sized>(
    transition: &P,
    seeds: &SeedSet,
    cfg: &CpiConfig,
    start: usize,
    end: Option<usize>,
    on_iteration: impl FnMut(usize, &[f64]),
) -> CpiResult {
    cpi_trace_policy(transition, seeds, cfg, start, end, FrontierPolicy::Auto, on_iteration)
}

/// [`cpi_trace`] with an explicit [`FrontierPolicy`]. The direction
/// decision is made here, per iteration, from the backend's
/// [`Propagator::frontier_work`] probe:
///
/// * `Dense` — every iteration runs `propagate_into_norm` (the
///   pre-frontier behavior, with the residual folded inside the kernel).
/// * `Sparse` — every iteration runs `propagate_frontier`, however large
///   the frontier grows.
/// * `Auto` — sparse while (a) the backend has a sparse path, (b) the
///   seed support is known (not [`SeedSet::Uniform`]), (c) the
///   frontier's out-edge count stays under `m / DENSE_SWITCH_DIVISOR`,
///   and (d) cumulative sparse edge work stays under
///   `SPARSE_CUMULATIVE_BUDGET · m`; then latches dense for the rest of
///   the run (propagation frontiers only grow).
///
/// While sparse, the per-iteration `O(n)` costs disappear too: the
/// residual comes out of the kernel's reachable-set fold, and the window
/// accumulation adds only the frontier's entries (both bitwise equal to
/// their dense counterparts — the skipped terms are exact zeros).
pub fn cpi_trace_policy<P: Propagator + ?Sized>(
    transition: &P,
    seeds: &SeedSet,
    cfg: &CpiConfig,
    start: usize,
    end: Option<usize>,
    policy: FrontierPolicy,
    on_iteration: impl FnMut(usize, &[f64]),
) -> CpiResult {
    cpi_sweep_policy(transition, seeds, cfg, start, end, policy, on_iteration, |_| false)
}

/// [`cpi_policy`] with an admission guard riding the sweep: the guard's
/// probe is consulted after every accumulated iteration — exactly the
/// hook the bounded top-k checker uses — so a cancelled or
/// deadline-expired request stops at the next iteration boundary
/// instead of running its sweep to completion. A tripped guard surfaces
/// as `converged: false`; the caller maps the trip to its typed error
/// via `SweepGuard::abort_error` and discards the partial scores.
pub(crate) fn cpi_guarded_policy<P: Propagator + ?Sized>(
    transition: &P,
    seeds: &SeedSet,
    cfg: &CpiConfig,
    start: usize,
    end: Option<usize>,
    policy: FrontierPolicy,
    guard: &crate::admission::SweepGuard,
) -> CpiResult {
    cpi_sweep_policy(transition, seeds, cfg, start, end, policy, |_, _| {}, |_| guard.probe())
}

/// Point-in-time view of a CPI sweep handed to an early-stop probe after
/// each accumulated iteration (see [`cpi_sweep_policy`]).
pub(crate) struct SweepProbe<'a> {
    /// Iteration index of the interim vector just accumulated.
    pub i: usize,
    /// Accumulated window sum so far — every node's score lower bound.
    pub scores: &'a [f64],
    /// The interim vector `x(i)` itself (zero off `support` while the
    /// sweep runs sparse).
    pub iterate: &'a [f64],
    /// `‖x(i)‖₁` of the interim vector (blocked-canonical fold).
    pub residual: f64,
    /// Ascending support of `x(i)` while the sweep runs sparse; `None`
    /// once the run has gone dense (the support is no longer tracked).
    /// Note this is the support of the *current* interim vector only,
    /// not the union over the run — observers that need "every node
    /// ever touched" must maintain their own union.
    pub support: Option<&'a [NodeId]>,
}

/// [`cpi_trace_policy`] plus an early-stop probe: `stop` is called after
/// every accumulated iteration (`i ≥ start`, including iteration 0) and
/// returning `true` ends the sweep immediately. The bounded top-k path
/// rides this hook to terminate once its bound proof fires; the public
/// entry points delegate with a never-stop probe, so the shared loop
/// stays the single source of truth for bitwise behavior.
///
/// An early-stopped run reports `converged: false` — the caller that
/// requested the stop knows why the loop ended.
#[allow(clippy::too_many_arguments)]
pub(crate) fn cpi_sweep_policy<P: Propagator + ?Sized>(
    transition: &P,
    seeds: &SeedSet,
    cfg: &CpiConfig,
    start: usize,
    end: Option<usize>,
    policy: FrontierPolicy,
    mut on_iteration: impl FnMut(usize, &[f64]),
    mut stop: impl FnMut(SweepProbe<'_>) -> bool,
) -> CpiResult {
    cfg.validate();
    if let Some(e) = end {
        assert!(start <= e, "empty CPI window: start {start} > end {e}");
    }
    let n = transition.n();
    let mut x = vec![0.0f64; n];
    seeds.fill_seed_vector(cfg.c, &mut x);
    let mut next = vec![0.0f64; n];
    let mut scores = vec![0.0f64; n];

    // Sparse-mode state: the support of `x` (`active`), the stale
    // support still written in the `next` buffer, and the kernel
    // workspace. `Auto` without a known seed support (or a backend
    // without a sparse path) starts — and therefore stays — dense.
    let mut sparse = match policy {
        FrontierPolicy::Dense => false,
        FrontierPolicy::Sparse => true,
        FrontierPolicy::Auto => {
            seeds.support().is_some() && transition.frontier_work(&[]).is_some()
        }
    };
    let mut active: Vec<NodeId> = Vec::new();
    let mut stale: Vec<NodeId> = Vec::new();
    let mut scratch = None;
    let mut cumulative_work = 0usize;
    if sparse {
        active = seeds.support().unwrap_or_else(|| (0..n as NodeId).collect());
        scratch = Some(FrontierScratch::new(n));
    }
    // Profiling accumulates into locals (pure register traffic) and
    // flushes once at the end; disabled, the only cost is one relaxed
    // bool load here.
    let prof = crate::profiling::profiling_enabled();
    let mut tally = crate::profiling::RunTally::default();
    let dense_edges: u64 = if prof {
        transition.frontier_work(&[]).map(|w| w.total_edges as u64).unwrap_or(0)
    } else {
        0
    };

    on_iteration(0, &x);
    if start == 0 {
        if sparse {
            add_assign_support(&mut scores, &x, &active);
        } else {
            add_assign(&mut scores, &x);
        }
    }

    let mut i = 0usize;
    let mut residual = if sparse { l1_support(&x, &active) } else { l1(&x) };
    let mut converged = residual < cfg.eps;
    let hard_end = end.unwrap_or(usize::MAX);
    let mut stopped = start == 0
        && stop(SweepProbe {
            i: 0,
            scores: &scores,
            iterate: &x,
            residual,
            support: if sparse { Some(&active) } else { None },
        });

    while !converged && !stopped && i < hard_end && i < cfg.max_iters {
        i += 1;
        if sparse && policy == FrontierPolicy::Auto {
            // Per-iteration direction decision (one-way: sparse → dense).
            let keep = match transition.frontier_work(&active) {
                Some(w) => {
                    w.prefers_sparse()
                        && (cumulative_work as f64)
                            < SPARSE_CUMULATIVE_BUDGET * w.total_edges as f64
                }
                None => false,
            };
            if !keep {
                sparse = false;
                tally.auto_dense_switches = 1;
            }
        }
        if sparse {
            tally.sparse_iterations += 1;
            // lint:allow(panic-freedom, "scratch is allocated above whenever the sweep can enter sparse mode; sparse implies Some by construction")
            let scratch = scratch.as_mut().expect("sparse mode allocates its scratch");
            // `next` still holds x(i−2): zero its stale support so the
            // kernel's untouched entries are exact zeros.
            for &v in &stale {
                next[v as usize] = 0.0;
            }
            let step = transition.propagate_frontier(1.0 - cfg.c, &x, &mut next, &active, scratch);
            cumulative_work += step.edge_work;
            tally.sparse_edge_work += step.edge_work as u64;
            residual = step.residual;
            std::mem::swap(&mut x, &mut next);
            // Rotate the support lists alongside the buffers: the old
            // `active` is now the stale support of `next`.
            std::mem::swap(&mut active, &mut stale);
            std::mem::swap(&mut active, scratch.next_active_mut());
            if step.went_dense {
                tally.gather_bails += 1;
                if policy == FrontierPolicy::Auto {
                    sparse = false;
                }
            }
            on_iteration(i, &x);
            if i >= start {
                if sparse {
                    add_assign_support(&mut scores, &x, &active);
                } else {
                    add_assign(&mut scores, &x);
                }
                // `active` is the exact support of x(i) even after a
                // gather bail: the fallback scan rebuilt it densely.
                stopped = stop(SweepProbe {
                    i,
                    scores: &scores,
                    iterate: &x,
                    residual,
                    support: Some(&active),
                });
            }
        } else {
            tally.dense_iterations += 1;
            tally.dense_edge_work += dense_edges;
            residual = transition.propagate_into_norm(1.0 - cfg.c, &x, &mut next);
            std::mem::swap(&mut x, &mut next);
            on_iteration(i, &x);
            if i >= start {
                add_assign(&mut scores, &x);
                stopped =
                    stop(SweepProbe { i, scores: &scores, iterate: &x, residual, support: None });
            }
        }
        if residual < cfg.eps {
            converged = true;
        }
    }

    if prof {
        tally.iterations = i as u64;
        crate::profiling::record_cpi_run(tally);
    }
    CpiResult { scores, last_iteration: i, final_residual: residual, converged }
}

#[inline]
fn add_assign(acc: &mut [f64], x: &[f64]) {
    for (a, b) in acc.iter_mut().zip(x) {
        *a += b;
    }
}

/// Support-only accumulation: `x` is zero off `active`, and adding an
/// exact `0.0` to a score is the identity, so this matches
/// [`add_assign`] bit for bit while touching `O(|active|)` entries.
#[inline]
fn add_assign_support(acc: &mut [f64], x: &[f64], active: &[NodeId]) {
    for &v in active {
        acc[v as usize] += x[v as usize];
    }
}

/// The canonical residual chain (blocked two-level fold; see
/// [`crate::tiling`]) — what every dense `propagate_into_norm` returns.
#[inline]
fn l1(x: &[f64]) -> f64 {
    crate::tiling::blocked_norm(x)
}

/// Support-only L1: ascending `active` covers every nonzero of `x`, and
/// the fold groups entries by their `NORM_BLOCK` so the chain matches
/// [`l1`] bit for bit — blocks without support contribute an exact
/// `+0.0` partial (elided), and within a block the skipped terms are
/// exact zeros.
#[inline]
pub(crate) fn l1_support(x: &[f64], active: &[NodeId]) -> f64 {
    let mut acc = 0.0f64;
    let mut i = 0usize;
    while i < active.len() {
        let block = active[i] as usize / crate::tiling::NORM_BLOCK;
        let mut part = 0.0f64;
        while i < active.len() && active[i] as usize / crate::tiling::NORM_BLOCK == block {
            part += x[active[i] as usize].abs();
            i += 1;
        }
        acc += part;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Transition;
    use tpa_graph::gen::{complete_graph, cycle_graph};
    use tpa_graph::CsrGraph;

    fn l1_dist(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
    }

    #[test]
    fn full_window_sums_to_one() {
        // Mass conservation: Σ r = Σᵢ c(1−c)ⁱ = 1 at convergence.
        let g = cycle_graph(10);
        let t = Transition::new(&g);
        let r = cpi(&t, &SeedSet::single(0), &CpiConfig::default(), 0, None);
        assert!(r.converged);
        let total: f64 = r.scores.iter().sum();
        assert!((total - 1.0).abs() < 1e-7, "total {total}");
    }

    #[test]
    fn satisfies_steady_state_equation() {
        // Theorem 1: r = (1−c)·Ãᵀ·r + c·q.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 0), (0, 2)]);
        let t = Transition::new(&g);
        let cfg = CpiConfig { eps: 1e-12, ..Default::default() };
        let r = cpi(&t, &SeedSet::single(0), &cfg, 0, None);
        let mut rhs = vec![0.0; 4];
        t.propagate_into(1.0 - cfg.c, &r.scores, &mut rhs);
        rhs[0] += cfg.c;
        assert!(l1_dist(&r.scores, &rhs) < 1e-9);
    }

    #[test]
    fn window_split_equals_full_run() {
        // family(0..=s−1) + rest(s..) must equal the full sum.
        let g = complete_graph(8);
        let t = Transition::new(&g);
        let cfg = CpiConfig::default();
        let seeds = SeedSet::single(3);
        let full = cpi(&t, &seeds, &cfg, 0, None);
        let s = 4;
        let family = cpi(&t, &seeds, &cfg, 0, Some(s - 1));
        let rest = cpi(&t, &seeds, &cfg, s, None);
        let merged: Vec<f64> = family.scores.iter().zip(&rest.scores).map(|(a, b)| a + b).collect();
        assert!(l1_dist(&full.scores, &merged) < 1e-9);
    }

    #[test]
    fn family_mass_matches_lemma2() {
        // ‖r_family‖₁ = 1 − (1−c)^S (Lemma 2) on a dangling-free graph.
        let g = cycle_graph(6);
        let t = Transition::new(&g);
        let cfg = CpiConfig::default();
        for s in [1usize, 3, 5] {
            let fam = cpi(&t, &SeedSet::single(2), &cfg, 0, Some(s - 1));
            let want = 1.0 - (1.0 - cfg.c).powi(s as i32);
            let got: f64 = fam.scores.iter().sum();
            assert!((got - want).abs() < 1e-12, "S={s}: {got} vs {want}");
        }
    }

    #[test]
    fn interim_norm_is_geometric() {
        // ‖x(i)‖₁ = c(1−c)ⁱ exactly (column-stochastic case).
        let g = cycle_graph(5);
        let t = Transition::new(&g);
        let cfg = CpiConfig::default();
        let mut norms = Vec::new();
        cpi_trace(&t, &SeedSet::single(0), &cfg, 0, Some(10), |_, x| {
            norms.push(x.iter().sum::<f64>());
        });
        for (i, &norm) in norms.iter().enumerate() {
            let want = cfg.c * (1.0 - cfg.c).powi(i as i32);
            assert!((norm - want).abs() < 1e-12, "i={i}");
        }
    }

    #[test]
    fn callback_sees_every_iteration() {
        let g = cycle_graph(4);
        let t = Transition::new(&g);
        let mut seen = Vec::new();
        cpi_trace(&t, &SeedSet::single(0), &CpiConfig::default(), 0, Some(5), |i, _| seen.push(i));
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn multi_seed_splits_initial_mass() {
        let g = cycle_graph(4);
        let t = Transition::new(&g);
        let cfg = CpiConfig::default();
        let r = cpi(&t, &SeedSet::set(vec![0, 2]), &cfg, 0, Some(0));
        assert_eq!(r.scores[0], cfg.c / 2.0);
        assert_eq!(r.scores[2], cfg.c / 2.0);
        assert_eq!(r.scores[1], 0.0);
    }

    #[test]
    fn uniform_seed_is_pagerank_start() {
        let g = cycle_graph(4);
        let t = Transition::new(&g);
        let cfg = CpiConfig::default();
        let r = cpi(&t, &SeedSet::Uniform, &cfg, 0, Some(0));
        for &v in &r.scores {
            assert!((v - cfg.c / 4.0).abs() < 1e-15);
        }
    }

    #[test]
    fn iterations_to_converge_formula() {
        let cfg = CpiConfig::default();
        let predicted = cfg.iterations_to_converge();
        let g = cycle_graph(7);
        let t = Transition::new(&g);
        let r = cpi(&t, &SeedSet::single(0), &cfg, 0, None);
        // Within ±2 iterations of the closed form.
        assert!(
            (r.last_iteration as i64 - predicted as i64).abs() <= 2,
            "ran {} predicted {predicted}",
            r.last_iteration
        );
    }

    #[test]
    #[should_panic(expected = "empty CPI window")]
    fn rejects_inverted_window() {
        let g = cycle_graph(3);
        let t = Transition::new(&g);
        cpi(&t, &SeedSet::single(0), &CpiConfig::default(), 5, Some(2));
    }
}
