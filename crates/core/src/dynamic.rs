//! Dynamic RWR: propagation over the delta overlay plus OSP-style
//! incremental score maintenance.
//!
//! Two pieces make the streaming workload serviceable:
//!
//! 1. [`DynamicTransition`] — the transition operator `Ãᵀ` bound to a
//!    mutable [`DynamicGraph`]. It implements [`Propagator`], so every
//!    CPI consumer (exact plans, `TpaIndex` preprocessing and queries,
//!    batched lanes) runs unchanged over an evolving graph, and its
//!    gather order matches a CSR rebuilt from scratch **bit for bit**.
//!
//! 2. Offset Score Propagation (after *"Fast and Accurate Random Walk
//!    with Restart on Dynamic Graphs with Guarantees"*, Yoon et al. —
//!    the TPA authors' follow-up). When the graph changes from `Ã` to
//!    `Ã'`, the new RWR vector is `r' = r + Δ` where the correction `Δ`
//!    solves the *same* linear system with the **offset seed**
//!    `b = (1−c)·(Ã'ᵀ − Ãᵀ)·r` in place of the restart vector:
//!
//!    ```text
//!    Δ = Σ_{i≥0} ((1−c)·Ã'ᵀ)^i · b
//!    ```
//!
//!    `b` is supported only on the out-neighborhoods of nodes whose
//!    adjacency changed, and `‖b‖₁` scales with the update batch — so
//!    propagating the offset costs a few sparse-ish CPI iterations
//!    instead of a full from-scratch rerun. [`ScoreCache`] maintains a
//!    working set of score vectors this way, with an exact mode (refresh
//!    to the CPI tolerance) and an approximate mode that drops offset
//!    mass below a tolerance for an `L1` error bounded by
//!    `2·tolerance / c` per refresh: the geometric series
//!    `Σ (1−c)^i = 1/c` amplifies the ≤ `tolerance` of dropped seed
//!    mass by at most `1/c`, and stopping once the residual falls below
//!    `tolerance` leaves a tail of at most `tolerance·(1−c)/c` more.

use crate::batch::cpi_batch;
use crate::frontier::{
    self, FrontierPolicy, FrontierScratch, FrontierStep, FrontierWork, SPARSE_CUMULATIVE_BUDGET,
};
use crate::tiling::{self, InAdjacency, TilePolicy};
use crate::transition::dense_frontier_fallback;
use crate::{CpiConfig, Propagator};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use tpa_graph::{CsrGraph, DynamicGraph, EdgeUpdate, NodeId};

pub use tpa_graph::ApplyStats;

/// The transition operator `Ãᵀ` over a [`DynamicGraph`]'s merged view,
/// with `1/outdeg` maintained incrementally across updates.
///
/// Gather order is ascending in-neighbor order — identical to
/// [`crate::Transition`] on a CSR rebuilt from the merged edge set, so
/// scores are bitwise equal to a full rebuild.
pub struct DynamicTransition {
    graph: DynamicGraph,
    inv_out_deg: Vec<f64>,
    /// Destinations whose in-adjacency may carry a patch. Kernels route
    /// every other node straight to the base CSR slice — between
    /// compactions that is the overwhelming majority, so a dirty overlay
    /// propagates at nearly clean-CSR speed. May over-approximate after
    /// patches cancel out (harmless: the merged view equals the base
    /// there, and the merge yields the identical sequence).
    in_dirty: Vec<bool>,
    /// Materialized merged in-rows of dirty destinations, refreshed on
    /// [`DynamicTransition::apply`]. Propagation runs ~100 edge sweeps
    /// per converged query, so paying one merge per *update* instead of
    /// one per *sweep* is a large win — and it gives every destination a
    /// plain slice, which is what lets the overlay share the strip-mined
    /// kernels (and the identical gather order) of the static backends.
    /// Rows are `Arc`'d so a copy-on-write publish
    /// ([`DynamicTransition::publish_patched`]) shares them instead of
    /// deep-copying the accumulated overlay on every epoch.
    dirty_rows: HashMap<NodeId, Arc<Vec<NodeId>>>,
    /// Materialized merged out-rows of sources whose column changed —
    /// the out-side mirror of `dirty_rows`, maintained for the patched
    /// snapshot's frontier discovery (the published view cannot carry
    /// the mutable [`DynamicGraph`], so it reads these shared rows).
    out_rows: HashMap<NodeId, Arc<Vec<NodeId>>>,
    /// Destination ranges, one per worker (mirrors
    /// [`crate::ParallelTransition`]; length 1 = sequential).
    ranges: Vec<(u32, u32)>,
    tile: TilePolicy,
    /// Memoized sampled `Auto` tile decisions, cleared whenever the
    /// overlay mutates (apply / compact).
    strips: tiling::StripCache,
}

impl std::fmt::Debug for DynamicTransition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DynamicTransition").finish_non_exhaustive()
    }
}

/// The overlay's row view for the shared gather kernels: dirty
/// destinations read their materialized merged row, everyone else reads
/// the base CSC slice. Shared with [`crate::patch::PatchedTransition`],
/// whose published state has exactly this shape.
pub(crate) struct OverlayRows<'a> {
    pub(crate) base: &'a CsrGraph,
    pub(crate) in_dirty: &'a [bool],
    pub(crate) dirty_rows: &'a HashMap<NodeId, Arc<Vec<NodeId>>>,
}

impl InAdjacency for OverlayRows<'_> {
    #[inline]
    fn in_row(&self, v: NodeId) -> &[NodeId] {
        if self.in_dirty[v as usize] {
            self.dirty_rows.get(&v).map(|r| r.as_slice()).unwrap_or_default()
        } else {
            self.base.in_neighbors(v)
        }
    }
}

/// The out-adjacency column of one node *before* an update batch touched
/// it — everything the offset seed needs about the old operator.
#[derive(Clone, Debug)]
pub struct SourceDelta {
    /// The changed source node.
    pub node: NodeId,
    /// Its merged out-neighbors before the batch.
    pub old_out: Vec<NodeId>,
    /// Its `1/outdeg` before the batch (`0.0` if it was dangling).
    pub old_inv: f64,
}

/// Everything captured by one [`DynamicTransition::apply`] batch: what
/// changed structurally, and the old columns needed to build offset seeds.
#[derive(Clone, Debug)]
pub struct UpdateDelta {
    /// Structural outcome (inserted/deleted/no-op counts, compaction).
    pub stats: ApplyStats,
    /// Old out-columns of every source the batch touched.
    pub sources: Vec<SourceDelta>,
    /// `Σ_u ‖Ã'[:,u] − Ã[:,u]‖₁` over the touched sources: the total L1
    /// change of the transition operator. Drives index staleness
    /// accounting (see [`crate::QueryEngine::apply_updates`]).
    pub column_delta_mass: f64,
}

impl DynamicTransition {
    /// Binds the operator to a dynamic graph, computing `1/outdeg` from
    /// the merged view. Single-threaded; see
    /// [`DynamicTransition::with_threads`] for destination-range
    /// parallelism.
    pub fn new(graph: DynamicGraph) -> Self {
        let inv_out_deg = (0..graph.n() as NodeId)
            .map(|u| {
                let d = graph.out_degree(u);
                if d == 0 {
                    0.0
                } else {
                    1.0 / d as f64
                }
            })
            .collect();
        let in_dirty: Vec<bool> = (0..graph.n() as NodeId).map(|v| graph.has_in_patch(v)).collect();
        let mut dirty_rows = HashMap::new();
        let mut out_rows = HashMap::new();
        for v in 0..graph.n() as NodeId {
            if in_dirty[v as usize] {
                dirty_rows.insert(v, Arc::new(graph.in_neighbors(v).collect()));
            }
            if graph.has_out_patch(v) {
                out_rows.insert(v, Arc::new(graph.out_neighbors(v).collect()));
            }
        }
        let ranges = vec![(0, graph.n() as u32)];
        Self {
            graph,
            inv_out_deg,
            in_dirty,
            dirty_rows,
            out_rows,
            ranges,
            tile: TilePolicy::Auto,
            strips: tiling::StripCache::new(),
        }
    }

    /// Propagates with `threads` destination-range workers, mirroring
    /// [`crate::ParallelTransition`]: each worker owns a contiguous band
    /// of destinations balanced by base in-edge count, writes are
    /// disjoint, and results stay bit-identical to the single-threaded
    /// overlay (and to a rebuilt CSR). `0` means "use available
    /// parallelism".
    pub fn with_threads(mut self, threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1)
        } else {
            threads
        };
        self.ranges = tiling::balance_ranges(self.graph.base().in_offsets(), threads);
        self
    }

    /// Overrides the cache-blocking policy (default: the
    /// [`TilePolicy::Auto`] cost model). Any policy stays bit-identical.
    pub fn with_tile_policy(mut self, tile: TilePolicy) -> Self {
        self.tile = tile;
        self
    }

    /// Number of destination-range workers.
    pub fn threads(&self) -> usize {
        self.ranges.len()
    }

    /// The memoized tile decision for the current overlay state.
    fn resolve_strip(&self, rows: &OverlayRows<'_>, lanes: usize) -> Option<usize> {
        self.strips.resolve(self.tile, rows, self.n(), self.graph.m(), lanes)
    }

    /// The kernels' row view over the current overlay state.
    fn rows(&self) -> OverlayRows<'_> {
        OverlayRows {
            base: self.graph.base(),
            in_dirty: &self.in_dirty,
            dirty_rows: &self.dirty_rows,
        }
    }

    /// Re-balances worker ranges against the current base snapshot
    /// (called after compaction replaces the base).
    fn rebalance(&mut self) {
        let threads = self.ranges.len();
        self.ranges = tiling::balance_ranges(self.graph.base().in_offsets(), threads);
    }

    /// The underlying dynamic graph.
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// Consumes the operator, returning the graph.
    pub fn into_graph(self) -> DynamicGraph {
        self.graph
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// Applies an update batch to the graph (threshold-triggered
    /// compaction included), refreshes the cached `1/outdeg` entries of
    /// changed sources, and captures the old columns the offset seed
    /// needs. Old columns are snapshotted *before* any mutation, so the
    /// delta is exact even when a batch touches one source repeatedly.
    pub fn apply(&mut self, updates: &[EdgeUpdate]) -> UpdateDelta {
        // Capture each distinct source's pre-batch column.
        let mut seen: HashSet<NodeId> = HashSet::new();
        let mut sources = Vec::new();
        for up in updates {
            let u = up.source();
            if seen.insert(u) {
                sources.push(SourceDelta {
                    node: u,
                    old_out: self.graph.out_neighbors(u).collect(),
                    old_inv: self.inv_out_deg[u as usize],
                });
            }
        }

        let stats = self.graph.apply(updates);

        // Refresh 1/outdeg and measure the operator change per column.
        let mut column_delta_mass = 0.0;
        for sd in &mut sources {
            let u = sd.node;
            let d = self.graph.out_degree(u);
            let new_inv = if d == 0 { 0.0 } else { 1.0 / d as f64 };
            self.inv_out_deg[u as usize] = new_inv;
            column_delta_mass +=
                column_delta(&sd.old_out, sd.old_inv, self.graph.out_neighbors(u), new_inv);
        }
        self.strips.clear();
        if stats.compacted {
            self.in_dirty.iter_mut().for_each(|d| *d = false);
            self.dirty_rows.clear();
            self.out_rows.clear();
            self.rebalance();
        } else {
            // Re-merge each touched in-row once per distinct target —
            // update batches hammer the same hubs on power-law graphs.
            let touched: HashSet<NodeId> = updates.iter().map(|up| up.target()).collect();
            for v in touched {
                self.in_dirty[v as usize] = true;
                self.dirty_rows.insert(v, Arc::new(self.graph.in_neighbors(v).collect()));
            }
            // And each changed source's merged out-row (the patched
            // snapshot's frontier-discovery view).
            for sd in &sources {
                self.out_rows
                    .insert(sd.node, Arc::new(self.graph.out_neighbors(sd.node).collect()));
            }
        }
        UpdateDelta { stats, sources, column_delta_mass }
    }

    /// Folds the overlay into a fresh base snapshot. The merged view —
    /// and therefore the operator and every score — is unchanged; only
    /// the neighbor-scan cost drops back to plain CSR slices.
    pub fn compact(&mut self) {
        self.graph.compact();
        self.strips.clear();
        self.in_dirty.iter_mut().for_each(|d| *d = false);
        self.dirty_rows.clear();
        self.out_rows.clear();
        self.rebalance();
    }

    /// Swaps the overlay onto a freshly compacted `base` and replays
    /// `log` — the updates applied to this overlay *after* the base was
    /// snapshotted — on top of it. Set semantics make the replay exact:
    /// the merged view (and therefore every published score, bit for
    /// bit) is unchanged; only the patch maps shrink to the replayed
    /// tail. This is the install half of background compaction: the
    /// `O(n + m)` snapshot ran off-thread, and this call costs
    /// `O(n + |log|)` with no edge traversal.
    pub fn rebase(&mut self, base: Arc<CsrGraph>, log: &[EdgeUpdate]) {
        let threads = self.ranges.len();
        let threshold = self.graph.compact_threshold();
        let mut dg = DynamicGraph::shared(base).with_compact_threshold(threshold);
        dg.apply(log);
        let tile = self.tile;
        *self = DynamicTransition::new(dg).with_tile_policy(tile).with_threads(threads);
    }

    /// Publishes an immutable copy-on-write view of the current merged
    /// state: the base CSR, the materialized dirty rows, and the worker
    /// ranges are shared (`Arc` bumps and `O(dirty)` map clones); only
    /// the two flat per-node arrays (`1/outdeg`, dirty flags) are
    /// copied. No edge is touched — publishing scales with the overlay
    /// delta, not with `m`. The view gathers through the identical
    /// kernels and rows, so its scores are bitwise equal to this
    /// overlay's (and, by the `dynamic_equiv` property tests, to a full
    /// rebuild).
    pub fn publish_patched(&self) -> crate::patch::PatchedTransition {
        crate::patch::PatchedTransition::assemble(
            Arc::clone(self.graph.base_arc()),
            Arc::new(self.inv_out_deg.clone()),
            Arc::new(self.in_dirty.clone()),
            self.dirty_rows.clone(),
            self.out_rows.clone(),
            self.graph.m(),
            self.graph.delta_edges(),
            self.ranges.clone(),
            self.tile,
        )
    }

    /// The OSP offset seed `b = (1−c)·(Ã'ᵀ − Ãᵀ)·r` for one cached score
    /// vector `r` (scores measured *before* the batch). Only the changed
    /// columns contribute: `b[v] = (1−c)·Σ_u r[u]·(w'(u→v) − w(u→v))`.
    pub fn offset_seed(&self, delta: &UpdateDelta, c: f64, old_scores: &[f64]) -> Vec<f64> {
        self.offset_seed_for(&delta.sources, c, old_scores)
    }

    /// [`DynamicTransition::offset_seed`] against an explicit set of old
    /// columns — the same columns may telescope across many batches (the
    /// first pre-batch state per source), which is how the index's
    /// stranger vector is patched long after the individual deltas were
    /// folded in.
    pub fn offset_seed_for(&self, sources: &[SourceDelta], c: f64, old_scores: &[f64]) -> Vec<f64> {
        assert_eq!(old_scores.len(), self.n(), "cached scores are for a different graph");
        let mut b = vec![0.0f64; self.n()];
        for sd in sources {
            let w = (1.0 - c) * old_scores[sd.node as usize];
            if w == 0.0 {
                continue;
            }
            for &v in &sd.old_out {
                b[v as usize] -= w * sd.old_inv;
            }
            let new_inv = self.inv_out_deg[sd.node as usize];
            for v in self.graph.out_neighbors(sd.node) {
                b[v as usize] += w * new_inv;
            }
        }
        b
    }
}

/// Exact L1 distance between one node's old and new transition column,
/// exploiting that both neighbor sequences are ascending.
fn column_delta(
    old: &[NodeId],
    old_inv: f64,
    new: impl Iterator<Item = NodeId>,
    new_inv: f64,
) -> f64 {
    let mut mass = 0.0;
    let mut oi = 0usize;
    for v in new {
        while oi < old.len() && old[oi] < v {
            mass += old_inv;
            oi += 1;
        }
        if oi < old.len() && old[oi] == v {
            mass += (new_inv - old_inv).abs();
            oi += 1;
        } else {
            mass += new_inv;
        }
    }
    mass += (old.len() - oi) as f64 * old_inv;
    mass
}

impl Propagator for DynamicTransition {
    fn n(&self) -> usize {
        self.graph.n()
    }

    /// Scalar gather over the overlay: unpatched destinations (the
    /// overwhelming majority) read the base CSR slice, dirty ones their
    /// materialized merged row — identical accumulation order either
    /// way, so results match a rebuilt CSR bit for bit. Runs the same
    /// flat-or-strip-mined kernels as the static backends, split over
    /// destination-range workers when [`DynamicTransition::with_threads`]
    /// asked for them.
    fn propagate_into(&self, coeff: f64, x: &[f64], y: &mut [f64]) {
        let n = self.n();
        assert_eq!(x.len(), n, "input vector length mismatch");
        assert_eq!(y.len(), n, "output vector length mismatch");
        let rows = self.rows();
        let strip = self.resolve_strip(&rows, 1);
        if self.ranges.len() == 1 {
            tiling::gather_range(&rows, &self.inv_out_deg, coeff, x, y, 0..n as NodeId, strip);
            return;
        }
        let inv = &self.inv_out_deg;
        tiling::par_ranges(&self.ranges, 1, y, |slice, start, end| {
            tiling::gather_range(&rows, inv, coeff, x, slice, start..end, strip);
        });
    }

    /// Fused-residual variant: the single-range overlay folds `Σ|y|`
    /// inside the kernel's destination loop for free; the multi-range
    /// path folds per-worker per-block partials into the same
    /// blocked-canonical chain (see [`crate::ParallelTransition`]), so
    /// the residual stays bitwise identical across backends.
    fn propagate_into_norm(&self, coeff: f64, x: &[f64], y: &mut [f64]) -> f64 {
        let n = self.n();
        assert_eq!(x.len(), n, "input vector length mismatch");
        assert_eq!(y.len(), n, "output vector length mismatch");
        let rows = self.rows();
        let strip = self.resolve_strip(&rows, 1);
        if self.ranges.len() == 1 {
            return tiling::gather_range(
                &rows,
                &self.inv_out_deg,
                coeff,
                x,
                y,
                0..n as NodeId,
                strip,
            );
        }
        let inv = &self.inv_out_deg;
        if tiling::ranges_block_aligned(&self.ranges) {
            return tiling::par_ranges_norm(&self.ranges, y, |slice, start, end| {
                tiling::gather_range(&rows, inv, coeff, x, slice, start..end, strip);
            });
        }
        self.propagate_into(coeff, x, y);
        tiling::blocked_norm(y)
    }

    fn frontier_work(&self, active: &[NodeId]) -> Option<FrontierWork> {
        Some(FrontierWork {
            frontier_edges: frontier::frontier_out_edges(&self.graph, active),
            total_edges: self.graph.m(),
        })
    }

    /// Sparse-frontier step over the overlay: discovery walks the merged
    /// out-view, the masked gather reads the same merged in-rows as the
    /// dense overlay kernels (dirty destinations hit their materialized
    /// row, everyone else the base CSC slice), split over the worker
    /// ranges when present — bit-identical to a rebuilt CSR.
    fn propagate_frontier(
        &self,
        coeff: f64,
        x: &[f64],
        y: &mut [f64],
        active: &[NodeId],
        scratch: &mut FrontierScratch,
    ) -> FrontierStep {
        let n = self.n();
        assert_eq!(x.len(), n, "input vector length mismatch");
        assert_eq!(y.len(), n, "output vector length mismatch");
        let rows = self.rows();
        match frontier::sparse_step_ranged(
            &self.graph,
            &rows,
            &self.inv_out_deg,
            coeff,
            x,
            y,
            active,
            self.graph.m(),
            &self.ranges,
            scratch,
        ) {
            Some(step) => step,
            None => dense_frontier_fallback(self, coeff, x, y, scratch),
        }
    }

    /// Fused block kernel over the overlay: one adjacency pass per
    /// iteration updates every lane (same accumulation order as the
    /// scalar path, so results stay bit-identical to lane-by-lane
    /// execution and to a rebuilt CSR), parallel over destination bands
    /// like [`crate::ParallelTransition`].
    fn propagate_block_into(
        &self,
        coeff: f64,
        x: &crate::batch::ScoreBlock,
        y: &mut crate::batch::ScoreBlock,
    ) {
        let n = self.n();
        assert_eq!(x.n(), n, "input block height mismatch");
        assert_eq!(y.n(), n, "output block height mismatch");
        assert_eq!(x.lanes(), y.lanes(), "lane count mismatch");
        let lanes = x.lanes();
        let rows = self.rows();
        let strip = self.resolve_strip(&rows, lanes);
        if self.ranges.len() == 1 {
            tiling::block_gather_range(
                &rows,
                &self.inv_out_deg,
                coeff,
                x,
                y.data_mut(),
                0..n as NodeId,
                strip,
            );
            return;
        }
        let inv = &self.inv_out_deg;
        tiling::par_ranges(&self.ranges, lanes, y.data_mut(), |slice, start, end| {
            tiling::block_gather_range(&rows, inv, coeff, x, slice, start..end, strip)
        });
    }
}

/// How [`ScoreCache::refresh`] propagates the offset.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MaintenanceMode {
    /// Propagate the offset to the CPI tolerance: cached scores track a
    /// from-scratch recomputation to within `ε/c`.
    Exact,
    /// Drop offset-seed entries below `tolerance / n` and stop
    /// propagating once the residual falls below `tolerance`. Bounds the
    /// L1 drift per refresh by `2·tolerance/c` while skipping most of
    /// the propagation work for small update batches.
    Approximate {
        /// Offset mass (L1) this refresh is allowed to discard.
        tolerance: f64,
    },
}

/// Accounting from one offset propagation.
#[derive(Clone, Copy, Debug, Default)]
pub struct RefreshStats {
    /// Propagation iterations run (0 when the whole offset was dropped).
    pub iterations: usize,
    /// `‖b‖₁` of the offset seed before any dropping.
    pub offset_mass: f64,
    /// Offset mass discarded by the approximate mode (0.0 in exact mode).
    pub dropped_mass: f64,
}

/// Propagates an offset seed through the current operator, folding the
/// correction `Δ = Σ_i ((1−c)Ãᵀ)^i·b` into `scores` in place. Runs the
/// dense kernels every iteration; see [`propagate_offset_policy`] for
/// the direction-optimizing variant (bitwise identical, less memory
/// traffic while the correction's support is small).
pub fn propagate_offset<P: Propagator + ?Sized>(
    t: &P,
    offset: Vec<f64>,
    cfg: &CpiConfig,
    mode: MaintenanceMode,
    scores: &mut [f64],
) -> RefreshStats {
    propagate_offset_policy(t, offset, cfg, mode, FrontierPolicy::Dense, scores)
}

/// [`propagate_offset`] with an explicit [`FrontierPolicy`]. The offset
/// seed is sparse by construction — supported only on the changed
/// sources' out-neighborhoods — which is exactly the shape the
/// sparse-frontier kernel was built for, so `Auto` routes the first
/// Neumann iterations through [`Propagator::propagate_frontier`] and
/// latches onto the dense kernels once the correction's support
/// saturates (the same one-way switch [`crate::cpi`] uses). Every
/// policy produces bitwise-identical scores and makes the same stopping
/// decisions: sparse steps skip only exact-zero terms, and every
/// residual — fused dense, per-worker partials, or reachable-set fold —
/// uses the blocked-canonical association.
pub fn propagate_offset_policy<P: Propagator + ?Sized>(
    t: &P,
    mut offset: Vec<f64>,
    cfg: &CpiConfig,
    mode: MaintenanceMode,
    policy: FrontierPolicy,
    scores: &mut [f64],
) -> RefreshStats {
    cfg.validate();
    let n = t.n();
    assert_eq!(offset.len(), n, "offset length mismatch");
    assert_eq!(scores.len(), n, "scores length mismatch");
    let mut stats = RefreshStats {
        offset_mass: offset.iter().map(|v| v.abs()).sum(),
        ..RefreshStats::default()
    };

    let stop_eps = match mode {
        MaintenanceMode::Exact => cfg.eps,
        MaintenanceMode::Approximate { tolerance } => {
            assert!(tolerance > 0.0, "tolerance must be positive");
            // Sparsify the seed: entries below a uniform share of the
            // tolerance can never matter more than `tolerance/c` in sum.
            let cut = tolerance / n.max(1) as f64;
            for v in offset.iter_mut() {
                if v.abs() < cut {
                    stats.dropped_mass += v.abs();
                    *v = 0.0;
                }
            }
            tolerance.max(cfg.eps)
        }
    };

    // Neumann series: scores += b + (1−c)Ãᵀb + ((1−c)Ãᵀ)²b + …
    // Sparse-mode state mirrors `cpi_trace_policy`: the support of `x`
    // (`active`), the stale support still written in `next`, and the
    // kernel workspace.
    let mut x = offset;
    let mut sparse = match policy {
        FrontierPolicy::Dense => false,
        FrontierPolicy::Sparse => true,
        FrontierPolicy::Auto => t.frontier_work(&[]).is_some(),
    };
    let mut active: Vec<NodeId> = Vec::new();
    let mut stale: Vec<NodeId> = Vec::new();
    let mut scratch = None;
    let mut cumulative_work = 0usize;
    if sparse {
        active = (0..n as NodeId).filter(|&v| x[v as usize] != 0.0).collect();
        scratch = Some(FrontierScratch::new(n));
    }

    let mut residual =
        if sparse { crate::cpi::l1_support(&x, &active) } else { tiling::blocked_norm(&x) };
    if residual == 0.0 {
        return stats;
    }
    if sparse {
        for &v in &active {
            scores[v as usize] += x[v as usize];
        }
    } else {
        for (s, &b) in scores.iter_mut().zip(&x) {
            *s += b;
        }
    }
    // Same flush-once profiling discipline as `cpi_trace_policy`: local
    // tallies, one relaxed flush after the sweep, a single bool load
    // when disabled.
    let prof = crate::profiling::profiling_enabled();
    let mut tally = crate::profiling::RunTally::default();
    let dense_edges: u64 =
        if prof { t.frontier_work(&[]).map(|w| w.total_edges as u64).unwrap_or(0) } else { 0 };
    let mut next = vec![0.0f64; n];
    while residual >= stop_eps && stats.iterations < cfg.max_iters {
        stats.iterations += 1;
        if sparse && policy == FrontierPolicy::Auto {
            // Per-iteration direction decision (one-way: sparse → dense).
            let keep = match t.frontier_work(&active) {
                Some(w) => {
                    w.prefers_sparse()
                        && (cumulative_work as f64)
                            < SPARSE_CUMULATIVE_BUDGET * w.total_edges as f64
                }
                None => false,
            };
            if !keep {
                sparse = false;
                tally.auto_dense_switches = 1;
            }
        }
        if sparse {
            tally.sparse_iterations += 1;
            let scratch = scratch.as_mut().expect("sparse mode allocates its scratch");
            // `next` still holds the interim vector from two steps ago:
            // zero its stale support so the kernel's untouched entries
            // are exact zeros.
            for &v in &stale {
                next[v as usize] = 0.0;
            }
            let step = t.propagate_frontier(1.0 - cfg.c, &x, &mut next, &active, scratch);
            cumulative_work += step.edge_work;
            tally.sparse_edge_work += step.edge_work as u64;
            residual = step.residual;
            std::mem::swap(&mut x, &mut next);
            std::mem::swap(&mut active, &mut stale);
            std::mem::swap(&mut active, scratch.next_active_mut());
            if step.went_dense {
                tally.gather_bails += 1;
                if policy == FrontierPolicy::Auto {
                    sparse = false;
                }
            }
            if sparse {
                // Support-only fold: `x` is zero off `active`, and
                // adding an exact `0.0` is the identity.
                for &v in &active {
                    scores[v as usize] += x[v as usize];
                }
            } else {
                for (s, &v) in scores.iter_mut().zip(&x) {
                    *s += v;
                }
            }
        } else {
            tally.dense_iterations += 1;
            tally.dense_edge_work += dense_edges;
            residual = t.propagate_into_norm(1.0 - cfg.c, &x, &mut next);
            std::mem::swap(&mut x, &mut next);
            for (s, &v) in scores.iter_mut().zip(&x) {
                *s += v;
            }
        }
    }
    if prof {
        tally.iterations = stats.iterations as u64;
        crate::profiling::record_offset_run(tally);
    }
    stats
}

/// A maintained working set of RWR score vectors over a
/// [`DynamicTransition`]: warm seeds from scratch once, then
/// [`ScoreCache::refresh`] folds each update batch in via offset
/// propagation instead of recomputing.
///
/// The cached vectors live interleaved in one
/// [`crate::batch::ScoreBlock`] (lane `j` = seed `j`), so a refresh is a
/// handful of fused block passes — one merged-adjacency traversal per
/// iteration serves the whole working set, the same fusion the
/// `QueryEngine` uses for batched plans — and the per-iteration fold is
/// a single contiguous sweep.
///
/// Protocol: every [`DynamicTransition::apply`] must be followed by one
/// `refresh` with the returned [`UpdateDelta`] before the next `apply` —
/// the delta's old columns are relative to the cache's current scores.
pub struct ScoreCache {
    cfg: CpiConfig,
    mode: MaintenanceMode,
    seeds: Vec<NodeId>,
    block: crate::batch::ScoreBlock,
}

impl std::fmt::Debug for ScoreCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScoreCache")
            .field("seeds", &self.seeds.len())
            .field("mode", &self.mode)
            .finish_non_exhaustive()
    }
}

impl ScoreCache {
    /// Empty cache with the given CPI config and maintenance mode.
    pub fn new(cfg: CpiConfig, mode: MaintenanceMode) -> Self {
        cfg.validate();
        Self { cfg, mode, seeds: Vec::new(), block: crate::batch::ScoreBlock::zeros(0, 0) }
    }

    /// Computes (from scratch, one batched CPI run) and caches scores for
    /// every seed not already cached.
    pub fn warm<P: Propagator + ?Sized>(&mut self, t: &P, seeds: &[NodeId]) {
        let mut fresh: Vec<NodeId> = Vec::new();
        for &s in seeds {
            if !self.seeds.contains(&s) && !fresh.contains(&s) {
                fresh.push(s);
            }
        }
        if fresh.is_empty() {
            return;
        }
        let new_lanes = cpi_batch(t, &fresh, &self.cfg, 0, None);
        let total = self.seeds.len() + fresh.len();
        let mut merged = crate::batch::ScoreBlock::zeros(t.n(), total);
        let mut tmp = vec![0.0f64; t.n()];
        for j in 0..self.seeds.len() {
            self.block.copy_lane_into(j, &mut tmp);
            merged.set_lane(j, &tmp);
        }
        for k in 0..fresh.len() {
            new_lanes.copy_lane_into(k, &mut tmp);
            merged.set_lane(self.seeds.len() + k, &tmp);
        }
        self.block = merged;
        self.seeds.extend(fresh);
    }

    /// True if `seed` is cached (no lane unpacking).
    pub fn contains(&self, seed: NodeId) -> bool {
        self.seeds.contains(&seed)
    }

    /// Cached scores for `seed`, if warmed (unpacked from the lane).
    pub fn scores(&self, seed: NodeId) -> Option<Vec<f64>> {
        self.seeds.iter().position(|&s| s == seed).map(|j| self.block.lane(j))
    }

    /// The cached seeds, in insertion order.
    pub fn seeds(&self) -> Vec<NodeId> {
        self.seeds.clone()
    }

    /// Number of cached score vectors.
    pub fn len(&self) -> usize {
        self.seeds.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.seeds.is_empty()
    }

    /// The maintenance mode refreshes run with.
    pub fn mode(&self) -> MaintenanceMode {
        self.mode
    }

    /// Folds one update batch into every cached vector by offset
    /// propagation (see the module docs). Lanes stop together once the
    /// worst per-lane residual is converged (extra iterations only
    /// tighten the rest). Returns merged accounting (iterations, summed
    /// masses across lanes).
    pub fn refresh(&mut self, t: &DynamicTransition, delta: &UpdateDelta) -> RefreshStats {
        use crate::batch::ScoreBlock;
        let n = t.n();
        let lanes = self.seeds.len();
        let mut stats = RefreshStats::default();
        if lanes == 0 {
            return stats;
        }
        assert_eq!(self.block.n(), n, "cache was warmed on a different graph");
        let stop_eps = match self.mode {
            MaintenanceMode::Exact => self.cfg.eps,
            MaintenanceMode::Approximate { tolerance } => {
                assert!(tolerance > 0.0, "tolerance must be positive");
                tolerance.max(self.cfg.eps)
            }
        };

        // Offset seed per lane (from the pre-update cached scores).
        let mut x = ScoreBlock::zeros(n, lanes);
        let mut old = vec![0.0f64; n];
        for j in 0..lanes {
            self.block.copy_lane_into(j, &mut old);
            let mut b = t.offset_seed(delta, self.cfg.c, &old);
            stats.offset_mass += b.iter().map(|v| v.abs()).sum::<f64>();
            if let MaintenanceMode::Approximate { tolerance } = self.mode {
                let cut = tolerance / n.max(1) as f64;
                for v in b.iter_mut() {
                    if v.abs() < cut {
                        stats.dropped_mass += v.abs();
                        *v = 0.0;
                    }
                }
            }
            x.set_lane(j, &b);
        }

        let mut residual = fold_block(&mut self.block, &x);
        if residual == 0.0 {
            return stats;
        }
        let mut next = ScoreBlock::zeros(n, lanes);
        while residual >= stop_eps && stats.iterations < self.cfg.max_iters {
            stats.iterations += 1;
            t.propagate_block_into(1.0 - self.cfg.c, &x, &mut next);
            std::mem::swap(&mut x, &mut next);
            residual = fold_block(&mut self.block, &x);
        }
        stats
    }
}

/// `acc += x` over interleaved blocks in one contiguous sweep, returning
/// the worst per-lane L1 norm of `x` (the refresh stopping residual).
fn fold_block(acc: &mut crate::batch::ScoreBlock, x: &crate::batch::ScoreBlock) -> f64 {
    let lanes = x.lanes().max(1);
    let mut res = vec![0.0f64; lanes];
    for (arow, xrow) in acc.data_mut().chunks_exact_mut(lanes).zip(x.data().chunks_exact(lanes)) {
        for ((a, &v), r) in arow.iter_mut().zip(xrow).zip(res.iter_mut()) {
            *a += v;
            *r += v.abs();
        }
    }
    res.into_iter().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cpi, exact_rwr, SeedSet, Transition};
    use tpa_graph::gen::{lfr_lite, LfrConfig};
    use tpa_graph::{CsrGraph, DanglingPolicy, GraphBuilder};
    use EdgeUpdate::{Delete, Insert};

    fn test_graph() -> CsrGraph {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        lfr_lite(LfrConfig { n: 200, m: 1600, ..Default::default() }, &mut rng).graph
    }

    fn l1(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
    }

    /// Rebuilds the merged view from scratch, Keep policy (overlay
    /// semantics), and returns exact scores on it.
    fn rebuild_scores(g: &DynamicGraph, seed: NodeId, cfg: &CpiConfig) -> Vec<f64> {
        let mut b = GraphBuilder::with_capacity(g.n(), g.m()).dangling_policy(DanglingPolicy::Keep);
        for u in 0..g.n() as NodeId {
            for v in g.out_neighbors(u) {
                b.add_edge(u, v);
            }
        }
        let rebuilt = b.build();
        cpi(&Transition::new(&rebuilt), &SeedSet::single(seed), cfg, 0, None).scores
    }

    #[test]
    fn clean_overlay_matches_csr_transition_bitwise() {
        let g = test_graph();
        let dyn_t = DynamicTransition::new(DynamicGraph::new(g.clone()));
        let cfg = CpiConfig::default();
        let a = cpi(&Transition::new(&g), &SeedSet::single(7), &cfg, 0, None).scores;
        let b = cpi(&dyn_t, &SeedSet::single(7), &cfg, 0, None).scores;
        assert_eq!(a, b);
    }

    #[test]
    fn dirty_overlay_matches_rebuild_bitwise() {
        let g = test_graph();
        let mut dyn_t = DynamicTransition::new(DynamicGraph::new(g).with_compact_threshold(None));
        dyn_t.apply(&[Insert(0, 50), Insert(7, 120), Delete(7, 120), Insert(3, 3), Delete(0, 1)]);
        assert!(dyn_t.graph().is_dirty());
        let cfg = CpiConfig::default();
        let overlay = cpi(&dyn_t, &SeedSet::single(7), &cfg, 0, None).scores;
        assert_eq!(overlay, rebuild_scores(dyn_t.graph(), 7, &cfg));
    }

    #[test]
    fn parallel_dynamic_matches_sequential_bitwise() {
        let g = test_graph();
        let mut seq = DynamicTransition::new(DynamicGraph::new(g.clone()));
        seq.apply(&[Insert(0, 50), Delete(0, 1), Insert(7, 120)]);
        let x: Vec<f64> = (0..g.n()).map(|i| (i % 11) as f64 / 11.0).collect();
        let mut y_seq = vec![0.0; g.n()];
        seq.propagate_into(0.85, &x, &mut y_seq);
        let mut xb = crate::batch::ScoreBlock::zeros(g.n(), 3);
        for (i, e) in xb.data_mut().iter_mut().enumerate() {
            *e = ((i * 7) % 13) as f64 / 13.0;
        }
        let mut yb_seq = crate::batch::ScoreBlock::zeros(g.n(), 3);
        seq.propagate_block_into(0.85, &xb, &mut yb_seq);
        for threads in [2usize, 3, 8] {
            let mut par =
                DynamicTransition::new(DynamicGraph::new(g.clone())).with_threads(threads);
            par.apply(&[Insert(0, 50), Delete(0, 1), Insert(7, 120)]);
            assert_eq!(par.threads(), threads);
            let mut y_par = vec![0.0; g.n()];
            par.propagate_into(0.85, &x, &mut y_par);
            assert_eq!(y_seq, y_par, "threads = {threads}");
            let mut yb_par = crate::batch::ScoreBlock::zeros(g.n(), 3);
            par.propagate_block_into(0.85, &xb, &mut yb_par);
            assert_eq!(yb_seq.data(), yb_par.data(), "block, threads = {threads}");
        }
    }

    #[test]
    fn parallel_dynamic_survives_compaction() {
        // Compaction swaps the base snapshot out from under the worker
        // ranges; they must re-balance and keep covering every node.
        let g = test_graph();
        let mut t = DynamicTransition::new(DynamicGraph::new(g).with_compact_threshold(Some(1e-9)))
            .with_threads(4);
        let delta = t.apply(&[Insert(0, 50), Insert(50, 0)]);
        assert!(delta.stats.compacted);
        let x = vec![1.0 / 200.0; 200];
        let mut y = vec![0.0; 200];
        t.propagate_into(1.0, &x, &mut y);
        let reference = cpi(
            &Transition::new(&t.graph().snapshot()),
            &SeedSet::single(3),
            &CpiConfig::default(),
            0,
            None,
        )
        .scores;
        let through_overlay = cpi(&t, &SeedSet::single(3), &CpiConfig::default(), 0, None).scores;
        assert_eq!(reference, through_overlay);
    }

    #[test]
    fn strip_policy_is_bitwise_invisible_on_the_overlay() {
        let g = test_graph();
        let mut flat = DynamicTransition::new(DynamicGraph::new(g.clone()))
            .with_tile_policy(crate::TilePolicy::Flat);
        let mut strip = DynamicTransition::new(DynamicGraph::new(g.clone()))
            .with_tile_policy(crate::TilePolicy::Strip(17));
        let ups = [Insert(3, 90), Delete(3, 4), Insert(90, 3)];
        flat.apply(&ups);
        strip.apply(&ups);
        let x: Vec<f64> = (0..g.n()).map(|i| (i % 5) as f64 / 5.0).collect();
        let mut y_flat = vec![0.0; g.n()];
        let mut y_strip = vec![0.0; g.n()];
        flat.propagate_into(0.85, &x, &mut y_flat);
        strip.propagate_into(0.85, &x, &mut y_strip);
        assert_eq!(y_flat, y_strip);
    }

    #[test]
    fn apply_updates_inv_out_degrees() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let mut t = DynamicTransition::new(DynamicGraph::new(g).with_compact_threshold(None));
        let delta = t.apply(&[Insert(0, 2), Delete(1, 2)]);
        assert_eq!(t.inv_out_deg[0], 0.5); // degree 1 → 2
        assert_eq!(t.inv_out_deg[1], 0.0); // degree 1 → 0 (dangling)
        assert_eq!(delta.stats.inserted, 1);
        assert_eq!(delta.stats.deleted, 1);
        // Column 0: was {1: 1.0}, now {1: 0.5, 2: 0.5} ⇒ ‖Δ‖₁ = 1.0.
        // Column 1: was {2: 1.0}, now {} ⇒ ‖Δ‖₁ = 1.0.
        assert!((delta.column_delta_mass - 2.0).abs() < 1e-12);
    }

    #[test]
    fn exact_refresh_tracks_rebuild() {
        let g = test_graph();
        let cfg = CpiConfig::default();
        let mut t = DynamicTransition::new(DynamicGraph::new(g).with_compact_threshold(None));
        let mut cache = ScoreCache::new(cfg, MaintenanceMode::Exact);
        cache.warm(&t, &[3, 77]);

        let updates = [Insert(3, 90), Insert(90, 3), Delete(3, 4), Insert(10, 11), Delete(77, 78)];
        let applicable: Vec<EdgeUpdate> = updates
            .iter()
            .copied()
            .filter(|u| match *u {
                Insert(a, b) => !t.graph().has_edge(a, b),
                Delete(a, b) => t.graph().has_edge(a, b),
            })
            .collect();
        let delta = t.apply(&applicable);
        let stats = cache.refresh(&t, &delta);
        assert!(stats.iterations > 0);
        assert_eq!(stats.dropped_mass, 0.0);

        for seed in [3u32, 77] {
            let fresh = rebuild_scores(t.graph(), seed, &cfg);
            let err = l1(&cache.scores(seed).unwrap(), &fresh);
            assert!(err < 1e-7, "seed {seed}: refreshed scores drifted {err}");
        }
    }

    #[test]
    fn approximate_refresh_within_tolerance_bound() {
        let g = test_graph();
        let cfg = CpiConfig::default();
        let tolerance = 1e-4;
        let mut t = DynamicTransition::new(DynamicGraph::new(g).with_compact_threshold(None));
        let mut exact = ScoreCache::new(cfg, MaintenanceMode::Exact);
        let mut approx = ScoreCache::new(cfg, MaintenanceMode::Approximate { tolerance });
        exact.warm(&t, &[11]);
        approx.warm(&t, &[11]);

        let delta = t.apply(&[Insert(11, 150), Insert(150, 11), Delete(11, 12)]);
        exact.refresh(&t, &delta.clone());
        let stats = approx.refresh(&t, &delta);

        let fresh = rebuild_scores(t.graph(), 11, &cfg);
        let err = l1(&approx.scores(11).unwrap(), &fresh);
        let bound = 2.0 * tolerance / cfg.c;
        assert!(err <= bound, "approximate error {err} above bound {bound}");
        // The approximate path must do no more work than the exact one.
        let exact_fresh_err = l1(&exact.scores(11).unwrap(), &fresh);
        assert!(exact_fresh_err <= err || err < 1e-9);
        assert!(stats.offset_mass > 0.0);
    }

    #[test]
    fn standalone_propagate_offset_maintains_a_single_vector() {
        // The scalar entry point (no ScoreCache) must track a rebuild
        // just like the blocked refresh path does.
        let g = test_graph();
        let cfg = CpiConfig::default();
        let mut t = DynamicTransition::new(DynamicGraph::new(g).with_compact_threshold(None));
        let mut manual = cpi(&t, &SeedSet::single(3), &cfg, 0, None).scores;

        let candidates = [Insert(3, 99), Insert(99, 3), Delete(3, 4)];
        let applicable: Vec<EdgeUpdate> = candidates
            .iter()
            .copied()
            .filter(|u| match *u {
                Insert(a, b) => !t.graph().has_edge(a, b),
                Delete(a, b) => t.graph().has_edge(a, b),
            })
            .collect();
        assert!(!applicable.is_empty());
        let delta = t.apply(&applicable);
        let b = t.offset_seed(&delta, cfg.c, &manual);
        let stats = propagate_offset(&t, b, &cfg, MaintenanceMode::Exact, &mut manual);
        assert!(stats.iterations > 0);
        assert_eq!(stats.dropped_mass, 0.0);

        let fresh = rebuild_scores(t.graph(), 3, &cfg);
        assert!(l1(&manual, &fresh) < 1e-7, "standalone offset propagation drifted");
    }

    #[test]
    fn offset_policy_is_bitwise_invisible() {
        // Dense, Sparse, and Auto must produce bit-identical refreshed
        // scores and make the same stopping decisions: the offset seed is
        // sparse, so Auto should route the early Neumann iterations
        // through the frontier kernel. Multi-block graph so the
        // block-grouped support folds cross NORM_BLOCK boundaries.
        let g = {
            use rand::{rngs::StdRng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(61);
            let cfg =
                LfrConfig { n: 2 * tiling::NORM_BLOCK + 511, m: 60_000, ..Default::default() };
            lfr_lite(cfg, &mut rng).graph
        };
        let cfg = CpiConfig::default();
        let mut t = DynamicTransition::new(DynamicGraph::new(g).with_compact_threshold(None));
        let base = cpi(&t, &SeedSet::single(17), &cfg, 0, None).scores;
        let delta = t.apply(&[Insert(17, 4100), Insert(4100, 17), Delete(17, 4099)]);
        let b = t.offset_seed(&delta, cfg.c, &base);

        for mode in [MaintenanceMode::Exact, MaintenanceMode::Approximate { tolerance: 1e-4 }] {
            let run = |policy: FrontierPolicy| {
                let mut scores = base.clone();
                let stats = propagate_offset_policy(&t, b.clone(), &cfg, mode, policy, &mut scores);
                (scores, stats)
            };
            let (dense, dense_stats) = run(FrontierPolicy::Dense);
            for policy in [FrontierPolicy::Sparse, FrontierPolicy::Auto] {
                let (scores, stats) = run(policy);
                assert_eq!(stats.iterations, dense_stats.iterations, "{policy:?} ({mode:?})");
                assert_eq!(stats.dropped_mass.to_bits(), dense_stats.dropped_mass.to_bits());
                for (v, (a, d)) in scores.iter().zip(&dense).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        d.to_bits(),
                        "{policy:?} ({mode:?}) diverged from Dense at node {v}"
                    );
                }
            }
            // The legacy entry point is the Dense policy.
            let mut legacy = base.clone();
            propagate_offset(&t, b.clone(), &cfg, mode, &mut legacy);
            assert!(legacy.iter().zip(&dense).all(|(a, d)| a.to_bits() == d.to_bits()));
        }
    }

    #[test]
    fn noop_batch_produces_zero_offset() {
        let g = test_graph();
        let mut t = DynamicTransition::new(DynamicGraph::new(g));
        let old = exact_rwr_on(&t, 5);
        // Insert an edge that already exists: structural no-op.
        let existing = t.graph().out_neighbors(5).next().unwrap();
        let delta = t.apply(&[Insert(5, existing)]);
        assert_eq!(delta.stats.noops, 1);
        assert_eq!(delta.column_delta_mass, 0.0);
        let b = t.offset_seed(&delta, 0.15, &old);
        assert!(b.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn refresh_survives_compaction() {
        // Compaction inside apply must not disturb the delta/refresh path.
        let g = test_graph();
        let cfg = CpiConfig::default();
        let mut t = DynamicTransition::new(DynamicGraph::new(g).with_compact_threshold(Some(1e-9)));
        let mut cache = ScoreCache::new(cfg, MaintenanceMode::Exact);
        cache.warm(&t, &[9]);
        let delta = t.apply(&[Insert(9, 100), Insert(100, 9)]);
        assert!(delta.stats.compacted);
        assert!(!t.graph().is_dirty());
        cache.refresh(&t, &delta);
        let fresh = rebuild_scores(t.graph(), 9, &cfg);
        assert!(l1(&cache.scores(9).unwrap(), &fresh) < 1e-7);
    }

    fn exact_rwr_on(t: &DynamicTransition, seed: NodeId) -> Vec<f64> {
        cpi(t, &SeedSet::single(seed), &CpiConfig::default(), 0, None).scores
    }

    #[test]
    fn column_delta_merge_cases() {
        // old {1,2} @ 0.5 each → new {2,3} @ 0.5: removed 1 (0.5),
        // kept 2 (|0.5−0.5|=0), added 3 (0.5) ⇒ 1.0.
        let mass = column_delta(&[1, 2], 0.5, [2u32, 3].into_iter(), 0.5);
        assert!((mass - 1.0).abs() < 1e-15);
        // Degree change only: old {1,2} @ 0.5 → new {1,2,3} @ 1/3:
        // 2·|1/3−1/2| + 1/3 = 2/3.
        let mass = column_delta(&[1, 2], 0.5, [1u32, 2, 3].into_iter(), 1.0 / 3.0);
        assert!((mass - 2.0 / 3.0).abs() < 1e-12);
        // Emptied column.
        let mass = column_delta(&[4, 9], 0.5, std::iter::empty(), 0.0);
        assert!((mass - 1.0).abs() < 1e-15);
    }

    #[test]
    fn exact_refresh_matches_exact_rwr_after_many_batches() {
        let g = test_graph();
        let cfg = CpiConfig::default();
        let mut t = DynamicTransition::new(DynamicGraph::new(g));
        let mut cache = ScoreCache::new(cfg, MaintenanceMode::Exact);
        cache.warm(&t, &[0]);
        for round in 0u32..5 {
            let u = (round * 17) % 200;
            let v = (round * 53 + 7) % 200;
            let ups = [Insert(u, v), Insert(v, u)];
            let applicable: Vec<EdgeUpdate> = ups
                .iter()
                .copied()
                .filter(|up| match *up {
                    Insert(a, b) => !t.graph().has_edge(a, b),
                    Delete(a, b) => t.graph().has_edge(a, b),
                })
                .collect();
            let delta = t.apply(&applicable);
            cache.refresh(&t, &delta);
        }
        let snap = t.graph().snapshot();
        let fresh = exact_rwr(&snap, 0, &cfg);
        assert!(l1(&cache.scores(0).unwrap(), &fresh) < 1e-6);
    }
}
