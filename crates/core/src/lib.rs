//! # tpa-core — TPA: Two-Phase Approximation for RWR
//!
//! Reproduction of *"TPA: Fast, Scalable, and Accurate Method for
//! Approximate Random Walk with Restart on Billion Scale Graphs"*
//! (Yoon, Jung & Kang, ICDE 2018).
//!
//! The crate implements the paper's computational model and contribution:
//!
//! * [`Transition`] — the row-normalized transition operator `Ãᵀ`.
//! * [`cpi`] / [`cpi_trace`] — **Algorithm 1**, Cumulative Power Iteration,
//!   with the `siter`/`titer` window TPA splits on.
//! * [`pagerank`], [`exact_rwr`], [`personalized_pagerank`] — CPI
//!   instances differing only in the seed vector.
//! * [`TpaIndex::preprocess`] — **Algorithm 2**, the stranger
//!   approximation (seed-independent PageRank tail, precomputed once).
//! * [`TpaIndex::query`] — **Algorithm 3**, the online phase: exact family
//!   part + rescaled neighbor estimate + precomputed stranger part.
//! * [`bounds`] — Lemmas 1–3 and Theorem 2 in closed form.
//! * [`decompose`] — exact part-wise decomposition used by the accuracy
//!   experiments (Table III, Fig. 9).
//! * [`RwrService`] / [`ServiceBuilder`] — the concurrent serving
//!   layer: an immutable [`Snapshot`] (backend + index + configuration)
//!   published behind an epoch-swapped `Arc`, any number of `&self`
//!   reader threads racing a single writer that applies
//!   [`tpa_graph::EdgeUpdate`] batches; typed [`QueryRequest`] /
//!   [`QueryResponse`] and a real [`TpaError`].
//! * [`QueryEngine`] — the single-owner shim over a [`Snapshot`]:
//!   executes single / batched / top-k requests over any
//!   [`Propagator`] backend (sequential, [`ParallelTransition`],
//!   out-of-core [`offcore::DiskGraph`], dynamic delta-overlay
//!   [`DynamicTransition`]), with results bit-identical across backends
//!   and bit-identical to the concurrent service.
//! * [`dynamic`] — the streaming workload: [`DynamicTransition`] over a
//!   mutable overlay graph, OSP-style incremental maintenance of cached
//!   scores ([`ScoreCache`]), and index staleness tracking
//!   ([`IndexStalenessPolicy`]).
//! * [`metrics`] / [`profiling`] — service-wide observability:
//!   [`ServiceMetrics`] records request latency, cache hits, errors,
//!   and epoch/compaction lifecycle events into a shared
//!   `tpa_obs::MetricsRegistry` (attached via
//!   [`ServiceBuilder::metrics`]); [`kernel_profile`] exposes cheap
//!   kernel-level counters (CPI iterations, frontier decisions,
//!   sparse/dense work) behind a near-zero-cost disabled path.
//! * [`frontier`] — direction-optimizing sparse propagation:
//!   [`FrontierPolicy`] schedules each CPI iteration onto a masked
//!   sparse-frontier kernel or the dense kernels (Beamer-style
//!   switching), bitwise identically, for single-seed query latency.
//! * **Bounded exact top-k** — K-dash-style early termination riding
//!   the same sweep: per-node lower/upper score bounds prune contenders
//!   and stop the iteration once the top-k set and order are provably
//!   stable, with the proof reported as a [`TopKGuarantee`] on the
//!   response ([`QueryRequest::with_exact_bounds`]).
//!
//! ## Quick start
//!
//! ```
//! use tpa_core::{TpaIndex, TpaParams, Transition};
//! use tpa_graph::gen::star_graph;
//!
//! let graph = star_graph(100);
//! // One-time preprocessing (stranger approximation).
//! let index = TpaIndex::preprocess(&graph, TpaParams::new(5, 10));
//! // Fast online query for any seed.
//! let transition = Transition::new(&graph);
//! let scores = index.query(&transition, 42);
//! assert_eq!(scores.len(), 100);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod admission;
pub mod batch;
pub mod bounds;
mod cpi;
mod decompose;
pub mod dynamic;
pub mod engine;
mod error;
pub mod frontier;
pub mod metrics;
pub mod offcore;
mod pagerank;
mod parallel;
pub mod params;
mod patch;
pub mod profiling;
mod seeds;
pub mod service;
pub mod tiling;
mod topk;
mod tpa;
mod transition;
mod weighted;

pub use admission::{
    AdmissionConfig, CancelToken, DegradationLevel, FaultPlan, ShedConfig, ShedPolicy,
    DEGRADATION_LEVELS,
};
pub use cpi::{cpi, cpi_policy, cpi_trace, cpi_trace_policy, CpiConfig, CpiResult};
pub use decompose::{decompose, Decomposition};
pub use dynamic::{
    propagate_offset, propagate_offset_policy, DynamicTransition, MaintenanceMode, RefreshStats,
    ScoreCache, SourceDelta, UpdateDelta,
};
pub use engine::{
    top_k_scored, EngineBackend, IndexStalenessPolicy, QueryEngine, QueryPlan, UpdateReport,
};
pub use error::TpaError;
pub use frontier::{FrontierPolicy, FrontierScratch, FrontierStep, FrontierWork};
pub use metrics::{
    AdmissionMetrics, EpochEvent, LatencyStats, MetricsSnapshot, RequestMetrics, ServiceMetrics,
    ValueStats, WriterMetrics,
};
pub use pagerank::{exact_rwr, pagerank, pagerank_window, personalized_pagerank};
pub use parallel::ParallelTransition;
pub use patch::PatchedTransition;
pub use profiling::{kernel_profile, reset_profiling, set_profiling_enabled, KernelProfile};
pub use seeds::SeedSet;
pub use service::{
    ExecMode, QueryRequest, QueryResponse, QueryResult, RwrService, ServiceBuilder, Snapshot,
    SnapshotCache, UpdateOutcome,
};
pub use tiling::TilePolicy;
pub use topk::TopKGuarantee;
pub use tpa::{PreprocessStats, TpaIndex, TpaParams, TpaParts};
pub use transition::{Propagator, Transition};
pub use weighted::WeightedTransition;
