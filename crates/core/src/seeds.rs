//! Seed vectors: the only difference between RWR and PageRank (paper §II-B).

use tpa_graph::NodeId;

/// Where the random walk restarts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SeedSet {
    /// Restart at one node — classic RWR with `q = e_s`.
    Single(NodeId),
    /// Restart uniformly over a node set — personalized PageRank with
    /// `q_s = 1/|S|`.
    Set(Vec<NodeId>),
    /// Restart uniformly over all nodes — global PageRank with `q = 1/n·1`.
    Uniform,
}

impl SeedSet {
    /// Single-seed constructor.
    pub fn single(s: NodeId) -> Self {
        SeedSet::Single(s)
    }

    /// Multi-seed constructor. Panics on an empty set.
    pub fn set(seeds: Vec<NodeId>) -> Self {
        assert!(!seeds.is_empty(), "seed set must not be empty");
        SeedSet::Set(seeds)
    }

    /// The ascending, deduplicated support of the seed vector — the
    /// initial active frontier for sparse propagation
    /// (see [`crate::FrontierPolicy`]). `None` for [`SeedSet::Uniform`],
    /// whose support is all of `0..n` (sparse propagation cannot help).
    pub fn support(&self) -> Option<Vec<NodeId>> {
        match self {
            SeedSet::Single(s) => Some(vec![*s]),
            SeedSet::Set(seeds) => {
                let mut v = seeds.clone();
                v.sort_unstable();
                v.dedup();
                Some(v)
            }
            SeedSet::Uniform => None,
        }
    }

    /// Writes `x ← c·q` into a zeroed-or-not buffer of length `n`.
    pub fn fill_seed_vector(&self, c: f64, x: &mut [f64]) {
        let n = x.len();
        x.fill(0.0);
        match self {
            SeedSet::Single(s) => {
                assert!((*s as usize) < n, "seed {s} out of range for n={n}");
                x[*s as usize] = c;
            }
            SeedSet::Set(seeds) => {
                let w = c / seeds.len() as f64;
                for &s in seeds {
                    assert!((s as usize) < n, "seed {s} out of range for n={n}");
                    x[s as usize] += w;
                }
            }
            SeedSet::Uniform => {
                let w = c / n as f64;
                x.fill(w);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_seed_vector() {
        let mut x = vec![9.0; 4];
        SeedSet::single(2).fill_seed_vector(0.15, &mut x);
        assert_eq!(x, vec![0.0, 0.0, 0.15, 0.0]);
    }

    #[test]
    fn set_seed_splits_mass() {
        let mut x = vec![0.0; 4];
        SeedSet::set(vec![0, 3]).fill_seed_vector(0.2, &mut x);
        assert_eq!(x, vec![0.1, 0.0, 0.0, 0.1]);
    }

    #[test]
    fn duplicate_seeds_accumulate() {
        let mut x = vec![0.0; 2];
        SeedSet::set(vec![1, 1]).fill_seed_vector(0.2, &mut x);
        assert_eq!(x, vec![0.0, 0.2]);
    }

    #[test]
    fn uniform_seed() {
        let mut x = vec![0.0; 5];
        SeedSet::Uniform.fill_seed_vector(0.15, &mut x);
        for &v in &x {
            assert!((v - 0.03).abs() < 1e-15);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_seed() {
        let mut x = vec![0.0; 2];
        SeedSet::single(5).fill_seed_vector(0.15, &mut x);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn rejects_empty_seed_set() {
        SeedSet::set(vec![]);
    }
}
