//! PageRank and exact RWR as CPI instances (paper §II).

use crate::{cpi, CpiConfig, CpiResult, SeedSet, Transition};
use tpa_graph::{CsrGraph, NodeId};

/// Global PageRank via CPI with the uniform seed (`q = 1/n·1`).
pub fn pagerank(graph: &CsrGraph, cfg: &CpiConfig) -> Vec<f64> {
    let t = Transition::new(graph);
    cpi(&t, &SeedSet::Uniform, cfg, 0, None).scores
}

/// Exact RWR from a single seed: CPI run to convergence over the full
/// iteration window. This is the ground truth every approximate method is
/// scored against (the paper uses BePI; Theorem 1 shows both solve the
/// same steady-state equation).
pub fn exact_rwr(graph: &CsrGraph, seed: NodeId, cfg: &CpiConfig) -> Vec<f64> {
    let t = Transition::new(graph);
    cpi(&t, &SeedSet::single(seed), cfg, 0, None).scores
}

/// Exact personalized PageRank for a seed set.
pub fn personalized_pagerank(graph: &CsrGraph, seeds: Vec<NodeId>, cfg: &CpiConfig) -> Vec<f64> {
    let t = Transition::new(graph);
    cpi(&t, &SeedSet::set(seeds), cfg, 0, None).scores
}

/// PageRank restricted to an iteration window — the preprocessing kernel
/// behind TPA's stranger approximation (`p_stranger` = iterations `T..∞`).
pub fn pagerank_window(
    graph: &CsrGraph,
    cfg: &CpiConfig,
    start: usize,
    end: Option<usize>,
) -> CpiResult {
    let t = Transition::new(graph);
    cpi(&t, &SeedSet::Uniform, cfg, start, end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpa_graph::gen::{cycle_graph, star_graph};

    #[test]
    fn pagerank_uniform_on_cycle() {
        // Perfect symmetry ⇒ uniform PageRank.
        let g = cycle_graph(8);
        let p = pagerank(&g, &CpiConfig::default());
        for &v in &p {
            assert!((v - 1.0 / 8.0).abs() < 1e-8);
        }
    }

    #[test]
    fn pagerank_hub_dominates_star() {
        let g = star_graph(10);
        let p = pagerank(&g, &CpiConfig::default());
        let hub = p[0];
        for &leaf in &p[1..] {
            assert!(hub > 3.0 * leaf, "hub {hub} leaf {leaf}");
        }
    }

    #[test]
    fn pagerank_sums_to_one() {
        let g = star_graph(12);
        let p = pagerank(&g, &CpiConfig::default());
        let total: f64 = p.iter().sum();
        assert!((total - 1.0).abs() < 1e-7);
    }

    #[test]
    fn exact_rwr_concentrates_near_seed() {
        // Seed at leaf 5: every walk passes through the hub, so the hub
        // collects the most mass, but the seed leaf beats all other leaves
        // thanks to the restart.
        let g = star_graph(10);
        let r = exact_rwr(&g, 5, &CpiConfig::default());
        assert!(r[0] > r[5], "hub should dominate");
        for leaf in 1..10u32 {
            if leaf != 5 {
                assert!(r[5] > r[leaf as usize], "seed leaf vs leaf {leaf}");
            }
        }
        let total: f64 = r.iter().sum();
        assert!((total - 1.0).abs() < 1e-7);
    }

    #[test]
    fn personalized_pagerank_interpolates_seeds() {
        let g = cycle_graph(10);
        let ppr = personalized_pagerank(&g, vec![0, 5], &CpiConfig::default());
        let single0 = exact_rwr(&g, 0, &CpiConfig::default());
        let single5 = exact_rwr(&g, 5, &CpiConfig::default());
        for i in 0..10 {
            let want = 0.5 * (single0[i] + single5[i]);
            assert!((ppr[i] - want).abs() < 1e-9, "node {i}");
        }
    }

    #[test]
    fn window_decomposition_of_pagerank() {
        let g = star_graph(9);
        let cfg = CpiConfig::default();
        let full = pagerank(&g, &cfg);
        let head = pagerank_window(&g, &cfg, 0, Some(9)).scores;
        let tail = pagerank_window(&g, &cfg, 10, None).scores;
        for i in 0..9 {
            assert!((full[i] - head[i] - tail[i]).abs() < 1e-9);
        }
    }
}
