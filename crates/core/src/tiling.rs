//! Cache-blocked ("destination-tiled") gather kernels and the cost model
//! that decides when to use them.
//!
//! The CPI step `y ← coeff·Ãᵀ·x` gathers `x[u]` in in-neighbor order.
//! Once `x` outgrows the private L2 cache, those reads are the bound on
//! throughput: on a power-law graph with arbitrary labels nearly every
//! gather misses. The strip-mined kernels here sweep the CSR in
//! **source strips** — column blocks of `Ãᵀ` sized so one strip of `x`
//! stays L2-resident — and visit every destination row once per strip,
//! consuming only the row's neighbors that fall inside the strip (a
//! per-row cursor makes that resumption `O(1)` amortized). Each strip of
//! `x` is then reused across *all* destination rows before the next
//! strip is touched.
//!
//! **Bit-identity.** Per destination the additions still happen in
//! ascending in-neighbor order, folded left into one accumulator that
//! persists across strips, with the `coeff` multiply applied once at the
//! end — the exact floating-point chain of the flat kernel. Strip width
//! therefore cannot change results, and every backend stays bitwise
//! equal to every other no matter what each one picks.
//!
//! The cost model ([`resolve_strip`]) strips only when it can pay off:
//! the active slice of `x` (all lanes) must overflow what a last-level
//! cache can plausibly hold and the graph must have enough average
//! degree that each strip's resident entries are actually reused.
//! Everything else takes the flat kernel, whose inner loop is an
//! iterator fold over the row slice (no per-edge bounds check on the
//! row; degree-zero rows short-circuit). Structure alone cannot see the
//! *ordering*, which decides whether rows' neighbors concentrate into
//! few strips (strips shine) or spray across all of them (scheduling
//! overhead bites) — so `Auto` is deliberately conservative, and
//! [`crate::QueryEngine::with_tile_policy`] /
//! [`crate::Transition::with_tile_policy`] exist to force strips for
//! workloads known to be in their regime (score blocks beyond the LLC
//! on a strip-friendly ordering like hub-clustering; the `spmv_kernels`
//! bench measures the matrix).

use crate::batch::ScoreBlock;
use std::ops::Range;
use tpa_graph::{CsrGraph, NodeId};

/// Block size of the canonical residual fold. Every `‖y‖₁` the engine
/// computes — fused into a dense kernel, scanned after a parallel
/// propagation, or folded over a sparse frontier's reachable set — uses
/// the same two-level association: the absolute values of each aligned
/// `NORM_BLOCK`-sized block are folded left in index order into a
/// per-block partial, and the partials are folded left in ascending
/// block order. Worker ranges that end on block boundaries can therefore
/// fold their partials locally and let the caller combine them — the
/// `O(n)` residual scan parallelizes — while staying **bitwise
/// identical** to the sequential backends (and, for `n ≤ NORM_BLOCK`,
/// to a plain index-order scan: `0.0 + partial` is exact).
pub(crate) const NORM_BLOCK: usize = 4096;

/// The canonical residual: two-level blocked fold of `Σ|y|` (see
/// [`NORM_BLOCK`]). Every backend's `propagate_into_norm` and every
/// sparse-path residual must match this chain bit for bit.
pub(crate) fn blocked_norm(y: &[f64]) -> f64 {
    y.chunks(NORM_BLOCK)
        .fold(0.0f64, |acc, chunk| acc + chunk.iter().fold(0.0f64, |a, v| a + v.abs()))
}

/// Fills `parts` with the per-block partials of a block-aligned local
/// slice (`parts[k]` = the `k`-th `NORM_BLOCK` chunk's index-order
/// `Σ|·|` fold). The inner level of the canonical association.
pub(crate) fn norm_parts(slice: &[f64], parts: &mut [f64]) {
    debug_assert_eq!(parts.len(), slice.len().div_ceil(NORM_BLOCK));
    for (part, chunk) in parts.iter_mut().zip(slice.chunks(NORM_BLOCK)) {
        *part = chunk.iter().fold(0.0f64, |a, v| a + v.abs());
    }
}

/// Ascending fold of per-block partials — the outer level of the
/// canonical association.
pub(crate) fn fold_norm_parts(parts: &[f64]) -> f64 {
    parts.iter().fold(0.0f64, |a, &p| a + p)
}

/// True when every interior range boundary is a [`NORM_BLOCK`] multiple
/// — the precondition for composing per-worker residual partials into
/// the canonical fold. [`balance_ranges`] guarantees this whenever the
/// graph has at least one block per worker.
pub(crate) fn ranges_block_aligned(ranges: &[(u32, u32)]) -> bool {
    let interior = ranges.len().saturating_sub(1);
    ranges.iter().take(interior).all(|&(_, end)| (end as usize).is_multiple_of(NORM_BLOCK))
}

/// How a propagation backend blocks its gather loop.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TilePolicy {
    /// Let the cost model pick per call (the default).
    #[default]
    Auto,
    /// Always the flat (un-tiled) kernel.
    Flat,
    /// Always strip-mine with the given `x`-strip width in *entries*
    /// (clamped to ≥ 1). One strip's working set is
    /// `width × lanes × 8` bytes.
    Strip(usize),
}

/// Per-strip footprint the model aims `x` slices at: half of a typical
/// 2 MiB private L2, leaving the other half for the streaming
/// row/cursor/output traffic.
pub const STRIP_TARGET_BYTES: usize = 1 << 20;

/// What the auto model assumes a last-level cache absorbs. Below this
/// the flat gather's working set effectively stays cached and blocking
/// only adds scheduling overhead (measured: tiling a 8 MB score vector
/// on a big-L3 part *lost* 40%); above it the strips are the only thing
/// keeping gathers out of DRAM.
pub const LLC_ASSUME_BYTES: usize = 32 << 20;

/// Auto model only strips graphs with at least this average degree —
/// below it each resident `x` entry is reused too rarely to repay the
/// extra sweep bookkeeping.
const MIN_AVG_DEGREE: usize = 8;

/// Resolves a policy for one propagation call: `None` = flat kernel,
/// `Some(width)` = strip-mined with that `x`-strip width.
///
/// This is the *structural* model (node/edge counts only). The backends
/// route through [`resolve_strip_sampled`], which replaces the blind
/// average-degree gate with a sampled strips-per-row statistic of the
/// actual adjacency — the ordering-aware version.
pub fn resolve_strip(policy: TilePolicy, n: usize, m: usize, lanes: usize) -> Option<usize> {
    match policy {
        TilePolicy::Flat => None,
        TilePolicy::Strip(w) => Some(w.max(1)),
        TilePolicy::Auto => {
            let row_bytes = 8 * lanes.max(1);
            // The score block plausibly stays LLC-resident: blocking can
            // only add cost.
            if n.saturating_mul(row_bytes) <= LLC_ASSUME_BYTES {
                return None;
            }
            if m < MIN_AVG_DEGREE * n {
                return None;
            }
            Some((STRIP_TARGET_BYTES / row_bytes).max(1024))
        }
    }
}

/// Rows probed by the sampled `Auto` statistic (stride-spaced, so the
/// probe sees every region of the id space, hubs and tails alike).
const REUSE_SAMPLE_ROWS: usize = 64;
/// In-neighbors inspected per sampled row — caps the probe cost when a
/// sample lands on a hub with a six-figure in-degree.
const REUSE_ROW_CAP: usize = 1024;
/// Minimum sampled in-neighbors-per-strip-visit for strips to pay:
/// below two consumed entries per visit the scheduler bookkeeping eats
/// the locality win.
const MIN_STRIP_REUSE: f64 = 2.0;

/// Average in-neighbors a destination row consumes per strip visit at
/// the given strip `width`, estimated from [`REUSE_SAMPLE_ROWS`]
/// stride-sampled rows. The statistic the structural model cannot see:
/// a banded ordering (RCM) concentrates each row into one or two strips
/// (high reuse), while arbitrary labels spray a row across all of them
/// (reuse ≈ 1, strips pure overhead). Deterministic — no RNG.
pub(crate) fn sampled_strip_reuse<A: InAdjacency + ?Sized>(adj: &A, n: usize, width: usize) -> f64 {
    let stride = (n / REUSE_SAMPLE_ROWS).max(1);
    let mut edges = 0usize;
    let mut visits = 0usize;
    let mut v = 0usize;
    while v < n {
        let row = adj.in_row(v as NodeId);
        let row = &row[..row.len().min(REUSE_ROW_CAP)];
        if !row.is_empty() {
            edges += row.len();
            // Rows are ascending, so distinct strips = bucket changes + 1.
            let mut last = row[0] as usize / width;
            visits += 1;
            for &u in &row[1..] {
                let s = u as usize / width;
                if s != last {
                    visits += 1;
                    last = s;
                }
            }
        }
        v += stride;
    }
    if visits == 0 {
        0.0
    } else {
        edges as f64 / visits as f64
    }
}

/// Ordering-aware [`resolve_strip`]: the `Auto` arm keeps the LLC gate
/// but decides *strips vs flat* from [`sampled_strip_reuse`] on the live
/// adjacency instead of a structural average-degree guess, so the model
/// picks strips exactly when the node ordering concentrates rows into
/// few strips (closing the ROADMAP "ordering-aware auto-tiling" gap).
pub(crate) fn resolve_strip_sampled<A: InAdjacency + ?Sized>(
    policy: TilePolicy,
    adj: &A,
    n: usize,
    m: usize,
    lanes: usize,
) -> Option<usize> {
    match policy {
        TilePolicy::Flat => None,
        TilePolicy::Strip(w) => Some(w.max(1)),
        TilePolicy::Auto => {
            let row_bytes = 8 * lanes.max(1);
            if n.saturating_mul(row_bytes) <= LLC_ASSUME_BYTES || m == 0 {
                return None;
            }
            let width = (STRIP_TARGET_BYTES / row_bytes).max(1024);
            (sampled_strip_reuse(adj, n, width) >= MIN_STRIP_REUSE).then_some(width)
        }
    }
}

/// Per-backend memo of the sampled `Auto` decisions: the inputs
/// (adjacency, n, m) are fixed for a backend's lifetime — or until a
/// dynamic overlay mutates, which calls [`StripCache::clear`] — so the
/// 64-row probe runs once per lane width instead of once per
/// propagation call. Forced policies bypass the cache entirely.
pub(crate) struct StripCache(std::sync::Mutex<Vec<(usize, Option<usize>)>>);

impl StripCache {
    pub(crate) fn new() -> Self {
        Self(std::sync::Mutex::new(Vec::new()))
    }

    /// [`resolve_strip_sampled`], memoized by lane width.
    pub(crate) fn resolve<A: InAdjacency + ?Sized>(
        &self,
        policy: TilePolicy,
        adj: &A,
        n: usize,
        m: usize,
        lanes: usize,
    ) -> Option<usize> {
        if policy != TilePolicy::Auto {
            return resolve_strip_sampled(policy, adj, n, m, lanes);
        }
        let mut memo = self.0.lock().expect("strip cache lock");
        if let Some(&(_, strip)) = memo.iter().find(|&&(l, _)| l == lanes) {
            return strip;
        }
        let strip = resolve_strip_sampled(policy, adj, n, m, lanes);
        if crate::profiling::profiling_enabled() {
            crate::profiling::record_tile_resolution(strip.is_some());
        }
        memo.push((lanes, strip));
        strip
    }

    /// Drops every memoized decision (the adjacency changed).
    pub(crate) fn clear(&self) {
        self.0.lock().expect("strip cache lock").clear();
    }
}

/// A destination-row source for the gather kernels: node `v`'s
/// in-neighbors as one ascending slice. Implemented by [`CsrGraph`]
/// (plain CSC rows) and by the dynamic backend's merged-row view, so all
/// backends share the same monomorphized kernels.
pub(crate) trait InAdjacency {
    /// In-neighbor row of destination `v`, ascending.
    fn in_row(&self, v: NodeId) -> &[NodeId];
}

impl InAdjacency for CsrGraph {
    #[inline]
    fn in_row(&self, v: NodeId) -> &[NodeId] {
        self.in_neighbors(v)
    }
}

/// Left fold of one (partial) row into a running accumulator. Both the
/// flat and the strip kernels build each destination's sum through this
/// same chain, which is what keeps them bit-identical.
#[inline]
fn row_gather_from(acc: f64, row: &[NodeId], x: &[f64], inv: &[f64]) -> f64 {
    row.iter().fold(acc, |a, &u| a + x[u as usize] * inv[u as usize])
}

/// Flat scalar gather for destinations `range`, writing into `y_local`
/// (`y_local[0]` is node `range.start`). Returns the range's `Σ|y|` in
/// the blocked-canonical association (per-[`NORM_BLOCK`] partials folded
/// ascending, blocks aligned to *global* node ids) — the convergence
/// residual, for free (see
/// [`crate::Propagator::propagate_into_norm`]).
pub(crate) fn gather_flat<A: InAdjacency + ?Sized>(
    adj: &A,
    inv: &[f64],
    coeff: f64,
    x: &[f64],
    y_local: &mut [f64],
    range: Range<NodeId>,
) -> f64 {
    debug_assert_eq!(y_local.len(), range.len());
    let mut norm = 0.0f64;
    let mut part = 0.0f64;
    let mut until = NORM_BLOCK - (range.start as usize % NORM_BLOCK);
    for (y, v) in y_local.iter_mut().zip(range) {
        let row = adj.in_row(v);
        // Degree-zero rows skip the fold (and the coeff multiply:
        // `coeff · 0.0 = 0.0` for the positive coefficients CPI uses).
        *y = if row.is_empty() { 0.0 } else { coeff * row_gather_from(0.0, row, x, inv) };
        part += y.abs();
        until -= 1;
        if until == 0 {
            norm += part;
            part = 0.0;
            until = NORM_BLOCK;
        }
    }
    if until != NORM_BLOCK {
        norm += part;
    }
    norm
}

/// The strip scheduler: rows queued at the strip holding their next
/// unconsumed neighbor, so a sweep visits each destination only in
/// strips where it actually gathers something. Total row-visits are
/// bounded by `min(m, rows × strips)` — without the schedule every strip
/// would pay an `O(rows)` scan, which drowns the locality win on
/// medium-degree graphs.
struct StripSchedule {
    width: usize,
    /// `buckets[s]` = local row indexes whose next neighbor is in strip
    /// `s`.
    buckets: Vec<Vec<u32>>,
}

impl StripSchedule {
    fn new(n: usize, width: usize) -> Self {
        let strips = n.div_ceil(width).max(1);
        Self { width, buckets: vec![Vec::new(); strips] }
    }

    #[inline]
    fn enqueue(&mut self, next_neighbor: NodeId, i: u32) {
        self.buckets[next_neighbor as usize / self.width].push(i);
    }
}

/// Strip-mined scalar gather for destinations `range`: sweeps `x` in
/// strips of `width` entries; per destination the accumulation chain is
/// identical to [`gather_flat`] (see the module docs). Returns the
/// range's `Σ|y|` in the blocked-canonical association, fused into the
/// final coefficient pass.
pub(crate) fn gather_strip<A: InAdjacency + ?Sized>(
    adj: &A,
    inv: &[f64],
    coeff: f64,
    x: &[f64],
    y_local: &mut [f64],
    range: Range<NodeId>,
    width: usize,
) -> f64 {
    let rows = range.len();
    debug_assert_eq!(y_local.len(), rows);
    y_local.fill(0.0);
    let mut cursor = vec![0u32; rows];
    let mut sched = StripSchedule::new(x.len(), width);
    for (i, v) in range.clone().enumerate() {
        if let Some(&first) = adj.in_row(v).first() {
            sched.enqueue(first, i as u32);
        }
    }
    for s in 0..sched.buckets.len() {
        let hi = ((s + 1) * width).min(x.len()) as NodeId;
        let queued = std::mem::take(&mut sched.buckets[s]);
        for i in queued {
            let v = range.start + i;
            let row = adj.in_row(v);
            let mut c = cursor[i as usize] as usize;
            // Continue this destination's fold where the previous strip
            // left it — the chain stays identical to the flat kernel's —
            // consuming neighbors in one linear scan until the strip
            // boundary.
            let mut acc = y_local[i as usize];
            for &u in &row[c..] {
                if u >= hi {
                    break;
                }
                acc += x[u as usize] * inv[u as usize];
                c += 1;
            }
            y_local[i as usize] = acc;
            cursor[i as usize] = c as u32;
            if let Some(&next) = row.get(c) {
                sched.enqueue(next, i);
            }
        }
    }
    let mut norm = 0.0f64;
    let mut part = 0.0f64;
    let mut until = NORM_BLOCK - (range.start as usize % NORM_BLOCK);
    for y in y_local.iter_mut() {
        *y *= coeff;
        part += y.abs();
        until -= 1;
        if until == 0 {
            norm += part;
            part = 0.0;
            until = NORM_BLOCK;
        }
    }
    if until != NORM_BLOCK {
        norm += part;
    }
    norm
}

/// One source's contribution to a block row: `yrow += w · xrow`.
#[inline]
fn block_row_add(yrow: &mut [f64], xrow: &[f64], w: f64) {
    for (yj, xj) in yrow.iter_mut().zip(xrow) {
        *yj += xj * w;
    }
}

/// Flat fused block gather for destinations `range` into the row-aligned
/// slice `y_local` (lane width from `x`; `y_local`'s first row is node
/// `range.start`).
pub(crate) fn block_gather_flat<A: InAdjacency + ?Sized>(
    adj: &A,
    inv: &[f64],
    coeff: f64,
    x: &ScoreBlock,
    y_local: &mut [f64],
    range: Range<NodeId>,
) {
    let lanes = x.lanes();
    debug_assert_eq!(y_local.len(), range.len() * lanes);
    for (yrow, v) in y_local.chunks_exact_mut(lanes).zip(range) {
        yrow.fill(0.0);
        for &u in adj.in_row(v) {
            let w = inv[u as usize];
            if w == 0.0 {
                continue;
            }
            block_row_add(yrow, x.row(u as usize), w);
        }
        for e in yrow.iter_mut() {
            *e *= coeff;
        }
    }
}

/// Strip-mined fused block gather: like [`gather_strip`] but every
/// resident `x` *row* (all lanes of one source) is reused across the
/// strip. Bit-identical to [`block_gather_flat`].
pub(crate) fn block_gather_strip<A: InAdjacency + ?Sized>(
    adj: &A,
    inv: &[f64],
    coeff: f64,
    x: &ScoreBlock,
    y_local: &mut [f64],
    range: Range<NodeId>,
    width: usize,
) {
    let lanes = x.lanes();
    let rows = range.len();
    debug_assert_eq!(y_local.len(), rows * lanes);
    y_local.fill(0.0);
    let mut cursor = vec![0u32; rows];
    let mut sched = StripSchedule::new(x.n(), width);
    for (i, v) in range.clone().enumerate() {
        if let Some(&first) = adj.in_row(v).first() {
            sched.enqueue(first, i as u32);
        }
    }
    for s in 0..sched.buckets.len() {
        let hi = ((s + 1) * width).min(x.n()) as NodeId;
        let queued = std::mem::take(&mut sched.buckets[s]);
        for i in queued {
            let v = range.start + i;
            let row = adj.in_row(v);
            let mut c = cursor[i as usize] as usize;
            let yrow = &mut y_local[i as usize * lanes..(i as usize + 1) * lanes];
            for &u in &row[c..] {
                if u >= hi {
                    break;
                }
                c += 1;
                let w = inv[u as usize];
                if w == 0.0 {
                    continue;
                }
                block_row_add(yrow, x.row(u as usize), w);
            }
            cursor[i as usize] = c as u32;
            if let Some(&next) = row.get(c) {
                sched.enqueue(next, i);
            }
        }
    }
    for e in y_local.iter_mut() {
        *e *= coeff;
    }
}

/// Scalar gather for destinations `range`, flat or strip-mined per the
/// resolved policy. Returns the range's blocked-canonical `Σ|y|` fold
/// (bitwise identical between the two kernels: both fold `|y_v|` in
/// ascending destination order within each block after the coefficient
/// multiply).
pub(crate) fn gather_range<A: InAdjacency + ?Sized>(
    adj: &A,
    inv: &[f64],
    coeff: f64,
    x: &[f64],
    y_local: &mut [f64],
    range: Range<NodeId>,
    strip: Option<usize>,
) -> f64 {
    match strip {
        None => gather_flat(adj, inv, coeff, x, y_local, range),
        Some(width) => gather_strip(adj, inv, coeff, x, y_local, range, width),
    }
}

/// Fused block gather for destinations `range`, flat or strip-mined per
/// the resolved policy.
pub(crate) fn block_gather_range<A: InAdjacency + ?Sized>(
    adj: &A,
    inv: &[f64],
    coeff: f64,
    x: &ScoreBlock,
    y_local: &mut [f64],
    range: Range<NodeId>,
    strip: Option<usize>,
) {
    match strip {
        None => block_gather_flat(adj, inv, coeff, x, y_local, range),
        Some(width) => block_gather_strip(adj, inv, coeff, x, y_local, range, width),
    }
}

/// Fan-out shared by the parallel and dynamic backends: splits `y` into
/// per-range row-aligned slices (`row_width` = 1 for scalar, `lanes`
/// for blocks) and runs `work(slice, start, end)` on each range in its
/// own scoped worker. Disjoint writes, shared reads — bit-identical to
/// running the ranges sequentially.
pub(crate) fn par_ranges<F>(ranges: &[(u32, u32)], row_width: usize, y: &mut [f64], work: F)
where
    F: Fn(&mut [f64], u32, u32) + Sync,
{
    let mut slices: Vec<&mut [f64]> = Vec::with_capacity(ranges.len());
    let mut rest = y;
    for &(start, end) in ranges {
        let (head, tail) = rest.split_at_mut((end - start) as usize * row_width);
        slices.push(head);
        rest = tail;
    }
    std::thread::scope(|scope| {
        for (slice, &(start, end)) in slices.into_iter().zip(ranges) {
            let work = &work;
            scope.spawn(move || work(slice, start, end));
        }
    });
}

/// [`par_ranges`] with the residual fold parallelized: each worker
/// propagates its band via `work`, then folds its own per-[`NORM_BLOCK`]
/// partials over the just-written (cache-warm) slice; the calling thread
/// folds all partials in ascending block order. The two-level chain is
/// exactly [`blocked_norm`] of the full output, so the returned residual
/// is bitwise identical to the sequential backends'. Requires
/// block-aligned ranges (see [`ranges_block_aligned`]).
pub(crate) fn par_ranges_norm<F>(ranges: &[(u32, u32)], y: &mut [f64], work: F) -> f64
where
    F: Fn(&mut [f64], u32, u32) + Sync,
{
    debug_assert!(ranges_block_aligned(ranges));
    let blocks_of = |(start, end): (u32, u32)| {
        (end as usize).div_ceil(NORM_BLOCK) - start as usize / NORM_BLOCK
    };
    let total_blocks: usize = ranges.iter().map(|&r| blocks_of(r)).sum();
    let mut parts = vec![0.0f64; total_blocks];
    let mut y_slices: Vec<&mut [f64]> = Vec::with_capacity(ranges.len());
    let mut part_slices: Vec<&mut [f64]> = Vec::with_capacity(ranges.len());
    let (mut y_rest, mut p_rest) = (y, parts.as_mut_slice());
    for &(start, end) in ranges {
        let (head, tail) = y_rest.split_at_mut((end - start) as usize);
        y_slices.push(head);
        y_rest = tail;
        let (head, tail) = p_rest.split_at_mut(blocks_of((start, end)));
        part_slices.push(head);
        p_rest = tail;
    }
    std::thread::scope(|scope| {
        for ((slice, parts), &(start, end)) in
            y_slices.into_iter().zip(part_slices).zip(ranges.iter())
        {
            let work = &work;
            scope.spawn(move || {
                work(slice, start, end);
                norm_parts(slice, parts);
            });
        }
    });
    fold_norm_parts(&parts)
}

/// Destination ranges for `threads` workers over `n` nodes, balanced by
/// in-edge count via the CSC offset array (power-law graphs concentrate
/// edges on few destinations, so node-count splits starve most workers).
/// Every range is non-empty; an edgeless graph falls back to node-count
/// balancing. Shared by the parallel and dynamic backends.
///
/// Whenever the graph has at least one [`NORM_BLOCK`] per worker, range
/// boundaries are snapped to block multiples so the fused residual fold
/// can compose per-worker partials (see [`par_ranges_norm`]); smaller
/// graphs keep the node-granular split — their sequential residual scan
/// is cheap anyway.
pub(crate) fn balance_ranges(in_offsets: &[usize], threads: usize) -> Vec<(u32, u32)> {
    let n = in_offsets.len() - 1;
    let m = in_offsets[n];
    let threads = threads.clamp(1, n.max(1));
    let blocks = n.div_ceil(NORM_BLOCK).max(1);
    if blocks >= threads {
        let block_end = |b: usize| (b * NORM_BLOCK).min(n);
        let mut ranges = Vec::with_capacity(threads);
        let mut start_b = 0usize;
        for w in 0..threads {
            let end_b = if w + 1 == threads {
                blocks
            } else if m == 0 {
                blocks * (w + 1) / threads
            } else {
                // First block boundary at or past this worker's edge
                // share, clamped so this range and every later one keep
                // at least one block.
                let target = (m * (w + 1)).div_ceil(threads);
                let mut e = start_b;
                while e < blocks && in_offsets[block_end(e + 1)] <= target {
                    e += 1;
                }
                e.max(start_b + 1).min(blocks - (threads - w - 1))
            };
            ranges.push((block_end(start_b) as u32, block_end(end_b) as u32));
            start_b = end_b;
        }
        return ranges;
    }
    let mut ranges = Vec::with_capacity(threads);
    let mut start = 0usize;
    for w in 0..threads {
        let end = if w + 1 == threads {
            n
        } else if m == 0 {
            // No edges to balance: split nodes evenly.
            n * (w + 1) / threads
        } else {
            // First node boundary at or past this worker's edge share,
            // clamped so this range and every later one stay non-empty.
            let target = (m * (w + 1)).div_ceil(threads);
            let mut end = start;
            while end < n && in_offsets[end + 1] <= target {
                end += 1;
            }
            end.max(start + 1).min(n - (threads - w - 1))
        };
        ranges.push((start as u32, end as u32));
        start = end;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpa_graph::gen::{lfr_lite, LfrConfig};

    fn test_graph() -> CsrGraph {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(19);
        lfr_lite(LfrConfig { n: 300, m: 3600, ..Default::default() }, &mut rng).graph
    }

    #[test]
    fn auto_model_flat_for_small_or_sparse() {
        // Small n: x fits cache.
        assert_eq!(resolve_strip(TilePolicy::Auto, 10_000, 200_000, 1), None);
        // Large but too sparse.
        assert_eq!(resolve_strip(TilePolicy::Auto, 8_000_000, 16_000_000, 1), None);
        // LLC-resident at n=1M scalar: flat.
        assert_eq!(resolve_strip(TilePolicy::Auto, 1_000_000, 10_000_000, 1), None);
        // Huge and dense enough: strips.
        let w = resolve_strip(TilePolicy::Auto, 8_000_000, 80_000_000, 1).unwrap();
        assert_eq!(w, STRIP_TARGET_BYTES / 8);
        // Wider lanes shrink the strip to keep the footprint constant
        // (and cross the LLC bound sooner).
        let w8 = resolve_strip(TilePolicy::Auto, 1_000_000, 10_000_000, 8).unwrap();
        assert_eq!(w8, STRIP_TARGET_BYTES / 64);
    }

    #[test]
    fn forced_policies_override_the_model() {
        assert_eq!(resolve_strip(TilePolicy::Flat, 1 << 30, 1 << 34, 1), None);
        assert_eq!(resolve_strip(TilePolicy::Strip(777), 4, 4, 1), Some(777));
        assert_eq!(resolve_strip(TilePolicy::Strip(0), 4, 4, 1), Some(1));
    }

    #[test]
    fn strip_kernel_bitwise_equals_flat_for_any_width() {
        let g = test_graph();
        let inv = g.inv_out_degrees();
        let n = g.n();
        let x: Vec<f64> = (0..n).map(|i| ((i * 37) % 101) as f64 / 101.0 - 0.3).collect();
        let mut flat = vec![0.0; n];
        gather_flat(&g, &inv, 0.85, &x, &mut flat, 0..n as NodeId);
        for width in [1usize, 7, 64, 255, n, 10 * n] {
            let mut tiled = vec![0.0; n];
            gather_strip(&g, &inv, 0.85, &x, &mut tiled, 0..n as NodeId, width);
            assert_eq!(tiled, flat, "width = {width}");
        }
    }

    #[test]
    fn block_strip_kernel_bitwise_equals_flat() {
        let g = test_graph();
        let inv = g.inv_out_degrees();
        let n = g.n();
        let lanes = 5;
        let mut x = ScoreBlock::zeros(n, lanes);
        for (i, e) in x.data_mut().iter_mut().enumerate() {
            *e = ((i * 13) % 97) as f64 / 97.0;
        }
        let mut flat = ScoreBlock::zeros(n, lanes);
        block_gather_flat(&g, &inv, 0.85, &x, flat.data_mut(), 0..n as NodeId);
        for width in [3usize, 50, 299, n] {
            let mut tiled = ScoreBlock::zeros(n, lanes);
            block_gather_strip(&g, &inv, 0.85, &x, tiled.data_mut(), 0..n as NodeId, width);
            assert_eq!(tiled.data(), flat.data(), "width = {width}");
        }
    }

    #[test]
    fn kernels_return_the_index_order_residual() {
        let g = test_graph();
        let inv = g.inv_out_degrees();
        let n = g.n();
        let x: Vec<f64> = (0..n).map(|i| ((i * 7) % 29) as f64 / 29.0 - 0.4).collect();
        let mut y = vec![0.0; n];
        let flat_norm = gather_flat(&g, &inv, 0.85, &x, &mut y, 0..n as NodeId);
        let scan: f64 = y.iter().map(|v| v.abs()).sum();
        assert_eq!(flat_norm.to_bits(), scan.to_bits());
        let mut y2 = vec![0.0; n];
        let strip_norm = gather_strip(&g, &inv, 0.85, &x, &mut y2, 0..n as NodeId, 64);
        assert_eq!(strip_norm.to_bits(), flat_norm.to_bits());
    }

    #[test]
    fn sampled_reuse_separates_concentrated_from_scattered_rows() {
        // Concentrated: every in-row lives inside one strip (low ids).
        let n = 2048;
        let mut edges = Vec::new();
        for v in 64..n as NodeId {
            for u in 0..8 {
                edges.push((u, v));
            }
        }
        let banded = CsrGraph::from_edges(n, &edges);
        assert!(sampled_strip_reuse(&banded, n, 512) > 4.0);
        // Scattered: each row's neighbors land in distinct strips.
        let mut edges = Vec::new();
        for v in 0..n as NodeId {
            for k in 0..8u32 {
                edges.push(((k * 256) % n as NodeId, v));
            }
        }
        let scattered = CsrGraph::from_edges(n, &edges);
        assert!(sampled_strip_reuse(&scattered, n, 64) < 1.5);
    }

    #[test]
    fn sampled_auto_model_gates_like_the_structural_one() {
        let g = test_graph();
        // Forced policies pass straight through.
        assert_eq!(resolve_strip_sampled(TilePolicy::Flat, &g, 1 << 30, 1 << 34, 1), None);
        assert_eq!(resolve_strip_sampled(TilePolicy::Strip(99), &g, g.n(), g.m(), 1), Some(99));
        // LLC-resident score vectors stay flat without sampling.
        assert_eq!(resolve_strip_sampled(TilePolicy::Auto, &g, g.n(), g.m(), 1), None);
    }

    #[test]
    fn ranges_balance_and_cover() {
        let g = test_graph();
        for threads in [1usize, 2, 5, 16, 1000] {
            let ranges = balance_ranges(g.in_offsets(), threads);
            let mut covered = 0u32;
            for &(start, end) in &ranges {
                assert_eq!(start, covered);
                assert!(end > start);
                covered = end;
            }
            assert_eq!(covered as usize, g.n());
        }
    }

    /// A graph spanning several norm blocks (n > 2·NORM_BLOCK).
    fn multi_block_graph() -> CsrGraph {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(29);
        lfr_lite(LfrConfig { n: 3 * NORM_BLOCK + 777, m: 80_000, ..Default::default() }, &mut rng)
            .graph
    }

    #[test]
    fn large_ranges_snap_to_norm_blocks() {
        let g = multi_block_graph();
        for threads in [2usize, 3] {
            let ranges = balance_ranges(g.in_offsets(), threads);
            assert_eq!(ranges.len(), threads);
            assert!(ranges_block_aligned(&ranges), "{ranges:?}");
            let mut covered = 0u32;
            for &(start, end) in &ranges {
                assert_eq!(start, covered);
                assert!(end > start);
                covered = end;
            }
            assert_eq!(covered as usize, g.n());
        }
        // More workers than blocks: node-granular fallback, unaligned.
        let ranges = balance_ranges(g.in_offsets(), 64);
        assert_eq!(ranges.len(), 64);
    }

    #[test]
    fn fused_residual_is_the_blocked_canonical_fold() {
        let g = multi_block_graph();
        let inv = g.inv_out_degrees();
        let n = g.n();
        let x: Vec<f64> = (0..n).map(|i| ((i * 31) % 83) as f64 / 83.0 - 0.2).collect();
        let mut y = vec![0.0; n];
        let flat_norm = gather_flat(&g, &inv, 0.85, &x, &mut y, 0..n as NodeId);
        assert_eq!(flat_norm.to_bits(), blocked_norm(&y).to_bits());
        let mut y2 = vec![0.0; n];
        let strip_norm = gather_strip(&g, &inv, 0.85, &x, &mut y2, 0..n as NodeId, 512);
        assert_eq!(strip_norm.to_bits(), flat_norm.to_bits());
        // Per-worker partials over block-aligned ranges compose into the
        // same canonical fold.
        let ranges = balance_ranges(g.in_offsets(), 3);
        assert!(ranges_block_aligned(&ranges));
        let mut y3 = vec![0.0; n];
        let par_norm = par_ranges_norm(&ranges, &mut y3, |slice, start, end| {
            gather_flat(&g, &inv, 0.85, &x, slice, start..end);
        });
        assert_eq!(y3, y);
        assert_eq!(par_norm.to_bits(), flat_norm.to_bits());
    }
}
