//! Exact family/neighbor/stranger decomposition of a CPI series.
//!
//! Table III and Fig. 9 need the *true* `r_family`, `r_neighbor` and
//! `r_stranger` (and their PageRank counterparts) to measure how far the
//! approximations deviate from each part. A single traced CPI run captures
//! all three.

use crate::{cpi_trace, CpiConfig, Propagator, SeedSet};

/// The three exact parts of one CPI series at split points `S` and `T`.
#[derive(Clone, Debug)]
pub struct Decomposition {
    /// `Σ x(i)` for `0 ≤ i < S`.
    pub family: Vec<f64>,
    /// `Σ x(i)` for `S ≤ i < T`.
    pub neighbor: Vec<f64>,
    /// `Σ x(i)` for `T ≤ i` (to convergence).
    pub stranger: Vec<f64>,
    /// Total iterations run.
    pub iterations: usize,
}

impl Decomposition {
    /// The full CPI vector `family + neighbor + stranger`.
    pub fn total(&self) -> Vec<f64> {
        self.family
            .iter()
            .zip(&self.neighbor)
            .zip(&self.stranger)
            .map(|((f, n), s)| f + n + s)
            .collect()
    }
}

/// Runs CPI to convergence from `seeds`, splitting the accumulated series
/// at iterations `s` and `t`.
pub fn decompose<P: Propagator + ?Sized>(
    transition: &P,
    seeds: &SeedSet,
    cfg: &CpiConfig,
    s: usize,
    t: usize,
) -> Decomposition {
    assert!(s < t, "need S < T");
    let n = transition.n();
    let mut family = vec![0.0; n];
    let mut neighbor = vec![0.0; n];
    let mut stranger = vec![0.0; n];
    let result = cpi_trace(transition, seeds, cfg, 0, None, |i, x| {
        let acc = if i < s {
            &mut family
        } else if i < t {
            &mut neighbor
        } else {
            &mut stranger
        };
        for (a, b) in acc.iter_mut().zip(x) {
            *a += b;
        }
    });
    Decomposition { family, neighbor, stranger, iterations: result.last_iteration }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Transition;
    use crate::{cpi, exact_rwr};
    use tpa_graph::gen::{cycle_graph, star_graph};

    fn l1_dist(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
    }

    #[test]
    fn parts_sum_to_exact_rwr() {
        let g = star_graph(12);
        let t = Transition::new(&g);
        let cfg = CpiConfig::default();
        let d = decompose(&t, &SeedSet::single(3), &cfg, 5, 10);
        let exact = exact_rwr(&g, 3, &cfg);
        assert!(l1_dist(&d.total(), &exact) < 1e-9);
    }

    #[test]
    fn family_matches_windowed_cpi() {
        let g = cycle_graph(9);
        let t = Transition::new(&g);
        let cfg = CpiConfig::default();
        let d = decompose(&t, &SeedSet::single(0), &cfg, 4, 8);
        let fam = cpi(&t, &SeedSet::single(0), &cfg, 0, Some(3)).scores;
        assert!(l1_dist(&d.family, &fam) < 1e-12);
    }

    #[test]
    fn part_masses_match_lemma2() {
        // ‖family‖ = 1−(1−c)^S, ‖neighbor‖ = (1−c)^S−(1−c)^T.
        let g = cycle_graph(7);
        let t = Transition::new(&g);
        let cfg = CpiConfig::default();
        let (s, tt) = (5, 10);
        let d = decompose(&t, &SeedSet::single(1), &cfg, s, tt);
        let dfac = 1.0 - cfg.c;
        let fam: f64 = d.family.iter().sum();
        let nei: f64 = d.neighbor.iter().sum();
        let str: f64 = d.stranger.iter().sum();
        assert!((fam - (1.0 - dfac.powi(s as i32))).abs() < 1e-12);
        assert!((nei - (dfac.powi(s as i32) - dfac.powi(tt as i32))).abs() < 1e-12);
        assert!((str - dfac.powi(tt as i32)).abs() < 1e-7);
    }

    #[test]
    fn pagerank_decomposition_uniform_seed() {
        let g = cycle_graph(5);
        let t = Transition::new(&g);
        let cfg = CpiConfig::default();
        let d = decompose(&t, &SeedSet::Uniform, &cfg, 2, 4);
        // On a cycle with uniform seed every part stays uniform.
        for part in [&d.family, &d.neighbor, &d.stranger] {
            let first = part[0];
            assert!(part.iter().all(|&v| (v - first).abs() < 1e-12));
        }
    }
}
