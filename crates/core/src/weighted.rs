//! Weighted RWR: the propagation backend for [`WeightedCsrGraph`].
//!
//! The transition probability along `(u, v)` is `w(u,v) / Σ_x w(u,x)`;
//! the resulting `Ãᵀ` is still column-stochastic, so CPI, TPA and every
//! bound in the paper apply verbatim. This generalization covers the
//! weighted use cases the paper's applications imply (interaction
//! strength in recommendation, trip counts in mobility graphs, …).

use crate::Propagator;
use tpa_graph::{NodeId, WeightedCsrGraph};

/// Weight-normalized transposed transition operator.
pub struct WeightedTransition<'g> {
    graph: &'g WeightedCsrGraph,
    inv_out_weight: Vec<f64>,
}

impl std::fmt::Debug for WeightedTransition<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WeightedTransition").finish_non_exhaustive()
    }
}

impl<'g> WeightedTransition<'g> {
    /// Binds the operator, precomputing `1/Σ w(u,·)` per node.
    pub fn new(graph: &'g WeightedCsrGraph) -> Self {
        Self { graph, inv_out_weight: graph.inv_out_weight_sums() }
    }

    /// The underlying weighted graph.
    pub fn graph(&self) -> &'g WeightedCsrGraph {
        self.graph
    }
}

impl Propagator for WeightedTransition<'_> {
    fn n(&self) -> usize {
        self.graph.n()
    }

    fn propagate_into(&self, coeff: f64, x: &[f64], y: &mut [f64]) {
        let n = self.graph.n();
        assert_eq!(x.len(), n);
        assert_eq!(y.len(), n);
        for v in 0..n as NodeId {
            let mut acc = 0.0;
            for (u, w) in self.graph.in_edges(v) {
                acc += x[u as usize] * w * self.inv_out_weight[u as usize];
            }
            y[v as usize] = coeff * acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cpi, exact_rwr, CpiConfig, SeedSet, TpaIndex, TpaParams, Transition};
    use tpa_graph::{unit_weights, CsrGraph, WeightedGraphBuilder};

    fn l1_dist(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
    }

    #[test]
    fn unit_weights_reproduce_unweighted_rwr() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 3)]);
        let wg = unit_weights(&g);
        let wt = WeightedTransition::new(&wg);
        let cfg = CpiConfig { eps: 1e-12, ..Default::default() };
        let weighted = cpi(&wt, &SeedSet::single(0), &cfg, 0, None).scores;
        let unweighted = exact_rwr(&g, 0, &cfg);
        assert!(l1_dist(&weighted, &unweighted) < 1e-12);
    }

    #[test]
    fn weights_bias_the_walk() {
        // 0 → {1 (weight 9), 2 (weight 1)}: node 1 must collect ~9× more.
        let g = WeightedGraphBuilder::new(3)
            .extend_edges([(0, 1, 9.0), (0, 2, 1.0), (1, 0, 1.0), (2, 0, 1.0)])
            .build();
        let wt = WeightedTransition::new(&g);
        let r = cpi(&wt, &SeedSet::single(0), &CpiConfig::default(), 0, None).scores;
        assert!(r[1] > 5.0 * r[2], "r1 {} r2 {}", r[1], r[2]);
    }

    #[test]
    fn mass_conservation_weighted() {
        let g = WeightedGraphBuilder::new(4)
            .extend_edges([
                (0, 1, 0.3),
                (1, 2, 2.0),
                (2, 3, 5.0),
                (3, 0, 0.7),
                (0, 2, 1.1),
                (2, 0, 0.2),
            ])
            .build();
        let wt = WeightedTransition::new(&g);
        let r = cpi(&wt, &SeedSet::single(1), &CpiConfig::default(), 0, None);
        assert!(r.converged);
        assert!((r.scores.iter().sum::<f64>() - 1.0).abs() < 1e-7);
    }

    #[test]
    fn tpa_bound_holds_on_weighted_graphs() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(61);
        let n = 200;
        let mut b = WeightedGraphBuilder::new(n);
        for _ in 0..1600 {
            let u = rng.gen_range(0..n) as u32;
            let v = rng.gen_range(0..n) as u32;
            if u != v {
                b.add_edge(u, v, rng.gen::<f64>() + 0.1);
            }
        }
        let g = b.build();
        let wt = WeightedTransition::new(&g);
        let params = TpaParams::new(4, 9);
        let index = TpaIndex::preprocess_on(&wt, params);
        let approx = index.query_on(&wt, &SeedSet::single(7));
        let exact = cpi(&wt, &SeedSet::single(7), &params.cpi_config(), 0, None).scores;
        let err = l1_dist(&approx, &exact);
        let bound = crate::bounds::total_bound(params.c, params.s);
        assert!(err <= bound + 1e-9, "err {err} bound {bound}");
    }

    #[test]
    fn weighted_and_unweighted_transitions_share_interface() {
        // The same generic CPI drives both backends (compile-time check +
        // numerical smoke).
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let wg = unit_weights(&g);
        let t = Transition::new(&g);
        let wt = WeightedTransition::new(&wg);
        let cfg = CpiConfig::default();
        let a = cpi(&t, &SeedSet::single(0), &cfg, 0, Some(3)).scores;
        let b = cpi(&wt, &SeedSet::single(0), &cfg, 0, Some(3)).scores;
        assert!(l1_dist(&a, &b) < 1e-14);
    }
}
