//! Copy-on-write patch snapshots: the immutable backend a near-free
//! epoch publish hands to readers.
//!
//! The original serving loop rebuilt a fresh CSR from the writer's
//! merged overlay on **every** update batch — an `O(n + m)` snapshot
//! (allocation, merge walk, range rebalance) to publish an `O(batch)`
//! change. [`PatchedTransition`] is the other half of the overlay
//! design: an *immutable* bundle of
//!
//! * the base CSR, shared by `Arc` with the writer and every other
//!   epoch published since the last compaction,
//! * the materialized merged in-rows of dirty destinations and merged
//!   out-rows of changed sources (per-row `Arc`s, shared across
//!   epochs — a publish clones two small maps, not their contents),
//! * flat copies of the two per-node arrays the kernels index
//!   (`1/outdeg` and the dirty-destination flags — plain `memcpy`s,
//!   the only `O(n)` terms left in a publish, with no edge traversal),
//!
//! frozen at one epoch. It implements [`Propagator`] with the same
//! shared kernels ([`crate::tiling`]) over the same
//! [`OverlayRows`](crate::dynamic) view as the live overlay, so its
//! scores — residuals included — are **bitwise identical** to the
//! writer's overlay and, by the `dynamic_equiv` property suite, to a
//! CSR rebuilt from scratch. Readers at epoch `e+1` therefore see
//! exactly the view a full rebuild would have published, at a publish
//! cost that scales with the accumulated overlay delta instead of the
//! graph; folding the delta back into a fresh base is demoted to a
//! background activity (see [`crate::RwrService`]).

use crate::dynamic::OverlayRows;
use crate::frontier::{self, FrontierScratch, FrontierStep, FrontierWork};
use crate::tiling::{self, TilePolicy};
use crate::transition::dense_frontier_fallback;
use crate::Propagator;
use std::collections::HashMap;
use std::sync::Arc;
use tpa_graph::{CsrGraph, NodeId};

/// An immutable, shareable patched view of a dynamic graph: base CSR
/// plus merged-overlay delta, frozen at one epoch. See the module docs.
///
/// `Send + Sync`: any number of reader threads propagate on one
/// instance concurrently (it is the backend inside a published
/// [`crate::Snapshot`]).
pub struct PatchedTransition {
    base: Arc<CsrGraph>,
    inv_out_deg: Arc<Vec<f64>>,
    in_dirty: Arc<Vec<bool>>,
    in_rows: HashMap<NodeId, Arc<Vec<NodeId>>>,
    out_rows: HashMap<NodeId, Arc<Vec<NodeId>>>,
    /// Merged edge count (the base's `m` shifted by the overlay delta).
    m: usize,
    /// Pending patch entries the view carries over its base.
    delta_edges: usize,
    ranges: Vec<(u32, u32)>,
    tile: TilePolicy,
    strips: tiling::StripCache,
}

impl std::fmt::Debug for PatchedTransition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PatchedTransition")
            .field("patched_rows", &self.in_rows.len())
            .finish_non_exhaustive()
    }
}

/// Out-adjacency view for frontier discovery: changed sources read
/// their materialized merged row, everyone else the base CSR slice —
/// the out-side mirror of [`OverlayRows`].
struct PatchedOut<'a> {
    base: &'a CsrGraph,
    out_rows: &'a HashMap<NodeId, Arc<Vec<NodeId>>>,
}

impl frontier::OutAdjacency for PatchedOut<'_> {
    #[inline]
    fn out_deg(&self, u: NodeId) -> usize {
        match self.out_rows.get(&u) {
            Some(r) => r.len(),
            None => self.base.out_degree(u),
        }
    }

    #[inline]
    fn for_each_out<F: FnMut(NodeId)>(&self, u: NodeId, mut f: F) {
        let row: &[NodeId] = match self.out_rows.get(&u) {
            Some(r) => r,
            None => self.base.out_neighbors(u),
        };
        for &v in row {
            f(v);
        }
    }
}

impl PatchedTransition {
    /// Bundles a published view; called by
    /// [`crate::DynamicTransition::publish_patched`], which owns the
    /// invariants (rows materialized against `base`, `inv_out_deg`
    /// merged-current, ranges balanced on `base`).
    // One field per argument: a builder would restate the struct.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        base: Arc<CsrGraph>,
        inv_out_deg: Arc<Vec<f64>>,
        in_dirty: Arc<Vec<bool>>,
        in_rows: HashMap<NodeId, Arc<Vec<NodeId>>>,
        out_rows: HashMap<NodeId, Arc<Vec<NodeId>>>,
        m: usize,
        delta_edges: usize,
        ranges: Vec<(u32, u32)>,
        tile: TilePolicy,
    ) -> Self {
        debug_assert_eq!(inv_out_deg.len(), base.n());
        debug_assert_eq!(in_dirty.len(), base.n());
        Self {
            base,
            inv_out_deg,
            in_dirty,
            in_rows,
            out_rows,
            m,
            delta_edges,
            ranges,
            tile,
            strips: tiling::StripCache::new(),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.base.n()
    }

    /// Number of edges in the patched view.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Patch entries (inserts + deletes) this view carries over its
    /// base; `0` means the view *is* the base.
    pub fn delta_edges(&self) -> usize {
        self.delta_edges
    }

    /// Number of destination-range workers.
    pub fn threads(&self) -> usize {
        self.ranges.len()
    }

    /// The shared base CSR this view patches.
    pub fn base(&self) -> &Arc<CsrGraph> {
        &self.base
    }

    /// Overrides the cache-blocking policy (bit-identical; only
    /// throughput changes). Resets the resolved-strip cache.
    pub fn with_tile_policy(mut self, tile: TilePolicy) -> Self {
        self.tile = tile;
        self.strips = tiling::StripCache::new();
        self
    }

    fn rows(&self) -> OverlayRows<'_> {
        OverlayRows { base: &self.base, in_dirty: &self.in_dirty, dirty_rows: &self.in_rows }
    }

    fn out_view(&self) -> PatchedOut<'_> {
        PatchedOut { base: &self.base, out_rows: &self.out_rows }
    }
}

impl Propagator for PatchedTransition {
    fn n(&self) -> usize {
        self.base.n()
    }

    /// The overlay gather ([`crate::DynamicTransition`]) over the frozen
    /// patch state: identical rows, identical accumulation order,
    /// bitwise-identical scores.
    fn propagate_into(&self, coeff: f64, x: &[f64], y: &mut [f64]) {
        let n = self.n();
        assert_eq!(x.len(), n, "input vector length mismatch");
        assert_eq!(y.len(), n, "output vector length mismatch");
        let rows = self.rows();
        let strip = self.strips.resolve(self.tile, &rows, n, self.m, 1);
        if self.ranges.len() == 1 {
            tiling::gather_range(&rows, &self.inv_out_deg, coeff, x, y, 0..n as NodeId, strip);
            return;
        }
        let inv = &self.inv_out_deg;
        tiling::par_ranges(&self.ranges, 1, y, |slice, start, end| {
            tiling::gather_range(&rows, inv, coeff, x, slice, start..end, strip);
        });
    }

    fn propagate_into_norm(&self, coeff: f64, x: &[f64], y: &mut [f64]) -> f64 {
        let n = self.n();
        assert_eq!(x.len(), n, "input vector length mismatch");
        assert_eq!(y.len(), n, "output vector length mismatch");
        let rows = self.rows();
        let strip = self.strips.resolve(self.tile, &rows, n, self.m, 1);
        if self.ranges.len() == 1 {
            return tiling::gather_range(
                &rows,
                &self.inv_out_deg,
                coeff,
                x,
                y,
                0..n as NodeId,
                strip,
            );
        }
        let inv = &self.inv_out_deg;
        if tiling::ranges_block_aligned(&self.ranges) {
            return tiling::par_ranges_norm(&self.ranges, y, |slice, start, end| {
                tiling::gather_range(&rows, inv, coeff, x, slice, start..end, strip);
            });
        }
        self.propagate_into(coeff, x, y);
        tiling::blocked_norm(y)
    }

    fn frontier_work(&self, active: &[NodeId]) -> Option<FrontierWork> {
        Some(FrontierWork {
            frontier_edges: frontier::frontier_out_edges(&self.out_view(), active),
            total_edges: self.m,
        })
    }

    fn propagate_frontier(
        &self,
        coeff: f64,
        x: &[f64],
        y: &mut [f64],
        active: &[NodeId],
        scratch: &mut FrontierScratch,
    ) -> FrontierStep {
        let n = self.n();
        assert_eq!(x.len(), n, "input vector length mismatch");
        assert_eq!(y.len(), n, "output vector length mismatch");
        let rows = self.rows();
        match frontier::sparse_step_ranged(
            &self.out_view(),
            &rows,
            &self.inv_out_deg,
            coeff,
            x,
            y,
            active,
            self.m,
            &self.ranges,
            scratch,
        ) {
            Some(step) => step,
            None => dense_frontier_fallback(self, coeff, x, y, scratch),
        }
    }

    fn propagate_block_into(
        &self,
        coeff: f64,
        x: &crate::batch::ScoreBlock,
        y: &mut crate::batch::ScoreBlock,
    ) {
        let n = self.n();
        assert_eq!(x.n(), n, "input block height mismatch");
        assert_eq!(y.n(), n, "output block height mismatch");
        assert_eq!(x.lanes(), y.lanes(), "lane count mismatch");
        let lanes = x.lanes();
        let rows = self.rows();
        let strip = self.strips.resolve(self.tile, &rows, n, self.m, lanes);
        if self.ranges.len() == 1 {
            tiling::block_gather_range(
                &rows,
                &self.inv_out_deg,
                coeff,
                x,
                y.data_mut(),
                0..n as NodeId,
                strip,
            );
            return;
        }
        let inv = &self.inv_out_deg;
        tiling::par_ranges(&self.ranges, lanes, y.data_mut(), |slice, start, end| {
            tiling::block_gather_range(&rows, inv, coeff, x, slice, start..end, strip)
        });
    }
}

#[cfg(test)]
mod tests {
    use crate::{cpi, cpi_policy, CpiConfig, DynamicTransition, FrontierPolicy, SeedSet};
    use tpa_graph::gen::{lfr_lite, LfrConfig};
    use tpa_graph::{DynamicGraph, EdgeUpdate};

    fn overlay() -> DynamicTransition {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(23);
        let g = lfr_lite(LfrConfig { n: 400, m: 3600, ..Default::default() }, &mut rng).graph;
        let mut t = DynamicTransition::new(DynamicGraph::new(g).with_compact_threshold(None));
        t.apply(&[
            EdgeUpdate::Insert(3, 250),
            EdgeUpdate::Insert(250, 3),
            EdgeUpdate::Delete(3, 250),
            EdgeUpdate::Insert(7, 120),
            EdgeUpdate::Delete(120, 7),
        ]);
        t
    }

    #[test]
    fn patched_view_matches_overlay_bitwise() {
        let t = overlay();
        let p = t.publish_patched();
        assert_eq!(p.n(), t.n());
        assert_eq!(p.m(), t.graph().m());
        assert!(p.delta_edges() > 0);
        let cfg = CpiConfig::default();
        for seed in [3u32, 120, 399] {
            let live = cpi(&t, &SeedSet::single(seed), &cfg, 0, None);
            let snap = cpi(&p, &SeedSet::single(seed), &cfg, 0, None);
            assert_eq!(live.last_iteration, snap.last_iteration);
            assert_eq!(live.final_residual.to_bits(), snap.final_residual.to_bits());
            assert!(live.scores.iter().zip(&snap.scores).all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }

    #[test]
    fn patched_frontier_policies_are_bitwise_invisible() {
        let t = overlay();
        let p = t.publish_patched();
        let cfg = CpiConfig::default();
        let dense = cpi_policy(&p, &SeedSet::single(7), &cfg, 0, None, FrontierPolicy::Dense);
        for policy in [FrontierPolicy::Sparse, FrontierPolicy::Auto] {
            let run = cpi_policy(&p, &SeedSet::single(7), &cfg, 0, None, policy);
            assert_eq!(run.last_iteration, dense.last_iteration, "{policy:?}");
            assert!(run.scores.iter().zip(&dense.scores).all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }

    #[test]
    fn published_view_is_frozen_while_the_overlay_moves_on() {
        let mut t = overlay();
        let p = t.publish_patched();
        let cfg = CpiConfig::default();
        let before = cpi(&p, &SeedSet::single(7), &cfg, 0, None).scores;
        t.apply(&[EdgeUpdate::Insert(7, 300), EdgeUpdate::Insert(300, 7)]);
        let after = cpi(&p, &SeedSet::single(7), &cfg, 0, None).scores;
        assert!(before.iter().zip(&after).all(|(a, b)| a.to_bits() == b.to_bits()));
        // The next publish sees the new edges.
        let p2 = t.publish_patched();
        let moved = cpi(&p2, &SeedSet::single(7), &cfg, 0, None).scores;
        assert_ne!(before, moved);
    }
}
