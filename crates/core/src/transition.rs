//! The RWR transition operator `Ãᵀ` bound to a graph.

use crate::batch::ScoreBlock;
use crate::frontier::{self, FrontierScratch, FrontierStep, FrontierWork};
use crate::tiling::{self, TilePolicy};
use std::sync::Arc;
use tpa_graph::{CsrGraph, NodeId};

/// A propagation backend: anything that can compute the CPI step
/// `y ← coeff·Ãᵀ·x`. The in-memory [`Transition`] is the default; the
/// multi-threaded [`crate::ParallelTransition`] splits destinations over
/// workers; the out-of-core [`crate::offcore::DiskGraph`] streams edges
/// from disk (the paper's "disk-based RWR" future work).
pub trait Propagator {
    /// Number of nodes.
    fn n(&self) -> usize;

    /// `y ← coeff · Ãᵀ·x`; `x` and `y` have length `n`.
    fn propagate_into(&self, coeff: f64, x: &[f64], y: &mut [f64]);

    /// Batched step `Y ← coeff·Ãᵀ·X` over every lane of a
    /// [`ScoreBlock`]. The default runs the scalar kernel lane by lane;
    /// backends override it with fused kernels that share one edge pass
    /// across all lanes. Overrides must stay **bit-identical** to the
    /// default: per destination and lane, contributions are accumulated
    /// in in-neighbor order.
    fn propagate_block_into(&self, coeff: f64, x: &ScoreBlock, y: &mut ScoreBlock) {
        let n = self.n();
        assert_eq!(x.n(), n, "input block height mismatch");
        assert_eq!(y.n(), n, "output block height mismatch");
        assert_eq!(x.lanes(), y.lanes(), "lane count mismatch");
        let mut xl = vec![0.0f64; n];
        let mut yl = vec![0.0f64; n];
        for j in 0..x.lanes() {
            x.copy_lane_into(j, &mut xl);
            self.propagate_into(coeff, &xl, &mut yl);
            y.set_lane(j, &yl);
        }
    }

    /// [`Propagator::propagate_into`] that also returns `‖y‖₁` in the
    /// blocked-canonical association (per-`NORM_BLOCK` partials folded in
    /// ascending block order; see [`crate::tiling`]), so CPI's
    /// convergence check costs nothing extra and every backend — fused,
    /// parallel-partial, or sparse — produces the identical residual
    /// bits. The default propagates and then scans; the in-memory
    /// backends fuse the fold into the kernel's destination loop, and
    /// the multi-range backends fold per-worker partials.
    fn propagate_into_norm(&self, coeff: f64, x: &[f64], y: &mut [f64]) -> f64 {
        self.propagate_into(coeff, x, y);
        tiling::blocked_norm(y)
    }

    /// Cost probe for a sparse-frontier step over `active` (the
    /// ascending support of the current interim vector): `None` means
    /// the backend has no sparse path and
    /// [`crate::FrontierPolicy::Auto`] should run dense. Backends with a
    /// native [`Propagator::propagate_frontier`] return the frontier's
    /// out-edge count and `m`.
    fn frontier_work(&self, active: &[NodeId]) -> Option<FrontierWork> {
        let _ = active;
        None
    }

    /// Sparse-frontier step `y ← coeff·Ãᵀ·x` touching only rows
    /// reachable from `active`. Contract: `active` is ascending and
    /// covers the support of `x`, and every entry of `y` is `0.0` on
    /// entry (the caller zeroes the stale support; see [`crate::cpi`]).
    /// On return `scratch.next_active()` holds the ascending support of
    /// `y`, and the step's residual is `‖y‖₁`.
    ///
    /// Results must be **bit-identical** to [`Propagator::propagate_into`]:
    /// native implementations gather each reachable destination's full
    /// in-row and skip only sources whose `x` entry is exactly `0.0`
    /// (an elided `+ 0.0`), so the floating-point chain matches the
    /// dense kernels term for term. The default runs the dense kernel
    /// and scans for the support — correct everywhere, sparse nowhere.
    fn propagate_frontier(
        &self,
        coeff: f64,
        x: &[f64],
        y: &mut [f64],
        active: &[NodeId],
        scratch: &mut FrontierScratch,
    ) -> FrontierStep {
        let _ = active;
        dense_frontier_fallback(self, coeff, x, y, scratch)
    }
}

/// Borrowed or shared ownership of a [`CsrGraph`]. Backends were born
/// borrowing (`&'g CsrGraph`); the reordering layer additionally needs
/// engines that *own* the permuted graph they just built, so backends
/// accept either. One indirection resolved per propagation call — never
/// inside a kernel loop.
pub(crate) enum GraphHandle<'g> {
    /// Caller-owned graph, borrowed for the backend's lifetime.
    Borrowed(&'g CsrGraph),
    /// Backend-(co)owned graph (e.g. built by `with_reordering`).
    Shared(Arc<CsrGraph>),
}

impl GraphHandle<'_> {
    #[inline]
    pub(crate) fn get(&self) -> &CsrGraph {
        match self {
            GraphHandle::Borrowed(g) => g,
            GraphHandle::Shared(g) => g,
        }
    }
}

/// Row-normalized transposed adjacency operator `Ãᵀ` with the per-source
/// `1/outdeg` weights precomputed.
///
/// The propagation `y ← (1−c)·Ãᵀ·x` is implemented as a *gather* over
/// in-edges: each node pulls `x[u]/outdeg(u)` from its in-neighbors `u`.
/// Writes are sequential (good for cache), reads are the random part —
/// which is why the kernel routes through the cache-blocking layer in
/// [`crate::tiling`]: once `x` outgrows L2 (and the graph is dense
/// enough for strip reuse) the gather is strip-mined, bit-identically.
pub struct Transition<'g> {
    graph: GraphHandle<'g>,
    inv_out_deg: Vec<f64>,
    tile: TilePolicy,
    /// Memoized sampled `Auto` tile decisions (the graph is immutable
    /// for this backend's lifetime).
    strips: tiling::StripCache,
}

impl std::fmt::Debug for Transition<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Transition").finish_non_exhaustive()
    }
}

impl<'g> Transition<'g> {
    /// Binds the operator to a graph, precomputing `1/outdeg`.
    pub fn new(graph: &'g CsrGraph) -> Self {
        let inv_out_deg = graph.inv_out_degrees();
        Self {
            graph: GraphHandle::Borrowed(graph),
            inv_out_deg,
            tile: TilePolicy::Auto,
            strips: tiling::StripCache::new(),
        }
    }

    /// Binds the operator to a shared-ownership graph (used by reordered
    /// engines, which own the permuted graph they serve).
    pub fn shared(graph: Arc<CsrGraph>) -> Transition<'static> {
        let inv_out_deg = graph.inv_out_degrees();
        Transition {
            graph: GraphHandle::Shared(graph),
            inv_out_deg,
            tile: TilePolicy::Auto,
            strips: tiling::StripCache::new(),
        }
    }

    /// Overrides the cache-blocking policy (default: the
    /// [`TilePolicy::Auto`] cost model).
    pub fn with_tile_policy(mut self, tile: TilePolicy) -> Self {
        self.tile = tile;
        self
    }

    /// The underlying graph.
    #[inline]
    pub fn graph(&self) -> &CsrGraph {
        self.graph.get()
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.graph.get().n()
    }

    /// `y ← coeff · Ãᵀ·x`. `x` and `y` must both have length `n` and be
    /// distinct buffers.
    pub fn propagate_into(&self, coeff: f64, x: &[f64], y: &mut [f64]) {
        self.propagate_norm(coeff, x, y);
    }

    /// The kernel behind both [`Transition::propagate_into`] and the
    /// fused-residual [`Propagator::propagate_into_norm`].
    fn propagate_norm(&self, coeff: f64, x: &[f64], y: &mut [f64]) -> f64 {
        let g = self.graph.get();
        let n = g.n();
        assert_eq!(x.len(), n, "input vector length mismatch");
        assert_eq!(y.len(), n, "output vector length mismatch");
        let strip = self.strips.resolve(self.tile, g, n, g.m(), 1);
        tiling::gather_range(g, &self.inv_out_deg, coeff, x, y, 0..n as NodeId, strip)
    }

    /// Precomputed `1/outdeg` weights (0.0 for dangling nodes).
    #[inline]
    pub fn inv_out_degrees(&self) -> &[f64] {
        &self.inv_out_deg
    }
}

impl Propagator for Transition<'_> {
    fn n(&self) -> usize {
        Transition::n(self)
    }
    fn propagate_into(&self, coeff: f64, x: &[f64], y: &mut [f64]) {
        Transition::propagate_into(self, coeff, x, y)
    }
    fn propagate_block_into(&self, coeff: f64, x: &ScoreBlock, y: &mut ScoreBlock) {
        let g = self.graph.get();
        let n = g.n();
        assert_eq!(x.n(), n, "input block height mismatch");
        assert_eq!(y.n(), n, "output block height mismatch");
        assert_eq!(x.lanes(), y.lanes(), "lane count mismatch");
        let strip = self.strips.resolve(self.tile, g, n, g.m(), x.lanes());
        tiling::block_gather_range(
            g,
            &self.inv_out_deg,
            coeff,
            x,
            y.data_mut(),
            0..n as NodeId,
            strip,
        );
    }
    fn propagate_into_norm(&self, coeff: f64, x: &[f64], y: &mut [f64]) -> f64 {
        self.propagate_norm(coeff, x, y)
    }
    fn frontier_work(&self, active: &[NodeId]) -> Option<FrontierWork> {
        let g = self.graph.get();
        Some(FrontierWork {
            frontier_edges: frontier::frontier_out_edges(g, active),
            total_edges: g.m(),
        })
    }
    fn propagate_frontier(
        &self,
        coeff: f64,
        x: &[f64],
        y: &mut [f64],
        active: &[NodeId],
        scratch: &mut FrontierScratch,
    ) -> FrontierStep {
        let g = self.graph.get();
        let n = g.n();
        assert_eq!(x.len(), n, "input vector length mismatch");
        assert_eq!(y.len(), n, "output vector length mismatch");
        match frontier::sparse_step(g, g, &self.inv_out_deg, coeff, x, y, active, g.m(), scratch) {
            Some(step) => step,
            // Gather-cost guard fired: one dense step (the frontier has
            // effectively saturated; Auto latches dense on the flag).
            None => dense_frontier_fallback(self, coeff, x, y, scratch),
        }
    }
}

/// Shared dense fallback for native `propagate_frontier` impls whose
/// gather-cost guard fired: runs the backend's dense-with-norm kernel
/// and scans for the support, flagging `went_dense` so
/// [`crate::FrontierPolicy::Auto`] latches.
pub(crate) fn dense_frontier_fallback<P: Propagator + ?Sized>(
    p: &P,
    coeff: f64,
    x: &[f64],
    y: &mut [f64],
    scratch: &mut FrontierScratch,
) -> FrontierStep {
    let residual = p.propagate_into_norm(coeff, x, y);
    let next = scratch.next_active_mut();
    next.clear();
    for (v, &yv) in y.iter().enumerate() {
        if yv != 0.0 {
            next.push(v as NodeId);
        }
    }
    FrontierStep { residual, edge_work: 0, went_dense: true }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpa_graph::CsrGraph;

    #[test]
    fn propagation_splits_mass_over_out_edges() {
        // 0 → {1, 2}: half of x[0] should arrive at each target.
        let g = CsrGraph::from_edges(3, &[(0, 1), (0, 2), (1, 0), (2, 0)]);
        let t = Transition::new(&g);
        let x = vec![1.0, 0.0, 0.0];
        let mut y = vec![0.0; 3];
        t.propagate_into(1.0, &x, &mut y);
        assert_eq!(y, vec![0.0, 0.5, 0.5]);
    }

    #[test]
    fn propagation_conserves_mass_without_dangling() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        assert!(g.dangling_nodes().is_empty());
        let t = Transition::new(&g);
        let x = vec![0.25; 4];
        let mut y = vec![0.0; 4];
        t.propagate_into(1.0, &x, &mut y);
        let total: f64 = y.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coefficient_scales_output() {
        let g = CsrGraph::from_edges(2, &[(0, 1), (1, 0)]);
        let t = Transition::new(&g);
        let x = vec![1.0, 0.0];
        let mut y = vec![0.0; 2];
        t.propagate_into(0.85, &x, &mut y);
        assert_eq!(y, vec![0.0, 0.85]);
    }

    #[test]
    fn dangling_mass_leaks_under_keep_policy() {
        use tpa_graph::{DanglingPolicy, GraphBuilder};
        let g = GraphBuilder::new(2)
            .dangling_policy(DanglingPolicy::Keep)
            .extend_edges([(0, 1)])
            .build();
        let t = Transition::new(&g);
        let x = vec![0.5, 0.5];
        let mut y = vec![0.0; 2];
        t.propagate_into(1.0, &x, &mut y);
        // Node 1 is dangling: its 0.5 disappears.
        assert_eq!(y, vec![0.0, 0.5]);
    }

    #[test]
    fn shared_ownership_matches_borrowed() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let borrowed = Transition::new(&g);
        let shared = Transition::shared(Arc::new(g.clone()));
        let x: Vec<f64> = (0..4).map(|i| i as f64 / 4.0).collect();
        let mut y1 = vec![0.0; 4];
        let mut y2 = vec![0.0; 4];
        borrowed.propagate_into(0.85, &x, &mut y1);
        shared.propagate_into(0.85, &x, &mut y2);
        assert_eq!(y1, y2);
        assert_eq!(shared.graph(), &g);
    }

    #[test]
    fn forced_strip_policy_matches_flat_bitwise() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 3), (2, 0)]);
        let flat = Transition::new(&g).with_tile_policy(TilePolicy::Flat);
        let strip = Transition::new(&g).with_tile_policy(TilePolicy::Strip(2));
        let x: Vec<f64> = (0..5).map(|i| (i as f64 + 1.0) / 7.0).collect();
        let mut y1 = vec![0.0; 5];
        let mut y2 = vec![0.0; 5];
        flat.propagate_into(0.85, &x, &mut y1);
        strip.propagate_into(0.85, &x, &mut y2);
        assert_eq!(y1, y2);
    }
}
