//! The RWR transition operator `Ãᵀ` bound to a graph.

use crate::batch::ScoreBlock;
use tpa_graph::{CsrGraph, NodeId};

/// A propagation backend: anything that can compute the CPI step
/// `y ← coeff·Ãᵀ·x`. The in-memory [`Transition`] is the default; the
/// multi-threaded [`crate::ParallelTransition`] splits destinations over
/// workers; the out-of-core [`crate::offcore::DiskGraph`] streams edges
/// from disk (the paper's "disk-based RWR" future work).
pub trait Propagator {
    /// Number of nodes.
    fn n(&self) -> usize;

    /// `y ← coeff · Ãᵀ·x`; `x` and `y` have length `n`.
    fn propagate_into(&self, coeff: f64, x: &[f64], y: &mut [f64]);

    /// Batched step `Y ← coeff·Ãᵀ·X` over every lane of a
    /// [`ScoreBlock`]. The default runs the scalar kernel lane by lane;
    /// backends override it with fused kernels that share one edge pass
    /// across all lanes. Overrides must stay **bit-identical** to the
    /// default: per destination and lane, contributions are accumulated
    /// in in-neighbor order.
    fn propagate_block_into(&self, coeff: f64, x: &ScoreBlock, y: &mut ScoreBlock) {
        let n = self.n();
        assert_eq!(x.n(), n, "input block height mismatch");
        assert_eq!(y.n(), n, "output block height mismatch");
        assert_eq!(x.lanes(), y.lanes(), "lane count mismatch");
        let mut xl = vec![0.0f64; n];
        let mut yl = vec![0.0f64; n];
        for j in 0..x.lanes() {
            x.copy_lane_into(j, &mut xl);
            self.propagate_into(coeff, &xl, &mut yl);
            y.set_lane(j, &yl);
        }
    }
}

/// Row-normalized transposed adjacency operator `Ãᵀ` with the per-source
/// `1/outdeg` weights precomputed.
///
/// The propagation `y ← (1−c)·Ãᵀ·x` is implemented as a *gather* over
/// in-edges: each node pulls `x[u]/outdeg(u)` from its in-neighbors `u`.
/// Writes are sequential (good for cache), reads are the random part.
pub struct Transition<'g> {
    graph: &'g CsrGraph,
    inv_out_deg: Vec<f64>,
}

impl<'g> Transition<'g> {
    /// Binds the operator to a graph, precomputing `1/outdeg`.
    pub fn new(graph: &'g CsrGraph) -> Self {
        Self { graph, inv_out_deg: graph.inv_out_degrees() }
    }

    /// The underlying graph.
    #[inline]
    pub fn graph(&self) -> &'g CsrGraph {
        self.graph
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// `y ← coeff · Ãᵀ·x`. `x` and `y` must both have length `n` and be
    /// distinct buffers.
    pub fn propagate_into(&self, coeff: f64, x: &[f64], y: &mut [f64]) {
        let n = self.n();
        assert_eq!(x.len(), n, "input vector length mismatch");
        assert_eq!(y.len(), n, "output vector length mismatch");
        for v in 0..n as NodeId {
            let mut acc = 0.0;
            for &u in self.graph.in_neighbors(v) {
                acc += x[u as usize] * self.inv_out_deg[u as usize];
            }
            y[v as usize] = coeff * acc;
        }
    }

    /// Precomputed `1/outdeg` weights (0.0 for dangling nodes).
    #[inline]
    pub fn inv_out_degrees(&self) -> &[f64] {
        &self.inv_out_deg
    }
}

impl Propagator for Transition<'_> {
    fn n(&self) -> usize {
        Transition::n(self)
    }
    fn propagate_into(&self, coeff: f64, x: &[f64], y: &mut [f64]) {
        Transition::propagate_into(self, coeff, x, y)
    }
    fn propagate_block_into(&self, coeff: f64, x: &ScoreBlock, y: &mut ScoreBlock) {
        crate::batch::block_gather(self.graph, &self.inv_out_deg, coeff, x, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpa_graph::CsrGraph;

    #[test]
    fn propagation_splits_mass_over_out_edges() {
        // 0 → {1, 2}: half of x[0] should arrive at each target.
        let g = CsrGraph::from_edges(3, &[(0, 1), (0, 2), (1, 0), (2, 0)]);
        let t = Transition::new(&g);
        let x = vec![1.0, 0.0, 0.0];
        let mut y = vec![0.0; 3];
        t.propagate_into(1.0, &x, &mut y);
        assert_eq!(y, vec![0.0, 0.5, 0.5]);
    }

    #[test]
    fn propagation_conserves_mass_without_dangling() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        assert!(g.dangling_nodes().is_empty());
        let t = Transition::new(&g);
        let x = vec![0.25; 4];
        let mut y = vec![0.0; 4];
        t.propagate_into(1.0, &x, &mut y);
        let total: f64 = y.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coefficient_scales_output() {
        let g = CsrGraph::from_edges(2, &[(0, 1), (1, 0)]);
        let t = Transition::new(&g);
        let x = vec![1.0, 0.0];
        let mut y = vec![0.0; 2];
        t.propagate_into(0.85, &x, &mut y);
        assert_eq!(y, vec![0.0, 0.85]);
    }

    #[test]
    fn dangling_mass_leaks_under_keep_policy() {
        use tpa_graph::{DanglingPolicy, GraphBuilder};
        let g = GraphBuilder::new(2)
            .dangling_policy(DanglingPolicy::Keep)
            .extend_edges([(0, 1)])
            .build();
        let t = Transition::new(&g);
        let x = vec![0.5, 0.5];
        let mut y = vec![0.0; 2];
        t.propagate_into(1.0, &x, &mut y);
        // Node 1 is dangling: its 0.5 disappears.
        assert_eq!(y, vec![0.0, 0.5]);
    }
}
