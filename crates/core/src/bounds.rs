//! Closed-form accuracy bounds for TPA (paper Lemmas 1–3, Theorem 2).
//!
//! All bounds are on the L1 norm of the error of the corresponding part.
//! Table III compares them against measured errors; the measured values
//! sit far below these bounds on block-structured graphs.

/// Lemma 1: `‖r_stranger − r̃_stranger‖₁ ≤ 2(1−c)^T`.
///
/// ```
/// // The paper's Slashdot setting (c = 0.15, T = 15):
/// let b = tpa_core::bounds::stranger_bound(0.15, 15);
/// assert!((b - 0.1747).abs() < 5e-4);
/// ```
pub fn stranger_bound(c: f64, t: usize) -> f64 {
    2.0 * (1.0 - c).powi(t as i32)
}

/// Lemma 3: `‖r_neighbor − r̃_neighbor‖₁ ≤ 2(1−c)^S − 2(1−c)^T`.
pub fn neighbor_bound(c: f64, s: usize, t: usize) -> f64 {
    assert!(s <= t, "S must not exceed T");
    2.0 * (1.0 - c).powi(s as i32) - 2.0 * (1.0 - c).powi(t as i32)
}

/// Theorem 2: `‖r_CPI − r_TPA‖₁ ≤ 2(1−c)^S`.
///
/// ```
/// // Larger S tightens the bound geometrically:
/// use tpa_core::bounds::total_bound;
/// assert!(total_bound(0.15, 10) < total_bound(0.15, 5));
/// assert!((total_bound(0.15, 5) - 0.8874).abs() < 5e-4); // paper Table III
/// ```
pub fn total_bound(c: f64, s: usize) -> f64 {
    2.0 * (1.0 - c).powi(s as i32)
}

/// Smallest `S` whose Theorem-2 bound is below `target` — a principled way
/// to pick the online-phase budget for a desired worst-case accuracy.
pub fn min_s_for_error(c: f64, target: f64) -> usize {
    assert!(target > 0.0 && target < 2.0);
    let s = ((target / 2.0).ln() / (1.0 - c).ln()).ceil();
    (s as usize).max(1)
}

/// Mass a CPI run can still accumulate after an interim vector of L1
/// norm `residual`: each further step is `(1−c)`-substochastic
/// (`‖x(i+1)‖₁ ≤ (1−c)·‖x(i)‖₁`, with equality on dangling-free
/// graphs), so the un-accumulated tail is bounded by the geometric sum
/// `residual · Σ_{s≥1} (1−c)^s = residual·(1−c)/c`. This is the live
/// counterpart of Lemma 2's closed-form tails — the bound the bounded
/// top-k path uses to cap how far any node's score can still climb.
pub fn remaining_mass_bound(c: f64, residual: f64) -> f64 {
    residual * (1.0 - c) / c
}

/// [`remaining_mass_bound`] truncated to `iters` further iterations —
/// the family-window case: with the sweep capped at `S − 1` propagations
/// (TPA's family part), only `Σ_{s=1}^{iters} (1−c)^s =
/// (1−c)(1 − (1−c)^iters)/c` of the geometric tail can still land.
/// `iters = 0` (the window's last iteration) returns exactly `0.0`.
pub fn windowed_mass_bound(c: f64, residual: f64, iters: usize) -> f64 {
    let d = 1.0 - c;
    residual * d * (1.0 - d.powi(iters as i32)) / c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_compose() {
        // neighbor + stranger bounds must sum to the total bound.
        let (c, s, t) = (0.15, 5, 10);
        let sum = neighbor_bound(c, s, t) + stranger_bound(c, t);
        assert!((sum - total_bound(c, s)).abs() < 1e-15);
    }

    #[test]
    fn paper_table3_bound_values() {
        // Table III, S=5, T=15 (Slashdot row): NA bound 0.7127, SA 0.1747,
        // total 0.8874.
        let c = 0.15;
        assert!((neighbor_bound(c, 5, 15) - 0.7127).abs() < 5e-4);
        assert!((stranger_bound(c, 15) - 0.1747).abs() < 5e-4);
        assert!((total_bound(c, 5) - 0.8874).abs() < 5e-4);
    }

    #[test]
    fn paper_table3_twitter_row() {
        // Twitter: S=4, T=6 → NA 0.2897, SA 0.7543, total 1.0440.
        let c = 0.15;
        assert!((neighbor_bound(c, 4, 6) - 0.2897).abs() < 5e-4);
        assert!((stranger_bound(c, 6) - 0.7543).abs() < 5e-4);
        assert!((total_bound(c, 4) - 1.0440).abs() < 5e-4);
    }

    #[test]
    fn bounds_monotone_in_s() {
        for s in 1..20 {
            assert!(total_bound(0.15, s + 1) < total_bound(0.15, s));
        }
    }

    #[test]
    fn min_s_inverts_total_bound() {
        for s in 2..20 {
            let bound = total_bound(0.15, s);
            assert_eq!(min_s_for_error(0.15, bound * 1.0000001), s);
        }
    }

    #[test]
    fn stranger_bound_vanishes_for_large_t() {
        assert!(stranger_bound(0.15, 200) < 1e-13);
    }
}
