//! Batched multi-seed queries.
//!
//! Serving scenarios ("Who to Follow" for every active user) issue many
//! RWR queries against one graph. Propagating a *block* of B score vectors
//! in one sweep turns B random-access passes over the in-edges into one:
//! each edge is read once per iteration and updates B lanes contiguously.
//! Results are bitwise identical to B independent queries.

use crate::{Transition, TpaIndex};
use tpa_graph::NodeId;

/// A block of `B` interleaved score vectors (`lane j` of node `v` lives at
/// `v·B + j`).
pub struct ScoreBlock {
    n: usize,
    lanes: usize,
    data: Vec<f64>,
}

impl ScoreBlock {
    /// Zeroed block for `n` nodes × `lanes` vectors.
    pub fn zeros(n: usize, lanes: usize) -> Self {
        Self { n, lanes, data: vec![0.0; n * lanes] }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Extracts lane `j` as an ordinary vector.
    pub fn lane(&self, j: usize) -> Vec<f64> {
        assert!(j < self.lanes);
        (0..self.n).map(|v| self.data[v * self.lanes + j]).collect()
    }

    #[inline]
    fn row(&self, v: usize) -> &[f64] {
        &self.data[v * self.lanes..(v + 1) * self.lanes]
    }

    #[inline]
    fn row_mut(&mut self, v: usize) -> &mut [f64] {
        &mut self.data[v * self.lanes..(v + 1) * self.lanes]
    }
}

/// One batched propagation step `Y ← coeff·Ãᵀ·X` over all lanes.
pub fn propagate_block(t: &Transition<'_>, coeff: f64, x: &ScoreBlock, y: &mut ScoreBlock) {
    let n = t.n();
    assert_eq!(x.n, n);
    assert_eq!(y.n, n);
    assert_eq!(x.lanes, y.lanes);
    let inv = t.inv_out_degrees();
    let graph = t.graph();
    for v in 0..n as NodeId {
        let yrow = y.row_mut(v as usize);
        yrow.iter_mut().for_each(|e| *e = 0.0);
        for &u in graph.in_neighbors(v) {
            let w = inv[u as usize];
            if w == 0.0 {
                continue;
            }
            let xrow = x.row(u as usize);
            for (yj, xj) in yrow.iter_mut().zip(xrow) {
                *yj += xj * w;
            }
        }
        for e in yrow.iter_mut() {
            *e *= coeff;
        }
    }
}

/// Batched CPI over a window (one lane per seed); mirrors [`crate::cpi`]
/// but shares every edge traversal across the batch.
pub fn cpi_batch(
    t: &Transition<'_>,
    seeds: &[NodeId],
    cfg: &crate::CpiConfig,
    start: usize,
    end: Option<usize>,
) -> ScoreBlock {
    cfg.validate();
    let n = t.n();
    let lanes = seeds.len();
    assert!(lanes > 0, "need at least one seed");
    let mut x = ScoreBlock::zeros(n, lanes);
    for (j, &s) in seeds.iter().enumerate() {
        assert!((s as usize) < n, "seed {s} out of range");
        x.data[s as usize * lanes + j] = cfg.c;
    }
    let mut next = ScoreBlock::zeros(n, lanes);
    let mut acc = ScoreBlock::zeros(n, lanes);

    if start == 0 {
        for (a, b) in acc.data.iter_mut().zip(&x.data) {
            *a += b;
        }
    }
    let hard_end = end.unwrap_or(usize::MAX);
    let mut i = 0usize;
    // All lanes share ‖x(i)‖₁ = c(1−c)^i, so one residual drives them all.
    let mut residual: f64 = x.data.iter().map(|v| v.abs()).sum::<f64>() / lanes as f64;
    while residual >= cfg.eps && i < hard_end && i < cfg.max_iters {
        i += 1;
        propagate_block(t, 1.0 - cfg.c, &x, &mut next);
        std::mem::swap(&mut x.data, &mut next.data);
        if i >= start {
            for (a, b) in acc.data.iter_mut().zip(&x.data) {
                *a += b;
            }
        }
        residual = x.data.iter().map(|v| v.abs()).sum::<f64>() / lanes as f64;
    }
    acc
}

impl TpaIndex {
    /// **Algorithm 3, batched**: answers every seed in one family-sweep.
    /// Bitwise identical to calling [`TpaIndex::query`] per seed, with one
    /// edge pass per CPI iteration instead of `seeds.len()`.
    pub fn query_batch(&self, t: &Transition<'_>, seeds: &[NodeId]) -> Vec<Vec<f64>> {
        assert_eq!(t.n(), self.stranger().len(), "index/graph mismatch");
        let params = *self.params();
        let family = cpi_batch(t, seeds, &params.cpi_config(), 0, Some(params.s - 1));
        let scale = params.neighbor_scale();
        (0..seeds.len())
            .map(|j| {
                let mut lane = family.lane(j);
                for (r, &st) in lane.iter_mut().zip(self.stranger()) {
                    *r += scale * *r + st;
                }
                lane
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cpi, CpiConfig, SeedSet, TpaParams};
    use tpa_graph::gen::{lfr_lite, LfrConfig};
    use tpa_graph::CsrGraph;

    fn test_graph() -> CsrGraph {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(97);
        lfr_lite(LfrConfig { n: 300, m: 2400, ..Default::default() }, &mut rng).graph
    }

    #[test]
    fn batch_cpi_matches_individual_runs() {
        let g = test_graph();
        let t = Transition::new(&g);
        let cfg = CpiConfig::default();
        let seeds = [3u32, 100, 250];
        let block = cpi_batch(&t, &seeds, &cfg, 0, Some(6));
        for (j, &s) in seeds.iter().enumerate() {
            let single = cpi(&t, &SeedSet::single(s), &cfg, 0, Some(6)).scores;
            assert_eq!(block.lane(j), single, "lane {j}");
        }
    }

    #[test]
    fn batch_query_matches_single_queries() {
        let g = test_graph();
        let t = Transition::new(&g);
        let index = TpaIndex::preprocess(&g, TpaParams::new(5, 10));
        let seeds = [0u32, 7, 42, 299];
        let batch = index.query_batch(&t, &seeds);
        for (j, &s) in seeds.iter().enumerate() {
            assert_eq!(batch[j], index.query(&t, s), "seed {s}");
        }
    }

    #[test]
    fn single_lane_batch_equals_plain_query() {
        let g = test_graph();
        let t = Transition::new(&g);
        let index = TpaIndex::preprocess(&g, TpaParams::new(4, 9));
        assert_eq!(index.query_batch(&t, &[11])[0], index.query(&t, 11));
    }

    #[test]
    fn lane_extraction_roundtrip() {
        let mut b = ScoreBlock::zeros(4, 3);
        b.data[1 * 3 + 2] = 5.0;
        b.data[3 * 3 + 0] = 7.0;
        assert_eq!(b.lane(2), vec![0.0, 5.0, 0.0, 0.0]);
        assert_eq!(b.lane(0), vec![0.0, 0.0, 0.0, 7.0]);
        assert_eq!(b.lanes(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn rejects_empty_batch() {
        let g = test_graph();
        let t = Transition::new(&g);
        cpi_batch(&t, &[], &CpiConfig::default(), 0, None);
    }
}
