//! Batched multi-seed queries.
//!
//! Serving scenarios ("Who to Follow" for every active user) issue many
//! RWR queries against one graph. Propagating a *block* of B score vectors
//! in one sweep turns B random-access passes over the in-edges into one:
//! each edge is read once per iteration and updates B lanes contiguously.
//! Results are bitwise identical to B independent queries.
//!
//! The block step is a [`Propagator`] method
//! ([`Propagator::propagate_block_into`]), so [`cpi_batch`] and
//! [`TpaIndex::query_batch_on`] run unchanged over the sequential
//! [`Transition`], the multi-threaded [`crate::ParallelTransition`], and
//! the out-of-core [`crate::offcore::DiskGraph`] — each with its own
//! fused kernel.

use crate::{Propagator, TpaIndex, Transition};
use tpa_graph::NodeId;

/// A block of `B` interleaved score vectors (`lane j` of node `v` lives at
/// `v·B + j`).
pub struct ScoreBlock {
    n: usize,
    lanes: usize,
    data: Vec<f64>,
}

impl std::fmt::Debug for ScoreBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScoreBlock")
            .field("n", &self.n)
            .field("lanes", &self.lanes)
            .finish_non_exhaustive()
    }
}

impl ScoreBlock {
    /// Zeroed block for `n` nodes × `lanes` vectors.
    pub fn zeros(n: usize, lanes: usize) -> Self {
        Self { n, lanes, data: vec![0.0; n * lanes] }
    }

    /// Number of nodes (rows).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Extracts lane `j` as an ordinary vector.
    pub fn lane(&self, j: usize) -> Vec<f64> {
        let mut out = vec![0.0; self.n];
        self.copy_lane_into(j, &mut out);
        out
    }

    /// Copies lane `j` into `out` (length `n`).
    pub fn copy_lane_into(&self, j: usize, out: &mut [f64]) {
        assert!(j < self.lanes);
        assert_eq!(out.len(), self.n);
        for (v, o) in out.iter_mut().enumerate() {
            *o = self.data[v * self.lanes + j];
        }
    }

    /// Overwrites lane `j` from `src` (length `n`).
    pub fn set_lane(&mut self, j: usize, src: &[f64]) {
        assert!(j < self.lanes);
        assert_eq!(src.len(), self.n);
        for (v, &s) in src.iter().enumerate() {
            self.data[v * self.lanes + j] = s;
        }
    }

    /// Unpacks every lane in **one** row-major pass over the block.
    /// Equivalent to `(0..lanes).map(|j| self.lane(j))`, but that form
    /// re-streams the whole interleaved block once per lane (`O(n·B²)`
    /// memory traffic — it dominates wide batches); this is `O(n·B)`.
    pub fn into_lanes(self) -> Vec<Vec<f64>> {
        let mut out: Vec<Vec<f64>> = (0..self.lanes).map(|_| vec![0.0; self.n]).collect();
        for (v, row) in self.data.chunks_exact(self.lanes.max(1)).enumerate() {
            for (o, &r) in out.iter_mut().zip(row) {
                o[v] = r;
            }
        }
        out
    }

    /// The interleaved backing storage (`node v`'s row at `v·lanes..`).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable interleaved backing storage (for fused backend kernels).
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Row of node `v` (all lanes), used by the fused gather kernels.
    #[inline]
    pub(crate) fn row(&self, v: usize) -> &[f64] {
        &self.data[v * self.lanes..(v + 1) * self.lanes]
    }
}

/// One batched propagation step `Y ← coeff·Ãᵀ·X` over all lanes, on any
/// backend (dispatches to the backend's fused block kernel).
pub fn propagate_block<P: Propagator + ?Sized>(
    t: &P,
    coeff: f64,
    x: &ScoreBlock,
    y: &mut ScoreBlock,
) {
    t.propagate_block_into(coeff, x, y);
}

/// Batched CPI over a window (one lane per seed); mirrors [`crate::cpi`]
/// but shares every edge traversal across the batch. Runs on any
/// [`Propagator`] backend.
pub fn cpi_batch<P: Propagator + ?Sized>(
    t: &P,
    seeds: &[NodeId],
    cfg: &crate::CpiConfig,
    start: usize,
    end: Option<usize>,
) -> ScoreBlock {
    cpi_batch_guarded(t, seeds, cfg, start, end, || false)
}

/// [`cpi_batch`] with an early-stop probe consulted before every fused
/// propagation step — the batched twin of the sweep-guard hook on the
/// scalar path, so a cancelled or deadline-expired batch request stops
/// at an iteration boundary instead of streaming the whole window. A
/// stopped run returns the partial window sum; the caller that
/// requested the stop discards it.
pub(crate) fn cpi_batch_guarded<P: Propagator + ?Sized>(
    t: &P,
    seeds: &[NodeId],
    cfg: &crate::CpiConfig,
    start: usize,
    end: Option<usize>,
    mut stop: impl FnMut() -> bool,
) -> ScoreBlock {
    cfg.validate();
    let n = t.n();
    let lanes = seeds.len();
    assert!(lanes > 0, "need at least one seed");
    let mut x = ScoreBlock::zeros(n, lanes);
    for (j, &s) in seeds.iter().enumerate() {
        assert!((s as usize) < n, "seed {s} out of range");
        x.data[s as usize * lanes + j] = cfg.c;
    }
    let mut next = ScoreBlock::zeros(n, lanes);
    let mut acc = ScoreBlock::zeros(n, lanes);

    // One fused pass per iteration accumulates the window sum *and* the
    // stopping residual — the blocks are the working set, so every
    // avoided re-stream matters at serving batch widths.
    // All lanes share ‖x(i)‖₁ = c(1−c)^i, so one residual drives them all.
    let accumulate = |acc: &mut ScoreBlock, x: &ScoreBlock| -> f64 {
        let mut norm = 0.0;
        for (a, &b) in acc.data.iter_mut().zip(&x.data) {
            *a += b;
            norm += b.abs();
        }
        norm / x.lanes as f64
    };
    let mut residual = if start == 0 {
        accumulate(&mut acc, &x)
    } else {
        x.data.iter().map(|v| v.abs()).sum::<f64>() / lanes as f64
    };
    let hard_end = end.unwrap_or(usize::MAX);
    let mut i = 0usize;
    while residual >= cfg.eps && i < hard_end && i < cfg.max_iters && !stop() {
        i += 1;
        t.propagate_block_into(1.0 - cfg.c, &x, &mut next);
        std::mem::swap(&mut x.data, &mut next.data);
        residual = if i >= start {
            accumulate(&mut acc, &x)
        } else {
            x.data.iter().map(|v| v.abs()).sum::<f64>() / lanes as f64
        };
    }
    acc
}

impl TpaIndex {
    /// **Algorithm 3, batched**: answers every seed in one family-sweep.
    /// Bitwise identical to calling [`TpaIndex::query`] per seed, with one
    /// edge pass per CPI iteration instead of `seeds.len()`.
    pub fn query_batch(&self, t: &Transition<'_>, seeds: &[NodeId]) -> Vec<Vec<f64>> {
        self.query_batch_on(t, seeds)
    }

    /// [`TpaIndex::query_batch`] over any propagation backend (parallel,
    /// out-of-core, …) via its fused block kernel.
    pub fn query_batch_on<P: Propagator + ?Sized>(&self, t: &P, seeds: &[NodeId]) -> Vec<Vec<f64>> {
        // Same admission guard as the scalar paths, rendered through
        // [`crate::TpaError`] so the message is uniform everywhere.
        // lint:allow(panic-freedom, "documented panicking convenience mirroring TpaIndex::query; the concurrent serving path goes through QueryEngine::execute")
        self.check_backend(t).unwrap_or_else(|e| panic!("{e}"));
        let params = *self.params();
        let family = cpi_batch(t, seeds, &params.cpi_config(), 0, Some(params.s - 1));
        let scale = params.neighbor_scale();
        // Single row-major pass: unpack each family row and fold in the
        // neighbor rescale + stranger term lane by lane.
        let lanes = seeds.len();
        let n = family.n();
        let mut out: Vec<Vec<f64>> = (0..lanes).map(|_| vec![0.0; n]).collect();
        for (v, (row, &st)) in family.data.chunks_exact(lanes).zip(self.stranger()).enumerate() {
            for (o, &f) in out.iter_mut().zip(row) {
                // Same association as the scalar path's `r += scale·r + s`
                // (bitwise-identical results require identical rounding).
                o[v] = f + (scale * f + st);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cpi, CpiConfig, ParallelTransition, SeedSet, TpaParams};
    use tpa_graph::gen::{lfr_lite, LfrConfig};
    use tpa_graph::CsrGraph;

    fn test_graph() -> CsrGraph {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(97);
        lfr_lite(LfrConfig { n: 300, m: 2400, ..Default::default() }, &mut rng).graph
    }

    #[test]
    fn batch_cpi_matches_individual_runs() {
        let g = test_graph();
        let t = Transition::new(&g);
        let cfg = CpiConfig::default();
        let seeds = [3u32, 100, 250];
        let block = cpi_batch(&t, &seeds, &cfg, 0, Some(6));
        for (j, &s) in seeds.iter().enumerate() {
            let single = cpi(&t, &SeedSet::single(s), &cfg, 0, Some(6)).scores;
            assert_eq!(block.lane(j), single, "lane {j}");
        }
    }

    #[test]
    fn batch_cpi_identical_across_backends() {
        let g = test_graph();
        let cfg = CpiConfig::default();
        let seeds = [1u32, 42, 160, 299];
        let seq = cpi_batch(&Transition::new(&g), &seeds, &cfg, 0, Some(8));
        for threads in [2usize, 5] {
            let par = cpi_batch(&ParallelTransition::new(&g, threads), &seeds, &cfg, 0, Some(8));
            assert_eq!(seq.data(), par.data(), "threads = {threads}");
        }
    }

    #[test]
    fn default_block_kernel_matches_fused() {
        // The lane-at-a-time default (used by backends without a fused
        // kernel) must be bit-identical to the fused in-memory kernel.
        struct Plain<'g>(Transition<'g>);
        impl Propagator for Plain<'_> {
            fn n(&self) -> usize {
                self.0.n()
            }
            fn propagate_into(&self, coeff: f64, x: &[f64], y: &mut [f64]) {
                self.0.propagate_into(coeff, x, y);
            }
            // No propagate_block_into override: exercises the default.
        }
        let g = test_graph();
        let cfg = CpiConfig::default();
        let seeds = [7u32, 99, 288];
        let fused = cpi_batch(&Transition::new(&g), &seeds, &cfg, 0, Some(5));
        let plain = cpi_batch(&Plain(Transition::new(&g)), &seeds, &cfg, 0, Some(5));
        assert_eq!(fused.data(), plain.data());
    }

    #[test]
    fn batch_query_matches_single_queries() {
        let g = test_graph();
        let t = Transition::new(&g);
        let index = TpaIndex::preprocess(&g, TpaParams::new(5, 10));
        let seeds = [0u32, 7, 42, 299];
        let batch = index.query_batch(&t, &seeds);
        for (j, &s) in seeds.iter().enumerate() {
            assert_eq!(batch[j], index.query(&t, s), "seed {s}");
        }
    }

    #[test]
    fn single_lane_batch_equals_plain_query() {
        let g = test_graph();
        let t = Transition::new(&g);
        let index = TpaIndex::preprocess(&g, TpaParams::new(4, 9));
        assert_eq!(index.query_batch(&t, &[11])[0], index.query(&t, 11));
    }

    #[test]
    fn lane_extraction_roundtrip() {
        let mut b = ScoreBlock::zeros(4, 3);
        b.data[3 + 2] = 5.0;
        b.data[3 * 3] = 7.0;
        assert_eq!(b.lane(2), vec![0.0, 5.0, 0.0, 0.0]);
        assert_eq!(b.lane(0), vec![0.0, 0.0, 0.0, 7.0]);
        assert_eq!(b.lanes(), 3);
        let mut out = vec![0.0; 4];
        b.copy_lane_into(2, &mut out);
        assert_eq!(out, vec![0.0, 5.0, 0.0, 0.0]);
        b.set_lane(1, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(b.lane(1), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn rejects_empty_batch() {
        let g = test_graph();
        let t = Transition::new(&g);
        cpi_batch(&t, &[], &CpiConfig::default(), 0, None);
    }
}
