//! The single-owner `QueryEngine` serving shim.
//!
//! [`QueryEngine`] predates the concurrent serving layer: it owns one
//! propagation backend and an optional [`TpaIndex`] and executes typed
//! requests — single-seed, multi-seed batched (lane tiles share one edge
//! pass per CPI iteration through the backend's fused block kernel),
//! indexed (TPA online phase) or exact (full CPI), with optional top-k
//! via partial selection.
//!
//! Since the [`crate::RwrService`] redesign it is a **thin shim over a
//! single-owner [`Snapshot`]**: every query delegates to
//! [`Snapshot::run`], so the engine and the concurrent service answer
//! bit-identically by construction, and improvements to the snapshot
//! execution path land in both. Keep using `QueryEngine` for
//! single-threaded tools (CLI subcommands, benches, replay loops) and
//! borrow-friendly call sites; reach for
//! [`crate::ServiceBuilder`] / [`crate::RwrService`] when queries and
//! updates run on different threads.
//!
//! Failures surface as [`TpaError`] from [`QueryEngine::execute`] /
//! [`QueryEngine::submit`] / [`QueryEngine::apply_updates`]; the
//! infallible conveniences ([`QueryEngine::query`], …) panic with the
//! same rendered message.

use crate::dynamic::{DynamicTransition, MaintenanceMode, SourceDelta, UpdateDelta};
use crate::frontier::{FrontierScratch, FrontierStep, FrontierWork};
use crate::offcore::DiskGraph;
use crate::patch::PatchedTransition;
use crate::service::{map_updates, QueryResponse, Snapshot};
use crate::{
    CpiConfig, FrontierPolicy, ParallelTransition, Propagator, QueryRequest, TilePolicy, TpaError,
    TpaIndex, TpaParams, Transition,
};
use std::collections::HashMap;
use std::sync::Arc;
use tpa_graph::{
    reorder, CsrGraph, DynamicGraph, EdgeUpdate, NodeId, Permutation, ReorderStrategy,
};

/// Compatibility alias from the pre-service API: a `QueryPlan` *is* a
/// [`QueryRequest`] (same constructors, same builder methods), so
/// existing call sites compile unchanged.
pub type QueryPlan = QueryRequest;

// These types lived in this module before the service redesign;
// re-export them so `tpa_core::engine::…` paths keep compiling.
pub use crate::service::{ExecMode, QueryResult};

/// A propagation backend the engine can own: sequential in-memory,
/// multi-threaded in-memory, streaming from disk, or a mutable
/// delta-overlay graph.
pub enum EngineBackend<'g> {
    /// Single-threaded in-memory gather ([`Transition`]).
    Sequential(Transition<'g>),
    /// Multi-threaded in-memory gather ([`ParallelTransition`]).
    Parallel(ParallelTransition<'g>),
    /// Out-of-core edge streaming ([`DiskGraph`]), `O(n)` memory.
    OutOfCore(DiskGraph),
    /// Mutable delta-overlay graph ([`DynamicTransition`]); accepts
    /// update batches via [`QueryEngine::apply_updates`]. Boxed: the
    /// overlay owns its graph and patch maps, far larger than the other
    /// variants' thin handles.
    Dynamic(Box<DynamicTransition>),
    /// Immutable copy-on-write patch snapshot ([`PatchedTransition`]):
    /// a base CSR shared by `Arc` plus the merged overlay delta, frozen
    /// at one epoch. This is what [`crate::RwrService`] publishes for
    /// dynamic sources — assembling one costs `O(batch)`, not the
    /// `O(n + m)` of a full CSR rebuild.
    Patched(PatchedTransition),
}

impl std::fmt::Debug for EngineBackend<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "EngineBackend({})", self.name())
    }
}

impl EngineBackend<'_> {
    /// Short human-readable backend name (for logs and bench tables).
    pub fn name(&self) -> &'static str {
        match self {
            EngineBackend::Sequential(_) => "sequential",
            EngineBackend::Parallel(_) => "parallel",
            EngineBackend::OutOfCore(_) => "out-of-core",
            EngineBackend::Dynamic(_) => "dynamic",
            EngineBackend::Patched(_) => "patched",
        }
    }
}

impl Propagator for EngineBackend<'_> {
    fn n(&self) -> usize {
        match self {
            EngineBackend::Sequential(t) => Propagator::n(t),
            EngineBackend::Parallel(t) => t.n(),
            EngineBackend::OutOfCore(d) => Propagator::n(d),
            EngineBackend::Dynamic(t) => Propagator::n(t.as_ref()),
            EngineBackend::Patched(t) => Propagator::n(t),
        }
    }

    fn propagate_into(&self, coeff: f64, x: &[f64], y: &mut [f64]) {
        match self {
            EngineBackend::Sequential(t) => Propagator::propagate_into(t, coeff, x, y),
            EngineBackend::Parallel(t) => t.propagate_into(coeff, x, y),
            EngineBackend::OutOfCore(d) => Propagator::propagate_into(d, coeff, x, y),
            EngineBackend::Dynamic(t) => Propagator::propagate_into(t.as_ref(), coeff, x, y),
            EngineBackend::Patched(t) => Propagator::propagate_into(t, coeff, x, y),
        }
    }

    fn propagate_block_into(
        &self,
        coeff: f64,
        x: &crate::batch::ScoreBlock,
        y: &mut crate::batch::ScoreBlock,
    ) {
        match self {
            EngineBackend::Sequential(t) => t.propagate_block_into(coeff, x, y),
            EngineBackend::Parallel(t) => t.propagate_block_into(coeff, x, y),
            EngineBackend::OutOfCore(d) => Propagator::propagate_block_into(d, coeff, x, y),
            EngineBackend::Dynamic(t) => Propagator::propagate_block_into(t.as_ref(), coeff, x, y),
            EngineBackend::Patched(t) => Propagator::propagate_block_into(t, coeff, x, y),
        }
    }

    // The frontier entry points forward to the wrapped backend so its
    // native kernels (not the trait defaults) serve engine plans.

    fn propagate_into_norm(&self, coeff: f64, x: &[f64], y: &mut [f64]) -> f64 {
        match self {
            EngineBackend::Sequential(t) => Propagator::propagate_into_norm(t, coeff, x, y),
            EngineBackend::Parallel(t) => t.propagate_into_norm(coeff, x, y),
            EngineBackend::OutOfCore(d) => Propagator::propagate_into_norm(d, coeff, x, y),
            EngineBackend::Dynamic(t) => Propagator::propagate_into_norm(t.as_ref(), coeff, x, y),
            EngineBackend::Patched(t) => Propagator::propagate_into_norm(t, coeff, x, y),
        }
    }

    fn frontier_work(&self, active: &[NodeId]) -> Option<FrontierWork> {
        match self {
            EngineBackend::Sequential(t) => Propagator::frontier_work(t, active),
            EngineBackend::Parallel(t) => t.frontier_work(active),
            EngineBackend::OutOfCore(d) => Propagator::frontier_work(d, active),
            EngineBackend::Dynamic(t) => Propagator::frontier_work(t.as_ref(), active),
            EngineBackend::Patched(t) => Propagator::frontier_work(t, active),
        }
    }

    fn propagate_frontier(
        &self,
        coeff: f64,
        x: &[f64],
        y: &mut [f64],
        active: &[NodeId],
        scratch: &mut FrontierScratch,
    ) -> FrontierStep {
        match self {
            EngineBackend::Sequential(t) => {
                Propagator::propagate_frontier(t, coeff, x, y, active, scratch)
            }
            EngineBackend::Parallel(t) => t.propagate_frontier(coeff, x, y, active, scratch),
            EngineBackend::OutOfCore(d) => {
                Propagator::propagate_frontier(d, coeff, x, y, active, scratch)
            }
            EngineBackend::Dynamic(t) => {
                Propagator::propagate_frontier(t.as_ref(), coeff, x, y, active, scratch)
            }
            EngineBackend::Patched(t) => {
                Propagator::propagate_frontier(t, coeff, x, y, active, scratch)
            }
        }
    }
}

/// When is an attached [`TpaIndex`] too stale to keep serving?
///
/// The engine accumulates the relative operator drift
/// `Σ ‖ΔÃ[:,u]‖₁ / n` across update batches (a proxy for the L1 error
/// the drift induces in the index's stranger vector — amplified by at
/// most `(1−c)/c` through the CPI tail). Past `threshold` the index is
/// *stale*: with `auto_refresh` the engine re-preprocesses on the spot
/// (inside [`QueryEngine::apply_updates`]); otherwise it keeps serving
/// and flags the caller, who decides when to run
/// [`QueryEngine::refresh_index`].
#[derive(Clone, Copy, Debug)]
pub struct IndexStalenessPolicy {
    /// Accumulated relative drift that marks the index stale.
    pub threshold: f64,
    /// Re-preprocess inside `apply_updates` when stale (vs. only flag).
    pub auto_refresh: bool,
}

impl Default for IndexStalenessPolicy {
    /// Flag-only, at 5% accumulated relative operator drift.
    fn default() -> Self {
        Self { threshold: 0.05, auto_refresh: false }
    }
}

impl IndexStalenessPolicy {
    /// Validates the policy for admission paths: the threshold must be a
    /// positive (possibly infinite, never NaN) drift bound.
    pub fn check(&self) -> Result<(), TpaError> {
        // NaN must fail too, so test "positive" directly.
        if self.threshold.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(TpaError::InvalidConfig(format!(
                "staleness threshold must be positive, got {}",
                self.threshold
            )));
        }
        Ok(())
    }
}

/// What one [`QueryEngine::apply_updates`] call did.
#[derive(Clone, Debug)]
pub struct UpdateReport {
    /// The captured delta (feed to [`crate::ScoreCache::refresh`]).
    pub delta: UpdateDelta,
    /// Accumulated relative operator drift since the index was last
    /// (re)built. 0.0 when no index is attached.
    pub accumulated_drift: f64,
    /// True if the attached index is past the staleness threshold (and
    /// was not auto-refreshed).
    pub index_stale: bool,
    /// True if this call re-preprocessed the attached index.
    pub index_refreshed: bool,
}

/// The single-owner serving shim: one [`Snapshot`] plus writer-side
/// staleness accounting. See the module docs.
pub struct QueryEngine<'g> {
    snap: Snapshot<'g>,
    staleness: IndexStalenessPolicy,
    accumulated_drift: f64,
    /// First-occurrence column deltas since the index was last
    /// (re)built or patched — the telescoped `Ã_old → Ã_now` change per
    /// source node, fuel for [`QueryEngine::patch_index`].
    index_deltas: HashMap<NodeId, SourceDelta>,
    /// Optional admission gate in front of [`QueryEngine::submit`] —
    /// the same bounded-concurrency/deadline/shed semantics as
    /// [`crate::RwrService::submit`] (see
    /// [`QueryEngine::with_admission`]). `None` admits unconditionally.
    admission: Option<crate::admission::AdmissionGate>,
}

impl std::fmt::Debug for QueryEngine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryEngine").field("backend", &self.snap.backend).finish_non_exhaustive()
    }
}

/// Default lane-tile width for batched plans (see
/// [`QueryEngine::with_lane_tile`]): wide enough to amortize the edge
/// pass, narrow enough that the three working blocks
/// (`x`/`next`/`acc` ≈ `3·n·tile·8` bytes) stay resident in a ~2 MB
/// private L2 for the bench-scale graphs.
pub const DEFAULT_LANE_TILE: usize = 8;

impl<'g> QueryEngine<'g> {
    /// Engine over the single-threaded in-memory backend.
    pub fn sequential(graph: &'g CsrGraph) -> Self {
        Self::from_backend(EngineBackend::Sequential(Transition::new(graph)))
    }

    /// Engine over the multi-threaded in-memory backend; `threads = 0`
    /// means "use available parallelism".
    pub fn parallel(graph: &'g CsrGraph, threads: usize) -> Self {
        let t = if threads == 0 {
            ParallelTransition::with_default_threads(graph)
        } else {
            ParallelTransition::new(graph, threads)
        };
        Self::from_backend(EngineBackend::Parallel(t))
    }

    /// Engine streaming a disk-resident graph (`O(n)` memory).
    pub fn out_of_core(disk: DiskGraph) -> QueryEngine<'static> {
        QueryEngine::from_backend(EngineBackend::OutOfCore(disk))
    }

    /// Engine over a mutable delta-overlay graph: every plan kind runs
    /// unchanged while [`QueryEngine::apply_updates`] evolves the graph
    /// in place.
    pub fn dynamic(graph: DynamicGraph) -> QueryEngine<'static> {
        QueryEngine::from_backend(EngineBackend::Dynamic(Box::new(DynamicTransition::new(graph))))
    }

    /// Engine over a mutable delta-overlay graph with destination-range
    /// worker threads (`0` = available parallelism): both scaling axes —
    /// streaming updates and multi-core propagation — composed.
    pub fn dynamic_parallel(graph: DynamicGraph, threads: usize) -> QueryEngine<'static> {
        QueryEngine::from_backend(EngineBackend::Dynamic(Box::new(
            DynamicTransition::new(graph).with_threads(threads),
        )))
    }

    /// Engine over an explicit backend.
    pub fn from_backend(backend: EngineBackend<'g>) -> Self {
        QueryEngine {
            snap: Snapshot::new(backend),
            staleness: IndexStalenessPolicy::default(),
            accumulated_drift: 0.0,
            index_deltas: HashMap::new(),
            admission: None,
        }
    }

    /// The engine's internal snapshot: the immutable view every query
    /// runs against. Single-seed/batched/top-k execution is literally
    /// [`Snapshot::run`], so engine answers are bit-identical to a
    /// [`crate::RwrService`] serving the same frozen graph.
    pub fn snapshot(&self) -> &Snapshot<'g> {
        &self.snap
    }

    /// Sets the [`FrontierPolicy`] for scalar (single-seed) plans — the
    /// default is [`FrontierPolicy::Auto`], which runs the sparse
    /// frontier kernel while a seed's neighborhood is small and latches
    /// onto the dense kernels once it saturates. Any policy is bitwise
    /// invisible; only latency changes. Batched lanes always use the
    /// dense fused block kernels (frontier-aware batching is future
    /// work). A plan-level [`QueryRequest::with_frontier`] overrides this.
    pub fn with_frontier(mut self, policy: FrontierPolicy) -> Self {
        self.snap.frontier = policy;
        self
    }

    /// The engine-level frontier policy.
    pub fn frontier(&self) -> FrontierPolicy {
        self.snap.frontier
    }

    /// Relabels the served graph for cache locality with `strategy` (see
    /// [`tpa_graph::reorder`]): the permuted graph is built once here,
    /// and from then on reordering is transparent — seeds map in, scores
    /// and rankings map back out, updates to a dynamic backend are
    /// relabeled on entry, and [`QueryEngine::preprocess`] stamps the
    /// permutation into the index so saved indexes round-trip.
    ///
    /// Must be applied before an index is attached. Panics on
    /// [`EngineBackend::OutOfCore`] — permute the graph *before*
    /// [`crate::offcore::DiskGraph::create`] instead (the edge file is
    /// laid out once and cannot be relabeled in place).
    ///
    /// The rebuilt backend keeps [`crate::TilePolicy::Auto`]: reordering
    /// alone delivers the bulk of the win (~2× propagation on shuffled
    /// R-MAT at n=1M — see `spmv_kernels`), and the cost model adds
    /// strip-mining only once the score block outgrows what a last-level
    /// cache plausibly holds. Use [`QueryEngine::with_tile_policy`] to
    /// force a choice either way.
    pub fn with_reordering(self, strategy: ReorderStrategy) -> Self {
        // The dynamic arm materializes the merged snapshot once and
        // reuses it for the permuted rebuild below.
        let (perm, snapshot) = match &self.snap.backend {
            EngineBackend::Sequential(t) => (reorder(t.graph(), strategy), None),
            EngineBackend::Parallel(t) => (reorder(t.graph(), strategy), None),
            EngineBackend::Dynamic(t) => {
                let snap = t.graph().snapshot();
                (reorder(&snap, strategy), Some(snap))
            }
            EngineBackend::OutOfCore(_) => {
                // lint:allow(panic-freedom, "construction-time builder misuse, documented panic; never reached by a served request")
                panic!("out-of-core backends cannot be reordered in place; permute the graph before DiskGraph::create")
            }
            EngineBackend::Patched(_) => {
                // lint:allow(panic-freedom, "construction-time builder misuse, documented panic; never reached by a served request")
                panic!("patched snapshots are immutable published views; reorder the dynamic source they were published from")
            }
        };
        self.apply_permutation(perm, snapshot)
    }

    /// Overrides the cache-blocking policy of the in-memory backends
    /// (sequential, parallel, dynamic); see [`crate::TilePolicy`]. Any
    /// policy is bit-identical — only throughput changes. No effect on
    /// the streaming out-of-core backend.
    pub fn with_tile_policy(mut self, tile: TilePolicy) -> Self {
        self.snap.backend = match self.snap.backend {
            EngineBackend::Sequential(t) => EngineBackend::Sequential(t.with_tile_policy(tile)),
            EngineBackend::Parallel(t) => EngineBackend::Parallel(t.with_tile_policy(tile)),
            EngineBackend::Dynamic(t) => EngineBackend::Dynamic(Box::new(t.with_tile_policy(tile))),
            EngineBackend::Patched(t) => EngineBackend::Patched(t.with_tile_policy(tile)),
            other @ EngineBackend::OutOfCore(_) => other,
        };
        self
    }

    /// [`QueryEngine::with_reordering`] with an explicit permutation
    /// (e.g. one recovered from a saved [`TpaIndex`]). Panics if an
    /// index is already attached, if the engine is already reordered, or
    /// if the permutation's size does not match the graph.
    pub fn with_permutation(self, perm: Permutation) -> Self {
        self.apply_permutation(perm, None)
    }

    /// Rebuilds the backend on the permuted graph; `dyn_snapshot` lets
    /// [`QueryEngine::with_reordering`] hand over the merged snapshot it
    /// already materialized for a dynamic backend.
    fn apply_permutation(mut self, perm: Permutation, dyn_snapshot: Option<CsrGraph>) -> Self {
        assert!(self.snap.index.is_none(), "apply reordering before attaching an index");
        assert!(self.snap.perm.is_none(), "engine is already reordered");
        assert_eq!(perm.len(), self.snap.backend.n(), "permutation size does not match the graph");
        self.snap.backend = match self.snap.backend {
            EngineBackend::Sequential(t) => {
                let g = Arc::new(t.graph().permuted(&perm));
                EngineBackend::Sequential(Transition::shared(g))
            }
            EngineBackend::Parallel(t) => {
                let threads = t.threads();
                let g = Arc::new(t.graph().permuted(&perm));
                EngineBackend::Parallel(ParallelTransition::shared(g, threads))
            }
            EngineBackend::Dynamic(t) => {
                let threads = t.threads();
                let threshold = t.graph().compact_threshold();
                let snap = dyn_snapshot.unwrap_or_else(|| t.graph().snapshot());
                let g = snap.permuted(&perm);
                EngineBackend::Dynamic(Box::new(
                    DynamicTransition::new(DynamicGraph::new(g).with_compact_threshold(threshold))
                        .with_threads(threads),
                ))
            }
            EngineBackend::OutOfCore(_) => {
                // lint:allow(panic-freedom, "construction-time builder misuse, documented panic; never reached by a served request")
                panic!("out-of-core backends cannot be reordered in place; permute the graph before DiskGraph::create")
            }
            EngineBackend::Patched(_) => {
                // lint:allow(panic-freedom, "construction-time builder misuse, documented panic; never reached by a served request")
                panic!("patched snapshots are immutable published views; reorder the dynamic source they were published from")
            }
        };
        self.snap.perm = Some(Arc::new(perm));
        self
    }

    /// The relabeling this engine serves under, if reordered.
    pub fn permutation(&self) -> Option<&Permutation> {
        self.snap.perm.as_deref()
    }

    /// Sets the lane-tile width: batches wider than this execute as
    /// consecutive tiles of at most `tile` lanes. Per-lane results are
    /// unaffected (lanes are independent), but throughput is sensitive to
    /// it — one tile's score blocks should fit in cache. `usize::MAX`
    /// disables tiling.
    pub fn with_lane_tile(mut self, tile: usize) -> Self {
        assert!(tile >= 1, "lane tile must be at least 1");
        self.snap.lane_tile = tile;
        self
    }

    /// Attaches a metrics registry: the engine registers the service
    /// instruments there and records every executed request, exactly
    /// like [`crate::ServiceBuilder::metrics`] does for the concurrent
    /// service. Also enables the kernel profiling counters.
    pub fn with_metrics(mut self, registry: std::sync::Arc<tpa_obs::MetricsRegistry>) -> Self {
        self.snap.metrics = Some(crate::metrics::ServiceMetrics::new(registry));
        self
    }

    /// Typed readout of the engine's instruments, or `None` when no
    /// registry is attached.
    pub fn metrics_snapshot(&self) -> Option<crate::metrics::MetricsSnapshot> {
        self.snap.metrics.as_ref().map(|m| m.snapshot())
    }

    /// Attaches a preprocessed index (shared, so many engines can serve
    /// one index). Panics if the index was built for a different graph.
    ///
    /// Reordering handshake: an index preprocessed on a relabeled graph
    /// carries its [`Permutation`]. Attaching one to an un-reordered
    /// engine applies that permutation first (so a loaded index
    /// transparently restores the ordering it was built under); an
    /// engine already reordered must match the index's permutation
    /// exactly, and an index *without* a permutation cannot serve a
    /// reordered engine.
    pub fn with_index(mut self, index: impl Into<Arc<TpaIndex>>) -> Self {
        let index = index.into();
        index.check_backend(&self.snap.backend).unwrap_or_else(|e| {
            // lint:allow(panic-freedom, "construction-time builder handshake, documented panic; never reached by a served request")
            panic!("{e}");
        });
        match (index.permutation(), &self.snap.perm) {
            (Some(ip), None) => self = self.with_permutation(ip.clone()),
            (Some(ip), Some(ep)) => {
                assert!(ip == ep.as_ref(), "index and engine were reordered differently")
            }
            // lint:allow(panic-freedom, "construction-time builder handshake, documented panic; never reached by a served request")
            (None, Some(_)) => panic!(
                "engine is reordered but the index has no permutation; preprocess through the \
                 reordered engine"
            ),
            (None, None) => {}
        }
        self.snap.index = Some(index);
        self
    }

    /// Runs TPA preprocessing on this engine's own backend and attaches
    /// the resulting index (stamped with the engine's reordering, if
    /// any, so saving it round-trips).
    pub fn preprocess(self, params: TpaParams) -> Self {
        let mut index = TpaIndex::preprocess_on(&self.snap.backend, params);
        if let Some(p) = &self.snap.perm {
            index = index.with_permutation(p.as_ref().clone());
        }
        self.with_index(index)
    }

    /// Config used for exact (non-indexed) execution.
    pub fn with_cpi_config(mut self, cfg: CpiConfig) -> Self {
        cfg.validate();
        self.snap.exact_cfg = cfg;
        self
    }

    /// Sets the index staleness policy for dynamic serving (see
    /// [`IndexStalenessPolicy`]). Returns
    /// [`TpaError::InvalidConfig`] — instead of panicking — when the
    /// policy's threshold is not positive, matching the rest of the
    /// engine/service construction paths.
    pub fn with_staleness_policy(mut self, policy: IndexStalenessPolicy) -> Result<Self, TpaError> {
        policy.check()?;
        self.staleness = policy;
        Ok(self)
    }

    /// The propagation backend.
    pub fn backend(&self) -> &EngineBackend<'g> {
        &self.snap.backend
    }

    /// The dynamic transition, when this engine serves an evolving graph.
    pub fn dynamic_transition(&self) -> Option<&DynamicTransition> {
        match &self.snap.backend {
            EngineBackend::Dynamic(t) => Some(t.as_ref()),
            _ => None,
        }
    }

    /// Applies an edge-update batch to the dynamic backend, tracks index
    /// staleness (accumulated relative operator drift), and — under an
    /// auto-refresh policy — re-preprocesses a stale index on the spot.
    /// Also advances the engine's epoch, mirroring a service publish.
    /// Returns [`TpaError::BackendMismatch`] on every
    /// non-[`EngineBackend::Dynamic`] backend.
    pub fn apply_updates(&mut self, updates: &[EdgeUpdate]) -> Result<UpdateReport, TpaError> {
        // Callers speak old ids; a reordered backend stores new ones.
        // The returned delta is in backend (new-id) space — consistent
        // with `dynamic_transition()`, which serves that same space.
        let mapped = map_updates(&self.snap.perm, updates);
        let updates = mapped.as_deref().unwrap_or(updates);
        let delta = match &mut self.snap.backend {
            EngineBackend::Dynamic(t) => t.apply(updates),
            other => {
                return Err(TpaError::BackendMismatch {
                    operation: "edge updates",
                    backend: other.name(),
                })
            }
        };
        let mut report = UpdateReport {
            delta,
            accumulated_drift: 0.0,
            index_stale: false,
            index_refreshed: false,
        };
        if self.snap.index.is_some() {
            // Telescoping: keep the *earliest* captured column per source
            // node, so old→now composes across batches.
            for sd in &report.delta.sources {
                self.index_deltas.entry(sd.node).or_insert_with(|| sd.clone());
            }
            self.accumulated_drift +=
                report.delta.column_delta_mass / self.snap.backend.n().max(1) as f64;
            if self.accumulated_drift > self.staleness.threshold {
                if self.staleness.auto_refresh {
                    self.refresh_index();
                    report.index_refreshed = true;
                } else {
                    report.index_stale = true;
                }
            }
            report.accumulated_drift = self.accumulated_drift;
        }
        self.snap.epoch += 1;
        Ok(report)
    }

    /// Explicitly compacts the dynamic backend's overlay into a fresh
    /// base snapshot (scores unchanged). Returns
    /// [`TpaError::BackendMismatch`] on static backends.
    pub fn compact_dynamic(&mut self) -> Result<(), TpaError> {
        match &mut self.snap.backend {
            EngineBackend::Dynamic(t) => {
                t.compact();
                Ok(())
            }
            other => Err(TpaError::BackendMismatch {
                operation: "overlay compaction",
                backend: other.name(),
            }),
        }
    }

    /// Re-runs TPA preprocessing on the current backend state with the
    /// attached index's parameters, replacing the index and resetting the
    /// drift accumulator. No-op without an index.
    pub fn refresh_index(&mut self) {
        if let Some(old) = &self.snap.index {
            let params = *old.params();
            let mut index = TpaIndex::preprocess_on(&self.snap.backend, params);
            if let Some(p) = &self.snap.perm {
                index = index.with_permutation(p.as_ref().clone());
            }
            self.snap.index = Some(Arc::new(index));
            self.accumulated_drift = 0.0;
            self.index_deltas.clear();
        }
    }

    /// Patches the attached index's stranger vector by propagating the
    /// operator delta accumulated since the last (re)build or patch —
    /// `O(affected)` offset propagation via
    /// [`TpaIndex::patch_stranger_on`] instead of the full `T`-iteration
    /// re-preprocess of [`QueryEngine::refresh_index`]. Resets the drift
    /// accumulator and the captured deltas. The patched stranger tracks a
    /// re-preprocess within CPI tolerance plus the `O((1−c)^T)` window
    /// tail (not bitwise); re-anchor with a periodic full refresh.
    ///
    /// Returns `Ok(false)` without an index or with nothing accumulated;
    /// [`TpaError::BackendMismatch`] on non-dynamic backends.
    pub fn patch_index(&mut self) -> Result<bool, TpaError> {
        let overlay = match &self.snap.backend {
            EngineBackend::Dynamic(t) => t.as_ref(),
            other => {
                return Err(TpaError::BackendMismatch {
                    operation: "index patching",
                    backend: other.name(),
                })
            }
        };
        let Some(old) = &self.snap.index else { return Ok(false) };
        if self.index_deltas.is_empty() {
            return Ok(false);
        }
        let deltas: Vec<SourceDelta> = self.index_deltas.values().cloned().collect();
        let offset = overlay.offset_seed_for(&deltas, old.params().c, old.stranger());
        let (patched, _stats) = old.patch_stranger_on(
            &self.snap.backend,
            offset,
            MaintenanceMode::Exact,
            self.snap.frontier,
        );
        self.snap.index = Some(Arc::new(patched));
        self.accumulated_drift = 0.0;
        self.index_deltas.clear();
        Ok(true)
    }

    /// Accumulated relative operator drift since the attached index was
    /// last (re)built.
    pub fn accumulated_drift(&self) -> f64 {
        self.accumulated_drift
    }

    /// True when the attached index has drifted past the staleness
    /// threshold without being refreshed.
    pub fn index_stale(&self) -> bool {
        self.snap.index.is_some() && self.accumulated_drift > self.staleness.threshold
    }

    /// The attached index, if any.
    pub fn index(&self) -> Option<&TpaIndex> {
        self.snap.index.as_deref()
    }

    /// Number of nodes served.
    pub fn n(&self) -> usize {
        self.snap.backend.n()
    }

    /// Executes a plan, returning the scores/rankings. Single-seed plans
    /// take the scalar path; larger batches run lane tiles through the
    /// backend's fused block kernel, bit-identical to per-seed
    /// execution. An empty plan yields an empty result (serving queues
    /// legitimately drain to zero); an out-of-range seed is rejected at
    /// admission with [`TpaError::SeedOutOfRange`].
    pub fn execute(&self, plan: &QueryPlan) -> Result<QueryResult, TpaError> {
        Ok(self.snap.run(plan)?.result)
    }

    /// [`QueryEngine::execute`] returning the full [`QueryResponse`]
    /// (scores plus backend/epoch/iteration metadata) — the same shape
    /// [`crate::RwrService::submit`] returns. When an admission gate is
    /// attached ([`QueryEngine::with_admission`]), the request clears it
    /// first, with the same deadline/shed/rejection semantics as the
    /// concurrent service.
    pub fn submit(&self, req: &QueryRequest) -> Result<QueryResponse, TpaError> {
        let Some(gate) = &self.admission else {
            return self.snap.run(req);
        };
        let started = std::time::Instant::now();
        let (permit, level, deadline_at) =
            crate::service::admit(gate, self.snap.metrics.as_deref(), req, started)?;
        let result = self.snap.run_shaped(req, level, deadline_at, &gate.config().shed);
        drop(permit);
        result
    }

    /// Puts an admission gate in front of [`QueryEngine::submit`]: the
    /// same bounded in-flight/queue, deadline, and shed-ladder semantics
    /// as [`crate::ServiceBuilder::admission`] gives the concurrent
    /// service. On a single-owner engine the gate mostly matters for its
    /// deadline/shed behaviour (there is at most one caller), but the
    /// semantics — and the stamped [`crate::DegradationLevel`] — are
    /// identical, so CLI flows behave the same on either serving layer.
    pub fn with_admission(self, cfg: crate::admission::AdmissionConfig) -> Result<Self, TpaError> {
        cfg.check()?;
        let metrics = self.snap.metrics.clone();
        Ok(QueryEngine {
            admission: Some(crate::admission::AdmissionGate::new(cfg, metrics)),
            ..self
        })
    }

    /// Full scores for one seed (index path when available). Panics on
    /// an invalid request; use [`QueryEngine::execute`] to handle
    /// [`TpaError`]s instead.
    pub fn query(&self, seed: NodeId) -> Vec<f64> {
        // lint:allow(panic-freedom, "documented panicking convenience; the serving path is QueryEngine::execute, and a single request always yields one vector")
        self.expect(&QueryRequest::single(seed)).into_scores().pop().unwrap()
    }

    /// Full scores for a batch of seeds: one fused edge pass per CPI
    /// iteration per lane tile (so a batch of `B` seeds costs
    /// `⌈B / lane_tile⌉` edge passes per iteration instead of `B`; see
    /// [`QueryEngine::with_lane_tile`]). Panics on an invalid request.
    pub fn query_batch(&self, seeds: &[NodeId]) -> Vec<Vec<f64>> {
        // lint:allow(panic-freedom, "documented panicking convenience; the serving path is QueryEngine::execute")
        self.expect(&QueryRequest::batch(seeds.to_vec())).into_scores()
    }

    /// Best `k` nodes for one seed, best first. Panics on an invalid
    /// request.
    pub fn top_k(&self, seed: NodeId, k: usize) -> Vec<(NodeId, f64)> {
        // lint:allow(panic-freedom, "documented panicking convenience; the serving path is QueryEngine::execute, and a single request always yields one ranking")
        self.expect(&QueryRequest::single(seed).top_k(k)).into_ranked().pop().unwrap()
    }

    /// Best `k` nodes for each seed in a batch. Panics on an invalid
    /// request.
    pub fn top_k_batch(&self, seeds: &[NodeId], k: usize) -> Vec<Vec<(NodeId, f64)>> {
        // lint:allow(panic-freedom, "documented panicking convenience; the serving path is QueryEngine::execute")
        self.expect(&QueryRequest::batch(seeds.to_vec()).top_k(k)).into_ranked()
    }

    /// Shared panic path of the infallible conveniences: renders the
    /// [`TpaError`] so every entry point fails with the same message.
    fn expect(&self, req: &QueryRequest) -> QueryResult {
        // lint:allow(panic-freedom, "shared panic path of the documented panicking conveniences; fallible callers use execute")
        self.execute(req).unwrap_or_else(|e| panic!("{e}"))
    }
}

/// The `k` best `(node, score)` pairs, best first, ties broken by lower
/// node id. Partial selection (`select_nth_unstable_by`) followed by a
/// sort of only the selected prefix: `O(n + k log k)` instead of the
/// `O(n log n)` full sort.
pub fn top_k_scored(scores: &[f64], k: usize) -> Vec<(NodeId, f64)> {
    let k = k.min(scores.len());
    if k == 0 {
        return Vec::new();
    }
    let mut idx: Vec<u32> = (0..scores.len() as u32).collect();
    // `total_cmp`, not `partial_cmp().expect(…)`: RWR scores are finite
    // and non-negative, so the two orders agree — and the total order
    // keeps this path panic-free by construction.
    let cmp = |a: &u32, b: &u32| scores[*b as usize].total_cmp(&scores[*a as usize]).then(a.cmp(b));
    idx.select_nth_unstable_by(k - 1, cmp);
    idx.truncate(k);
    idx.sort_unstable_by(cmp);
    idx.into_iter().map(|v| (v, scores[v as usize])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact_rwr;
    use tpa_graph::gen::{lfr_lite, LfrConfig};

    fn test_graph() -> CsrGraph {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(71);
        lfr_lite(LfrConfig { n: 400, m: 3200, ..Default::default() }, &mut rng).graph
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("tpa-engine-{name}-{}", std::process::id()))
    }

    #[test]
    fn indexed_query_matches_direct_index_use() {
        let g = test_graph();
        let params = TpaParams::new(5, 10);
        let engine = QueryEngine::sequential(&g).preprocess(params);
        let index = TpaIndex::preprocess(&g, params);
        let t = Transition::new(&g);
        assert_eq!(engine.query(13), index.query(&t, 13));
    }

    #[test]
    fn batch_bitwise_identical_to_singles_on_every_backend() {
        let g = test_graph();
        let params = TpaParams::new(5, 10);
        let index = Arc::new(TpaIndex::preprocess(&g, params));
        let seeds: Vec<NodeId> = (0..32).map(|i| (i * 13) % g.n() as NodeId).collect();
        let path = tmp("backends");
        let disk = DiskGraph::create(&g, &path).unwrap();

        let engines = [
            QueryEngine::sequential(&g).with_index(Arc::clone(&index)),
            QueryEngine::parallel(&g, 4).with_index(Arc::clone(&index)),
            QueryEngine::out_of_core(disk).with_index(Arc::clone(&index)),
        ];
        let reference = QueryEngine::sequential(&g).with_index(Arc::clone(&index));
        let singles: Vec<Vec<f64>> = seeds.iter().map(|&s| reference.query(s)).collect();
        for engine in &engines {
            let batch = engine.query_batch(&seeds);
            assert_eq!(batch, singles, "backend {}", engine.backend().name());
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn exact_mode_ignores_index() {
        let g = test_graph();
        let engine = QueryEngine::sequential(&g).preprocess(TpaParams::new(4, 9));
        let exact =
            engine.execute(&QueryPlan::single(7).exact()).unwrap().into_scores().pop().unwrap();
        assert_eq!(exact, exact_rwr(&g, 7, &CpiConfig::default()));
        // The indexed answer is an approximation — close, but distinct.
        assert_ne!(exact, engine.query(7));
    }

    #[test]
    fn engine_without_index_serves_exact_scores() {
        let g = test_graph();
        let engine = QueryEngine::sequential(&g);
        assert_eq!(engine.query(3), exact_rwr(&g, 3, &CpiConfig::default()));
    }

    #[test]
    fn submit_reports_metadata() {
        let g = test_graph();
        let engine = QueryEngine::sequential(&g).preprocess(TpaParams::new(5, 10));
        let resp = engine.submit(&QueryRequest::single(7)).unwrap();
        assert_eq!(resp.backend, "sequential");
        assert_eq!(resp.epoch, 0);
        assert!(resp.indexed);
        // The indexed family sweep runs S − 1 propagations.
        assert_eq!(resp.iterations, Some(4));
        assert!(resp.residual.unwrap() > 0.0);
        let exact = engine.submit(&QueryRequest::single(7).exact()).unwrap();
        assert!(!exact.indexed);
        assert!(exact.iterations.unwrap() > 4);
    }

    #[test]
    fn top_k_matches_full_sort() {
        let g = test_graph();
        let engine = QueryEngine::sequential(&g).preprocess(TpaParams::new(5, 10));
        let scores = engine.query(42);
        let ranked = engine.top_k(42, 10);
        // Reference: full sort.
        let mut full: Vec<(NodeId, f64)> =
            scores.iter().enumerate().map(|(i, &s)| (i as NodeId, s)).collect();
        full.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        full.truncate(10);
        assert_eq!(ranked, full);
    }

    #[test]
    fn top_k_scored_handles_edge_cases() {
        assert_eq!(top_k_scored(&[], 5), vec![]);
        assert_eq!(top_k_scored(&[1.0, 2.0], 0), vec![]);
        assert_eq!(top_k_scored(&[1.0, 2.0], 99), vec![(1, 2.0), (0, 1.0)]);
        // Ties break toward the lower node id.
        assert_eq!(top_k_scored(&[0.5, 0.5, 0.5], 2), vec![(0, 0.5), (1, 0.5)]);
    }

    #[test]
    fn parallel_preprocess_matches_sequential() {
        let g = test_graph();
        let params = TpaParams::new(5, 10);
        let seq = QueryEngine::sequential(&g).preprocess(params);
        let par = QueryEngine::parallel(&g, 4).preprocess(params);
        assert_eq!(seq.index().unwrap().stranger(), par.index().unwrap().stranger());
        assert_eq!(seq.query(99), par.query(99));
    }

    #[test]
    fn empty_batch_yields_empty_result() {
        // Serving queues drain to zero; an empty plan is not an error.
        let g = test_graph();
        let engine = QueryEngine::sequential(&g).preprocess(TpaParams::new(4, 9));
        assert!(engine.query_batch(&[]).is_empty());
        assert!(engine.top_k_batch(&[], 5).is_empty());
    }

    #[test]
    fn dynamic_backend_serves_all_plan_kinds() {
        use tpa_graph::{DynamicGraph, EdgeUpdate};
        let g = test_graph();
        let params = TpaParams::new(5, 10);
        let reference = QueryEngine::sequential(&g).preprocess(params);
        let mut engine = QueryEngine::dynamic(DynamicGraph::new(g.clone())).preprocess(params);

        // Before any update, every plan kind matches the static engine
        // bitwise (same index parameters, same kernel order).
        assert_eq!(engine.query(13), reference.query(13));
        assert_eq!(engine.query_batch(&[1, 5, 9]), reference.query_batch(&[1, 5, 9]));
        assert_eq!(engine.top_k(13, 5), reference.top_k(13, 5));
        let exact =
            engine.execute(&QueryPlan::single(7).exact()).unwrap().into_scores().pop().unwrap();
        assert_eq!(exact, exact_rwr(&g, 7, &CpiConfig::default()));

        // After updates the engine answers on the evolved graph, and the
        // engine's epoch advances like a service publish.
        assert_eq!(engine.snapshot().epoch(), 0);
        let report = engine
            .apply_updates(&[EdgeUpdate::Insert(13, 200), EdgeUpdate::Insert(200, 13)])
            .unwrap();
        assert_eq!(report.delta.stats.inserted, 2);
        assert_eq!(engine.snapshot().epoch(), 1);
        let evolved =
            engine.execute(&QueryPlan::single(13).exact()).unwrap().into_scores().pop().unwrap();
        assert_ne!(evolved, exact_rwr(&g, 13, &CpiConfig::default()));
        assert!(engine.dynamic_transition().unwrap().graph().has_edge(13, 200));
    }

    #[test]
    fn static_backends_reject_updates() {
        use tpa_graph::EdgeUpdate;
        let g = test_graph();
        let mut engine = QueryEngine::sequential(&g);
        let err = engine.apply_updates(&[EdgeUpdate::Insert(0, 1)]).unwrap_err();
        assert!(
            matches!(
                err,
                TpaError::BackendMismatch { operation: "edge updates", backend: "sequential" }
            ),
            "{err}"
        );
        let err = engine.compact_dynamic().unwrap_err();
        assert!(matches!(err, TpaError::BackendMismatch { .. }), "{err}");
    }

    #[test]
    fn staleness_policy_flags_then_auto_refreshes() {
        use tpa_graph::{DynamicGraph, EdgeUpdate};
        let g = test_graph();
        let params = TpaParams::new(4, 9);
        let tight = IndexStalenessPolicy { threshold: 1e-12, auto_refresh: false };
        let mut engine = QueryEngine::dynamic(DynamicGraph::new(g.clone()))
            .preprocess(params)
            .with_staleness_policy(tight)
            .unwrap();
        let report = engine.apply_updates(&[EdgeUpdate::Insert(0, 399)]).unwrap();
        assert!(report.index_stale && !report.index_refreshed);
        assert!(engine.index_stale());
        let drift = engine.accumulated_drift();
        assert!(drift > 0.0);

        // Manual refresh rebuilds the index on the evolved graph.
        engine.refresh_index();
        assert!(!engine.index_stale());
        assert_eq!(engine.accumulated_drift(), 0.0);

        // Auto-refresh does the same inside apply_updates.
        let mut auto = QueryEngine::dynamic(DynamicGraph::new(g))
            .preprocess(params)
            .with_staleness_policy(IndexStalenessPolicy { threshold: 1e-12, auto_refresh: true })
            .unwrap();
        let report = auto.apply_updates(&[EdgeUpdate::Insert(0, 399)]).unwrap();
        assert!(report.index_refreshed && !report.index_stale);
        assert_eq!(auto.accumulated_drift(), 0.0);
        // The refreshed index serves the evolved graph exactly like a
        // fresh preprocess over the same state.
        let snap = auto.dynamic_transition().unwrap().graph().snapshot();
        let fresh = QueryEngine::sequential(&snap).preprocess(params);
        assert_eq!(auto.query(42), fresh.query(42));
    }

    #[test]
    fn patch_index_repairs_a_stale_index_incrementally() {
        let g = test_graph();
        let params = TpaParams::new(5, 10);
        let tight = IndexStalenessPolicy { threshold: 1e-12, auto_refresh: false };
        let mut engine = QueryEngine::dynamic(DynamicGraph::new(g.clone()))
            .preprocess(params)
            .with_staleness_policy(tight)
            .unwrap();
        // Nothing accumulated yet: patching is a no-op.
        assert!(!engine.patch_index().unwrap());

        let ups = [
            EdgeUpdate::Insert(0, 399),
            EdgeUpdate::Insert(399, 17),
            EdgeUpdate::Delete(0, 399),
            EdgeUpdate::Insert(42, 7),
        ];
        let report = engine.apply_updates(&ups).unwrap();
        assert!(report.index_stale);
        let stale: Vec<f64> = engine.index().unwrap().stranger().to_vec();

        assert!(engine.patch_index().unwrap());
        assert!(!engine.index_stale());
        assert_eq!(engine.accumulated_drift(), 0.0);
        // Consecutive patch with nothing new accumulated: no-op.
        assert!(!engine.patch_index().unwrap());

        // The patched stranger tracks a from-scratch re-preprocess far
        // more closely than the stale vector it replaced (it is not
        // bitwise: the O((1−c)^T) window-shift tail is dropped).
        let snap = engine.dynamic_transition().unwrap().graph().snapshot();
        let fresh = TpaIndex::preprocess(&snap, params);
        let l1 =
            |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum() };
        let patched_err = l1(engine.index().unwrap().stranger(), fresh.stranger());
        let stale_err = l1(&stale, fresh.stranger());
        assert!(
            patched_err < 1e-3 && patched_err < stale_err,
            "patched drifted {patched_err} (stale was {stale_err})"
        );

        // Static backends reject patching with a typed error.
        let mut st = QueryEngine::sequential(&g).preprocess(params);
        let err = st.patch_index().unwrap_err();
        assert!(
            matches!(err, TpaError::BackendMismatch { operation: "index patching", .. }),
            "{err}"
        );
    }

    #[test]
    fn invalid_staleness_policy_is_an_error_not_a_panic() {
        let g = test_graph();
        for threshold in [0.0, -1.0, f64::NAN] {
            let err = match QueryEngine::sequential(&g)
                .with_staleness_policy(IndexStalenessPolicy { threshold, auto_refresh: false })
            {
                Ok(_) => panic!("threshold {threshold} must be rejected"),
                Err(e) => e,
            };
            assert!(matches!(err, TpaError::InvalidConfig(_)), "{err}");
            assert!(err.to_string().contains("staleness threshold"), "{err}");
        }
        // Infinite thresholds are a legitimate "never stale" policy.
        let ok = QueryEngine::sequential(&g).with_staleness_policy(IndexStalenessPolicy {
            threshold: f64::INFINITY,
            auto_refresh: false,
        });
        assert!(ok.is_ok());
    }

    #[test]
    fn tie_break_is_deterministic_across_backends() {
        // A graph with massive symmetry produces many exactly-equal
        // scores; the ranking must still be identical across backends and
        // runs (ascending node id within a tie).
        let g = tpa_graph::gen::cycle_graph(64);
        let plans = QueryPlan::single(0).top_k(10).exact();
        let seq = QueryEngine::sequential(&g).execute(&plans).unwrap().into_ranked();
        let par = QueryEngine::parallel(&g, 4).execute(&plans).unwrap().into_ranked();
        let dynamic = QueryEngine::dynamic(tpa_graph::DynamicGraph::new(g.clone()))
            .execute(&plans)
            .unwrap()
            .into_ranked();
        assert_eq!(seq, par);
        assert_eq!(seq, dynamic);
        let again = QueryEngine::sequential(&g).execute(&plans).unwrap().into_ranked();
        assert_eq!(seq, again);
        // Within every run of equal scores, node ids ascend.
        for w in seq[0].windows(2) {
            if w[0].1 == w[1].1 {
                assert!(w[0].0 < w[1].0, "tie not broken by ascending id: {w:?}");
            }
        }
    }

    #[test]
    fn reordered_engine_is_transparent_to_callers() {
        use tpa_graph::ReorderStrategy;
        let g = test_graph();
        let plain = QueryEngine::sequential(&g);
        for strategy in ReorderStrategy::ALL {
            let reordered = QueryEngine::sequential(&g).with_reordering(strategy);
            assert_eq!(reordered.permutation().unwrap().len(), g.n());
            let a = plain.query(13);
            let b = reordered.query(13);
            // Same CPI on an isomorphic graph: equal up to FP association
            // (the gather visits neighbors in relabeled order).
            let l1: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
            assert!(l1 < 1e-8, "{}: unmapped scores drifted {l1}", strategy.name());
            // Top-k ranks in caller (old-id) space.
            let ranked = reordered.top_k(13, 5);
            for (v, _) in &ranked {
                assert!((*v as usize) < g.n());
            }
        }
    }

    #[test]
    fn reordered_backends_agree_bitwise() {
        use tpa_graph::ReorderStrategy;
        let g = test_graph();
        let seeds: Vec<NodeId> = vec![2, 77, 201];
        let seq = QueryEngine::sequential(&g).with_reordering(ReorderStrategy::DegreeDescending);
        let par = QueryEngine::parallel(&g, 4).with_reordering(ReorderStrategy::DegreeDescending);
        let dynamic = QueryEngine::dynamic(DynamicGraph::new(g.clone()))
            .with_reordering(ReorderStrategy::DegreeDescending);
        let reference = seq.query_batch(&seeds);
        assert_eq!(par.query_batch(&seeds), reference);
        assert_eq!(dynamic.query_batch(&seeds), reference);
    }

    #[test]
    fn preprocess_stamps_permutation_and_index_roundtrips() {
        use tpa_graph::ReorderStrategy;
        let g = test_graph();
        let params = TpaParams::new(5, 10);
        let engine =
            QueryEngine::sequential(&g).with_reordering(ReorderStrategy::Rcm).preprocess(params);
        let index = engine.index().unwrap();
        assert_eq!(index.permutation(), engine.permutation());

        // Save, load, attach to a *fresh* engine: the stored permutation
        // restores the ordering transparently and answers are identical.
        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        let loaded = TpaIndex::load(std::io::Cursor::new(&buf)).unwrap();
        let served = QueryEngine::sequential(&g).with_index(loaded);
        assert!(served.permutation().is_some());
        assert_eq!(served.query(42), engine.query(42));
        assert_eq!(served.top_k(42, 7), engine.top_k(42, 7));
    }

    #[test]
    fn reordered_dynamic_engine_accepts_old_id_updates() {
        use tpa_graph::ReorderStrategy;
        let g = test_graph();
        let mut plain = QueryEngine::dynamic(DynamicGraph::new(g.clone()));
        let mut reordered = QueryEngine::dynamic(DynamicGraph::new(g.clone()))
            .with_reordering(ReorderStrategy::HubCluster);
        let ups =
            [EdgeUpdate::Insert(13, 200), EdgeUpdate::Delete(13, 200), EdgeUpdate::Insert(7, 40)];
        let a = plain.apply_updates(&ups).unwrap();
        let b = reordered.apply_updates(&ups).unwrap();
        assert_eq!(a.delta.stats, b.delta.stats);
        let x = plain.query(7);
        let y = reordered.query(7);
        let l1: f64 = x.iter().zip(&y).map(|(p, q)| (p - q).abs()).sum();
        assert!(l1 < 1e-8, "post-update scores drifted {l1}");
    }

    #[test]
    fn frontier_policy_is_bitwise_invisible_through_the_engine() {
        let g = test_graph();
        let params = TpaParams::new(5, 10);
        let index = Arc::new(TpaIndex::preprocess(&g, params));
        let dense = QueryEngine::sequential(&g)
            .with_index(Arc::clone(&index))
            .with_frontier(FrontierPolicy::Dense);
        let sparse = QueryEngine::sequential(&g)
            .with_index(Arc::clone(&index))
            .with_frontier(FrontierPolicy::Sparse);
        let auto = QueryEngine::sequential(&g).with_index(Arc::clone(&index));
        assert_eq!(auto.frontier(), FrontierPolicy::Auto);
        // Indexed, exact, and top-k paths all agree to the bit.
        assert_eq!(dense.query(13), sparse.query(13));
        assert_eq!(dense.query(13), auto.query(13));
        assert_eq!(dense.top_k(13, 7), auto.top_k(13, 7));
        let exact_of = |e: &QueryEngine<'_>| {
            e.execute(&QueryPlan::single(7).exact()).unwrap().into_scores().pop().unwrap()
        };
        assert_eq!(exact_of(&dense), exact_of(&sparse));
        assert_eq!(exact_of(&dense), exact_of(&auto));
        // A plan-level override beats the engine default.
        let plan = QueryPlan::single(13).with_frontier(FrontierPolicy::Sparse);
        assert_eq!(plan.frontier(), Some(FrontierPolicy::Sparse));
        assert_eq!(
            dense.execute(&plan).unwrap().into_scores(),
            auto.execute(&QueryPlan::single(13)).unwrap().into_scores()
        );
    }

    #[test]
    fn frontier_policy_agrees_across_backends() {
        let g = test_graph();
        let reference = QueryEngine::sequential(&g).with_frontier(FrontierPolicy::Dense).query(42);
        for policy in [FrontierPolicy::Auto, FrontierPolicy::Sparse] {
            let seq = QueryEngine::sequential(&g).with_frontier(policy);
            let par = QueryEngine::parallel(&g, 4).with_frontier(policy);
            let dynamic = QueryEngine::dynamic(DynamicGraph::new(g.clone())).with_frontier(policy);
            assert_eq!(seq.query(42), reference, "seq {}", policy.name());
            assert_eq!(par.query(42), reference, "par {}", policy.name());
            assert_eq!(dynamic.query(42), reference, "dyn {}", policy.name());
        }
    }

    #[test]
    fn tile_policy_is_bitwise_invisible_through_the_engine() {
        let g = test_graph();
        let flat = QueryEngine::sequential(&g).with_tile_policy(crate::TilePolicy::Flat);
        let strip = QueryEngine::sequential(&g).with_tile_policy(crate::TilePolicy::Strip(29));
        assert_eq!(flat.query(7), strip.query(7));
        assert_eq!(flat.query_batch(&[1, 2, 3]), strip.query_batch(&[1, 2, 3]));
    }

    #[test]
    #[should_panic(expected = "reordered differently")]
    fn mismatched_permutations_are_rejected() {
        use tpa_graph::ReorderStrategy;
        let g = test_graph();
        let index = QueryEngine::sequential(&g)
            .with_reordering(ReorderStrategy::DegreeDescending)
            .preprocess(TpaParams::new(4, 9))
            .index()
            .unwrap()
            .clone();
        let _ = QueryEngine::sequential(&g).with_reordering(ReorderStrategy::Rcm).with_index(index);
    }

    #[test]
    fn execute_rejects_out_of_range_seed() {
        let g = test_graph();
        let engine = QueryEngine::sequential(&g);
        let err = engine.execute(&QueryPlan::single(g.n() as NodeId)).unwrap_err();
        assert!(
            matches!(err, TpaError::SeedOutOfRange { seed, n } if seed as usize == g.n() && n == g.n()),
            "{err}"
        );
        // A bad seed anywhere in a batch is caught at admission too.
        let err = engine.execute(&QueryPlan::batch(vec![0, 1, 9999])).unwrap_err();
        assert!(matches!(err, TpaError::SeedOutOfRange { seed: 9999, .. }), "{err}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn infallible_query_panics_on_out_of_range_seed() {
        let g = test_graph();
        QueryEngine::sequential(&g).query(g.n() as NodeId);
    }

    #[test]
    #[should_panic(expected = "different graph")]
    fn rejects_foreign_index() {
        let g = test_graph();
        let other = tpa_graph::gen::cycle_graph(7);
        let index = TpaIndex::preprocess(&other, TpaParams::new(3, 6));
        let _ = QueryEngine::sequential(&g).with_index(index);
    }
}
