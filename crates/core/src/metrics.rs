//! Service-side metrics: what [`crate::RwrService`] records per request
//! and per epoch, built on the lock-free [`tpa_obs`] primitives.
//!
//! A [`ServiceMetrics`] is created from a shared
//! [`MetricsRegistry`] when the builder opts in
//! ([`crate::ServiceBuilder::metrics`]) and is carried by both the
//! service and every published [`crate::Snapshot`], so the request path
//! records without ever touching the registry lock:
//!
//! * **Request side** — `tpa_requests_total`, per-(kind × backend)
//!   latency summaries (`tpa_request_latency_seconds{kind,backend}`),
//!   the admission → pin → run span histograms, cache hit/miss
//!   counters, and per-[`crate::TpaError`]-variant error counters.
//! * **Writer side** — epoch lifecycle: publish latency and batch size,
//!   overlay size vs the compaction trigger, background-compaction
//!   start / splice / duration / **failure** counters, plus a bounded
//!   ring of structured [`EpochEvent`]s for tests and debugging.
//! * **Kernel profile** — the process-wide counters from
//!   [`crate::profiling`], enabled automatically while any
//!   `ServiceMetrics` exists.
//!
//! Readout is [`ServiceMetrics::snapshot`] (typed structs —
//! [`MetricsSnapshot`]), or the registry's Prometheus/JSON renderers.
//! When no metrics are attached (the default) the request path pays one
//! `Option` branch per span site and two `Instant` reads per request
//! (which also feed [`crate::QueryResponse::elapsed`]).

use crate::admission::{DegradationLevel, DEGRADATION_LEVELS};
use crate::error::TpaError;
use crate::profiling::{kernel_profile, KernelProfile};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tpa_obs::{Counter, Gauge, Histogram, MetricsRegistry, Unit};

/// Request kinds the latency breakdown distinguishes. Top-k requests
/// report as `top_k` whatever their batch width — the selection cost,
/// not the lane count, is what sets them apart.
pub const REQUEST_KINDS: [&str; 3] = ["single", "batch", "top_k"];

/// Backend names the latency breakdown distinguishes (see
/// [`crate::EngineBackend::name`]).
pub const BACKEND_NAMES: [&str; 5] =
    ["sequential", "parallel", "out-of-core", "dynamic", "patched"];

/// Error variants counted under `tpa_request_errors_total{variant=…}`
/// (see [`TpaError::variant_name`]).
pub const ERROR_VARIANTS: [&str; 8] = [
    "seed_out_of_range",
    "dimension_mismatch",
    "backend_mismatch",
    "invalid_config",
    "io",
    "overloaded",
    "deadline_exceeded",
    "cancelled",
];

const EVENT_CAP: usize = 256;

pub(crate) fn kind_index(seeds: usize, top_k: bool) -> usize {
    match (seeds, top_k) {
        (_, true) => 2,
        (1, false) => 0,
        _ => 1,
    }
}

fn backend_index(name: &str) -> usize {
    BACKEND_NAMES.iter().position(|&b| b == name).unwrap_or(BACKEND_NAMES.len() - 1)
}

/// One structured entry in the writer's epoch lifecycle ring.
#[derive(Clone, Debug, PartialEq)]
pub enum EpochEvent {
    /// An [`crate::RwrService::apply_updates`] batch published a new
    /// epoch.
    Published {
        /// The epoch published.
        epoch: u64,
        /// Updates in the batch.
        updates: usize,
        /// Wall-clock publish latency (apply → swap) in seconds.
        secs: f64,
        /// Overlay delta edges after the batch was applied.
        overlay_edges: u64,
    },
    /// The writer spawned a background base rebuild.
    CompactionStarted {
        /// Overlay delta edges at spawn time.
        overlay_edges: u64,
    },
    /// A finished rebuild was spliced into the overlay.
    CompactionInstalled {
        /// The rebuild thread's own fold duration in seconds.
        secs: f64,
    },
    /// The rebuild thread panicked; the overlay is untouched and a
    /// later batch may re-trigger.
    CompactionFailed {
        /// The panic payload, if it carried a message.
        reason: String,
    },
    /// The index was re-preprocessed or stranger-patched at a new epoch.
    IndexRebuilt {
        /// The epoch published with the fresh index.
        epoch: u64,
        /// True for the cheap stranger patch, false for a full refresh.
        patched: bool,
    },
}

/// The instrument set one service records into. Cheap to clone by `Arc`;
/// every handle is pre-registered so the hot path never touches the
/// registry lock.
pub struct ServiceMetrics {
    registry: Arc<MetricsRegistry>,
    started: Instant,

    // Request side.
    requests_total: Arc<Counter>,
    latency: Vec<Arc<Histogram>>, // kind-major [kind][backend]
    admission: Arc<Histogram>,
    pin: Arc<Histogram>,
    run: Arc<Histogram>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    errors_total: Arc<Counter>,
    errors: Vec<Arc<Counter>>,
    topk_pruned: Arc<Counter>,
    topk_early: Arc<Counter>,
    topk_fallback: Arc<Counter>,

    // Admission / shedding side.
    inflight: Arc<Gauge>,
    queue_depth: Arc<Gauge>,
    degradation_level: Arc<Gauge>,
    degraded: Vec<Arc<Counter>>, // DEGRADATION_LEVELS[1..] order
    shed_total: Arc<Counter>,
    deadline_exceeded: Arc<Counter>,
    cancelled: Arc<Counter>,

    // Writer side.
    publishes: Arc<Counter>,
    publish_latency: Arc<Histogram>,
    publish_batch: Arc<Histogram>,
    overlay_edges: Arc<Gauge>,
    compaction_trigger_edges: Arc<Gauge>,
    epoch: Arc<Gauge>,
    compactions_started: Arc<Counter>,
    compactions_installed: Arc<Counter>,
    compactions_failed: Arc<Counter>,
    compaction_retries: Arc<Counter>,
    compaction_latency: Arc<Histogram>,

    events: Mutex<VecDeque<EpochEvent>>,
}

impl ServiceMetrics {
    /// Registers the full instrument set on `registry` (idempotent —
    /// two services on one registry share series) and enables kernel
    /// profiling process-wide.
    pub fn new(registry: Arc<MetricsRegistry>) -> Arc<Self> {
        crate::profiling::set_profiling_enabled(true);
        let r = &registry;
        let mut latency = Vec::with_capacity(REQUEST_KINDS.len() * BACKEND_NAMES.len());
        for kind in REQUEST_KINDS {
            for backend in BACKEND_NAMES {
                latency.push(r.histogram_with(
                    "tpa_request_latency_seconds",
                    &[("kind", kind), ("backend", backend)],
                    "end-to-end request latency by request kind and serving backend",
                    Unit::Nanoseconds,
                ));
            }
        }
        let errors = ERROR_VARIANTS
            .iter()
            .map(|&v| {
                r.counter_with(
                    "tpa_request_errors_total",
                    &[("variant", v)],
                    "admission/serving failures by TpaError variant",
                )
            })
            .collect();
        let degraded = DEGRADATION_LEVELS[1..]
            .iter()
            .map(|&level| {
                r.counter_with(
                    "tpa_requests_degraded_total",
                    &[("level", level)],
                    "requests served at a reduced fidelity rung of the shed ladder",
                )
            })
            .collect();
        let m = ServiceMetrics {
            started: Instant::now(),
            requests_total: r
                .counter("tpa_requests_total", "requests accepted (admitted) in total"),
            latency,
            admission: r.histogram(
                "tpa_admission_seconds",
                "request admission (seed/config validation) span",
                Unit::Nanoseconds,
            ),
            pin: r.histogram(
                "tpa_snapshot_pin_seconds",
                "snapshot pin span (read-lock + Arc clone) in RwrService::submit",
                Unit::Nanoseconds,
            ),
            run: r.histogram(
                "tpa_run_seconds",
                "kernel execution span (post-admission scores computation)",
                Unit::Nanoseconds,
            ),
            cache_hits: r.counter(
                "tpa_cache_hits_total",
                "requests answered straight from the snapshot score cache",
            ),
            cache_misses: r.counter(
                "tpa_cache_misses_total",
                "requests that ran a kernel while the snapshot carried a score cache",
            ),
            errors_total: r.counter("tpa_request_errors_total", "admission/serving failures"),
            errors,
            topk_pruned: r.counter(
                "tpa_topk_pruned_nodes_total",
                "nodes excluded by bounded top-k bound proofs without a finished score",
            ),
            topk_early: r.counter(
                "tpa_topk_early_terminations_total",
                "bounded top-k sweeps terminated early by the separation proof",
            ),
            topk_fallback: r.counter(
                "tpa_topk_fallback_dense_total",
                "exact-bounds top-k requests answered by the dense path instead",
            ),
            inflight: r.gauge(
                "tpa_inflight_requests",
                "requests currently holding an admission-gate slot",
            ),
            queue_depth: r.gauge(
                "tpa_admission_queue_depth",
                "requests waiting in the bounded admission queue",
            ),
            degradation_level: r.gauge(
                "tpa_degradation_level",
                "shed ladder rung applied to the most recent admitted request \
                 (0 none … 4 rejected)",
            ),
            degraded,
            shed_total: r.counter(
                "tpa_requests_shed_total",
                "requests rejected by the admission gate or shed ladder (Overloaded)",
            ),
            deadline_exceeded: r.counter(
                "tpa_deadline_exceeded_total",
                "requests aborted at a queue or CPI iteration boundary by their deadline",
            ),
            cancelled: r.counter(
                "tpa_requests_cancelled_total",
                "requests aborted cooperatively by their CancelToken",
            ),
            publishes: r.counter("tpa_epoch_publishes_total", "snapshot epochs published"),
            publish_latency: r.histogram(
                "tpa_publish_latency_seconds",
                "apply_updates wall-clock: overlay apply through snapshot swap",
                Unit::Nanoseconds,
            ),
            publish_batch: r.histogram(
                "tpa_publish_batch_updates",
                "edge updates per published batch",
                Unit::Count,
            ),
            overlay_edges: r.gauge(
                "tpa_overlay_delta_edges",
                "delta edges in the writer overlay after the last publish",
            ),
            compaction_trigger_edges: r.gauge(
                "tpa_compaction_trigger_edges",
                "overlay size at which background compaction triggers (0 = disabled)",
            ),
            epoch: r.gauge("tpa_epoch", "currently published snapshot epoch"),
            compactions_started: r
                .counter("tpa_compactions_started_total", "background base rebuilds spawned"),
            compactions_installed: r
                .counter("tpa_compactions_installed_total", "background base rebuilds spliced in"),
            compactions_failed: r.counter(
                "tpa_compactions_failed_total",
                "background base rebuilds that panicked (overlay untouched)",
            ),
            compaction_retries: r.counter(
                "tpa_compaction_retries_total",
                "background rebuilds re-spawned after a failure, post backoff",
            ),
            compaction_latency: r.histogram(
                "tpa_compaction_seconds",
                "background rebuild thread duration (clone snapshot fold)",
                Unit::Nanoseconds,
            ),
            events: Mutex::new(VecDeque::with_capacity(EVENT_CAP)),
            registry,
        };
        Arc::new(m)
    }

    /// The registry this service records into (for exporters).
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    fn push_event(&self, ev: EpochEvent) {
        let mut events = self.events.lock().unwrap_or_else(|e| e.into_inner());
        if events.len() == EVENT_CAP {
            events.pop_front();
        }
        events.push_back(ev);
    }

    // ----- request side -----

    pub(crate) fn record_admission(&self, d: Duration) {
        self.admission.record_duration(d);
    }

    pub(crate) fn record_pin(&self, d: Duration) {
        self.pin.record_duration(d);
    }

    pub(crate) fn record_request(
        &self,
        kind: usize,
        backend: &str,
        cached: bool,
        has_cache: bool,
        elapsed: Duration,
        run: Duration,
    ) {
        self.requests_total.inc();
        self.latency[kind * BACKEND_NAMES.len() + backend_index(backend)].record_duration(elapsed);
        self.run.record_duration(run);
        if cached {
            self.cache_hits.inc();
        } else if has_cache {
            self.cache_misses.inc();
        }
    }

    pub(crate) fn record_topk(&self, g: &crate::TopKGuarantee) {
        self.topk_pruned.add(g.pruned_nodes as u64);
        if g.early_terminated {
            self.topk_early.inc();
        }
        if g.fallback_dense {
            self.topk_fallback.inc();
        }
    }

    pub(crate) fn record_error(&self, e: &TpaError) {
        self.errors_total.inc();
        let v = e.variant_name();
        if let Some(i) = ERROR_VARIANTS.iter().position(|&name| name == v) {
            self.errors[i].inc();
        }
        match e {
            TpaError::Overloaded { .. } => {
                self.shed_total.inc();
                self.degraded[DegradationLevel::Rejected.index() - 1].inc();
            }
            TpaError::DeadlineExceeded { .. } => self.deadline_exceeded.inc(),
            TpaError::Cancelled => self.cancelled.inc(),
            _ => {}
        }
    }

    // ----- admission side -----

    pub(crate) fn record_gate_depth(&self, inflight: u64, queued: u64) {
        self.inflight.set(inflight as f64);
        self.queue_depth.set(queued as f64);
    }

    pub(crate) fn record_degradation(&self, level: DegradationLevel) {
        self.degradation_level.set(level.index() as f64);
        let i = level.index();
        if (1..DEGRADATION_LEVELS.len()).contains(&i) {
            self.degraded[i - 1].inc();
        }
    }

    /// Live kernel-run p99 in seconds — the latency signal the shed
    /// ladder keys off (one histogram snapshot, no registry lock).
    pub(crate) fn live_run_p99_secs(&self) -> f64 {
        let s = self.run.snapshot();
        if s.count == 0 {
            0.0
        } else {
            s.quantile(0.99) as f64 * 1e-9
        }
    }

    // ----- writer side -----

    pub(crate) fn record_publish(
        &self,
        epoch: u64,
        updates: usize,
        elapsed: Duration,
        overlay_edges: u64,
        trigger_edges: Option<f64>,
    ) {
        self.publishes.inc();
        self.publish_latency.record_duration(elapsed);
        self.publish_batch.record(updates as u64);
        self.overlay_edges.set(overlay_edges as f64);
        self.compaction_trigger_edges.set(trigger_edges.unwrap_or(0.0));
        self.epoch.set(epoch as f64);
        self.push_event(EpochEvent::Published {
            epoch,
            updates,
            secs: elapsed.as_secs_f64(),
            overlay_edges,
        });
    }

    pub(crate) fn record_epoch(&self, epoch: u64) {
        self.epoch.set(epoch as f64);
    }

    pub(crate) fn record_index_rebuilt(&self, epoch: u64, patched: bool) {
        self.push_event(EpochEvent::IndexRebuilt { epoch, patched });
    }

    pub(crate) fn record_compaction_started(&self, overlay_edges: u64) {
        self.compactions_started.inc();
        self.push_event(EpochEvent::CompactionStarted { overlay_edges });
    }

    pub(crate) fn record_compaction_installed(&self, d: Duration) {
        self.compactions_installed.inc();
        self.compaction_latency.record_duration(d);
        self.push_event(EpochEvent::CompactionInstalled { secs: d.as_secs_f64() });
    }

    pub(crate) fn record_compaction_failed(&self, reason: &str) {
        self.compactions_failed.inc();
        self.push_event(EpochEvent::CompactionFailed { reason: reason.to_string() });
    }

    pub(crate) fn record_compaction_retry(&self) {
        self.compaction_retries.inc();
    }

    // ----- readout -----

    /// Reads every instrument into one typed point-in-time snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let uptime = self.started.elapsed().as_secs_f64().max(1e-9);
        let mut latency = Vec::new();
        for (ki, &kind) in REQUEST_KINDS.iter().enumerate() {
            for (bi, &backend) in BACKEND_NAMES.iter().enumerate() {
                let h = &self.latency[ki * BACKEND_NAMES.len() + bi];
                if h.count() > 0 {
                    latency.push((kind, backend, LatencyStats::from_hist(h)));
                }
            }
        }
        let errors = ERROR_VARIANTS
            .iter()
            .zip(&self.errors)
            .map(|(&v, c)| (v, c.get()))
            .filter(|&(_, n)| n > 0)
            .collect();
        MetricsSnapshot {
            uptime_secs: uptime,
            requests: RequestMetrics {
                total: self.requests_total.get(),
                cache_hits: self.cache_hits.get(),
                cache_misses: self.cache_misses.get(),
                errors_total: self.errors_total.get(),
                errors,
                topk_pruned_nodes: self.topk_pruned.get(),
                topk_early_terminations: self.topk_early.get(),
                topk_fallback_dense: self.topk_fallback.get(),
                latency,
                admission: LatencyStats::from_hist(&self.admission),
                pin: LatencyStats::from_hist(&self.pin),
                run: LatencyStats::from_hist(&self.run),
            },
            writer: WriterMetrics {
                publishes: self.publishes.get(),
                epochs_per_sec: self.publishes.get() as f64 / uptime,
                publish_latency: LatencyStats::from_hist(&self.publish_latency),
                batch_updates: ValueStats::from_hist(&self.publish_batch),
                overlay_edges: self.overlay_edges.get() as u64,
                compaction_trigger_edges: self.compaction_trigger_edges.get() as u64,
                epoch: self.epoch.get() as u64,
                compactions_started: self.compactions_started.get(),
                compactions_installed: self.compactions_installed.get(),
                compactions_failed: self.compactions_failed.get(),
                compaction_retries: self.compaction_retries.get(),
                compaction_latency: LatencyStats::from_hist(&self.compaction_latency),
                recent_events: {
                    let events = self.events.lock().unwrap_or_else(|e| e.into_inner());
                    events.iter().cloned().collect()
                },
            },
            admission: AdmissionMetrics {
                inflight: self.inflight.get() as u64,
                queue_depth: self.queue_depth.get() as u64,
                degradation_level: DEGRADATION_LEVELS
                    [(self.degradation_level.get() as usize).min(DEGRADATION_LEVELS.len() - 1)],
                degraded: DEGRADATION_LEVELS[1..]
                    .iter()
                    .zip(&self.degraded)
                    .map(|(&level, c)| (level, c.get()))
                    .filter(|&(_, n)| n > 0)
                    .collect(),
                shed_total: self.shed_total.get(),
                deadline_exceeded: self.deadline_exceeded.get(),
                cancelled: self.cancelled.get(),
            },
            kernel: kernel_profile(),
        }
    }
}

impl std::fmt::Debug for ServiceMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceMetrics")
            .field("requests", &self.requests_total.get())
            .field("publishes", &self.publishes.get())
            .finish_non_exhaustive()
    }
}

/// Latency distribution readout in seconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencyStats {
    /// Samples recorded.
    pub count: u64,
    /// Mean seconds.
    pub mean_secs: f64,
    /// Median (≤ 12.5% bucket error, upper estimate).
    pub p50_secs: f64,
    /// 90th percentile.
    pub p90_secs: f64,
    /// 99th percentile.
    pub p99_secs: f64,
    /// Largest sample.
    pub max_secs: f64,
}

impl LatencyStats {
    fn from_hist(h: &Histogram) -> Self {
        let s = h.snapshot();
        LatencyStats {
            count: s.count,
            mean_secs: s.mean() * 1e-9,
            p50_secs: s.quantile(0.5) as f64 * 1e-9,
            p90_secs: s.quantile(0.9) as f64 * 1e-9,
            p99_secs: s.quantile(0.99) as f64 * 1e-9,
            max_secs: s.max as f64 * 1e-9,
        }
    }
}

/// Dimensionless distribution readout (batch sizes).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ValueStats {
    /// Samples recorded.
    pub count: u64,
    /// Mean value.
    pub mean: f64,
    /// Median (≤ 12.5% bucket error, upper estimate).
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Largest sample.
    pub max: u64,
}

impl ValueStats {
    fn from_hist(h: &Histogram) -> Self {
        let s = h.snapshot();
        ValueStats {
            count: s.count,
            mean: s.mean(),
            p50: s.quantile(0.5),
            p99: s.quantile(0.99),
            max: s.max,
        }
    }
}

/// Request-side readout.
#[derive(Clone, Debug, Default)]
pub struct RequestMetrics {
    /// Requests admitted in total (success or kernel failure, not
    /// admission rejections).
    pub total: u64,
    /// Requests answered straight from the snapshot score cache.
    pub cache_hits: u64,
    /// Requests that ran a kernel while a score cache was present.
    pub cache_misses: u64,
    /// Failures across all variants.
    pub errors_total: u64,
    /// Nonzero per-variant failure counts.
    pub errors: Vec<(&'static str, u64)>,
    /// Nodes excluded by bounded top-k proofs without a finished score.
    pub topk_pruned_nodes: u64,
    /// Bounded top-k sweeps terminated early by the separation proof.
    pub topk_early_terminations: u64,
    /// Exact-bounds top-k requests the service answered densely instead
    /// (out-of-core backend — bounds can't ride its sweep).
    pub topk_fallback_dense: u64,
    /// Nonempty (kind, backend) latency cells.
    pub latency: Vec<(&'static str, &'static str, LatencyStats)>,
    /// Admission (validation) span.
    pub admission: LatencyStats,
    /// Snapshot-pin span in [`crate::RwrService::submit`].
    pub pin: LatencyStats,
    /// Kernel execution span.
    pub run: LatencyStats,
}

/// Writer-side (epoch lifecycle) readout.
#[derive(Clone, Debug, Default)]
pub struct WriterMetrics {
    /// Epochs published by `apply_updates`.
    pub publishes: u64,
    /// Publishes per second of service uptime.
    pub epochs_per_sec: f64,
    /// Publish (apply → swap) latency.
    pub publish_latency: LatencyStats,
    /// Updates per published batch.
    pub batch_updates: ValueStats,
    /// Overlay delta edges after the last publish.
    pub overlay_edges: u64,
    /// Overlay size that triggers background compaction (0 = disabled).
    pub compaction_trigger_edges: u64,
    /// Currently published epoch.
    pub epoch: u64,
    /// Background rebuilds spawned.
    pub compactions_started: u64,
    /// Background rebuilds spliced in.
    pub compactions_installed: u64,
    /// Background rebuilds that panicked.
    pub compactions_failed: u64,
    /// Rebuilds re-spawned after a failure once the backoff elapsed.
    pub compaction_retries: u64,
    /// Rebuild-thread fold duration.
    pub compaction_latency: LatencyStats,
    /// The bounded lifecycle event ring, oldest first.
    pub recent_events: Vec<EpochEvent>,
}

/// Admission-gate and shed-ladder readout.
#[derive(Clone, Debug, Default)]
pub struct AdmissionMetrics {
    /// Requests currently holding an in-flight slot.
    pub inflight: u64,
    /// Requests waiting in the bounded admission queue.
    pub queue_depth: u64,
    /// Ladder rung applied to the most recent admitted request.
    pub degradation_level: &'static str,
    /// Nonzero per-rung degraded-request counts
    /// (see [`DEGRADATION_LEVELS`]).
    pub degraded: Vec<(&'static str, u64)>,
    /// Requests rejected by the gate or ladder (`Overloaded`).
    pub shed_total: u64,
    /// Requests aborted by their deadline.
    pub deadline_exceeded: u64,
    /// Requests aborted by their cancel token.
    pub cancelled: u64,
}

/// Everything [`ServiceMetrics::snapshot`] reads, as plain data.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Seconds since the metrics were attached.
    pub uptime_secs: f64,
    /// Request-side counters and spans.
    pub requests: RequestMetrics,
    /// Writer-side epoch lifecycle.
    pub writer: WriterMetrics,
    /// Admission-gate and shed-ladder state.
    pub admission: AdmissionMetrics,
    /// Process-wide kernel profiling counters.
    pub kernel: KernelProfile,
}
