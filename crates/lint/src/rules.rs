//! The four rule families. All rules operate on the lexed,
//! test-stripped token stream of a [`SourceFile`] — never on raw text —
//! so strings, comments, and `#[cfg(test)]` items are already out of
//! the picture.

use crate::lexer::{TokKind, Token};
use crate::{Config, Finding, Severity, SourceFile};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Identifiers that read like keywords; an opening `[` after one of
/// these is a slice pattern, type, or block — not an index expression.
const KEYWORDS: &[&str] = &[
    "as", "box", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "self", "Self", "static", "struct", "super", "trait", "type", "unsafe", "use",
    "where", "while", "yield",
];

fn push(
    findings: &mut Vec<Finding>,
    f: &SourceFile,
    line: usize,
    rule: &'static str,
    sev: Severity,
    msg: String,
) {
    findings.push(Finding { file: f.path.clone(), line, rule, severity: sev, message: msg });
}

// ---------------------------------------------------------------------
// Family 1: panic-freedom
// ---------------------------------------------------------------------

/// Flags `unwrap()` / `expect(` / panicking macros and unchecked slice
/// indexing in the serving / kernel path files.
pub fn panic_freedom(f: &SourceFile, findings: &mut Vec<Finding>) {
    let toks = &f.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let next = toks.get(i + 1);
        match t.text.as_str() {
            // `.unwrap()` / `.expect(` method calls: require a leading
            // `.` so locals named `unwrap` (none, but cheap) and macro
            // definitions don't trip it. `unwrap_or_else` is a distinct
            // identifier and never matches.
            "unwrap" | "expect"
                if i > 0 && toks[i - 1].is_punct(".") && next.is_some_and(|n| n.is_punct("(")) =>
            {
                push(
                    findings,
                    f,
                    t.line,
                    "panic-freedom",
                    Severity::Error,
                    format!(
                        ".{}() can panic on the serving path; return a typed TpaError instead \
                         (or lint:allow with the unreachability proof)",
                        t.text
                    ),
                );
            }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if next.is_some_and(|n| n.is_punct("!")) =>
            {
                push(
                    findings,
                    f,
                    t.line,
                    "panic-freedom",
                    Severity::Error,
                    format!(
                        "{}! aborts the serving path; return a typed TpaError instead \
                         (or lint:allow with the unreachability proof)",
                        t.text
                    ),
                );
            }
            _ => {}
        }
    }
    // Unchecked indexing: `expr[...]` where expr ends in an identifier,
    // `)`, or `]`. Types (`[f64; 4]`), slice patterns (`let [a] = …`),
    // attributes (`#[…]`), and macro brackets (`vec![…]`) are excluded
    // by the preceding-token test.
    for (i, t) in toks.iter().enumerate() {
        if !t.is_punct("[") || i == 0 {
            continue;
        }
        let prev = &toks[i - 1];
        let indexes = match prev.kind {
            TokKind::Ident => !KEYWORDS.contains(&prev.text.as_str()),
            TokKind::Punct => prev.text == ")" || prev.text == "]",
            _ => false,
        };
        if indexes {
            push(
                findings,
                f,
                t.line,
                "unchecked-index",
                Severity::Warning,
                "unchecked slice index can panic on the serving path; prefer .get() or a \
                 length-checked loop (or lint:allow with the bounds proof)"
                    .to_string(),
            );
        }
    }
}

// ---------------------------------------------------------------------
// Family 2: atomic-ordering discipline
// ---------------------------------------------------------------------

const MEMORY_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Every `Ordering::<memory variant>` must carry a `// ord:` comment on
/// its line (or the comment block directly above), or be pre-approved
/// by the per-file policy table. `std::cmp::Ordering`'s variants never
/// match.
pub fn atomic_ordering(f: &SourceFile, cfg: &Config, findings: &mut Vec<Finding>) {
    let toks = &f.tokens;
    for i in 0..toks.len() {
        if !toks[i].is_ident("Ordering") {
            continue;
        }
        let Some(sep) = toks.get(i + 1) else { continue };
        let Some(var) = toks.get(i + 2) else { continue };
        if !sep.is_punct("::") || var.kind != TokKind::Ident {
            continue;
        }
        if !MEMORY_ORDERINGS.contains(&var.text.as_str()) {
            continue;
        }
        if cfg.ordering_allowed(&f.path, &var.text) {
            continue;
        }
        let justified =
            f.lexed.find_justification(var.line, |c| c.contains("ord:").then_some(())).is_some();
        if !justified {
            push(
                findings,
                f,
                var.line,
                "atomic-ordering",
                Severity::Error,
                format!(
                    "Ordering::{} without a `// ord:` justification naming the happens-before \
                     edge it relies on (or a policy-table entry)",
                    var.text
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------
// Family 3: lock-order safety
// ---------------------------------------------------------------------

/// A lock identity: the declared field/static name. Field names are
/// unique across the scoped files today; collisions would only make the
/// analysis *more* conservative.
type LockName = String;

#[derive(Clone, Debug)]
struct Acquisition {
    lock: LockName,
    /// Token index within the function body.
    pos: usize,
    line: usize,
    /// Guard bound by `let` — held until an explicit `drop(binding)` or
    /// the end of the function (conservative). Temporaries drop at
    /// their statement's end and never hold.
    held: bool,
    /// The `let`-bound guard variable, when the pattern is a plain
    /// identifier — what `drop(binding)` releases.
    binding: Option<String>,
}

/// One call site inside a function body.
#[derive(Clone, Debug)]
struct CallSite {
    callee: String,
    pos: usize,
    line: usize,
    /// `Some(name)` when the statement containing the call `let`-binds
    /// its value: a call to a guard-returning alias function is then a
    /// *held* acquisition under that binding.
    let_binding: Option<String>,
}

#[derive(Debug, Default)]
struct FnInfo {
    file: usize,
    acquisitions: Vec<Acquisition>,
    /// Every call to a function defined in the scoped file set.
    calls: Vec<CallSite>,
    /// Condvar wait sites: `(pos, line)`.
    waits: Vec<(usize, usize)>,
    /// Explicit `drop(binding)` sites: `(pos, binding)`.
    releases: Vec<(usize, String)>,
}

/// Builds the may-hold-while-acquiring graph over the `Mutex` /
/// `RwLock` / `Condvar` fields declared in `files` and reports cycles
/// (deadlock candidates) plus condvar waits taken while another lock is
/// held. Conservative by design: a `let`-bound guard is assumed held to
/// the end of its function, and calls are resolved by name across the
/// whole scoped file set.
pub fn lock_order(files: &[&SourceFile], findings: &mut Vec<Finding>) {
    if files.is_empty() {
        return;
    }
    // Pass 1: lock field declarations — `name: Mutex<` / `RwLock<` /
    // `Condvar` in struct bodies or statics.
    let mut locks: HashSet<LockName> = HashSet::new();
    let mut condvars: HashSet<LockName> = HashSet::new();
    for f in files {
        let toks = &f.tokens;
        for i in 0..toks.len() {
            if !toks[i].is_punct(":") {
                continue;
            }
            let Some(name) = i.checked_sub(1).and_then(|j| toks.get(j)) else { continue };
            if name.kind != TokKind::Ident {
                continue;
            }
            // Skip path segments and type ascriptions in generics: the
            // declared type must follow as `Mutex`/`RwLock`/`Condvar`
            // (optionally behind a path like std::sync::Mutex).
            let mut j = i + 1;
            let mut ty = None;
            while let Some(t) = toks.get(j) {
                match t.kind {
                    TokKind::Ident => {
                        ty = Some(t.text.as_str());
                        if toks.get(j + 1).is_some_and(|n| n.is_punct("::")) {
                            j += 2;
                            continue;
                        }
                        break;
                    }
                    _ => break,
                }
            }
            match ty {
                Some("Mutex") | Some("RwLock") => {
                    locks.insert(name.text.clone());
                }
                Some("Condvar") => {
                    condvars.insert(name.text.clone());
                }
                _ => {}
            }
        }
    }
    if locks.is_empty() {
        return;
    }

    // Pass 2: function bodies — acquisitions, calls, waits, aliases.
    let mut fns: HashMap<String, FnInfo> = HashMap::new();
    let mut aliases: HashMap<String, LockName> = HashMap::new();
    let mut fn_order: Vec<String> = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        let toks = &f.tokens;
        let mut i = 0;
        while i < toks.len() {
            if !(toks[i].is_ident("fn")
                && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident))
            {
                i += 1;
                continue;
            }
            let name = toks[i + 1].text.clone();
            // Find the body: first `{` after the signature (or `;` for
            // a trait method declaration — skip those).
            let mut j = i + 2;
            let mut body_start = None;
            while let Some(t) = toks.get(j) {
                if t.is_punct(";") {
                    break;
                }
                if t.is_punct("{") {
                    body_start = Some(j);
                    break;
                }
                j += 1;
            }
            let Some(start) = body_start else {
                i = j + 1;
                continue;
            };
            let mut depth = 0usize;
            let mut end = start;
            for (k, t) in toks.iter().enumerate().skip(start) {
                if t.is_punct("{") {
                    depth += 1;
                } else if t.is_punct("}") {
                    depth -= 1;
                    if depth == 0 {
                        end = k;
                        break;
                    }
                }
            }
            let body = &toks[start..=end.max(start)];
            let info = scan_fn_body(fi, body, &locks, &condvars);
            // Alias detection: the body's tail expression is directly a
            // lock acquisition chain (`self.<field>.lock()…`), so call
            // sites receive the guard.
            if let Some(lock) = tail_lock_alias(body, &locks) {
                aliases.insert(name.clone(), lock);
            }
            if !fns.contains_key(&name) {
                fn_order.push(name.clone());
            }
            fns.entry(name).or_insert(info);
            i = end.max(start) + 1;
        }
    }

    // Keep only calls to functions we scanned (intra-crate, by name).
    {
        let known: HashSet<String> = fns.keys().cloned().collect();
        for info in fns.values_mut() {
            info.calls.retain(|c| known.contains(&c.callee));
        }
    }

    // Fixpoint: transitive lock effects per function.
    let mut effects: HashMap<String, BTreeSet<LockName>> = HashMap::new();
    for (name, info) in &fns {
        let mut s: BTreeSet<LockName> = info.acquisitions.iter().map(|a| a.lock.clone()).collect();
        if let Some(l) = aliases.get(name) {
            s.insert(l.clone());
        }
        effects.insert(name.clone(), s);
    }
    loop {
        let mut changed = false;
        for name in &fn_order {
            let calls = fns[name].calls.clone();
            let mut add: BTreeSet<LockName> = BTreeSet::new();
            for c in &calls {
                if let Some(l) = aliases.get(&c.callee) {
                    add.insert(l.clone());
                }
                if let Some(e) = effects.get(&c.callee) {
                    add.extend(e.iter().cloned());
                }
            }
            let e = effects.entry(name.clone()).or_default();
            let before = e.len();
            e.extend(add);
            if e.len() != before {
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Edges: held lock L → any lock M acquired later in the same
    // function (directly, or transitively through a call).
    #[derive(Clone)]
    enum Event {
        Acq(Acquisition),
        Call(CallSite),
        Wait(usize),
        Release(String),
    }
    let mut edges: BTreeMap<(LockName, LockName), (usize, usize)> = BTreeMap::new();
    for name in &fn_order {
        let info = &fns[name];
        let mut events: Vec<(usize, Event)> = Vec::new();
        for a in &info.acquisitions {
            events.push((a.pos, Event::Acq(a.clone())));
        }
        for c in &info.calls {
            events.push((c.pos, Event::Call(c.clone())));
        }
        for &(pos, line) in &info.waits {
            events.push((pos, Event::Wait(line)));
        }
        for (pos, binding) in &info.releases {
            events.push((*pos, Event::Release(binding.clone())));
        }
        events.sort_by_key(|e| e.0);
        let mut held: Vec<Acquisition> = Vec::new();
        for (_, ev) in events {
            match ev {
                Event::Acq(a) => {
                    for h in &held {
                        // Includes same-lock reacquire: self-deadlock.
                        edges
                            .entry((h.lock.clone(), a.lock.clone()))
                            .or_insert((info.file, a.line));
                    }
                    if a.held {
                        held.push(a);
                    }
                }
                Event::Call(c) => {
                    if let Some(e) = effects.get(&c.callee) {
                        for h in &held {
                            for m in e {
                                edges
                                    .entry((h.lock.clone(), m.clone()))
                                    .or_insert((info.file, c.line));
                            }
                        }
                    }
                    // A `let`-bound call to a guard-returning alias is
                    // a held acquisition from here on.
                    if let Some(l) = aliases.get(&c.callee) {
                        if let Some(b) = &c.let_binding {
                            held.push(Acquisition {
                                lock: l.clone(),
                                pos: c.pos,
                                line: c.line,
                                held: true,
                                binding: Some(b.clone()).filter(|b| !b.is_empty()),
                            });
                        }
                    }
                }
                Event::Release(binding) => {
                    held.retain(|a| a.binding.as_deref() != Some(binding.as_str()));
                }
                Event::Wait(line) => {
                    // The wait releases only its own mutex (assumed to
                    // be the most recent held acquisition); any other
                    // held lock blocks every other waiter.
                    if held.len() >= 2 {
                        let names: Vec<&str> = held.iter().map(|a| a.lock.as_str()).collect();
                        findings.push(Finding {
                            file: files[info.file].path.clone(),
                            line,
                            rule: "condvar-hold",
                            severity: Severity::Error,
                            message: format!(
                                "condvar wait in `{name}` while holding locks [{}]: the wait \
                                 releases only its own mutex — any other held lock blocks \
                                 every other waiter",
                                names.join(", ")
                            ),
                        });
                    }
                }
            }
        }
    }

    // Debugging aid: `TPA_LINT_DEBUG=1` dumps the full edge set.
    if std::env::var_os("TPA_LINT_DEBUG").is_some() {
        for ((a, b), (fi, line)) in &edges {
            eprintln!("lock-edge: {a} -> {b} at {}:{line}", files[*fi].path);
        }
    }
    // Cycle detection over the lock graph (includes self-loops).
    let mut adj: BTreeMap<&LockName, Vec<&LockName>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a).or_default().push(b);
    }
    let lock_list: Vec<&LockName> = adj.keys().copied().collect();
    for start in lock_list {
        // DFS from `start` looking for a path back to `start`.
        let mut stack = vec![start];
        let mut visited: HashSet<&LockName> = HashSet::new();
        let mut found = false;
        while let Some(cur) = stack.pop() {
            for next in adj.get(cur).into_iter().flatten() {
                if *next == start {
                    found = true;
                    break;
                }
                if visited.insert(next) {
                    stack.push(next);
                }
            }
            if found {
                break;
            }
        }
        if found {
            let (file_idx, line) =
                edges.iter().find(|((a, _), _)| a == start).map(|(_, v)| *v).unwrap_or((0, 1));
            findings.push(Finding {
                file: files[file_idx].path.clone(),
                line,
                rule: "lock-order",
                severity: Severity::Error,
                message: format!(
                    "lock `{start}` participates in a may-hold-while-acquiring cycle \
                     ({}): deadlock candidate — impose a global acquisition order",
                    describe_cycle(start, &adj)
                ),
            });
        }
    }
}

/// Renders one witness cycle starting at `start` for the finding text.
fn describe_cycle(start: &LockName, adj: &BTreeMap<&LockName, Vec<&LockName>>) -> String {
    // Short BFS back to start, rendering the first path found.
    let mut path = vec![start.clone()];
    let mut cur = start;
    for _ in 0..8 {
        let Some(nexts) = adj.get(cur) else { break };
        let Some(next) = nexts.iter().min() else { break };
        path.push((*next).clone());
        if *next == start {
            break;
        }
        cur = next;
    }
    path.join(" -> ")
}

/// Scans a function body for lock events. `body` starts at the opening
/// `{`.
fn scan_fn_body(
    file: usize,
    body: &[Token],
    locks: &HashSet<LockName>,
    condvars: &HashSet<LockName>,
) -> FnInfo {
    let mut info = FnInfo { file, ..Default::default() };
    // Statement starts: after `{`, `}`, or `;`. Track the current
    // statement's `let` binding: `None` outside a let, `Some(name)` for
    // `let [mut] name = …`, `Some("")` for destructuring patterns
    // (held, but not releasable via `drop(name)`).
    let mut stmt_binding: Option<String> = None;
    let mut at_stmt_start = true;
    for i in 0..body.len() {
        let t = &body[i];
        if t.kind == TokKind::Punct && matches!(t.text.as_str(), "{" | "}" | ";") {
            at_stmt_start = true;
            stmt_binding = None;
            continue;
        }
        if at_stmt_start {
            stmt_binding = if t.is_ident("let") {
                let mut j = i + 1;
                if body.get(j).is_some_and(|n| n.is_ident("mut")) {
                    j += 1;
                }
                match body.get(j) {
                    Some(n) if n.kind == TokKind::Ident => Some(n.text.clone()),
                    _ => Some(String::new()),
                }
            } else {
                None
            };
            at_stmt_start = false;
        }
        if t.kind != TokKind::Ident {
            continue;
        }
        let prev_dot = i > 0 && body[i - 1].is_punct(".");
        let next_open = body.get(i + 1).is_some_and(|n| n.is_punct("("));
        // `<field>.lock() / .read() / .write()` on a declared lock.
        if matches!(t.text.as_str(), "lock" | "read" | "write") && prev_dot && next_open {
            if let Some(field) = i.checked_sub(2).and_then(|j| body.get(j)) {
                if field.kind == TokKind::Ident && locks.contains(&field.text) {
                    info.acquisitions.push(Acquisition {
                        lock: field.text.clone(),
                        pos: i,
                        line: t.line,
                        held: stmt_binding.is_some(),
                        binding: stmt_binding.clone().filter(|b| !b.is_empty()),
                    });
                }
            }
        }
        // Condvar waits: `<cv>.wait(…)` / `.wait_timeout` / `.wait_while`.
        if matches!(t.text.as_str(), "wait" | "wait_timeout" | "wait_while")
            && prev_dot
            && next_open
        {
            let on_condvar = i
                .checked_sub(2)
                .and_then(|j| body.get(j))
                .is_some_and(|f| f.kind == TokKind::Ident && condvars.contains(&f.text));
            if on_condvar || condvars.is_empty() {
                info.waits.push((i, t.line));
            }
        }
        // `drop(guard)` releases that binding's guard early. `drop` is
        // always std's consuming drop here — `Drop::drop` is never
        // called by name — so it must not resolve to local `fn drop`
        // bodies (a Drop impl that re-locks would otherwise read as a
        // self-deadlock at every `drop(guard)` site).
        if t.is_ident("drop") && !prev_dot && next_open {
            if let (Some(arg), Some(close)) = (body.get(i + 2), body.get(i + 3)) {
                if arg.kind == TokKind::Ident && close.is_punct(")") {
                    info.releases.push((i, arg.text.clone()));
                }
            }
            continue;
        }
        // Calls: recorded for the transitive effect propagation;
        // non-local names are filtered later. Method calls only resolve
        // when the receiver chain is rooted at `self` (`self.f(…)`,
        // `self.gate.f(…)`) — a method on a local variable sharing a
        // name with a scoped fn (`overlay.compact()` vs
        // `RwrService::compact`) must not inherit its effects.
        // Qualified calls resolve only through `Self::`.
        if next_open && !matches!(t.text.as_str(), "lock" | "read" | "write") {
            let resolvable = if prev_dot {
                let mut k = i;
                while k >= 2 && body[k - 1].is_punct(".") && body[k - 2].kind == TokKind::Ident {
                    k -= 2;
                }
                body[k].is_ident("self")
            } else if i > 0 && body[i - 1].is_punct("::") {
                i >= 2 && body[i - 2].is_ident("Self")
            } else {
                true
            };
            if resolvable {
                info.calls.push(CallSite {
                    callee: t.text.clone(),
                    pos: i,
                    line: t.line,
                    let_binding: stmt_binding.clone(),
                });
            }
        }
    }
    info
}

/// When the body's tail expression is directly `self.<field>.<lock|read|write>(…)`
/// (followed only by `unwrap*` / `expect` adapters), the function hands
/// its guard to the caller: treat call sites as acquisitions.
fn tail_lock_alias(body: &[Token], locks: &HashSet<LockName>) -> Option<LockName> {
    // Find the start of the final statement at depth 1.
    let mut depth = 0usize;
    let mut last_stmt_start = 1;
    for (i, t) in body.iter().enumerate() {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => depth = depth.saturating_sub(1),
            ";" if depth == 1 => last_stmt_start = i + 1,
            _ => {}
        }
    }
    let tail = &body[last_stmt_start..];
    // Accept `self . field . lock (` and `field . lock (` heads.
    let head: Vec<&Token> = tail.iter().take(6).collect();
    let idx = match head.first() {
        Some(t) if t.is_ident("self") => 2,
        _ => 0,
    };
    let field = head.get(idx)?;
    let dot = head.get(idx + 1)?;
    let method = head.get(idx + 2)?;
    if field.kind == TokKind::Ident
        && locks.contains(&field.text)
        && dot.is_punct(".")
        && matches!(method.text.as_str(), "lock" | "read" | "write")
    {
        Some(field.text.clone())
    } else {
        None
    }
}

// ---------------------------------------------------------------------
// Family 4: FP-determinism
// ---------------------------------------------------------------------

const MAP_TYPES: &[&str] = &["HashMap", "HashSet"];
const ITER_METHODS: &[&str] =
    &["iter", "iter_mut", "values", "values_mut", "keys", "drain", "into_iter"];
const PAR_METHODS: &[&str] =
    &["par_iter", "into_par_iter", "par_iter_mut", "par_chunks", "par_bridge", "reduce_with"];

/// Kernel-module determinism: float folds over `HashMap` / `HashSet`
/// iteration (arbitrary order ⇒ non-associative float sums differ run
/// to run) and rayon-style unordered parallel reductions.
pub fn fp_determinism(f: &SourceFile, findings: &mut Vec<Finding>) {
    let toks = &f.tokens;
    // Names declared with a HashMap/HashSet type anywhere in the file
    // (let bindings, fields, params): `name : HashMap<…>` or
    // `name = HashMap::…` / `HashSet::…`.
    let mut map_vars: HashSet<&str> = HashSet::new();
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident || !MAP_TYPES.contains(&toks[i].text.as_str()) {
            continue;
        }
        // Walk back over a possible path prefix (std::collections::…),
        // then over reference/mutability sigils (`&`, `&mut`).
        let mut j = i;
        while j >= 2 && toks[j - 1].is_punct("::") && toks[j - 2].kind == TokKind::Ident {
            j -= 2;
        }
        while j >= 1 && (toks[j - 1].is_punct("&") || toks[j - 1].is_ident("mut")) {
            j -= 1;
        }
        if let Some(k) = j.checked_sub(1) {
            let before = &toks[k];
            let name_at =
                if before.is_punct(":") || before.is_punct("=") { k.checked_sub(1) } else { None };
            if let Some(n) = name_at.and_then(|x| toks.get(x)) {
                if n.kind == TokKind::Ident {
                    map_vars.insert(&n.text);
                }
            }
        }
    }
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        // Unordered parallel reductions, regardless of receiver.
        if PAR_METHODS.contains(&t.text.as_str())
            && i > 0
            && toks[i - 1].is_punct(".")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
        {
            push(
                findings,
                f,
                t.line,
                "unordered-reduction",
                Severity::Error,
                format!(
                    ".{}() reduces in nondeterministic order; kernel folds must be \
                     blocked-canonical to stay bitwise identical across backends",
                    t.text
                ),
            );
            continue;
        }
        // `mapvar.iter()/…` followed in the same statement by a float
        // fold (`.sum(`, `.fold(`, `.product(`), or a `for … in` loop
        // over the map whose body contains a compound float assignment.
        if map_vars.contains(t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct("."))
            && toks.get(i + 2).is_some_and(|m| {
                m.kind == TokKind::Ident && ITER_METHODS.contains(&m.text.as_str())
            })
        {
            // Same-statement chained fold?
            let mut j = i + 3;
            let mut fold_line = None;
            while let Some(n) = toks.get(j) {
                if n.kind == TokKind::Punct && matches!(n.text.as_str(), ";" | "{" | "}") {
                    break;
                }
                if n.kind == TokKind::Ident
                    && matches!(n.text.as_str(), "sum" | "fold" | "product")
                    && toks.get(j - 1).is_some_and(|p| p.is_punct("."))
                {
                    fold_line = Some(n.line);
                    break;
                }
                j += 1;
            }
            // Or: inside a `for … in map.iter()` loop whose body has a
            // compound assignment.
            let in_for = (0..i).rev().take(24).any(|k| toks[k].is_ident("for"))
                && (0..i).rev().take(24).any(|k| toks[k].is_ident("in"));
            if fold_line.is_none() && in_for {
                // Find the loop body `{ … }` and scan it.
                let mut k = i;
                while let Some(n) = toks.get(k) {
                    if n.is_punct("{") {
                        break;
                    }
                    if n.is_punct(";") {
                        k = toks.len();
                        break;
                    }
                    k += 1;
                }
                if k < toks.len() {
                    let mut depth = 0usize;
                    for n in &toks[k..] {
                        if n.kind == TokKind::Punct {
                            match n.text.as_str() {
                                "{" => depth += 1,
                                "}" => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                "+=" | "-=" | "*=" | "/=" => {
                                    fold_line = Some(n.line);
                                    break;
                                }
                                _ => {}
                            }
                        }
                    }
                }
            }
            if let Some(line) = fold_line {
                push(
                    findings,
                    f,
                    line,
                    "fp-hashmap-fold",
                    Severity::Error,
                    format!(
                        "fold over `{}` iteration: HashMap/HashSet order is arbitrary, so a \
                         float accumulation here is nondeterministic — iterate a sorted view \
                         or fold into per-index slots",
                        t.text
                    ),
                );
            }
        }
    }
}

/// `Result<_, String>` / `Box<dyn Error>` anywhere in `tpa-core`:
/// the typed-error migration (PR 5) must not regress.
pub fn stringly_errors(f: &SourceFile, findings: &mut Vec<Finding>) {
    let toks = &f.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.is_ident("Result") && toks.get(i + 1).is_some_and(|n| n.is_punct("<")) {
            // Scan the generic list at depth 1 for a top-level `,`
            // followed by `String`.
            let mut depth = 0usize;
            let mut j = i + 1;
            while let Some(n) = toks.get(j) {
                if n.kind == TokKind::Punct {
                    match n.text.as_str() {
                        "<" => depth += 1,
                        ">" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        "," if depth == 1
                            && toks.get(j + 1).is_some_and(|e| e.is_ident("String"))
                            && toks.get(j + 2).is_some_and(|e| e.is_punct(">")) =>
                        {
                            push(
                                findings,
                                f,
                                n.line,
                                "stringly-error",
                                Severity::Error,
                                "Result<_, String> regresses the typed-error contract; \
                                 use TpaError (add a variant if none fits)"
                                    .to_string(),
                            );
                        }
                        ";" | "{" => break,
                        _ => {}
                    }
                }
                j += 1;
            }
        }
        // Box<dyn Error> / Box<dyn std::error::Error>.
        if t.is_ident("Box") && toks.get(i + 1).is_some_and(|n| n.is_punct("<")) {
            let window: Vec<&Token> = toks.iter().skip(i + 2).take(8).collect();
            let has_dyn = window.iter().any(|w| w.is_ident("dyn"));
            let has_err = window.iter().any(|w| w.is_ident("Error"));
            if has_dyn && has_err {
                push(
                    findings,
                    f,
                    t.line,
                    "stringly-error",
                    Severity::Error,
                    "Box<dyn Error> erases the error type; use TpaError so callers can match"
                        .to_string(),
                );
            }
        }
    }
}
