//! The ratcheted baseline: pre-existing debt, keyed by
//! `(file, rule) → count`, committed as `lint-baseline.json`.
//!
//! Counts — not line numbers — so unrelated edits that shift lines
//! don't invalidate the baseline, while any *new* finding in a
//! `(file, rule)` cell pushes its count over the recorded value and
//! fails the check. Burned-down debt leaves the baseline *stale*
//! (recorded count above reality), which also fails: the ratchet only
//! ever tightens, via `tpa-lint check --write-baseline`.

use crate::json::{self, Value};
use crate::Finding;
use std::collections::BTreeMap;

pub const FORMAT_VERSION: u64 = 1;

/// `(file → rule → count)`, the committed debt ledger.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Baseline {
    pub counts: BTreeMap<String, BTreeMap<String, u64>>,
}

impl Baseline {
    /// Aggregates findings into a fresh baseline.
    pub fn from_findings(findings: &[Finding]) -> Self {
        let mut counts: BTreeMap<String, BTreeMap<String, u64>> = BTreeMap::new();
        for f in findings {
            *counts.entry(f.file.clone()).or_default().entry(f.rule.to_string()).or_default() += 1;
        }
        Baseline { counts }
    }

    /// Total recorded findings.
    pub fn total(&self) -> u64 {
        self.counts.values().flat_map(|r| r.values()).sum()
    }

    /// Renders the committed JSON form (stable ordering, so diffs are
    /// reviewable).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"version\": {FORMAT_VERSION},\n"));
        out.push_str(&format!("  \"total\": {},\n", self.total()));
        out.push_str("  \"findings\": {");
        let mut first_file = true;
        for (file, rules) in &self.counts {
            if !first_file {
                out.push(',');
            }
            first_file = false;
            out.push_str(&format!("\n    \"{}\": {{", json::escape(file)));
            let mut first_rule = true;
            for (rule, count) in rules {
                if !first_rule {
                    out.push(',');
                }
                first_rule = false;
                out.push_str(&format!("\n      \"{}\": {}", json::escape(rule), count));
            }
            out.push_str("\n    }");
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Parses the committed JSON form, validating the version.
    pub fn parse(src: &str) -> Result<Self, String> {
        let v = json::parse(src)?;
        let obj = v.as_obj().ok_or("baseline root must be an object")?;
        let version = obj.get("version").and_then(Value::as_num).ok_or("missing version")?;
        if version != FORMAT_VERSION {
            return Err(format!("baseline version {version}, expected {FORMAT_VERSION}"));
        }
        let mut counts: BTreeMap<String, BTreeMap<String, u64>> = BTreeMap::new();
        let findings =
            obj.get("findings").and_then(Value::as_obj).ok_or("missing findings object")?;
        for (file, rules) in findings {
            let rules = rules.as_obj().ok_or("per-file entry must be an object")?;
            let mut per: BTreeMap<String, u64> = BTreeMap::new();
            for (rule, n) in rules {
                per.insert(rule.clone(), n.as_num().ok_or("count must be a number")?);
            }
            counts.insert(file.clone(), per);
        }
        Ok(Baseline { counts })
    }
}

/// The verdict of checking current findings against a baseline.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Findings in `(file, rule)` cells whose count exceeds the
    /// baseline — the *new* debt. Every finding in an over-budget cell
    /// is listed (the analyzer cannot know which of them is the new
    /// one).
    pub new_findings: Vec<Finding>,
    /// Cells where reality is *below* the recorded count: debt was
    /// burned down but the baseline wasn't ratcheted. `(file, rule,
    /// recorded, actual)`.
    pub stale: Vec<(String, String, u64, u64)>,
    /// Total current findings.
    pub current_total: u64,
}

impl CheckReport {
    pub fn passed(&self) -> bool {
        self.new_findings.is_empty() && self.stale.is_empty()
    }
}

/// Ratchet check: every `(file, rule)` count must equal the baseline
/// exactly — above means new findings, below means a stale baseline.
pub fn check(findings: &[Finding], baseline: &Baseline) -> CheckReport {
    let current = Baseline::from_findings(findings);
    let mut report = CheckReport { current_total: current.total(), ..Default::default() };
    // Over-budget cells → list their findings.
    for (file, rules) in &current.counts {
        for (rule, &n) in rules {
            let allowed = baseline.counts.get(file).and_then(|r| r.get(rule)).copied().unwrap_or(0);
            if n > allowed {
                report
                    .new_findings
                    .extend(findings.iter().filter(|f| &f.file == file && f.rule == rule).cloned());
            }
        }
    }
    // Under-budget or vanished cells → stale.
    for (file, rules) in &baseline.counts {
        for (rule, &recorded) in rules {
            let actual = current.counts.get(file).and_then(|r| r.get(rule)).copied().unwrap_or(0);
            if actual < recorded {
                report.stale.push((file.clone(), rule.clone(), recorded, actual));
            }
        }
    }
    report
}
