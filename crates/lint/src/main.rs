//! `tpa-lint` — the workspace's static-analysis gate.
//!
//! ```text
//! tpa-lint scan  [--root DIR] [--format text|json]
//! tpa-lint check [--root DIR] [--format text|json] --baseline FILE [--write-baseline]
//! ```
//!
//! `scan` prints every finding (after inline allows). `check` ratchets
//! against the committed baseline: new findings fail, burned-down debt
//! fails as *stale* until the baseline is rewritten with
//! `--write-baseline`. Exit codes: 0 clean, 1 findings / stale
//! baseline, 2 usage or I/O error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use tpa_lint::baseline::{check, Baseline};
use tpa_lint::{analyze_workspace, json, Config, Finding};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("tpa-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}

struct Opts {
    root: Option<PathBuf>,
    format: String,
    baseline: Option<PathBuf>,
    write_baseline: bool,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts { root: None, format: "text".into(), baseline: None, write_baseline: false };
    let mut i = 0;
    let take = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i).cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--root" => o.root = Some(PathBuf::from(take(&mut i, "--root")?)),
            "--format" => {
                o.format = take(&mut i, "--format")?;
                if o.format != "text" && o.format != "json" {
                    return Err(format!("--format must be text or json, got {}", o.format));
                }
            }
            "--baseline" => o.baseline = Some(PathBuf::from(take(&mut i, "--baseline")?)),
            "--write-baseline" => o.write_baseline = true,
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    Ok(o)
}

/// Walks upward from the current directory to the workspace root (the
/// first `Cargo.toml` declaring `[workspace]`).
fn find_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest).map_err(|e| e.to_string())?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace root found above the current directory".into());
        }
    }
}

fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"severity\": \"{}\", \
             \"message\": \"{}\"}}",
            json::escape(&f.file),
            f.line,
            f.rule,
            f.severity,
            json::escape(&f.message)
        ));
    }
    out.push_str(&format!("\n  ],\n  \"total\": {}\n}}\n", findings.len()));
    out
}

fn print_findings(findings: &[Finding], format: &str) {
    if format == "json" {
        print!("{}", render_json(findings));
    } else {
        for f in findings {
            println!("{f}");
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(cmd) = args.first() else {
        return Err("usage: tpa-lint <scan|check> [--root DIR] [--format text|json] \
                    [--baseline FILE] [--write-baseline]"
            .into());
    };
    let opts = parse_opts(&args[1..])?;
    let root = match &opts.root {
        Some(r) => r.clone(),
        None => find_root()?,
    };
    let cfg = Config::repo();
    let findings = analyze_workspace(&root, &cfg).map_err(|e| e.to_string())?;
    match cmd.as_str() {
        "scan" => {
            print_findings(&findings, &opts.format);
            if opts.format == "text" {
                eprintln!("tpa-lint: {} finding(s)", findings.len());
            }
            Ok(if findings.is_empty() { ExitCode::SUCCESS } else { ExitCode::from(1) })
        }
        "check" => {
            let path = opts
                .baseline
                .clone()
                .ok_or("check needs --baseline FILE (use --write-baseline to create it)")?;
            let baseline_path = if path.is_absolute() { path } else { root.join(path) };
            if opts.write_baseline {
                let b = Baseline::from_findings(&findings);
                std::fs::write(&baseline_path, b.render()).map_err(|e| e.to_string())?;
                eprintln!(
                    "tpa-lint: wrote baseline ({} finding(s)) to {}",
                    b.total(),
                    baseline_path.display()
                );
                return Ok(ExitCode::SUCCESS);
            }
            let text = std::fs::read_to_string(&baseline_path)
                .map_err(|e| format!("reading {}: {e}", baseline_path.display()))?;
            let baseline = Baseline::parse(&text)?;
            let report = check(&findings, &baseline);
            report_check(&report, &baseline, &opts.format, root.as_path());
            Ok(if report.passed() { ExitCode::SUCCESS } else { ExitCode::from(1) })
        }
        other => Err(format!("unknown command {other}")),
    }
}

fn report_check(
    report: &tpa_lint::baseline::CheckReport,
    baseline: &Baseline,
    format: &str,
    _root: &Path,
) {
    if format == "json" {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"passed\": {},\n", report.passed()));
        out.push_str(&format!("  \"current_total\": {},\n", report.current_total));
        out.push_str(&format!("  \"baseline_total\": {},\n", baseline.total()));
        out.push_str(&format!("  \"stale_cells\": {},\n", report.stale.len()));
        out.push_str("  \"new_findings\": ");
        out.push_str(&render_json(&report.new_findings).replace('\n', "\n  "));
        out = out.trim_end().to_string();
        out.push_str("\n}\n");
        print!("{out}");
        return;
    }
    if !report.new_findings.is_empty() {
        eprintln!(
            "tpa-lint: NEW findings (cells over their baselined count — every finding in the \
             cell is listed):"
        );
        for f in &report.new_findings {
            println!("{f}");
        }
    }
    for (file, rule, recorded, actual) in &report.stale {
        eprintln!(
            "tpa-lint: STALE baseline: {file} [{rule}] records {recorded} but only {actual} \
             remain — debt was burned down, ratchet it with `tpa-lint check --baseline … \
             --write-baseline`"
        );
    }
    eprintln!(
        "tpa-lint: {} current finding(s) against a baseline of {} — {}",
        report.current_total,
        baseline.total(),
        if report.passed() { "OK" } else { "FAIL" }
    );
}
