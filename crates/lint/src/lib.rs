//! # tpa-lint — repo-specific static analysis for the TPA workspace
//!
//! The workspace's core contract — every optimization layer is bitwise
//! identical across backends, and the serving tier is panic-free and
//! lock-safe — is enforced at runtime by property tests. This crate is
//! the compile-time half of that contract: a dependency-free analyzer
//! that walks the workspace source and enforces four rule families:
//!
//! 1. **Panic-freedom** (`panic-freedom`, `unchecked-index`): no
//!    `unwrap()` / `expect(` / `panic!` / `unreachable!` / `todo!` /
//!    `unimplemented!` and no unchecked slice indexing in the serving /
//!    kernel files (`service.rs`, `engine.rs`, `admission.rs`,
//!    `cpi.rs`, `frontier.rs`, `patch.rs`, `topk.rs`, `batch.rs`).
//! 2. **Atomic-ordering discipline** (`atomic-ordering`): every
//!    `Ordering::{Relaxed, Acquire, Release, AcqRel, SeqCst}` site must
//!    carry a `// ord:` justification comment naming the happens-before
//!    edge it relies on (or match the per-file policy table).
//! 3. **Lock-order safety** (`lock-order`, `condvar-hold`): a
//!    conservative may-hold-while-acquiring graph over the
//!    `Mutex` / `RwLock` / `Condvar` fields of `service.rs`,
//!    `admission.rs`, and `patch.rs`; cycles are deadlock candidates.
//! 4. **FP-determinism** (`fp-hashmap-fold`, `unordered-reduction`,
//!    `stringly-error`): no float folds over `HashMap` / `HashSet`
//!    iteration in kernel modules, no rayon-style unordered parallel
//!    reductions, and no `Result<_, String>` / `Box<dyn Error>`
//!    regressions anywhere in `tpa-core`.
//!
//! Pre-existing debt lives in a committed `lint-baseline.json` keyed by
//! `(file, rule) → count`: **new** findings fail the check, burned-down
//! ones make the baseline stale (also a failure, prompting a ratchet
//! via `--write-baseline`). Individual sites are waived inline with
//! `// lint:allow(rule, "reason")`.

pub mod baseline;
pub mod json;
pub mod lexer;
pub mod rules;

use lexer::Lexed;
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Finding severity. Both severities participate in the ratchet; the
/// split exists so the heuristic rules (`unchecked-index`,
/// `fp-hashmap-fold`) read as advisories next to the hard contract
/// rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding: `file:line: [rule] severity: message`.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    pub line: usize,
    /// Stable rule id (see the crate docs / README rule catalog).
    pub rule: &'static str,
    pub severity: Severity,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}: {}",
            self.file, self.line, self.rule, self.severity, self.message
        )
    }
}

/// Per-file ordering-policy entry: `(path suffix, variant)` pairs that
/// pre-approve an `Ordering::<variant>` without a `// ord:` comment.
/// `"*"` approves every variant in the file.
pub type OrderingPolicy = (&'static str, &'static str);

/// What the analyzer enforces where. The default [`Config::repo`] is
/// the checked-in contract; fixture tests construct narrower ones.
#[derive(Clone, Debug)]
pub struct Config {
    /// Path suffixes covered by the panic-freedom family.
    pub panic_paths: Vec<&'static str>,
    /// Path suffixes covered by the lock-order family.
    pub lock_paths: Vec<&'static str>,
    /// Path suffixes of kernel modules covered by `fp-hashmap-fold` /
    /// `unordered-reduction`.
    pub kernel_paths: Vec<&'static str>,
    /// Path prefixes covered by `stringly-error`.
    pub stringly_prefixes: Vec<&'static str>,
    /// Pre-approved `Ordering` uses (see [`OrderingPolicy`]).
    pub ordering_policy: Vec<OrderingPolicy>,
}

impl Config {
    /// The checked-in repo contract.
    pub fn repo() -> Self {
        Config {
            panic_paths: vec![
                "core/src/service.rs",
                "core/src/engine.rs",
                "core/src/admission.rs",
                "core/src/cpi.rs",
                "core/src/frontier.rs",
                "core/src/patch.rs",
                "core/src/topk.rs",
                "core/src/batch.rs",
            ],
            lock_paths: vec!["core/src/service.rs", "core/src/admission.rs", "core/src/patch.rs"],
            kernel_paths: vec![
                "core/src/cpi.rs",
                "core/src/frontier.rs",
                "core/src/patch.rs",
                "core/src/topk.rs",
                "core/src/batch.rs",
                "core/src/tiling.rs",
                "core/src/transition.rs",
                "core/src/parallel.rs",
                "core/src/dynamic.rs",
                "core/src/tpa.rs",
                "core/src/pagerank.rs",
            ],
            stringly_prefixes: vec!["crates/core/src/"],
            // The contract is explicit justification everywhere; the
            // table exists for future carve-outs and for fixtures.
            ordering_policy: vec![],
        }
    }

    fn covers(paths: &[&'static str], file: &str) -> bool {
        paths.iter().any(|p| file.ends_with(p))
    }

    /// True when `file`'s `Ordering::<variant>` is pre-approved.
    pub fn ordering_allowed(&self, file: &str, variant: &str) -> bool {
        self.ordering_policy.iter().any(|(p, v)| file.ends_with(p) && (*v == "*" || *v == variant))
    }
}

/// A parsed source file, ready for the rules.
pub struct SourceFile {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    pub lexed: Lexed,
    /// Token stream with `#[cfg(test)]` / `#[test]` items stripped.
    pub tokens: Vec<lexer::Token>,
}

impl SourceFile {
    /// Lexes `src` under the given workspace-relative `path` label.
    pub fn parse(path: &str, src: &str) -> Self {
        let lexed = lexer::lex(src);
        let tokens = lexer::strip_test_items(&lexed.tokens);
        SourceFile { path: path.to_string(), lexed, tokens }
    }
}

/// Scans one comment for `lint:allow(rule, "reason")`; returns the
/// reason when it names `rule` and carries a non-empty reason. An allow
/// with an empty reason is deliberately inert — the escape hatch
/// *requires* writing down why.
fn allow_in_comment(comment: &str, rule: &str) -> Option<String> {
    let mut rest = comment;
    while let Some(pos) = rest.find("lint:allow(") {
        let args = &rest[pos + "lint:allow(".len()..];
        let close = args.find(')')?;
        let inner = &args[..close];
        let mut parts = inner.splitn(2, ',');
        let named = parts.next().unwrap_or("").trim();
        let reason = parts.next().unwrap_or("").trim().trim_matches('"').trim();
        if named == rule && !reason.is_empty() {
            return Some(reason.to_string());
        }
        rest = &rest[pos + "lint:allow(".len() + close..];
    }
    None
}

/// True when the finding at `line` is waived by a
/// `lint:allow(rule, "reason")` on the same line or the contiguous
/// comment block directly above.
pub fn is_allowed(lexed: &Lexed, line: usize, rule: &str) -> bool {
    lexed.find_justification(line, |c| allow_in_comment(c, rule)).is_some()
}

/// Runs every rule family over `files`, returning findings sorted by
/// (file, line, rule). Inline allows are already applied.
pub fn analyze(files: &[SourceFile], cfg: &Config) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in files {
        if Config::covers(&cfg.panic_paths, &f.path) {
            rules::panic_freedom(f, &mut findings);
        }
        rules::atomic_ordering(f, cfg, &mut findings);
        if Config::covers(&cfg.kernel_paths, &f.path) {
            rules::fp_determinism(f, &mut findings);
        }
        if cfg.stringly_prefixes.iter().any(|p| f.path.starts_with(p)) {
            rules::stringly_errors(f, &mut findings);
        }
    }
    // Lock-order is cross-file: it needs every scoped file at once.
    let lock_files: Vec<&SourceFile> =
        files.iter().filter(|f| Config::covers(&cfg.lock_paths, &f.path)).collect();
    rules::lock_order(&lock_files, &mut findings);

    findings.retain(|fi| {
        let lexed =
            &files.iter().find(|f| f.path == fi.file).expect("finding from known file").lexed;
        !is_allowed(lexed, fi.line, fi.rule)
    });
    findings.sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)).then(a.rule.cmp(b.rule)));
    findings
}

/// Collects the workspace source set under `root`: `src/**/*.rs` and
/// `crates/*/src/**/*.rs`, excluding the vendored shims (offline
/// stand-ins, not ours to lint). Integration tests, benches, and
/// examples live outside `src/` and are excluded by construction.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    collect_rs(&root.join("src"), &mut out)?;
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut entries: Vec<_> = std::fs::read_dir(&crates)?.collect::<Result<Vec<_>, _>>()?;
        entries.sort_by_key(|e| e.file_name());
        for e in entries {
            if e.file_name() == "vendor" {
                continue;
            }
            collect_rs(&e.path().join("src"), &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<Vec<_>, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for e in entries {
        let p = e.path();
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Loads and analyzes the workspace at `root` under `cfg`.
pub fn analyze_workspace(root: &Path, cfg: &Config) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    for p in workspace_files(root)? {
        let src = std::fs::read_to_string(&p)?;
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        files.push(SourceFile::parse(&rel, &src));
    }
    Ok(analyze(&files, cfg))
}

/// `(file, rule) → count` aggregation the baseline ratchet works on.
pub fn count_by_file_rule(findings: &[Finding]) -> BTreeMap<String, BTreeMap<String, usize>> {
    let mut out: BTreeMap<String, BTreeMap<String, usize>> = BTreeMap::new();
    for f in findings {
        *out.entry(f.file.clone()).or_default().entry(f.rule.to_string()).or_default() += 1;
    }
    out
}
