//! A deliberately tiny JSON subset — objects, strings, and unsigned
//! integers — enough for the baseline file and `--format json` output.
//! Hand-rolled because the linter must stay dependency-free (offline
//! build environment, and the lint gate must never be the thing that
//! breaks the build).

use std::collections::BTreeMap;

/// The subset of JSON values the baseline format uses.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Str(String),
    Num(u64),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<u64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Escapes a string for JSON output.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses `src` into a [`Value`]. Errors carry a byte offset for
/// diagnostics.
pub fn parse(src: &str) -> Result<Value, String> {
    let b = src.as_bytes();
    let mut i = 0;
    let v = parse_value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing content at byte {i}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && b[*i].is_ascii_whitespace() {
        *i += 1;
    }
}

fn parse_value(b: &[u8], i: &mut usize) -> Result<Value, String> {
    skip_ws(b, i);
    match b.get(*i) {
        Some(b'{') => {
            *i += 1;
            let mut m = BTreeMap::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Ok(Value::Obj(m));
            }
            loop {
                skip_ws(b, i);
                let key = parse_string(b, i)?;
                skip_ws(b, i);
                if b.get(*i) != Some(&b':') {
                    return Err(format!("expected ':' at byte {i}"));
                }
                *i += 1;
                let val = parse_value(b, i)?;
                m.insert(key, val);
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b'}') => {
                        *i += 1;
                        return Ok(Value::Obj(m));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {i}")),
                }
            }
        }
        Some(b'"') => Ok(Value::Str(parse_string(b, i)?)),
        Some(c) if c.is_ascii_digit() => {
            let start = *i;
            while *i < b.len() && b[*i].is_ascii_digit() {
                *i += 1;
            }
            std::str::from_utf8(&b[start..*i])
                .ok()
                .and_then(|s| s.parse().ok())
                .map(Value::Num)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }
        _ => Err(format!("unexpected character at byte {i}")),
    }
}

fn parse_string(b: &[u8], i: &mut usize) -> Result<String, String> {
    if b.get(*i) != Some(&b'"') {
        return Err(format!("expected '\"' at byte {i}"));
    }
    *i += 1;
    let mut out = String::new();
    while *i < b.len() {
        match b[*i] {
            b'"' => {
                *i += 1;
                return Ok(out);
            }
            b'\\' => {
                *i += 1;
                match b.get(*i) {
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = b
                            .get(*i + 1..*i + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .and_then(char::from_u32)
                            .ok_or_else(|| format!("bad \\u escape at byte {i}"))?;
                        out.push(hex);
                        *i += 4;
                    }
                    Some(&c) => out.push(c as char),
                    None => return Err("unterminated escape".into()),
                }
                *i += 1;
            }
            c => {
                // Multi-byte UTF-8: copy the whole scalar.
                let s = std::str::from_utf8(&b[*i..]).map_err(|_| "invalid utf8".to_string())?;
                let ch = s.chars().next().ok_or_else(|| "empty".to_string())?;
                out.push(ch);
                *i += ch.len_utf8();
                let _ = c;
            }
        }
    }
    Err("unterminated string".into())
}
